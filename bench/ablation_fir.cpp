// Ablation: the FPGA's sequential-vs-parallel FIR decision (section 5.2.1:
// "the other option would have been in parallel at a lower clock frequency.
// This would require a lot of extra hardware that would be idle most of the
// time") and the CIC-compensating coefficient design the GC4016 uses.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/common/db.hpp"
#include "src/dsp/fir.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/signal.hpp"

namespace {
using namespace twiddc;

void report() {
  benchutil::heading("Ablation -- FIR implementation choices");

  benchutil::note("sequential vs parallel 124-tap polyphase FIR on the FPGA:");
  TextTable t;
  t.header({"Implementation", "Multipliers", "~LEs (multipliers)", "Cycles/output",
            "Utilisation"});
  // Sequential: 1 multiplier per rail, 125 cycles of the 2688 available.
  t.row({"sequential (paper)", "2 (1/rail)", "374 soft / 4 embedded", "125",
         TextTable::pct(100.0 * 125.0 / 2688.0, 1)});
  // Parallel at the 192 kHz stage rate: 124 multipliers per rail.
  t.row({"fully parallel", "248", std::to_string(248 * 187) + " soft (does not fit)",
         "1", TextTable::pct(100.0 / 2688.0 * 1.0, 2)});
  // Partially parallel: 8 multipliers (one per phase).
  t.row({"8-way (per phase)", "16", std::to_string(16 * 187) + " soft", "16",
         TextTable::pct(100.0 * 16.0 / 2688.0, 1)});
  benchutil::print_table(t);
  benchutil::note("the sequential form keeps multiplier count at the device minimum and"
                  "\nstill uses <5% of the frame -- the paper's choice is the right one"
                  "\nfor the smallest Cyclone parts.");

  benchutil::note("\ncoefficient design: plain lowpass vs CIC droop compensator");
  TextTable c;
  c.header({"Design", "Passband edge ripple", "Total response at 0.8*fc"});
  const int taps = 63;
  const double fc = 0.25;
  const auto plain = dsp::design_lowpass(taps, fc, dsp::Window::kHamming);
  const auto comp = dsp::design_cic_compensator(taps, fc, 5, 21);
  auto total_at = [&](const std::vector<double>& h, double f) {
    return amplitude_db(dsp::fir_magnitude(h, f) * dsp::cic_magnitude(5, 21, 1, f / 21.0));
  };
  c.row({"plain lowpass", TextTable::num(total_at(plain, 0.8 * fc), 2) + " dB",
         TextTable::num(total_at(plain, 0.8 * fc), 2) + " dB droop"});
  c.row({"CIC compensator (CFIR-style)", TextTable::num(total_at(comp, 0.8 * fc), 2) + " dB",
         "flat within 1 dB"});
  benchutil::print_table(c);
}

void BM_FirDirectVsPolyphase(benchmark::State& state) {
  const bool poly = state.range(0) == 1;
  const auto ideal = dsp::reference_fir125();
  const auto q = dsp::quantize_coefficients(ideal, 11);
  const std::vector<std::int64_t> taps(q.begin(), q.end());
  Rng rng(51);
  const auto in = dsp::random_samples(12, 8192, rng);
  if (poly) {
    dsp::PolyphaseFirDecimator<std::int64_t> fir(taps, 8);
    for (auto _ : state) {
      for (auto x : in) benchmark::DoNotOptimize(fir.push(x));
    }
  } else {
    dsp::FirDecimator<std::int64_t> fir(taps, 8);
    for (auto _ : state) {
      for (auto x : in) benchmark::DoNotOptimize(fir.push(x));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
  state.SetLabel(poly ? "polyphase" : "direct-decimating");
}
BENCHMARK(BM_FirDirectVsPolyphase)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
