// Ablation: NCO generation method (the paper names look-up tables and Taylor
// series as alternatives but never quantifies the trade).  Sweeps LUT size
// and compares against the Taylor evaluator on spectral purity and speed.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/dsp/nco.hpp"
#include "src/dsp/signal.hpp"
#include "src/dsp/spectrum.hpp"

namespace {
using namespace twiddc;

double measure_sfdr(dsp::Nco::Config cfg) {
  dsp::Nco nco(cfg);
  std::vector<double> sine(1 << 15);
  const double amp = static_cast<double>((1 << (cfg.amplitude_bits - 1)) - 1);
  for (auto& v : sine) v = static_cast<double>(nco.next().sin) / amp;
  return dsp::sfdr_db(dsp::periodogram(sine, cfg.sample_rate_hz), 8);
}

void report() {
  benchutil::heading("Ablation -- NCO: look-up table size vs Taylor series");
  benchutil::note("(64.512 MHz sample rate, 10.1 MHz non-coherent tone, 16-bit amplitude)\n");

  TextTable t;
  t.header({"Generator", "Table memory", "SFDR"});
  for (int bits : {6, 7, 8, 10, 12, 14}) {
    dsp::Nco::Config cfg;
    cfg.freq_hz = 10.1e6;
    cfg.sample_rate_hz = 64.512e6;
    cfg.amplitude_bits = 16;
    cfg.table_bits = bits;
    t.row({"quarter-wave LUT, 2^" + std::to_string(bits),
           std::to_string((1 << bits) * 2) + " bytes",
           TextTable::num(measure_sfdr(cfg), 1) + " dB"});
  }
  dsp::Nco::Config taylor;
  taylor.freq_hz = 10.1e6;
  taylor.sample_rate_hz = 64.512e6;
  taylor.amplitude_bits = 16;
  taylor.mode = dsp::Nco::Mode::kTaylor;
  t.row({"Taylor (order 7/6)", "0 bytes", TextTable::num(measure_sfdr(taylor), 1) + " dB"});
  benchutil::print_table(t);
  benchutil::note("\nrule of thumb visible above: ~6 dB of SFDR per table address bit;");
  benchutil::note("the FPGA design's 256-entry ROM (8 bits) trades ~36 dB against the");
  benchutil::note("16-bit-amplitude ceiling to stay within its M4K budget.");
}

void BM_NcoLut(benchmark::State& state) {
  dsp::Nco::Config cfg;
  cfg.freq_hz = 10.1e6;
  cfg.sample_rate_hz = 64.512e6;
  cfg.table_bits = static_cast<int>(state.range(0));
  dsp::Nco nco(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(nco.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NcoLut)->Arg(8)->Arg(10)->Arg(14);

void BM_NcoTaylor(benchmark::State& state) {
  dsp::Nco::Config cfg;
  cfg.freq_hz = 10.1e6;
  cfg.sample_rate_hz = 64.512e6;
  cfg.mode = dsp::Nco::Mode::kTaylor;
  dsp::Nco nco(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(nco.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NcoTaylor);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
