// Ablation: datapath width and Hogenauer pruning vs output quality.  The
// paper's architectures quietly pick different widths (12-bit FPGA busses,
// 16-bit Montium words, 32/64-bit ARM registers); this bench puts them on
// one axis and adds the CIC5 pruning curve that a true 16-bit Montium
// mapping would be forced onto.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/core/float_ddc.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/moving_average.hpp"
#include "src/dsp/signal.hpp"

namespace {
using namespace twiddc;

double chain_snr(const core::DatapathSpec& spec) {
  const auto cfg = core::DdcConfig::reference(10.0e6);
  core::FixedDdc fixed_chain(cfg, spec);
  core::FloatDdc golden(cfg);
  const auto analog =
      dsp::make_tone(10.0025e6, cfg.input_rate_hz, 2688 * 300, 0.7);
  const auto digital = dsp::quantize_signal(analog, spec.input_bits);
  const auto g = golden.process(dsp::dequantize_signal(digital, spec.input_bits));
  const auto f = core::to_complex(fixed_chain.process(digital), fixed_chain.output_scale());
  std::vector<std::complex<double>> gs(g.begin() + 10, g.end());
  std::vector<std::complex<double>> fs(f.begin() + 10, f.end());
  return core::compare_streams(gs, fs).snr_db;
}

void report() {
  benchutil::heading("Ablation -- datapath width and CIC5 pruning vs output SNR");

  TextTable t;
  t.header({"Datapath", "Interstage bits", "SNR vs float golden"});
  auto add = [&](const char* label, core::DatapathSpec spec) {
    t.row({label, std::to_string(spec.interstage_bits),
           TextTable::num(chain_snr(spec), 1) + " dB"});
  };
  add("FPGA (12-bit busses)", core::DatapathSpec::fpga());
  add("Montium/ARM (16-bit words)", core::DatapathSpec::wide16());
  {
    auto s = core::DatapathSpec::wide16();
    s.name = "wide20";
    s.interstage_bits = 20;
    s.mixer_out_bits = 20;
    s.fir_acc_bits = 44;
    add("20-bit variant", s);
  }
  add("ideal (32-bit)", core::DatapathSpec::ideal());
  benchutil::print_table(t);

  benchutil::note("\nCIC5 with pruned integrators (the price of a true 16-bit register"
                  "\nfile): DC settling error vs pruning depth, decimation 21:");
  TextTable p;
  p.header({"Pruning (bits/stage)", "Total discarded", "DC error"});
  for (int per_stage : {0, 1, 2, 3, 4}) {
    dsp::CicDecimator::Config cc;
    cc.stages = 5;
    cc.decimation = 21;
    cc.input_bits = 16;
    if (per_stage > 0) cc.prune_shifts.assign(5, per_stage);
    dsp::CicDecimator cic(cc);
    std::int64_t last = 0;
    for (int i = 0; i < 21 * 64; ++i) {
      if (auto y = cic.push(10000)) last = *y;
    }
    const double expected =
        10000.0 * static_cast<double>(cic.gain()) / std::pow(2.0, 5.0 * per_stage);
    const double err = expected != 0.0 ? std::abs(last - expected) / expected : 0.0;
    p.row({std::to_string(per_stage), std::to_string(5 * per_stage) + " bits",
           TextTable::pct(100.0 * err, 3)});
  }
  benchutil::print_table(p);
}

void BM_ChainAtWidth(benchmark::State& state) {
  auto spec = state.range(0) == 12 ? core::DatapathSpec::fpga()
                                   : (state.range(0) == 16 ? core::DatapathSpec::wide16()
                                                           : core::DatapathSpec::ideal());
  const auto cfg = core::DdcConfig::reference(10.0e6);
  core::FixedDdc ddc(cfg, spec);
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.003e6, cfg.input_rate_hz, 2688, 0.7), 12);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(ddc.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ChainAtWidth)->Arg(12)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
