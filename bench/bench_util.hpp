// Shared helpers for the per-table/per-figure bench binaries.
//
// Every binary prints its paper artifact (the "paper" column verbatim from
// the PDF next to the value this reproduction measures), then runs
// google-benchmark timings for the kernels involved.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/table.hpp"

namespace twiddc::benchutil {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void print_table(const TextTable& t) { std::printf("%s", t.str().c_str()); }

/// Formats a reproduced-vs-paper pair with relative deviation.
inline std::string vs(double ours, double paper, int digits = 2) {
  const double dev = paper != 0.0 ? 100.0 * (ours - paper) / paper : 0.0;
  return TextTable::num(ours, digits) + " (paper " + TextTable::num(paper, digits) +
         ", " + (dev >= 0 ? "+" : "") + TextTable::num(dev, 1) + "%)";
}

// ------------------------------------------------- throughput measurement
//
// Wall-clock sample-throughput helpers for the block-vs-per-sample hot-path
// comparisons (bench/throughput_pipeline.cpp and future perf-trajectory
// benches).

/// One throughput measurement: `samples` input samples in `seconds`.
struct Throughput {
  std::size_t samples = 0;
  double seconds = 0.0;
  [[nodiscard]] double msamples_per_s() const {
    return seconds > 0.0 ? static_cast<double>(samples) / seconds / 1e6 : 0.0;
  }
};

/// Runs `body` (which must consume `samples_per_rep` input samples per call)
/// repeatedly until at least `min_seconds` of wall clock have elapsed, after
/// one untimed warm-up call.
template <typename F>
Throughput measure_throughput(std::size_t samples_per_rep, F&& body,
                              double min_seconds = 0.3) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up: page in buffers, settle the branch predictors
  Throughput t;
  const auto start = clock::now();
  do {
    body();
    t.samples += samples_per_rep;
    t.seconds = std::chrono::duration<double>(clock::now() - start).count();
  } while (t.seconds < min_seconds);
  return t;
}

/// The shared one-line JSON writer (src/common/json.hpp), re-exported under
/// the historical benchutil name.
using twiddc::JsonLine;

/// Formats a block-vs-push throughput pair as one JSON line.
inline JsonLine throughput_json(const std::string& bench, const std::string& chain,
                                const Throughput& push, const Throughput& block,
                                std::size_t block_samples) {
  JsonLine j;
  j.field("bench", bench)
      .field("chain", chain)
      .field("push_msamples_per_s", push.msamples_per_s())
      .field("block_msamples_per_s", block.msamples_per_s())
      .field("speedup_block_over_push",
             block.msamples_per_s() / push.msamples_per_s())
      .field("block_samples", block_samples);
  return j;
}

/// One kernel's block throughput (cic/fir/nco...) as a JSON line.  The keys
/// are additive to the schema above: existing consumers keyed on "chain"
/// ignore "kernel" lines and vice versa.
inline JsonLine kernel_json(const std::string& bench, const std::string& kernel,
                            const Throughput& block, std::size_t block_samples) {
  JsonLine j;
  j.field("bench", bench)
      .field("kernel", kernel)
      .field("block_msamples_per_s", block.msamples_per_s())
      .field("block_samples", block_samples);
  return j;
}

/// A multi-channel batch measurement: `aggregate` counts channel-samples
/// (inputs x channels) per second; `scaling_vs_single` is aggregate relative
/// to the measured one-channel single-worker rate.
inline JsonLine channel_bank_json(const std::string& bench, const std::string& chain,
                                  std::size_t channels, int workers,
                                  const Throughput& aggregate,
                                  double single_channel_msamples_per_s,
                                  std::size_t block_samples) {
  JsonLine j;
  j.field("bench", bench)
      .field("chain", chain)
      .field("channels", channels)
      .field("workers", static_cast<std::size_t>(workers))
      .field("aggregate_msamples_per_s", aggregate.msamples_per_s())
      .field("per_channel_msamples_per_s",
             aggregate.msamples_per_s() / static_cast<double>(channels))
      .field("scaling_vs_single", aggregate.msamples_per_s() /
                                      single_channel_msamples_per_s)
      .field("block_samples", block_samples);
  return j;
}

/// Standard main body: print the report, then run registered benchmarks.
inline int run(int argc, char** argv, void (*report)()) {
  report();
  std::printf("\n-- kernel timings (google-benchmark) --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace twiddc::benchutil
