// Shared helpers for the per-table/per-figure bench binaries.
//
// Every binary prints its paper artifact (the "paper" column verbatim from
// the PDF next to the value this reproduction measures), then runs
// google-benchmark timings for the kernels involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/common/table.hpp"

namespace twiddc::benchutil {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void print_table(const TextTable& t) { std::printf("%s", t.str().c_str()); }

/// Formats a reproduced-vs-paper pair with relative deviation.
inline std::string vs(double ours, double paper, int digits = 2) {
  const double dev = paper != 0.0 ? 100.0 * (ours - paper) / paper : 0.0;
  return TextTable::num(ours, digits) + " (paper " + TextTable::num(paper, digits) +
         ", " + (dev >= 0 ? "+" : "") + TextTable::num(dev, 1) + "%)";
}

/// Standard main body: print the report, then run registered benchmarks.
inline int run(int argc, char** argv, void (*report)()) {
  report();
  std::printf("\n-- kernel timings (google-benchmark) --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace twiddc::benchutil
