// Shared helpers for the per-table/per-figure bench binaries.
//
// Every binary prints its paper artifact (the "paper" column verbatim from
// the PDF next to the value this reproduction measures), then runs
// google-benchmark timings for the kernels involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/table.hpp"

namespace twiddc::benchutil {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void print_table(const TextTable& t) { std::printf("%s", t.str().c_str()); }

/// Formats a reproduced-vs-paper pair with relative deviation.
inline std::string vs(double ours, double paper, int digits = 2) {
  const double dev = paper != 0.0 ? 100.0 * (ours - paper) / paper : 0.0;
  return TextTable::num(ours, digits) + " (paper " + TextTable::num(paper, digits) +
         ", " + (dev >= 0 ? "+" : "") + TextTable::num(dev, 1) + "%)";
}

// ------------------------------------------------- throughput measurement
//
// Wall-clock sample-throughput helpers for the block-vs-per-sample hot-path
// comparisons (bench/throughput_pipeline.cpp and future perf-trajectory
// benches).

/// One throughput measurement: `samples` input samples in `seconds`.
struct Throughput {
  std::size_t samples = 0;
  double seconds = 0.0;
  [[nodiscard]] double msamples_per_s() const {
    return seconds > 0.0 ? static_cast<double>(samples) / seconds / 1e6 : 0.0;
  }
};

/// Runs `body` (which must consume `samples_per_rep` input samples per call)
/// repeatedly until at least `min_seconds` of wall clock have elapsed, after
/// one untimed warm-up call.
template <typename F>
Throughput measure_throughput(std::size_t samples_per_rep, F&& body,
                              double min_seconds = 0.3) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up: page in buffers, settle the branch predictors
  Throughput t;
  const auto start = clock::now();
  do {
    body();
    t.samples += samples_per_rep;
    t.seconds = std::chrono::duration<double>(clock::now() - start).count();
  } while (t.seconds < min_seconds);
  return t;
}

/// The shared one-line JSON writer (src/common/json.hpp), re-exported under
/// the historical benchutil name.
using twiddc::JsonLine;

/// Formats a block-vs-push throughput pair as one JSON line.
inline JsonLine throughput_json(const std::string& bench, const std::string& chain,
                                const Throughput& push, const Throughput& block,
                                std::size_t block_samples) {
  JsonLine j;
  j.field("bench", bench)
      .field("chain", chain)
      .field("push_msamples_per_s", push.msamples_per_s())
      .field("block_msamples_per_s", block.msamples_per_s())
      .field("speedup_block_over_push",
             block.msamples_per_s() / push.msamples_per_s())
      .field("block_samples", block_samples);
  return j;
}

/// One kernel's block throughput (cic/fir/nco...) as a JSON line.  The keys
/// are additive to the schema above: existing consumers keyed on "chain"
/// ignore "kernel" lines and vice versa.
inline JsonLine kernel_json(const std::string& bench, const std::string& kernel,
                            const Throughput& block, std::size_t block_samples) {
  JsonLine j;
  j.field("bench", bench)
      .field("kernel", kernel)
      .field("block_msamples_per_s", block.msamples_per_s())
      .field("block_samples", block_samples);
  return j;
}

/// A multi-channel batch measurement: `aggregate` counts channel-samples
/// (inputs x channels) per second; `scaling_vs_single` is aggregate relative
/// to the measured one-channel single-worker rate.
inline JsonLine channel_bank_json(const std::string& bench, const std::string& chain,
                                  std::size_t channels, int workers,
                                  const Throughput& aggregate,
                                  double single_channel_msamples_per_s,
                                  std::size_t block_samples) {
  JsonLine j;
  j.field("bench", bench)
      .field("chain", chain)
      .field("channels", channels)
      .field("workers", static_cast<std::size_t>(workers))
      .field("aggregate_msamples_per_s", aggregate.msamples_per_s())
      .field("per_channel_msamples_per_s",
             aggregate.msamples_per_s() / static_cast<double>(channels))
      .field("scaling_vs_single", aggregate.msamples_per_s() /
                                      single_channel_msamples_per_s)
      .field("block_samples", block_samples);
  return j;
}

// ------------------------------------------------------- record trajectory
//
// Machine-readable record tee.  Stdout keeps the bare one-JSON-object-per-
// line format the existing trajectory consumers parse; when an output file
// is configured (--out FILE or --out=FILE on the command line, else the
// TWIDDC_BENCH_OUT environment variable), every emitted record is ALSO
// appended to FILE as
//   BENCH_<name>.json {"bench": ..., ...}
// with <name> sanitised to [A-Za-z0-9_] so the tag doubles as a filename-
// safe key.  Append mode on purpose: successive bench invocations (CI runs,
// tier sweeps under different TWIDDC_* knobs) accumulate into one
// trajectory log instead of clobbering each other.

/// The configured record file path ("" = stdout only).
inline std::string& out_path() {
  static std::string path;
  return path;
}

/// Parses --out FILE / --out=FILE, falling back to TWIDDC_BENCH_OUT.  Call
/// once from main before emitting records (run() below does it for the
/// report+benchmark binaries).
inline void init_out(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path() = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path() = arg.substr(6);
    }
  }
  if (out_path().empty()) {
    if (const char* env = std::getenv("TWIDDC_BENCH_OUT"); env && *env)
      out_path() = env;
  }
}

/// Prints the record to stdout (bare JSON line, unchanged format) and, when
/// an out file is configured, appends the tagged BENCH_<name>.json record.
inline void emit(const std::string& name, const JsonLine& j) {
  j.print();
  if (out_path().empty()) return;
  std::string tag;
  tag.reserve(name.size());
  for (const char c : name)
    tag += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_';
  if (std::FILE* f = std::fopen(out_path().c_str(), "a")) {
    std::fprintf(f, "BENCH_%s.json %s\n", tag.c_str(), j.str().c_str());
    std::fclose(f);
  }
}

/// Standard main body: print the report, then run registered benchmarks.
inline int run(int argc, char** argv, void (*report)()) {
  init_out(argc, argv);
  report();
  std::printf("\n-- kernel timings (google-benchmark) --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace twiddc::benchutil
