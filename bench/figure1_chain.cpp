// Reproduces Figure 1: the DDC chain, shown as per-stage signal spectra and
// rates for a synthetic DRM scene (the paper's block diagram, animated).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>

#include "bench/bench_util.hpp"
#include "src/common/db.hpp"
#include "src/core/analysis.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/dsp/signal.hpp"
#include "src/dsp/spectrum.hpp"

namespace {
using namespace twiddc;

void report() {
  benchutil::heading("Figure 1 -- DDC algorithm (per-stage rates and band powers)");
  const double nco = 10.0e6;
  const auto cfg = core::DdcConfig::reference(nco);
  core::FixedDdc ddc(cfg, core::DatapathSpec::fpga());
  ddc.set_tracing(true);

  const std::size_t n = 2688 * 400;
  const auto scene = dsp::make_drm_scene(nco, n, cfg.input_rate_hz);
  // Scale into the 12-bit ADC range.
  std::vector<double> scaled(scene);
  for (auto& v : scaled) v *= 0.55;
  const auto in = dsp::quantize_signal(scaled, 12);
  const auto out = ddc.process(in);
  const auto& tr = ddc.trace();

  TextTable t;
  t.header({"Stage", "Rate", "Samples", "In-band power", "Strongest interferer"});
  auto add_stage = [&](const std::string& name, const std::vector<std::int64_t>& samples,
                       double rate, double band_lo, double band_hi, double intf_lo,
                       double intf_hi) {
    const auto d = dsp::dequantize_signal(samples, 12);
    const auto s = dsp::periodogram(d, rate);
    t.row({name, TextTable::num(rate / 1e6, 3) + " MHz", std::to_string(samples.size()),
           TextTable::num(power_db(s.band_power(band_lo, band_hi)), 1) + " dB",
           TextTable::num(power_db(s.band_power(intf_lo, intf_hi)), 1) + " dB"});
  };
  // After the mixer the target band sits at DC; the 2.5 MHz interferer is
  // still present.  Each CIC stage then strips it.
  add_stage("mixer out", tr.mixer_i, cfg.input_rate_hz, 0.0, 12e3, 2.45e6, 2.55e6);
  add_stage("CIC2 out", tr.cic2_i, cfg.cic2_output_rate_hz(), 0.0, 12e3, 140e3, 160e3);
  add_stage("CIC5 out", tr.cic5_i, cfg.cic5_output_rate_hz(), 0.0, 12e3, 60e3, 90e3);
  add_stage("FIR out", tr.fir_i, cfg.output_rate_hz(), 0.0, 11e3, 11.5e3, 12e3);
  benchutil::print_table(t);

  // Output spectrum sketch.
  auto iq = core::to_complex(out, ddc.output_scale());
  iq.erase(iq.begin(), iq.begin() + 16);
  const auto s = dsp::periodogram_complex(iq, cfg.output_rate_hz());
  benchutil::note("\noutput spectrum (complex baseband, 24 kHz):");
  const std::size_t bins = s.power_db.size();
  for (int b = 0; b < 16; ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * bins / 16;
    const std::size_t hi = (static_cast<std::size_t>(b) + 1) * bins / 16;
    double peak = -300.0;
    for (std::size_t i = lo; i < hi; ++i) peak = std::max(peak, s.power_db[i]);
    const double f = (b < 8 ? static_cast<double>(lo) : static_cast<double>(lo) - bins) *
                     s.bin_hz;
    benchutil::note(ascii_bar(TextTable::num(f / 1e3, 1) + " kHz", peak + 120.0, 120.0, 40));
  }
}

void BM_TracedChain(benchmark::State& state) {
  const auto cfg = core::DdcConfig::reference(10.0e6);
  core::FixedDdc ddc(cfg, core::DatapathSpec::fpga());
  ddc.set_tracing(true);
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.003e6, cfg.input_rate_hz, 2688, 0.7), 12);
  for (auto _ : state) {
    ddc.reset();
    ddc.set_tracing(true);
    for (auto x : in) benchmark::DoNotOptimize(ddc.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_TracedChain);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
