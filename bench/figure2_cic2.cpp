// Reproduces Figure 2: the CIC2 structure (two integrators, decimator, two
// comb sections) -- shown via its impulse response, DC gain, register
// widths, and frequency response.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/common/db.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/signal.hpp"

namespace {
using namespace twiddc;

void report() {
  benchutil::heading("Figure 2 -- CIC2 (2 integrators + decimate 16 + 2 combs)");

  dsp::CicDecimator::Config cc;
  cc.stages = 2;
  cc.decimation = 16;
  cc.input_bits = 12;
  dsp::CicDecimator cic(cc);

  benchutil::note("register width: " + std::to_string(cic.register_bits()) +
                  " bits (12-bit input + " + std::to_string(cic.growth_bits()) +
                  " growth), DC gain " + std::to_string(cic.gain()));

  // Decimated impulse response (one polyphase component of boxcar^2).
  std::vector<std::int64_t> impulse;
  for (int i = 0; i < 16 * 6; ++i) {
    if (auto y = cic.push(i == 0 ? 1 : 0)) impulse.push_back(*y);
  }
  std::string ir = "decimated impulse response:";
  for (auto v : impulse) ir += " " + std::to_string(v);
  benchutil::note(ir);

  benchutil::note("\nmagnitude response (relative to input rate; nulls at k/16):");
  for (double f : {0.001, 0.01, 1.0 / 32, 1.0 / 16, 1.5 / 16, 2.0 / 16, 0.25, 0.45}) {
    const double mag = dsp::cic_magnitude(2, 16, 1, f);
    benchutil::note(ascii_bar("f=" + TextTable::num(f, 4), amplitude_db(mag) + 100.0,
                              100.0, 40) +
                    " dB" + TextTable::num(amplitude_db(mag), 1));
  }

  // The wrap-around property Figure 2's hardware depends on.
  auto narrow_cfg = cc;
  narrow_cfg.register_bits = 20;
  dsp::CicDecimator wrapping(narrow_cfg);
  std::int64_t last = 0;
  for (int i = 0; i < 16 * 64; ++i) {
    if (auto y = wrapping.push(2047)) last = *y;
  }
  benchutil::note("\n20-bit registers, full-scale DC input settles to " +
                  std::to_string(last) + " == gain*x = " + std::to_string(256 * 2047) +
                  " despite integrator wrap-around");
}

void BM_Cic2FullRate(benchmark::State& state) {
  dsp::CicDecimator::Config cc;
  cc.stages = 2;
  cc.decimation = 16;
  cc.input_bits = 12;
  dsp::CicDecimator cic(cc);
  Rng rng(1);
  const auto in = dsp::random_samples(12, 1 << 14, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(cic.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_Cic2FullRate);

void BM_Cic5FullRate(benchmark::State& state) {
  dsp::CicDecimator::Config cc;
  cc.stages = 5;
  cc.decimation = 21;
  cc.input_bits = 12;
  dsp::CicDecimator cic(cc);
  Rng rng(2);
  const auto in = dsp::random_samples(12, 1 << 14, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(cic.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_Cic5FullRate);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
