// Reproduces Figure 3: "Polyphase FIR filter with 5 taps and a decimation
// of 5" -- the commutator schedule, the phase decomposition, and the
// multiply-count advantage that motivates the structure.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/dsp/fir.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/signal.hpp"

namespace {
using namespace twiddc;

void report() {
  benchutil::heading("Figure 3 -- polyphase FIR, 5 taps, decimation 5");

  const std::vector<std::int64_t> taps{10, 20, 30, 40, 50};
  dsp::PolyphaseFirDecimator<std::int64_t> poly(taps, 5);

  benchutil::note("phase decomposition e_p[j] = h[jD + p]:");
  const auto& phases = poly.phase_taps();
  for (std::size_t p = 0; p < phases.size(); ++p) {
    std::string row = "  e_" + std::to_string(p) + " = {";
    for (std::size_t j = 0; j < phases[p].size(); ++j)
      row += (j ? ", " : " ") + std::to_string(phases[p][j]);
    benchutil::note(row + " }");
  }

  benchutil::note("\ncommutator: input sample n -> register (phase) fed:");
  TextTable t;
  t.header({"n", "phase", "output after?"});
  for (int n = 0; n < 10; ++n) {
    const int phase = poly.next_phase();
    const auto y = poly.push(n + 1);
    t.row({std::to_string(n), std::to_string(phase), y ? "yes: " + std::to_string(*y) : ""});
  }
  benchutil::print_table(t);

  benchutil::note("\nwork comparison for the reference 125-tap, D=8 filter:");
  dsp::FirFilter<std::int64_t> full(std::vector<std::int64_t>(125, 1));
  dsp::PolyphaseFirDecimator<std::int64_t> poly125(std::vector<std::int64_t>(125, 1), 8);
  benchutil::note("  plain FIR + discard 7/8: " +
                  std::to_string(full.macs_per_input() * 8) + " MACs per output");
  benchutil::note("  polyphase:               " + std::to_string(poly125.macs_per_output()) +
                  " MACs per output (8x fewer)");
}

void BM_FullRateFir125(benchmark::State& state) {
  const auto ideal = dsp::reference_fir125();
  const auto q = dsp::quantize_coefficients(ideal, 11);
  dsp::FirFilter<std::int64_t> fir(std::vector<std::int64_t>(q.begin(), q.end()));
  Rng rng(3);
  const auto in = dsp::random_samples(12, 8192, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(fir.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_FullRateFir125);

void BM_PolyphaseFir125D8(benchmark::State& state) {
  const auto ideal = dsp::reference_fir125();
  const auto q = dsp::quantize_coefficients(ideal, 11);
  dsp::PolyphaseFirDecimator<std::int64_t> fir(
      std::vector<std::int64_t>(q.begin(), q.end()), 8);
  Rng rng(4);
  const auto in = dsp::random_samples(12, 8192, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(fir.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_PolyphaseFir125D8);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
