// Reproduces Figure 4 (one channel of the TI GC4016) and the section 3.1.2
// GSM operating point: 69.333 MHz in, decimation 256, 270.833 kHz out,
// 115 mW at 80 MHz, 13.8 mW scaled to 0.13 um.
#include <benchmark/benchmark.h>

#include <complex>

#include "bench/bench_util.hpp"
#include "src/asic/gc4016.hpp"
#include "src/dsp/signal.hpp"
#include "src/dsp/spectrum.hpp"
#include "src/energy/technology.hpp"

namespace {
using namespace twiddc;

void report() {
  benchutil::heading("Figure 4 -- one GC4016 channel, GSM example (section 3.1.2)");

  const auto cfg = asic::Gc4016Config::gsm_example();
  asic::Gc4016 chip(cfg);
  auto& channel = chip.channel(0);

  TextTable t;
  t.header({"Stage", "Rate in", "Decimation", "Rate out"});
  const double fin = cfg.input_rate_hz;
  const int cic = cfg.channels[0].cic_decimation;
  t.row({"NCO + mixer", TextTable::num(fin / 1e6, 3) + " MHz", "-", "-"});
  t.row({"CIC5", TextTable::num(fin / 1e6, 3) + " MHz", std::to_string(cic),
         TextTable::num(fin / cic / 1e6, 3) + " MHz"});
  t.row({"CFIR (21 taps)", TextTable::num(fin / cic / 1e6, 3) + " MHz", "2",
         TextTable::num(fin / cic / 2 / 1e3, 1) + " kHz"});
  t.row({"PFIR (63 taps)", TextTable::num(fin / cic / 2 / 1e3, 1) + " kHz", "2",
         TextTable::num(fin / 256 / 1e3, 3) + " kHz"});
  benchutil::print_table(t);
  benchutil::note("output rate: " + benchutil::vs(fin / 256 / 1e3, 270.833, 3) + " kHz");

  // Functional demonstration: select a band and measure it at the output.
  const double offset = 40.0e3;
  const auto analog =
      dsp::make_tone(cfg.channels[0].nco_freq_hz + offset, fin, 256 * 600, 0.7);
  const auto in = dsp::quantize_signal(analog, 14);
  std::vector<std::complex<double>> iq;
  asic::Gc4016 run_chip(cfg);
  for (auto x : in) {
    for (const auto& o : run_chip.push(x))
      iq.emplace_back(static_cast<double>(o.i), -static_cast<double>(o.q));
  }
  iq.erase(iq.begin(), iq.begin() + 32);
  const auto s = dsp::periodogram_complex(iq, fin / 256.0);
  benchutil::note("tone at NCO+40 kHz comes out at " +
                  TextTable::num(s.freq(s.peak_bin()) / 1e3, 2) + " kHz baseband");

  // Power: datasheet point and the paper's technology scaling.
  benchutil::note("\npower (one channel):");
  asic::Gc4016Config at80 = cfg;
  at80.input_rate_hz = 80.0e6;  // the datasheet example clocks at 80 MHz
  at80.channels[0].nco_freq_hz = 15.0e6;
  asic::Gc4016 chip80(at80);
  benchutil::note("  native 0.25um/2.5V @ 80 MHz: " +
                  benchutil::vs(chip80.power_mw_native(), 115.0, 1) + " mW");
  benchutil::note("  scaled 0.13um/1.2V:          " +
                  benchutil::vs(chip80.power_mw_at(energy::TechnologyNode::um130()),
                                13.8, 1) +
                  " mW");
  benchutil::note("  (channel CFIR taps: " + std::to_string(channel.cfir_taps().size()) +
                  ", PFIR taps: " + std::to_string(channel.pfir_taps().size()) +
                  "; example used 68 of the 84 available)");
}

void BM_GsmChannel(benchmark::State& state) {
  asic::Gc4016 chip(asic::Gc4016Config::gsm_example());
  Rng rng(7);
  const auto in = dsp::random_samples(14, 4096, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(chip.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_GsmChannel);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
