// Reproduces Figure 5: "Schema of polyphase FIR" -- the sequential MAC
// engine's schedule: write on valid, 124 MACs in 125 cycles per output,
// 2688 cycles available.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/dsp/signal.hpp"
#include "src/fpga/ddc_fpga.hpp"

namespace {
using namespace twiddc;

core::DdcConfig fpga_config() {
  auto cfg = core::DdcConfig::reference(10.0e6);
  cfg.fir_taps = 124;
  return cfg;
}

void report() {
  benchutil::heading("Figure 5 -- sequential polyphase FIR (FPGA)");

  fpga::DdcFpgaTop design(fpga_config());
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.002e6, 64.512e6, 2688 * 3, 0.7), 12);

  // Trace one output frame in steady state.
  std::size_t clock_idx = 0;
  int busy_cycles = 0;
  std::size_t mac_start = 0;
  std::size_t output_at = 0;
  for (auto x : in) {
    const bool was_busy = design.fir_busy_i();
    const auto y = design.clock(x);
    ++clock_idx;
    if (clock_idx > 2688 && clock_idx <= 2 * 2688) {
      if (design.fir_busy_i()) {
        if (!was_busy) mac_start = clock_idx;
        ++busy_cycles;
      }
      if (y) output_at = clock_idx;
    }
  }
  benchutil::note("within one 2688-cycle output frame (steady state):");
  benchutil::note("  MAC engine armed at frame cycle " +
                  std::to_string(mac_start % 2688) + " (the 8th CIC5 sample)");
  benchutil::note("  compute occupancy: " + std::to_string(busy_cycles + 1) +
                  " cycles (paper: 'for the 124 taps, this is done in 125 clock cycles')");
  benchutil::note("  result delivered at frame cycle " + std::to_string(output_at % 2688));
  benchutil::note("  idle head-room: " + std::to_string(2688 - busy_cycles - 1) +
                  " of 2688 cycles -- the sequential choice the paper justifies");

  benchutil::note("\nstructure per rail: 128x12 M4K sample RAM, 124x12 coefficient ROM,");
  benchutil::note("12x12 multiplier, 31-bit accumulator, saturating 12-bit quantiser");
}

void BM_SeqFirSteadyState(benchmark::State& state) {
  fpga::DdcFpgaTop design(fpga_config());
  Rng rng(23);
  const auto in = dsp::random_samples(12, 2688, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(design.clock(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_SeqFirSteadyState);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
