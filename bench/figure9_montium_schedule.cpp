// Reproduces Figure 9: "First 40 clock cycles of the DDC" on the Montium --
// an ASCII Gantt of the five ALUs -- plus the Figure 7/8 ALU configuration
// summary (one multiply + two additions per cycle on the NCO/CIC2 ALUs).
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/dsp/signal.hpp"
#include "src/montium/ddc_mapping.hpp"

namespace {
using namespace twiddc;
using namespace twiddc::montium;

char code_of(const std::string& part) {
  if (part == parts::kFullRate) return 'N';
  if (part == parts::kCic2Comb) return '2';
  if (part == parts::kCic5Int) return 'I';
  if (part == parts::kCic5Comb) return '5';
  if (part == parts::kFir) return 'F';
  return '.';
}

void report() {
  benchutil::heading("Figure 9 -- first 40 clock cycles of the DDC on the Montium");

  DdcMapping mapping(core::DdcConfig::reference(10.0e6));
  mapping.tile().set_trace_depth(40);
  const auto in = dsp::quantize_signal(dsp::make_tone(10.0e6, 64.512e6, 64, 0.7), 12);
  mapping.process(in);

  benchutil::note("legend: N = NCO + CIC2 integrating (+ LUT address generation on ALU3)");
  benchutil::note("        2 = CIC2 cascading, I = CIC5 integrating,");
  benchutil::note("        5 = CIC5 cascading, F = FIR125, . = idle\n");

  benchutil::note("cycle  0         1         2         3");
  benchutil::note("       0123456789012345678901234567890123456789");
  const auto& gantt = mapping.tile().gantt();
  for (int alu = 0; alu < Tile::kNumAlus; ++alu) {
    std::string row = "ALU" + std::to_string(alu + 1) + "   ";
    for (const auto& g : gantt) row += code_of(g.alu_part[static_cast<std::size_t>(alu)]);
    benchutil::note(row);
  }
  benchutil::note(
      "\nas in the paper's figure: three ALUs run the NCO / address generation /"
      "\nCIC2 integration every cycle; the comb part of the CIC2 filter appears"
      "\nevery 16 cycles on the remaining two ALUs, followed by four cycles of"
      "\nCIC5 integration.  (CIC5 comb + FIR recur every 336 cycles, outside"
      "\nthis 40-cycle window.)");

  benchutil::note("\nFigure 8 check -- per-cycle op budget on the NCO-CIC ALUs:");
  benchutil::note("  1 multiplication (level 2) + 2 additions (levels 1+2): enforced by"
                  "\n  Alu::issue; an over-subscribed schedule throws SimulationError.");
}

void BM_GanttTracing(benchmark::State& state) {
  DdcMapping mapping(core::DdcConfig::reference(10.0e6));
  mapping.tile().set_trace_depth(40);
  Rng rng(41);
  const auto in = dsp::random_samples(12, 2688, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(mapping.step(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_GanttTracing);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
