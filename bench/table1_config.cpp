// Reproduces Table 1: "Clock speed and decimation in a DDC".
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/core/ddc_config.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/core/float_ddc.hpp"
#include "src/dsp/signal.hpp"

namespace {
using namespace twiddc;

void report() {
  benchutil::heading("Table 1 -- Clock speed and decimation in a DDC");
  const auto cfg = core::DdcConfig::reference();

  TextTable t;
  t.header({"Component", "Clock/sample rate", "Decimation (D)"});
  for (const auto& row : cfg.stage_plan()) {
    t.row({row.component,
           row.clock_hz >= 1e6 ? TextTable::num(row.clock_hz / 1e6, 3) + " MHz"
                               : TextTable::num(row.clock_hz / 1e3, 0) + " kHz",
           row.decimation == 0 ? "-" : std::to_string(row.decimation)});
  }
  benchutil::print_table(t);
  benchutil::note("total decimation = " + std::to_string(cfg.total_decimation()) +
                  " (paper: 16*21*8 = 2688), output " +
                  TextTable::num(cfg.output_rate_hz() / 1e3, 0) + " kHz (paper: 24 kHz)");
}

void BM_FixedDdcThroughput(benchmark::State& state) {
  const auto cfg = core::DdcConfig::reference(10.0e6);
  core::FixedDdc ddc(cfg, core::DatapathSpec::fpga());
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.002e6, cfg.input_rate_hz, 2688 * 4, 0.7), 12);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(ddc.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_FixedDdcThroughput);

void BM_FloatDdcThroughput(benchmark::State& state) {
  const auto cfg = core::DdcConfig::reference(10.0e6);
  core::FloatDdc ddc(cfg);
  const auto in = dsp::make_tone(10.002e6, cfg.input_rate_hz, 2688 * 4, 0.7);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(ddc.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_FloatDdcThroughput);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
