// Reproduces Table 2: "Configuration of a TI Quad DDC" -- the GC4016's
// capability envelope, exercised against the behavioral model's validation
// and functional datapath.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/asic/gc4016.hpp"
#include "src/dsp/signal.hpp"

namespace {
using namespace twiddc;
using asic::Gc4016;
using asic::Gc4016Config;
using asic::Gc4016Limits;

void report() {
  benchutil::heading("Table 2 -- Configuration of a TI Quad DDC (GC4016)");

  TextTable t;
  t.header({"Parameter", "Value (model)", "Paper"});
  t.row({"Input speed of filter",
         "up to " + TextTable::num(Gc4016Limits::kMaxInputMsps, 0) + " MSPS",
         "Up to 100 MSPS"});
  t.row({"Input size of filter", "14 (4ch.) or 16-bit (3ch.)", "14 (4ch.) or 16-bit (3ch.)"});
  t.row({"Decimation of a channel",
         std::to_string(Gc4016Limits::kMinTotalDecimation) + " to " +
             std::to_string(Gc4016Limits::kMaxTotalDecimation),
         "32 to 16.384"});
  t.row({"Output size of filter", "12,16,20 or 24-Bit", "12,16,20 or 24-Bit"});
  t.row({"Energy for a GSM channel",
         TextTable::num(Gc4016Limits::kGsmPowerMwPerChannel, 0) + " mW (80 MHz & 2.5 V)",
         "115mW (80 MHz & 2.5 V)"});
  benchutil::print_table(t);

  // Demonstrate the envelope with the validator.
  benchutil::note("\ncapability checks:");
  auto check = [&](const std::string& what, Gc4016Config cfg) {
    try {
      cfg.validate();
      benchutil::note("  accepted: " + what);
    } catch (const std::exception& e) {
      benchutil::note("  rejected: " + what + " -- " + e.what());
    }
  };
  Gc4016Config base;
  base.input_rate_hz = 100.0e6;
  asic::Gc4016ChannelConfig ch;
  ch.nco_freq_hz = 20.0e6;
  ch.cic_decimation = 8;
  base.channels = {ch};
  check("14-bit input, 100 MSPS, total decimation 32", base);

  auto cfg = base;
  cfg.channels[0].cic_decimation = 4096;
  check("total decimation 16384", cfg);

  cfg = base;
  cfg.input_rate_hz = 120.0e6;
  check("120 MSPS (beyond the 100 MSPS limit)", cfg);

  cfg = base;
  cfg.input_bits = 16;
  cfg.channels.assign(4, cfg.channels[0]);
  check("four channels at 16-bit input (only 3 exist)", cfg);

  cfg = base;
  cfg.channels[0].cic_decimation = 4;
  check("total decimation 16 (below the minimum of 32)", cfg);
}

void BM_Gc4016OneChannel(benchmark::State& state) {
  Gc4016Config cfg;
  cfg.input_rate_hz = 80.0e6;
  asic::Gc4016ChannelConfig ch;
  ch.nco_freq_hz = 20.0e6;
  ch.cic_decimation = 64;
  cfg.channels = {ch};
  Gc4016 chip(cfg);
  Rng rng(5);
  const auto in = dsp::random_samples(14, 4096, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(chip.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_Gc4016OneChannel);

void BM_Gc4016FourChannels(benchmark::State& state) {
  Gc4016Config cfg;
  cfg.input_rate_hz = 80.0e6;
  asic::Gc4016ChannelConfig ch;
  ch.nco_freq_hz = 20.0e6;
  ch.cic_decimation = 64;
  cfg.channels.assign(4, ch);
  cfg.channels[1].nco_freq_hz = 10.0e6;
  cfg.channels[2].nco_freq_hz = 30.0e6;
  cfg.channels[3].nco_freq_hz = 5.0e6;
  Gc4016 chip(cfg);
  Rng rng(6);
  const auto in = dsp::random_samples(14, 4096, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(chip.push(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_Gc4016FourChannels);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
