// Reproduces Table 3: "Division of the DDC code for an ARM" -- the
// per-filter-part cycle split from simulating the DDC program on the
// ARM9-like core, plus the section 4 headline numbers (required clock,
// 0.25 mW/MHz energy).
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.hpp"
#include "src/dsp/signal.hpp"
#include "src/gpp/ddc_program.hpp"
#include "src/gpp/disasm.hpp"

namespace {
using namespace twiddc;

const std::map<std::string, double> kPaperShares = {
    {"NCO", 50.0},          {"CIC2-integrating", 40.0}, {"CIC2-cascading", 3.2},
    {"CIC5-integrating", 4.4}, {"CIC5-cascading", 0.5},  {"FIR125-poly-phase", 0.5},
    {"FIR125-summation", 1.6}};

void report() {
  benchutil::heading("Table 3 -- Division of the DDC code for an ARM");

  const auto cfg = core::DdcConfig::reference(10.0e6);
  gpp::DdcProgram prog(cfg);
  const std::size_t n = 2688 * 50;
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.0025e6, cfg.input_rate_hz, n, 0.7), 12);
  const auto result = prog.run(in);

  TextTable t;
  t.header({"Part of filter", "Clock speed", "% of cycles (ours)", "% (paper)"});
  auto rate_of = [&](const std::string& name) -> std::string {
    if (name == "NCO" || name == "CIC2-integrating" || name == "loop-control")
      return "64.512 MHz";
    if (name == "CIC2-cascading" || name == "CIC5-integrating") return "4.032 MHz";
    if (name == "CIC5-cascading" || name == "FIR125-poly-phase") return "192 kHz";
    if (name == "FIR125-summation") return "24 kHz";
    return "-";
  };
  for (const auto& r : result.stats.regions) {
    if (r.name == "init") continue;
    const auto paper = kPaperShares.find(r.name);
    t.row({r.name, rate_of(r.name), TextTable::pct(100.0 * r.cycle_share, 2),
           paper != kPaperShares.end()
               ? (paper->second == 0.5 ? "< 0.5 %" : TextTable::pct(paper->second, 1))
               : "(folded into parts)"});
  }
  benchutil::print_table(t);

  benchutil::note("\nsection 4 headline numbers (in-phase doubled for I+Q, as the paper does):");
  benchutil::note("  cycles per input sample (I rail): " +
                  TextTable::num(result.cycles_per_input(n), 2));
  benchutil::note("  required clock: " +
                  TextTable::num(result.required_clock_mhz(n, cfg.input_rate_hz), 0) +
                  " MHz (paper derives 9740 MHz from its compiler output;"
                  " Table 7 prints 6697 MHz)");
  benchutil::note("  power at 0.25 mW/MHz: " +
                  TextTable::num(result.power_mw(n, cfg.input_rate_hz) / 1000.0, 3) +
                  " W (paper: 2.435 W)");
  benchutil::note("  conclusion preserved: one ARM9 cannot run the DDC in real time");
  benchutil::note("  CPI " + TextTable::num(result.stats.cpi(), 2) + ", I-cache hit " +
                  TextTable::pct(100.0 * result.stats.icache_hit_rate, 2) +
                  ", D-cache hit " + TextTable::pct(100.0 * result.stats.dcache_hit_rate, 2));

  // The §4.2.2 DSP-core note, reproduced.
  const auto dsp_core = prog.run(in, gpp::CycleModel::arm9e());
  const double speedup = static_cast<double>(result.stats.cycles) /
                         static_cast<double>(dsp_core.stats.cycles);
  benchutil::note("\nARM9E DSP-extension core (section 4.2.2, note 3):");
  benchutil::note("  speedup " + TextTable::num(speedup, 3) +
                  "x ('did not show a major speed improvement'), power " +
                  TextTable::num(gpp::DdcProgram::kMilliwattPerMhzArm9e *
                                     2.0 * dsp_core.cycles_per_input(n) * 64.512 / 1000.0,
                                 3) +
                  " W ('even higher power consumption')");

  // The first lines of the kernel listing (the view the paper's profiler
  // attributed cycles over).
  benchutil::note("\nkernel listing (head):");
  const std::string listing = gpp::disassemble(prog.program());
  std::size_t pos = 0;
  for (int line = 0; line < 24 && pos != std::string::npos; ++line) {
    const std::size_t nl = listing.find('\n', pos);
    benchutil::note("  " + listing.substr(pos, nl - pos));
    pos = nl == std::string::npos ? nl : nl + 1;
  }
}

void BM_ArmSimulator(benchmark::State& state) {
  const auto cfg = core::DdcConfig::reference(10.0e6);
  gpp::DdcProgram prog(cfg);
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.0025e6, cfg.input_rate_hz, 2688 * 4, 0.7), 12);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto result = prog.run(in);
    instructions += result.stats.instructions;
    benchmark::DoNotOptimize(result.outputs);
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ArmSimulator);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
