// Reproduces Table 4: "Synthesis results for Cyclone I and II" -- resource
// usage of the section 5 design estimated from its structural inventory.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/dsp/signal.hpp"
#include "src/fpga/ddc_fpga.hpp"

namespace {
using namespace twiddc;

core::DdcConfig fpga_config() {
  auto cfg = core::DdcConfig::reference(10.0e6);
  cfg.fir_taps = 124;
  return cfg;
}

void report() {
  benchutil::heading("Table 4 -- Synthesis results for Cyclone I and II");

  fpga::DdcFpgaTop design(fpga_config());
  const auto c1 = fpga::Device::ep1c3t100c6();
  const auto c2 = fpga::Device::ep2c5t144c6();
  const auto r1 = design.estimate_resources(c1);
  const auto r2 = design.estimate_resources(c2);

  auto pct = [](int used, int total) {
    return std::to_string(used) + " / " + std::to_string(total) + " (" +
           TextTable::num(100.0 * used / total, 0) + " %)";
  };

  TextTable t;
  t.header({"", "Cyclone I EP1C3T100C6", "paper", "Cyclone II EP2C5T144C6", "paper"});
  t.row({"Total logic elements", pct(r1.logic_elements, c1.logic_elements),
         "1,656 / 2,910 (56 %)", pct(r2.logic_elements, c2.logic_elements),
         "906 / 4,608 (20 %)"});
  t.row({"Total pins", pct(r1.pins, c1.pins), "41 / 65 (63 %)", pct(r2.pins, c2.pins),
         "41 / 89 (46 %)"});
  t.row({"Total memory bits", pct(r1.memory_bits, c1.memory_bits), "6,780 / 59,904 (12 %)",
         pct(r2.memory_bits, c2.memory_bits), "7,686 / 119,808 (6 %)"});
  t.row({"Embedded 9-bit multiplier", pct(r1.multipliers9, std::max(1, c1.multipliers9)),
         "0 / 0 (0 %)", pct(r2.multipliers9, c2.multipliers9), "8 / 26 (30 %)"});
  t.row({"Total PLLs", "0 / " + std::to_string(c1.plls) + " (0 %)", "0 / 1 (0 %)",
         "0 / " + std::to_string(c2.plls) + " (0 %)", "0 / 2 (0 %)"});
  benchutil::print_table(t);

  benchutil::note("\nfmax (published synthesis): Cyclone I " +
                  TextTable::num(c1.fmax_mhz, 2) + " MHz, Cyclone II " +
                  TextTable::num(c2.fmax_mhz, 2) +
                  " MHz; design clock 64.512 MHz -- both meet timing");

  benchutil::note("\nper-block raw inventory (before device packing):");
  TextTable b;
  b.header({"Block", "LEs (raw)", "memory bits", "pins"});
  for (const auto& [name, res] : design.resource_breakdown()) {
    b.row({name, std::to_string(res.logic_elements), std::to_string(res.memory_bits),
           std::to_string(res.pins)});
  }
  benchutil::print_table(b);
}

void BM_RtlSimulation(benchmark::State& state) {
  fpga::DdcFpgaTop design(fpga_config());
  Rng rng(11);
  const auto in = dsp::random_samples(12, 2688, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(design.clock(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_RtlSimulation);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
