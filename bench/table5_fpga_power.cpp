// Reproduces Table 5: "Power consumption of Cyclone I (input toggle rate is
// 50%)" -- the PowerPlay-style model across internal toggle rates, plus the
// toggle rate actually *measured* from the RTL simulation with random data
// (the paper assumed 10%).
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/dsp/signal.hpp"
#include "src/fpga/ddc_fpga.hpp"

namespace {
using namespace twiddc;

core::DdcConfig fpga_config() {
  auto cfg = core::DdcConfig::reference(10.0e6);
  cfg.fir_taps = 124;
  return cfg;
}

void report() {
  benchutil::heading("Table 5 -- Power consumption of Cyclone I (input toggle 50%)");

  const auto m1 = fpga::PowerModel::cyclone1();
  const double paper_total[] = {120.9, 141.4, 305.3, 458.9};
  const double paper_dyn[] = {72.9, 93.4, 257.2, 410.8};
  const double rates[] = {5.0, 10.0, 50.0, 87.5};

  TextTable t;
  t.header({"Internal toggle rate", "5%", "10%", "50%", "87.5%"});
  std::vector<std::string> total{"Total Thermal Power Dissipation"};
  std::vector<std::string> dyn{"Dynamic Thermal Power Dissipation"};
  std::vector<std::string> stat{"Static Thermal Power Dissipation"};
  for (int i = 0; i < 4; ++i) {
    total.push_back(benchutil::vs(m1.total_mw(rates[i]), paper_total[i], 1) + " mW");
    dyn.push_back(benchutil::vs(m1.dynamic_mw(rates[i]), paper_dyn[i], 1) + " mW");
    stat.push_back(benchutil::vs(m1.static_mw, 48.0, 1) + " mW");
  }
  t.row(total);
  t.row(dyn);
  t.row(stat);
  benchutil::print_table(t);

  // Measure the *actual* internal toggle rate of the design under the
  // paper's stimulus (random data, 50% input toggle).
  fpga::DdcFpgaTop design(fpga_config());
  Rng rng(21);
  design.process(dsp::random_samples(12, 2688 * 30, rng));
  const double measured = design.toggle_summary().rate_percent();
  benchutil::note("\nmeasured from RTL simulation with random input:");
  benchutil::note("  input toggle rate:    " +
                  TextTable::pct(design.input_toggle_percent(), 2) + " (paper assumes 50%)");
  benchutil::note("  internal toggle rate: " + TextTable::pct(measured, 2) +
                  " (paper assumes 10%)");
  benchutil::note("  Cyclone I  power at measured toggle: " +
                  TextTable::num(m1.total_mw(measured), 1) + " mW (paper @10%: 141.4)");
  const auto m2 = fpga::PowerModel::cyclone2();
  benchutil::note("  Cyclone II power at measured toggle: " +
                  TextTable::num(m2.total_mw(measured), 1) + " mW (paper @10%: 57.98)");
  benchutil::note("  Cyclone II dynamic (Table 7's row):  " +
                  TextTable::num(m2.dynamic_mw(measured), 1) + " mW (paper: 31.11)");
}

void BM_ToggleCountingOverhead(benchmark::State& state) {
  fpga::DdcFpgaTop design(fpga_config());
  Rng rng(22);
  const auto in = dsp::random_samples(12, 2688, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(design.clock(x));
    benchmark::DoNotOptimize(design.toggle_summary());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ToggleCountingOverhead);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
