// Reproduces Table 6: "DDC algorithm on a Montium" -- ALU allocation and
// per-part cycle percentages, plus the 1110-byte configuration and the
// 38.7 mW power figure.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.hpp"
#include "src/dsp/signal.hpp"
#include "src/montium/ddc_mapping.hpp"

namespace {
using namespace twiddc;
using namespace twiddc::montium;

void report() {
  benchutil::heading("Table 6 -- DDC algorithm on a Montium");

  DdcMapping mapping(core::DdcConfig::reference(10.0e6));
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.0031e6, 64.512e6, 2688 * 20, 0.7), 12);
  mapping.process(in);

  struct PaperRow {
    const char* part;
    int alus;
    double pct;
  };
  const PaperRow paper[] = {{parts::kFullRate, 3, 100.0},
                            {parts::kCic2Comb, 2, 6.3},
                            {parts::kCic5Int, 2, 25.0},
                            {parts::kCic5Comb, 2, 0.9},
                            {parts::kFir, 2, 0.5}};

  std::map<std::string, UtilizationRow> measured;
  for (const auto& r : mapping.tile().utilization()) measured[r.part] = r;

  TextTable t;
  t.header({"Algorithm part", "#ALUs (ours)", "#ALUs (paper)", "% time (ours)",
            "% time (paper)"});
  for (const auto& row : paper) {
    const auto it = measured.find(row.part);
    t.row({row.part,
           it != measured.end() ? std::to_string(it->second.alus) : "0",
           std::to_string(row.alus),
           it != measured.end() ? TextTable::pct(it->second.busy_percent, 2) : "-",
           TextTable::pct(row.pct, 1)});
  }
  benchutil::print_table(t);
  benchutil::note(
      "note: the FIR125 row differs because ceil(125/8) = 16 multiply-accumulates\n"
      "per 192 kHz sample on two ALUs occupy 16/336 = 4.76 % -- the paper's own\n"
      "polyphase description (section 6.2.1) implies this; its 0.5 % appears to\n"
      "count only part of that work.  See EXPERIMENTS.md.");

  const auto blob = mapping.serialize_config();
  benchutil::note("\nconfiguration size: " + std::to_string(blob.size()) +
                  " bytes (paper toolchain: 1110 bytes)");
  benchutil::note("power: " + benchutil::vs(mapping.power_mw(), 38.7, 1) +
                  " mW at 64.512 MHz (0.6 mW/MHz, 0.13 um)");
}

void BM_MontiumMapping(benchmark::State& state) {
  DdcMapping mapping(core::DdcConfig::reference(10.0e6));
  Rng rng(31);
  const auto in = dsp::random_samples(12, 2688, rng);
  for (auto _ : state) {
    for (auto x : in) benchmark::DoNotOptimize(mapping.step(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_MontiumMapping);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
