// Reproduces Table 7: "Summary of results" -- every architecture's power for
// the reference DDC, native and technology-scaled, assembled from the five
// models of this library (not copied from the paper; the paper column is
// printed alongside for comparison).
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/asic/gc4016.hpp"
#include "src/asic/lowpower_ddc.hpp"
#include "src/dsp/signal.hpp"
#include "src/energy/architecture_result.hpp"
#include "src/fpga/ddc_fpga.hpp"
#include "src/gpp/ddc_program.hpp"
#include "src/montium/ddc_mapping.hpp"

namespace {
using namespace twiddc;

struct Row {
  std::string solution;
  std::string size;
  double freq_mhz;
  double vdd;
  double ours_mw;
  double paper_mw;
  std::string area;
};

void report() {
  benchutil::heading("Table 7 -- Summary of results");

  const auto um130 = energy::TechnologyNode::um130();
  std::vector<Row> rows;

  // TI GC4016 (one channel at 80 MHz -- the datasheet GSM point).
  asic::Gc4016Config gcfg;
  gcfg.input_rate_hz = 80.0e6;
  asic::Gc4016ChannelConfig ch;
  ch.nco_freq_hz = 15.0e6;
  ch.cic_decimation = 64;
  gcfg.channels = {ch};
  asic::Gc4016 gc(gcfg);
  rows.push_back({"TI GC4016", "0.25um", 80.0, 2.5, gc.power_mw_native(), 115.0, "n.a."});
  rows.push_back({"TI GC4016 (est.)", "0.13um", 80.0, 1.2, gc.power_mw_at(um130), 13.8,
                  "n.a."});

  // Customised low-power DDC.
  asic::CustomLowPowerDdc lp(core::DdcConfig::reference(10.0e6));
  rows.push_back({"Customised Low Power DDC", "0.18um", 64.512, 1.8, lp.power_mw_native(),
                  27.0, "1.7mm2*"});
  rows.push_back({"Customised Low Power DDC (est.)", "0.13um", 64.512, 1.2,
                  lp.power_mw_at(um130), 8.7, "n.a."});

  // ARM922T: simulate and apply 0.25 mW/MHz.
  const auto cfg = core::DdcConfig::reference(10.0e6);
  gpp::DdcProgram prog(cfg);
  const std::size_t n = 2688 * 30;
  const auto in =
      dsp::quantize_signal(dsp::make_tone(10.0025e6, cfg.input_rate_hz, n, 0.7), 12);
  const auto arm = prog.run(in);
  rows.push_back({"ARM922T", "0.13um", arm.required_clock_mhz(n, cfg.input_rate_hz), 1.08,
                  arm.power_mw(n, cfg.input_rate_hz), 2435.0, "3.2mm2"});

  // FPGAs: Table 7 lists the *dynamic* power at the assumed 10% internal
  // toggle; we report the model at the toggle rate measured from RTL sim.
  auto fcfg = cfg;
  fcfg.fir_taps = 124;
  fpga::DdcFpgaTop rtl(fcfg);
  Rng rng(77);
  rtl.process(dsp::random_samples(12, 2688 * 20, rng));
  const double toggle = rtl.toggle_summary().rate_percent();
  const auto cyc1 = fpga::PowerModel::cyclone1();
  const auto cyc2 = fpga::PowerModel::cyclone2();
  rows.push_back({"Altera Cyclone I (dyn @10%)", "0.13um", 64.512, 1.5,
                  cyc1.dynamic_mw(10.0), 93.4, "n.a."});
  rows.push_back({"Altera Cyclone II (dyn @10%)", "0.09um", 64.512, 1.2,
                  cyc2.dynamic_mw(10.0), 31.11, "n.a."});
  rows.push_back({"Altera Cyclone II (est.)", "0.13um", 64.512, 1.2,
                  energy::scale_power_mw(cyc2.dynamic_mw(10.0),
                                         energy::TechnologyNode::um90(), um130),
                  44.94, "n.a."});

  // Montium TP.
  montium::DdcMapping mont(cfg);
  rows.push_back({"Montium TP", "0.13um", 64.512, 1.2, mont.power_mw(), 38.7, "2.2mm2"});

  TextTable t;
  t.header({"Solution", "Size", "Freq[MHz]", "Vdd", "Power ours", "Power paper", "Area"});
  for (const auto& r : rows) {
    t.row({r.solution, r.size, TextTable::num(r.freq_mhz, r.freq_mhz > 1000 ? 0 : 3),
           TextTable::num(r.vdd, 2), TextTable::num_unit(r.ours_mw, "mW", 1),
           TextTable::num_unit(r.paper_mw, "mW", 1), r.area});
  }
  benchutil::print_table(t);
  benchutil::note("* the paper's Table 7 prints 17mm2; section 3.2 says 1.7mm2.");
  benchutil::note("measured internal toggle of the FPGA design: " +
                  TextTable::pct(toggle, 1) + " (the paper assumed 10%)");

  // The paper's two conclusions, checked from our numbers.
  const double asic_best = std::min(rows[2].ours_mw, rows[0].ours_mw);
  benchutil::note("\nconclusion checks:");
  benchutil::note("  static scenario: customised ASIC is the minimum (" +
                  TextTable::num(rows[2].ours_mw, 1) + " mW) -- " +
                  (rows[2].ours_mw <= asic_best ? "HOLDS" : "VIOLATED"));
  const double cyc2_dyn = rows[6].ours_mw;
  const double cyc1_dyn = rows[5].ours_mw;
  benchutil::note(std::string("  reconfigurable scenario: Cyclone II beats Cyclone I (") +
                  TextTable::num(cyc2_dyn, 1) + " vs " + TextTable::num(cyc1_dyn, 1) +
                  " mW) -- " + (cyc2_dyn < cyc1_dyn ? "HOLDS" : "VIOLATED"));
  const double mont_mw = rows[8].ours_mw;
  const double cyc2_scaled = rows[7].ours_mw;
  benchutil::note(std::string("  all at 0.13um: Montium lowest of the reconfigurables (") +
                  TextTable::num(mont_mw, 1) + " vs Cyclone II " +
                  TextTable::num(cyc2_scaled, 1) + " mW) -- " +
                  (mont_mw < cyc2_scaled ? "HOLDS" : "VIOLATED"));

  benchutil::note("\nenergy per complex output sample at 24 kHz (derived):");
  for (const auto& r : rows) {
    energy::ArchitectureResult ar;
    ar.power_mw = r.ours_mw;
    benchutil::note("  " + r.solution + ": " +
                    TextTable::num(ar.energy_per_output_nj() / 1000.0, 2) + " uJ");
  }
}

void BM_AssembleSummary(benchmark::State& state) {
  for (auto _ : state) {
    asic::CustomLowPowerDdc lp(core::DdcConfig::reference(10.0e6));
    benchmark::DoNotOptimize(lp.power_mw_native());
    montium::DdcMapping mont(core::DdcConfig::reference(10.0e6));
    benchmark::DoNotOptimize(mont.power_mw());
  }
}
BENCHMARK(BM_AssembleSummary);

}  // namespace

int main(int argc, char** argv) { return twiddc::benchutil::run(argc, argv, &report); }
