// Pipeline hot-path throughput: block-based process_block() vs per-sample
// push() on the paper's Figure 1 chain (and the GC4016 Figure 4 channel),
// per-kernel block rates (the SIMD-shim kernels NCO/mixer and polyphase
// FIR, plus the unrolled-cascade CIC kernel, which is scalar by nature),
// and multi-channel ChannelBank batch scaling -- emitted as machine-
// readable JSON lines so successive PRs can track the performance
// trajectory.  The "simd" field records the build's compiled ISA path; for
// the cic2/cic5 lines it identifies the build, not a vector kernel.
//
// Output format (one JSON object per line, prefixed section aside):
//   {"bench": "throughput_pipeline", "chain": "figure1:wide16",
//    "push_msamples_per_s": ..., "block_msamples_per_s": ...,
//    "speedup_block_over_push": ..., "block_samples": ..., "simd": "avx2"}
//   {"bench": "throughput_pipeline", "kernel": "cic2", ...}
//   {"bench": "throughput_pipeline", "chain": "channel_bank:figure1",
//    "channels": 8, "workers": 2, "aggregate_msamples_per_s": ...,
//    "scaling_vs_single": ...}
//   {"bench": "throughput_pipeline", "chain": "stream_engine:figure1",
//    "sessions": 16, "workers": 4, "aggregate_msamples_per_s": ...,
//    "scaling_vs_single": ...}
// Keys are stable and additive across PRs; "kernel" and "channels" lines are
// new in PR 2, "sessions" lines (end-to-end streaming-engine serving rate per
// concurrent-session count) are new in PR 4, "chain" lines keep the PR 1
// schema plus the "simd" tag.  PR 6 adds "figure1:fused_vs_staged" (plan
// compiler's fused tile executor vs the staged pipeline, bit-exactness
// asserted inline) and "plan_cache" (compile-time amortisation: 64 sessions
// sharing one config vs 64 distinct configs).  PR 7 adds
// "stream_engine:overload" (survivor p99 inter-chunk gap at 2x
// oversubscription, one line with "shed": false and one with "shed": true --
// the graceful-degradation headline).  PR 8 adds "stream_engine:saturation"
// (aggregate serving rate + p99 inter-chunk gap at 64..4096 sessions,
// single engine vs sharded EngineGroup -- the scale-out headline) and the
// "workers_effective" field (TWIDDC_WORKERS / set_workers land here).
// PR 10 adds "figure1:packed_fir" (cross-channel packed kernels vs
// monolithic per-channel chains at 64 channels, one line per kernel tier)
// and "figure1:da_vs_mac" (distributed-arithmetic FIR lowering vs the MAC
// kernels, bit-exact, with the energy model's multiplier-vs-ROM numbers),
// and every line is teed through benchutil::emit, so --out FILE /
// TWIDDC_BENCH_OUT appends BENCH_<name>.json records for the trajectory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/topology.hpp"
#include "src/common/trace.hpp"
#include "src/stream/engine.hpp"
#include "src/stream/engine_group.hpp"
#include "src/stream/sink.hpp"
#include "src/stream/source.hpp"

#include "bench/bench_util.hpp"
#include "src/asic/gc4016.hpp"
#include "src/backends/builtin.hpp"
#include "src/common/simd.hpp"
#include "src/core/backend.hpp"
#include "src/core/channel_bank.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/core/float_ddc.hpp"
#include "src/core/plan_compiler.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/fir.hpp"
#include "src/energy/da_model.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/mixer.hpp"
#include "src/dsp/nco.hpp"
#include "src/dsp/signal.hpp"

namespace {

using twiddc::benchutil::JsonLine;
using twiddc::benchutil::Throughput;
using twiddc::benchutil::measure_throughput;
using twiddc::core::ChainPlan;
using twiddc::core::ChannelBank;
using twiddc::core::DatapathSpec;
using twiddc::core::DdcConfig;
using twiddc::core::FixedDdc;
using twiddc::core::IqSample;

constexpr std::size_t kBlock = 2688 * 16;  // 16 output frames per rep

std::vector<std::int64_t> figure1_stimulus(const DdcConfig& cfg, std::size_t n) {
  return twiddc::dsp::quantize_signal(
      twiddc::dsp::make_tone(10.0025e6, cfg.input_rate_hz, n, 0.7), 12);
}

void bench_figure1(const DatapathSpec& spec) {
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto input = figure1_stimulus(cfg, kBlock);

  FixedDdc by_push(cfg, spec);
  std::vector<IqSample> sink;
  const Throughput push = measure_throughput(input.size(), [&] {
    sink.clear();
    for (std::int64_t x : input) {
      if (auto y = by_push.push(x)) sink.push_back(*y);
    }
  });

  FixedDdc by_block(cfg, spec);
  const Throughput block = measure_throughput(input.size(), [&] {
    sink.clear();
    by_block.process_block(input, sink);
  });

  twiddc::benchutil::emit(
      "figure1:" + spec.name,
      twiddc::benchutil::throughput_json("throughput_pipeline",
                                         "figure1:" + spec.name, push, block,
                                         input.size())
          .field("simd", twiddc::simd::isa_name()));
}

// -------------------------------------------------- fused vs staged chain

// The plan-compiler acceptance line: the same Figure-1 chain executed by the
// staged DdcPipeline (one memory sweep per stage) and by the fused
// FusedChainExec (L1-sized tiles, conditioning fused into stage outputs).
// The two paths are bit-exact (asserted here and pinned by tests); the line
// records what the fusion buys in block throughput:
//   {"bench": "throughput_pipeline", "chain": "figure1:fused_vs_staged",
//    "staged_msamples_per_s": ..., "fused_msamples_per_s": ...,
//    "speedup_fused_over_staged": ..., ...}

void bench_fused_vs_staged() {
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  const auto plan = ChainPlan::figure1(cfg, spec);
  const auto input = figure1_stimulus(cfg, kBlock);

  twiddc::core::DdcPipeline staged(plan);
  std::vector<IqSample> sink;
  const Throughput t_staged = measure_throughput(input.size(), [&] {
    sink.clear();
    staged.process_block(input, sink);
  });
  const std::vector<IqSample> staged_out = sink;

  twiddc::core::FusedChainExec fused(
      twiddc::core::CompiledPlanCache::instance().get_or_compile(plan));
  const Throughput t_fused = measure_throughput(input.size(), [&] {
    sink.clear();
    fused.process_block(input, sink);
  });

  // Not a substitute for the test suite, but a bench that silently compared
  // two different computations would be worse than no bench.
  staged.reset();
  fused.reset();
  std::vector<IqSample> a;
  std::vector<IqSample> b;
  staged.process_block(input, a);
  fused.process_block(input, b);
  const bool bit_exact = a == b;

  JsonLine j;
  j.field("bench", std::string("throughput_pipeline"))
      .field("chain", std::string("figure1:fused_vs_staged"))
      .field("staged_msamples_per_s", t_staged.msamples_per_s())
      .field("fused_msamples_per_s", t_fused.msamples_per_s())
      .field("speedup_fused_over_staged",
             t_staged.msamples_per_s() > 0.0
                 ? t_fused.msamples_per_s() / t_staged.msamples_per_s()
                 : 0.0)
      .field("bit_exact", bit_exact)
      .field("block_samples", input.size())
      .field("simd", twiddc::simd::isa_name());
  twiddc::benchutil::emit("figure1:fused_vs_staged", j);
}

// ----------------------------------------------------------- DA vs MAC FIR

// Distributed-arithmetic lowering headline: the same compiled Figure-1 plan
// executed with the FIR tail forced to the MAC kernels and forced to the
// 4-bit-slice DA engine, bit-exactness asserted inline (the DA per-tile
// fits-guard makes the lowering unconditionally exact).  Software
// throughput usually favours MAC -- the SIMD dot kernels are the fast path
// -- so the line exists to keep the DA path honest in the trajectory and to
// surface the hardware-side trade the energy model quantifies: zero
// multipliers vs ROM bits and W lookups per output (arXiv:1403.4554
// direction).
//   {"bench": "throughput_pipeline", "chain": "figure1:da_vs_mac",
//    "mac_msamples_per_s": ..., "da_msamples_per_s": ..., "bit_exact": true,
//    "da_stages": 1, "mac_multipliers": ..., "da_table_bits": ..., ...}

void bench_da_vs_mac() {
  using twiddc::core::FirLoweringPolicy;
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  const auto plan = ChainPlan::figure1(cfg, spec);
  const auto input = figure1_stimulus(cfg, kBlock);
  const auto compiled =
      twiddc::core::CompiledPlanCache::instance().get_or_compile(plan);

  const FirLoweringPolicy saved = twiddc::core::fir_lowering_policy();
  double rate[2] = {0.0, 0.0};
  std::vector<IqSample> out[2];
  std::size_t da_stages = 0;
  for (const bool da : {false, true}) {
    twiddc::core::set_fir_lowering_policy(da ? FirLoweringPolicy::kForceDa
                                             : FirLoweringPolicy::kForceMac);
    twiddc::core::FusedChainExec exec(compiled);
    if (da) {
      for (std::size_t s = 0; s < plan.stages.size(); ++s)
        if (exec.active_lowering(s) == twiddc::core::FirLowering::kDa)
          ++da_stages;
    }
    std::vector<IqSample> sink;
    const Throughput t = measure_throughput(input.size(), [&] {
      sink.clear();
      exec.process_block(input, sink);
    });
    rate[da ? 1 : 0] = t.msamples_per_s();
    exec.reset();
    exec.process_block(input, out[da ? 1 : 0]);
  }
  twiddc::core::set_fir_lowering_policy(saved);

  // Hardware-side costs of the same FIR stages, from the shared cost model.
  std::size_t multipliers = 0;
  std::size_t table_bits = 0;
  std::size_t lookups = 0;
  for (const auto& c : twiddc::energy::plan_fir_costs(plan)) {
    multipliers += c.multipliers;
    table_bits += c.table_bits;
    lookups += c.lookups_per_output;
  }

  JsonLine j;
  j.field("bench", std::string("throughput_pipeline"))
      .field("chain", std::string("figure1:da_vs_mac"))
      .field("mac_msamples_per_s", rate[0])
      .field("da_msamples_per_s", rate[1])
      .field("da_over_mac", rate[0] > 0.0 ? rate[1] / rate[0] : 0.0)
      .field("bit_exact", out[0] == out[1])
      .field("da_stages", da_stages)
      .field("mac_multipliers", multipliers)
      .field("da_table_bits", table_bits)
      .field("da_lookups_per_output", lookups)
      .field("block_samples", input.size())
      .field("simd", twiddc::simd::isa_name());
  twiddc::benchutil::emit("figure1:da_vs_mac", j);
}

// ---------------------------------------------------------- plan cache

// Compile-time amortisation: 64 sessions opening the SAME config share one
// CompiledPlan (63 cache hits), while 64 distinct configs each compile.
//   {"bench": "throughput_pipeline", "chain": "plan_cache", "sessions": 64,
//    "shared_hits": 63, "shared_ms": ..., "distinct_ms": ...,
//    "amortization": distinct/shared, ...}

void bench_plan_cache() {
  auto& cache = twiddc::core::CompiledPlanCache::instance();
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  constexpr std::size_t kSessions = 64;

  cache.clear();
  const auto before_shared = cache.stats();
  const auto shared_plan = ChainPlan::figure1(cfg, spec);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < kSessions; ++s)
    (void)cache.get_or_compile(shared_plan);
  const double shared_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  const auto after_shared = cache.stats();

  cache.clear();
  std::vector<ChainPlan> distinct;
  for (std::size_t s = 0; s < kSessions; ++s) {
    auto c = cfg;
    c.nco_freq_hz += 25.0e3 * static_cast<double>(s);
    distinct.push_back(ChainPlan::figure1(c, spec));
  }
  const auto before_distinct = cache.stats();
  const auto t1 = std::chrono::steady_clock::now();
  for (const auto& p : distinct) (void)cache.get_or_compile(p);
  const double distinct_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t1)
          .count();
  const auto after_distinct = cache.stats();

  JsonLine j;
  j.field("bench", std::string("throughput_pipeline"))
      .field("chain", std::string("plan_cache"))
      .field("sessions", kSessions)
      .field("shared_hits",
             static_cast<std::size_t>(after_shared.hits - before_shared.hits))
      .field("shared_misses",
             static_cast<std::size_t>(after_shared.misses - before_shared.misses))
      .field("shared_ms", shared_ms)
      .field("distinct_misses", static_cast<std::size_t>(after_distinct.misses -
                                                         before_distinct.misses))
      .field("distinct_ms", distinct_ms)
      .field("amortization", shared_ms > 0.0 ? distinct_ms / shared_ms : 0.0)
      .field("hit_rate_shared",
             static_cast<double>(after_shared.hits - before_shared.hits) /
                 static_cast<double>(kSessions))
      .field("simd", twiddc::simd::isa_name());
  twiddc::benchutil::emit("plan_cache", j);
}

void bench_gc4016() {
  const auto gcfg = twiddc::asic::Gc4016Config::gsm_example();
  twiddc::asic::Gc4016 push_chip(gcfg);
  twiddc::asic::Gc4016 block_chip(gcfg);
  const std::size_t n = static_cast<std::size_t>(
      push_chip.channel(0).total_decimation()) * 64;
  const auto input = twiddc::dsp::quantize_signal(
      twiddc::dsp::make_tone(15.0025e6, gcfg.input_rate_hz, n, 0.7), gcfg.input_bits);

  std::vector<twiddc::asic::Gc4016Output> sink;
  const Throughput push = measure_throughput(input.size(), [&] {
    sink.clear();
    auto& ch = push_chip.channel(0);
    for (std::int64_t x : input) {
      if (auto y = ch.push(x)) sink.push_back(*y);
    }
  });
  const Throughput block = measure_throughput(input.size(), [&] {
    sink.clear();
    block_chip.channel(0).process_block(input, sink);
  });

  twiddc::benchutil::emit(
      "gc4016:figure4",
      twiddc::benchutil::throughput_json("throughput_pipeline", "gc4016:figure4",
                                         push, block, input.size())
          .field("simd", twiddc::simd::isa_name()));
}

// ------------------------------------------------------------- kernel rates

void kernel_line(const std::string& kernel, const Throughput& t, std::size_t n) {
  twiddc::benchutil::emit(
      "kernel:" + kernel,
      twiddc::benchutil::kernel_json("throughput_pipeline", kernel, t, n)
          .field("simd", twiddc::simd::isa_name()));
}

void bench_kernel_nco_mixer() {
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto input = figure1_stimulus(cfg, kBlock);
  twiddc::dsp::Nco::Config nc;
  nc.freq_hz = cfg.nco_freq_hz;
  nc.sample_rate_hz = cfg.input_rate_hz;
  twiddc::dsp::Nco nco(nc);
  twiddc::dsp::ComplexMixer mixer(twiddc::dsp::ComplexMixer::Config{});
  std::vector<std::int32_t> cos_v(input.size());
  std::vector<std::int32_t> sin_v(input.size());
  std::vector<std::int64_t> out_i(input.size());
  std::vector<std::int64_t> out_q(input.size());
  const Throughput t = measure_throughput(input.size(), [&] {
    nco.next_block(cos_v, sin_v);
    mixer.mix_block(input, cos_v, sin_v, out_i, out_q);
  });
  kernel_line("nco_mixer", t, input.size());
}

void bench_kernel_cic(const std::string& name, int stages, int decimation) {
  twiddc::dsp::CicDecimator::Config cc;
  cc.stages = stages;
  cc.decimation = decimation;
  cc.input_bits = 16;
  twiddc::dsp::CicDecimator cic(cc);
  std::vector<std::int64_t> input(kBlock);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<std::int64_t>((i * 2654435761u) % 32768) - 16384;
  std::vector<std::int64_t> out;
  const Throughput t = measure_throughput(input.size(), [&] {
    out.clear();
    cic.process_block(input, out);
  });
  kernel_line(name, t, input.size());
}

void bench_kernel_fir125() {
  const auto ideal = twiddc::dsp::design_lowpass(125, 0.1, twiddc::dsp::Window::kBlackman);
  const auto q16 = twiddc::dsp::quantize_coefficients(ideal, 15);
  twiddc::dsp::PolyphaseFirDecimator<std::int64_t> fir(
      std::vector<std::int64_t>(q16.begin(), q16.end()), 8);
  std::vector<std::int64_t> input(kBlock);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<std::int64_t>((i * 2654435761u) % 32768) - 16384;
  std::vector<std::int64_t> out;
  const Throughput t = measure_throughput(input.size(), [&] {
    out.clear();
    fir.process_block(input, out);
  });
  kernel_line("fir125_polyphase", t, input.size());
}

// ------------------------------------------------------ backend plan rates
//
// One line per registered ArchitectureBackend running its own lowering of
// the reference rate plan through the uniform process_block() interface:
//   {"bench": "throughput_pipeline", "backend": "montium",
//    "plan": "figure1:wide-16bit", "block_msamples_per_s": ..., ...}
// The functional backends track the hot path; the cycle-true simulators
// (fpga-rtl, montium, gpp-arm) are orders of magnitude slower by design --
// the lines exist so a regression in *any* execution path shows up in the
// trajectory.

void bench_backends() {
  twiddc::backends::register_builtin();
  const auto cfg = DdcConfig::reference(10.0e6);
  for (auto& backend : twiddc::core::BackendRegistry::instance().create_all()) {
    twiddc::core::ChainPlan plan;
    try {
      plan = backend->plan_for(cfg);
      backend->configure(plan);
    } catch (const twiddc::core::LoweringError&) {
      continue;
    }
    // Cycle-level simulators get a short block and budget; functional
    // backends get the full hot-path block.
    const bool cycle_sim = !backend->capabilities().arbitrary_topology;
    const std::size_t n = cycle_sim ? 2688 * 4 : kBlock;
    const auto input = figure1_stimulus(cfg, n);
    std::vector<IqSample> sink;
    const Throughput t = measure_throughput(
        input.size(),
        [&] {
          // Reset per rep so every rep runs the identical settled-state
          // block (the gpp backend streams incrementally now, but a
          // deterministic rep is still the comparable measurement).
          backend->reset();
          sink.clear();
          backend->process_block(input, sink);
        },
        cycle_sim ? 0.1 : 0.3);
    JsonLine j;
    j.field("bench", std::string("throughput_pipeline"))
        .field("backend", backend->name())
        .field("plan", plan.name)
        .field("block_msamples_per_s", t.msamples_per_s())
        .field("block_samples", input.size())
        .field("simd", twiddc::simd::isa_name());
    twiddc::benchutil::emit("backend:" + backend->name(), j);
  }
}

// ------------------------------------------------------- multi-channel bank

// Skewed decimation mix (the work-stealing acceptance case): channels whose
// per-sample and per-output costs differ wildly, so a static shard idles
// most of a pool while one worker grinds.  The tile chains rebalance by
// stealing; this line is where that win lands in the trajectory:
//   {"bench": "throughput_pipeline", "chain": "channel_bank:skewed",
//    "channels": 9, "workers": N, "aggregate_msamples_per_s": ...,
//    "scaling_vs_single": ...}   (scaling is vs the serial skewed run)

void bench_channel_bank_skewed() {
  const auto spec = DatapathSpec::wide16();
  auto light = DdcConfig::reference(10.0e6);
  auto heavy = light;
  heavy.cic2_decimation = 64;
  heavy.cic5_decimation = 42;
  heavy.fir_decimation = 16;  // decimation 43008: few outputs, long CIC
  auto mid = light;
  mid.cic2_decimation = 8;
  mid.fir_decimation = 4;  // decimation 672: output-heavy, FIR-bound
  std::vector<ChainPlan> plans;
  for (int c = 0; c < 3; ++c) {
    auto l = light;
    l.nco_freq_hz += 25.0e3 * c;
    plans.push_back(ChainPlan::figure1(l, spec));
    plans.push_back(ChainPlan::figure1(heavy, spec));
    plans.push_back(ChainPlan::figure1(mid, spec));
  }
  const auto input = figure1_stimulus(light, 2688 * 64);
  const int hw = std::max(2u, std::thread::hardware_concurrency());

  double serial_rate = 0.0;
  for (int workers : {1, hw}) {
    ChannelBank bank(plans, workers);
    std::vector<std::vector<IqSample>> planar;
    const std::size_t channel_samples = input.size() * plans.size();
    const Throughput t = measure_throughput(channel_samples, [&] {
      for (auto& p : planar) p.clear();
      bank.process_block(input, planar);
    });
    if (workers == 1) serial_rate = t.msamples_per_s();
    twiddc::benchutil::emit(
        "channel_bank:skewed",
        twiddc::benchutil::channel_bank_json("throughput_pipeline",
                                             "channel_bank:skewed", plans.size(),
                                             workers, t, serial_rate, input.size())
            .field("simd", twiddc::simd::isa_name()));
  }
}

void bench_channel_bank() {
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  // Larger blocks than the single-chain bench: sharded mode amortises one
  // pool wake per block, and realistic batch serving hands the bank multi-
  // millisecond chunks.
  const auto input = figure1_stimulus(cfg, 2688 * 64);
  // At least 2 so a sharded line always exists (the CI gate reads it), even
  // on hosts where hardware_concurrency() reports 1 or 0.
  const int hw = std::max(2u, std::thread::hardware_concurrency());

  double single_rate = 0.0;
  for (std::size_t channels : {1u, 2u, 4u, 8u}) {
    std::vector<ChainPlan> plans;
    for (std::size_t c = 0; c < channels; ++c) {
      // Slightly detuned per-channel NCOs, GC4016-style multi-carrier use.
      auto ch_cfg = cfg;
      ch_cfg.nco_freq_hz = cfg.nco_freq_hz + 25.0e3 * static_cast<double>(c);
      plans.push_back(ChainPlan::figure1(ch_cfg, spec));
    }
    for (int workers : {1, hw}) {
      if (workers != 1 && channels == 1) continue;
      ChannelBank bank(plans, workers);
      std::vector<std::vector<IqSample>> planar;
      const std::size_t channel_samples = input.size() * channels;
      const Throughput t = measure_throughput(channel_samples, [&] {
        for (auto& p : planar) p.clear();
        bank.process_block(input, planar);
      });
      if (channels == 1 && workers == 1) single_rate = t.msamples_per_s();
      twiddc::benchutil::emit(
          "channel_bank:figure1",
          twiddc::benchutil::channel_bank_json("throughput_pipeline",
                                               "channel_bank:figure1", channels,
                                               workers, t, single_rate,
                                               input.size())
              .field("simd", twiddc::simd::isa_name()));
    }
  }
}

// ------------------------------------------------------- packed FIR tiers

// Cross-channel packing headline: 64 identical-geometry Figure-1 channels
// (detuned NCOs, same CIC/FIR geometry, so the bank packs them 4 or 8 to a
// register) on ONE worker, the packed cross-channel kernels (CIC
// packed4/packed8 plus the FIR tail lane-packing) against the same bank
// with set_packing(false) -- monolithic per-channel chains.  One line per
// available kernel tier: the AVX-512 runtime cap is forced off for the
// "avx2" line (on builds without AVX2 intrinsics that line degrades to the
// scalar tier and the speedup sits near 1), and an "avx512" line is added
// when the runtime tier is active on this host.  Packed-vs-monolithic
// bit-exactness is asserted inline, same spirit as figure1:fused_vs_staged.
// The CI bench gate reads the "avx2"-tier line and requires
// speedup_packed_over_monolithic >= 1.2 at 64 channels.

void bench_packed_fir() {
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  constexpr std::size_t kChannels = 64;
  std::vector<ChainPlan> plans;
  for (std::size_t c = 0; c < kChannels; ++c) {
    auto ch_cfg = cfg;
    ch_cfg.nco_freq_hz = cfg.nco_freq_hz + 25.0e3 * static_cast<double>(c);
    plans.push_back(ChainPlan::figure1(ch_cfg, spec));
  }
  const auto input = figure1_stimulus(cfg, 2688 * 16);

  struct Tier {
    const char* label;
    bool avx512;
  };
  std::vector<Tier> tiers{{"avx2", false}};
  if (twiddc::simd::avx512_active()) tiers.push_back({"avx512", true});

  for (const Tier& tier : tiers) {
    twiddc::simd::ScopedAvx512 cap(tier.avx512);
    double rate[2] = {0.0, 0.0};
    std::vector<std::vector<IqSample>> out[2];
    for (const bool packed : {false, true}) {
      ChannelBank bank(plans, /*workers=*/1);
      bank.set_packing(packed);
      std::vector<std::vector<IqSample>> planar;
      const std::size_t channel_samples = input.size() * kChannels;
      const Throughput t = measure_throughput(channel_samples, [&] {
        for (auto& p : planar) p.clear();
        bank.process_block(input, planar);
      });
      rate[packed ? 1 : 0] = t.msamples_per_s();
      // Fresh bank for the bit-exactness capture: the timed reps above left
      // settled ring history behind.
      ChannelBank check(plans, /*workers=*/1);
      check.set_packing(packed);
      check.process_block(input, out[packed ? 1 : 0]);
    }
    JsonLine j;
    j.field("bench", std::string("throughput_pipeline"))
        .field("chain", std::string("figure1:packed_fir"))
        .field("channels", kChannels)
        .field("workers", std::size_t{1})
        .field("tier", std::string(tier.label))
        .field("monolithic_msamples_per_s", rate[0])
        .field("packed_msamples_per_s", rate[1])
        .field("speedup_packed_over_monolithic",
               rate[0] > 0.0 ? rate[1] / rate[0] : 0.0)
        .field("bit_exact", out[0] == out[1])
        .field("block_samples", input.size())
        .field("simd", twiddc::simd::active_path());
    twiddc::benchutil::emit("figure1:packed_fir", j);
  }
}

// ------------------------------------------------------- streaming engine
//
// End-to-end serving rate of the stream layer: one shared feed, N concurrent
// figure-1 sessions on the native backend, pumped through the session
// engine's rings and worker pool and drained by this thread.  The aggregate
// is channel-samples/s (sessions x feed samples / wall clock), so the line
// tracks serving scale -- rings, fan-out, scheduling included -- not just
// kernel speed.

void bench_stream_sessions() {
  twiddc::backends::register_builtin();
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  const auto feed = figure1_stimulus(cfg, 2688 * 64);
  const int hw = static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));

  double single_rate = 0.0;
  // 256 sessions is the scheduler-era acceptance point: sessions far
  // outnumber workers, so the line tracks admission/fairness overhead and
  // targeted-wakeup scaling, not just kernel speed.
  for (const std::size_t sessions : {1u, 4u, 16u, 64u, 256u}) {
    twiddc::stream::EngineOptions opts;
    opts.workers = hw;
    opts.block_samples = 4096;
    twiddc::stream::StreamEngine engine(
        std::make_unique<twiddc::stream::VectorSource>(feed), opts);
    std::vector<std::shared_ptr<twiddc::stream::Session>> open;
    for (std::size_t s = 0; s < sessions; ++s) {
      auto ch_cfg = cfg;
      ch_cfg.nco_freq_hz = cfg.nco_freq_hz + 25.0e3 * static_cast<double>(s);
      open.push_back(engine.open(twiddc::core::ChainPlan::figure1(ch_cfg, spec),
                                 twiddc::backends::kNative));
    }
    const auto start = std::chrono::steady_clock::now();
    engine.start();
    const auto chunks = twiddc::stream::drain_all(engine, open);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    engine.stop();
    const double aggregate =
        static_cast<double>(feed.size() * sessions) / elapsed / 1e6;
    if (sessions == 1) single_rate = aggregate;
    JsonLine j;
    j.field("bench", std::string("throughput_pipeline"))
        .field("chain", std::string("stream_engine:figure1"))
        .field("sessions", sessions)
        .field("workers", static_cast<std::size_t>(hw))
        .field("workers_effective", static_cast<std::size_t>(engine.effective_workers()))
        .field("block_samples", opts.block_samples)
        .field("aggregate_msamples_per_s", aggregate)
        .field("scaling_vs_single", single_rate > 0.0 ? aggregate / single_rate : 0.0)
        .field("chunks", chunks.front().size())
        .field("simd", twiddc::simd::isa_name());
    twiddc::benchutil::emit("stream_engine:figure1", j);
  }
}

// ---------------------------------------------------- overload / shedding
//
// Survivor tail latency at 2x oversubscription: `hw` weight-4 sessions are
// actively drained (the survivors) while `hw` weight-1 sessions are paused
// dead clients whose kBlock input rings fill and park the pump -- the
// overload the watchdog's shedding exists to break.  The same setup runs
// with shedding off and on; the probe is the p99 inter-chunk arrival gap
// pooled across survivors (LatencyRecorder, tail gap included, so a stalled
// survivor's silence is charged to the distribution).  With shedding off
// the survivors starve behind the parked pump; with it on the watchdog
// discards the victims' backlogs (GapCause::kShed in their streams) and the
// survivors keep flowing.

void bench_stream_overload() {
  twiddc::backends::register_builtin();
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  const int hw = static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  constexpr std::chrono::milliseconds kWindow{300};

  for (const bool shed : {false, true}) {
    twiddc::stream::EngineOptions opts;
    opts.workers = hw;
    opts.block_samples = 4096;
    opts.session_queue_blocks = 4;
    opts.watchdog_interval_us = 500;
    opts.shed_enabled = shed;
    opts.shed_pump_stall_ms = 5;
    opts.shed_queue_fraction = 0.5;
    twiddc::stream::StreamEngine engine(
        std::make_unique<twiddc::stream::ToneSource>(10.0025e6, cfg.input_rate_hz,
                                                     12, 0.7),
        opts);

    std::vector<std::shared_ptr<twiddc::stream::Session>> survivors;
    for (int s = 0; s < 2 * hw; ++s) {
      auto ch_cfg = cfg;
      ch_cfg.nco_freq_hz = cfg.nco_freq_hz + 25.0e3 * static_cast<double>(s);
      auto session = engine.open(twiddc::core::ChainPlan::figure1(ch_cfg, spec),
                                 twiddc::backends::kNative);
      if (s < hw) {
        session->set_weight(4);
        survivors.push_back(std::move(session));
      } else {
        session->set_weight(1);
        session->set_paused(true);  // dead client: never polls, ring fills
      }
    }

    twiddc::stream::LatencyRecorder recorder;
    engine.start();
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 < kWindow) {
      for (const auto& s : survivors)
        for (auto& chunk : s->poll())
          recorder.on_chunk(s->id(), std::move(chunk));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    recorder.close_window();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    engine.stop();

    std::vector<std::uint64_t> ids;
    std::uint64_t survivor_chunks = 0;
    std::uint64_t survivor_samples = 0;
    for (const auto& s : survivors) {
      ids.push_back(s->id());
      survivor_chunks += recorder.chunks(s->id());
      survivor_samples += recorder.samples(s->id());
    }
    JsonLine j;
    j.field("bench", std::string("throughput_pipeline"))
        .field("chain", std::string("stream_engine:overload"))
        .field("shed", shed)
        .field("sessions", static_cast<std::size_t>(2 * hw))
        .field("workers", static_cast<std::size_t>(hw))
        .field("workers_effective", static_cast<std::size_t>(engine.effective_workers()))
        .field("block_samples", opts.block_samples)
        .field("window_ms", static_cast<std::size_t>(kWindow.count()))
        .field("survivor_p50_gap_ms", recorder.gap_quantile_ms(ids, 0.50))
        .field("survivor_p99_gap_ms", recorder.gap_quantile_ms(ids, 0.99))
        .field("survivor_chunks", static_cast<std::size_t>(survivor_chunks))
        .field("survivor_ksamples_per_s",
               elapsed > 0.0 ? static_cast<double>(survivor_samples) / elapsed / 1e3
                             : 0.0)
        .field("shed_events", static_cast<std::size_t>(engine.shed_events()))
        .field("shed_blocks", static_cast<std::size_t>(engine.shed_blocks()))
        .field("simd", twiddc::simd::isa_name());
    twiddc::benchutil::emit("stream_engine:overload", j);
  }
}

// -------------------------------------------------------------- trace cost
//
// Runtime tracing overhead on the serving path: the identical N-session
// end-to-end run with every trace category enabled vs the runtime kill
// switch (mask 0).  The disabled number is what production pays for having
// trace sites compiled in; the CI overhead gate compares it against a
// TWIDDC_TRACE_COMPILED=OFF build's stream_engine:figure1 line instead --
// this line tracks the cost of *recording*.
//   {"bench": "throughput_pipeline", "chain": "stream_engine:trace",
//    "disabled_msamples_per_s": ..., "enabled_msamples_per_s": ...,
//    "enabled_overhead_pct": ..., "traced_events": ...}

void bench_stream_trace_overhead() {
  twiddc::backends::register_builtin();
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  const auto feed = figure1_stimulus(cfg, 2688 * 64);
  const int hw = static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  constexpr std::size_t kSessions = 16;

  const std::uint32_t saved_mask = twiddc::trace::enabled_mask();
  double rate[2] = {0.0, 0.0};
  std::size_t traced_events = 0;
  std::uint64_t traced_drops = 0;
  for (const bool tracing : {false, true}) {
    twiddc::trace::set_enabled(tracing ? twiddc::trace::kAllCategories : 0);
    twiddc::stream::EngineOptions opts;
    opts.workers = hw;
    opts.block_samples = 4096;
    twiddc::stream::StreamEngine engine(
        std::make_unique<twiddc::stream::VectorSource>(feed), opts);
    std::vector<std::shared_ptr<twiddc::stream::Session>> open;
    for (std::size_t s = 0; s < kSessions; ++s) {
      auto ch_cfg = cfg;
      ch_cfg.nco_freq_hz = cfg.nco_freq_hz + 25.0e3 * static_cast<double>(s);
      open.push_back(engine.open(twiddc::core::ChainPlan::figure1(ch_cfg, spec),
                                 twiddc::backends::kNative));
    }
    const auto start = std::chrono::steady_clock::now();
    engine.start();
    (void)twiddc::stream::drain_all(engine, open);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    engine.stop();
    rate[tracing ? 1 : 0] =
        static_cast<double>(feed.size() * kSessions) / elapsed / 1e6;
    if (tracing) {
      const auto snap = twiddc::trace::snapshot();
      traced_events = snap.events.size();
      traced_drops = snap.dropped;
    }
  }
  twiddc::trace::set_enabled(saved_mask);
  twiddc::trace::reset();

  JsonLine j;
  j.field("bench", std::string("throughput_pipeline"))
      .field("chain", std::string("stream_engine:trace"))
      .field("sessions", kSessions)
      .field("workers", static_cast<std::size_t>(hw))
      .field("block_samples", static_cast<std::size_t>(4096))
      .field("disabled_msamples_per_s", rate[0])
      .field("enabled_msamples_per_s", rate[1])
      .field("enabled_overhead_pct",
             rate[0] > 0.0 ? 100.0 * (1.0 - rate[1] / rate[0]) : 0.0)
      .field("traced_events", traced_events)
      .field("traced_drops", static_cast<std::size_t>(traced_drops))
      .field("trace_compiled", TWIDDC_TRACE_COMPILED_MASK != 0u)
      .field("simd", twiddc::simd::isa_name());
  twiddc::benchutil::emit("stream_engine:trace", j);
}

// -------------------------------------------------------------- saturation
//
// Scale-out headline: aggregate serving rate and p99 inter-chunk gap at
// 64..4096 concurrent sessions, a single engine vs a sharded EngineGroup
// (one pump + scheduler per shard, same total worker budget).  Total
// channel-samples are held constant across session counts, so the sweep
// isolates admission/fan-out/scheduling cost at scale rather than kernel
// time; the single pump's serial fan-out to N rings is the bottleneck the
// sharding exists to split.  Per-session NCO offsets cycle over 16 plans so
// the plan cache amortises compiles at every population size.

void bench_stream_saturation() {
  twiddc::backends::register_builtin();
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto spec = DatapathSpec::wide16();
  const int hw = static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  const int shard_count = std::max<int>(
      2, static_cast<int>(twiddc::common::topology::probe().node_count()));
  constexpr std::size_t kTotalChannelSamples = std::size_t{1} << 24;
  constexpr std::size_t kBlock = 4096;

  for (const std::size_t sessions : {64u, 256u, 1024u, 4096u}) {
    const std::size_t samples =
        std::max<std::size_t>(2 * kBlock, kTotalChannelSamples / sessions);
    const auto feed = figure1_stimulus(cfg, samples);
    double single_rate = 0.0;
    for (const int shards : {1, shard_count}) {
      twiddc::stream::EngineGroupOptions gopts;
      gopts.shards = shards;
      // Same total worker budget either way: the sharded run splits it.
      gopts.engine.workers = std::max(1, hw / shards);
      gopts.engine.block_samples = kBlock;
      // Small output rings: 4096 sessions x 256 empty chunk slots is real
      // memory; the drain loop below polls fast enough for 32.
      gopts.engine.session_output_chunks = 32;
      twiddc::stream::EngineGroup group(
          [&feed] { return std::make_unique<twiddc::stream::VectorSource>(feed); },
          gopts);

      std::vector<std::shared_ptr<twiddc::stream::Session>> open;
      open.reserve(sessions);
      for (std::size_t s = 0; s < sessions; ++s) {
        auto ch_cfg = cfg;
        ch_cfg.nco_freq_hz = cfg.nco_freq_hz + 25.0e3 * static_cast<double>(s % 16);
        open.push_back(group.open(s, twiddc::core::ChainPlan::figure1(ch_cfg, spec),
                                  twiddc::backends::kNative));
      }
      std::size_t workers_effective = 0;
      for (std::size_t i = 0; i < group.shard_count(); ++i)
        workers_effective +=
            static_cast<std::size_t>(group.shard(i).effective_workers());

      // Drain by index, not session id: ids are per-engine counters and
      // collide across shards, which would pool gap samples wrongly.
      twiddc::stream::LatencyRecorder recorder;
      const auto start = std::chrono::steady_clock::now();
      group.start();
      for (;;) {
        bool any = false;
        for (std::size_t i = 0; i < open.size(); ++i)
          for (auto& chunk : open[i]->poll()) {
            recorder.on_chunk(i, std::move(chunk));
            any = true;
          }
        if (any) continue;
        bool done = true;
        for (const auto& s : open) done = done && group.finished(s);
        if (done) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      recorder.close_window();
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      group.stop();

      std::vector<std::uint64_t> ids(open.size());
      for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
      const double aggregate =
          static_cast<double>(samples * sessions) / elapsed / 1e6;
      if (shards == 1) single_rate = aggregate;
      JsonLine j;
      j.field("bench", std::string("throughput_pipeline"))
          .field("chain", std::string("stream_engine:saturation"))
          .field("sessions", sessions)
          .field("sharded", shards > 1)
          .field("shards", static_cast<std::size_t>(shards))
          .field("workers_effective", workers_effective)
          .field("block_samples", kBlock)
          .field("feed_samples", samples)
          .field("aggregate_msamples_per_s", aggregate)
          .field("sharded_vs_single",
                 single_rate > 0.0 ? aggregate / single_rate : 0.0)
          .field("p50_gap_ms", recorder.gap_quantile_ms(ids, 0.50))
          .field("p99_gap_ms", recorder.gap_quantile_ms(ids, 0.99))
          .field("simd", twiddc::simd::isa_name());
      twiddc::benchutil::emit("stream_engine:saturation", j);
    }
  }
}

/// TWIDDC_BENCH_ONLY: comma-separated substrings; a bench runs when any of
/// them appears in its name (unset/empty = run everything).  The CI overhead
/// gate uses it to run just the stream_engine lines on both trace builds.
bool bench_selected(const std::string& name) {
  const char* only = std::getenv("TWIDDC_BENCH_ONLY");
  if (!only || !*only) return true;
  const std::string spec(only);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!part.empty() && name.find(part) != std::string::npos) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  twiddc::benchutil::init_out(argc, argv);
  std::printf("# throughput_pipeline: block process_block() vs per-sample push()\n");
  std::printf("# one JSON object per line; speedup_block_over_push is the headline\n");
  std::printf("# kernel lines give block rates per vectorised kernel; channel_bank\n");
  std::printf("# lines give multi-channel aggregate (channel-samples/s) scaling\n");
  const struct {
    const char* name;
    void (*fn)();
  } kBenches[] = {
      {"figure1:wide16", [] { bench_figure1(DatapathSpec::wide16()); }},
      {"figure1:fpga", [] { bench_figure1(DatapathSpec::fpga()); }},
      {"figure1:fused_vs_staged", bench_fused_vs_staged},
      {"figure1:da_vs_mac", bench_da_vs_mac},
      {"figure1:packed_fir", bench_packed_fir},
      {"plan_cache", bench_plan_cache},
      {"gc4016:figure4", bench_gc4016},
      {"kernel:nco_mixer", bench_kernel_nco_mixer},
      {"kernel:cic2", [] { bench_kernel_cic("cic2", 2, 16); }},
      {"kernel:cic5", [] { bench_kernel_cic("cic5", 5, 21); }},
      {"kernel:fir125", bench_kernel_fir125},
      {"backends", bench_backends},
      {"channel_bank:figure1", bench_channel_bank},
      {"channel_bank:skewed", bench_channel_bank_skewed},
      {"stream_engine:figure1", bench_stream_sessions},
      {"stream_engine:overload", bench_stream_overload},
      {"stream_engine:trace", bench_stream_trace_overhead},
      {"stream_engine:saturation", bench_stream_saturation},
  };
  for (const auto& b : kBenches)
    if (bench_selected(b.name)) b.fn();
  return 0;
}
