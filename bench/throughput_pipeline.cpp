// Pipeline hot-path throughput: block-based process_block() vs per-sample
// push() on the paper's Figure 1 chain (and the GC4016 Figure 4 channel),
// emitted as machine-readable JSON lines so successive PRs can track the
// performance trajectory.
//
// Output format (one JSON object per line, prefixed section aside):
//   {"bench": "throughput_pipeline", "chain": "figure1:wide16",
//    "push_msamples_per_s": ..., "block_msamples_per_s": ...,
//    "speedup_block_over_push": ..., "block_samples": ...}
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/asic/gc4016.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/core/float_ddc.hpp"
#include "src/dsp/signal.hpp"

namespace {

using twiddc::benchutil::JsonLine;
using twiddc::benchutil::Throughput;
using twiddc::benchutil::measure_throughput;
using twiddc::core::DatapathSpec;
using twiddc::core::DdcConfig;
using twiddc::core::FixedDdc;
using twiddc::core::IqSample;

constexpr std::size_t kBlock = 2688 * 16;  // 16 output frames per rep

void bench_figure1(const DatapathSpec& spec) {
  const auto cfg = DdcConfig::reference(10.0e6);
  const auto input = twiddc::dsp::quantize_signal(
      twiddc::dsp::make_tone(10.0025e6, cfg.input_rate_hz, kBlock, 0.7), 12);

  FixedDdc by_push(cfg, spec);
  std::vector<IqSample> sink;
  const Throughput push = measure_throughput(input.size(), [&] {
    sink.clear();
    for (std::int64_t x : input) {
      if (auto y = by_push.push(x)) sink.push_back(*y);
    }
  });

  FixedDdc by_block(cfg, spec);
  const Throughput block = measure_throughput(input.size(), [&] {
    sink.clear();
    by_block.process_block(input, sink);
  });

  twiddc::benchutil::throughput_json("throughput_pipeline", "figure1:" + spec.name,
                                     push, block, input.size())
      .print();
}

void bench_gc4016() {
  const auto gcfg = twiddc::asic::Gc4016Config::gsm_example();
  twiddc::asic::Gc4016 push_chip(gcfg);
  twiddc::asic::Gc4016 block_chip(gcfg);
  const std::size_t n = static_cast<std::size_t>(
      push_chip.channel(0).total_decimation()) * 64;
  const auto input = twiddc::dsp::quantize_signal(
      twiddc::dsp::make_tone(15.0025e6, gcfg.input_rate_hz, n, 0.7), gcfg.input_bits);

  std::vector<twiddc::asic::Gc4016Output> sink;
  const Throughput push = measure_throughput(input.size(), [&] {
    sink.clear();
    auto& ch = push_chip.channel(0);
    for (std::int64_t x : input) {
      if (auto y = ch.push(x)) sink.push_back(*y);
    }
  });
  const Throughput block = measure_throughput(input.size(), [&] {
    sink.clear();
    block_chip.channel(0).process_block(input, sink);
  });

  twiddc::benchutil::throughput_json("throughput_pipeline", "gc4016:figure4", push,
                                     block, input.size())
      .print();
}

}  // namespace

int main() {
  std::printf("# throughput_pipeline: block process_block() vs per-sample push()\n");
  std::printf("# one JSON object per line; speedup_block_over_push is the headline\n");
  bench_figure1(DatapathSpec::wide16());
  bench_figure1(DatapathSpec::fpga());
  bench_gc4016();
  return 0;
}
