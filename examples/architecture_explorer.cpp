// Architecture explorer: Table 7 for *your* DDC configuration.  Change the
// band, input rate or decimation plan and see what every REGISTERED backend
// would burn: the table iterates the ArchitectureBackend registry, so a new
// architecture added to the registry shows up here with no explorer change.
// Backends whose silicon cannot realise the requested rate plan print the
// typed lowering diagnostic instead of a row.
//
//   $ ./architecture_explorer [nco_freq_hz] [input_rate_hz]
#include <cstdio>
#include <cstdlib>

#include "src/asic/lowpower_ddc.hpp"
#include "src/backends/builtin.hpp"
#include "src/common/table.hpp"
#include "src/core/backend.hpp"
#include "src/core/ddc_config.hpp"
#include "src/energy/architecture_result.hpp"

int main(int argc, char** argv) {
  using namespace twiddc;

  auto config = core::DdcConfig::reference();
  if (argc > 1) config.nco_freq_hz = std::atof(argv[1]);
  if (argc > 2) config.input_rate_hz = std::atof(argv[2]);
  config.validate();

  std::printf("DDC: %.3f MHz input, band at %.4f MHz, decimation %d -> %.1f kHz output\n\n",
              config.input_rate_hz / 1e6, config.nco_freq_hz / 1e6,
              config.total_decimation(), config.output_rate_hz() / 1e3);

  backends::register_builtin();

  TextTable t;
  t.header({"Backend", "Plan", "Power", "Energy/output", "Idle fabric"});
  std::vector<std::string> rejections;

  for (auto& backend : core::BackendRegistry::instance().create_all()) {
    core::ChainPlan plan;
    try {
      plan = backend->plan_for(config);
      backend->configure(plan);
    } catch (const core::LoweringError& e) {
      rejections.push_back(e.backend() + ": " + e.detail());
      continue;
    }
    const auto profile = backend->power_profile();
    if (!profile.modeled) {
      t.row({backend->name(), plan.name, "(simulation only)", "-", "-"});
      continue;
    }
    energy::ArchitectureResult r;
    r.power_mw = profile.active_power_mw;
    t.row({backend->name(), plan.name,
           TextTable::num_unit(profile.active_power_mw, "mW"),
           TextTable::num(r.energy_per_output_nj(plan.output_rate_hz()) / 1000.0, 2) +
               " uJ",
           profile.reusable_when_idle ? "reusable" : "dedicated"});
  }

  // The paper's customised low-power ASIC is a projection (section 7), not
  // an executable backend; keep its row for the Table 7 comparison.
  asic::CustomLowPowerDdc lp(config);
  energy::ArchitectureResult r;
  r.power_mw = lp.power_mw_native();
  t.row({"custom-asic (projection)", "figure1:asic",
         TextTable::num_unit(lp.power_mw_native(), "mW"),
         TextTable::num(r.energy_per_output_nj(config.output_rate_hz()) / 1000.0, 2) +
             " uJ",
         "dedicated"});

  std::printf("%s", t.str().c_str());

  if (!rejections.empty()) {
    std::printf("\nNot mappable onto this rate plan:\n");
    for (const auto& reason : rejections) std::printf("  - %s\n", reason.c_str());
  }
  return 0;
}
