// Architecture explorer: Table 7 for *your* DDC configuration.  Change the
// band, input rate or decimation plan and see what each of the five
// architectures would burn.
//
//   $ ./architecture_explorer [nco_freq_hz] [input_rate_hz]
#include <cstdio>
#include <cstdlib>

#include "src/asic/gc4016.hpp"
#include "src/asic/lowpower_ddc.hpp"
#include "src/common/table.hpp"
#include "src/core/ddc_config.hpp"
#include "src/dsp/signal.hpp"
#include "src/energy/architecture_result.hpp"
#include "src/fpga/ddc_fpga.hpp"
#include "src/gpp/ddc_program.hpp"
#include "src/montium/ddc_mapping.hpp"

int main(int argc, char** argv) {
  using namespace twiddc;

  auto config = core::DdcConfig::reference();
  if (argc > 1) config.nco_freq_hz = std::atof(argv[1]);
  if (argc > 2) config.input_rate_hz = std::atof(argv[2]);
  config.validate();

  std::printf("DDC: %.3f MHz input, band at %.4f MHz, decimation %d -> %.1f kHz output\n\n",
              config.input_rate_hz / 1e6, config.nco_freq_hz / 1e6,
              config.total_decimation(), config.output_rate_hz() / 1e3);

  const auto um130 = energy::TechnologyNode::um130();
  TextTable t;
  t.header({"Architecture", "Power (native)", "Power (0.13um)", "Energy/output"});

  // Customised ASIC.
  asic::CustomLowPowerDdc lp(config);
  energy::ArchitectureResult r;
  r.power_mw = lp.power_mw_native();
  t.row({"Customised low-power ASIC", TextTable::num_unit(lp.power_mw_native(), "mW"),
         TextTable::num_unit(lp.power_mw_at(um130), "mW"),
         TextTable::num(r.energy_per_output_nj(config.output_rate_hz()) / 1000.0, 2) + " uJ"});

  // ARM9.
  gpp::DdcProgram prog(config);
  const std::size_t n = static_cast<std::size_t>(config.total_decimation()) * 20;
  const auto in = dsp::quantize_signal(
      dsp::make_tone(config.nco_freq_hz + 2.0e3, config.input_rate_hz, n, 0.7), 12);
  const auto arm = prog.run(in);
  r.power_mw = arm.power_mw(n, config.input_rate_hz);
  t.row({"ARM922T @ " + TextTable::num(arm.required_clock_mhz(n, config.input_rate_hz), 0) +
             " MHz (simulated)",
         TextTable::num_unit(r.power_mw, "mW"), "(is 0.13um)",
         TextTable::num(r.energy_per_output_nj(config.output_rate_hz()) / 1000.0, 2) + " uJ"});

  // FPGAs: measured toggle + PowerPlay-style model.
  auto fpga_cfg = config;
  if (fpga_cfg.fir_taps == 125) fpga_cfg.fir_taps = 124;
  fpga::DdcFpgaTop rtl(fpga_cfg);
  Rng rng(3);
  rtl.process(dsp::random_samples(12, static_cast<std::size_t>(config.total_decimation()) * 10, rng));
  const double toggle = rtl.toggle_summary().rate_percent();
  const auto cyc1 = fpga::PowerModel::cyclone1();
  const auto cyc2 = fpga::PowerModel::cyclone2();
  r.power_mw = cyc1.total_mw(toggle);
  t.row({"Altera Cyclone I (meas. toggle " + TextTable::pct(toggle, 0) + ")",
         TextTable::num_unit(r.power_mw, "mW"), "(is 0.13um)",
         TextTable::num(r.energy_per_output_nj(config.output_rate_hz()) / 1000.0, 2) + " uJ"});
  r.power_mw = cyc2.total_mw(toggle);
  t.row({"Altera Cyclone II (meas. toggle " + TextTable::pct(toggle, 0) + ")",
         TextTable::num_unit(r.power_mw, "mW"),
         TextTable::num_unit(energy::scale_power_mw(r.power_mw, energy::TechnologyNode::um90(), um130), "mW"),
         TextTable::num(r.energy_per_output_nj(config.output_rate_hz()) / 1000.0, 2) + " uJ"});

  // Montium.
  montium::DdcMapping mont(config);
  r.power_mw = mont.power_mw();
  t.row({"Montium TP", TextTable::num_unit(mont.power_mw(), "mW"), "(is 0.13um)",
         TextTable::num(r.energy_per_output_nj(config.output_rate_hz()) / 1000.0, 2) + " uJ"});

  std::printf("%s", t.str().c_str());
  std::printf("\n(GC4016 omitted: its fixed CIC5+CFIR+PFIR plan only fits decimations of\n"
              " the form 4*CIC with CIC in [8,4096]; see the table2_gc4016 bench.)\n");
  return 0;
}
