// Custom pipeline topology: the stage-pipeline layer makes the DDC dataflow
// *data*, not code.  This example builds a chain the paper never drew -- a
// three-stage CIC3 -> CIC2 -> compensating FIR plan for a 10 MHz front end --
// straight from StageSpecs, runs it through the block hot path, and shows
// the tone reappearing in baseband.
//
//   $ ./custom_pipeline
#include <cmath>
#include <cstdio>

#include "src/core/analysis.hpp"
#include "src/core/pipeline.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/signal.hpp"
#include "src/fixed/qformat.hpp"

int main() {
  using namespace twiddc;

  // 1. Describe the topology as data.  Total decimation 10 * 5 * 2 = 100:
  //    10 MHz in, 100 kHz complex out.
  core::ChainPlan plan;
  plan.name = "example:cic3-cic2-fir";
  plan.input_rate_hz = 10.0e6;
  plan.front_end.nco_freq_hz = 2.5e6;
  plan.front_end.input_bits = 12;
  plan.front_end.nco_amplitude_bits = 16;
  plan.front_end.mixer_out_bits = 16;

  core::StageSpec cic3 = core::StageSpec::cic("cic3", 3, 10, 16);
  cic3.post_shift = fixed::cic_bit_growth(3, 10);  // normalise the CIC gain
  cic3.narrow_bits = 16;                           // back to the 16-bit bus

  core::StageSpec cic2 = core::StageSpec::cic("cic2", 2, 5, 16);
  cic2.post_shift = fixed::cic_bit_growth(2, 5);
  cic2.narrow_bits = 16;

  // A small lowpass designed on the spot, quantised to Q1.13.
  const auto ideal = dsp::design_lowpass(31, 0.83 * 0.25, dsp::Window::kBlackman);
  const auto q = dsp::quantize_coefficients(ideal, 13);
  core::StageSpec fir = core::StageSpec::polyphase_fir(
      "fir31", std::vector<std::int64_t>(q.begin(), q.end()), ideal, 2);
  fir.post_shift = 13;  // drop the coefficient fraction, keep 16-bit output
  fir.narrow_bits = 16;

  plan.stages = {cic3, cic2, fir};
  plan.validate();

  // 2. Build the pipeline and feed it 50 ms of antenna signal in one block.
  core::DdcPipeline ddc(plan);
  const double tone_offset = 20.0e3;  // 20 kHz above the carrier
  const std::size_t n = static_cast<std::size_t>(plan.input_rate_hz * 50e-3);
  const auto input = dsp::quantize_signal(
      dsp::make_tone(plan.front_end.nco_freq_hz + tone_offset, plan.input_rate_hz,
                     n, 0.8),
      12);
  const auto out = ddc.process(input);

  std::printf("plan '%s': %zu stages, total decimation %d\n", plan.name.c_str(),
              plan.stages.size(), plan.total_decimation());
  std::printf("pushed %zu samples at %.1f MHz, received %zu I/Q samples at %.0f kHz\n",
              input.size(), plan.input_rate_hz / 1e6, out.size(),
              plan.output_rate_hz() / 1e3);

  // 3. The tone reappears at +20 kHz in the complex baseband.
  auto iq = core::to_complex(out, 1.0 / 32768.0);
  iq.erase(iq.begin(), iq.begin() + 16);  // drop the filter warm-up
  double power = 0.0;
  for (const auto& v : iq) power += std::norm(v);
  std::printf("mean output power: %.4f of full scale\n",
              power / static_cast<double>(iq.size()));
  return 0;
}
