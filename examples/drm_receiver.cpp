// DRM receiver front-end: the scenario the paper's introduction motivates --
// a PDA listening to Digital Radio Mondiale.  A synthetic wideband scene
// (DRM-like target band + strong interferers) is digitised at 64.512 MHz,
// down-converted with the reference DDC, and the selected band is analysed.
//
//   $ ./drm_receiver [centre_frequency_hz]
#include <algorithm>
#include <complex>
#include <cstdio>
#include <cstdlib>

#include "src/common/db.hpp"
#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/core/float_ddc.hpp"
#include "src/dsp/signal.hpp"
#include "src/dsp/spectrum.hpp"

int main(int argc, char** argv) {
  using namespace twiddc;

  const double center = argc > 1 ? std::atof(argv[1]) : 10.0e6;
  const auto config = core::DdcConfig::reference(center);
  std::printf("DRM receiver: selecting ~10 kHz around %.4f MHz out of a %.3f MHz stream\n",
              center / 1e6, config.input_rate_hz / 1e6);

  // Synthetic antenna scene: 9 DRM carriers in the target band plus
  // interferers at +150 kHz, -220 kHz, +2.5 MHz, -7 MHz.
  const std::size_t n = 2688 * 800;
  auto scene = dsp::make_drm_scene(center, n, config.input_rate_hz);
  for (auto& v : scene) v *= 0.55;  // fit the ADC range
  const auto adc = dsp::quantize_signal(scene, 12);

  core::FixedDdc ddc(config, core::DatapathSpec::fpga());
  auto iq = core::to_complex(ddc.process(adc), ddc.output_scale());
  iq.erase(iq.begin(), iq.begin() + 16);  // drop the settling transient

  const auto spec = dsp::periodogram_complex(iq, config.output_rate_hz());
  std::printf("\noutput spectrum at 24 kHz (two-sided):\n");
  const std::size_t bins = spec.power_db.size();
  for (int b = 0; b < 24; ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * bins / 24;
    const std::size_t hi = (static_cast<std::size_t>(b) + 1) * bins / 24;
    double peak = -300.0;
    for (std::size_t i = lo; i < hi; ++i) peak = std::max(peak, spec.power_db[i]);
    const double f = (b < 12 ? static_cast<double>(lo) : static_cast<double>(lo) - bins) *
                     spec.bin_hz;
    std::printf("%s\n",
                ascii_bar(TextTable::num(f / 1e3, 1) + " kHz", peak + 110.0, 110.0, 44).c_str());
  }

  // Selectivity: in-band power vs what is left of the interferers.
  const double in_band = spec.band_power(0.0, 5.5e3) + spec.band_power(-5.5e3 + 24e3, 24e3);
  double out_band = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double f = i < bins / 2 ? spec.freq(i) : spec.freq(i) - 24e3;
    if (std::abs(f) > 7.0e3) out_band += db_to_power(spec.power_db[i]);
  }
  std::printf("\nband selection: in-band/out-of-band power = %.1f dB\n",
              power_db(in_band / (out_band + 1e-30)));

  // Fidelity vs the float golden chain.
  core::FloatDdc golden(config);
  auto gold = golden.process(dsp::dequantize_signal(adc, 12));
  gold.erase(gold.begin(), gold.begin() + 16);
  const auto stats = core::compare_streams(gold, iq);
  std::printf("12-bit datapath SNR vs float golden: %.1f dB (gain %.4f)\n", stats.snr_db,
              stats.gain);
  return 0;
}
