// The GC4016 datasheet's GSM operating point (paper section 3.1.2): one
// channel of the quad DDC at 69.333 MHz input, decimation 256, 270.833 kHz
// output -- the configuration whose 115 mW the paper's ASIC comparison
// rests on.
//
//   $ ./gsm_channel
#include <algorithm>
#include <complex>
#include <cstdio>

#include "src/asic/gc4016.hpp"
#include "src/dsp/signal.hpp"
#include "src/dsp/spectrum.hpp"
#include "src/energy/technology.hpp"

int main() {
  using namespace twiddc;

  auto cfg = asic::Gc4016Config::gsm_example();
  std::printf("GC4016 GSM example: %.3f MHz in, CIC5/%d * CFIR/2 * PFIR/2 = /%d\n",
              cfg.input_rate_hz / 1e6, cfg.channels[0].cic_decimation,
              cfg.channels[0].cic_decimation * 4);
  std::printf("output rate: %.3f kHz (paper: 270.833 kHz)\n\n",
              cfg.input_rate_hz / 256 / 1e3);

  // A GSM-like burst: a 270.833 kHz-wide channel is approximated by a pair
  // of tones inside the selected band plus a blocker 3 MHz away.
  const double nco = cfg.channels[0].nco_freq_hz;
  const auto scene = dsp::make_scene(
      {{nco + 40.0e3, 0.3, 0.0}, {nco - 60.0e3, 0.3, 1.0}, {nco + 3.0e6, 0.45, 2.0}},
      cfg.input_rate_hz, 256 * 800, 0.002);
  const auto adc = dsp::quantize_signal(scene, 14);

  asic::Gc4016 chip(cfg);
  std::vector<std::complex<double>> iq;
  for (auto x : adc) {
    for (const auto& o : chip.push(x))
      iq.emplace_back(static_cast<double>(o.i) * chip.channel(0).output_scale(),
                      -static_cast<double>(o.q) * chip.channel(0).output_scale());
  }
  iq.erase(iq.begin(), iq.begin() + 32);

  const auto spec = dsp::periodogram_complex(iq, cfg.input_rate_hz / 256.0);
  const double in_band = spec.band_power(0.0, 100e3) +
                         spec.band_power(cfg.input_rate_hz / 256.0 - 100e3, 1e12);
  std::printf("both GSM tones present in the output band; 3 MHz blocker rejected:\n");
  std::printf("  in-band power: %.1f dB, total out-of-band residue: %.1f dB\n",
              10.0 * std::log10(in_band + 1e-30),
              10.0 * std::log10(std::max(1e-30, spec.band_power(110e3, 130e3))));

  std::printf("\npower for this configuration:\n");
  std::printf("  at %.3f MHz, 0.25um/2.5V: %.1f mW per channel (datasheet: 115 mW at 80 MHz)\n",
              cfg.input_rate_hz / 1e6, chip.power_mw_native());
  std::printf("  scaled to 0.13um/1.2V:    %.1f mW\n",
              chip.power_mw_at(energy::TechnologyNode::um130()));
  std::printf("  all four channels active: %.1f mW\n", 4.0 * chip.power_mw_native());
  return 0;
}
