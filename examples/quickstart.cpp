// Quickstart: build the paper's reference DDC, push one millisecond of
// signal, and print what comes out.
//
//   $ ./quickstart
//
// The chain is Figure 1 of the paper: NCO-driven complex mixer, CIC2 (D=16),
// CIC5 (D=21), 125-tap polyphase FIR (D=8); 64.512 MHz in, 24 kHz out.
#include <cstdio>

#include "src/core/analysis.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/dsp/signal.hpp"

int main() {
  using namespace twiddc;

  // 1. Pick the band to receive: centre the NCO on it.
  const double nco_freq = 10.0e6;  // Hz
  const auto config = core::DdcConfig::reference(nco_freq);

  // 2. Pick a datapath (the FPGA's 12-bit busses here) and build the DDC.
  core::FixedDdc ddc(config, core::DatapathSpec::fpga());

  // 3. Make one millisecond of "antenna" signal: a tone 3 kHz above the
  //    carrier, digitised to 12 bits.
  const std::size_t n = static_cast<std::size_t>(config.input_rate_hz * 1e-3);
  const auto samples = dsp::quantize_signal(
      dsp::make_tone(nco_freq + 3.0e3, config.input_rate_hz, n, 0.8), 12);

  // 4. Push samples; collect the 24 kHz I/Q output.
  const auto out = ddc.process(samples);

  std::printf("pushed %zu samples at %.3f MHz, received %zu I/Q samples at %.0f kHz\n",
              samples.size(), config.input_rate_hz / 1e6, out.size(),
              config.output_rate_hz() / 1e3);
  std::printf("decimation: %d (16 * 21 * 8)\n\n", config.total_decimation());

  std::printf("first outputs (12-bit I, Q):\n");
  for (std::size_t i = 0; i < out.size() && i < 8; ++i)
    std::printf("  y[%zu] = (%5lld, %5lld)\n", i, static_cast<long long>(out[i].i),
                static_cast<long long>(out[i].q));

  // 5. The tone reappears at +3 kHz in the complex baseband.
  const auto iq = core::to_complex(out, ddc.output_scale());
  double best_mag = 0.0;
  for (const auto& v : iq) best_mag = std::max(best_mag, std::abs(v));
  std::printf("\npeak output magnitude: %.3f of full scale\n", best_mag);
  return 0;
}
