// The paper's section 7 argument, demonstrated end-to-end:
//
// 1. Runtime reconfiguration (the Montium's raison d'etre) through the
//    swap_plan() API -- no pipeline object is rebuilt:
//      * a kSplice swap retunes the NCO / coefficients with state kept
//        (phase-continuous, no output gap), and
//      * a kFlush swap loads a structurally different plan (the clean-gap
//        glitch contract), on both the native pipeline and the Montium
//        backend, whose "reload" is the paper's ~1110-byte configuration.
// 2. The duty-cycle energy scenario, with every model taken from the
//    ArchitectureBackend registry instead of hand-entered numbers.
//
//   $ ./reconfigurable_scenario [duty_cycle] [activations_per_day]
#include <cstdio>
#include <cstdlib>

#include "src/backends/builtin.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"
#include "src/core/backend.hpp"
#include "src/core/ddc_config.hpp"
#include "src/dsp/signal.hpp"
#include "src/energy/scenario.hpp"

int main(int argc, char** argv) {
  using namespace twiddc;

  const double duty = argc > 1 ? std::atof(argv[1]) : 0.05;
  const int activations = argc > 2 ? std::atoi(argv[2]) : 24;

  backends::register_builtin();

  // ---------------------------------------------- swap_plan() demonstration
  const auto drm_cfg = core::DdcConfig::reference(10.0e6);  // DRM listening
  auto wlan_cfg = core::DdcConfig::reference(4.0e6);        // narrower burst band
  wlan_cfg.cic2_decimation = 12;
  wlan_cfg.cic5_decimation = 14;
  wlan_cfg.fir_taps = 97;

  const auto wide16 = core::DatapathSpec::wide16();
  core::DdcPipeline pipe(core::ChainPlan::figure1(drm_cfg, wide16));
  Rng rng(1);
  std::vector<core::IqSample> sink;
  pipe.process_block(dsp::random_samples(12, 2688 * 4, rng), sink);
  std::printf("DRM plan: decimation %d, %zu outputs from 4 frames\n",
              pipe.total_decimation(), sink.size());

  // Retune within the running plan: splice keeps all filter state and the
  // NCO phase (outputs continue at the same cadence, no gap).
  auto retuned = core::ChainPlan::figure1(core::DdcConfig::reference(10.2e6), wide16);
  pipe.swap_plan(retuned, core::SwapMode::kSplice);
  sink.clear();
  pipe.process_block(dsp::random_samples(12, 2688 * 2, rng), sink);
  std::printf("after kSplice retune to 10.2 MHz: samples_in continued at %llu, "
              "%zu outputs (no gap)\n",
              static_cast<unsigned long long>(pipe.samples_in()), sink.size());

  // Switch standards: flush loads the structurally different plan; the
  // glitch is a clean restart (group-delay transient, no mixed-plan output).
  pipe.swap_plan(core::ChainPlan::figure1(wlan_cfg, wide16), core::SwapMode::kFlush);
  sink.clear();
  pipe.process_block(
      dsp::random_samples(12, static_cast<std::size_t>(pipe.total_decimation()) * 4, rng),
      sink);
  std::printf("after kFlush swap to the burst plan: decimation %d, counters "
              "restarted, %zu outputs\n\n",
              pipe.total_decimation(), sink.size());

  // The Montium does the same through its backend: a configuration reload.
  auto montium = core::BackendRegistry::instance().create(backends::kMontium);
  montium->configure(montium->plan_for(drm_cfg));
  const double montium_cfg_bytes = montium->power_profile().reconfig_bytes;
  montium->swap_plan(montium->plan_for(wlan_cfg), core::SwapMode::kFlush);
  std::printf("montium reconfiguration = reloading its %.0f-byte configuration "
              "(paper: 1110 bytes)\n\n", montium_cfg_bytes);

  // ------------------------------------------------- duty-cycle energy table
  // Every silicon backend in the registry contributes its own model; the
  // GC4016 plays the dedicated-ASIC role (reference 2688 = 4 x 672 fits it).
  const auto models = energy::duty_models_from_backends(drm_cfg);

  std::printf("DDC duty cycle %.1f%%, %d activations/day\n\n", 100.0 * duty,
              activations);
  TextTable t;
  t.header({"Architecture", "DDC energy/day", "Reconfig time/day", "Idle fabric reusable"});
  for (const auto& r : energy::rank_architectures(models, duty, activations)) {
    t.row({r.name, TextTable::num(r.energy_per_day_j, 1) + " J",
           TextTable::num(r.reconfig_seconds_per_day * 1e3, 3) + " ms",
           r.idle_time_reusable ? "yes" : "no"});
  }
  std::printf("%s", t.str().c_str());

  // Crossover duty cycle between the dedicated chip and the Montium (the
  // quantitative version of section 7's conclusion).
  const energy::DutyCycleModel* dedicated = nullptr;
  const energy::DutyCycleModel* reconfigurable = nullptr;
  for (const auto& m : models) {
    if (m.name == backends::kGc4016) dedicated = &m;
    if (m.name == backends::kMontium) reconfigurable = &m;
  }
  if (dedicated && reconfigurable) {
    double crossover = 1.0;
    for (double d = 0.001; d <= 1.0; d += 0.001) {
      const auto a = energy::evaluate_scenario(*dedicated, d, activations);
      const auto m = energy::evaluate_scenario(*reconfigurable, d, activations);
      if (a.energy_per_day_j < m.energy_per_day_j) {
        crossover = d;
        break;
      }
    }
    std::printf("\nThe dedicated chip overtakes the Montium above ~%.1f%% duty cycle.\n",
                100.0 * crossover);
  }
  std::printf("Paper's conclusion: dedicated ASIC for full-time DDC, reconfigurable\n"
              "fabric when the DDC runs only part of the time -- the numbers above are\n"
              "that argument, made explicit from the backend registry.\n");
  return 0;
}
