// The paper's section 7 scenarios, quantified: a device that needs the DDC
// only part of the time (WLAN burst, occasional DRM listening).  Dedicated
// silicon pays standby leakage all day; reconfigurable fabric is reused for
// other tasks while idle but pays a reconfiguration cost per activation --
// including loading the Montium's 1110-byte configuration versus a full
// FPGA bitstream.
//
//   $ ./reconfigurable_scenario [duty_cycle] [activations_per_day]
#include <cstdio>
#include <cstdlib>

#include "src/common/table.hpp"
#include "src/core/ddc_config.hpp"
#include "src/energy/scenario.hpp"
#include "src/montium/ddc_mapping.hpp"

int main(int argc, char** argv) {
  using namespace twiddc;

  const double duty = argc > 1 ? std::atof(argv[1]) : 0.05;
  const int activations = argc > 2 ? std::atoi(argv[2]) : 24;

  // Montium configuration size measured from the mapping itself.
  montium::DdcMapping mapping(core::DdcConfig::reference());
  const double montium_cfg_bytes = static_cast<double>(mapping.serialize_config().size());

  std::vector<energy::DutyCycleModel> models;
  {
    energy::DutyCycleModel m;
    m.name = "Customised ASIC (dedicated)";
    m.active_power_mw = 27.0;
    m.idle_power_mw = 1.0;  // standby leakage of dark silicon
    m.reusable_when_idle = false;
    models.push_back(m);
  }
  {
    energy::DutyCycleModel m;
    m.name = "Altera Cyclone II (reconfigured when idle)";
    m.active_power_mw = 57.98;          // static + dynamic at 10% toggle
    m.idle_power_mw = 0.0;              // fabric reused -> not charged
    m.reusable_when_idle = true;
    m.reconfig_bytes = 1.2e6 / 8.0;     // EP2C5 bitstream ~1.2 Mb
    m.reconfig_bandwidth_mbps = 100.0;
    m.reconfig_power_mw = 57.98;
    models.push_back(m);
  }
  {
    energy::DutyCycleModel m;
    m.name = "Montium TP (reconfigured when idle)";
    m.active_power_mw = 38.7;
    m.idle_power_mw = 0.0;
    m.reusable_when_idle = true;
    m.reconfig_bytes = montium_cfg_bytes;
    m.reconfig_bandwidth_mbps = 100.0;
    m.reconfig_power_mw = 38.7;
    models.push_back(m);
  }

  std::printf("DDC duty cycle %.1f%%, %d activations/day; Montium config = %.0f bytes\n\n",
              100.0 * duty, activations, montium_cfg_bytes);

  TextTable t;
  t.header({"Architecture", "DDC energy/day", "Reconfig time/day", "Idle fabric reusable"});
  for (const auto& r : energy::rank_architectures(models, duty, activations)) {
    t.row({r.name, TextTable::num(r.energy_per_day_j, 1) + " J",
           TextTable::num(r.reconfig_seconds_per_day * 1e3, 3) + " ms",
           r.idle_time_reusable ? "yes" : "no"});
  }
  std::printf("%s", t.str().c_str());

  // Find the crossover duty cycle (the quantitative version of section 7).
  double crossover = 1.0;
  for (double d = 0.001; d <= 1.0; d += 0.001) {
    const auto asic = energy::evaluate_scenario(models[0], d, activations);
    const auto mont = energy::evaluate_scenario(models[2], d, activations);
    if (asic.energy_per_day_j < mont.energy_per_day_j) {
      crossover = d;
      break;
    }
  }
  std::printf("\nASIC overtakes the Montium above ~%.1f%% duty cycle.\n", 100.0 * crossover);
  std::printf("Paper's conclusion: dedicated ASIC for full-time DDC, reconfigurable\n"
              "fabric when the DDC runs only part of the time -- the numbers above are\n"
              "that argument, made explicit.\n");
  return 0;
}
