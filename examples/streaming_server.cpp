// The "millions of users" direction, scaled to an example: one wideband
// antenna feed served to many concurrent DDC sessions by the streaming
// session engine, with the paper's architectural heterogeneity live on one
// platform -- the same samples simultaneously drive the SIMD native
// pipeline, the FixedDdc twin, the float rails and a GC4016 channel, each
// behind its own per-session rings and backpressure policy.
//
// The run demonstrates the serving features end to end:
//   * N concurrent sessions from one shared feed (zero-copy fan-out),
//   * a mid-stream retune() (phase-continuous kSplice on a live session),
//   * a kDropOldest session shedding load while paused (a stalled user),
//   * per-session stats exported as JSON.
//
//   $ ./streaming_server [sessions] [feed_frames]
//
// Tracing: TWIDDC_TRACE=sched,stream,cache,group (or "all") records the
// run and writes streaming_server.trace.json at exit -- load it in
// https://ui.perfetto.dev or chrome://tracing.  TWIDDC_TRACE_FILE
// overrides the output path.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/backends/builtin.hpp"
#include "src/common/trace.hpp"
#include "src/core/backend.hpp"
#include "src/core/datapath_spec.hpp"
#include "src/core/ddc_config.hpp"
#include "src/stream/engine.hpp"
#include "src/stream/sink.hpp"
#include "src/stream/source.hpp"

int main(int argc, char** argv) {
  using namespace twiddc;

  const int n_sessions = argc > 1 ? std::atoi(argv[1]) : 20;
  const int frames = argc > 2 ? std::atoi(argv[2]) : 8;

  backends::register_builtin();
  const auto cfg = core::DdcConfig::reference(10.0e6);
  const auto spec = core::DatapathSpec::wide16();

  // One shared wideband feed: a tone synthesised on the fly, as if from the
  // AD converter.  2688 input samples = one output frame of the reference
  // Figure 1 chain.
  const auto total = static_cast<std::uint64_t>(frames) * 2688u;
  stream::EngineOptions opts;
  opts.workers = 4;
  opts.block_samples = 2048;
  // This demo deliberately delays polling until the feed has run dry (to
  // stage the stalled-user scene below), so the kBlock output rings must
  // hold the whole run -- a real server polls continuously instead and
  // keeps the default ring size.
  opts.session_output_chunks = static_cast<std::size_t>(total / opts.block_samples) + 8;
  stream::StreamEngine engine(
      std::make_unique<stream::ToneSource>(10.0025e6, cfg.input_rate_hz, 12, 0.7,
                                           total),
      opts);

  // Spread the sessions across whatever functional + ASIC backends are
  // registered, each user on its own carrier (detuned NCO).
  const std::vector<std::string> carriers = {backends::kNative, backends::kFixedDdc,
                                             backends::kFloatDdc};
  std::vector<std::shared_ptr<stream::Session>> sessions;
  for (int s = 0; s < n_sessions; ++s) {
    auto user_cfg = cfg;
    user_cfg.nco_freq_hz = cfg.nco_freq_hz + 20.0e3 * s;
    const auto& backend = carriers[static_cast<std::size_t>(s) % carriers.size()];
    sessions.push_back(engine.open(core::ChainPlan::figure1(user_cfg, spec), backend));
  }
  {
    // One hardware user: a GC4016 chip slot on its own lowering, shedding
    // load instead of stalling the feed when its consumer lags.  Paused
    // here to simulate the lagging consumer: its input ring fills and the
    // pump evicts the oldest blocks rather than throttling everyone.
    auto probe = core::BackendRegistry::instance().create(backends::kGc4016);
    sessions.push_back(engine.open(probe->plan_for(cfg), backends::kGc4016,
                                   stream::BackpressurePolicy::kDropOldest));
    sessions.back()->set_paused(true);
  }
  std::printf("serving %zu sessions from one %d-frame feed (block_samples=%zu, workers=%d)\n",
              sessions.size(), frames, opts.block_samples, opts.workers);

  engine.start();

  // A user retunes mid-stream: phase-continuous splice, no output gap.
  sessions[0]->retune(
      core::ChainPlan::figure1(core::DdcConfig::reference(10.06e6), spec),
      core::SwapMode::kSplice);

  // Let the stalled GC4016 user shed the early feed, then resume it once
  // the source has run dry and drain everyone.
  while (!engine.feed_exhausted())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sessions.back()->set_paused(false);

  stream::CollectingSink sink;
  stream::drain_to(engine, sessions, sink);
  engine.stop();

  const auto shed = sessions.back()->stats();
  std::printf("stalled GC4016 user shed %llu blocks (%llu samples); its next "
              "chunk carries the gap marker\n",
              static_cast<unsigned long long>(shed.input_drop_blocks),
              static_cast<unsigned long long>(shed.input_drop_samples));

  std::uint64_t total_out = 0;
  for (const auto& s : sessions) total_out += s->stats().samples_out;
  std::printf("feed exhausted after %llu blocks; %llu IQ samples served\n",
              static_cast<unsigned long long>(engine.blocks_pumped()),
              static_cast<unsigned long long>(total_out));
  std::printf("session 0 retunes applied: %llu (splice: gap-free)\n",
              static_cast<unsigned long long>(sessions[0]->stats().retunes_applied));

  std::printf("\nper-session stats JSON:\n%s\n", engine.stats_json().c_str());

  // $TWIDDC_TRACE was applied at load time; if any category is on, export
  // the whole run as a Chrome trace.
  if (trace::enabled_mask() != 0) {
    const char* path_env = std::getenv("TWIDDC_TRACE_FILE");
    const std::string path = path_env ? path_env : "streaming_server.trace.json";
    if (trace::write_chrome_trace(path))
      std::printf("trace written to %s (%llu events dropped)\n", path.c_str(),
                  static_cast<unsigned long long>(trace::snapshot().dropped));
    else
      std::fprintf(stderr, "trace export to %s failed\n", path.c_str());
  }
  return 0;
}
