#include "src/asic/gc4016.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"
#include "src/core/backend.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::asic {
namespace {

// Internal datapath widths of the channel model: 16-bit words after the
// mixer (the chip's internal precision class), Q1.15 coefficients, 40-bit
// accumulators.
constexpr int kInternalBits = 16;
constexpr int kNcoBits = 16;
constexpr int kCoeffFrac = 15;

std::vector<std::int64_t> widen(const std::vector<std::int32_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

void Gc4016Config::validate() const {
  if (input_bits != 14 && input_bits != 16)
    throw ConfigError("Gc4016: input width must be 14 or 16 bits (Table 2), got " +
                      std::to_string(input_bits));
  if (input_rate_hz <= 0.0 || input_rate_hz > Gc4016Limits::kMaxInputMsps * 1e6)
    throw ConfigError("Gc4016: input rate must be in (0, 100] MSPS, got " +
                      std::to_string(input_rate_hz / 1e6) + " MSPS");
  if (channels.empty())
    throw ConfigError("Gc4016: at least one channel must be configured");
  if (static_cast<int>(channels.size()) > max_channels())
    throw ConfigError("Gc4016: " + std::to_string(channels.size()) +
                      " channels configured but only " + std::to_string(max_channels()) +
                      " available at " + std::to_string(input_bits) + "-bit input");
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const auto& ch = channels[c];
    if (!ch.enabled) continue;
    if (ch.cic_decimation < Gc4016Limits::kMinCicDecimation ||
        ch.cic_decimation > Gc4016Limits::kMaxCicDecimation)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": CIC decimation must be in [8,4096], got " +
                        std::to_string(ch.cic_decimation));
    const int total = ch.cic_decimation * 4;
    if (total < Gc4016Limits::kMinTotalDecimation ||
        total > Gc4016Limits::kMaxTotalDecimation)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": total decimation out of [32,16384]");
    if (ch.output_bits != 12 && ch.output_bits != 16 && ch.output_bits != 20 &&
        ch.output_bits != 24)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": output width must be 12, 16, 20 or 24 bits");
    if (ch.nco_freq_hz < 0.0 || ch.nco_freq_hz >= input_rate_hz / 2.0)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": NCO frequency out of [0, input_rate/2)");
    if (!ch.pfir_coeffs.empty() &&
        ch.pfir_coeffs.size() != static_cast<std::size_t>(Gc4016Limits::kPfirTaps))
      throw ConfigError("Gc4016 channel " + std::to_string(c) + ": PFIR needs exactly " +
                        std::to_string(Gc4016Limits::kPfirTaps) + " coefficients");
  }
}

Gc4016Config Gc4016Config::gsm_example() {
  Gc4016Config cfg;
  cfg.input_rate_hz = 69.333e6;
  cfg.input_bits = 14;
  Gc4016ChannelConfig ch;
  ch.nco_freq_hz = 15.0e6;   // representative carrier
  ch.cic_decimation = 64;    // 64 * 2 * 2 = 256 -> 270.833 kHz out
  ch.output_bits = 16;
  cfg.channels = {ch};
  return cfg;
}

core::ChainPlan Gc4016Channel::figure4_plan(const Gc4016ChannelConfig& config,
                                            double input_rate_hz, int input_bits) {
  core::ChainPlan plan;
  plan.name = "gc4016:figure4";
  plan.input_rate_hz = input_rate_hz;
  plan.front_end.nco_freq_hz = config.nco_freq_hz;
  plan.front_end.nco_amplitude_bits = kNcoBits;
  plan.front_end.nco_table_bits = 10;
  plan.front_end.input_bits = input_bits;
  plan.front_end.mixer_out_bits = kInternalBits;

  core::StageSpec cic =
      core::StageSpec::cic("cic5", 5, config.cic_decimation, kInternalBits);
  // Large decimations grow past a 63-bit register (5*log2(4096) = 60 bits of
  // growth on a 16-bit input).  Real silicon prunes LSBs through the
  // integrator cascade (Hogenauer); distribute the required discard over the
  // stages, weighting the later stages (whose noise is least amplified).
  const int growth = fixed::cic_bit_growth(5, config.cic_decimation);
  int prune_total = std::max(0, kInternalBits + growth - 63);
  if (prune_total > 0) {
    std::vector<int> shifts(5, 0);
    for (int s = 4; prune_total > 0; s = s == 0 ? 4 : s - 1) {
      ++shifts[static_cast<std::size_t>(s)];
      --prune_total;
    }
    cic.prune_shifts = shifts;
  }
  int pruned_bits = 0;
  for (int s : cic.prune_shifts) pruned_bits += s;
  cic.register_bits = kInternalBits + growth - pruned_bits;
  cic.post_shift = growth - pruned_bits;
  cic.narrow_bits = kInternalBits;
  cic.rounding = fixed::Rounding::kNearest;
  cic.post_scale = std::ldexp(1.0, -cic.post_shift);

  // CFIR: the droop compensator for the CIC5 that runs at cic_decimation
  // times this filter's rate.  Passband up to 80% of the post-CFIR Nyquist.
  const auto cfir_ideal = dsp::design_cic_compensator(
      Gc4016Limits::kCfirTaps, 0.8 * 0.25, 5, config.cic_decimation);
  core::StageSpec cfir = core::StageSpec::fir(
      "cfir", widen(dsp::quantize_coefficients(cfir_ideal, kCoeffFrac)), cfir_ideal, 2);
  cfir.post_shift = kCoeffFrac;
  cfir.narrow_bits = kInternalBits;
  cfir.rounding = fixed::Rounding::kNearest;

  std::vector<std::int64_t> pfir_quantised;
  std::vector<double> pfir_float;
  if (config.pfir_coeffs.empty()) {
    pfir_float =
        dsp::design_lowpass(Gc4016Limits::kPfirTaps, 0.8 * 0.25, dsp::Window::kBlackman);
    pfir_quantised = widen(dsp::quantize_coefficients(pfir_float, kCoeffFrac));
  } else {
    pfir_quantised = widen(config.pfir_coeffs);
    // Float-rail equivalent of the user's Q1.15 coefficients.
    pfir_float.reserve(pfir_quantised.size());
    for (std::int64_t c : pfir_quantised)
      pfir_float.push_back(std::ldexp(static_cast<double>(c), -kCoeffFrac));
  }
  core::StageSpec pfir =
      core::StageSpec::fir("pfir", std::move(pfir_quantised), std::move(pfir_float), 2);
  // Final requantisation to the configured output width.
  pfir.post_shift = kCoeffFrac + (kInternalBits - config.output_bits);
  pfir.narrow_bits = config.output_bits;
  pfir.rounding = fixed::Rounding::kNearest;

  plan.stages = {std::move(cic), std::move(cfir), std::move(pfir)};
  return plan;
}

Gc4016Config Gc4016::lower_plan(const core::ChainPlan& plan) {
  const std::string who = "asic-gc4016";
  plan.validate();

  // Structural pattern of Figure 4: CIC5 -> CFIR (D=2) -> PFIR (D=2).
  if (plan.stages.size() != 3)
    throw core::LoweringError(who, "the channel datapath is the fixed Figure 4 "
                              "chain (CIC5 -> CFIR -> PFIR); plan has " +
                              std::to_string(plan.stages.size()) + " stages");
  const core::StageSpec& cic = plan.stages[0];
  const core::StageSpec& cfir = plan.stages[1];
  const core::StageSpec& pfir = plan.stages[2];
  if (cic.kind != core::StageSpec::Kind::kCic || cic.cic_stages != 5)
    throw core::LoweringError(who, "the first stage must be the chip's 5-stage CIC");
  if (cic.decimation < Gc4016Limits::kMinCicDecimation ||
      cic.decimation > Gc4016Limits::kMaxCicDecimation)
    throw core::LoweringError(who, "CIC decimation " + std::to_string(cic.decimation) +
                              " outside the chip's [8,4096] range (Table 2)");
  auto check_fir = [&](const core::StageSpec& s, const char* name, int taps) {
    if (s.kind != core::StageSpec::Kind::kFirDecimator || s.decimation != 2 ||
        s.taps.size() != static_cast<std::size_t>(taps))
      throw core::LoweringError(who, std::string("stage '") + s.label + "' must be "
                                "the chip's " + std::to_string(taps) + "-tap " + name +
                                " decimating by 2");
  };
  check_fir(cfir, "CFIR", Gc4016Limits::kCfirTaps);
  check_fir(pfir, "PFIR", Gc4016Limits::kPfirTaps);

  // Recover the chip configuration.
  Gc4016Config config;
  config.input_rate_hz = plan.input_rate_hz;
  config.input_bits = plan.front_end.input_bits;
  Gc4016ChannelConfig ch;
  ch.nco_freq_hz = plan.front_end.nco_freq_hz;
  ch.cic_decimation = cic.decimation;
  ch.output_bits = pfir.narrow_bits;
  ch.pfir_coeffs.reserve(pfir.taps.size());
  for (std::int64_t c : pfir.taps) {
    if (c < INT32_MIN || c > INT32_MAX)
      throw core::LoweringError(who, "PFIR coefficient " + std::to_string(c) +
                                " does not fit the chip's coefficient registers");
    ch.pfir_coeffs.push_back(static_cast<std::int32_t>(c));
  }
  config.channels = {ch};
  try {
    config.validate();
  } catch (const ConfigError& e) {
    throw core::LoweringError(who, std::string("recovered chip configuration is "
                              "invalid: ") + e.what());
  }

  // The plan must be exactly the chip's realisation of that configuration
  // (NCO format, internal 16-bit precision class, droop-compensating CFIR,
  // Hogenauer pruning pattern, per-stage conditioning).  The PFIR taps were
  // carried into `ch`, so the programmable filter matches by construction;
  // everything else must equal the chip's own derivation.
  const core::ChainPlan ref =
      Gc4016Channel::figure4_plan(ch, config.input_rate_hz, config.input_bits);
  core::check_plan_matches_reference(plan, ref, who, "gc4016-internal16");
  return config;
}

void Gc4016Channel::reset() { pipeline_->reset(); }

double Gc4016Channel::output_scale() const {
  return 1.0 / static_cast<double>(std::int64_t{1} << (cfg_.output_bits - 1));
}

std::optional<Gc4016Output> Gc4016Channel::push(std::int64_t x) {
  const auto y = pipeline_->push(x);
  if (!y) return std::nullopt;
  return Gc4016Output{channel_index_, y->i, y->q};
}

void Gc4016Channel::process_block(std::span<const std::int64_t> in,
                                  std::vector<Gc4016Output>& out) {
  scratch_.clear();
  pipeline_->process_block(in, scratch_);
  out.reserve(out.size() + scratch_.size());
  for (const auto& y : scratch_) out.push_back(Gc4016Output{channel_index_, y.i, y.q});
}

namespace {
std::vector<core::ChainPlan> figure4_plans(const Gc4016Config& config) {
  config.validate();
  std::vector<core::ChainPlan> plans;
  plans.reserve(config.channels.size());
  for (const auto& ch : config.channels)
    plans.push_back(
        Gc4016Channel::figure4_plan(ch, config.input_rate_hz, config.input_bits));
  return plans;
}
}  // namespace

Gc4016::Gc4016(const Gc4016Config& config)
    : config_(config), bank_(figure4_plans(config)) {
  for (std::size_t c = 0; c < config.channels.size(); ++c) {
    channels_.push_back(Gc4016Channel(config.channels[c], &bank_.channel(c),
                                      static_cast<int>(c)));
    bank_.set_enabled(c, config.channels[c].enabled);
  }
}

void Gc4016::process_block(std::span<const std::int64_t> in,
                           std::vector<Gc4016Output>& out) {
  if (in.empty()) return;
  // All-or-nothing: reject the whole block before any channel advances.
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  simd::minmax_i64(in.data(), in.size(), lo, hi);
  if (!fixed::fits_bits(lo, config_.input_bits) ||
      !fixed::fits_bits(hi, config_.input_bits))
    throw SimulationError("Gc4016::process_block: input does not fit " +
                          std::to_string(config_.input_bits) + " bits");
  // Capture each enabled channel's input count before the batch pass so the
  // planar outputs can be replayed in push()'s time order afterwards.
  struct Cursor {
    std::size_t channel;
    std::uint64_t next_out_at;  // local input index after which output k emerges
    std::uint64_t decimation;
    std::size_t k = 0;
  };
  std::vector<Cursor> cursors;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (!config_.channels[c].enabled) continue;
    auto& pipe = bank_.channel(c);
    const auto d = static_cast<std::uint64_t>(pipe.total_decimation());
    // The pre-block sample count is mid-revolution in general; the first
    // output of this block appears once the count reaches the next multiple
    // of the channel's total decimation.
    const std::uint64_t pre = pipe.samples_in();
    cursors.push_back(Cursor{c, (pre / d + 1) * d - pre, d});
  }

  for (auto& p : planar_) p.clear();
  bank_.process_block(in, planar_);

  // Merge planar outputs back into the per-cycle order push() produces:
  // ascending output instant, channel index breaking ties; kAdd sums
  // simultaneous outputs into the virtual channel -1.
  std::size_t remaining = 0;
  for (const auto& cur : cursors) remaining += planar_[cur.channel].size();
  out.reserve(out.size() + remaining);
  while (remaining > 0) {
    // Earliest next output instant across channels (<= 4 of them).
    std::uint64_t t = 0;
    bool have = false;
    for (const auto& cur : cursors) {
      if (cur.k >= planar_[cur.channel].size()) continue;
      if (!have || cur.next_out_at < t) {
        t = cur.next_out_at;
        have = true;
      }
    }
    // Collect every output of this instant (channel order == push order).
    Gc4016Output cycle[Gc4016Limits::kChannels14Bit];
    int produced = 0;
    for (auto& cur : cursors) {
      if (cur.k >= planar_[cur.channel].size() || cur.next_out_at != t) continue;
      const core::IqSample& y = planar_[cur.channel][cur.k];
      ++cur.k;
      cur.next_out_at += cur.decimation;
      --remaining;
      cycle[produced++] = Gc4016Output{static_cast<int>(cur.channel), y.i, y.q};
    }
    if (config_.combine == Gc4016Config::Combine::kAdd && produced > 1) {
      Gc4016Output sum{-1, 0, 0};
      for (int j = 0; j < produced; ++j) {
        sum.i += cycle[j].i;
        sum.q += cycle[j].q;
      }
      out.push_back(sum);
    } else {
      for (int j = 0; j < produced; ++j) out.push_back(cycle[j]);
    }
  }
}

int Gc4016::enabled_channels() const {
  int n = 0;
  for (const auto& ch : config_.channels)
    if (ch.enabled) ++n;
  return n;
}

void Gc4016::reset() {
  for (auto& ch : channels_) ch.reset();
}

std::vector<Gc4016Output> Gc4016::push(std::int64_t x) {
  if (!fixed::fits_bits(x, config_.input_bits))
    throw SimulationError("Gc4016::push: input does not fit " +
                          std::to_string(config_.input_bits) + " bits");
  std::vector<Gc4016Output> outs;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (!config_.channels[c].enabled) continue;
    if (auto y = channels_[c].push(x)) outs.push_back(*y);
  }
  if (config_.combine == Gc4016Config::Combine::kAdd && outs.size() > 1) {
    Gc4016Output sum{-1, 0, 0};
    for (const auto& o : outs) {
      sum.i += o.i;
      sum.q += o.q;
    }
    return {sum};
  }
  return outs;
}

double Gc4016::power_mw_native() const {
  // Datasheet operating point: 115 mW per active channel at 80 MHz.  The
  // chip is clocked at the input sample rate, and dynamic power scales
  // linearly with clock (section 3.1.2's model).
  const double f_mhz = config_.input_rate_hz / 1e6;
  return Gc4016Limits::kGsmPowerMwPerChannel * (f_mhz / Gc4016Limits::kGsmClockMhz) *
         enabled_channels();
}

double Gc4016::power_mw_at(const energy::TechnologyNode& node) const {
  return energy::scale_power_mw(power_mw_native(), native_node(), node);
}

}  // namespace twiddc::asic
