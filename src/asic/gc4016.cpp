#include "src/asic/gc4016.hpp"

#include <algorithm>
#include <string>

#include "src/common/error.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::asic {
namespace {

// Internal datapath widths of the channel model: 16-bit words after the
// mixer (the chip's internal precision class), Q1.15 coefficients, 40-bit
// accumulators.
constexpr int kInternalBits = 16;
constexpr int kNcoBits = 16;
constexpr int kCoeffFrac = 15;

std::vector<std::int64_t> widen(const std::vector<std::int32_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

void Gc4016Config::validate() const {
  if (input_bits != 14 && input_bits != 16)
    throw ConfigError("Gc4016: input width must be 14 or 16 bits (Table 2), got " +
                      std::to_string(input_bits));
  if (input_rate_hz <= 0.0 || input_rate_hz > Gc4016Limits::kMaxInputMsps * 1e6)
    throw ConfigError("Gc4016: input rate must be in (0, 100] MSPS, got " +
                      std::to_string(input_rate_hz / 1e6) + " MSPS");
  if (channels.empty())
    throw ConfigError("Gc4016: at least one channel must be configured");
  if (static_cast<int>(channels.size()) > max_channels())
    throw ConfigError("Gc4016: " + std::to_string(channels.size()) +
                      " channels configured but only " + std::to_string(max_channels()) +
                      " available at " + std::to_string(input_bits) + "-bit input");
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const auto& ch = channels[c];
    if (!ch.enabled) continue;
    if (ch.cic_decimation < Gc4016Limits::kMinCicDecimation ||
        ch.cic_decimation > Gc4016Limits::kMaxCicDecimation)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": CIC decimation must be in [8,4096], got " +
                        std::to_string(ch.cic_decimation));
    const int total = ch.cic_decimation * 4;
    if (total < Gc4016Limits::kMinTotalDecimation ||
        total > Gc4016Limits::kMaxTotalDecimation)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": total decimation out of [32,16384]");
    if (ch.output_bits != 12 && ch.output_bits != 16 && ch.output_bits != 20 &&
        ch.output_bits != 24)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": output width must be 12, 16, 20 or 24 bits");
    if (ch.nco_freq_hz < 0.0 || ch.nco_freq_hz >= input_rate_hz / 2.0)
      throw ConfigError("Gc4016 channel " + std::to_string(c) +
                        ": NCO frequency out of [0, input_rate/2)");
    if (!ch.pfir_coeffs.empty() &&
        ch.pfir_coeffs.size() != static_cast<std::size_t>(Gc4016Limits::kPfirTaps))
      throw ConfigError("Gc4016 channel " + std::to_string(c) + ": PFIR needs exactly " +
                        std::to_string(Gc4016Limits::kPfirTaps) + " coefficients");
  }
}

Gc4016Config Gc4016Config::gsm_example() {
  Gc4016Config cfg;
  cfg.input_rate_hz = 69.333e6;
  cfg.input_bits = 14;
  Gc4016ChannelConfig ch;
  ch.nco_freq_hz = 15.0e6;   // representative carrier
  ch.cic_decimation = 64;    // 64 * 2 * 2 = 256 -> 270.833 kHz out
  ch.output_bits = 16;
  cfg.channels = {ch};
  return cfg;
}

Gc4016Channel::Gc4016Channel(const Gc4016ChannelConfig& config, double input_rate_hz,
                             int input_bits)
    : cfg_(config),
      nco_([&] {
        dsp::Nco::Config nc;
        nc.freq_hz = config.nco_freq_hz;
        nc.sample_rate_hz = input_rate_hz;
        nc.amplitude_bits = kNcoBits;
        nc.table_bits = 10;
        return dsp::Nco(nc);
      }()),
      mixer_([&] {
        dsp::ComplexMixer::Config mc;
        mc.input_bits = input_bits;
        mc.nco_amplitude_bits = kNcoBits;
        mc.output_bits = kInternalBits;
        return dsp::ComplexMixer(mc);
      }()) {
  // CFIR: the droop compensator for the CIC5 that runs at cic_decimation
  // times this filter's rate.  Passband up to 80% of the post-CFIR Nyquist.
  const auto cfir_ideal = dsp::design_cic_compensator(
      Gc4016Limits::kCfirTaps, 0.8 * 0.25, 5, config.cic_decimation);
  cfir_taps_ = widen(dsp::quantize_coefficients(cfir_ideal, kCoeffFrac));
  if (config.pfir_coeffs.empty()) {
    const auto pfir_ideal =
        dsp::design_lowpass(Gc4016Limits::kPfirTaps, 0.8 * 0.25, dsp::Window::kBlackman);
    pfir_taps_ = widen(dsp::quantize_coefficients(pfir_ideal, kCoeffFrac));
  } else {
    pfir_taps_ = widen(config.pfir_coeffs);
  }

  dsp::CicDecimator::Config cic_cfg;
  cic_cfg.stages = 5;
  cic_cfg.decimation = config.cic_decimation;
  cic_cfg.input_bits = kInternalBits;
  // Large decimations grow past a 63-bit register (5*log2(4096) = 60 bits of
  // growth on a 16-bit input).  Real silicon prunes LSBs through the
  // integrator cascade (Hogenauer); distribute the required discard over the
  // stages, weighting the later stages (whose noise is least amplified).
  const int growth = fixed::cic_bit_growth(cic_cfg.stages, cic_cfg.decimation);
  int prune_total = std::max(0, kInternalBits + growth - 63);
  if (prune_total > 0) {
    std::vector<int> shifts(5, 0);
    for (int s = 4; prune_total > 0; s = s == 0 ? 4 : s - 1) {
      ++shifts[static_cast<std::size_t>(s)];
      --prune_total;
    }
    cic_cfg.prune_shifts = shifts;
  }
  int pruned_bits = 0;
  for (int s : cic_cfg.prune_shifts) pruned_bits += s;
  cic_cfg.register_bits = kInternalBits + growth - pruned_bits;
  for (int r = 0; r < 2; ++r) {
    rails_.push_back(Rail{dsp::CicDecimator(cic_cfg),
                          dsp::FirDecimator<std::int64_t>(cfir_taps_, 2),
                          dsp::FirDecimator<std::int64_t>(pfir_taps_, 2)});
  }
  cic_shift_ = growth - pruned_bits;
}

void Gc4016Channel::reset() {
  nco_.reset();
  for (auto& rail : rails_) {
    rail.cic.reset();
    rail.cfir.reset();
    rail.pfir.reset();
  }
}

double Gc4016Channel::output_scale() const {
  return 1.0 / static_cast<double>(std::int64_t{1} << (cfg_.output_bits - 1));
}

std::optional<Gc4016Output> Gc4016Channel::push(std::int64_t x) {
  const dsp::SinCos sc = nco_.next();
  const dsp::Iq mixed = mixer_.mix(x, sc.cos, sc.sin);

  std::array<std::optional<std::int64_t>, 2> outs{};
  const std::array<std::int64_t, 2> ins{mixed.i, mixed.q};
  for (int r = 0; r < 2; ++r) {
    auto& rail = rails_[static_cast<std::size_t>(r)];
    auto cic_out = rail.cic.push(ins[static_cast<std::size_t>(r)]);
    if (!cic_out) continue;
    const std::int64_t v = fixed::narrow(
        fixed::shift_right(*cic_out, cic_shift_, fixed::Rounding::kNearest),
        kInternalBits, fixed::Overflow::kSaturate);
    auto cfir_out = rail.cfir.push(v);
    if (!cfir_out) continue;
    const std::int64_t w = fixed::narrow(
        fixed::shift_right(*cfir_out, kCoeffFrac, fixed::Rounding::kNearest),
        kInternalBits, fixed::Overflow::kSaturate);
    auto pfir_out = rail.pfir.push(w);
    if (!pfir_out) continue;
    // Final requantisation to the configured output width.
    const int out_shift = kCoeffFrac + (kInternalBits - cfg_.output_bits);
    outs[static_cast<std::size_t>(r)] = fixed::narrow(
        fixed::shift_right(*pfir_out, out_shift, fixed::Rounding::kNearest),
        cfg_.output_bits, fixed::Overflow::kSaturate);
  }
  if (outs[0].has_value() != outs[1].has_value())
    throw SimulationError("Gc4016Channel: I/Q rails lost rate lock");
  if (!outs[0]) return std::nullopt;
  return Gc4016Output{channel_index_, *outs[0], *outs[1]};
}

Gc4016::Gc4016(const Gc4016Config& config) : config_(config) {
  config.validate();
  for (std::size_t c = 0; c < config.channels.size(); ++c) {
    channels_.emplace_back(config.channels[c], config.input_rate_hz, config.input_bits);
    channels_.back().channel_index_ = static_cast<int>(c);
  }
}

int Gc4016::enabled_channels() const {
  int n = 0;
  for (const auto& ch : config_.channels)
    if (ch.enabled) ++n;
  return n;
}

void Gc4016::reset() {
  for (auto& ch : channels_) ch.reset();
}

std::vector<Gc4016Output> Gc4016::push(std::int64_t x) {
  if (!fixed::fits_bits(x, config_.input_bits))
    throw SimulationError("Gc4016::push: input does not fit " +
                          std::to_string(config_.input_bits) + " bits");
  std::vector<Gc4016Output> outs;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (!config_.channels[c].enabled) continue;
    if (auto y = channels_[c].push(x)) outs.push_back(*y);
  }
  if (config_.combine == Gc4016Config::Combine::kAdd && outs.size() > 1) {
    Gc4016Output sum{-1, 0, 0};
    for (const auto& o : outs) {
      sum.i += o.i;
      sum.q += o.q;
    }
    return {sum};
  }
  return outs;
}

double Gc4016::power_mw_native() const {
  // Datasheet operating point: 115 mW per active channel at 80 MHz.  The
  // chip is clocked at the input sample rate, and dynamic power scales
  // linearly with clock (section 3.1.2's model).
  const double f_mhz = config_.input_rate_hz / 1e6;
  return Gc4016Limits::kGsmPowerMwPerChannel * (f_mhz / Gc4016Limits::kGsmClockMhz) *
         enabled_channels();
}

double Gc4016::power_mw_at(const energy::TechnologyNode& node) const {
  return energy::scale_power_mw(power_mw_native(), native_node(), node);
}

}  // namespace twiddc::asic
