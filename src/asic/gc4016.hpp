// twiddc::asic -- behavioral model of the TI GC4016 multi-standard quad
// DDC chip (paper section 3.1, Table 2, Figure 4).
//
// Each of the four channels implements (Figure 4):
//
//   in -> [NCO + mixer] -> CIC5 (dec 8..4096) -> CFIR 21 taps (dec 2)
//      -> PFIR 63 taps (dec 2) -> output (12/16/20/24 bit)
//
// and the channels can be combined with a multiplexer or an adder.  The
// CFIR ships with CIC-droop-compensating coefficients (its documented role);
// the PFIR coefficients are programmable.  Power comes from the datasheet
// operating point the paper uses: 115 mW per channel at 80 MHz, 2.5 V,
// 0.25 um.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/channel_bank.hpp"
#include "src/core/pipeline.hpp"
#include "src/energy/technology.hpp"

namespace twiddc::asic {

/// Capability constants from Table 2 / the datasheet.
struct Gc4016Limits {
  static constexpr double kMaxInputMsps = 100.0;
  static constexpr int kMinCicDecimation = 8;
  static constexpr int kMaxCicDecimation = 4096;
  static constexpr int kMinTotalDecimation = 32;     // 8 * 2 * 2
  static constexpr int kMaxTotalDecimation = 16384;  // 4096 * 2 * 2
  static constexpr int kCfirTaps = 21;
  static constexpr int kPfirTaps = 63;
  static constexpr int kChannels14Bit = 4;
  static constexpr int kChannels16Bit = 3;
  /// Datasheet GSM operating point the paper quotes.
  static constexpr double kGsmPowerMwPerChannel = 115.0;
  static constexpr double kGsmClockMhz = 80.0;
};

/// Per-channel configuration.
struct Gc4016ChannelConfig {
  bool enabled = true;
  double nco_freq_hz = 0.0;
  int cic_decimation = 64;                 ///< 8..4096
  int output_bits = 16;                    ///< 12, 16, 20 or 24
  /// PFIR coefficients in Q1.15; empty selects a default lowpass.
  std::vector<std::int32_t> pfir_coeffs;
};

/// Chip-level configuration.
struct Gc4016Config {
  double input_rate_hz = 80.0e6;           ///< chip clock == input sample rate
  int input_bits = 14;                     ///< 14 (4 channels) or 16 (3 channels)
  enum class Combine { kMultiplex, kAdd } combine = Combine::kMultiplex;
  std::vector<Gc4016ChannelConfig> channels;

  [[nodiscard]] int max_channels() const {
    return input_bits == 14 ? Gc4016Limits::kChannels14Bit
                            : Gc4016Limits::kChannels16Bit;
  }
  /// Throws ConfigError on any Table 2 violation.
  void validate() const;

  /// The datasheet GSM example (section 3.1.2): 69.333 MHz in, CIC
  /// decimation 64, total decimation 256, 270.833 kHz out.
  static Gc4016Config gsm_example();
};

/// One complex output sample tagged with its source channel.
struct Gc4016Output {
  int channel = 0;
  std::int64_t i = 0;
  std::int64_t q = 0;
};

/// One channel's datapath.  Since the stage-pipeline refactor this is a thin
/// shim: the Figure 4 topology (CIC5 -> CFIR -> PFIR) is expressed as a
/// ChainPlan and the chip's shared core::ChannelBank owns the pipeline; the
/// channel object only binds its configuration to the bank slot.
class Gc4016Channel {
 public:
  std::optional<Gc4016Output> push(std::int64_t x);
  /// Block hot path: bit-exact with a push() loop.
  void process_block(std::span<const std::int64_t> in, std::vector<Gc4016Output>& out);
  void reset();

  [[nodiscard]] int total_decimation() const { return cfg_.cic_decimation * 4; }
  [[nodiscard]] double output_rate_hz(double input_rate_hz) const {
    return input_rate_hz / total_decimation();
  }
  /// The underlying pipeline (shared-architecture access point).
  [[nodiscard]] core::DdcPipeline& pipeline() { return *pipeline_; }
  [[nodiscard]] const std::vector<std::int64_t>& cfir_taps() const {
    return pipeline_->plan().stages[1].taps;
  }
  [[nodiscard]] const std::vector<std::int64_t>& pfir_taps() const {
    return pipeline_->plan().stages[2].taps;
  }
  [[nodiscard]] double output_scale() const;

  /// The Figure 4 topology as a ChainPlan (also what the bank is built of).
  static core::ChainPlan figure4_plan(const Gc4016ChannelConfig& config,
                                      double input_rate_hz, int input_bits);

 private:
  Gc4016Channel(const Gc4016ChannelConfig& config, core::DdcPipeline* pipeline,
                int index)
      : cfg_(config), pipeline_(pipeline), channel_index_(index) {}

  Gc4016ChannelConfig cfg_;
  core::DdcPipeline* pipeline_ = nullptr;  // owned by the chip's ChannelBank
  std::vector<core::IqSample> scratch_;
  int channel_index_ = 0;
  friend class Gc4016;
};

/// The quad chip.  The four channels are slots of one core::ChannelBank, so
/// the chip-level block path is a shared-input batch pass (optionally
/// sharded across worker threads).
class Gc4016 {
 public:
  explicit Gc4016(const Gc4016Config& config);

  /// Plan -> chip lowering: accepts exactly the Figure 4 family (CIC5 with
  /// a decimation in [8,4096] -> 21-tap CFIR -> 63-tap programmable PFIR,
  /// each FIR decimating by 2) at a 14/16-bit input and a Table 2 output
  /// width, and returns the single-channel chip configuration realising the
  /// plan.  Throws core::LoweringError naming the first unmappable feature.
  static Gc4016Config lower_plan(const core::ChainPlan& plan);

  /// Pushes one input sample into every enabled channel; returns any outputs
  /// produced this cycle (combined per `Combine`: kMultiplex tags each with
  /// its channel, kAdd sums simultaneous outputs into channel -1).
  std::vector<Gc4016Output> push(std::int64_t x);

  /// Block hot path: runs the whole block through every enabled channel via
  /// the ChannelBank, then merges the planar per-channel outputs back into
  /// push()'s time order (and kAdd's summing of simultaneous outputs).
  /// Bit-exact with a push() loop.
  void process_block(std::span<const std::int64_t> in, std::vector<Gc4016Output>& out);

  /// Worker threads used by process_block to shard channels (default 1).
  void set_workers(int workers) { bank_.set_workers(workers); }

  void reset();

  [[nodiscard]] const Gc4016Config& config() const { return config_; }
  [[nodiscard]] int enabled_channels() const;
  /// Read-only: channel enablement lives in the chip config (the bank's
  /// enable flags mirror it and must not be toggled independently, or the
  /// push and block paths would disagree about which channels run).
  [[nodiscard]] const core::ChannelBank& bank() const { return bank_; }
  [[nodiscard]] Gc4016Channel& channel(int idx) { return channels_.at(static_cast<std::size_t>(idx)); }

  /// Power at the chip's native 0.25 um node for the configured clock:
  /// the datasheet per-channel figure scaled linearly in frequency.
  [[nodiscard]] double power_mw_native() const;
  /// Power scaled to another technology node via the paper's rule.
  [[nodiscard]] double power_mw_at(const energy::TechnologyNode& node) const;
  [[nodiscard]] static energy::TechnologyNode native_node() {
    return energy::TechnologyNode::um250();
  }

 private:
  Gc4016Config config_;
  core::ChannelBank bank_;
  std::vector<Gc4016Channel> channels_;
  std::vector<std::vector<core::IqSample>> planar_;  // process_block scratch
};

}  // namespace twiddc::asic
