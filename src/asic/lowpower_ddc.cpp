#include "src/asic/lowpower_ddc.hpp"

#include <string>

#include "src/common/error.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::asic {
namespace {

// Gate-equivalent estimates for a 0.18 um standard-cell datapath.  These are
// engineering approximations (full adder ~ 6 NAND2, register bit ~ 8, array
// multiplier ~ W*W full adders, ROM bit ~ 0.25, RAM bit ~ 0.7); the absolute
// scale is absorbed by the calibration constant, the *relative* distribution
// across blocks is what drives predictions for non-reference configurations.
double adder_gates(int width) { return width * 6.0; }
double register_gates(int width) { return width * 8.0; }
double multiplier_gates(int w) { return static_cast<double>(w) * w * 6.0; }
double rom_gates(double bits) { return 0.25 * bits; }
double ram_gates(double bits) { return 0.7 * bits; }

}  // namespace

std::vector<BlockActivity> build_inventory(const core::DdcConfig& config) {
  config.validate();
  const int total_decim = config.total_decimation();
  if (total_decim < CustomLowPowerDdc::kMinDecimation ||
      total_decim > CustomLowPowerDdc::kMaxDecimation)
    throw ConfigError("CustomLowPowerDdc: total decimation must be in [2,65536], got " +
                      std::to_string(total_decim));

  constexpr int kBus = 12;    // 12-bit datapath like the FPGA design
  constexpr int kNcoLutBits = 10;
  const double fin = config.input_rate_hz;
  const double f_cic2_out = config.cic2_output_rate_hz();
  const double f_cic5_out = config.cic5_output_rate_hz();
  const double f_out = config.output_rate_hz();

  const int cic2_reg = kBus + fixed::cic_bit_growth(config.cic2_stages, config.cic2_decimation);
  const int cic5_reg = kBus + fixed::cic_bit_growth(config.cic5_stages, config.cic5_decimation);

  std::vector<BlockActivity> inv;
  // NCO: 32-bit phase accumulator + quarter-wave ROM + quadrant logic.
  inv.push_back({"NCO",
                 adder_gates(32) + register_gates(32) +
                     rom_gates((1 << kNcoLutBits) * kBus) + 200.0,
                 fin, 0.25});
  // Mixer: two W x W multipliers (I and Q) + output registers.
  inv.push_back({"mixer", 2 * (multiplier_gates(kBus) + register_gates(kBus)), fin, 0.25});
  // CIC2 integrators run at the input rate -- the paper notes the first
  // stages dominate because of this.
  inv.push_back({"CIC2 integrators",
                 2.0 * config.cic2_stages * (adder_gates(cic2_reg) + register_gates(cic2_reg)),
                 fin, 0.25});
  inv.push_back({"CIC2 combs",
                 2.0 * config.cic2_stages * (adder_gates(cic2_reg) + 2 * register_gates(cic2_reg)),
                 f_cic2_out, 0.25});
  inv.push_back({"CIC5 integrators",
                 2.0 * config.cic5_stages * (adder_gates(cic5_reg) + register_gates(cic5_reg)),
                 f_cic2_out, 0.25});
  inv.push_back({"CIC5 combs",
                 2.0 * config.cic5_stages * (adder_gates(cic5_reg) + 2 * register_gates(cic5_reg)),
                 f_cic5_out, 0.25});
  // FIR: per rail one multiplier + accumulator + sample RAM + coefficient
  // ROM; clock-gated so the effective rate is taps MACs per output sample.
  const double fir_gates =
      2.0 * (multiplier_gates(kBus) + adder_gates(31) + register_gates(31) +
             ram_gates(config.fir_taps * kBus) + rom_gates(config.fir_taps * kBus) + 300.0);
  inv.push_back({"FIR125 (polyphase)", fir_gates, f_out * config.fir_taps, 0.25});
  // Control/output framing.
  inv.push_back({"control", 800.0, fin, 0.10});
  return inv;
}

double CustomLowPowerDdc::picojoule_per_gate_toggle() {
  // Calibrated once: the reference configuration at 64.512 MHz consumes the
  // published 27 mW at 0.18 um / 1.8 V.
  static const double k = [] {
    const auto inv = build_inventory(core::DdcConfig::reference());
    double total = 0.0;
    for (const auto& b : inv) total += b.activity();
    return kPublishedPowerMw * 1e-3 / total * 1e12;  // pJ per toggle
  }();
  return k;
}

CustomLowPowerDdc::CustomLowPowerDdc(const core::DdcConfig& config)
    : config_(config),
      ddc_(config, core::DatapathSpec::fpga()),
      inventory_(build_inventory(config)) {}

double CustomLowPowerDdc::power_mw_native() const {
  double total = 0.0;
  for (const auto& b : inventory_) total += b.activity();
  return total * picojoule_per_gate_toggle() * 1e-12 * 1e3;  // W -> mW
}

double CustomLowPowerDdc::power_mw_at(const energy::TechnologyNode& node) const {
  return energy::scale_power_mw(power_mw_native(), native_node(), node);
}

}  // namespace twiddc::asic
