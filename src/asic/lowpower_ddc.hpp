// twiddc::asic -- the customised low-power DDC ASIC (paper section 3.2).
//
// Functionally this chip *is* the reference chain of section 2 (we reuse
// core::FixedDdc with the 12-bit datapath), supporting decimation factors
// from 2 to 65536.  Its 27 mW @ 64.512 MHz figure is, per the paper, "based
// on gate count and activity rate estimation" -- so that is exactly the
// estimator built here: a per-block gate inventory, per-block activity from
// the stage rates, and a single per-gate switching-energy constant
// calibrated once against the published 27 mW operating point (0.18 um,
// 1.8 V).  The estimator then predicts power for *other* configurations,
// which the ablation benches exercise.
#pragma once

#include <string>
#include <vector>

#include "src/core/ddc_config.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/energy/technology.hpp"

namespace twiddc::asic {

/// One entry of the gate-activity inventory.
struct BlockActivity {
  std::string block;       ///< e.g. "CIC2 integrators"
  double gate_count = 0;   ///< equivalent NAND2 gates
  double clock_hz = 0;     ///< rate this block is clocked at
  double switching = 0.25; ///< fraction of gates toggling per clock
  /// Effective toggling gate-hertz.
  [[nodiscard]] double activity() const { return gate_count * clock_hz * switching; }
};

class CustomLowPowerDdc {
 public:
  /// Paper limits: "maximum decimation of 65536, and a minimum of 2".
  static constexpr int kMinDecimation = 2;
  static constexpr int kMaxDecimation = 65536;
  /// Published operating point.
  static constexpr double kPublishedPowerMw = 27.0;
  static constexpr double kPublishedClockMhz = 64.512;
  static constexpr double kCoreAreaMm2 = 1.7;  // section 3.2 (Table 7 prints 17)

  explicit CustomLowPowerDdc(const core::DdcConfig& config);

  /// The functional datapath (12-bit busses like the FPGA design).
  [[nodiscard]] core::FixedDdc& datapath() { return ddc_; }

  /// Gate/activity inventory for the current configuration.
  [[nodiscard]] const std::vector<BlockActivity>& inventory() const { return inventory_; }

  /// Estimated power at the native 0.18 um / 1.8 V node.
  [[nodiscard]] double power_mw_native() const;
  /// Scaled to `node` via the paper's rule.
  [[nodiscard]] double power_mw_at(const energy::TechnologyNode& node) const;
  [[nodiscard]] static energy::TechnologyNode native_node() {
    return energy::TechnologyNode::um180();
  }

  /// The calibration constant (pJ per gate toggle at 0.18 um / 1.8 V),
  /// derived once from the 27 mW point of the reference configuration.
  static double picojoule_per_gate_toggle();

 private:
  core::DdcConfig config_;
  core::FixedDdc ddc_;
  std::vector<BlockActivity> inventory_;
};

/// Builds the gate/activity inventory for an arbitrary chain configuration
/// (also used for ablations without constructing the full datapath).
std::vector<BlockActivity> build_inventory(const core::DdcConfig& config);

}  // namespace twiddc::asic
