#include "src/backends/builtin.hpp"

#include <cmath>
#include <complex>
#include <optional>
#include <utility>

#include "src/asic/gc4016.hpp"
#include "src/common/rng.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/core/plan_compiler.hpp"
#include "src/dsp/nco.hpp"
#include "src/dsp/signal.hpp"
#include "src/fpga/ddc_fpga.hpp"
#include "src/gpp/ddc_program.hpp"
#include "src/montium/ddc_mapping.hpp"

namespace twiddc::backends {
namespace {

using core::ArchitectureBackend;
using core::BackendCapabilities;
using core::BackendPowerProfile;
using core::ChainPlan;
using core::DatapathSpec;
using core::DdcConfig;
using core::IqSample;
using core::LoweringError;
using core::SwapMode;

/// Shared name/plan plumbing for the concrete backends.
class BackendBase : public ArchitectureBackend {
 public:
  explicit BackendBase(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const ChainPlan& plan() const override {
    require_configured();
    return plan_;
  }
  [[nodiscard]] double output_scale() const override {
    require_configured();
    return core::plan_output_scale(plan_);
  }

 protected:
  std::string name_;
  ChainPlan plan_;
};

// ----------------------------------------------------------- native-pipeline

/// Executes through the plan compiler: configure() resolves the plan in the
/// process-wide CompiledPlanCache (N sessions on one config share a single
/// CompiledPlan) and runs it with the fused tile executor, which is bit-exact
/// with the staged DdcPipeline (pinned by the conformance harness).
class NativeBackend final : public BackendBase {
 public:
  NativeBackend() : BackendBase(kNative) {}

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities c;
    c.bit_exact = true;
    c.arbitrary_topology = true;
    c.supports_splice = true;
    return c;
  }
  [[nodiscard]] DatapathSpec datapath() const override {
    return DatapathSpec::wide16();
  }
  void configure(const ChainPlan& plan) override {
    try {
      auto compiled = core::CompiledPlanCache::instance().get_or_compile(plan);
      exec_.emplace(std::move(compiled));
    } catch (const LoweringError&) {
      throw;
    } catch (const ConfigError& e) {
      throw LoweringError(name_, e.what());
    }
    plan_ = plan;
  }
  [[nodiscard]] bool is_configured() const override { return exec_.has_value(); }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<IqSample>& out) override {
    require_configured();
    exec_->process_block(in, out);
  }
  void reset() override {
    require_configured();
    exec_->reset();
  }
  void swap_plan(const ChainPlan& plan, SwapMode mode) override {
    require_configured();
    try {
      // Compile (or fetch) first so a bad plan throws before any state moves
      // -- the old plan stays active, matching DdcPipeline::swap_plan.
      auto compiled = core::CompiledPlanCache::instance().get_or_compile(plan);
      if (mode == SwapMode::kFlush) {
        exec_.emplace(std::move(compiled));  // fresh state, like a reconfigure
      } else {
        exec_->splice(std::move(compiled));  // throws if structurally incompatible
      }
    } catch (const LoweringError&) {
      throw;
    } catch (const ConfigError& e) {
      // Keep the documented contract: lowering/compatibility failures are
      // typed, and the old plan stays active (swap_plan guarantees that).
      throw LoweringError(name_, e.what());
    }
    plan_ = plan;
  }

 private:
  std::optional<core::FusedChainExec> exec_;
};

// ----------------------------------------------------------------- fixed-ddc

class FixedDdcBackend final : public BackendBase {
 public:
  FixedDdcBackend() : BackendBase(kFixedDdc) {}

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities c;
    c.bit_exact = true;
    c.arbitrary_topology = true;
    c.supports_splice = true;
    return c;
  }
  [[nodiscard]] DatapathSpec datapath() const override {
    return DatapathSpec::wide16();
  }
  void configure(const ChainPlan& plan) override {
    try {
      // Resolve through the shared cache first: validates the plan once and
      // dedups its coefficient/LUT storage even though the staged FixedDdc
      // keeps its own executor.
      core::CompiledPlanCache::instance().get_or_compile(plan);
      core::FixedDdc ddc(plan);
      ddc_ = std::move(ddc);
    } catch (const LoweringError&) {
      throw;
    } catch (const ConfigError& e) {
      throw LoweringError(name_, e.what());
    }
    plan_ = plan;
  }
  [[nodiscard]] bool is_configured() const override { return ddc_.has_value(); }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<IqSample>& out) override {
    require_configured();
    ddc_->process_block(in, out);
  }
  void reset() override {
    require_configured();
    ddc_->reset();
  }
  void swap_plan(const ChainPlan& plan, SwapMode mode) override {
    require_configured();
    try {
      ddc_->swap_plan(plan, mode);
    } catch (const LoweringError&) {
      throw;
    } catch (const ConfigError& e) {
      throw LoweringError(name_, e.what());
    }
    plan_ = ddc_->pipeline().plan();
  }

 private:
  std::optional<core::FixedDdc> ddc_;
};

// ----------------------------------------------------------------- float-ddc

/// Double-precision realisation of an arbitrary plan: exact sin/cos front
/// end (at the NCO's quantised tuning frequency), float rails from the same
/// specs, outputs requantised to the plan's output width for comparison.
class FloatDdcBackend final : public BackendBase {
 public:
  FloatDdcBackend() : BackendBase(kFloatDdc) {}

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities c;
    c.bit_exact = false;
    c.arbitrary_topology = true;
    c.min_snr_db = 35.0;  // 12-bit rails; wider plans do much better
    return c;
  }
  [[nodiscard]] DatapathSpec datapath() const override {
    return DatapathSpec::ideal();
  }
  void configure(const ChainPlan& plan) override {
    std::shared_ptr<const core::CompiledPlan> compiled;
    try {
      // The canonical key only covers the fixed datapath, so the float rails
      // must be built from the *original* plan (taps_float/post_scale are
      // not canonical); the cache still provides validation, the quantised
      // tuning word and shared stats.
      compiled = core::CompiledPlanCache::instance().get_or_compile(plan);
      std::vector<core::StageChain<double>> rails;
      rails.push_back(core::make_float_rail(plan));
      rails.push_back(core::make_float_rail(plan));
      rails_ = std::move(rails);
    } catch (const ConfigError& e) {
      throw LoweringError(name_, e.what());
    }
    plan_ = plan;
    phase_ = 0.0;
    phase_step_ = kTwoPi * static_cast<double>(compiled->tuning_word()) * 0x1p-32;
    configured_ = true;
  }
  [[nodiscard]] bool is_configured() const override { return configured_; }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<IqSample>& out) override {
    require_configured();
    const double in_scale =
        std::ldexp(1.0, -(plan_.front_end.input_bits - 1));
    const double out_gain =
        std::ldexp(1.0, core::plan_output_bits(plan_) - 1);
    mix_i_.clear();
    mix_q_.clear();
    mix_i_.reserve(in.size());
    mix_q_.reserve(in.size());
    for (std::int64_t x : in) {
      const double xf = static_cast<double>(x) * in_scale;
      mix_i_.push_back(xf * std::cos(phase_));
      mix_q_.push_back(xf * std::sin(phase_));
      phase_ += phase_step_;
      if (phase_ >= kTwoPi) phase_ -= kTwoPi;
    }
    out_i_.clear();
    out_q_.clear();
    rails_[0].process_block(mix_i_, out_i_);
    rails_[1].process_block(mix_q_, out_q_);
    out.reserve(out.size() + out_i_.size());
    for (std::size_t j = 0; j < out_i_.size(); ++j)
      out.push_back(IqSample{std::llround(out_i_[j] * out_gain),
                             std::llround(out_q_[j] * out_gain)});
  }
  void reset() override {
    require_configured();
    for (auto& r : rails_) r.reset();
    phase_ = 0.0;
  }

 private:
  static constexpr double kTwoPi = 6.28318530717958647692528676655900577;

  bool configured_ = false;
  std::vector<core::StageChain<double>> rails_;
  double phase_ = 0.0;
  double phase_step_ = 0.0;
  std::vector<double> mix_i_, mix_q_, out_i_, out_q_;
};

// --------------------------------------------------------------- asic-gc4016

class Gc4016Backend final : public BackendBase {
 public:
  Gc4016Backend() : BackendBase(kGc4016) {}

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities c;
    c.bit_exact = true;
    return c;
  }
  [[nodiscard]] DatapathSpec datapath() const override {
    // The chip's internal precision class: 16-bit words, Q1.15 coefficients.
    auto s = DatapathSpec::wide16();
    s.name = "gc4016-internal16";
    s.input_bits = 14;
    return s;
  }
  [[nodiscard]] ChainPlan plan_for(const DdcConfig& config) const override {
    // The chip's own lowering of a rate plan is its Figure 4 chain; it fits
    // only decimations of the form 4 * CIC with CIC in [8,4096].
    if (config.total_decimation() % 4 != 0 ||
        config.total_decimation() / 4 < asic::Gc4016Limits::kMinCicDecimation ||
        config.total_decimation() / 4 > asic::Gc4016Limits::kMaxCicDecimation)
      throw LoweringError(name_, "total decimation " +
                          std::to_string(config.total_decimation()) +
                          " does not split as 4 x CIC with CIC in [8,4096]");
    asic::Gc4016ChannelConfig ch;
    ch.nco_freq_hz = config.nco_freq_hz;
    ch.cic_decimation = config.total_decimation() / 4;
    return asic::Gc4016Channel::figure4_plan(ch, config.input_rate_hz, 14);
  }
  void configure(const ChainPlan& plan) override {
    const auto config = asic::Gc4016::lower_plan(plan);
    chip_.emplace(config);
    plan_ = plan;
  }
  [[nodiscard]] bool is_configured() const override { return chip_.has_value(); }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<IqSample>& out) override {
    require_configured();
    scratch_.clear();
    chip_->process_block(in, scratch_);
    out.reserve(out.size() + scratch_.size());
    for (const auto& y : scratch_) out.push_back(IqSample{y.i, y.q});
  }
  void reset() override {
    require_configured();
    chip_->reset();
  }
  [[nodiscard]] BackendPowerProfile power_profile() const override {
    require_configured();
    BackendPowerProfile p;
    p.modeled = true;
    p.active_power_mw = chip_->power_mw_native();
    p.idle_power_mw = 1.0;  // dedicated silicon: standby leakage all day
    p.reusable_when_idle = false;
    return p;
  }

 private:
  std::optional<asic::Gc4016> chip_;
  std::vector<asic::Gc4016Output> scratch_;
};

// ------------------------------------------------------------------ fpga-rtl

class FpgaBackend final : public BackendBase {
 public:
  FpgaBackend() : BackendBase(kFpga) {}

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities c;
    c.bit_exact = true;
    return c;
  }
  [[nodiscard]] DatapathSpec datapath() const override {
    return fpga::DdcFpgaTop::spec();
  }
  void configure(const ChainPlan& plan) override {
    config_ = fpga::DdcFpgaTop::lower_plan(plan);
    top_.emplace(config_);
    plan_ = plan;
  }
  [[nodiscard]] bool is_configured() const override { return top_.has_value(); }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<IqSample>& out) override {
    require_configured();
    for (std::int64_t x : in) {
      if (auto y = top_->clock(x)) out.push_back(*y);
    }
  }
  void reset() override {
    require_configured();
    top_.emplace(config_);  // registers reset to their power-on state
  }
  [[nodiscard]] BackendPowerProfile power_profile() const override {
    require_configured();
    // Measure a representative toggle rate on a scratch instance (the
    // conformance state of top_ must not advance), then apply the
    // PowerPlay-style Cyclone II model.
    fpga::DdcFpgaTop probe(config_);
    Rng rng(7);
    probe.process(dsp::random_samples(
        12, static_cast<std::size_t>(config_.total_decimation()) * 4, rng));
    const double toggle = probe.toggle_summary().rate_percent();
    BackendPowerProfile p;
    p.modeled = true;
    p.active_power_mw = fpga::PowerModel::cyclone2().total_mw(toggle);
    p.idle_power_mw = 0.0;
    p.reusable_when_idle = true;  // fabric reprogrammed for other tasks
    p.reconfig_bytes = 1.2e6 / 8.0;  // EP2C5 bitstream ~1.2 Mb
    p.reconfig_power_mw = p.active_power_mw;
    return p;
  }

 private:
  DdcConfig config_;
  std::optional<fpga::DdcFpgaTop> top_;
};

// ------------------------------------------------------------------- gpp-arm

class GppBackend final : public BackendBase {
 public:
  GppBackend() : BackendBase(kGpp) {}

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities c;
    c.bit_exact = true;
    c.in_phase_only = true;  // the paper's C code computes only the I rail
    return c;
  }
  [[nodiscard]] DatapathSpec datapath() const override {
    return DatapathSpec::wide16();
  }
  void configure(const ChainPlan& plan) override {
    const auto config = gpp::DdcProgram::lower_plan(plan);
    // Build-then-commit: constructing the stream (a ~260 KB CPU image) may
    // throw, and swap_plan guarantees a failed reconfiguration leaves the
    // old configuration running -- so nothing is replaced until both parts
    // exist.  Heap-owned so the stream's back-reference survives the move.
    auto prog = std::make_unique<gpp::DdcProgram>(config);
    auto stream = std::make_unique<gpp::DdcStream>(*prog);
    prog_ = std::move(prog);
    stream_ = std::move(stream);
    config_ = config;
    plan_ = plan;
  }
  [[nodiscard]] bool is_configured() const override { return prog_ != nullptr; }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<IqSample>& out) override {
    require_configured();
    // Incremental: the DdcStream keeps the program's registers, CIC/FIR
    // state and sample ring alive across blocks, so a long stream costs
    // O(blocks) while staying bit-identical to one batch run() over the
    // concatenated input -- this backend can serve unbounded sessions.
    scratch_.clear();
    stream_->process_block(in, scratch_);
    out.reserve(out.size() + scratch_.size());
    for (const std::int32_t v : scratch_) out.push_back(IqSample{v, 0});
  }
  void reset() override {
    require_configured();
    stream_->reset();
  }
  [[nodiscard]] BackendPowerProfile power_profile() const override {
    require_configured();
    Rng rng(11);
    const std::size_t n = static_cast<std::size_t>(config_.total_decimation()) * 4;
    const auto run = prog_->run(dsp::random_samples(12, n, rng));
    BackendPowerProfile p;
    p.modeled = true;
    p.active_power_mw = run.power_mw(n, config_.input_rate_hz);
    p.idle_power_mw = 0.0;
    p.reusable_when_idle = true;  // the processor runs other code when idle
    p.reconfig_bytes = static_cast<double>(prog_->program().code.size()) * 4.0;
    p.reconfig_power_mw = p.active_power_mw;
    return p;
  }

 private:
  DdcConfig config_;
  std::unique_ptr<gpp::DdcProgram> prog_;   // batch kernel: power profiling
  std::unique_ptr<gpp::DdcStream> stream_;  // incremental streaming state
  std::vector<std::int32_t> scratch_;
};

// ------------------------------------------------------------------- montium

class MontiumBackend final : public BackendBase {
 public:
  MontiumBackend() : BackendBase(kMontium) {}

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities c;
    c.bit_exact = true;
    return c;
  }
  [[nodiscard]] DatapathSpec datapath() const override {
    return montium::DdcMapping::spec();
  }
  void configure(const ChainPlan& plan) override {
    config_ = montium::DdcMapping::lower_plan(plan);
    map_.emplace(config_);
    plan_ = plan;
  }
  [[nodiscard]] bool is_configured() const override { return map_.has_value(); }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<IqSample>& out) override {
    require_configured();
    for (std::int64_t x : in) {
      if (auto y = map_->step(x)) out.push_back(*y);
    }
  }
  void reset() override {
    require_configured();
    map_.emplace(config_);  // reload the already-lowered configuration
  }
  [[nodiscard]] BackendPowerProfile power_profile() const override {
    require_configured();
    BackendPowerProfile p;
    p.modeled = true;
    p.active_power_mw = map_->power_mw();
    p.idle_power_mw = 0.0;
    p.reusable_when_idle = true;  // the tile hosts other kernels when idle
    p.reconfig_bytes = static_cast<double>(map_->serialize_config().size());
    p.reconfig_power_mw = p.active_power_mw;
    return p;
  }

 private:
  DdcConfig config_;
  std::optional<montium::DdcMapping> map_;
};

}  // namespace

void register_builtin() {
  auto& registry = core::BackendRegistry::instance();
  registry.add(kNative, [] { return std::make_unique<NativeBackend>(); });
  registry.add(kFixedDdc, [] { return std::make_unique<FixedDdcBackend>(); });
  registry.add(kFloatDdc, [] { return std::make_unique<FloatDdcBackend>(); });
  registry.add(kGc4016, [] { return std::make_unique<Gc4016Backend>(); });
  registry.add(kFpga, [] { return std::make_unique<FpgaBackend>(); });
  registry.add(kGpp, [] { return std::make_unique<GppBackend>(); });
  registry.add(kMontium, [] { return std::make_unique<MontiumBackend>(); });
}

void register_decorated(
    const std::string& name, const std::string& inner,
    std::function<std::unique_ptr<core::ArchitectureBackend>(
        std::unique_ptr<core::ArchitectureBackend>)>
        decorate) {
  auto& registry = core::BackendRegistry::instance();
  if (!registry.contains(inner))
    throw ConfigError("register_decorated: unknown inner backend '" + inner + "'");
  // The inner factory is looked up at create() time (not captured), so a
  // later re-registration of `inner` flows through the decoration too.
  registry.add(name, [inner, decorate = std::move(decorate)] {
    return decorate(core::BackendRegistry::instance().create(inner));
  });
}

}  // namespace twiddc::backends
