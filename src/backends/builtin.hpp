// twiddc::backends -- the built-in ArchitectureBackend set.
//
// One backend per execution path in the repo:
//
//   native-pipeline  core::DdcPipeline (the functional twin itself); runs
//                    any valid plan, supports kSplice reconfiguration.
//   fixed-ddc        core::FixedDdc shim (plan-constructed); any plan,
//                    kSplice via the shared pipeline.
//   float-ddc        double-precision rails built from the same plan;
//                    any plan, quantisation-bounded agreement.
//   asic-gc4016      the GC4016 quad-DDC chip model (one channel); only
//                    the Figure 4 family lowers.
//   fpga-rtl         the cycle-true FPGA design; only its 12-bit Figure-1
//                    family lowers.
//   gpp-arm          the ARM-like program; only the wide16 Figure-1 family
//                    lowers, in-phase rail only (as the paper's C code).
//   montium          the Montium tile mapping; only its wide16/7-bit-table
//                    Figure-1 family lowers, reconfigures by flushing (a
//                    configuration reload, the paper's 1110-byte blob).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/core/backend.hpp"

namespace twiddc::backends {

inline constexpr const char* kNative = "native-pipeline";
inline constexpr const char* kFixedDdc = "fixed-ddc";
inline constexpr const char* kFloatDdc = "float-ddc";
inline constexpr const char* kGc4016 = "asic-gc4016";
inline constexpr const char* kFpga = "fpga-rtl";
inline constexpr const char* kGpp = "gpp-arm";
inline constexpr const char* kMontium = "montium";

/// Registers every built-in backend with core::BackendRegistry::instance().
/// Idempotent; call before iterating the registry.
void register_builtin();

/// Registers `name` as a decorated twin of the already-registered backend
/// `inner`: create(name) builds a fresh create(inner) instance and passes it
/// through `decorate`.  The seam the stream-layer fault injector uses to put
/// a misbehaving shim in front of ANY backend without the backend knowing;
/// also usable for tracing/metering wrappers.  Re-registration by name
/// follows the registry's last-wins rule.
void register_decorated(
    const std::string& name, const std::string& inner,
    std::function<std::unique_ptr<core::ArchitectureBackend>(
        std::unique_ptr<core::ArchitectureBackend>)>
        decorate);

}  // namespace twiddc::backends
