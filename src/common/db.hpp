// twiddc -- decibel conversion helpers.
#pragma once

#include <cmath>

namespace twiddc {

/// Power ratio -> dB.  Clamps to -300 dB for non-positive ratios so spectral
/// plots of exact zeros stay finite.
inline double power_db(double ratio) {
  if (ratio <= 0.0) return -300.0;
  return 10.0 * std::log10(ratio);
}

/// Amplitude ratio -> dB of its magnitude (a sign flip is 0 dB).
inline double amplitude_db(double ratio) {
  const double mag = std::abs(ratio);
  if (mag <= 0.0) return -300.0;
  return 20.0 * std::log10(mag);
}

/// dB -> power ratio.
inline double db_to_power(double db) { return std::pow(10.0, db / 10.0); }

/// dB -> amplitude ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

}  // namespace twiddc
