// twiddc -- error types shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace twiddc {

/// Thrown when a user-supplied configuration is invalid (bad decimation
/// factor, unsupported bit width, out-of-range frequency, ...).  The message
/// always names the offending parameter and the accepted range.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulator is driven outside its contract (e.g. reading an
/// output before any input was pushed, or addressing a missing memory).
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace twiddc
