// twiddc -- error types and the fault taxonomy shared across the library.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace twiddc {

/// Thrown when a user-supplied configuration is invalid (bad decimation
/// factor, unsupported bit width, out-of-range frequency, ...).  The message
/// always names the offending parameter and the accepted range.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulator is driven outside its contract (e.g. reading an
/// output before any input was pushed, or addressing a missing memory).
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

/// Where a runtime fault was caught.  Exceptions from a backend or source
/// never propagate out of the stream layer; they are converted at the
/// session (or engine) boundary into a FaultInfo carrying one of these
/// causes, and the enclosing component degrades per policy instead of
/// unwinding the whole engine.  Stable numeric codes (error_code) are part
/// of the wire/stats surface -- append-only.
enum class FaultCause : std::uint8_t {
  kNone = 0,              ///< no fault recorded
  kBackendConfigure = 1,  ///< ArchitectureBackend::configure threw (restart path)
  kBackendProcess = 2,    ///< ArchitectureBackend::process_block threw
  kBackendSwap = 3,       ///< swap_plan threw something *other* than a
                          ///< lowering/config rejection (those are rejected
                          ///< retunes, not faults: the old plan stays active)
  kSource = 4,            ///< Source::read threw (engine-level: the feed ends)
  kStall = 5,             ///< watchdog: progress heartbeat frozen past timeout
  kInternal = 6,          ///< exception escaped a service pass outside the
                          ///< per-call catch sites (incl. foreign exceptions)
};

[[nodiscard]] constexpr const char* to_string(FaultCause cause) {
  switch (cause) {
    case FaultCause::kNone: return "none";
    case FaultCause::kBackendConfigure: return "backend_configure";
    case FaultCause::kBackendProcess: return "backend_process";
    case FaultCause::kBackendSwap: return "backend_swap";
    case FaultCause::kSource: return "source";
    case FaultCause::kStall: return "stall";
    case FaultCause::kInternal: return "internal";
  }
  return "unknown";
}

[[nodiscard]] constexpr int error_code(FaultCause cause) {
  return static_cast<int>(cause);
}

/// One recorded fault: what failed, where in the stream, and the diagnostic.
struct FaultInfo {
  FaultCause cause = FaultCause::kNone;
  std::uint64_t block_index = 0;  ///< blocks processed (session) / pumped
                                  ///< (engine) when the fault was caught
  std::string what;               ///< exception message (or a synthesised one
                                  ///< for foreign exceptions)
};

}  // namespace twiddc
