// twiddc -- minimal JSON object writer shared by machine-readable outputs
// (the bench binaries' trajectory lines, the stream engine's stats_json,
// and the trace/metrics exporters).  One object per instance; string
// values are escaped (keys are trusted identifiers).  Nested structure is
// built with object()/array(), so callers never splice braces by hand.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace twiddc {

class JsonLine {
 public:
  JsonLine& field(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    quoted += escape(value);
    quoted += '"';
    return raw(key, std::move(quoted));
  }
  JsonLine& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonLine& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonLine& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return raw(key, buf);
  }
  JsonLine& field(const std::string& key, std::size_t value) {
    return raw(key, std::to_string(value));
  }
  /// Nested object: the value renders exactly as `value.str()`.
  JsonLine& object(const std::string& key, const JsonLine& value) {
    return raw(key, value.str());
  }
  /// Array of objects.
  JsonLine& array(const std::string& key, const std::vector<JsonLine>& items) {
    std::string s = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) s += ", ";
      s += items[i].str();
    }
    return raw(key, s + "]");
  }
  /// Pre-rendered JSON value (a number formatted by the caller, or an
  /// object produced elsewhere).  The caller owns validity.
  JsonLine& raw_field(const std::string& key, std::string json) {
    return raw(key, std::move(json));
  }
  [[nodiscard]] std::string str() const {
    std::string s = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) s += ", ";
      s += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    return s + "}";
  }
  void print() const { std::printf("%s\n", str().c_str()); }

 private:
  /// Some string values are caller-supplied (a ChainPlan name in the stream
  /// engine's stats_json), so quotes, backslashes and control characters
  /// must not break the emitted object.
  static std::string escape(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  JsonLine& raw(const std::string& key, std::string value) {
    fields_.emplace_back(key, std::move(value));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace twiddc
