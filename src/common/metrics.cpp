#include "src/common/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace twiddc::metrics {

namespace {

unsigned bit_width_u64(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return v == 0 ? 0 : 64u - static_cast<unsigned>(__builtin_clzll(v));
#else
  unsigned b = 0;
  while (v >> b) ++b;
  return b;
#endif
}

}  // namespace

unsigned HistogramLayout::bucket_index(std::uint64_t v) {
  if (v < kUnitBuckets) return static_cast<unsigned>(v);
  const unsigned b = bit_width_u64(v);  // >= kSubBits + 2 here
  const unsigned octave = b - (kSubBits + 1);
  const unsigned sub =
      static_cast<unsigned>(v >> (b - 1 - kSubBits)) & (kSub - 1);
  return kUnitBuckets + (octave - 1) * kSub + sub;
}

std::uint64_t HistogramLayout::bucket_upper(unsigned idx) {
  if (idx < kUnitBuckets) return idx;
  const unsigned rel = idx - kUnitBuckets;
  const unsigned octave = rel / kSub + 1;
  const unsigned sub = rel % kSub;
  const unsigned b = octave + kSubBits + 1;  // bit width of values in bucket
  const std::uint64_t width = std::uint64_t{1} << (b - 1 - kSubBits);
  const std::uint64_t lower = (std::uint64_t{1} << (b - 1)) + sub * width;
  return lower + width - 1;
}

void HistogramSnapshot::add(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::uint64_t HistogramSnapshot::quantile(double p) const {
  if (count == 0) return 0;
  p = std::min(1.0, std::max(0.0, p));
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5));
  std::uint64_t cum = 0;
  for (unsigned i = 0; i < HistogramLayout::kBucketCount; ++i) {
    cum += buckets[i];
    if (cum >= target)
      return std::min(HistogramLayout::bucket_upper(i), max);
  }
  return max;
}

JsonLine HistogramSnapshot::to_json(double scale) const {
  JsonLine line;
  line.field("count", static_cast<std::size_t>(count))
      .field("mean", mean() * scale)
      .field("p50", static_cast<double>(quantile(0.50)) * scale)
      .field("p90", static_cast<double>(quantile(0.90)) * scale)
      .field("p99", static_cast<double>(quantile(0.99)) * scale)
      .field("max", static_cast<double>(max) * scale);
  return line;
}

void Histogram::record(std::uint64_t v) {
  buckets_[HistogramLayout::bucket_index(v)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  // Relaxed per-field reads: concurrent record()s may straddle the copy,
  // so count/sum/max can disagree by the in-flight samples -- acceptable
  // for a stats surface; each field alone is never torn.
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

struct Registry::Impl {
  mutable std::mutex mu;
  // Ordered maps: to_json renders sorted by name.  unique_ptr keeps
  // references stable across rehash-free inserts and lets the instrument
  // types stay non-movable (they hold atomics).
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: metrics outlive everything
  return *r;
}

Registry::Impl& Registry::impl() {
  static Impl* i = new Impl();
  return *i;
}
const Registry::Impl& Registry::impl() const {
  return const_cast<Registry*>(this)->impl();
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::to_json() const {
  const Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  JsonLine counters;
  for (const auto& [name, c] : im.counters)
    counters.field(name, static_cast<std::size_t>(c->value()));
  JsonLine gauges;
  for (const auto& [name, g] : im.gauges) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(g->value()));
    gauges.raw_field(name, buf);
  }
  JsonLine histograms;
  for (const auto& [name, h] : im.histograms)
    histograms.object(name, h->to_json());
  JsonLine root;
  root.object("counters", counters)
      .object("gauges", gauges)
      .object("histograms", histograms);
  return root.str();
}

}  // namespace twiddc::metrics
