// twiddc::metrics -- the telemetry registry: named counters, gauges and
// log-bucketed histograms, rendered to JSON through one code path
// (common/json.hpp) so stream::stats_json(), EngineGroup::stats_json()
// and the bench writers stop hand-rolling their own blocks.
//
// All mutators are lock-free atomics; counts are exact (fetch_add), only
// histogram *quantiles* are approximate (log-linear buckets, 8 linear
// sub-buckets per octave => a reported quantile is the bucket upper bound,
// at most ~12.5% above the true value).  Everything is safe to hammer
// from many threads concurrently -- the TSan test asserts exactness.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/json.hpp"

namespace twiddc::metrics {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (queue depth, active workers, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-linear histogram bucket layout, shared by Histogram and its
/// snapshots.  Values 0..15 land in exact unit buckets; above that each
/// power-of-two octave splits into 8 linear sub-buckets.  64-bit values
/// fit: (64 - 4) octaves * 8 + 16 = 496 buckets.
struct HistogramLayout {
  static constexpr unsigned kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr unsigned kSub = 1u << kSubBits;
  static constexpr unsigned kUnitBuckets = kSub * 2;  // exact: 0..15
  static constexpr unsigned kBucketCount =
      kUnitBuckets + (64 - (kSubBits + 1)) * kSub;  // 496

  static unsigned bucket_index(std::uint64_t v);
  /// Inclusive upper bound of a bucket: the value a quantile reports.
  static std::uint64_t bucket_upper(unsigned idx);
};

/// Immutable copy of a histogram, mergeable across instances (the pooling
/// primitive for "p99 over these sessions").
struct HistogramSnapshot {
  std::array<std::uint64_t, HistogramLayout::kBucketCount> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void add(const HistogramSnapshot& other);
  /// p in [0,1]; reports the upper bound of the bucket where the
  /// cumulative count first reaches p * count.  0 when empty.
  [[nodiscard]] std::uint64_t quantile(double p) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Renders {"count", "mean", "p50", "p90", "p99", "max"} scaled by
  /// `scale` (e.g. 1e-3 to report microsecond samples in milliseconds).
  [[nodiscard]] JsonLine to_json(double scale = 1.0) const;
};

/// Concurrent log-bucketed histogram.  record() is two relaxed fetch_adds,
/// one CAS-loop max update, and the bucket index math.
class Histogram {
 public:
  void record(std::uint64_t v);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t quantile(double p) const {
    return snapshot().quantile(p);
  }
  [[nodiscard]] JsonLine to_json(double scale = 1.0) const {
    return snapshot().to_json(scale);
  }

 private:
  std::array<std::atomic<std::uint64_t>, HistogramLayout::kBucketCount>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide named-metric registry.  Lookup interns the name under a
/// mutex and returns a stable reference; call sites cache the reference
/// (instruments are never destroyed).  to_json() renders every registered
/// instrument sorted by name -- the one stats surface shared by engine,
/// group and bench writers.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
  [[nodiscard]] std::string to_json() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl();
  [[nodiscard]] const Impl& impl() const;
};

}  // namespace twiddc::metrics
