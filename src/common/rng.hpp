// twiddc -- deterministic random number generation.
//
// All stochastic stimuli in tests and benches use this xoshiro128++ generator
// so that every run of the reproduction is bit-for-bit repeatable.  The
// generator satisfies std::uniform_random_bit_generator.
#pragma once

#include <cmath>
#include <cstdint>

namespace twiddc {

/// xoshiro128++ 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x5eedu) {
    // splitmix64 expansion of the seed into the four state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    state_[0] = static_cast<std::uint32_t>(a);
    state_[1] = static_cast<std::uint32_t>(a >> 32);
    state_[2] = static_cast<std::uint32_t>(b);
    state_[3] = static_cast<std::uint32_t>(b >> 32);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()() {
    const std::uint32_t result = rotl(state_[0] + state_[3], 7) + state_[0];
    const std::uint32_t t = state_[1] << 9;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 11);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)()) * 0x1p-32; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    const std::uint64_t wide =
        (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
    return lo + static_cast<std::int64_t>(wide % span);
  }

  /// Standard normal via Box-Muller.
  double gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-12);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    spare_ = r * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return r * std::cos(kTwoPi * u2);
  }

 private:
  static constexpr std::uint32_t rotl(std::uint32_t x, int k) {
    return (x << k) | (x >> (32 - k));
  }

  std::uint32_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace twiddc
