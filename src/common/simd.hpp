// twiddc::simd -- portable SIMD shim for the block hot-path kernels.
//
// Every kernel here has two realisations selected at compile time:
//
//   * an intrinsic path (`__AVX2__` on x86, AArch64 NEON for the mixer
//     mul/shift/narrow and FIR dot kernels) used when the translation unit
//     is compiled with the matching -march, and
//   * a scalar fallback written as tight restrict/unrolled loops the
//     compiler can auto-vectorise on any ISA (SSE2 baseline, ARMv7 NEON, ...).
//
// Both paths are *bit-exact* for the fixed-point chain: all accumulation is
// two's-complement (mod 2^64) where reordering is an identity, 64-bit
// multiplies either use the 32x32->64 instruction when both operands are
// proven to fit 32 bits or an exact low-64 emulation, and shifts/saturation
// reproduce fixed::shift_right / fixed::narrow operation by operation.
//
// A process-wide kill switch (`set_enabled(false)`) forces the scalar
// fallback at runtime so the test suite can diff the two paths on the same
// build; it is not meant for production use.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>

#include "src/fixed/qformat.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

// The NEON intrinsic paths need AArch64: they rely on 64-bit lane compares
// (vcgtq_s64) and 64-bit shifts that ARMv7 NEON does not provide.  32-bit ARM
// builds keep the autovectorisable scalar loops.
#if defined(__ARM_NEON) && defined(__aarch64__)
#define TWIDDC_SIMD_NEON 1
#include <arm_neon.h>
#endif

// AVX-512 kernels are compiled whenever the AVX2 tier is (the 512 paths are
// supersets of the 256 ones) and the compiler supports per-function target
// attributes: an x86-64-v3 binary then carries both tiers and dispatches at
// runtime via cpuid, while an x86-64-v4 build (`__AVX512F__` et al. defined)
// compiles them as plain functions.  The feature set is F+DQ+BW+VL -- the
// Skylake-SP/x86-64-v4 baseline -- so `_mm512_mullo_epi64` (DQ) and the
// 256-bit masked ops (VL) are available.
#if defined(__AVX2__) && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TWIDDC_HAVE_AVX512_KERNELS 1
#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__)
#define TWIDDC_AVX512_NATIVE 1
#define TWIDDC_AVX512_TARGET
#else
#define TWIDDC_AVX512_TARGET \
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl")))
#endif
#endif

namespace twiddc::simd {

/// Name of the intrinsic path this build was compiled with ("avx2"/"neon"
/// when the intrinsic kernels are active, "*-autovec"/"scalar" when only the
/// autovectorisable fallback loops exist).  Reported in the bench JSON so
/// trajectories are comparable.
inline const char* isa_name() {
#if defined(__AVX2__)
  return "avx2";
#elif defined(TWIDDC_SIMD_NEON)
  return "neon";
#elif defined(__SSE2__) || defined(_M_X64)
  return "sse2-autovec";
#elif defined(__ARM_NEON)
  return "neon-autovec";
#else
  return "scalar";
#endif
}

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

/// Runtime kill switch: when false every kernel takes its scalar fallback.
/// Used by the bit-exactness tests to diff the intrinsic path against the
/// scalar path within one binary.
inline bool enabled() { return detail::enabled_flag().load(std::memory_order_relaxed); }
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

// ------------------------------------------------------------ AVX-512 tier
//
// The 512-bit tier is selected at runtime: the kernels are compiled into any
// AVX2 build (per-function target attributes), and dispatch checks cpuid
// once.  Three switches stack: the master kill switch above (forces scalar
// everywhere), the tier cap below (caps dispatch at the AVX2 tier so tests
// can diff the two intrinsic tiers on one machine), and the hardware probe.

namespace detail {
inline std::atomic<bool>& avx512_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

/// True when this binary carries the AVX-512 kernels AND the CPU implements
/// the required feature set (F+DQ+BW+VL).  Probed once via cpuid.
inline bool avx512_supported() {
#if defined(TWIDDC_HAVE_AVX512_KERNELS)
  static const bool supported = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512dq") &&
                                __builtin_cpu_supports("avx512bw") &&
                                __builtin_cpu_supports("avx512vl");
  return supported;
#else
  return false;
#endif
}

/// Tier cap: when false, dispatch stops at the AVX2 tier even on AVX-512
/// hardware.  Lets the test suite diff the two intrinsic tiers bit-exactly
/// within one binary (the same role ScopedEnable plays for intrinsic-vs-
/// scalar).  Defaults to on; the master kill switch overrides it.
inline bool avx512_enabled() {
  return detail::avx512_flag().load(std::memory_order_relaxed);
}
inline void set_avx512_enabled(bool on) {
  detail::avx512_flag().store(on, std::memory_order_relaxed);
}

/// The 512-bit tier is live right now: kernels compiled in, CPU capable,
/// neither the master kill switch nor the tier cap thrown.
inline bool avx512_active() {
  return enabled() && avx512_enabled() && avx512_supported();
}

/// RAII helper for tests: forces the AVX-512 tier cap within a scope.
class ScopedAvx512 {
 public:
  explicit ScopedAvx512(bool on) : prev_(avx512_enabled()) { set_avx512_enabled(on); }
  ~ScopedAvx512() { set_avx512_enabled(prev_); }
  ScopedAvx512(const ScopedAvx512&) = delete;
  ScopedAvx512& operator=(const ScopedAvx512&) = delete;

 private:
  bool prev_;
};

/// The path the kernels take *right now*: "avx512" when the 512-bit tier is
/// live, isa_name() while the compile-time intrinsic kernels are live,
/// "scalar" once the kill switch forced the fallback.  Bench lines report
/// this so a trajectory captured with the switch thrown cannot masquerade as
/// an intrinsic-path measurement.
inline const char* active_path() {
  if (!enabled()) return "scalar";
  return avx512_active() ? "avx512" : isa_name();
}

/// RAII helper for tests: forces the given SIMD state within a scope.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : prev_(enabled()) { set_enabled(on); }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

/// True when every element of v[0..n) fits a signed 32-bit field (the
/// precondition for the single-instruction 32x32->64 multiply path).
inline bool all_fit_i32(const std::int64_t* v, std::size_t n) {
  // Branch-free: (v + 2^31) fits uint32 iff v fits int32; OR the high words.
  std::uint64_t high = 0;
  for (std::size_t i = 0; i < n; ++i)
    high |= (static_cast<std::uint64_t>(v[i]) + 0x80000000ull) >> 32;
  return high == 0;
}

// --------------------------------------------------------------- dot product
//
// y = sum_j a[j] * b[j] over int64, accumulated mod 2^64 (two's complement;
// order-independent, hence SIMD-reorder-safe and bit-exact vs any scalar
// loop).  `narrow_ok` asserts every a[j] and b[j] fits int32, enabling the
// one-multiply AVX2 path; otherwise an exact low-64 multiply emulation runs.
// Odd tails (n % 4) stay on the vector path via masked loads, so FIR and
// polyphase windows of any length run vector-only.

inline std::int64_t dot_i64_scalar(const std::int64_t* a, const std::int64_t* b,
                                   std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t j = 0; j < n; ++j)
    acc += static_cast<std::uint64_t>(a[j]) * static_cast<std::uint64_t>(b[j]);
  return static_cast<std::int64_t>(acc);
}

#if defined(__AVX2__)
namespace detail {
/// Exact low 64 bits of a 64x64 multiply from 32-bit partial products.
inline __m256i mullo_epi64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i mid =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

/// Arithmetic shift right of 4x int64 by s in [1, 63] (AVX2 has no sra64).
inline __m256i sra_epi64(__m256i v, int s) {
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  return _mm256_or_si256(_mm256_srli_epi64(v, s), _mm256_slli_epi64(sign, 64 - s));
}

inline std::int64_t hsum_epi64(__m256i v) {
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(lanes[0]) + static_cast<std::uint64_t>(lanes[1]) +
      static_cast<std::uint64_t>(lanes[2]) + static_cast<std::uint64_t>(lanes[3]));
}
}  // namespace detail
#endif

#if defined(__AVX2__)
namespace detail {
/// Lane mask whose first r (of 4) int64 lanes are selected, for the masked
/// tail loads below.  A sliding window over this table produces the mask
/// without branches: offset 4-r yields r leading all-ones lanes.
alignas(32) inline constexpr std::int64_t kTailMask[8] = {-1, -1, -1, -1,
                                                          0,  0,  0,  0};
}  // namespace detail
#endif

#if defined(TWIDDC_HAVE_AVX512_KERNELS)
namespace detail {
/// 8-lane dot product with a masked tail: the 1..7 leftover lanes load as
/// zero under an __mmask8, contributing zero products, so the mod-2^64
/// accumulation stays bit-exact with the scalar loop.
TWIDDC_AVX512_TARGET inline std::int64_t dot_i64_avx512(const std::int64_t* a,
                                                        const std::int64_t* b,
                                                        std::size_t n,
                                                        bool narrow_ok) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t j = 0;
  if (narrow_ok) {
    for (; j + 8 <= n; j += 8) {
      const __m512i va = _mm512_loadu_si512(a + j);
      const __m512i vb = _mm512_loadu_si512(b + j);
      acc = _mm512_add_epi64(acc, _mm512_mul_epi32(va, vb));
    }
  } else {
    for (; j + 8 <= n; j += 8) {
      const __m512i va = _mm512_loadu_si512(a + j);
      const __m512i vb = _mm512_loadu_si512(b + j);
      acc = _mm512_add_epi64(acc, _mm512_mullo_epi64(va, vb));
    }
  }
  if (j < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - j)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + j);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + j);
    acc = _mm512_add_epi64(acc, narrow_ok ? _mm512_mul_epi32(va, vb)
                                          : _mm512_mullo_epi64(va, vb));
  }
  return _mm512_reduce_add_epi64(acc);
}
}  // namespace detail
#endif

inline std::int64_t dot_i64(const std::int64_t* a, const std::int64_t* b,
                            std::size_t n, bool narrow_ok) {
#if defined(TWIDDC_HAVE_AVX512_KERNELS)
  if (n >= 16 && avx512_active()) return detail::dot_i64_avx512(a, b, n, narrow_ok);
#endif
#if defined(__AVX2__)
  if (enabled() && n >= 8) {
    __m256i acc = _mm256_setzero_si256();
    std::size_t j = 0;
    if (narrow_ok) {
      for (; j + 4 <= n; j += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
        acc = _mm256_add_epi64(acc, _mm256_mul_epi32(va, vb));
      }
    } else {
      for (; j + 4 <= n; j += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
        acc = _mm256_add_epi64(acc, detail::mullo_epi64(va, vb));
      }
    }
    if (j < n) {
      // Masked tail: the 1..3 leftover lanes stay on the vector path.
      // Masked-out lanes load as zero, contributing zero products, so the
      // mod-2^64 accumulation stays bit-exact with the scalar loop.
      const __m256i mask = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(detail::kTailMask + (4 - (n - j))));
      const __m256i va =
          _mm256_maskload_epi64(reinterpret_cast<const long long*>(a + j), mask);
      const __m256i vb =
          _mm256_maskload_epi64(reinterpret_cast<const long long*>(b + j), mask);
      acc = _mm256_add_epi64(acc, narrow_ok ? _mm256_mul_epi32(va, vb)
                                            : detail::mullo_epi64(va, vb));
    }
    return detail::hsum_epi64(acc);
  }
#elif defined(TWIDDC_SIMD_NEON)
  // Two int64 lanes per q-register.  Only the narrow path is profitable on
  // NEON: vmull_s32 is the exact 32x32->64 multiply, and both operands are
  // proven to fit int32, so vmovn_s64 (keep the low word) loses nothing.  A
  // full 64x64 low-half emulation needs four vmulls plus shuffles and loses
  // to the scalar loop, so the wide case falls through.
  if (enabled() && narrow_ok && n >= 8) {
    uint64x2_t acc0 = vdupq_n_u64(0);
    uint64x2_t acc1 = vdupq_n_u64(0);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const int32x2_t a0 = vmovn_s64(vld1q_s64(a + j));
      const int32x2_t b0 = vmovn_s64(vld1q_s64(b + j));
      const int32x2_t a1 = vmovn_s64(vld1q_s64(a + j + 2));
      const int32x2_t b1 = vmovn_s64(vld1q_s64(b + j + 2));
      acc0 = vaddq_u64(acc0, vreinterpretq_u64_s64(vmull_s32(a0, b0)));
      acc1 = vaddq_u64(acc1, vreinterpretq_u64_s64(vmull_s32(a1, b1)));
    }
    const uint64x2_t acc = vaddq_u64(acc0, acc1);
    std::uint64_t sum = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; j < n; ++j)
      sum += static_cast<std::uint64_t>(a[j]) * static_cast<std::uint64_t>(b[j]);
    return static_cast<std::int64_t>(sum);
  }
#endif
  (void)narrow_ok;
  return dot_i64_scalar(a, b, n);
}

// -------------------------------------------------- quarter-LUT sin/cos fill
//
// Fills cos_out/sin_out with the quarter-wave LUT expansion of an
// arithmetically advancing 32-bit phase (phase, phase+step, ...), exactly
// mirroring dsp::lut_sincos's quadrant logic.  `table` has 2^table_bits
// entries.  Returns the phase after n steps.

inline std::uint32_t lut_sincos_block_scalar(std::uint32_t phase, std::uint32_t step,
                                             const std::int32_t* table, int table_bits,
                                             std::size_t n, std::int32_t* cos_out,
                                             std::int32_t* sin_out) {
  const std::uint32_t mask = (std::uint32_t{1} << table_bits) - 1;
  const std::uint32_t top = mask;  // table size - 1
  const int shift = 30 - table_bits;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t quadrant = phase >> 30;
    const std::uint32_t index = (phase >> shift) & mask;
    const std::int32_t fwd = table[index];
    const std::int32_t mir = table[top - index];
    switch (quadrant) {
      case 0: sin_out[k] = fwd;  cos_out[k] = mir;  break;
      case 1: sin_out[k] = mir;  cos_out[k] = -fwd; break;
      case 2: sin_out[k] = -fwd; cos_out[k] = -mir; break;
      default: sin_out[k] = -mir; cos_out[k] = fwd; break;
    }
    phase += step;
  }
  return phase;
}

#if defined(TWIDDC_HAVE_AVX512_KERNELS)
namespace detail {
/// 16 phases per iteration; same quadrant algebra as the AVX2 path, with the
/// blend/negate selectors as __mmask16 predicates instead of byte masks.
TWIDDC_AVX512_TARGET inline std::uint32_t lut_sincos_avx512(
    std::uint32_t phase, std::uint32_t step, const std::int32_t* table,
    int table_bits, std::size_t n, std::int32_t* cos_out, std::int32_t* sin_out) {
  const std::uint32_t mask = (std::uint32_t{1} << table_bits) - 1;
  const int shift = 30 - table_bits;
  const __m512i vmask = _mm512_set1_epi32(static_cast<int>(mask));
  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i two = _mm512_set1_epi32(2);
  __m512i vphase = _mm512_add_epi32(
      _mm512_set1_epi32(static_cast<int>(phase)),
      _mm512_mullo_epi32(
          _mm512_set1_epi32(static_cast<int>(step)),
          _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                            15)));
  const __m512i vstep16 = _mm512_set1_epi32(static_cast<int>(step * 16u));
  std::size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    const __m512i quadrant = _mm512_srli_epi32(vphase, 30);
    const __m512i index = _mm512_and_si512(
        _mm512_srl_epi32(vphase, _mm_cvtsi32_si128(shift)), vmask);
    const __m512i fwd = _mm512_i32gather_epi32(index, table, 4);
    const __m512i mir =
        _mm512_i32gather_epi32(_mm512_sub_epi32(vmask, index), table, 4);
    // Quadrant bit 0 swaps fwd/mir; sin negates in quadrants 2,3 (bit 1),
    // cos in 1,2 (bit0 ^ bit1) -- the scalar switch, predicated.
    const __mmask16 bit0 = _mm512_test_epi32_mask(quadrant, one);
    const __mmask16 bit1 = _mm512_test_epi32_mask(quadrant, two);
    const __m512i sin_base = _mm512_mask_blend_epi32(bit0, fwd, mir);
    const __m512i cos_base = _mm512_mask_blend_epi32(bit0, mir, fwd);
    const __m512i sin_v = _mm512_mask_sub_epi32(sin_base, bit1, zero, sin_base);
    const __mmask16 cos_neg = bit0 ^ bit1;
    const __m512i cos_v =
        _mm512_mask_sub_epi32(cos_base, cos_neg, zero, cos_base);
    _mm512_storeu_si512(sin_out + k, sin_v);
    _mm512_storeu_si512(cos_out + k, cos_v);
    vphase = _mm512_add_epi32(vphase, vstep16);
  }
  phase += static_cast<std::uint32_t>(k) * step;
  return lut_sincos_block_scalar(phase, step, table, table_bits, n - k,
                                 cos_out + k, sin_out + k);
}
}  // namespace detail
#endif

inline std::uint32_t lut_sincos_block(std::uint32_t phase, std::uint32_t step,
                                      const std::int32_t* table, int table_bits,
                                      std::size_t n, std::int32_t* cos_out,
                                      std::int32_t* sin_out) {
#if defined(TWIDDC_HAVE_AVX512_KERNELS)
  if (n >= 32 && avx512_active())
    return detail::lut_sincos_avx512(phase, step, table, table_bits, n, cos_out,
                                     sin_out);
#endif
#if defined(__AVX2__)
  if (enabled() && n >= 16) {
    const std::uint32_t mask = (std::uint32_t{1} << table_bits) - 1;
    const int shift = 30 - table_bits;
    const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
    const __m256i vtop = vmask;
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i two = _mm256_set1_epi32(2);
    __m256i vphase = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(phase)),
        _mm256_mullo_epi32(_mm256_set1_epi32(static_cast<int>(step)),
                           _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7)));
    const __m256i vstep8 = _mm256_set1_epi32(static_cast<int>(step * 8u));
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
      const __m256i quadrant = _mm256_srli_epi32(vphase, 30);
      const __m256i index =
          _mm256_and_si256(_mm256_srli_epi32(vphase, shift), vmask);
      const __m256i fwd = _mm256_i32gather_epi32(table, index, 4);
      const __m256i mir =
          _mm256_i32gather_epi32(table, _mm256_sub_epi32(vtop, index), 4);
      // Quadrant bit 0 swaps fwd/mir; the negation masks follow the scalar
      // switch: sin negates in quadrants 2,3 (bit 1), cos in 1,2 (bit0^bit1).
      const __m256i bit0 = _mm256_cmpeq_epi32(_mm256_and_si256(quadrant, one), one);
      const __m256i bit1 = _mm256_cmpeq_epi32(_mm256_and_si256(quadrant, two), two);
      const __m256i sin_base = _mm256_blendv_epi8(fwd, mir, bit0);
      const __m256i cos_base = _mm256_blendv_epi8(mir, fwd, bit0);
      const __m256i sin_v =
          _mm256_blendv_epi8(sin_base, _mm256_sub_epi32(zero, sin_base), bit1);
      const __m256i cos_neg = _mm256_xor_si256(bit0, bit1);
      const __m256i cos_v =
          _mm256_blendv_epi8(cos_base, _mm256_sub_epi32(zero, cos_base), cos_neg);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(sin_out + k), sin_v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cos_out + k), cos_v);
      vphase = _mm256_add_epi32(vphase, vstep8);
    }
    phase += static_cast<std::uint32_t>(k) * step;
    return lut_sincos_block_scalar(phase, step, table, table_bits, n - k,
                                   cos_out + k, sin_out + k);
  }
#endif
  return lut_sincos_block_scalar(phase, step, table, table_bits, n, cos_out, sin_out);
}

// ----------------------------------------- mixer multiply / shift / narrow
//
// out[k] = narrow(shift_right(x[k] * m[k], shift, rounding), bits, overflow)
// -- one rail of the complex mixer over planar buffers.  Precondition for
// the AVX2 path: |x[k]| and |m[k]| fit int32 (the pipeline validates inputs
// against front_end.input_bits <= 32 and NCO amplitudes are <= 24 bits); the
// kernel falls back to scalar otherwise via `narrow_ok`.

inline void mul_shift_narrow_scalar(const std::int64_t* x, const std::int32_t* m,
                                    std::size_t n, int shift, int bits,
                                    fixed::Rounding rounding, fixed::Overflow overflow,
                                    std::int64_t* out) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::int64_t wide = fixed::shift_right(x[k] * m[k], shift, rounding);
    out[k] = bits == 0 ? wide : fixed::narrow(wide, bits, overflow);
  }
}

#if defined(TWIDDC_HAVE_AVX512_KERNELS)
namespace detail {
/// 8-lane mixer rail kernel.  AVX-512F has the 64-bit arithmetic right shift
/// and 64-bit min/max that AVX2 lacks, so both the rounding shift and the
/// saturation are single instructions per step.
TWIDDC_AVX512_TARGET inline void mul_shift_narrow_avx512(
    const std::int64_t* x, const std::int32_t* m, std::size_t n, int shift,
    int bits, fixed::Rounding rounding, fixed::Overflow overflow,
    std::int64_t* out) {
  const __m512i round_add = rounding == fixed::Rounding::kNearest && shift > 0
                                ? _mm512_set1_epi64(std::int64_t{1} << (shift - 1))
                                : _mm512_setzero_si512();
  const bool saturate = bits != 0 && overflow == fixed::Overflow::kSaturate;
  const bool wrap = bits != 0 && overflow == fixed::Overflow::kWrap;
  const __m512i sat_hi = _mm512_set1_epi64(bits ? fixed::max_for_bits(bits) : 0);
  const __m512i sat_lo = _mm512_set1_epi64(bits ? fixed::min_for_bits(bits) : 0);
  const __m128i vshift = _mm_cvtsi32_si128(shift);
  const __m128i vwrap = _mm_cvtsi32_si128(bits ? 64 - bits : 0);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512i vx = _mm512_loadu_si512(x + k);
    const __m512i vm = _mm512_cvtepi32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + k)));
    __m512i v = _mm512_mul_epi32(vx, vm);
    if (shift > 0) {
      v = _mm512_add_epi64(v, round_add);
      v = _mm512_sra_epi64(v, vshift);
    }
    if (saturate) {
      v = _mm512_min_epi64(v, sat_hi);
      v = _mm512_max_epi64(v, sat_lo);
    } else if (wrap) {
      v = _mm512_sra_epi64(_mm512_sll_epi64(v, vwrap), vwrap);
    }
    _mm512_storeu_si512(out + k, v);
  }
  mul_shift_narrow_scalar(x + k, m + k, n - k, shift, bits, rounding, overflow,
                          out + k);
}
}  // namespace detail
#endif

inline void mul_shift_narrow_block(const std::int64_t* x, const std::int32_t* m,
                                   std::size_t n, int shift, int bits,
                                   fixed::Rounding rounding, fixed::Overflow overflow,
                                   bool narrow_ok, std::int64_t* out) {
#if defined(TWIDDC_HAVE_AVX512_KERNELS)
  if (narrow_ok && n >= 16 && avx512_active()) {
    detail::mul_shift_narrow_avx512(x, m, n, shift, bits, rounding, overflow, out);
    return;
  }
#endif
#if defined(__AVX2__)
  if (enabled() && narrow_ok && n >= 8) {
    const __m256i round_add =
        rounding == fixed::Rounding::kNearest && shift > 0
            ? _mm256_set1_epi64x(std::int64_t{1} << (shift - 1))
            : _mm256_setzero_si256();
    const bool saturate = bits != 0 && overflow == fixed::Overflow::kSaturate;
    const bool wrap = bits != 0 && overflow == fixed::Overflow::kWrap;
    const __m256i sat_hi = _mm256_set1_epi64x(bits ? fixed::max_for_bits(bits) : 0);
    const __m256i sat_lo = _mm256_set1_epi64x(bits ? fixed::min_for_bits(bits) : 0);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
      const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + k));
      const __m256i vm = _mm256_cvtepi32_epi64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(m + k)));
      __m256i v = _mm256_mul_epi32(vx, vm);
      if (shift > 0) {
        v = _mm256_add_epi64(v, round_add);
        v = detail::sra_epi64(v, shift);
      }
      if (saturate) {
        v = _mm256_blendv_epi8(v, sat_hi, _mm256_cmpgt_epi64(v, sat_hi));
        v = _mm256_blendv_epi8(v, sat_lo, _mm256_cmpgt_epi64(sat_lo, v));
      } else if (wrap) {
        const int ws = 64 - bits;
        v = detail::sra_epi64(_mm256_slli_epi64(v, ws), ws);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), v);
    }
    mul_shift_narrow_scalar(x + k, m + k, n - k, shift, bits, rounding, overflow,
                            out + k);
    return;
  }
#elif defined(TWIDDC_SIMD_NEON)
  if (enabled() && narrow_ok && n >= 8) {
    const int64x2_t round_add =
        rounding == fixed::Rounding::kNearest && shift > 0
            ? vdupq_n_s64(std::int64_t{1} << (shift - 1))
            : vdupq_n_s64(0);
    // vshlq_s64 by a negative count is the arithmetic right shift NEON
    // spells differently from x86.
    const int64x2_t shr = vdupq_n_s64(-shift);
    const bool saturate = bits != 0 && overflow == fixed::Overflow::kSaturate;
    const bool wrap = bits != 0 && overflow == fixed::Overflow::kWrap;
    const int64x2_t sat_hi = vdupq_n_s64(bits ? fixed::max_for_bits(bits) : 0);
    const int64x2_t sat_lo = vdupq_n_s64(bits ? fixed::min_for_bits(bits) : 0);
    const int64x2_t wrap_l = vdupq_n_s64(bits ? 64 - bits : 0);
    const int64x2_t wrap_r = vdupq_n_s64(bits ? bits - 64 : 0);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
      // x fits int32 (narrow_ok), so the low words carry the full value and
      // vmull_s32 is the exact product.
      const int32x2_t x32 = vmovn_s64(vld1q_s64(x + k));
      const int32x2_t m32 = vld1_s32(m + k);
      int64x2_t v = vmull_s32(x32, m32);
      if (shift > 0) {
        v = vaddq_s64(v, round_add);
        v = vshlq_s64(v, shr);
      }
      if (saturate) {
        v = vbslq_s64(vcgtq_s64(v, sat_hi), sat_hi, v);
        v = vbslq_s64(vcgtq_s64(sat_lo, v), sat_lo, v);
      } else if (wrap) {
        v = vshlq_s64(vshlq_s64(v, wrap_l), wrap_r);
      }
      vst1q_s64(out + k, v);
    }
    mul_shift_narrow_scalar(x + k, m + k, n - k, shift, bits, rounding, overflow,
                            out + k);
    return;
  }
#endif
  (void)narrow_ok;
  mul_shift_narrow_scalar(x, m, n, shift, bits, rounding, overflow, out);
}

// ----------------------------------------------- cross-channel packed dots
//
// out[l] = sum_j taps[j] * win[j*L + l] for L lanes -- L channels' FIR
// windows interleaved at stride L, sharing one tap set.  Each tap costs one
// broadcast amortised over all L lanes plus one unit-stride register load,
// which is what makes cross-channel FIR packing pay: the monolithic path
// re-streams the taps per channel.  Accumulation is per-lane mod 2^64, so
// the result is bit-exact with L independent dot_i64 calls (and with the
// scalar loop) regardless of ISA.  `narrow_ok` asserts every tap and window
// element fits int32, same contract as dot_i64.

inline void dot_i64_x4_scalar(const std::int64_t* taps, const std::int64_t* win,
                              std::size_t ntaps, std::int64_t out[4]) {
  std::uint64_t acc[4] = {0, 0, 0, 0};
  for (std::size_t j = 0; j < ntaps; ++j) {
    const std::uint64_t t = static_cast<std::uint64_t>(taps[j]);
    for (int l = 0; l < 4; ++l)
      acc[l] += t * static_cast<std::uint64_t>(win[j * 4 + static_cast<std::size_t>(l)]);
  }
  for (int l = 0; l < 4; ++l) out[l] = static_cast<std::int64_t>(acc[l]);
}

inline void dot_i64_x8_scalar(const std::int64_t* taps, const std::int64_t* win,
                              std::size_t ntaps, std::int64_t out[8]) {
  std::uint64_t acc[8] = {};
  for (std::size_t j = 0; j < ntaps; ++j) {
    const std::uint64_t t = static_cast<std::uint64_t>(taps[j]);
    for (int l = 0; l < 8; ++l)
      acc[l] += t * static_cast<std::uint64_t>(win[j * 8 + static_cast<std::size_t>(l)]);
  }
  for (int l = 0; l < 8; ++l) out[l] = static_cast<std::int64_t>(acc[l]);
}

/// 4 lanes per AVX2 register; scalar fallback elsewhere (bit-exact).
inline void dot_i64_x4(const std::int64_t* taps, const std::int64_t* win,
                       std::size_t ntaps, bool narrow_ok, std::int64_t out[4]) {
#if defined(__AVX2__)
  if (enabled()) {
    __m256i acc = _mm256_setzero_si256();
    if (narrow_ok) {
      for (std::size_t j = 0; j < ntaps; ++j) {
        const __m256i vt = _mm256_set1_epi64x(taps[j]);
        const __m256i vw =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(win + j * 4));
        acc = _mm256_add_epi64(acc, _mm256_mul_epi32(vt, vw));
      }
    } else {
      for (std::size_t j = 0; j < ntaps; ++j) {
        const __m256i vt = _mm256_set1_epi64x(taps[j]);
        const __m256i vw =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(win + j * 4));
        acc = _mm256_add_epi64(acc, detail::mullo_epi64(vt, vw));
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), acc);
    return;
  }
#endif
  (void)narrow_ok;
  dot_i64_x4_scalar(taps, win, ntaps, out);
}

#if defined(TWIDDC_HAVE_AVX512_KERNELS)
namespace detail {
TWIDDC_AVX512_TARGET inline void dot_i64_x8_avx512(const std::int64_t* taps,
                                                   const std::int64_t* win,
                                                   std::size_t ntaps,
                                                   bool narrow_ok,
                                                   std::int64_t out[8]) {
  __m512i acc = _mm512_setzero_si512();
  if (narrow_ok) {
    for (std::size_t j = 0; j < ntaps; ++j) {
      const __m512i vt = _mm512_set1_epi64(taps[j]);
      const __m512i vw = _mm512_loadu_si512(win + j * 8);
      acc = _mm512_add_epi64(acc, _mm512_mul_epi32(vt, vw));
    }
  } else {
    for (std::size_t j = 0; j < ntaps; ++j) {
      const __m512i vt = _mm512_set1_epi64(taps[j]);
      const __m512i vw = _mm512_loadu_si512(win + j * 8);
      acc = _mm512_add_epi64(acc, _mm512_mullo_epi64(vt, vw));
    }
  }
  _mm512_storeu_si512(out, acc);
}
}  // namespace detail
#endif

/// 8 lanes per AVX-512 register; scalar fallback elsewhere (bit-exact).
inline void dot_i64_x8(const std::int64_t* taps, const std::int64_t* win,
                       std::size_t ntaps, bool narrow_ok, std::int64_t out[8]) {
#if defined(TWIDDC_HAVE_AVX512_KERNELS)
  if (avx512_active()) {
    detail::dot_i64_x8_avx512(taps, win, ntaps, narrow_ok, out);
    return;
  }
#endif
  (void)narrow_ok;
  dot_i64_x8_scalar(taps, win, ntaps, out);
}

// --------------------------------------------------------------- block scans

/// Min/max of a block in one pass (used to range-check pipeline inputs
/// without a per-sample branch).  n must be >= 1.
inline void minmax_i64(const std::int64_t* v, std::size_t n, std::int64_t& lo,
                       std::int64_t& hi) {
  std::int64_t mn = v[0];
  std::int64_t mx = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    mn = v[i] < mn ? v[i] : mn;
    mx = v[i] > mx ? v[i] : mx;
  }
  lo = mn;
  hi = mx;
}

}  // namespace twiddc::simd
