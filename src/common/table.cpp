#include "src/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace twiddc {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) { body_.push_back(std::move(cells)); }

void TextTable::rule() { body_.emplace_back(); }

std::string TextTable::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string TextTable::num_unit(double value, const std::string& unit, int digits) {
  return num(value, digits) + " " + unit;
}

std::string TextTable::pct(double value, int digits) {
  return num(value, digits) + " %";
}

std::string TextTable::str() const {
  // Column widths across header + body.
  std::vector<std::size_t> width;
  auto absorb = [&width](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  absorb(header_);
  for (const auto& r : body_) absorb(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << (i == 0 ? "| " : " | ") << cell
          << std::string(width[i] - cell.size(), ' ');
    }
    out << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t i = 0; i < width.size(); ++i)
      out << (i == 0 ? "|-" : "-|-") << std::string(width[i], '-');
    out << "-|\n";
  };

  if (!header_.empty()) {
    emit(header_);
    emit_rule();
  }
  for (const auto& r : body_) {
    if (r.empty())
      emit_rule();
    else
      emit(r);
  }
  return out.str();
}

std::string ascii_bar(const std::string& label, double value, double max_value,
                      int width) {
  const double frac = max_value > 0.0 ? std::clamp(value / max_value, 0.0, 1.0) : 0.0;
  const int fill = static_cast<int>(frac * width + 0.5);
  std::ostringstream out;
  out << label << " |";
  for (int i = 0; i < width; ++i) out << (i < fill ? '#' : ' ');
  out << "| " << TextTable::num(value, 2);
  return out.str();
}

}  // namespace twiddc
