// twiddc -- plain-text table rendering.
//
// Every bench binary reproduces one of the paper's tables/figures; TextTable
// renders the "paper value | reproduced value" rows with aligned columns so
// the console output can be diffed against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace twiddc {

/// A simple aligned text table.  Columns are sized to the widest cell; the
/// first row added with `header()` is separated from the body by a rule.
class TextTable {
 public:
  /// Sets the header row.  May be called once, before any body rows.
  void header(std::vector<std::string> cells);

  /// Appends a body row.  Rows may have differing cell counts; missing cells
  /// render empty.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal rule between body rows.
  void rule();

  /// Renders the table.  Every line is terminated with '\n'.
  [[nodiscard]] std::string str() const;

  /// Number of body rows added so far.
  [[nodiscard]] std::size_t rows() const { return body_.size(); }

  /// Formats a double with `digits` decimals (locale-independent).
  static std::string num(double value, int digits = 2);

  /// Formats "value unit", e.g. num_unit(38.7, "mW").
  static std::string num_unit(double value, const std::string& unit, int digits = 1);

  /// Formats a percentage, e.g. pct(6.25) -> "6.25 %".
  static std::string pct(double value, int digits = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> body_;  // empty vector encodes a rule
};

/// Renders a horizontal ASCII bar chart line: `label |#####   | value`.
/// Used by the figure benches to sketch spectra and schedules.
std::string ascii_bar(const std::string& label, double value, double max_value,
                      int width = 50);

}  // namespace twiddc
