#include "src/common/task_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "src/common/topology.hpp"
#include "src/common/trace.hpp"

namespace twiddc::common {
namespace {

constexpr trace::Category kTraceCat = trace::Category::kSched;

// Worker identity for submit_local()/yield()/current_worker_index().  Keyed
// by scheduler pointer so nested schedulers (a ChannelBank running inside a
// StreamEngine worker task) resolve to their own queues.
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local int tls_worker = -1;

}  // namespace

// ------------------------------------------------------------------ Deque

TaskScheduler::Deque::~Deque() {
  // Single-threaded by now (workers joined): drain unrun nodes, then free
  // every array generation.
  while (TaskNode* n = pop_bottom()) delete n;
  for (Array* a : retired_) delete a;
  delete array_.load(std::memory_order_relaxed);
}

void TaskScheduler::Deque::push_bottom(TaskNode* n) {
  const std::size_t b = bottom_.load(std::memory_order_relaxed);
  const std::size_t t = top_.load(std::memory_order_acquire);
  Array* a = array_.load(std::memory_order_relaxed);
  if (b - t >= a->capacity) a = grow(a, b, t);
  a->put(b, n, std::memory_order_release);
  // seq_cst publish so a thief's (top, bottom) reads and a parking worker's
  // maybe_nonempty() probe order against the sleeping-flag handshake.
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

TaskScheduler::TaskNode* TaskScheduler::Deque::pop_bottom() {
  const std::size_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Array* a = array_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);  // claim before reading top
  std::size_t t = top_.load(std::memory_order_seq_cst);
  if (static_cast<std::ptrdiff_t>(t - b) > 0) {
    bottom_.store(b + 1, std::memory_order_relaxed);  // empty: undo
    return nullptr;
  }
  TaskNode* n = a->get(b, std::memory_order_relaxed);
  if (t == b) {
    // Last element: race the thieves for it.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      n = nullptr;  // a thief won
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return n;
}

TaskScheduler::TaskNode* TaskScheduler::Deque::steal_top() {
  std::size_t t = top_.load(std::memory_order_seq_cst);
  const std::size_t b = bottom_.load(std::memory_order_seq_cst);
  if (static_cast<std::ptrdiff_t>(b - t) <= 0) return nullptr;
  Array* a = array_.load(std::memory_order_acquire);
  TaskNode* n = a->get(t, std::memory_order_acquire);
  // top_ only ever grows, so success means we own cell t exclusively.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return nullptr;  // lost to the owner or another thief; caller retries
  return n;
}

TaskScheduler::Deque::Array* TaskScheduler::Deque::grow(Array* old,
                                                        std::size_t bottom,
                                                        std::size_t top) {
  Array* bigger = new Array(old->capacity * 2);
  for (std::size_t i = top; i != bottom; ++i)
    bigger->put(i, old->get(i, std::memory_order_relaxed),
                std::memory_order_relaxed);
  retired_.push_back(old);  // thieves may still hold it; freed in the dtor
  array_.store(bigger, std::memory_order_release);
  return bigger;
}

// -------------------------------------------------------------- lifecycle

TaskScheduler::TaskScheduler(Options opts) {
  const int initial_raw = opts.initial > 0 ? opts.initial : default_worker_count();
  min_workers_ = std::max(1, opts.min_workers);
  int max_w = opts.max_workers > 0 ? opts.max_workers
                                   : std::max(initial_raw, min_workers_);
  max_w = std::max(max_w, min_workers_);
  const int initial = std::clamp(initial_raw, min_workers_, max_w);
  pin_to_nodes_ = opts.pin_to_nodes;
  preferred_node_ = opts.preferred_node;
  active_.store(initial, std::memory_order_relaxed);

  // Node assignments are fixed before any thread (or snapshot reader)
  // exists, so Worker::node stays a plain int.
  const topology::Topology& topo = topology::probe();
  const bool preferred_ok =
      preferred_node_ >= 0 &&
      static_cast<std::size_t>(preferred_node_) < topo.node_count();
  workers_.reserve(static_cast<std::size_t>(max_w));
  for (int w = 0; w < max_w; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = w;
    worker->node = preferred_ok ? preferred_node_ : topology::worker_node(w, topo);
    workers_.push_back(std::move(worker));
  }
  for (int w = 0; w < max_w; ++w)
    workers_[static_cast<std::size_t>(w)]->thread =
        std::thread([this, w] { worker_loop(w); });
}

TaskScheduler::TaskScheduler(int threads)
    : TaskScheduler(Options{/*initial=*/std::max(1, threads),
                            /*min_workers=*/std::max(1, threads),
                            /*max_workers=*/std::max(1, threads),
                            /*pin_to_nodes=*/false,
                            /*preferred_node=*/-1}) {}

int TaskScheduler::resize(int n) {
  std::lock_guard<std::mutex> lock(resize_mu_);
  const int max_w = static_cast<int>(workers_.size());
  n = std::clamp(n, min_workers_, max_w);
  const int old = active_.load(std::memory_order_seq_cst);
  if (n == old) return n;
  active_.store(n, std::memory_order_seq_cst);
  resizes_.fetch_add(1, std::memory_order_relaxed);
  if (trace::enabled(kTraceCat)) {
    static const std::uint16_t kName = trace::intern("resize");
    trace::emit(kTraceCat, kName, trace::Phase::kInstant,
                static_cast<std::uint64_t>(old), static_cast<std::uint64_t>(n));
  }
  // Wake every worker whose activation flipped: grown workers leave the
  // deactivated park and start stealing; shrunk workers leave the normal
  // park (or notice at their next loop top) and forward their queues.
  for (int w = std::min(old, n); w < std::max(old, n); ++w)
    wake_worker(*workers_[static_cast<std::size_t>(w)]);
  note_activity();
  return n;
}

std::vector<TaskScheduler::WorkerSnapshot> TaskScheduler::worker_snapshot()
    const {
  std::vector<WorkerSnapshot> out;
  const int active = active_.load(std::memory_order_acquire);
  out.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    WorkerSnapshot s;
    s.queue_depth =
        w.deque.size_approx() + w.inbox_size.load(std::memory_order_relaxed);
    s.active = static_cast<int>(i) < active;
    s.sleeping = w.sleeping.load(std::memory_order_relaxed);
    s.node = w.node;
    out.push_back(s);
  }
  return out;
}

void TaskScheduler::shutdown() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& w : workers_) wake_worker(*w);
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

TaskScheduler::~TaskScheduler() {
  shutdown();
  // Unrun inbox tasks are destroyed here; deques self-drain in ~Deque.
  // Held under the inbox mutex to narrow (not eliminate -- see the class
  // contract) the window against an external submit racing destruction.
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->inbox_mu);
    for (TaskNode* n : w->inbox) delete n;
    w->inbox.clear();
  }
}

// ------------------------------------------------------------- submission

void TaskScheduler::submit_to(int w, Task t) {
  if (stop_.load(std::memory_order_acquire)) return;  // shutting down: drop
  // Route over the ACTIVE prefix: deactivated workers take no new work.  A
  // racing shrink can still land a task on a freshly deactivated worker;
  // the wake below makes it forward the straggler and re-park.
  const auto active = static_cast<std::size_t>(
      std::max(1, active_.load(std::memory_order_seq_cst)));
  auto& target = *workers_[static_cast<std::size_t>(w) % active];
  auto* node = new TaskNode{std::move(t)};
  {
    std::lock_guard<std::mutex> lock(target.inbox_mu);
    target.inbox.push_back(node);
    target.inbox_size.store(target.inbox.size(), std::memory_order_seq_cst);
  }
  wake_worker(target);  // targeted: nobody else is disturbed...
  // ...unless the target is stuck inside a task, in which case the new
  // inbox entry is stealable and a parked sibling may as well come get it.
  if (target.running.load(std::memory_order_seq_cst)) maybe_wake_sleeper();
  note_activity();
}

void TaskScheduler::submit(Task t) {
  submit_to(static_cast<int>(round_robin_.fetch_add(
                1, std::memory_order_relaxed)),
            std::move(t));
}

void TaskScheduler::submit_local(Task t) {
  if (stop_.load(std::memory_order_acquire)) return;  // shutting down: drop
  const int w = current_worker_index();
  if (w < 0) {
    submit(std::move(t));
    return;
  }
  workers_[static_cast<std::size_t>(w)]->deque.push_bottom(
      new TaskNode{std::move(t)});
  maybe_wake_sleeper();
  note_activity();
}

void TaskScheduler::yield(Task t) {
  const int w = current_worker_index();
  if (w < 0) {
    submit(std::move(t));
    return;
  }
  submit_to(w, std::move(t));
}

int TaskScheduler::current_worker_index() const {
  return tls_scheduler == this ? tls_worker : -1;
}

// --------------------------------------------------------------- workers

void TaskScheduler::run_node(TaskNode* n) {
  executed_.fetch_add(1, std::memory_order_relaxed);
  // Tasks own their error handling (Group::fail, Session::record_failure);
  // an escape here would otherwise take the whole process down via the
  // noexcept thread trampoline.
  try {
    n->fn();
  } catch (...) {
  }
  delete n;
  // After, not during: a completion this task performed is now visible, so
  // a parked external waiter re-checks done() (and the deques) right away.
  note_activity();
}

std::size_t TaskScheduler::drain_inbox(Worker& me) {
  std::vector<TaskNode*> batch;
  {
    std::lock_guard<std::mutex> lock(me.inbox_mu);
    batch.swap(me.inbox);
    me.inbox_size.store(0, std::memory_order_seq_cst);
  }
  // Reversed, so the owner's LIFO bottom pops execute the batch in
  // submission order -- the batch-cyclic fairness guarantee.
  for (auto it = batch.rbegin(); it != batch.rend(); ++it)
    me.deque.push_bottom(*it);
  if (batch.size() > 1) maybe_wake_sleeper();  // surplus is stealable
  if (!batch.empty()) note_activity();
  return batch.size();
}

TaskScheduler::TaskNode* TaskScheduler::try_steal(int self) {
  const std::size_t n = workers_.size();
  // Rotate the first victim so concurrent thieves spread out.
  const std::size_t start =
      self >= 0 ? static_cast<std::size_t>(self) + 1
                : round_robin_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (static_cast<int>(v) == self) continue;
    if (TaskNode* node = workers_[v]->deque.steal_top()) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      if (trace::enabled(kTraceCat)) {
        // arg0 = victim, arg1 = thief + 1 (0 = external fork-join waiter).
        static const std::uint16_t kName = trace::intern("steal");
        trace::emit(kTraceCat, kName, trace::Phase::kInstant, v,
                    static_cast<std::uint64_t>(self + 1));
      }
      return node;
    }
  }
  // Deques are dry everywhere.  (Deactivated victims are swept too: their
  // owner may not have forwarded a straggler yet.)
  // A BUSY victim's inbox is work too: a worker drains its own inbox only
  // when its deque runs dry, so without this sweep a batch queued behind a
  // grinding worker (e.g. a second tile chain behind a long one) would be
  // pinned there while everyone else idles -- the static-shard pathology
  // this scheduler exists to kill.  Gated on the victim being inside a
  // task: an idle victim was already woken by its submitter and will drain
  // the inbox itself momentarily (and the gate keeps targeted submission
  // to a quiet worker deterministic).  FIFO take, so stealing never
  // reorders a victim's round.  WORKER thieves only: an external waiter
  // pulling from an inbox would run yielded actors out of their
  // batch-cyclic round and break the fairness guarantee -- and the
  // fork-join pattern it serves publishes all its work before wait(), so
  // those chains reach the deque (where it may steal) in one drain.
  if (self < 0) {
    steal_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (static_cast<int>(v) == self) continue;
    Worker& victim = *workers_[v];
    if (!victim.running.load(std::memory_order_seq_cst)) continue;
    if (victim.inbox_size.load(std::memory_order_seq_cst) == 0) continue;
    std::lock_guard<std::mutex> lock(victim.inbox_mu);
    if (victim.inbox.empty()) continue;
    TaskNode* node = victim.inbox.front();
    victim.inbox.erase(victim.inbox.begin());
    victim.inbox_size.store(victim.inbox.size(), std::memory_order_seq_cst);
    stolen_.fetch_add(1, std::memory_order_relaxed);
    if (trace::enabled(kTraceCat)) {
      static const std::uint16_t kName = trace::intern("steal_inbox");
      trace::emit(kTraceCat, kName, trace::Phase::kInstant, v,
                  static_cast<std::uint64_t>(self + 1));
    }
    return node;
  }
  steal_failures_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void TaskScheduler::wake_worker(Worker& w) {
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  if (trace::enabled(kTraceCat)) {
    static const std::uint16_t kName = trace::intern("wakeup");
    trace::emit(kTraceCat, kName, trace::Phase::kInstant,
                static_cast<std::uint64_t>(w.index), 0);
  }
  w.wake.fetch_add(1, std::memory_order_seq_cst);
  w.wake.notify_all();
}

void TaskScheduler::maybe_wake_sleeper() {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  // Only the active prefix sets `sleeping` (the deactivated park does not),
  // but bound the sweep anyway: waking a deactivated worker for stealable
  // work is a futile futex round-trip.
  const auto active = static_cast<std::size_t>(
      std::max(1, active_.load(std::memory_order_seq_cst)));
  const std::size_t n = std::min(active, workers_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (workers_[i]->sleeping.load(std::memory_order_seq_cst)) {
      wake_worker(*workers_[i]);
      return;
    }
  }
}

void TaskScheduler::forward_queues(Worker& me) {
  // Deque first (owner pops are safe against concurrent thieves), then the
  // inbox batch.  pop_bottom is LIFO, so reverse before appending to keep
  // each queue's order; the combined vector then re-submits round-robin
  // over the active prefix.
  std::vector<TaskNode*> moved;
  while (TaskNode* n = me.deque.pop_bottom()) moved.push_back(n);
  std::reverse(moved.begin(), moved.end());
  {
    std::lock_guard<std::mutex> lock(me.inbox_mu);
    moved.insert(moved.end(), me.inbox.begin(), me.inbox.end());
    me.inbox.clear();
    me.inbox_size.store(0, std::memory_order_seq_cst);
  }
  for (TaskNode* n : moved) {
    const auto active = static_cast<std::size_t>(
        std::max(1, active_.load(std::memory_order_seq_cst)));
    Worker& target =
        *workers_[round_robin_.fetch_add(1, std::memory_order_relaxed) %
                  active];
    {
      std::lock_guard<std::mutex> lock(target.inbox_mu);
      target.inbox.push_back(n);
      target.inbox_size.store(target.inbox.size(), std::memory_order_seq_cst);
    }
    wake_worker(target);
  }
  if (!moved.empty()) {
    if (trace::enabled(kTraceCat)) {
      static const std::uint16_t kName = trace::intern("forward_queues");
      trace::emit(kTraceCat, kName, trace::Phase::kInstant,
                  static_cast<std::uint64_t>(me.index), moved.size());
    }
    maybe_wake_sleeper();
    note_activity();
  }
}

void TaskScheduler::note_activity() {
  // Publish/park handshake mirrors the worker Dekker: the waiter registers
  // in ext_waiters_ (seq_cst) before its steal sweep, so a producer either
  // sees the registration here and bumps, or its work is visible to that
  // sweep.  No registered waiter, no futex syscall.
  if (ext_waiters_.load(std::memory_order_seq_cst) == 0) return;
  activity_.fetch_add(1, std::memory_order_seq_cst);
  activity_.notify_all();
}

bool TaskScheduler::any_work_visible(const Worker& me) const {
  if (me.inbox_size.load(std::memory_order_seq_cst) != 0) return true;
  for (const auto& w : workers_)
    if (w->deque.maybe_nonempty() ||
        w->inbox_size.load(std::memory_order_seq_cst) != 0)
      return true;
  return false;
}

void TaskScheduler::worker_loop(int w) {
  tls_scheduler = this;
  tls_worker = w;
  trace::set_thread_name("worker" + std::to_string(w));
  Worker& me = *workers_[static_cast<std::size_t>(w)];
  if (pin_to_nodes_)
    topology::pin_thread_to_node(me.node, topology::probe());
  const auto run = [this, &me](TaskNode* n) {
    // The running window is what lets thieves take this worker's queued
    // inbox while it is stuck inside a long task.
    me.running.store(true, std::memory_order_seq_cst);
    run_node(n);
    me.running.store(false, std::memory_order_seq_cst);
  };
  for (;;) {
    // Deactivated (shrunk below this index): release queued work to the
    // active prefix and park on the private eventcount.  The token/recheck
    // order mirrors the normal park: a straggler submit_to (racing shrink)
    // publishes its inbox entry before bumping wake, so either the recheck
    // sees it or the wait returns immediately.  stop_ falls through to the
    // normal loop so the shutdown drain semantics are unchanged.
    while (w >= active_.load(std::memory_order_seq_cst) &&
           !stop_.load(std::memory_order_acquire)) {
      const std::uint32_t token = me.wake.load(std::memory_order_acquire);
      forward_queues(me);
      if (w < active_.load(std::memory_order_seq_cst) ||
          stop_.load(std::memory_order_acquire))
        break;
      if (me.inbox_size.load(std::memory_order_seq_cst) != 0 ||
          me.deque.maybe_nonempty())
        continue;
      me.wake.wait(token, std::memory_order_acquire);
    }
    if (TaskNode* n = me.deque.pop_bottom()) {
      run(n);
      continue;
    }
    if (drain_inbox(me) > 0) continue;
    if (TaskNode* n = try_steal(w)) {
      run(n);
      continue;
    }
    // Park on the private eventcount.  Token first, then the sleeping flag,
    // then one full recheck: a producer either sees sleeping == true (and
    // bumps our wake) or its push is visible to the recheck -- both sides
    // use seq_cst, so the Dekker handshake cannot lose the task.
    const std::uint32_t token = me.wake.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    me.sleeping.store(true, std::memory_order_seq_cst);
    if (!any_work_visible(me) && !stop_.load(std::memory_order_acquire))
      me.wake.wait(token, std::memory_order_acquire);
    me.sleeping.store(false, std::memory_order_seq_cst);
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

// ------------------------------------------------------------- fork-join

void TaskScheduler::wait(const Group& group) {
  ext_waiters_.fetch_add(1, std::memory_order_seq_cst);
  while (!group.done()) {
    const std::uint32_t token = activity_.load(std::memory_order_seq_cst);
    if (TaskNode* n = try_steal(-1)) {
      run_node(n);
      continue;
    }
    if (group.done()) break;
    // Parked on the scheduler-wide activity eventcount, not the group:
    // freshly stealable deque work (a chain link, a drained batch) must
    // wake this thread too, or the fork-join caller contributes nothing
    // until a whole chain completes.  Any publish or task retirement
    // between the token read and here bumps it, so the wait returns
    // immediately rather than sleeping through the transition.
    activity_.wait(token, std::memory_order_seq_cst);
  }
  ext_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

}  // namespace twiddc::common
