// twiddc::common -- work-stealing task scheduler.
//
// Replaces the broadcast WorkerPool (one published job, one global epoch,
// notify_all on every block) that PR 4 extracted from core::ChannelBank.
// The broadcast design made every wakeup global and every scheduling pass
// O(sessions): fine at bench scale, measurable beyond.  This scheduler is
// the conservative-asynchronous decomposition instead: per-element work
// items with local handshakes, no global barrier.
//
//   * one run queue per worker: a Chase-Lev-style deque (owner pushes and
//     pops at the bottom, any thread steals at the top with a CAS) fed by a
//     small mutexed inbox for cross-thread submission;
//   * targeted wakeups: one eventcount per worker; submit_to(w, task) bumps
//     only worker w -- nobody else leaves their futex;
//   * work stealing: a worker that runs dry sweeps the other deques top-
//     first, so skewed task sets (one heavy channel, one hot session)
//     rebalance instead of stalling a static shard;
//   * batch-cyclic fairness: a worker drains its inbox only when its deque
//     is empty, so every task submitted in batch k runs before anything a
//     batch-k task re-submitted via yield() -- N actors on one worker each
//     make bounded progress per cycle.
//
// Two clients, two idioms:
//   core::ChannelBank   fork-join: submit one chained tile task per channel
//                       with a Group, then wait(group) -- the caller steals
//                       and executes alongside the workers;
//   stream::StreamEngine actors: each session is scheduled as a task on its
//                       home worker; a stolen task migrates the session.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace twiddc::common {

class TaskScheduler {
 public:
  using Task = std::function<void()>;

  /// Elastic sizing.  The scheduler allocates (and spawns threads for)
  /// max_workers slots up front; resize() flips how many are ACTIVE between
  /// min_workers and max_workers at runtime.  A deactivated worker releases
  /// its queues -- every queued node is forwarded to an active worker's
  /// inbox -- and parks until reactivated, so shrink never strands work and
  /// never blocks on a long-running task.  Parked threads cost one futex
  /// wait each; the Chase-Lev arrays they retire stay owned by their deque
  /// (the same retire path growth uses), so no reclamation race exists.
  struct Options {
    int initial = 0;      ///< starting active count (0 = default_worker_count)
    int min_workers = 1;  ///< resize() floor (clamped >= 1)
    int max_workers = 0;  ///< slot count (0 = max(initial, min_workers))
    /// Pin each worker thread to its round-robin NUMA node
    /// (topology::worker_node).  A no-op on single-node machines; workers
    /// record their node id for stats either way.
    bool pin_to_nodes = false;
    /// Pin every worker to THIS node (kernel list index) instead of
    /// round-robin -- the sharded-engine case where a whole scheduler
    /// belongs to one node.  -1 = round-robin across nodes.
    int preferred_node = -1;
  };

  /// Counters for tests and stats_json (monotonic since construction).
  struct Stats {
    std::uint64_t executed = 0;  ///< tasks run to completion
    std::uint64_t stolen = 0;    ///< tasks taken from another queue's top
    std::uint64_t wakeups = 0;   ///< targeted eventcount bumps issued
    std::uint64_t steal_failures = 0;  ///< full steal sweeps that found nothing
    std::uint64_t resizes = 0;   ///< resize() calls that changed the count
  };

  /// Per-worker observability snapshot (approximate while work is in
  /// flight): the queue depths the elastic policy feeds on, plus placement.
  struct WorkerSnapshot {
    std::size_t queue_depth = 0;  ///< deque + inbox entries
    bool active = false;
    bool sleeping = false;
    int node = 0;  ///< NUMA node this worker is assigned (and maybe pinned) to
  };

  /// Fork-join completion tracker.  expect() the task count, have each task
  /// call complete() (or fail() with its exception) exactly once, then
  /// wait() on the owning scheduler.  The first recorded exception is
  /// rethrown by rethrow_if_error().
  ///
  /// A Group is a copyable HANDLE over shared state: tasks must capture
  /// their Group BY VALUE, so the state outlives a waiter that saw done()
  /// and unwound while the final completer is still inside complete() --
  /// the value capture, not the caller's handle, keeps it alive.
  class Group {
   public:
    Group() : state_(std::make_shared<State>()) {}

    void expect(std::size_t n) const {
      state_->pending.fetch_add(n, std::memory_order_seq_cst);
    }
    void complete() const {
      // seq_cst so a wait()er whose park/recheck handshake runs on the
      // scheduler's seq_cst activity counter cannot miss the final
      // decrement.  Completions are assumed to happen inside this
      // scheduler's tasks (every internal client does); a completion from
      // a foreign thread must be followed by a submit, or wait() may not
      // notice it until other activity occurs.
      state_->pending.fetch_sub(1, std::memory_order_seq_cst);
    }
    void fail(std::exception_ptr e) const {
      {
        std::lock_guard<std::mutex> lock(state_->err_mu);
        if (!state_->error) state_->error = std::move(e);
      }
      complete();
    }
    [[nodiscard]] bool done() const {
      return state_->pending.load(std::memory_order_acquire) == 0;
    }
    void rethrow_if_error() const {
      std::lock_guard<std::mutex> lock(state_->err_mu);
      if (state_->error) {
        std::exception_ptr e = std::move(state_->error);
        state_->error = nullptr;
        std::rethrow_exception(e);
      }
    }

   private:
    friend class TaskScheduler;
    struct State {
      std::atomic<std::size_t> pending{0};
      std::mutex err_mu;
      std::exception_ptr error;  // guarded by err_mu
    };
    std::shared_ptr<State> state_;
  };

  /// Spawns max_workers persistent worker threads, `initial` of them active.
  explicit TaskScheduler(Options opts);
  /// Fixed-size compatibility ctor: `threads` workers (clamped to >= 1),
  /// min == max, so resize() is a no-op.  What ChannelBank wants.
  explicit TaskScheduler(int threads);
  /// Joins the workers.  Shutdown is a drain, not a drop: each worker
  /// finishes the tasks already visible in its queues before exiting (it
  /// checks the stop flag only when it runs dry), but submissions that
  /// arrive after shutdown began are dropped -- so a self-resubmitting
  /// task terminates, and anything it re-queued late is destroyed unrun.
  /// Clients that need a completion guarantee must wait() on a Group
  /// first; clients whose tasks must not do real work during teardown
  /// must gate them on their own stop flag (StreamEngine does).
  ///
  /// As with any C++ object, EXTERNAL threads must not race submit_to()
  /// against destruction itself -- the in-flight-submission "drop"
  /// guarantee covers worker-originated submissions (chains, yields),
  /// which the destructor's join inherently serializes with.
  ~TaskScheduler();

  /// Stops the workers and joins them (the first half of destruction;
  /// idempotent).  Lets an owner read final stats() -- which include the
  /// shutdown drain -- before destroying the object.
  void shutdown();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Currently ACTIVE worker count (the submit_to routing modulus).
  [[nodiscard]] int workers() const {
    return active_.load(std::memory_order_acquire);
  }
  /// Total worker slots (threads spawned); the resize() ceiling.
  [[nodiscard]] int max_workers() const {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] int min_workers() const { return min_workers_; }

  /// Sets the active worker count, clamped to [min_workers, max_workers].
  /// Returns the effective count.  Thread-safe; serialized against other
  /// resize() calls.  Shrunk workers forward their queued work to the
  /// remaining active workers and park; grown workers resume stealing
  /// immediately.  Tasks already RUNNING on a shrunk worker finish there.
  int resize(int n);

  /// Approximate per-worker queue depths and placement for all slots
  /// (index order).  Lock-free reads; depths race benignly with execution.
  [[nodiscard]] std::vector<WorkerSnapshot> worker_snapshot() const;

  /// Queues `t` on worker `w` (inbox, FIFO against other submissions) and
  /// wakes only that worker.  Any thread.  After the scheduler started
  /// shutting down the task is dropped.
  void submit_to(int w, Task t);

  /// submit_to with a rotating target -- distributes unpinned work.
  void submit(Task t);

  /// Pushes `t` on the calling worker's own deque bottom: it runs next on
  /// this worker (LIFO, cache-hot) unless a thief takes it first.  The
  /// continuation idiom for chained tasks.  Falls back to submit() when the
  /// caller is not one of this scheduler's workers.
  void submit_local(Task t);

  /// Re-queues `t` behind every task currently runnable on this worker (own
  /// inbox): the yield idiom for cooperative actors that exhausted their
  /// fairness quantum.  Falls back to submit() off-worker.
  void yield(Task t);

  /// Index of the calling thread within THIS scheduler, or -1.
  [[nodiscard]] int current_worker_index() const;

  /// Blocks until group.done(), stealing and executing queued tasks from
  /// the workers' deques while it waits (the fork-join caller works too).
  /// Does not rethrow -- call group.rethrow_if_error() after.
  void wait(const Group& group);

  [[nodiscard]] Stats stats() const {
    Stats s;
    s.executed = executed_.load(std::memory_order_relaxed);
    s.stolen = stolen_.load(std::memory_order_relaxed);
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    s.steal_failures = steal_failures_.load(std::memory_order_relaxed);
    s.resizes = resizes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct TaskNode {
    Task fn;
  };

  /// Chase-Lev-style deque over atomic TaskNode* cells.  The owner pushes
  /// and pops at the bottom without locks; any thread steals the top with a
  /// CAS.  top_ is monotonic, so the CAS has no ABA.  Growth reallocates
  /// the cell array and retires (not frees) the old one: a thief may still
  /// be reading a stale array, whose cells in [top, bottom) are identical
  /// by construction.  Retired arrays are freed with the deque.
  ///
  /// Memory ordering follows Le/Pop/Cohen/Nardelli ("Correct and Efficient
  /// Work-Stealing for Weak Memory Models") with the standalone fences
  /// replaced by seq_cst operations on bottom_/top_ -- stronger than
  /// required, but TSan models atomics (not fences), and the queues sit
  /// nowhere near the sample hot path.
  class Deque {
   public:
    Deque() : array_(new Array(64)) {}
    ~Deque();

    Deque(const Deque&) = delete;
    Deque& operator=(const Deque&) = delete;

    void push_bottom(TaskNode* n);    // owner only
    TaskNode* pop_bottom();           // owner only
    TaskNode* steal_top();            // any thread
    [[nodiscard]] bool maybe_nonempty() const {
      const std::size_t b = bottom_.load(std::memory_order_acquire);
      const std::size_t t = top_.load(std::memory_order_acquire);
      return static_cast<std::ptrdiff_t>(b - t) > 0;
    }
    /// Racy-but-bounded entry count (stats / elastic policy input).
    [[nodiscard]] std::size_t size_approx() const {
      const std::size_t b = bottom_.load(std::memory_order_acquire);
      const std::size_t t = top_.load(std::memory_order_acquire);
      const auto d = static_cast<std::ptrdiff_t>(b - t);
      return d > 0 ? static_cast<std::size_t>(d) : 0;
    }

   private:
    struct Array {
      explicit Array(std::size_t cap)
          : capacity(cap), mask(cap - 1), cells(cap) {}
      const std::size_t capacity;  // power of two
      const std::size_t mask;
      std::vector<std::atomic<TaskNode*>> cells;
      [[nodiscard]] TaskNode* get(std::size_t i, std::memory_order o) const {
        return cells[i & mask].load(o);
      }
      void put(std::size_t i, TaskNode* n, std::memory_order o) {
        cells[i & mask].store(n, o);
      }
    };

    Array* grow(Array* old, std::size_t bottom, std::size_t top);

    alignas(64) std::atomic<std::size_t> top_{0};
    alignas(64) std::atomic<std::size_t> bottom_{0};
    std::atomic<Array*> array_;
    std::vector<Array*> retired_;  // owner-only; freed in the destructor
  };

  struct Worker {
    Deque deque;
    std::mutex inbox_mu;
    std::vector<TaskNode*> inbox;          // guarded by inbox_mu
    std::atomic<std::size_t> inbox_size{0};  // cheap empty probe
    alignas(64) std::atomic<std::uint32_t> wake{0};  // per-worker eventcount
    std::atomic<bool> sleeping{false};
    std::atomic<bool> running{false};  ///< inside a task (inbox-steal gate)
    int index = 0;  ///< slot index (set before the thread spawns; immutable)
    int node = 0;  ///< NUMA node (set before the thread spawns; immutable)
    std::thread thread;
  };

  void worker_loop(int w);
  void run_node(TaskNode* n);
  /// Wakes parked external wait()ers (if any): called whenever stealable
  /// work is published and after every task retires -- a group completion
  /// happens inside its task, so this doubles as the completion signal.
  void note_activity();
  /// Moves the whole inbox into the deque (reversed, so bottom pops come
  /// out FIFO).  Returns the number of tasks moved.
  std::size_t drain_inbox(Worker& me);
  /// One sweep over the other workers' deque tops.  `self` may be -1 (an
  /// external fork-join waiter).
  TaskNode* try_steal(int self);
  void wake_worker(Worker& w);
  /// If anyone is parked, wake one sleeper so freshly stealable deque work
  /// (a chain push, a drained batch) is not serialised on its owner.
  void maybe_wake_sleeper();
  [[nodiscard]] bool any_work_visible(const Worker& me) const;
  /// Deactivated worker's release step: moves every node queued on `me`
  /// (deque then inbox, order preserved per queue) to active workers'
  /// inboxes with wakes.  Called only by me's own thread.
  void forward_queues(Worker& me);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<int> active_{1};
  int min_workers_ = 1;
  bool pin_to_nodes_ = false;
  int preferred_node_ = -1;
  std::mutex resize_mu_;  ///< serializes resize(); never held by workers
  std::atomic<std::uint32_t> round_robin_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> sleepers_{0};
  /// Eventcount external fork-join waiters park on; bumped by
  /// note_activity() only while ext_waiters_ says someone is parked, so a
  /// waiter sleeping through freshly stealable deque work (which the
  /// per-worker wakeups cannot reach) is impossible.
  std::atomic<std::uint32_t> activity_{0};
  std::atomic<int> ext_waiters_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> steal_failures_{0};
  std::atomic<std::uint64_t> resizes_{0};
};

}  // namespace twiddc::common
