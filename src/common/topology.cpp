#include "src/common/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace twiddc::common {

int default_worker_count() {
  if (const char* env = std::getenv("TWIDDC_WORKERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace topology {
namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU numbers.  Malformed
/// pieces are skipped rather than failing the whole probe.
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !std::isdigit(static_cast<unsigned char>(text[i])))
      ++i;
    if (i >= text.size()) break;
    std::size_t end = i;
    const long lo = std::strtol(text.c_str() + i, nullptr, 10);
    while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end])))
      ++end;
    long hi = lo;
    if (end < text.size() && text[end] == '-') {
      const std::size_t rstart = end + 1;
      hi = std::strtol(text.c_str() + rstart, nullptr, 10);
      end = rstart;
      while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end])))
        ++end;
    }
    for (long c = lo; c <= hi && c >= 0; ++c) cpus.push_back(static_cast<int>(c));
    i = end;
  }
  return cpus;
}

std::vector<int> allowed_cpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c)
      if (CPU_ISSET(c, &mask)) cpus.push_back(c);
  }
#endif
  if (cpus.empty()) {
    const unsigned hw = std::thread::hardware_concurrency();
    for (int c = 0; c < static_cast<int>(hw > 0 ? hw : 1); ++c) cpus.push_back(c);
  }
  return cpus;
}

}  // namespace

Topology probe_uncached() {
  Topology topo;
  const std::vector<int> allowed = allowed_cpus();
#if defined(__linux__)
  // Nodes are probed in id order until the first missing index; sparse node
  // numbering (possible after node hot-remove) falls back below.
  for (int n = 0;; ++n) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(n) +
                    "/cpulist");
    if (!f.is_open()) break;
    std::string line;
    std::getline(f, line);
    Node node;
    node.id = n;
    for (const int c : parse_cpulist(line))
      if (std::binary_search(allowed.begin(), allowed.end(), c))
        node.cpus.push_back(c);
    // Memory-only nodes (no allowed CPUs) are not worker homes; skip them.
    if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
  }
#endif
  if (topo.nodes.empty()) {
    // Single-node fallback: everything the process may run on lives on one
    // logical node 0 -- the shape every placement decision degrades to.
    Node node;
    node.id = 0;
    node.cpus = allowed;
    topo.nodes.push_back(std::move(node));
  }
  return topo;
}

const Topology& probe() {
  static const Topology topo = probe_uncached();
  return topo;
}

int worker_node(int w, const Topology& topo) {
  const std::size_t n = topo.node_count();
  if (n <= 1 || w < 0) return 0;
  return static_cast<int>(static_cast<std::size_t>(w) % n);
}

bool pin_thread_to_node(int node, const Topology& topo) {
  if (node < 0 || static_cast<std::size_t>(node) >= topo.node_count()) return false;
  const std::vector<int>& cpus = topo.nodes[static_cast<std::size_t>(node)].cpus;
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (const int c : cpus)
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &mask);
  return sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
  return false;
#endif
}

bool bind_memory_to_node(void* ptr, std::size_t len, int node) {
#if defined(__linux__) && defined(SYS_mbind)
  if (ptr == nullptr || len == 0 || node < 0 || node >= 64) return false;
  const long page_l = sysconf(_SC_PAGESIZE);
  const std::size_t page = page_l > 0 ? static_cast<std::size_t>(page_l) : 4096;
  // Align inward: mbind wants page-aligned start, and binding a partial
  // first/last page would drag neighbouring allocations along.
  auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t start = (addr + page - 1) & ~(page - 1);
  const std::uintptr_t end = (addr + len) & ~(page - 1);
  if (end <= start) return false;
  // Local constants instead of <numaif.h> (libnuma-dev is not a dependency).
  constexpr int kMpolBind = 2;
  constexpr unsigned kMpolMfMove = 1u << 1;  // migrate touched pages too
  unsigned long nodemask = 1ul << node;
  const long rc = syscall(SYS_mbind, start, end - start, kMpolBind, &nodemask,
                          sizeof(nodemask) * 8 + 1, kMpolMfMove);
  return rc == 0;
#else
  (void)ptr;
  (void)len;
  (void)node;
  return false;
#endif
}

}  // namespace topology
}  // namespace twiddc::common
