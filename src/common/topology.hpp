// twiddc::common -- machine-topology probe for worker and memory placement.
//
// The scheduler and the stream engine want three answers from the machine:
// how many workers are worth running (default_worker_count), which NUMA
// node a given worker should live on (worker_node), and how to keep a
// worker's data on its node (pin_thread_to_node / bind_memory_to_node).
// Everything here degrades gracefully: on a single-node box -- or any
// platform where the sysfs probe or the placement syscalls are unavailable
// -- the probe reports one node holding every allowed CPU and the placement
// calls become cheap no-ops that return false.  No libnuma dependency: the
// node map comes from sysfs cpulists intersected with this process's
// affinity mask, and memory binding is a raw mbind(2) syscall gated on the
// kernel exposing it.
#pragma once

#include <cstddef>
#include <vector>

namespace twiddc::common {

/// Worker-count default shared by the scheduler, the engine and the
/// benches: the TWIDDC_WORKERS environment variable when set (clamped to
/// >= 1), otherwise std::thread::hardware_concurrency (>= 1).  Read per
/// call, so tests can flip the variable.
[[nodiscard]] int default_worker_count();

namespace topology {

struct Node {
  int id = 0;                ///< kernel node id (the sysfs nodeN index)
  std::vector<int> cpus;     ///< allowed CPUs on this node (affinity-masked)
};

struct Topology {
  /// Never empty: single-node fallback is one node 0 with every allowed
  /// CPU (or CPU 0 when even the affinity probe fails).
  std::vector<Node> nodes;
  [[nodiscard]] std::size_t node_count() const { return nodes.size(); }
  /// Total allowed CPUs across nodes (>= 1).
  [[nodiscard]] std::size_t cpu_count() const {
    std::size_t n = 0;
    for (const auto& node : nodes) n += node.cpus.size();
    return n == 0 ? 1 : n;
  }
};

/// The cached process-wide topology (probed once, immutable after).
[[nodiscard]] const Topology& probe();

/// A fresh probe (tests; callers that changed their affinity mask).
[[nodiscard]] Topology probe_uncached();

/// Node assignment for worker `w`: nodes are filled round-robin so any
/// contiguous block of workers spreads evenly.  Pure -- the scheduler's
/// pinning and the engine's memory placement call this with the same
/// arguments and agree.  Returns the node LIST INDEX (0..node_count-1),
/// which equals the kernel id on the common dense numbering.
[[nodiscard]] int worker_node(int w, const Topology& topo);

/// Pins the calling thread to the CPUs of `node` (list index into
/// topo.nodes).  Returns false -- leaving the affinity untouched -- when
/// the node is out of range, has no CPUs, or the platform call fails.
bool pin_thread_to_node(int node, const Topology& topo);

/// Asks the kernel to keep [ptr, ptr+len) on `node` (kernel node id):
/// MPOL_BIND via the raw mbind syscall, page-aligned inward.  Returns true
/// only when the syscall succeeded on a non-empty aligned range; single-
/// node boxes, non-Linux builds and EPERM all just return false.  Safe to
/// call on any heap buffer -- already-touched pages are migrated
/// (MPOL_MF_MOVE) on a best-effort basis.
bool bind_memory_to_node(void* ptr, std::size_t len, int node);

}  // namespace topology
}  // namespace twiddc::common
