#include "src/common/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/common/json.hpp"

namespace twiddc::trace {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One ring slot.  Fields are individual relaxed atomics rather than a
/// seqlock: the writer is always the owning thread, so the only race is
/// writer-vs-snapshot, and the snapshot discards any slot the head says
/// may have been rewritten during the read (see Ring::collect).  Relaxed
/// atomics make that benign race defined behaviour (and TSan-clean)
/// without fencing the hot path.
struct Slot {
  std::atomic<std::uint64_t> ts{0};
  std::atomic<std::uint64_t> arg0{0};
  std::atomic<std::uint64_t> arg1{0};
  std::atomic<std::uint32_t> meta{0};  // name << 16 | category << 8 | phase
};

std::uint32_t pack_meta(std::uint16_t name, Category c, Phase ph) {
  return (static_cast<std::uint32_t>(name) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(ph);
}

class Ring {
 public:
  Ring(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), mask_(capacity - 1), slots_(capacity) {}

  /// Owner thread only.
  void push(Category c, std::uint16_t name, Phase ph, std::uint64_t arg0,
            std::uint64_t arg1, std::uint64_t ts_ns) {
    const std::uint64_t idx = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[idx & mask_];
    s.ts.store(ts_ns, std::memory_order_relaxed);
    s.arg0.store(arg0, std::memory_order_relaxed);
    s.arg1.store(arg1, std::memory_order_relaxed);
    s.meta.store(pack_meta(name, c, ph), std::memory_order_relaxed);
    // Release-publish: a reader that acquires head >= idx+1 sees this
    // slot's fields.
    head_.store(idx + 1, std::memory_order_release);
  }

  /// Any thread.  Appends the ring's valid events to `out` and returns the
  /// number of events dropped (overwritten or unreadable) since the last
  /// reset().  Concurrent writers are fine: the head is re-read after the
  /// slot pass, and any slot the writer may have reached meanwhile is
  /// discarded rather than returned torn.
  std::uint64_t collect(std::vector<TraceEvent>& out) const {
    const std::uint64_t floor = discard_before_.load(std::memory_order_acquire);
    const std::uint64_t h1 = head_.load(std::memory_order_acquire);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t oldest = h1 > cap ? h1 - cap : 0;
    const std::uint64_t begin = std::max(floor, oldest);
    std::vector<TraceEvent> local;
    local.reserve(static_cast<std::size_t>(h1 - begin));
    for (std::uint64_t i = begin; i < h1; ++i) {
      const Slot& s = slots_[i & mask_];
      TraceEvent e;
      e.ts_ns = s.ts.load(std::memory_order_relaxed);
      e.arg0 = s.arg0.load(std::memory_order_relaxed);
      e.arg1 = s.arg1.load(std::memory_order_relaxed);
      const std::uint32_t meta = s.meta.load(std::memory_order_relaxed);
      e.name = static_cast<std::uint16_t>(meta >> 16);
      e.category = static_cast<Category>((meta >> 8) & 0xff);
      e.phase = static_cast<Phase>(meta & 0xff);
      e.tid = tid_;
      local.push_back(e);
    }
    // Anything the writer could have overwritten while we read (index <=
    // h2 - cap) is invalid; h2 - cap also covers the slot the writer may
    // be mid-store on right now (its head publication trails the stores).
    const std::uint64_t h2 = head_.load(std::memory_order_acquire);
    const std::uint64_t valid_from = h2 > cap ? h2 - cap : 0;
    std::uint64_t kept_from = begin;
    if (valid_from > begin) {
      const std::uint64_t skip = std::min(valid_from - begin, h1 - begin);
      local.erase(local.begin(),
                  local.begin() + static_cast<std::ptrdiff_t>(skip));
      kept_from = begin + skip;
    }
    out.insert(out.end(), local.begin(), local.end());
    return kept_from - floor;  // events since reset() that were lost
  }

  void discard_up_to_now() {
    discard_before_.store(head_.load(std::memory_order_acquire),
                          std::memory_order_release);
  }

  [[nodiscard]] std::uint32_t tid() const { return tid_; }

 private:
  const std::uint32_t tid_;
  const std::uint64_t mask_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> discard_before_{0};
};

/// Process-wide state.  Rings are shared_ptr so a snapshot taken after a
/// producer thread exits still reads its events.
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  std::vector<std::string> names;                      // id -> string
  std::unordered_map<std::string, std::uint16_t> ids;  // string -> id
  std::unordered_map<std::uint32_t, std::string> thread_names;
  std::uint32_t next_tid = 1;
  std::size_t ring_capacity = std::size_t{1} << 16;  // 64k events / thread
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

std::atomic<std::uint32_t> g_mask{0};

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

// A thread name set before the thread's ring exists (the common case:
// workers name themselves at spawn, tracing may be off) is stashed here
// and registered when the ring is created -- so naming a thread never
// allocates a ring.
thread_local std::string* tls_pending_name = nullptr;

Ring& ring_for_this_thread() {
  thread_local std::shared_ptr<Ring> tls_ring = [] {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto ring = std::make_shared<Ring>(reg.next_tid++, reg.ring_capacity);
    reg.rings.push_back(ring);
    if (tls_pending_name != nullptr) {
      reg.thread_names[ring->tid()] = *tls_pending_name;
      delete tls_pending_name;
      tls_pending_name = nullptr;
    }
    return ring;
  }();
  return *tls_ring;
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kSched: return "sched";
    case Category::kStream: return "stream";
    case Category::kCache: return "cache";
    case Category::kGroup: return "group";
  }
  return "?";
}

// Applies $TWIDDC_TRACE before main() so every twiddc binary honours it.
const bool g_env_applied = init_from_env();

}  // namespace

void set_enabled(std::uint32_t category_mask) {
  g_mask.store(category_mask & kAllCategories, std::memory_order_relaxed);
}

std::uint32_t enabled_mask() { return g_mask.load(std::memory_order_relaxed); }

bool enabled(Category c) {
  if (!(TWIDDC_TRACE_COMPILED_MASK & bit(c))) return false;
  return (g_mask.load(std::memory_order_relaxed) & bit(c)) != 0;
}

std::uint32_t parse_categories(const std::string& spec) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string tok = spec.substr(pos, comma - pos);
    // Trim ASCII whitespace.
    while (!tok.empty() && (tok.front() == ' ' || tok.front() == '\t'))
      tok.erase(tok.begin());
    while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t'))
      tok.pop_back();
    if (tok == "all" || tok == "1") mask |= kAllCategories;
    else if (tok == "sched") mask |= bit(Category::kSched);
    else if (tok == "stream") mask |= bit(Category::kStream);
    else if (tok == "cache") mask |= bit(Category::kCache);
    else if (tok == "group") mask |= bit(Category::kGroup);
    pos = comma + 1;
  }
  return mask;
}

bool init_from_env() {
  const char* env = std::getenv("TWIDDC_TRACE");
  if (env == nullptr || *env == '\0') return false;
  set_enabled(parse_categories(env));
  return true;
}

void set_ring_capacity(std::size_t events) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.ring_capacity = round_up_pow2(events);
}

void set_thread_name(const std::string& name) {
  if (enabled_mask() == 0) {
    // Tracing off: remember the name without paying for a ring.  If this
    // thread later emits (tracing enabled meanwhile), ring creation
    // registers it.
    delete tls_pending_name;
    tls_pending_name = new std::string(name);
    return;
  }
  const std::uint32_t tid = ring_for_this_thread().tid();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.thread_names[tid] = name;
}

std::uint16_t intern(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.ids.find(name);
  if (it != reg.ids.end()) return it->second;
  const auto id = static_cast<std::uint16_t>(reg.names.size());
  reg.names.push_back(name);
  reg.ids.emplace(name, id);
  return id;
}

void emit(Category c, std::uint16_t name, Phase phase, std::uint64_t arg0,
          std::uint64_t arg1) {
  ring_for_this_thread().push(c, name, phase, arg0, arg1, steady_now_ns());
}

std::uint64_t Span::now_ns() { return steady_now_ns(); }

void Span::finish() {
  if (start_ns_ == 0) return;
  const std::uint64_t dur = now_ns() - start_ns_;
  if (enabled(category_))
    ring_for_this_thread().push(category_, name_, Phase::kComplete, arg0_, dur,
                                start_ns_);
  start_ns_ = 0;
}

Snapshot snapshot() {
  Snapshot snap;
  Registry& reg = registry();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
    snap.names = reg.names;
    for (const auto& [tid, name] : reg.thread_names)
      snap.threads.emplace_back(tid, name);
  }
  for (const auto& ring : rings) snap.dropped += ring->collect(snap.events);
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  std::sort(snap.threads.begin(), snap.threads.end());
  return snap;
}

void reset() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  for (const auto& ring : rings) ring->discard_up_to_now();
}

std::string to_chrome_json(const Snapshot& snap) {
  // ts/dur are microseconds (double) relative to the first event, which
  // keeps the numbers readable and well inside double precision.
  const std::uint64_t t0 = snap.events.empty() ? 0 : snap.events.front().ts_ns;
  const auto us = [t0](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ns - t0) / 1000.0);
    return std::string(buf);
  };
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto append = [&](const JsonLine& line) {
    if (!first) out += ",\n";
    first = false;
    out += line.str();
  };
  for (const auto& [tid, name] : snap.threads) {
    JsonLine meta;
    meta.field("ph", "M").field("name", "thread_name").field("pid", std::size_t{1})
        .field("tid", static_cast<std::size_t>(tid));
    JsonLine args;
    args.field("name", name);
    meta.object("args", args);
    append(meta);
  }
  for (const auto& e : snap.events) {
    JsonLine line;
    const std::string name =
        e.name < snap.names.size() ? snap.names[e.name] : "?";
    switch (e.phase) {
      case Phase::kInstant: line.field("ph", "i").field("s", "t"); break;
      case Phase::kComplete: line.field("ph", "X"); break;
      case Phase::kCounter: line.field("ph", "C"); break;
    }
    line.field("name", name).field("cat", category_name(e.category))
        .raw_field("ts", us(e.ts_ns))
        .field("pid", std::size_t{1})
        .field("tid", static_cast<std::size_t>(e.tid));
    if (e.phase == Phase::kComplete) line.raw_field("dur", us(t0 + e.arg1));
    JsonLine args;
    if (e.phase == Phase::kCounter) {
      args.field("value", static_cast<std::size_t>(e.arg0));
    } else {
      args.field("arg0", static_cast<std::size_t>(e.arg0))
          .field("arg1", static_cast<std::size_t>(e.arg1));
    }
    line.object("args", args);
    append(line);
  }
  out += "],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": ";
  JsonLine other;
  other.field("dropped", static_cast<std::size_t>(snap.dropped))
      .field("tool", "twiddc");
  out += other.str();
  out += "}\n";
  return out;
}

std::string to_ndjson(const Snapshot& snap) {
  std::string out;
  for (const auto& e : snap.events) {
    JsonLine line;
    line.field("ts_ns", static_cast<std::size_t>(e.ts_ns))
        .field("cat", category_name(e.category))
        .field("name", e.name < snap.names.size() ? snap.names[e.name] : "?")
        .field("phase", e.phase == Phase::kInstant
                            ? "instant"
                            : e.phase == Phase::kComplete ? "complete"
                                                          : "counter")
        .field("tid", static_cast<std::size_t>(e.tid))
        .field("arg0", static_cast<std::size_t>(e.arg0))
        .field("arg1", static_cast<std::size_t>(e.arg1));
    out += line.str();
    out += "\n";
  }
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = to_chrome_json(snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

constexpr char kDumpMagic[8] = {'T', 'W', 'T', 'R', 'C', '1', '\n', '\0'};

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
}
bool get_u64(std::FILE* f, std::uint64_t& v) {
  unsigned char buf[8];
  if (std::fread(buf, 1, 8, f) != 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (i * 8);
  return true;
}
void put_str(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}
bool get_str(std::FILE* f, std::string& s) {
  std::uint64_t n = 0;
  if (!get_u64(f, n) || n > (std::uint64_t{1} << 20)) return false;
  s.resize(static_cast<std::size_t>(n));
  return n == 0 || std::fread(s.data(), 1, s.size(), f) == s.size();
}

}  // namespace

bool write_binary_dump(const std::string& path) {
  const Snapshot snap = snapshot();
  std::string out(kDumpMagic, sizeof kDumpMagic);
  put_u64(out, snap.dropped);
  put_u64(out, snap.names.size());
  for (const auto& n : snap.names) put_str(out, n);
  put_u64(out, snap.threads.size());
  for (const auto& [tid, name] : snap.threads) {
    put_u64(out, tid);
    put_str(out, name);
  }
  put_u64(out, snap.events.size());
  for (const auto& e : snap.events) {
    put_u64(out, e.ts_ns);
    put_u64(out, e.arg0);
    put_u64(out, e.arg1);
    put_u64(out, (static_cast<std::uint64_t>(e.tid) << 32) |
                     (static_cast<std::uint64_t>(e.name) << 16) |
                     (static_cast<std::uint64_t>(e.category) << 8) |
                     static_cast<std::uint64_t>(e.phase));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

bool read_binary_dump(const std::string& path, Snapshot& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = false;
  char magic[sizeof kDumpMagic];
  std::uint64_t n = 0;
  do {
    if (std::fread(magic, 1, sizeof magic, f) != sizeof magic) break;
    if (std::memcmp(magic, kDumpMagic, sizeof kDumpMagic) != 0) break;
    if (!get_u64(f, out.dropped)) break;
    if (!get_u64(f, n) || n > 65536) break;
    out.names.resize(static_cast<std::size_t>(n));
    bool bad = false;
    for (auto& s : out.names) bad = bad || !get_str(f, s);
    if (bad) break;
    if (!get_u64(f, n) || n > (std::uint64_t{1} << 20)) break;
    out.threads.resize(static_cast<std::size_t>(n));
    for (auto& [tid, name] : out.threads) {
      std::uint64_t t = 0;
      bad = bad || !get_u64(f, t) || !get_str(f, name);
      tid = static_cast<std::uint32_t>(t);
    }
    if (bad) break;
    if (!get_u64(f, n) || n > (std::uint64_t{1} << 32)) break;
    out.events.resize(static_cast<std::size_t>(n));
    for (auto& e : out.events) {
      std::uint64_t packed = 0;
      bad = bad || !get_u64(f, e.ts_ns) || !get_u64(f, e.arg0) ||
            !get_u64(f, e.arg1) || !get_u64(f, packed);
      e.tid = static_cast<std::uint32_t>(packed >> 32);
      e.name = static_cast<std::uint16_t>(packed >> 16);
      e.category = static_cast<Category>((packed >> 8) & 0xff);
      e.phase = static_cast<Phase>(packed & 0xff);
    }
    ok = !bad;
  } while (false);
  std::fclose(f);
  return ok;
}

}  // namespace twiddc::trace
