// twiddc::trace -- process-wide, lock-free structured tracing.
//
// Every thread that emits events owns a bounded ring of fixed-size POD
// slots; writers never take a lock and never block.  A site costs one
// relaxed atomic load when its category is disabled (the runtime kill
// switch), and compiles out entirely when masked by
// TWIDDC_TRACE_COMPILED_MASK.  When a ring wraps, the oldest events are
// overwritten and counted as drops -- tracing sheds history, never
// throughput.
//
// Readers (snapshot/export) merge all rings into one timeline sorted by
// monotonic timestamp.  Exporters produce Chrome trace format (load the
// file in chrome://tracing or https://ui.perfetto.dev) with instant,
// duration ("complete") and counter events, newline-delimited JSON, and a
// compact binary dump that tools/trace_dump converts offline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

// Compile-time category enable mask.  Bits correspond to trace::Category;
// a cleared bit removes the whole emit path at compile time (the CMake
// option TWIDDC_TRACE_COMPILED=OFF sets this to 0 for the overhead-gate
// comparison build).  Default: everything compiled in, runtime-gated.
#ifndef TWIDDC_TRACE_COMPILED_MASK
#define TWIDDC_TRACE_COMPILED_MASK 0xffffffffu
#endif

namespace twiddc::trace {

/// Event categories; one bit each in the enable masks.
enum class Category : std::uint8_t {
  kSched = 0,   ///< TaskScheduler: steal, wakeup, resize, forward_queues
  kStream = 1,  ///< StreamEngine/Session: pump, service, retune, gap, fault
  kCache = 2,   ///< CompiledPlanCache: compile, hit/miss, eviction
  kGroup = 3,   ///< EngineGroup: migration eject/adopt
};
inline constexpr std::uint32_t bit(Category c) {
  return 1u << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kAllCategories =
    bit(Category::kSched) | bit(Category::kStream) | bit(Category::kCache) |
    bit(Category::kGroup);

/// How an event renders in Chrome trace format.
enum class Phase : std::uint8_t {
  kInstant = 0,   ///< "i": a point in time
  kComplete = 1,  ///< "X": a span; ts = start, arg1 = duration in ns
  kCounter = 2,   ///< "C": a sampled value; arg0 = value
};

/// One exported event.  The in-ring representation is atomic; this is the
/// plain POD form snapshots and dumps carry.
struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< steady_clock nanoseconds (monotonic)
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;  ///< duration_ns for kComplete events
  std::uint32_t tid = 0;   ///< process-local trace thread id (1-based)
  std::uint16_t name = 0;  ///< interned name id (see intern())
  Category category = Category::kSched;
  Phase phase = Phase::kInstant;
};
static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay compact");

// ---------------------------------------------------------------------------
// Runtime control

/// Sets the runtime category mask; 0 (the default) disables all tracing.
void set_enabled(std::uint32_t category_mask);
[[nodiscard]] std::uint32_t enabled_mask();

/// True iff events of category `c` are currently recorded.  The fast path
/// for disabled tracing: a compile-time test plus one relaxed load.
[[nodiscard]] bool enabled(Category c);

/// Parses a TWIDDC_TRACE-style spec: comma-separated category names
/// ("sched,stream,cache,group"), or "all"/"1" for everything.  Unknown
/// names are ignored; an empty spec yields 0.
[[nodiscard]] std::uint32_t parse_categories(const std::string& spec);

/// Applies $TWIDDC_TRACE to the runtime mask.  Called once automatically
/// at load time, so any twiddc binary honours the variable; returns true
/// if the variable was set and non-empty.
bool init_from_env();

/// Capacity (events, rounded up to a power of two, min 16) for rings
/// created after the call.  Existing rings keep their size.  Default 64k
/// events (2 MiB) per thread.
void set_ring_capacity(std::size_t events);

/// Names the calling thread in exported traces ("pump", "worker3", ...).
void set_thread_name(const std::string& name);

// ---------------------------------------------------------------------------
// Emission

/// Interns `name`, returning a stable id for this process.  Sites cache
/// the id in a function-local static so the table lock is paid once.
[[nodiscard]] std::uint16_t intern(const std::string& name);

/// Records an event on the calling thread's ring (created on first use).
/// Callers must check enabled(c) first; emit() itself does not gate.
void emit(Category c, std::uint16_t name, Phase phase, std::uint64_t arg0,
          std::uint64_t arg1);

inline void instant(Category c, std::uint16_t name, std::uint64_t arg0 = 0,
                    std::uint64_t arg1 = 0) {
  if (enabled(c)) emit(c, name, Phase::kInstant, arg0, arg1);
}
inline void counter(Category c, std::uint16_t name, std::uint64_t value) {
  if (enabled(c)) emit(c, name, Phase::kCounter, value, 0);
}

/// RAII duration span: one kComplete event at destruction carrying the
/// start timestamp and elapsed ns (arg1).  A span on a disabled category
/// costs the enabled() check twice and records nothing.
class Span {
 public:
  Span(Category c, std::uint16_t name, std::uint64_t arg0 = 0)
      : category_(c), name_(name), arg0_(arg0), start_ns_(enabled(c) ? now_ns() : 0) {}
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Replaces the user argument (e.g. blocks processed, known only at end).
  void set_arg(std::uint64_t arg0) { arg0_ = arg0; }

  /// Emits the event now instead of at scope exit.
  void finish();

  static std::uint64_t now_ns();

 private:
  Category category_;
  std::uint16_t name_;
  std::uint64_t arg0_;
  std::uint64_t start_ns_;  // 0 = disabled at construction or already finished
};

// ---------------------------------------------------------------------------
// Collection and export

/// A merged, timestamp-sorted view of every ring plus the metadata needed
/// to render it.
struct Snapshot {
  std::vector<TraceEvent> events;            // sorted by ts_ns
  std::uint64_t dropped = 0;                 // overwritten by ring wrap
  std::vector<std::string> names;            // name id -> string
  std::vector<std::pair<std::uint32_t, std::string>> threads;  // tid -> name
};

/// Collects all rings.  Safe to call while writers are emitting: slots
/// possibly being overwritten during the read are discarded (and counted
/// dropped), so returned events are always internally consistent.
[[nodiscard]] Snapshot snapshot();

/// Marks every ring's current contents as consumed: later snapshots only
/// see events emitted after the call.  Drop counters restart too.
void reset();

/// Chrome trace format: {"traceEvents": [...]} with thread-name metadata,
/// "i"/"X"/"C" events and ts/dur in microseconds.
[[nodiscard]] std::string to_chrome_json(const Snapshot& snap);

/// Newline-delimited JSON: one flat object per event.
[[nodiscard]] std::string to_ndjson(const Snapshot& snap);

/// Writes to_chrome_json(snapshot()) to `path`; false on I/O error.
bool write_chrome_trace(const std::string& path);

/// Compact binary form of a snapshot ("TWTRC1" magic), the capture format
/// tools/trace_dump converts to .trace.json offline.
bool write_binary_dump(const std::string& path);
[[nodiscard]] bool read_binary_dump(const std::string& path, Snapshot& out);

}  // namespace twiddc::trace
