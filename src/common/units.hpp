// twiddc -- frequency/size unit helpers used throughout the library.
//
// Frequencies are plain `double` hertz; these helpers exist so that paper
// constants read the way the paper writes them (64.512_MHz, 24_kHz).
#pragma once

namespace twiddc {

constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_Hz(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kHz(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(unsigned long long v) { return static_cast<double>(v) * 1e6; }

/// The paper's reference input sample rate (Table 1).
constexpr double kReferenceInputRateHz = 64.512e6;
/// The paper's reference output sample rate (Table 1).
constexpr double kReferenceOutputRateHz = 24.0e3;

}  // namespace twiddc
