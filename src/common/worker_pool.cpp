#include "src/common/worker_pool.hpp"

namespace twiddc::common {

WorkerPool::WorkerPool(int threads) {
  if (threads < 0) threads = 0;
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::begin(const std::function<void(int)>& job) {
  if (threads_.empty()) return;
  errors_.assign(threads_.size(), nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++epoch_;
    pending_ = static_cast<int>(threads_.size());
  }
  work_cv_.notify_all();
}

void WorkerPool::finish() {
  if (threads_.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }
  for (auto& e : errors_)
    if (e) std::rethrow_exception(e);
}

void WorkerPool::worker_loop(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = job_;
    }
    try {
      (*fn)(w);
    } catch (...) {
      errors_[static_cast<std::size_t>(w)] = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --pending_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace twiddc::common
