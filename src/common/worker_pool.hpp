// twiddc::common -- persistent worker-thread pool.
//
// Extracted from core::ChannelBank (which is now a client) so every
// multi-threaded execution engine in the repo shares one pool mechanism:
// the bank shards channels across it per block, and the streaming session
// engine (src/stream/engine.hpp) parks its long-running session workers on
// it.  std::thread is spawned once per worker, not per job: sandboxed and
// oversubscribed hosts make thread creation orders of magnitude more
// expensive than a futex wake, which would swallow the sharding win for
// realistic block sizes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace twiddc::common {

/// A fixed set of persistent threads executing one published job at a time.
///
///   pool.begin(job);   // every pool thread runs job(worker_index)
///   ...                // the caller overlaps its own share of the work
///   pool.finish();     // waits for all workers, rethrows the first worker
///                      // exception
///
/// Exactly one job may be in flight: begin() must be balanced by finish()
/// before the next begin().  The job reference must stay valid until
/// finish() returns -- jobs may be long-running loops (the stream engine
/// parks workers for the engine's whole lifetime and releases them by
/// making the job return).
class WorkerPool {
 public:
  /// Spawns `threads` persistent workers (>= 0; 0 makes begin/finish no-ops).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int threads() const { return static_cast<int>(threads_.size()); }

  /// Publishes job(worker_index) to every pool thread.
  void begin(const std::function<void(int)>& job);

  /// Waits for every pool thread to finish the published job; rethrows the
  /// first captured worker exception.
  void finish();

 private:
  void worker_loop(int w);

  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> errors_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace twiddc::common
