#include "src/core/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace twiddc::core {

std::vector<std::complex<double>> to_complex(const std::vector<IqSample>& samples,
                                             double output_scale) {
  std::vector<std::complex<double>> out;
  out.reserve(samples.size());
  // The paper's rails compute I = x*cos and Q = x*sin.  The standard complex
  // baseband (mixing by e^{-j w t}) is I - jQ, so a tone *above* the NCO
  // frequency comes out at *positive* baseband frequency.
  for (const IqSample& s : samples)
    out.emplace_back(static_cast<double>(s.i) * output_scale,
                     -static_cast<double>(s.q) * output_scale);
  return out;
}

ErrorStats compare_streams(const std::vector<std::complex<double>>& golden,
                           const std::vector<std::complex<double>>& test) {
  if (golden.size() != test.size() || golden.empty())
    throw ConfigError("compare_streams: streams must be equal-sized and non-empty");
  // Least-squares real gain g minimising sum |golden - g*test|^2.
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    num += golden[i].real() * test[i].real() + golden[i].imag() * test[i].imag();
    den += std::norm(test[i]);
  }
  const double g = den > 0.0 ? num / den : 1.0;

  double sig = 0.0;
  double err = 0.0;
  double max_err = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    sig += std::norm(golden[i]);
    const double e = std::abs(golden[i] - g * test[i]);
    err += e * e;
    max_err = std::max(max_err, e);
  }
  ErrorStats stats;
  stats.gain = g;
  stats.max_abs_error = max_err;
  stats.count = golden.size();
  stats.snr_db = err > 0.0 ? power_db(sig / err) : 300.0;
  return stats;
}

double quantization_snr_db(int bits) { return 6.0206 * bits + 1.7609; }

}  // namespace twiddc::core
