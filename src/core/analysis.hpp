// twiddc::core -- error analysis between DDC implementations.
//
// Used by tests (SNR thresholds per datapath) and EXPERIMENTS.md generation.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "src/core/fixed_ddc.hpp"

namespace twiddc::core {

/// Converts raw fixed outputs into normalised complex doubles using the
/// datapath's output scale.
std::vector<std::complex<double>> to_complex(const std::vector<IqSample>& samples,
                                             double output_scale);

struct ErrorStats {
  double snr_db = 0.0;        ///< after optimal (least-squares) gain fit
  double gain = 1.0;          ///< fitted gain test -> golden
  double max_abs_error = 0.0; ///< after gain fit
  std::size_t count = 0;
};

/// Compares a test stream against a golden stream of the same length.  A
/// single real least-squares gain is fitted first, because fixed datapaths
/// carry known small gain offsets (coefficient quantisation, (2^a-1)/2^a NCO
/// amplitude) that are not noise.
ErrorStats compare_streams(const std::vector<std::complex<double>>& golden,
                           const std::vector<std::complex<double>>& test);

/// Theoretical SNR limit of quantising an ideal chain output to `bits`
/// (6.02*bits + 1.76 dB, full-scale sine).
double quantization_snr_db(int bits);

}  // namespace twiddc::core
