#include "src/core/backend.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/core/ddc_config.hpp"

namespace twiddc::core {
namespace {

std::string stage_who(const ChainPlan& plan, std::size_t i) {
  return "stage " + std::to_string(i) + " ('" + plan.stages[i].label + "')";
}

const char* kind_name(StageSpec::Kind k) {
  switch (k) {
    case StageSpec::Kind::kPassthrough: return "passthrough";
    case StageSpec::Kind::kScale: return "scale";
    case StageSpec::Kind::kCic: return "cic";
    case StageSpec::Kind::kFirDecimator: return "fir";
    case StageSpec::Kind::kPolyphaseFir: return "polyphase-fir";
  }
  return "?";
}

}  // namespace

// ------------------------------------------------------ ArchitectureBackend

void ArchitectureBackend::require_configured() const {
  if (!is_configured())
    throw SimulationError(name() + ": backend used before configure()");
}

ChainPlan ArchitectureBackend::plan_for(const DdcConfig& config) const {
  try {
    return ChainPlan::figure1(config, datapath());
  } catch (const ConfigError& e) {
    throw LoweringError(name(), e.what());
  }
}

void ArchitectureBackend::swap_plan(const ChainPlan& plan, SwapMode mode) {
  require_configured();
  if (mode == SwapMode::kSplice)
    throw LoweringError(name(),
                        "kSplice reconfiguration is not supported by this "
                        "architecture (only kFlush)");
  // Flush contract: reload the configuration as-if freshly configured.  A
  // failed lowering must leave the old configuration running, which
  // configure() implementations guarantee by lowering before committing.
  configure(plan);
}

// --------------------------------------------------------- BackendRegistry

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(const std::string& name, Factory factory) {
  for (auto& [n, f] : factories_) {
    if (n == name) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

bool BackendRegistry::contains(const std::string& name) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& p) { return p.first == name; });
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

std::unique_ptr<ArchitectureBackend> BackendRegistry::create(
    const std::string& name) const {
  for (const auto& [n, f] : factories_) {
    if (n == name) return f();
  }
  throw ConfigError("BackendRegistry: no backend named '" + name + "' registered");
}

std::vector<std::unique_ptr<ArchitectureBackend>> BackendRegistry::create_all() const {
  std::vector<std::unique_ptr<ArchitectureBackend>> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(f());
  return out;
}

// ---------------------------------------------------------------- lowering

DdcConfig lower_figure1_plan(const ChainPlan& plan, const DatapathSpec& spec,
                             const std::string& backend) {
  plan.validate();

  // 1. Structural pattern: CIC -> CIC -> polyphase FIR.
  if (plan.stages.size() != 3)
    throw LoweringError(backend, "the datapath realises a 3-stage chain "
                        "(CIC -> CIC -> FIR); plan has " +
                        std::to_string(plan.stages.size()) + " stages");
  const StageSpec& cic2 = plan.stages[0];
  const StageSpec& cic5 = plan.stages[1];
  const StageSpec& fir = plan.stages[2];
  if (cic2.kind != StageSpec::Kind::kCic)
    throw LoweringError(backend, stage_who(plan, 0) + " is " +
                        kind_name(cic2.kind) + " but the first stage must be a CIC");
  if (cic5.kind != StageSpec::Kind::kCic)
    throw LoweringError(backend, stage_who(plan, 1) + " is " +
                        kind_name(cic5.kind) + " but the second stage must be a CIC");
  if (fir.kind != StageSpec::Kind::kPolyphaseFir)
    throw LoweringError(backend, stage_who(plan, 2) + " is " + kind_name(fir.kind) +
                        " but the last stage must be a polyphase FIR");

  // 2. Recover the rate plan.
  DdcConfig config;
  config.input_rate_hz = plan.input_rate_hz;
  config.nco_freq_hz = plan.front_end.nco_freq_hz;
  config.cic2_stages = cic2.cic_stages;
  config.cic2_decimation = cic2.decimation;
  config.cic5_stages = cic5.cic_stages;
  config.cic5_decimation = cic5.decimation;
  config.fir_taps = static_cast<int>(fir.taps.size());
  config.fir_decimation = fir.decimation;
  try {
    config.validate();
  } catch (const ConfigError& e) {
    throw LoweringError(backend, std::string("recovered rate plan is invalid: ") +
                        e.what());
  }

  // 3. The plan must be exactly this architecture's lowering of that rate
  // plan: re-derive it and diff every field the fixed datapath consumes.
  ChainPlan ref;
  try {
    ref = ChainPlan::figure1(config, spec);
  } catch (const ConfigError& e) {
    throw LoweringError(backend, std::string("datapath '") + spec.name +
                        "' cannot realise the recovered rate plan: " + e.what());
  }
  check_plan_matches_reference(plan, ref, backend, spec.name);
  return config;
}

void check_plan_matches_reference(const ChainPlan& plan, const ChainPlan& ref,
                                  const std::string& backend,
                                  const std::string& datapath_name) {
  if (plan.stages.size() != ref.stages.size())
    throw LoweringError(backend, "plan has " + std::to_string(plan.stages.size()) +
                        " stages but the '" + datapath_name + "' chain has " +
                        std::to_string(ref.stages.size()));

  const FrontEndSpec& fe = plan.front_end;
  const FrontEndSpec& rfe = ref.front_end;
  auto fe_mismatch = [&](const char* field, int got, int want) {
    throw LoweringError(backend, std::string("front end ") + field + " = " +
                        std::to_string(got) + " but the '" + datapath_name +
                        "' datapath implements " + std::to_string(want));
  };
  if (fe.nco_amplitude_bits != rfe.nco_amplitude_bits)
    fe_mismatch("nco_amplitude_bits", fe.nco_amplitude_bits, rfe.nco_amplitude_bits);
  if (fe.nco_table_bits != rfe.nco_table_bits)
    fe_mismatch("nco_table_bits", fe.nco_table_bits, rfe.nco_table_bits);
  if (fe.nco_mode != rfe.nco_mode)
    throw LoweringError(backend, "front end NCO mode differs from the '" +
                        datapath_name + "' datapath's table-lookup NCO");
  if (fe.input_bits != rfe.input_bits)
    fe_mismatch("input_bits", fe.input_bits, rfe.input_bits);
  if (fe.mixer_out_bits != rfe.mixer_out_bits)
    fe_mismatch("mixer_out_bits", fe.mixer_out_bits, rfe.mixer_out_bits);
  if (fe.mixer_rounding != rfe.mixer_rounding)
    throw LoweringError(backend, "front end mixer rounding differs from the '" +
                        datapath_name + "' datapath");

  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    const StageSpec& got = plan.stages[i];
    const StageSpec& want = ref.stages[i];
    const std::string who = stage_who(plan, i);
    auto mismatch = [&](const char* field, long long g, long long w) {
      throw LoweringError(backend, who + " " + field + " = " + std::to_string(g) +
                          " but the '" + datapath_name + "' lowering requires " +
                          std::to_string(w));
    };
    if (got.kind != want.kind)
      throw LoweringError(backend, who + " is " + kind_name(got.kind) +
                          " but the '" + datapath_name + "' chain has a " +
                          kind_name(want.kind) + " stage there");
    if (got.decimation != want.decimation)
      mismatch("decimation", got.decimation, want.decimation);
    if (got.kind == StageSpec::Kind::kCic) {
      if (got.cic_stages != want.cic_stages)
        mismatch("cic_stages", got.cic_stages, want.cic_stages);
      if (got.diff_delay != want.diff_delay)
        mismatch("diff_delay", got.diff_delay, want.diff_delay);
      if (got.input_bits != want.input_bits)
        mismatch("input_bits", got.input_bits, want.input_bits);
      if (got.register_bits != want.register_bits)
        mismatch("register_bits", got.register_bits, want.register_bits);
      if (got.prune_shifts != want.prune_shifts)
        throw LoweringError(backend, who + " Hogenauer register pruning differs "
                            "from the '" + datapath_name + "' implementation");
    } else if (got.taps != want.taps) {
      throw LoweringError(backend, who + " taps differ from the '" + datapath_name +
                          "' derivation (coefficient sets this architecture does "
                          "not itself derive are not realised)");
    }
    if (got.post_shift != want.post_shift)
      mismatch("post_shift", got.post_shift, want.post_shift);
    if (got.narrow_bits != want.narrow_bits)
      mismatch("narrow_bits", got.narrow_bits, want.narrow_bits);
    if (got.rounding != want.rounding)
      throw LoweringError(backend, who + " rounding mode differs from the '" +
                          datapath_name + "' datapath");
  }
}

}  // namespace twiddc::core
