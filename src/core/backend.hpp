// twiddc::core -- the unified ArchitectureBackend layer.
//
// The paper's claim is that ONE DDC algorithm maps onto four very different
// architectures.  The pipeline layer (pipeline.hpp) already makes the
// algorithm data (a ChainPlan); this layer makes the *architectures* data
// too.  Every execution path in the repo -- the native stage pipeline, the
// FixedDdc/FloatDdc shims, the FPGA RTL model, the GPP program, the Montium
// mapping and the GC4016 channel -- is wrapped as an ArchitectureBackend:
//
//   configure(plan)  lowers an arbitrary ChainPlan onto the architecture.
//                    Architectures with hardwired structure (the ARM kernel,
//                    the Montium schedule, the FPGA netlist, the GC4016's
//                    Figure 4 chain) accept only the plan family they can
//                    realise and reject everything else with a typed
//                    LoweringError naming the first unmappable feature --
//                    they never silently assume the Figure 1 topology.
//   process_block()  runs raw input samples through the lowered design.
//   swap_plan()      runtime reconfiguration (the Montium's raison d'etre),
//                    with a defined output-glitch contract (see SwapMode).
//
// A static BackendRegistry holds one factory per backend so cross-
// architecture tests, the energy scenarios and the explorer example iterate
// *whatever is registered* instead of enumerating architectures by hand.
// See DESIGN.md for the lowering rules and the reconfiguration contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/datapath_spec.hpp"
#include "src/core/pipeline.hpp"

namespace twiddc::core {

/// Thrown by ArchitectureBackend::configure when a plan cannot be lowered
/// onto the architecture.  Carries the backend name and the first
/// unmappable feature as separate fields so harnesses can report *why* an
/// architecture rejected a topology.
class LoweringError : public ConfigError {
 public:
  LoweringError(std::string backend, std::string detail)
      : ConfigError(backend + ": cannot lower plan: " + detail),
        backend_(std::move(backend)),
        detail_(std::move(detail)) {}

  [[nodiscard]] const std::string& backend() const { return backend_; }
  [[nodiscard]] const std::string& detail() const { return detail_; }

 private:
  std::string backend_;
  std::string detail_;
};

/// What a backend can do, declared up front so harnesses can pick the right
/// comparison (bit-exact diff vs SNR bound) and the right feature tests.
struct BackendCapabilities {
  /// Outputs are bit-identical to the fixed functional twin (a DdcPipeline
  /// built from the same plan).  When false, agreement is only
  /// quantisation-bounded: compare at >= min_snr_db.
  bool bit_exact = true;
  /// Produces only the in-phase rail (the paper's ARM program); harnesses
  /// must ignore the Q component.
  bool in_phase_only = false;
  /// configure() accepts any valid ChainPlan (true for the functional
  /// backends); false means only an architecture-specific plan family
  /// lowers and everything else raises LoweringError.
  bool arbitrary_topology = false;
  /// swap_plan(kSplice) is supported (state-preserving reconfiguration).
  /// kFlush is supported by every backend.
  bool supports_splice = false;
  /// Quantisation-noise floor for non-bit-exact agreement checks.
  double min_snr_db = 0.0;
};

/// Silicon cost model of a backend, for the energy scenarios.  Backends
/// that only exist as simulations (the functional twins) leave
/// `modeled == false` and are skipped by the scenario builders.
struct BackendPowerProfile {
  bool modeled = false;
  double active_power_mw = 0.0;
  double idle_power_mw = 0.0;
  bool reusable_when_idle = false;  ///< fabric hosts other tasks while idle
  double reconfig_bytes = 0.0;      ///< configuration loaded per activation
  double reconfig_power_mw = 0.0;
};

/// One architecture executing ChainPlans.  Backends start unconfigured;
/// every other method requires a successful configure() first and throws
/// SimulationError otherwise.
class ArchitectureBackend {
 public:
  virtual ~ArchitectureBackend() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual BackendCapabilities capabilities() const = 0;

  /// The fixed-point datapath this architecture natively implements; used
  /// by plan_for() to derive the architecture's own lowering of a rate
  /// plan, and reported in conformance output.
  [[nodiscard]] virtual DatapathSpec datapath() const = 0;

  /// The architecture's own lowering of a DdcConfig rate plan -- the plan
  /// this backend would pick for itself (Figure 1 with its datapath widths,
  /// or the GC4016's Figure 4 chain).  Throws LoweringError when even the
  /// rate plan does not fit the architecture.
  [[nodiscard]] virtual ChainPlan plan_for(const DdcConfig& config) const;

  /// Lowers `plan` onto the architecture and builds the execution state.
  /// Throws LoweringError (with the backend name and the first unmappable
  /// feature) when the plan is outside the architecture's family.
  virtual void configure(const ChainPlan& plan) = 0;
  [[nodiscard]] virtual bool is_configured() const = 0;

  /// The configured plan (valid after configure()).
  [[nodiscard]] virtual const ChainPlan& plan() const = 0;

  /// Runs a block of raw input samples (must fit the plan's input width),
  /// appending produced outputs.  Backends with in_phase_only report q = 0.
  virtual void process_block(std::span<const std::int64_t> in,
                             std::vector<IqSample>& out) = 0;

  /// Clears all execution state (filters, NCO phase, counters); the
  /// configured plan is retained.
  virtual void reset() = 0;

  /// Multiplies raw integer outputs into normalised doubles for
  /// cross-backend comparison.
  [[nodiscard]] virtual double output_scale() const = 0;

  /// Runtime reconfiguration.  kFlush (supported everywhere) reloads the
  /// architecture's configuration: as-if freshly configured, all execution
  /// state discarded.  kSplice (supports_splice backends only) keeps filter
  /// state across a structurally compatible plan change; see SwapMode.
  /// Throws LoweringError when the new plan does not lower, in which case
  /// the old configuration stays active.
  virtual void swap_plan(const ChainPlan& plan, SwapMode mode = SwapMode::kFlush);

  /// Silicon cost for the energy scenarios (valid after configure()).
  [[nodiscard]] virtual BackendPowerProfile power_profile() const { return {}; }

 protected:
  /// Helper for subclasses: throws SimulationError when not configured.
  void require_configured() const;
};

/// Static registry of backend factories.  Registration is idempotent by
/// name (last registration wins); twiddc's own backends self-register via
/// backends::register_builtin(), which every consumer calls first.
class BackendRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ArchitectureBackend>()>;

  static BackendRegistry& instance();

  void add(const std::string& name, Factory factory);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Builds a fresh, unconfigured backend.  Throws ConfigError for an
  /// unknown name.
  [[nodiscard]] std::unique_ptr<ArchitectureBackend> create(const std::string& name) const;
  /// Builds one fresh instance of every registered backend, in
  /// registration order.
  [[nodiscard]] std::vector<std::unique_ptr<ArchitectureBackend>> create_all() const;

 private:
  BackendRegistry() = default;
  std::vector<std::pair<std::string, Factory>> factories_;
};

// ------------------------------------------------------- lowering helpers

/// Verifies that `plan` equals the architecture's own derivation `ref` in
/// every field a fixed-point datapath consumes -- front-end widths/modes,
/// per-stage CIC geometry and pruning, quantised taps, output conditioning
/// (labels and float-rail taps are presentation, not datapath, and are
/// ignored).  `datapath_name` names the implemented datapath in the
/// diagnostics.  Throws LoweringError naming `backend` and the first
/// differing feature.  Shared by every hardware lowering so new StageSpec
/// fields get checked in one place.
void check_plan_matches_reference(const ChainPlan& plan, const ChainPlan& ref,
                                  const std::string& backend,
                                  const std::string& datapath_name);

/// Recovers the DdcConfig of a Figure-1-family plan (CIC -> CIC ->
/// polyphase FIR) and verifies that `plan` is exactly the `spec` lowering
/// of that config -- i.e. equal to ChainPlan::figure1(config, spec) in
/// every field the fixed-point datapath consumes (front-end widths, stage
/// structure, quantised taps, output conditioning).  Throws LoweringError
/// naming `backend` and the first differing feature.  This is the shared
/// plan -> architecture lowering of the FPGA, GPP and Montium backends,
/// which realise exactly that family in hardware.
DdcConfig lower_figure1_plan(const ChainPlan& plan, const DatapathSpec& spec,
                             const std::string& backend);

}  // namespace twiddc::core
