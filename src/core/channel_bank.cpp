#include "src/core/channel_bank.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <string>
#include <tuple>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/fir.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::core {
namespace {
// Channels are advanced tile by tile so each channel's per-block scratch
// (mixer planar buffers, rail ping-pong buffers) stays cache-resident
// instead of streaming a full block's worth per channel.  Pipelines are
// streaming-composable, so tiling is bit-exact with one monolithic call --
// and a tile is also the stealable unit: between tiles a channel's
// continuation sits in a scheduler deque where an idle worker can claim it.
constexpr std::size_t kTileSamples = 8192;
}  // namespace

ChannelBank::ChannelBank(const std::vector<ChainPlan>& plans, int workers) {
  if (plans.empty()) throw ConfigError("ChannelBank: needs at least one plan");
  channels_.reserve(plans.size());
  for (const auto& plan : plans) channels_.emplace_back(plan);
  enabled_.assign(channels_.size(), 1);
  set_workers(workers);
}

ChannelBank::~ChannelBank() = default;
ChannelBank::ChannelBank(ChannelBank&&) noexcept = default;
ChannelBank& ChannelBank::operator=(ChannelBank&&) noexcept = default;

void ChannelBank::set_workers(int workers) {
  workers_ = std::clamp(workers, 1, static_cast<int>(channels_.size()));
  // The scheduler holds workers_-1 threads; the calling thread participates
  // in every process_block via the fork-join steal loop.
  const int pool_size = workers_ - 1;
  if (sched_ && sched_->workers() != pool_size) sched_.reset();
  if (!sched_ && pool_size > 0) {
    common::TaskScheduler::Options opts;
    opts.initial = pool_size;
    opts.min_workers = pool_size;
    opts.max_workers = pool_size;
    // Spread the fork-join pool across NUMA nodes (a no-op on one-node
    // boxes): a stolen tile runs on the node its thief's deque lives on,
    // and the thief's scratch stays node-local.
    opts.pin_to_nodes = true;
    sched_ = std::make_unique<common::TaskScheduler>(opts);
  }
}

bool ChannelBank::packable(std::size_t c) {
  DdcPipeline& p = channels_[c];
  // Observation taps see per-stage intermediates that a split chain does not
  // produce in one place; such channels keep the monolithic path.
  if (p.has_mixer_tap()) return false;
  const ChainPlan& plan = p.plan();
  if (plan.stages.empty() || plan.stages[0].kind != StageSpec::Kind::kCic)
    return false;
  if (!plan.stages[0].prune_shifts.empty()) return false;
  for (int r = 0; r < 2; ++r) {
    StageChain<std::int64_t>& rail = p.rail(r);
    if (rail.has_taps()) return false;
    if (rail.size() == 0 || rail.stage(0).cic_kernel() == nullptr) return false;
  }
  return true;
}

std::vector<ChannelBank::Unit> ChannelBank::make_units() {
  std::vector<Unit> units;
  // Packing groups: identical first-stage CIC geometry AND decimation phase
  // (lanes must hit decimation boundaries in lockstep).  Channels are
  // normally constructed and fed together so phases agree; a channel that
  // was disabled for a while simply lands in its own group.
  std::map<std::tuple<int, int, int, int, std::uint64_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (!enabled_[c]) continue;
    if (!packing_ || !packable(c)) {
      units.push_back(Unit{{c}, 1});
      continue;
    }
    dsp::CicDecimator* k = channels_[c].rail(0).stage(0).cic_kernel();
    const auto& cfg = k->config();
    groups[{cfg.stages, cfg.decimation, cfg.diff_delay, k->register_bits(),
            k->samples_in() % static_cast<std::uint64_t>(cfg.decimation)}]
        .push_back(c);
  }
  // Octets only when the AVX-512 tier is actually up right now; an octet on
  // an AVX2-only box would decline packed8 and split into packed4 halves,
  // which quads already express directly.
  const bool octets = simd::avx512_active();
  for (auto& [key, chs] : groups) {
    std::size_t i = 0;
    if (octets) {
      for (; i + 8 <= chs.size(); i += 8) {
        Unit u;
        u.lanes = 8;
        for (int l = 0; l < 8; ++l) u.ch[l] = chs[i + static_cast<std::size_t>(l)];
        units.push_back(u);
      }
    }
    for (; i + 4 <= chs.size(); i += 4)
      units.push_back(Unit{{chs[i], chs[i + 1], chs[i + 2], chs[i + 3]}, 4});
    for (; i < chs.size(); ++i) units.push_back(Unit{{chs[i]}, 1});
  }
  // Submit in channel order, not group-key order: scheduling (and therefore
  // the work-stealing interleave the bank's tests pin down) stays identical
  // to the pre-packing per-channel path whenever no quad forms.
  std::sort(units.begin(), units.end(),
            [](const Unit& a, const Unit& b) { return a.ch[0] < b.ch[0]; });
  return units;
}

void ChannelBank::run_packed_tail(const Unit& unit, int r,
                                  std::vector<std::int64_t>* cur[],
                                  std::vector<std::int64_t>* spare[],
                                  std::vector<std::int64_t>* fin[]) {
  const int L = unit.lanes;
  StageChain<std::int64_t>* rails[8];
  const std::size_t nstages = channels_[unit.ch[0]].rail(r).size();
  bool lockstep = true;
  for (int l = 0; l < L; ++l) {
    rails[l] = &channels_[unit.ch[l]].rail(r);
    lockstep = lockstep && rails[l]->size() == nstages;
  }
  std::size_t s = 1;
  for (; lockstep && s < nstages; ++s) {
    // A stage packs when every lane exposes the same FIR kernel kind and the
    // lanes' sample streams are still in lockstep; the kernel itself checks
    // the rest (shared taps, decimation, phase, SIMD tier) and declines
    // without touching state otherwise.
    dsp::FirDecimator<std::int64_t>* fk[8];
    dsp::PolyphaseFirDecimator<std::int64_t>* pk[8];
    bool all_fir = true;
    bool all_poly = true;
    bool sizes_ok = true;
    for (int l = 0; l < L; ++l) {
      fk[l] = rails[l]->stage(s).fir_kernel();
      pk[l] = rails[l]->stage(s).polyphase_kernel();
      all_fir = all_fir && fk[l] != nullptr;
      all_poly = all_poly && pk[l] != nullptr;
      sizes_ok = sizes_ok && cur[l]->size() == cur[0]->size();
    }
    if ((!all_fir && !all_poly) || !sizes_ok) break;
    const std::size_t n = cur[0]->size();
    const std::int64_t* ins[8];
    std::vector<std::int64_t>* outs[8];
    for (int l = 0; l < L; ++l) {
      ins[l] = cur[l]->data();
      spare[l]->clear();
      outs[l] = spare[l];
    }
    const bool packed =
        all_fir ? dsp::FirDecimator<std::int64_t>::process_block_packed(fk, L, ins,
                                                                        n, outs)
                : dsp::PolyphaseFirDecimator<std::int64_t>::process_block_packed(
                      pk, L, ins, n, outs);
    if (!packed) break;
    // The kernels bypass the stage's output conditioning; apply it here,
    // identically to the stage's own block path.
    for (int l = 0; l < L; ++l) {
      const StageSpec& st = channels_[unit.ch[l]].plan().stages[s];
      for (std::int64_t& v : *outs[l]) {
        v = fixed::shift_right(v, st.post_shift, st.rounding);
        if (st.narrow_bits != 0)
          v = fixed::narrow(v, st.narrow_bits, fixed::Overflow::kSaturate);
      }
      std::swap(cur[l], spare[l]);
    }
  }
  for (int l = 0; l < L; ++l) {
    if (lockstep && s >= nstages)
      fin[l]->swap(*cur[l]);  // every stage packed; cur holds the rail output
    else
      rails[l]->process_block_from(s, *cur[l], *fin[l]);
  }
}

void ChannelBank::run_packed_tile(const Unit& unit,
                                  std::span<const std::int64_t> tile,
                                  std::vector<std::vector<IqSample>>& out,
                                  PackScratch& s) {
  const std::size_t m = tile.size();
  const int L = unit.lanes;
  // Same all-or-nothing contract as DdcPipeline::process_block: range-check
  // the tile against every lane's input width before any state advances.
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  simd::minmax_i64(tile.data(), m, lo, hi);
  for (int l = 0; l < L; ++l) {
    const int bits = channels_[unit.ch[l]].plan().front_end.input_bits;
    if (!fixed::fits_bits(lo, bits) || !fixed::fits_bits(hi, bits)) {
      const std::int64_t bad = fixed::fits_bits(lo, bits) ? hi : lo;
      throw SimulationError("ChannelBank: input " + std::to_string(bad) +
                            " does not fit " + std::to_string(bits) + " bits");
    }
  }

  // Front end per lane: the NCO and mixer already vectorise along time
  // through the simd shim, so cross-channel packing buys nothing there.
  dsp::CicDecimator* kern_i[8];
  dsp::CicDecimator* kern_q[8];
  const std::int64_t* in_i[8];
  const std::int64_t* in_q[8];
  std::vector<std::int64_t>* out_i[8];
  std::vector<std::int64_t>* out_q[8];
  for (int l = 0; l < L; ++l) {
    DdcPipeline& p = channels_[unit.ch[l]];
    s.cs[l].resize(m);
    s.sn[l].resize(m);
    p.nco().next_block(s.cs[l], s.sn[l]);
    s.mix_i[l].resize(m);
    s.mix_q[l].resize(m);
    p.mixer().mix_block(tile, s.cs[l], s.sn[l], s.mix_i[l], s.mix_q[l]);
    s.cic_i[l].clear();
    s.cic_q[l].clear();
    kern_i[l] = p.rail(0).stage(0).cic_kernel();
    kern_q[l] = p.rail(1).stage(0).cic_kernel();
    in_i[l] = s.mix_i[l].data();
    in_q[l] = s.mix_q[l].data();
    out_i[l] = &s.cic_i[l];
    out_q[l] = &s.cic_q[l];
  }

  // The packed CIC leg: all lanes' integrator cascades per register, one
  // pass for the I rails and one for the Q rails.  Octets try the AVX-512
  // kernel first and degrade to AVX2 quad pairs, then to per-lane blocks;
  // every kernel declines without touching state, so any mix is bit-exact.
  const auto run_cic = [m, L](dsp::CicDecimator* const kern[],
                              const std::int64_t* const in[],
                              std::vector<std::int64_t>* const outp[]) {
    if (L == 8 && dsp::CicDecimator::process_block_packed8(kern, in, m, outp))
      return;
    for (int base = 0; base < L; base += 4) {
      if (base + 4 <= L &&
          dsp::CicDecimator::process_block_packed4(kern + base, in + base, m,
                                                   outp + base))
        continue;
      const int end = std::min(base + 4, L);
      for (int l = base; l < end; ++l)
        kern[l]->process_block(std::span(in[l], m), *outp[l]);
    }
  };
  run_cic(kern_i, in_i, out_i);
  run_cic(kern_q, in_q, out_q);

  // Stage-0 conditioning per lane.
  for (int l = 0; l < L; ++l) {
    const StageSpec& st0 = channels_[unit.ch[l]].plan().stages[0];
    for (std::vector<std::int64_t>* rail : {&s.cic_i[l], &s.cic_q[l]}) {
      for (std::int64_t& v : *rail) {
        v = fixed::shift_right(v, st0.post_shift, st0.rounding);
        if (st0.narrow_bits != 0)
          v = fixed::narrow(v, st0.narrow_bits, fixed::Overflow::kSaturate);
      }
    }
  }

  // Tail stages: packed FIR across lanes while legal, per-lane otherwise.
  std::vector<std::int64_t>* cur[8];
  std::vector<std::int64_t>* spare[8];
  std::vector<std::int64_t>* fin[8];
  for (int r = 0; r < 2; ++r) {
    for (int l = 0; l < L; ++l) {
      cur[l] = r == 0 ? &s.cic_i[l] : &s.cic_q[l];
      s.tail[l].clear();
      spare[l] = &s.tail[l];
      fin[l] = r == 0 ? &s.rail_i[l] : &s.rail_q[l];
      fin[l]->clear();
    }
    run_packed_tail(unit, r, cur, spare, fin);
  }

  for (int l = 0; l < L; ++l) {
    DdcPipeline& p = channels_[unit.ch[l]];
    if (s.rail_i[l].size() != s.rail_q[l].size())
      throw SimulationError("ChannelBank: I/Q rails lost rate lock");
    std::vector<IqSample>& o = out[unit.ch[l]];
    o.reserve(o.size() + s.rail_i[l].size());
    for (std::size_t j = 0; j < s.rail_i[l].size(); ++j)
      o.push_back(IqSample{s.rail_i[l][j], s.rail_q[l][j]});
    p.note_packed_block(m, s.rail_i[l].size());
  }
}

void ChannelBank::run_tile_chain(std::span<const std::int64_t> in,
                                 std::vector<IqSample>& out,
                                 common::TaskScheduler::Group group,
                                 std::size_t channel, std::size_t offset) {
  try {
    for (;;) {
      const std::span<const std::int64_t> tile =
          in.subspan(offset, std::min(kTileSamples, in.size() - offset));
      channels_[channel].process_block(tile, out);
      offset += tile.size();
      if (offset >= in.size()) {
        group.complete();
        return;
      }
      if (sched_ && sched_->current_worker_index() >= 0) {
        // Publish the continuation instead of looping: the usual pop takes
        // it right back (cache-hot LIFO), but while this worker is busy
        // elsewhere an idle worker can steal the chain -- that migration is
        // what keeps skewed decimations from stalling the block barrier.
        sched_->submit_local([this, in, &out, group, channel, offset] {
          run_tile_chain(in, out, group, channel, offset);
        });
        return;
      }
      // The fork-join caller has no deque; it keeps the chain inline.
    }
  } catch (...) {
    group.fail(std::current_exception());
  }
}

void ChannelBank::run_packed_chain(std::span<const std::int64_t> in,
                                   std::vector<std::vector<IqSample>>& out,
                                   common::TaskScheduler::Group group, Unit unit,
                                   std::size_t offset, PackScratch* scratch) {
  try {
    for (;;) {
      const std::span<const std::int64_t> tile =
          in.subspan(offset, std::min(kTileSamples, in.size() - offset));
      run_packed_tile(unit, tile, out, *scratch);
      offset += tile.size();
      if (offset >= in.size()) {
        group.complete();
        return;
      }
      if (sched_ && sched_->current_worker_index() >= 0) {
        sched_->submit_local([this, in, &out, group, unit, offset, scratch] {
          run_packed_chain(in, out, group, unit, offset, scratch);
        });
        return;
      }
    }
  } catch (...) {
    group.fail(std::current_exception());
  }
}

void ChannelBank::process_block(std::span<const std::int64_t> in,
                                std::vector<std::vector<IqSample>>& out) {
  out.resize(channels_.size());
  if (in.empty()) return;
  const std::vector<Unit> units = make_units();
  if (units.empty()) return;

  const auto n_workers =
      static_cast<std::size_t>(std::min<int>(workers_, static_cast<int>(units.size())));
  if (n_workers <= 1 || !sched_) {
    // Serial mode: tile-outer, unit-inner -- every unit advances through
    // tile t before any unit starts tile t+1.
    PackScratch scratch;
    for (std::size_t off = 0; off < in.size(); off += kTileSamples) {
      const std::span<const std::int64_t> tile =
          in.subspan(off, std::min(kTileSamples, in.size() - off));
      for (const Unit& u : units) {
        if (u.lanes == 1)
          channels_[u.ch[0]].process_block(tile, out[u.ch[0]]);
        else
          run_packed_tile(u, tile, out, scratch);
      }
    }
    return;
  }

  // One tile chain per unit (single channel or packed quad), spread
  // round-robin over the worker inboxes; the caller joins through wait(),
  // stealing and executing chains alongside the pool.  Units touch disjoint
  // channels and output vectors, so any steal-driven interleaving is
  // bit-exact with serial execution; the only shared read is `in`.
  std::vector<std::unique_ptr<PackScratch>> scratches;
  for (const Unit& u : units)
    if (u.lanes > 1) scratches.push_back(std::make_unique<PackScratch>());
  common::TaskScheduler::Group group;
  group.expect(units.size());
  std::size_t si = 0;
  for (std::size_t k = 0; k < units.size(); ++k) {
    const Unit u = units[k];
    if (u.lanes == 1) {
      sched_->submit_to(static_cast<int>(k), [this, in, &out, group, u] {
        run_tile_chain(in, out[u.ch[0]], group, u.ch[0], 0);
      });
    } else {
      PackScratch* scratch = scratches[si++].get();
      sched_->submit_to(static_cast<int>(k), [this, in, &out, group, u, scratch] {
        run_packed_chain(in, out, group, u, 0, scratch);
      });
    }
  }
  sched_->wait(group);
  group.rethrow_if_error();
}

std::vector<std::vector<IqSample>> ChannelBank::process(
    const std::vector<std::int64_t>& in) {
  std::vector<std::vector<IqSample>> out;
  process_block(in, out);
  return out;
}

void ChannelBank::reset() {
  for (auto& ch : channels_) ch.reset();
}

}  // namespace twiddc::core
