#include "src/core/channel_bank.hpp"

#include <algorithm>
#include <exception>

#include "src/common/error.hpp"

namespace twiddc::core {
namespace {
// Channels are advanced tile by tile so each channel's per-block scratch
// (mixer planar buffers, rail ping-pong buffers) stays cache-resident
// instead of streaming a full block's worth per channel.  Pipelines are
// streaming-composable, so tiling is bit-exact with one monolithic call --
// and a tile is also the stealable unit: between tiles a channel's
// continuation sits in a scheduler deque where an idle worker can claim it.
constexpr std::size_t kTileSamples = 8192;
}  // namespace

ChannelBank::ChannelBank(const std::vector<ChainPlan>& plans, int workers) {
  if (plans.empty()) throw ConfigError("ChannelBank: needs at least one plan");
  channels_.reserve(plans.size());
  for (const auto& plan : plans) channels_.emplace_back(plan);
  enabled_.assign(channels_.size(), 1);
  set_workers(workers);
}

ChannelBank::~ChannelBank() = default;
ChannelBank::ChannelBank(ChannelBank&&) noexcept = default;
ChannelBank& ChannelBank::operator=(ChannelBank&&) noexcept = default;

void ChannelBank::set_workers(int workers) {
  workers_ = std::clamp(workers, 1, static_cast<int>(channels_.size()));
  // The scheduler holds workers_-1 threads; the calling thread participates
  // in every process_block via the fork-join steal loop.
  const int pool_size = workers_ - 1;
  if (sched_ && sched_->workers() != pool_size) sched_.reset();
  if (!sched_ && pool_size > 0)
    sched_ = std::make_unique<common::TaskScheduler>(pool_size);
}

void ChannelBank::run_tile_chain(std::span<const std::int64_t> in,
                                 std::vector<IqSample>& out,
                                 common::TaskScheduler::Group group,
                                 std::size_t channel, std::size_t offset) {
  try {
    for (;;) {
      const std::span<const std::int64_t> tile =
          in.subspan(offset, std::min(kTileSamples, in.size() - offset));
      channels_[channel].process_block(tile, out);
      offset += tile.size();
      if (offset >= in.size()) {
        group.complete();
        return;
      }
      if (sched_ && sched_->current_worker_index() >= 0) {
        // Publish the continuation instead of looping: the usual pop takes
        // it right back (cache-hot LIFO), but while this worker is busy
        // elsewhere an idle worker can steal the chain -- that migration is
        // what keeps skewed decimations from stalling the block barrier.
        sched_->submit_local([this, in, &out, group, channel, offset] {
          run_tile_chain(in, out, group, channel, offset);
        });
        return;
      }
      // The fork-join caller has no deque; it keeps the chain inline.
    }
  } catch (...) {
    group.fail(std::current_exception());
  }
}

void ChannelBank::process_block(std::span<const std::int64_t> in,
                                std::vector<std::vector<IqSample>>& out) {
  out.resize(channels_.size());
  std::vector<std::size_t> active;
  active.reserve(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c)
    if (enabled_[c]) active.push_back(c);
  if (active.empty() || in.empty()) return;

  const auto n_workers =
      static_cast<std::size_t>(std::min<int>(workers_, static_cast<int>(active.size())));
  if (n_workers <= 1 || !sched_) {
    // Serial mode: tile-outer, channel-inner -- every enabled channel
    // advances through tile t before any channel starts tile t+1.
    for (std::size_t off = 0; off < in.size(); off += kTileSamples) {
      const std::span<const std::int64_t> tile =
          in.subspan(off, std::min(kTileSamples, in.size() - off));
      for (const std::size_t c : active) channels_[c].process_block(tile, out[c]);
    }
    return;
  }

  // One tile chain per active channel, spread round-robin over the worker
  // inboxes; the caller joins through wait(), stealing and executing chains
  // alongside the pool.  Channels are independent state machines writing
  // disjoint output vectors, so any steal-driven interleaving is bit-exact
  // with serial execution; the only shared read is `in`.
  common::TaskScheduler::Group group;
  group.expect(active.size());
  for (std::size_t k = 0; k < active.size(); ++k) {
    const std::size_t c = active[k];
    sched_->submit_to(static_cast<int>(k), [this, in, &out, group, c] {
      run_tile_chain(in, out[c], group, c, 0);
    });
  }
  sched_->wait(group);
  group.rethrow_if_error();
}

std::vector<std::vector<IqSample>> ChannelBank::process(
    const std::vector<std::int64_t>& in) {
  std::vector<std::vector<IqSample>> out;
  process_block(in, out);
  return out;
}

void ChannelBank::reset() {
  for (auto& ch : channels_) ch.reset();
}

}  // namespace twiddc::core
