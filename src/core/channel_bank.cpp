#include "src/core/channel_bank.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "src/common/error.hpp"

namespace twiddc::core {
namespace {
// Channels are advanced tile by tile so each channel's per-block scratch
// (mixer planar buffers, rail ping-pong buffers) stays cache-resident
// instead of streaming a full block's worth per channel.  Pipelines are
// streaming-composable, so tiling is bit-exact with one monolithic call.
constexpr std::size_t kTileSamples = 8192;
}  // namespace

/// Persistent worker pool.  std::thread is spawned once per worker, not per
/// block: sandboxed and oversubscribed hosts make thread creation orders of
/// magnitude more expensive than a futex wake, which would swallow the
/// sharding win for realistic block sizes.
struct ChannelBank::Pool {
  explicit Pool(int n_workers) {
    threads.reserve(static_cast<std::size_t>(n_workers));
    for (int w = 0; w < n_workers; ++w)
      threads.emplace_back([this, w] { worker_loop(w); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    work_cv.notify_all();
    for (auto& t : threads) t.join();
  }

  /// Publishes job(worker_index) to every pool thread.  The caller overlaps
  /// its own shard between begin() and finish().
  void begin(const std::function<void(int)>& job_fn) {
    errors.assign(threads.size(), nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex);
      job = &job_fn;
      ++epoch;
      pending = static_cast<int>(threads.size());
    }
    work_cv.notify_all();
  }

  /// Waits for every pool thread to finish the published job; rethrows the
  /// first captured worker exception.
  void finish() {
    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [this] { return pending == 0; });
      job = nullptr;
    }
    for (auto& e : errors)
      if (e) std::rethrow_exception(e);
  }

  void worker_loop(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
        fn = job;
      }
      try {
        (*fn)(w);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mutex);
        last = --pending == 0;
      }
      if (last) done_cv.notify_one();
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors;
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  const std::function<void(int)>* job = nullptr;
  std::uint64_t epoch = 0;
  int pending = 0;
  bool stop = false;
};

ChannelBank::ChannelBank(const std::vector<ChainPlan>& plans, int workers) {
  if (plans.empty()) throw ConfigError("ChannelBank: needs at least one plan");
  channels_.reserve(plans.size());
  for (const auto& plan : plans) channels_.emplace_back(plan);
  enabled_.assign(channels_.size(), 1);
  set_workers(workers);
}

ChannelBank::~ChannelBank() = default;
ChannelBank::ChannelBank(ChannelBank&&) noexcept = default;
ChannelBank& ChannelBank::operator=(ChannelBank&&) noexcept = default;

void ChannelBank::set_workers(int workers) {
  workers_ = std::clamp(workers, 1, static_cast<int>(channels_.size()));
  // The pool holds workers_-1 threads; the calling thread works shard 0.
  const auto pool_size = static_cast<std::size_t>(workers_ - 1);
  if (pool_ && pool_->threads.size() != pool_size) pool_.reset();
  if (!pool_ && pool_size > 0) pool_ = std::make_unique<Pool>(static_cast<int>(pool_size));
}

void ChannelBank::process_block(std::span<const std::int64_t> in,
                                std::vector<std::vector<IqSample>>& out) {
  out.resize(channels_.size());
  std::vector<std::size_t> active;
  active.reserve(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c)
    if (enabled_[c]) active.push_back(c);
  if (active.empty() || in.empty()) return;

  // Tile-outer, channel-inner: every enabled channel advances through tile t
  // before any channel starts tile t+1.
  const auto run_channels = [&](std::size_t first, std::size_t stride) {
    for (std::size_t off = 0; off < in.size(); off += kTileSamples) {
      const std::span<const std::int64_t> tile =
          in.subspan(off, std::min(kTileSamples, in.size() - off));
      for (std::size_t k = first; k < active.size(); k += stride)
        channels_[active[k]].process_block(tile, out[active[k]]);
    }
  };

  const auto n_workers =
      static_cast<std::size_t>(std::min<int>(workers_, static_cast<int>(active.size())));
  if (n_workers <= 1 || !pool_) {
    run_channels(0, 1);
    return;
  }

  // Shard the active channels across the pool (pool worker w owns channels
  // w+1, w+1+n, ...) while the caller works shard 0.  Channels are fully
  // independent state machines writing disjoint output vectors, so sharding
  // is bit-exact with serial execution; the only shared read is `in`.
  const std::function<void(int)> job = [&](int w) {
    if (static_cast<std::size_t>(w) + 1 < n_workers)
      run_channels(static_cast<std::size_t>(w) + 1, n_workers);
  };
  pool_->begin(job);
  std::exception_ptr local_error;
  try {
    run_channels(0, n_workers);
  } catch (...) {
    local_error = std::current_exception();
  }
  pool_->finish();
  if (local_error) std::rethrow_exception(local_error);
}

std::vector<std::vector<IqSample>> ChannelBank::process(
    const std::vector<std::int64_t>& in) {
  std::vector<std::vector<IqSample>> out;
  process_block(in, out);
  return out;
}

void ChannelBank::reset() {
  for (auto& ch : channels_) ch.reset();
}

}  // namespace twiddc::core
