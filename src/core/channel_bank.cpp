#include "src/core/channel_bank.hpp"

#include <algorithm>
#include <exception>
#include <functional>

#include "src/common/error.hpp"

namespace twiddc::core {
namespace {
// Channels are advanced tile by tile so each channel's per-block scratch
// (mixer planar buffers, rail ping-pong buffers) stays cache-resident
// instead of streaming a full block's worth per channel.  Pipelines are
// streaming-composable, so tiling is bit-exact with one monolithic call.
constexpr std::size_t kTileSamples = 8192;
}  // namespace

ChannelBank::ChannelBank(const std::vector<ChainPlan>& plans, int workers) {
  if (plans.empty()) throw ConfigError("ChannelBank: needs at least one plan");
  channels_.reserve(plans.size());
  for (const auto& plan : plans) channels_.emplace_back(plan);
  enabled_.assign(channels_.size(), 1);
  set_workers(workers);
}

ChannelBank::~ChannelBank() = default;
ChannelBank::ChannelBank(ChannelBank&&) noexcept = default;
ChannelBank& ChannelBank::operator=(ChannelBank&&) noexcept = default;

void ChannelBank::set_workers(int workers) {
  workers_ = std::clamp(workers, 1, static_cast<int>(channels_.size()));
  // The pool holds workers_-1 threads; the calling thread works shard 0.
  const int pool_size = workers_ - 1;
  if (pool_ && pool_->threads() != pool_size) pool_.reset();
  if (!pool_ && pool_size > 0) pool_ = std::make_unique<common::WorkerPool>(pool_size);
}

void ChannelBank::process_block(std::span<const std::int64_t> in,
                                std::vector<std::vector<IqSample>>& out) {
  out.resize(channels_.size());
  std::vector<std::size_t> active;
  active.reserve(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c)
    if (enabled_[c]) active.push_back(c);
  if (active.empty() || in.empty()) return;

  // Tile-outer, channel-inner: every enabled channel advances through tile t
  // before any channel starts tile t+1.
  const auto run_channels = [&](std::size_t first, std::size_t stride) {
    for (std::size_t off = 0; off < in.size(); off += kTileSamples) {
      const std::span<const std::int64_t> tile =
          in.subspan(off, std::min(kTileSamples, in.size() - off));
      for (std::size_t k = first; k < active.size(); k += stride)
        channels_[active[k]].process_block(tile, out[active[k]]);
    }
  };

  const auto n_workers =
      static_cast<std::size_t>(std::min<int>(workers_, static_cast<int>(active.size())));
  if (n_workers <= 1 || !pool_) {
    run_channels(0, 1);
    return;
  }

  // Shard the active channels across the pool (pool worker w owns channels
  // w+1, w+1+n, ...) while the caller works shard 0.  Channels are fully
  // independent state machines writing disjoint output vectors, so sharding
  // is bit-exact with serial execution; the only shared read is `in`.
  const std::function<void(int)> job = [&](int w) {
    if (static_cast<std::size_t>(w) + 1 < n_workers)
      run_channels(static_cast<std::size_t>(w) + 1, n_workers);
  };
  pool_->begin(job);
  std::exception_ptr local_error;
  try {
    run_channels(0, n_workers);
  } catch (...) {
    local_error = std::current_exception();
  }
  pool_->finish();
  if (local_error) std::rethrow_exception(local_error);
}

std::vector<std::vector<IqSample>> ChannelBank::process(
    const std::vector<std::int64_t>& in) {
  std::vector<std::vector<IqSample>> out;
  process_block(in, out);
  return out;
}

void ChannelBank::reset() {
  for (auto& ch : channels_) ch.reset();
}

}  // namespace twiddc::core
