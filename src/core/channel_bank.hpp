// twiddc::core -- multi-channel batch engine over the stage pipeline.
//
// A ChannelBank owns N independent DdcPipeline channels (GC4016-style: same
// antenna feed, per-channel NCO/decimation/topology) and processes them all
// against ONE shared input block.  Outputs stay planar (one vector per
// channel), so a channel's stream is contiguous and the block pass touches
// the shared input once per channel while it is hot in cache.
//
// Two execution modes:
//   * workers == 1 (default): channels run back to back on the caller's
//     thread -- deterministic, no synchronisation;
//   * workers > 1: channels are partitioned across a persistent
//     common::WorkerPool (spawned once, woken per block; per-call thread
//     creation is far too expensive on sandboxed hosts).  Channels are
//     fully independent state
//     machines, so sharding is bit-exact with serial execution, in any
//     partition order.
//
// In both modes the block is walked in cache-sized tiles, channel-inner, so
// per-channel scratch buffers stay hot instead of streaming the full block
// once per channel.
//
// The GC4016 quad-channel model (src/asic/gc4016.cpp) is a shim over this
// class; the throughput bench sweeps channel counts through it to track
// scaling.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/worker_pool.hpp"
#include "src/core/pipeline.hpp"

namespace twiddc::core {

class ChannelBank {
 public:
  /// Builds one pipeline per plan.  Throws ConfigError if any plan is
  /// invalid or the list is empty.
  explicit ChannelBank(const std::vector<ChainPlan>& plans, int workers = 1);
  ~ChannelBank();
  ChannelBank(ChannelBank&&) noexcept;
  ChannelBank& operator=(ChannelBank&&) noexcept;
  ChannelBank(const ChannelBank&) = delete;
  ChannelBank& operator=(const ChannelBank&) = delete;

  [[nodiscard]] std::size_t size() const { return channels_.size(); }
  [[nodiscard]] DdcPipeline& channel(std::size_t i) { return channels_.at(i); }
  [[nodiscard]] const DdcPipeline& channel(std::size_t i) const {
    return channels_.at(i);
  }

  /// Disabled channels are skipped by process_block (their state freezes).
  void set_enabled(std::size_t i, bool on) { enabled_.at(i) = on; }
  [[nodiscard]] bool enabled(std::size_t i) const { return enabled_.at(i); }

  /// Worker threads used by process_block (clamped to [1, channels]).
  void set_workers(int workers);
  [[nodiscard]] int workers() const { return workers_; }

  /// Block hot path: runs every enabled channel over the shared input span.
  /// `out` is resized to size(); channel i's outputs are *appended* to
  /// out[i], so a caller can stream blocks into persistent planar buffers.
  /// Bit-exact with calling each channel's process_block serially.
  void process_block(std::span<const std::int64_t> in,
                     std::vector<std::vector<IqSample>>& out);

  /// Convenience wrapper: fresh planar buffers per call.
  std::vector<std::vector<IqSample>> process(const std::vector<std::int64_t>& in);

  void reset();

 private:
  std::vector<DdcPipeline> channels_;
  std::vector<char> enabled_;  // vector<bool> has no per-element data()
  int workers_ = 1;
  std::unique_ptr<common::WorkerPool> pool_;  // workers_ - 1 persistent threads
};

}  // namespace twiddc::core
