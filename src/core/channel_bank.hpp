// twiddc::core -- multi-channel batch engine over the stage pipeline.
//
// A ChannelBank owns N independent DdcPipeline channels (GC4016-style: same
// antenna feed, per-channel NCO/decimation/topology) and processes them all
// against ONE shared input block.  Outputs stay planar (one vector per
// channel), so a channel's stream is contiguous and the block pass touches
// the shared input once per channel while it is hot in cache.
//
// Two execution modes:
//   * workers == 1 (default): channels run back to back on the caller's
//     thread -- deterministic, no synchronisation;
//   * workers > 1: each enabled channel becomes a chain of cache-tile tasks
//     on a persistent common::TaskScheduler (workers-1 threads; the calling
//     thread steals and executes alongside them).  A channel's tiles run in
//     order -- channels are sequential state machines -- but between tiles
//     the continuation sits in a work-stealing deque, so skewed plans
//     (channels with very different decimations) rebalance onto idle
//     workers instead of stalling a static shard at the block barrier.
//     Channels are fully independent, so any interleaving is bit-exact
//     with serial execution.
//
// In both modes the block is walked in cache-sized tiles so per-channel
// scratch buffers stay hot instead of streaming the full block per channel.
//
// Cross-channel SIMD packing: channels whose first stage is a CIC with
// identical geometry are grouped four (AVX2) or eight (AVX-512) at a time,
// and the group's integrator cascades (channels x I/Q) run through
// dsp::CicDecimator::process_block_packed4/packed8 -- one register holding
// every lane's integrator state per cascade stage.  The cascade is a
// loop-carried dependency chain, so it cannot vectorise along time within
// one channel; across channels it packs perfectly.  The NCO and mixer stay
// per-lane (they already vectorise along time through the simd shim).  The
// FIR/polyphase tail stages also pack: stages whose lanes share tap values,
// decimation and phase run through the multi-lane dot kernels
// (dsp::FirDecimator::process_block_packed), so each tap broadcast feeds 4
// or 8 channels' MACs; at the first tail stage that cannot pack
// (mixed geometry, drifted phase, non-FIR kind) the remaining stages run
// per lane via StageChain::process_block_from.  Packed execution is
// bit-exact with the per-channel path, falls back to it when the SIMD tier
// is absent or simd::set_enabled(false) is in force, and skips channels
// with observation taps installed (a split chain cannot feed them).
//
// The GC4016 quad-channel model (src/asic/gc4016.cpp) is a shim over this
// class; the throughput bench sweeps channel counts through it to track
// scaling.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/task_scheduler.hpp"
#include "src/core/pipeline.hpp"

namespace twiddc::core {

class ChannelBank {
 public:
  /// Builds one pipeline per plan.  Throws ConfigError if any plan is
  /// invalid or the list is empty.
  explicit ChannelBank(const std::vector<ChainPlan>& plans, int workers = 1);
  ~ChannelBank();
  ChannelBank(ChannelBank&&) noexcept;
  ChannelBank& operator=(ChannelBank&&) noexcept;
  ChannelBank(const ChannelBank&) = delete;
  ChannelBank& operator=(const ChannelBank&) = delete;

  [[nodiscard]] std::size_t size() const { return channels_.size(); }
  [[nodiscard]] DdcPipeline& channel(std::size_t i) { return channels_.at(i); }
  [[nodiscard]] const DdcPipeline& channel(std::size_t i) const {
    return channels_.at(i);
  }

  /// Disabled channels are skipped by process_block (their state freezes).
  void set_enabled(std::size_t i, bool on) { enabled_.at(i) = on; }
  [[nodiscard]] bool enabled(std::size_t i) const { return enabled_.at(i); }

  /// Worker threads used by process_block (clamped to [1, channels]).
  void set_workers(int workers);
  [[nodiscard]] int workers() const { return workers_; }

  /// The bank's task scheduler (null in serial mode) -- exposed so tests
  /// can assert that tile chains actually migrate between workers.
  [[nodiscard]] const common::TaskScheduler* scheduler() const {
    return sched_.get();
  }

  /// Block hot path: runs every enabled channel over the shared input span.
  /// `out` is resized to size(); channel i's outputs are *appended* to
  /// out[i], so a caller can stream blocks into persistent planar buffers.
  /// Bit-exact with calling each channel's process_block serially.
  void process_block(std::span<const std::int64_t> in,
                     std::vector<std::vector<IqSample>>& out);

  /// Convenience wrapper: fresh planar buffers per call.
  std::vector<std::vector<IqSample>> process(const std::vector<std::int64_t>& in);

  void reset();

  /// Disables cross-channel packing (every unit becomes a single channel);
  /// benches and tests use it to compare packed vs monolithic execution on
  /// one bank.  Bit-exact either way.
  void set_packing(bool on) { packing_ = on; }
  [[nodiscard]] bool packing() const { return packing_; }

 private:
  /// Scratch for one packed unit's tile: per-lane cos/sin, mixed rails, raw
  /// CIC outputs, tail ping-pong and tail-chain outputs.  Tile-sized, reused
  /// across tiles; lanes beyond unit.lanes stay empty.
  struct PackScratch {
    std::vector<std::int32_t> cs[8], sn[8];
    std::vector<std::int64_t> mix_i[8], mix_q[8];
    std::vector<std::int64_t> cic_i[8], cic_q[8];
    std::vector<std::int64_t> tail[8];
    std::vector<std::int64_t> rail_i[8], rail_q[8];
  };
  /// One execution unit of a block pass: a single channel (lanes == 1, the
  /// per-channel path) or a packed group (lanes == 4 or 8, lockstep CIC
  /// lanes).
  struct Unit {
    std::size_t ch[8] = {};
    int lanes = 1;
  };

  /// Partitions the enabled channels into packed groups + singles (octets
  /// only when the runtime AVX-512 tier is up, then quads, then singles).
  [[nodiscard]] std::vector<Unit> make_units();
  /// True when `c` can join a packed quad (first stage is an unpruned CIC,
  /// no observation taps anywhere on the channel).
  [[nodiscard]] bool packable(std::size_t c);

  /// One link of a channel's tile chain: advances `channel` through the
  /// tile at `offset`, then either re-submits itself (on a scheduler
  /// worker: the continuation lands in the deque, where a thief can take
  /// it) or keeps looping inline (the fork-join caller).  Completes /
  /// fails `group` exactly once, at the channel's last tile.
  void run_tile_chain(std::span<const std::int64_t> in,
                      std::vector<IqSample>& out,
                      common::TaskScheduler::Group group, std::size_t channel,
                      std::size_t offset);
  /// Packed analogue of run_tile_chain: advances a quad through one tile per
  /// link, re-submitting the continuation between tiles.
  void run_packed_chain(std::span<const std::int64_t> in,
                        std::vector<std::vector<IqSample>>& out,
                        common::TaskScheduler::Group group, Unit unit,
                        std::size_t offset, PackScratch* scratch);
  /// Advances the group through one tile; bit-exact with running each lane's
  /// DdcPipeline::process_block over the same tile.
  void run_packed_tile(const Unit& unit, std::span<const std::int64_t> tile,
                       std::vector<std::vector<IqSample>>& out,
                       PackScratch& scratch);
  /// Runs rail `r`'s stages [1, end) for every lane of a packed unit,
  /// packing FIR stages across lanes while legal and falling back to
  /// per-lane chains at the first stage that cannot pack.  `cur` holds each
  /// lane's stage-0-conditioned samples, `spare` is ping-pong scratch, and
  /// the rail outputs land in `fin`.
  void run_packed_tail(const Unit& unit, int r, std::vector<std::int64_t>* cur[],
                       std::vector<std::int64_t>* spare[],
                       std::vector<std::int64_t>* fin[]);

  std::vector<DdcPipeline> channels_;
  std::vector<char> enabled_;  // vector<bool> has no per-element data()
  int workers_ = 1;
  bool packing_ = true;
  std::unique_ptr<common::TaskScheduler> sched_;  // workers_ - 1 threads
};

}  // namespace twiddc::core
