#include "src/core/datapath_spec.hpp"

#include <string>

#include "src/common/error.hpp"

namespace twiddc::core {

DatapathSpec DatapathSpec::fpga() {
  DatapathSpec s;
  s.name = "fpga-12bit";
  s.input_bits = 12;
  s.nco_amplitude_bits = 12;
  s.nco_table_bits = 10;
  s.mixer_out_bits = 12;
  s.interstage_bits = 12;
  s.fir_coeff_frac_bits = 11;  // 12-bit coefficients
  s.fir_acc_bits = 31;         // section 5.2.1: 31-bit intermediate result
  s.output_bits = 12;
  return s;
}

DatapathSpec DatapathSpec::wide16() {
  DatapathSpec s;
  s.name = "wide-16bit";
  s.input_bits = 12;
  s.nco_amplitude_bits = 16;
  s.nco_table_bits = 10;
  s.mixer_out_bits = 16;
  s.interstage_bits = 16;
  s.fir_coeff_frac_bits = 15;  // Q1.15
  s.fir_acc_bits = 40;
  s.output_bits = 16;
  return s;
}

DatapathSpec DatapathSpec::ideal() {
  DatapathSpec s;
  s.name = "ideal-fullwidth";
  s.input_bits = 12;
  s.nco_amplitude_bits = 24;
  s.nco_table_bits = 14;
  s.mixer_out_bits = 32;
  s.interstage_bits = 32;
  s.fir_coeff_frac_bits = 23;
  s.fir_acc_bits = 63;
  s.output_bits = 32;
  return s;
}

void DatapathSpec::validate(int fir_taps) const {
  auto in_range = [](int v, int lo, int hi) { return v >= lo && v <= hi; };
  if (!in_range(input_bits, 2, 32))
    throw ConfigError("DatapathSpec: input_bits must be in [2,32]");
  if (!in_range(nco_amplitude_bits, 2, 24))
    throw ConfigError("DatapathSpec: nco_amplitude_bits must be in [2,24]");
  if (!in_range(nco_table_bits, 2, 16))
    throw ConfigError("DatapathSpec: nco_table_bits must be in [2,16]");
  if (!in_range(mixer_out_bits, 2, 48))
    throw ConfigError("DatapathSpec: mixer_out_bits must be in [2,48]");
  if (mixer_out_bits > input_bits + nco_amplitude_bits - 1)
    throw ConfigError("DatapathSpec: mixer_out_bits exceeds the mixer product width");
  if (!in_range(interstage_bits, 2, 48))
    throw ConfigError("DatapathSpec: interstage_bits must be in [2,48]");
  if (!in_range(fir_coeff_frac_bits, 1, 30))
    throw ConfigError("DatapathSpec: fir_coeff_frac_bits must be in [1,30]");
  if (!in_range(output_bits, 2, 48))
    throw ConfigError("DatapathSpec: output_bits must be in [2,48]");
  // Worst-case FIR accumulation: every product at full magnitude.
  // product bits = interstage + (coeff_frac+1) - 1; summing `taps` products
  // adds ceil(log2(taps)) bits.
  const int product_bits = interstage_bits + fir_coeff_frac_bits;
  const int growth = fixed::ceil_log2(fir_taps);
  if (fir_acc_bits < product_bits + growth)
    throw ConfigError("DatapathSpec '" + name + "': fir_acc_bits=" +
                      std::to_string(fir_acc_bits) + " cannot hold " +
                      std::to_string(fir_taps) + " products of " +
                      std::to_string(product_bits) + " bits (need >= " +
                      std::to_string(product_bits + growth) + ")");
  if (fir_acc_bits > 63)
    throw ConfigError("DatapathSpec: fir_acc_bits must be <= 63");
}

}  // namespace twiddc::core
