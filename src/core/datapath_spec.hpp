// twiddc::core -- fixed-point datapath policies for the DDC chain.
//
// The five architectures in the paper implement the *same* rate plan with
// *different* word widths.  DatapathSpec captures those choices so one
// functional model (FixedDdc) can be the bit-exact twin of each hardware
// simulator:
//   - fpga():    12-bit busses between parts, 31-bit FIR accumulator,
//                saturating 12-bit output quantiser (paper section 5.2.1);
//   - wide16():  16-bit words (Montium datapath / int-based C on the ARM),
//                Q1.15 coefficients, 40-bit MAC;
//   - ideal():   full-width everywhere, for quantisation-noise baselines.
#pragma once

#include <string>

#include "src/dsp/nco.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::core {

struct DatapathSpec {
  std::string name = "custom";
  int input_bits = 12;          ///< AD-converter word width
  int nco_amplitude_bits = 12;  ///< sin/cos precision
  int nco_table_bits = 10;      ///< quarter-wave LUT address bits
  dsp::Nco::Mode nco_mode = dsp::Nco::Mode::kLookupTable;
  int mixer_out_bits = 12;      ///< bus width after the mixer
  int interstage_bits = 12;     ///< bus width after each CIC stage
  int fir_coeff_frac_bits = 11; ///< FIR coefficients in Q1.<frac>
  int fir_acc_bits = 31;        ///< FIR accumulator width
  int output_bits = 12;         ///< final output word width
  fixed::Rounding rounding = fixed::Rounding::kTruncate;

  static DatapathSpec fpga();
  static DatapathSpec wide16();
  static DatapathSpec ideal();

  /// Throws ConfigError if widths are inconsistent (e.g. accumulator too
  /// narrow for worst-case FIR growth).
  void validate(int fir_taps) const;
};

}  // namespace twiddc::core
