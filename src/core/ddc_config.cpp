#include "src/core/ddc_config.hpp"

#include <string>

#include "src/common/error.hpp"

namespace twiddc::core {

DdcConfig DdcConfig::reference(double nco_freq_hz) {
  DdcConfig c;
  c.nco_freq_hz = nco_freq_hz;
  c.validate();
  return c;
}

std::vector<StagePlan> DdcConfig::stage_plan() const {
  return {
      {"NCO", input_rate_hz, 0},
      {"CIC" + std::to_string(cic2_stages), input_rate_hz, cic2_decimation},
      {"CIC" + std::to_string(cic5_stages), cic2_output_rate_hz(), cic5_decimation},
      {std::to_string(fir_taps) + " taps FIR", cic5_output_rate_hz(), fir_decimation},
      {"Output", output_rate_hz(), 0},
  };
}

void DdcConfig::validate() const {
  if (input_rate_hz <= 0.0)
    throw ConfigError("DdcConfig: input_rate_hz must be positive");
  if (nco_freq_hz < 0.0 || nco_freq_hz >= input_rate_hz / 2.0)
    throw ConfigError("DdcConfig: nco_freq_hz must be in [0, input_rate/2), got " +
                      std::to_string(nco_freq_hz));
  if (cic2_stages < 1 || cic2_stages > 8)
    throw ConfigError("DdcConfig: cic2_stages must be in [1,8]");
  if (cic5_stages < 1 || cic5_stages > 8)
    throw ConfigError("DdcConfig: cic5_stages must be in [1,8]");
  if (cic2_decimation < 1 || cic2_decimation > 4096)
    throw ConfigError("DdcConfig: cic2_decimation must be in [1,4096]");
  if (cic5_decimation < 1 || cic5_decimation > 4096)
    throw ConfigError("DdcConfig: cic5_decimation must be in [1,4096]");
  if (fir_decimation < 1 || fir_decimation > 64)
    throw ConfigError("DdcConfig: fir_decimation must be in [1,64]");
  if (fir_taps < 1 || fir_taps > 4096)
    throw ConfigError("DdcConfig: fir_taps must be in [1,4096]");
}

}  // namespace twiddc::core
