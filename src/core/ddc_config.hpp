// twiddc::core -- the DDC chain configuration (paper Table 1 / Figure 1).
//
// A DDC is an NCO-driven complex mixer followed by CIC2 -> CIC5 -> FIR
// stages, each decimating.  This struct captures the rate plan; the
// arithmetic details live in DatapathSpec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace twiddc::core {

/// One row of Table 1: a component, the rate it runs at, its decimation.
struct StagePlan {
  std::string component;
  double clock_hz = 0.0;  ///< clock/sample rate at the stage input
  int decimation = 0;     ///< 0 renders as "-" (NCO / output rows)
};

struct DdcConfig {
  double input_rate_hz = 64.512e6;  ///< AD-converter sample rate
  double nco_freq_hz = 10.0e6;      ///< centre of the selected band
  int cic2_stages = 2;
  int cic2_decimation = 16;
  int cic5_stages = 5;
  int cic5_decimation = 21;
  int fir_taps = 125;
  int fir_decimation = 8;

  /// The paper's reference configuration (Table 1), selecting a band around
  /// `nco_freq_hz`.
  static DdcConfig reference(double nco_freq_hz = 10.0e6);

  [[nodiscard]] int total_decimation() const {
    return cic2_decimation * cic5_decimation * fir_decimation;
  }
  [[nodiscard]] double output_rate_hz() const {
    return input_rate_hz / total_decimation();
  }
  [[nodiscard]] double cic2_output_rate_hz() const {
    return input_rate_hz / cic2_decimation;
  }
  [[nodiscard]] double cic5_output_rate_hz() const {
    return cic2_output_rate_hz() / cic5_decimation;
  }

  /// Rows of Table 1 for this configuration.
  [[nodiscard]] std::vector<StagePlan> stage_plan() const;

  /// Throws ConfigError when a parameter is out of the supported range.
  void validate() const;
};

}  // namespace twiddc::core
