#include "src/core/fixed_ddc.hpp"

#include <string>

#include "src/common/error.hpp"
#include "src/dsp/fir_design.hpp"

namespace twiddc::core {
namespace {

dsp::CicDecimator make_cic(int stages, int decimation, int input_bits) {
  dsp::CicDecimator::Config c;
  c.stages = stages;
  c.decimation = decimation;
  c.input_bits = input_bits;
  return dsp::CicDecimator(c);
}

std::vector<std::int64_t> widen(const std::vector<std::int32_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

FixedDdc::FixedDdc(const DdcConfig& config, const DatapathSpec& spec)
    : config_(config),
      spec_(spec),
      nco_([&] {
        config.validate();
        spec.validate(config.fir_taps);
        dsp::Nco::Config nc;
        nc.freq_hz = config.nco_freq_hz;
        nc.sample_rate_hz = config.input_rate_hz;
        nc.amplitude_bits = spec.nco_amplitude_bits;
        nc.table_bits = spec.nco_table_bits;
        nc.mode = spec.nco_mode;
        return dsp::Nco(nc);
      }()),
      mixer_([&] {
        dsp::ComplexMixer::Config mc;
        mc.input_bits = spec.input_bits;
        mc.nco_amplitude_bits = spec.nco_amplitude_bits;
        mc.output_bits = spec.mixer_out_bits;
        mc.rounding = spec.rounding;
        return dsp::ComplexMixer(mc);
      }()) {
  // Coefficients: the reference 125-tap design scaled to the FIR stage's
  // actual rate plan (cutoff just below the output Nyquist).
  const double stage_rate = config_.cic5_output_rate_hz();
  const double cutoff = 0.83 * (config_.output_rate_hz() / 2.0) / stage_rate;
  fir_ideal_ = dsp::design_lowpass(config_.fir_taps, cutoff, dsp::Window::kBlackman);
  fir_taps_ = widen(dsp::quantize_coefficients(fir_ideal_, spec_.fir_coeff_frac_bits));

  for (int r = 0; r < 2; ++r) {
    rails_.push_back(Rail{
        make_cic(config_.cic2_stages, config_.cic2_decimation, spec_.mixer_out_bits),
        make_cic(config_.cic5_stages, config_.cic5_decimation, spec_.interstage_bits),
        dsp::PolyphaseFirDecimator<std::int64_t>(fir_taps_, config_.fir_decimation),
        std::nullopt});
  }
  cic2_shift_ = rails_[0].cic2.growth_bits();
  cic5_shift_ = rails_[0].cic5.growth_bits();
  fir_shift_ = spec_.fir_coeff_frac_bits + (spec_.interstage_bits - spec_.output_bits);
  if (fir_shift_ < 0)
    throw ConfigError("DatapathSpec '" + spec_.name +
                      "': output_bits wider than interstage_bits is not supported");
}

void FixedDdc::reset() {
  nco_.reset();
  for (auto& rail : rails_) {
    rail.cic2.reset();
    rail.cic5.reset();
    rail.fir.reset();
    rail.last_out.reset();
  }
  trace_ = StageTrace{};
  samples_in_ = 0;
  samples_out_ = 0;
}

void FixedDdc::set_tracing(bool enabled) { tracing_ = enabled; }

double FixedDdc::output_scale() const {
  return 1.0 / static_cast<double>(std::int64_t{1} << (spec_.output_bits - 1));
}

void FixedDdc::set_nco_frequency(double freq_hz) {
  if (freq_hz < 0.0 || freq_hz >= config_.input_rate_hz / 2.0)
    throw ConfigError("set_nco_frequency: frequency out of range");
  config_.nco_freq_hz = freq_hz;
  nco_.set_frequency(freq_hz);
}

std::optional<std::int64_t> FixedDdc::advance_rail(Rail& rail, std::int64_t mixed,
                                                   bool trace_this_rail) {
  if (trace_this_rail) trace_.mixer_i.push_back(mixed);

  auto cic2_out = rail.cic2.push(mixed);
  if (!cic2_out) return std::nullopt;
  // Normalise the CIC gain by its bit growth and narrow to the inter-stage
  // bus (saturating; a correctly sized CIC cannot exceed the bound, the
  // saturation guards future spec changes).
  const std::int64_t v2 = fixed::narrow(
      fixed::shift_right(*cic2_out, cic2_shift_, spec_.rounding),
      spec_.interstage_bits, fixed::Overflow::kSaturate);
  if (trace_this_rail) trace_.cic2_i.push_back(v2);

  auto cic5_out = rail.cic5.push(v2);
  if (!cic5_out) return std::nullopt;
  const std::int64_t v5 = fixed::narrow(
      fixed::shift_right(*cic5_out, cic5_shift_, spec_.rounding),
      spec_.interstage_bits, fixed::Overflow::kSaturate);
  if (trace_this_rail) trace_.cic5_i.push_back(v5);

  auto acc = rail.fir.push(v5);
  if (!acc) return std::nullopt;
  // The FIR accumulator holds interstage+coeff_frac fractional bits; shift
  // back to the output format and saturate (the paper's "11 LSBs + sign,
  // with saturation").
  const std::int64_t y = fixed::narrow(
      fixed::shift_right(*acc, fir_shift_, spec_.rounding), spec_.output_bits,
      fixed::Overflow::kSaturate);
  if (trace_this_rail) trace_.fir_i.push_back(y);
  return y;
}

std::optional<IqSample> FixedDdc::push(std::int64_t x) {
  if (!fixed::fits_bits(x, spec_.input_bits))
    throw SimulationError("FixedDdc::push: input " + std::to_string(x) +
                          " does not fit " + std::to_string(spec_.input_bits) + " bits");
  ++samples_in_;
  const dsp::SinCos sc = nco_.next();
  const dsp::Iq mixed = mixer_.mix(x, sc.cos, sc.sin);

  const auto i_out = advance_rail(rails_[0], mixed.i, tracing_);
  const auto q_out = advance_rail(rails_[1], mixed.q, false);
  // The two rails are rate-locked: they decimate identically.
  if (i_out.has_value() != q_out.has_value())
    throw SimulationError("FixedDdc: I/Q rails lost rate lock");
  if (!i_out) return std::nullopt;
  ++samples_out_;
  return IqSample{*i_out, *q_out};
}

std::vector<IqSample> FixedDdc::process(const std::vector<std::int64_t>& in) {
  std::vector<IqSample> out;
  out.reserve(in.size() / static_cast<std::size_t>(config_.total_decimation()) + 1);
  for (std::int64_t x : in) {
    if (auto y = push(x)) out.push_back(*y);
  }
  return out;
}

}  // namespace twiddc::core
