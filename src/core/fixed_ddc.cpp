#include "src/core/fixed_ddc.hpp"

#include <utility>

#include "src/common/error.hpp"

namespace twiddc::core {

FixedDdc::FixedDdc(const DdcConfig& config, const DatapathSpec& spec)
    : config_(config), spec_(spec), pipeline_(ChainPlan::figure1(config, spec)) {}

FixedDdc::FixedDdc(FixedDdc&& other) noexcept
    : config_(std::move(other.config_)),
      spec_(std::move(other.spec_)),
      pipeline_(std::move(other.pipeline_)),
      tracing_(other.tracing_),
      trace_(std::move(other.trace_)) {
  set_tracing(tracing_);  // re-point the taps at this object's trace_
}

FixedDdc& FixedDdc::operator=(FixedDdc&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    spec_ = std::move(other.spec_);
    pipeline_ = std::move(other.pipeline_);
    tracing_ = other.tracing_;
    trace_ = std::move(other.trace_);
    set_tracing(tracing_);
  }
  return *this;
}

void FixedDdc::reset() {
  pipeline_.reset();
  trace_ = StageTrace{};
}

void FixedDdc::set_tracing(bool enabled) {
  tracing_ = enabled;
  auto& rail = pipeline_.rail(0);
  if (enabled) {
    pipeline_.set_mixer_tap(&trace_.mixer_i);
    rail.set_tap(0, &trace_.cic2_i);
    rail.set_tap(1, &trace_.cic5_i);
    rail.set_tap(2, &trace_.fir_i);
  } else {
    pipeline_.set_mixer_tap(nullptr);
    rail.clear_taps();
  }
}

double FixedDdc::output_scale() const {
  return 1.0 / static_cast<double>(std::int64_t{1} << (spec_.output_bits - 1));
}

void FixedDdc::set_nco_frequency(double freq_hz) {
  pipeline_.set_nco_frequency(freq_hz);
  config_.nco_freq_hz = freq_hz;
}

std::optional<IqSample> FixedDdc::push(std::int64_t x) { return pipeline_.push(x); }

void FixedDdc::process_block(std::span<const std::int64_t> in,
                             std::vector<IqSample>& out) {
  pipeline_.process_block(in, out);
}

std::vector<IqSample> FixedDdc::process(const std::vector<std::int64_t>& in) {
  return pipeline_.process(in);
}

}  // namespace twiddc::core
