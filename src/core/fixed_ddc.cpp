#include "src/core/fixed_ddc.hpp"

#include <utility>

#include "src/common/error.hpp"

namespace twiddc::core {

FixedDdc::FixedDdc(const DdcConfig& config, const DatapathSpec& spec)
    : config_(config), spec_(spec), pipeline_(ChainPlan::figure1(config, spec)) {}

namespace {

/// Rates/widths of an arbitrary plan, recast into the config/spec structs
/// the accessors report.  Stage-structure fields that have no equivalent in
/// a non-Figure-1 plan keep their defaults.
DatapathSpec spec_from_plan(const ChainPlan& plan) {
  DatapathSpec s;
  s.name = "plan:" + plan.name;
  s.input_bits = plan.front_end.input_bits;
  s.nco_amplitude_bits = plan.front_end.nco_amplitude_bits;
  s.nco_table_bits = plan.front_end.nco_table_bits;
  s.nco_mode = plan.front_end.nco_mode;
  s.mixer_out_bits = plan.front_end.mixer_out_bits;
  s.rounding = plan.front_end.mixer_rounding;
  s.interstage_bits = plan.front_end.mixer_out_bits;
  s.output_bits = plan_output_bits(plan);
  return s;
}

DdcConfig config_from_plan(const ChainPlan& plan) {
  DdcConfig c;
  c.input_rate_hz = plan.input_rate_hz;
  c.nco_freq_hz = plan.front_end.nco_freq_hz;
  return c;
}

}  // namespace

FixedDdc::FixedDdc(const ChainPlan& plan)
    : config_(config_from_plan(plan)), spec_(spec_from_plan(plan)), pipeline_(plan) {}

void FixedDdc::swap_plan(const ChainPlan& plan, SwapMode mode) {
  pipeline_.swap_plan(plan, mode);
  config_.nco_freq_hz = plan.front_end.nco_freq_hz;
  if (mode == SwapMode::kFlush) {
    // The rails were rebuilt: stage taps are gone, so tracing is off.
    config_ = config_from_plan(plan);
    spec_ = spec_from_plan(plan);
    tracing_ = false;
    trace_ = StageTrace{};
  } else {
    // A splice may change the output conditioning (narrow_bits); keep
    // output_scale() in sync with what the rails now produce.
    spec_.output_bits = plan_output_bits(plan);
  }
}

FixedDdc::FixedDdc(FixedDdc&& other) noexcept
    : config_(std::move(other.config_)),
      spec_(std::move(other.spec_)),
      pipeline_(std::move(other.pipeline_)),
      tracing_(other.tracing_),
      trace_(std::move(other.trace_)) {
  set_tracing(tracing_);  // re-point the taps at this object's trace_
}

FixedDdc& FixedDdc::operator=(FixedDdc&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    spec_ = std::move(other.spec_);
    pipeline_ = std::move(other.pipeline_);
    tracing_ = other.tracing_;
    trace_ = std::move(other.trace_);
    set_tracing(tracing_);
  }
  return *this;
}

void FixedDdc::reset() {
  pipeline_.reset();
  trace_ = StageTrace{};
}

void FixedDdc::set_tracing(bool enabled) {
  tracing_ = enabled;
  auto& rail = pipeline_.rail(0);
  rail.clear_taps();
  if (enabled) {
    // Figure 1 maps the trace points 1:1; arbitrary plans tap the first,
    // second and final stage of whatever chain is running.
    pipeline_.set_mixer_tap(&trace_.mixer_i);
    const std::size_t n = rail.size();
    if (n > 0) rail.set_tap(0, &trace_.cic2_i);
    if (n > 1) rail.set_tap(1, &trace_.cic5_i);
    if (n > 2) rail.set_tap(n - 1, &trace_.fir_i);
  } else {
    pipeline_.set_mixer_tap(nullptr);
  }
}

double FixedDdc::output_scale() const {
  return 1.0 / static_cast<double>(std::int64_t{1} << (spec_.output_bits - 1));
}

void FixedDdc::set_nco_frequency(double freq_hz) {
  pipeline_.set_nco_frequency(freq_hz);
  config_.nco_freq_hz = freq_hz;
}

std::optional<IqSample> FixedDdc::push(std::int64_t x) { return pipeline_.push(x); }

void FixedDdc::process_block(std::span<const std::int64_t> in,
                             std::vector<IqSample>& out) {
  pipeline_.process_block(in, out);
}

std::vector<IqSample> FixedDdc::process(const std::vector<std::int64_t>& in) {
  return pipeline_.process(in);
}

}  // namespace twiddc::core
