// twiddc::core -- the fixed-point reference DDC (paper Figure 1).
//
// One NCO drives two identical rails (in-phase and quadrature):
//
//   x --*--> [x * cos] --> CIC2 (D=16) --> CIC5 (D=21) --> FIR125 (D=8) --> I
//       \--> [x * sin] --> CIC2 (D=16) --> CIC5 (D=21) --> FIR125 (D=8) --> Q
//
// All word widths come from a DatapathSpec, which makes this class the
// bit-exact functional twin of the FPGA RTL model (fpga()), the Montium
// mapping and the GPP program (wide16()).  One output I/Q pair is produced
// every total_decimation() == 2688 input samples.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/datapath_spec.hpp"
#include "src/core/ddc_config.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/fir.hpp"
#include "src/dsp/mixer.hpp"
#include "src/dsp/nco.hpp"

namespace twiddc::core {

/// One complex output sample (raw integers in spec.output_bits).
struct IqSample {
  std::int64_t i = 0;
  std::int64_t q = 0;
  friend bool operator==(const IqSample&, const IqSample&) = default;
};

/// Optional per-stage observation points, filled when tracing is enabled;
/// used by the Figure 1 bench to plot the spectrum after every stage.
struct StageTrace {
  std::vector<std::int64_t> mixer_i;  ///< mixer output, full input rate
  std::vector<std::int64_t> cic2_i;   ///< CIC2 output (normalised), 4.032 MHz
  std::vector<std::int64_t> cic5_i;   ///< CIC5 output (normalised), 192 kHz
  std::vector<std::int64_t> fir_i;    ///< final output, 24 kHz
};

class FixedDdc {
 public:
  FixedDdc(const DdcConfig& config, const DatapathSpec& spec);

  /// Pushes one raw input sample (must fit spec.input_bits; checked) and
  /// returns an output every total_decimation() inputs.
  std::optional<IqSample> push(std::int64_t x);

  /// Feeds a whole block; returns the produced outputs.
  std::vector<IqSample> process(const std::vector<std::int64_t>& in);

  void reset();

  /// Enables (or disables) stage tracing for the in-phase rail.
  void set_tracing(bool enabled);
  [[nodiscard]] const StageTrace& trace() const { return trace_; }

  [[nodiscard]] const DdcConfig& config() const { return config_; }
  [[nodiscard]] const DatapathSpec& spec() const { return spec_; }
  /// The quantised FIR coefficients in Q1.<fir_coeff_frac_bits>.
  [[nodiscard]] const std::vector<std::int64_t>& fir_taps() const { return fir_taps_; }
  /// The ideal (double) coefficients the quantised taps were derived from.
  [[nodiscard]] const std::vector<double>& fir_taps_ideal() const { return fir_ideal_; }
  [[nodiscard]] std::uint64_t samples_in() const { return samples_in_; }
  [[nodiscard]] std::uint64_t samples_out() const { return samples_out_; }
  /// Multiplies full-rate raw output values into normalised doubles
  /// (divide by 2^(output_bits-1)).
  [[nodiscard]] double output_scale() const;

  /// Retunes the NCO (runtime-adjustable, as on every paper architecture).
  void set_nco_frequency(double freq_hz);

 private:
  struct Rail {
    dsp::CicDecimator cic2;
    dsp::CicDecimator cic5;
    dsp::PolyphaseFirDecimator<std::int64_t> fir;
    std::optional<std::int64_t> last_out;
  };

  /// Runs one mixed sample through a rail; returns FIR output when produced.
  std::optional<std::int64_t> advance_rail(Rail& rail, std::int64_t mixed,
                                           bool trace_this_rail);

  DdcConfig config_;
  DatapathSpec spec_;
  dsp::Nco nco_;
  dsp::ComplexMixer mixer_;
  std::vector<std::int64_t> fir_taps_;
  std::vector<double> fir_ideal_;
  std::vector<Rail> rails_;  // [0]=I, [1]=Q
  int cic2_shift_ = 0;
  int cic5_shift_ = 0;
  int fir_shift_ = 0;
  bool tracing_ = false;
  StageTrace trace_;
  std::uint64_t samples_in_ = 0;
  std::uint64_t samples_out_ = 0;
};

}  // namespace twiddc::core
