// twiddc::core -- the fixed-point reference DDC (paper Figure 1).
//
// One NCO drives two identical rails (in-phase and quadrature):
//
//   x --*--> [x * cos] --> CIC2 (D=16) --> CIC5 (D=21) --> FIR125 (D=8) --> I
//       \--> [x * sin] --> CIC2 (D=16) --> CIC5 (D=21) --> FIR125 (D=8) --> Q
//
// All word widths come from a DatapathSpec, which makes this class the
// bit-exact functional twin of the FPGA RTL model (fpga()), the Montium
// mapping and the GPP program (wide16()).  One output I/Q pair is produced
// every total_decimation() == 2688 input samples.
//
// Since the stage-pipeline refactor this class is a thin configuration shim:
// it derives a ChainPlan (ChainPlan::figure1) from its DdcConfig +
// DatapathSpec and delegates all processing to a shared DdcPipeline.  The
// bit-exactness with the pre-pipeline implementation is pinned by
// tests/core/golden_fixed_ddc.inc.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/datapath_spec.hpp"
#include "src/core/ddc_config.hpp"
#include "src/core/pipeline.hpp"

namespace twiddc::core {

/// Optional per-stage observation points, filled when tracing is enabled;
/// used by the Figure 1 bench to plot the spectrum after every stage.
struct StageTrace {
  std::vector<std::int64_t> mixer_i;  ///< mixer output, full input rate
  std::vector<std::int64_t> cic2_i;   ///< CIC2 output (normalised), 4.032 MHz
  std::vector<std::int64_t> cic5_i;   ///< CIC5 output (normalised), 192 kHz
  std::vector<std::int64_t> fir_i;    ///< final output, 24 kHz
};

class FixedDdc {
 public:
  FixedDdc(const DdcConfig& config, const DatapathSpec& spec);

  /// Builds the DDC from an arbitrary ChainPlan (any topology, not just
  /// Figure 1).  The stored DdcConfig/DatapathSpec are synthesised from the
  /// plan's rates and widths; stage tracing taps the first, second and last
  /// stage of the chain.
  explicit FixedDdc(const ChainPlan& plan);

  // Moves must re-point the pipeline's observation taps at the new object's
  // trace_ member; copying is not supported (the pipeline owns unique
  // stages).
  FixedDdc(FixedDdc&& other) noexcept;
  FixedDdc& operator=(FixedDdc&& other) noexcept;
  FixedDdc(const FixedDdc&) = delete;
  FixedDdc& operator=(const FixedDdc&) = delete;

  /// Pushes one raw input sample (must fit spec.input_bits; checked) and
  /// returns an output every total_decimation() inputs.
  std::optional<IqSample> push(std::int64_t x);

  /// Block hot path: bit-exact with a push() loop, substantially faster.
  void process_block(std::span<const std::int64_t> in, std::vector<IqSample>& out);

  /// Feeds a whole block; returns the produced outputs.
  std::vector<IqSample> process(const std::vector<std::int64_t>& in);

  void reset();

  /// Enables (or disables) stage tracing for the in-phase rail.
  void set_tracing(bool enabled);
  [[nodiscard]] const StageTrace& trace() const { return trace_; }

  [[nodiscard]] const DdcConfig& config() const { return config_; }
  [[nodiscard]] const DatapathSpec& spec() const { return spec_; }
  /// The underlying pipeline (shared-architecture access point).
  [[nodiscard]] DdcPipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const DdcPipeline& pipeline() const { return pipeline_; }
  /// The quantised FIR coefficients in Q1.<fir_coeff_frac_bits>.
  [[nodiscard]] const std::vector<std::int64_t>& fir_taps() const {
    return pipeline_.plan().stages.back().taps;
  }
  /// The ideal (double) coefficients the quantised taps were derived from.
  [[nodiscard]] const std::vector<double>& fir_taps_ideal() const {
    return pipeline_.plan().stages.back().taps_float;
  }
  [[nodiscard]] std::uint64_t samples_in() const { return pipeline_.samples_in(); }
  [[nodiscard]] std::uint64_t samples_out() const { return pipeline_.samples_out(); }
  /// Multiplies full-rate raw output values into normalised doubles
  /// (divide by 2^(output_bits-1)).
  [[nodiscard]] double output_scale() const;

  /// Retunes the NCO (runtime-adjustable, as on every paper architecture).
  void set_nco_frequency(double freq_hz);

  /// Runtime reconfiguration onto a new plan (see core::SwapMode for the
  /// glitch contract).  Tracing is disabled by a kFlush swap (the traced
  /// stages no longer exist); re-enable it afterwards if needed.
  void swap_plan(const ChainPlan& plan, SwapMode mode = SwapMode::kFlush);

 private:
  DdcConfig config_;
  DatapathSpec spec_;
  DdcPipeline pipeline_;
  bool tracing_ = false;
  StageTrace trace_;
};

}  // namespace twiddc::core
