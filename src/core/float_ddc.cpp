#include "src/core/float_ddc.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/dsp/nco.hpp"

namespace twiddc::core {
namespace {
constexpr double kTwoPi = 6.28318530717958647692528676655900577;

double quantised_phase_step(double freq_hz, double sample_rate_hz) {
  // Use the NCO's *quantised* tuning frequency so fixed and float chains mix
  // with the identical frequency (a raw-frequency mismatch of a fraction of
  // a hertz would dominate the error over long runs).
  const std::uint32_t word = dsp::PhaseAccumulator::tuning_word(freq_hz, sample_rate_hz);
  return kTwoPi * static_cast<double>(word) * 0x1p-32;
}
}  // namespace

FloatDdc::FloatDdc(const DdcConfig& config) : config_(config) {
  const ChainPlan plan = ChainPlan::figure1_float(config);
  fir_taps_ = plan.stages.back().taps_float;
  rails_.push_back(make_float_rail(plan));
  rails_.push_back(make_float_rail(plan));
  phase_step_ = quantised_phase_step(config_.nco_freq_hz, config_.input_rate_hz);
}

void FloatDdc::reset() {
  for (auto& rail : rails_) rail.reset();
  phase_ = 0.0;
  samples_in_ = 0;
}

void FloatDdc::set_nco_frequency(double freq_hz) {
  if (freq_hz < 0.0 || freq_hz >= config_.input_rate_hz / 2.0)
    throw ConfigError("set_nco_frequency: frequency out of range");
  config_.nco_freq_hz = freq_hz;
  phase_step_ = quantised_phase_step(freq_hz, config_.input_rate_hz);
}

std::optional<std::complex<double>> FloatDdc::push(double x) {
  ++samples_in_;
  const double c = std::cos(phase_);
  const double s = std::sin(phase_);
  phase_ += phase_step_;
  if (phase_ >= kTwoPi) phase_ -= kTwoPi;

  const auto i_out = rails_[0].push(x * c);
  const auto q_out = rails_[1].push(x * s);
  if (i_out.has_value() != q_out.has_value())
    throw SimulationError("FloatDdc: I/Q rails lost rate lock");
  if (!i_out) return std::nullopt;
  // I - jQ: see core::to_complex -- the standard baseband orientation for
  // the paper's I = x*cos, Q = x*sin convention.
  return std::complex<double>(*i_out, -*q_out);
}

void FloatDdc::process_block(std::span<const double> in,
                             std::vector<std::complex<double>>& out) {
  mix_i_.clear();
  mix_q_.clear();
  mix_i_.reserve(in.size());
  mix_q_.reserve(in.size());
  for (double x : in) {
    const double c = std::cos(phase_);
    const double s = std::sin(phase_);
    phase_ += phase_step_;
    if (phase_ >= kTwoPi) phase_ -= kTwoPi;
    mix_i_.push_back(x * c);
    mix_q_.push_back(x * s);
  }
  samples_in_ += in.size();

  out_i_.clear();
  out_q_.clear();
  rails_[0].process_block(mix_i_, out_i_);
  rails_[1].process_block(mix_q_, out_q_);
  if (out_i_.size() != out_q_.size())
    throw SimulationError("FloatDdc: I/Q rails lost rate lock");
  out.reserve(out.size() + out_i_.size());
  for (std::size_t j = 0; j < out_i_.size(); ++j)
    out.push_back(std::complex<double>(out_i_[j], -out_q_[j]));
}

std::vector<std::complex<double>> FloatDdc::process(const std::vector<double>& in) {
  std::vector<std::complex<double>> out;
  out.reserve(in.size() / static_cast<std::size_t>(config_.total_decimation()) + 1);
  process_block(in, out);
  return out;
}

}  // namespace twiddc::core
