#include "src/core/float_ddc.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/nco.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::core {
namespace {
constexpr double kTwoPi = 6.28318530717958647692528676655900577;
}

FloatDdc::FloatDdc(const DdcConfig& config) : config_(config) {
  config.validate();
  const double stage_rate = config_.cic5_output_rate_hz();
  const double cutoff = 0.83 * (config_.output_rate_hz() / 2.0) / stage_rate;
  fir_taps_ = dsp::design_lowpass(config_.fir_taps, cutoff, dsp::Window::kBlackman);

  for (int r = 0; r < 2; ++r) {
    rails_.push_back(Rail{
        dsp::MovingAverageCascade<double>(config_.cic2_stages, config_.cic2_decimation),
        dsp::MovingAverageCascade<double>(config_.cic5_stages, config_.cic5_decimation),
        dsp::PolyphaseFirDecimator<double>(fir_taps_, config_.fir_decimation)});
  }
  // Normalise CIC gain by 2^growth (matching the fixed chain's shifts), not
  // by the exact gain: the two chains then share the same net gain factor
  // gain/2^growth and can be compared sample-by-sample.
  cic2_norm_ = std::ldexp(
      1.0, -fixed::cic_bit_growth(config_.cic2_stages, config_.cic2_decimation));
  cic5_norm_ = std::ldexp(
      1.0, -fixed::cic_bit_growth(config_.cic5_stages, config_.cic5_decimation));
  // Use the NCO's *quantised* tuning frequency so fixed and float chains mix
  // with the identical frequency (a raw-frequency mismatch of a fraction of
  // a hertz would dominate the error over long runs).
  const std::uint32_t word =
      dsp::PhaseAccumulator::tuning_word(config_.nco_freq_hz, config_.input_rate_hz);
  phase_step_ = kTwoPi * static_cast<double>(word) * 0x1p-32;
}

void FloatDdc::reset() {
  for (auto& rail : rails_) {
    rail.cic2.reset();
    rail.cic5.reset();
    rail.fir.reset();
  }
  phase_ = 0.0;
  samples_in_ = 0;
}

std::optional<double> FloatDdc::advance_rail(Rail& rail, double mixed) {
  auto v2 = rail.cic2.push(mixed);
  if (!v2) return std::nullopt;
  auto v5 = rail.cic5.push(*v2 * cic2_norm_);
  if (!v5) return std::nullopt;
  return rail.fir.push(*v5 * cic5_norm_);
}

std::optional<std::complex<double>> FloatDdc::push(double x) {
  ++samples_in_;
  const double c = std::cos(phase_);
  const double s = std::sin(phase_);
  phase_ += phase_step_;
  if (phase_ >= kTwoPi) phase_ -= kTwoPi;

  const auto i_out = advance_rail(rails_[0], x * c);
  const auto q_out = advance_rail(rails_[1], x * s);
  if (i_out.has_value() != q_out.has_value())
    throw SimulationError("FloatDdc: I/Q rails lost rate lock");
  if (!i_out) return std::nullopt;
  // I - jQ: see core::to_complex -- the standard baseband orientation for
  // the paper's I = x*cos, Q = x*sin convention.
  return std::complex<double>(*i_out, -*q_out);
}

std::vector<std::complex<double>> FloatDdc::process(const std::vector<double>& in) {
  std::vector<std::complex<double>> out;
  out.reserve(in.size() / static_cast<std::size_t>(config_.total_decimation()) + 1);
  for (double x : in) {
    if (auto y = push(x)) out.push_back(*y);
  }
  return out;
}

}  // namespace twiddc::core
