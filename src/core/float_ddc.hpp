// twiddc::core -- double-precision golden DDC.
//
// Mirrors FixedDdc's topology and scaling decisions exactly (the CIC gain is
// normalised by 2^growth, as a shift would) but keeps every value in double
// and uses exact sin/cos and unquantised FIR coefficients.  Comparing a
// FixedDdc output stream against this chain isolates the architecture's
// quantisation noise -- the per-datapath SNR reported in EXPERIMENTS.md.
//
// Since the stage-pipeline refactor the rails are float StageChains built
// from the same ChainPlan::figure1 the fixed chain uses (make_float_rail
// swaps each CIC for a moving-average cascade and each shift for a
// power-of-two scale); only the exact-sin/cos front end stays bespoke.
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/ddc_config.hpp"
#include "src/core/pipeline.hpp"

namespace twiddc::core {

class FloatDdc {
 public:
  explicit FloatDdc(const DdcConfig& config);

  /// Pushes one input sample in [-1, 1]; returns an I/Q pair every
  /// total_decimation() inputs.
  std::optional<std::complex<double>> push(double x);

  /// Block hot path: bit-exact with a push() loop.
  void process_block(std::span<const double> in,
                     std::vector<std::complex<double>>& out);

  std::vector<std::complex<double>> process(const std::vector<double>& in);

  void reset();

  /// Retunes the NCO without resetting phase (parity with
  /// FixedDdc::set_nco_frequency; uses the same quantised tuning word).
  void set_nco_frequency(double freq_hz);

  [[nodiscard]] const DdcConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<double>& fir_taps() const { return fir_taps_; }

 private:
  DdcConfig config_;
  std::vector<double> fir_taps_;
  std::vector<StageChain<double>> rails_;  // [0]=I, [1]=Q
  std::vector<double> mix_i_;
  std::vector<double> mix_q_;
  std::vector<double> out_i_;
  std::vector<double> out_q_;
  double phase_ = 0.0;
  double phase_step_ = 0.0;
  std::uint64_t samples_in_ = 0;
};

}  // namespace twiddc::core
