// twiddc::core -- double-precision golden DDC.
//
// Mirrors FixedDdc's topology and scaling decisions exactly (the CIC gain is
// normalised by 2^growth, as a shift would) but keeps every value in double
// and uses exact sin/cos and unquantised FIR coefficients.  Comparing a
// FixedDdc output stream against this chain isolates the architecture's
// quantisation noise -- the per-datapath SNR reported in EXPERIMENTS.md.
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/ddc_config.hpp"
#include "src/dsp/fir.hpp"
#include "src/dsp/moving_average.hpp"

namespace twiddc::core {

class FloatDdc {
 public:
  explicit FloatDdc(const DdcConfig& config);

  /// Pushes one input sample in [-1, 1]; returns an I/Q pair every
  /// total_decimation() inputs.
  std::optional<std::complex<double>> push(double x);

  std::vector<std::complex<double>> process(const std::vector<double>& in);

  void reset();

  [[nodiscard]] const DdcConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<double>& fir_taps() const { return fir_taps_; }

 private:
  struct Rail {
    dsp::MovingAverageCascade<double> cic2;
    dsp::MovingAverageCascade<double> cic5;
    dsp::PolyphaseFirDecimator<double> fir;
  };

  std::optional<double> advance_rail(Rail& rail, double mixed);

  DdcConfig config_;
  std::vector<double> fir_taps_;
  std::vector<Rail> rails_;
  double phase_ = 0.0;
  double phase_step_ = 0.0;
  double cic2_norm_ = 1.0;
  double cic5_norm_ = 1.0;
  std::uint64_t samples_in_ = 0;
};

}  // namespace twiddc::core
