#include "src/core/pipeline.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"
#include "src/core/datapath_spec.hpp"
#include "src/core/ddc_config.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/fir.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/moving_average.hpp"

namespace twiddc::core {
namespace {

// ----------------------------------------------------- fixed rail conditioning

/// Fixed-point stage-output conditioning: shift, round, narrow (saturating).
struct Requantizer {
  int shift = 0;
  int bits = 0;  // 0 = no narrowing
  fixed::Rounding rounding = fixed::Rounding::kTruncate;

  [[nodiscard]] std::int64_t apply(std::int64_t v) const {
    v = fixed::shift_right(v, shift, rounding);
    return bits == 0 ? v : fixed::narrow(v, bits, fixed::Overflow::kSaturate);
  }
};

// -------------------------------------------------------------- fixed stages

class FixedPassthroughStage final : public Stage<std::int64_t> {
 public:
  explicit FixedPassthroughStage(const StageSpec& spec) : label_(spec.label) {}
  std::optional<std::int64_t> push(std::int64_t x) override { return x; }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<std::int64_t>& out) override {
    out.insert(out.end(), in.begin(), in.end());
  }
  [[nodiscard]] bool can_splice(const StageSpec& spec) const override {
    return spec.kind == StageSpec::Kind::kPassthrough;
  }
  void reset() override {}
  [[nodiscard]] int decimation() const override { return 1; }
  [[nodiscard]] const std::string& label() const override { return label_; }

 private:
  std::string label_;
};

class FixedScaleStage final : public Stage<std::int64_t> {
 public:
  explicit FixedScaleStage(const StageSpec& spec)
      : label_(spec.label), req_{spec.post_shift, spec.narrow_bits, spec.rounding} {}
  std::optional<std::int64_t> push(std::int64_t x) override { return req_.apply(x); }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<std::int64_t>& out) override {
    out.reserve(out.size() + in.size());
    for (std::int64_t x : in) out.push_back(req_.apply(x));
  }
  [[nodiscard]] bool can_splice(const StageSpec& spec) const override {
    return spec.kind == StageSpec::Kind::kScale;
  }
  void splice(const StageSpec& spec) override {
    req_ = Requantizer{spec.post_shift, spec.narrow_bits, spec.rounding};
  }
  void reset() override {}
  [[nodiscard]] int decimation() const override { return 1; }
  [[nodiscard]] const std::string& label() const override { return label_; }

 private:
  std::string label_;
  Requantizer req_;
};

class FixedCicStage final : public Stage<std::int64_t> {
 public:
  explicit FixedCicStage(const StageSpec& spec)
      : label_(spec.label),
        cic_([&] {
          dsp::CicDecimator::Config c;
          c.stages = spec.cic_stages;
          c.decimation = spec.decimation;
          c.diff_delay = spec.diff_delay;
          c.input_bits = spec.input_bits;
          c.register_bits = spec.register_bits;
          c.prune_shifts = spec.prune_shifts;
          return dsp::CicDecimator(c);
        }()),
        req_{spec.post_shift, spec.narrow_bits, spec.rounding} {}

  std::optional<std::int64_t> push(std::int64_t x) override {
    auto y = cic_.push(x);
    if (!y) return std::nullopt;
    return req_.apply(*y);
  }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<std::int64_t>& out) override {
    scratch_.clear();
    cic_.process_block(in, scratch_);
    out.reserve(out.size() + scratch_.size());
    for (std::int64_t v : scratch_) out.push_back(req_.apply(v));
  }
  [[nodiscard]] bool can_splice(const StageSpec& spec) const override {
    // The CIC structure (stage count, decimation, register sizing) is the
    // filter; only the output conditioning can change under a splice.
    const auto& c = cic_.config();
    return spec.kind == StageSpec::Kind::kCic && spec.cic_stages == c.stages &&
           spec.decimation == c.decimation && spec.diff_delay == c.diff_delay &&
           spec.input_bits == c.input_bits && spec.register_bits == c.register_bits &&
           spec.prune_shifts == c.prune_shifts;
  }
  void splice(const StageSpec& spec) override {
    req_ = Requantizer{spec.post_shift, spec.narrow_bits, spec.rounding};
  }
  void reset() override { cic_.reset(); }
  [[nodiscard]] int decimation() const override { return cic_.config().decimation; }
  [[nodiscard]] const std::string& label() const override { return label_; }
  [[nodiscard]] dsp::CicDecimator* cic_kernel() override { return &cic_; }

 private:
  std::string label_;
  dsp::CicDecimator cic_;
  Requantizer req_;
  std::vector<std::int64_t> scratch_;
};

template <typename Filter>
class FixedFirStage final : public Stage<std::int64_t> {
 public:
  FixedFirStage(const StageSpec& spec, Filter filter)
      : label_(spec.label),
        kind_(spec.kind),
        fir_(std::move(filter)),
        req_{spec.post_shift, spec.narrow_bits, spec.rounding} {}

  std::optional<std::int64_t> push(std::int64_t x) override {
    auto y = fir_.push(x);
    if (!y) return std::nullopt;
    return req_.apply(*y);
  }
  void process_block(std::span<const std::int64_t> in,
                     std::vector<std::int64_t>& out) override {
    scratch_.clear();
    fir_.process_block(in, scratch_);
    out.reserve(out.size() + scratch_.size());
    for (std::int64_t v : scratch_) out.push_back(req_.apply(v));
  }
  [[nodiscard]] bool can_splice(const StageSpec& spec) const override {
    // Coefficients and conditioning may change; structure (form, decimation,
    // tap count -- the delay-line geometry) may not.
    return spec.kind == kind_ && spec.decimation == fir_.decimation() &&
           spec.taps.size() == fir_.macs_per_output();
  }
  void splice(const StageSpec& spec) override {
    fir_.retap(spec.taps);
    req_ = Requantizer{spec.post_shift, spec.narrow_bits, spec.rounding};
  }
  void reset() override { fir_.reset(); }
  [[nodiscard]] int decimation() const override { return fir_.decimation(); }
  [[nodiscard]] const std::string& label() const override { return label_; }
  [[nodiscard]] dsp::FirDecimator<std::int64_t>* fir_kernel() override {
    if constexpr (std::is_same_v<Filter, dsp::FirDecimator<std::int64_t>>)
      return &fir_;
    else
      return nullptr;
  }
  [[nodiscard]] dsp::PolyphaseFirDecimator<std::int64_t>* polyphase_kernel() override {
    if constexpr (std::is_same_v<Filter, dsp::PolyphaseFirDecimator<std::int64_t>>)
      return &fir_;
    else
      return nullptr;
  }

 private:
  std::string label_;
  StageSpec::Kind kind_;
  Filter fir_;
  Requantizer req_;
  std::vector<std::int64_t> scratch_;
};

// -------------------------------------------------------------- float stages

class FloatPassthroughStage final : public Stage<double> {
 public:
  explicit FloatPassthroughStage(const StageSpec& spec) : label_(spec.label) {}
  std::optional<double> push(double x) override { return x; }
  void process_block(std::span<const double> in, std::vector<double>& out) override {
    out.insert(out.end(), in.begin(), in.end());
  }
  void reset() override {}
  [[nodiscard]] int decimation() const override { return 1; }
  [[nodiscard]] const std::string& label() const override { return label_; }

 private:
  std::string label_;
};

class FloatScaleStage final : public Stage<double> {
 public:
  explicit FloatScaleStage(const StageSpec& spec)
      : label_(spec.label), scale_(spec.post_scale) {}
  std::optional<double> push(double x) override { return x * scale_; }
  void process_block(std::span<const double> in, std::vector<double>& out) override {
    out.reserve(out.size() + in.size());
    for (double x : in) out.push_back(x * scale_);
  }
  void reset() override {}
  [[nodiscard]] int decimation() const override { return 1; }
  [[nodiscard]] const std::string& label() const override { return label_; }

 private:
  std::string label_;
  double scale_;
};

/// Float twin of a CIC: moving-average cascade + gain normalisation.
class FloatCicStage final : public Stage<double> {
 public:
  explicit FloatCicStage(const StageSpec& spec)
      : label_(spec.label),
        ma_(spec.cic_stages, spec.decimation),
        scale_(spec.post_scale) {}

  std::optional<double> push(double x) override {
    auto y = ma_.push(x);
    if (!y) return std::nullopt;
    return *y * scale_;
  }
  void process_block(std::span<const double> in, std::vector<double>& out) override {
    scratch_.clear();
    ma_.process_block(in, scratch_);
    out.reserve(out.size() + scratch_.size());
    for (double v : scratch_) out.push_back(v * scale_);
  }
  void reset() override { ma_.reset(); }
  [[nodiscard]] int decimation() const override { return ma_.decimation(); }
  [[nodiscard]] const std::string& label() const override { return label_; }

 private:
  std::string label_;
  dsp::MovingAverageCascade<double> ma_;
  double scale_;
  std::vector<double> scratch_;
};

template <typename Filter>
class FloatFirStage final : public Stage<double> {
 public:
  FloatFirStage(const StageSpec& spec, Filter filter)
      : label_(spec.label), fir_(std::move(filter)), scale_(spec.post_scale) {}

  std::optional<double> push(double x) override {
    auto y = fir_.push(x);
    if (!y) return std::nullopt;
    return *y * scale_;
  }
  void process_block(std::span<const double> in, std::vector<double>& out) override {
    scratch_.clear();
    fir_.process_block(in, scratch_);
    out.reserve(out.size() + scratch_.size());
    for (double v : scratch_) out.push_back(v * scale_);
  }
  void reset() override { fir_.reset(); }
  [[nodiscard]] int decimation() const override { return fir_.decimation(); }
  [[nodiscard]] const std::string& label() const override { return label_; }

 private:
  std::string label_;
  Filter fir_;
  double scale_;
  std::vector<double> scratch_;
};

}  // namespace

// ------------------------------------------------------------------ StageSpec

StageSpec StageSpec::passthrough(std::string label) {
  StageSpec s;
  s.kind = Kind::kPassthrough;
  s.label = std::move(label);
  return s;
}

StageSpec StageSpec::scale(std::string label, int post_shift, int narrow_bits,
                           fixed::Rounding rounding) {
  StageSpec s;
  s.kind = Kind::kScale;
  s.label = std::move(label);
  s.post_shift = post_shift;
  s.narrow_bits = narrow_bits;
  s.rounding = rounding;
  s.post_scale = std::ldexp(1.0, -post_shift);
  return s;
}

StageSpec StageSpec::cic(std::string label, int stages, int decimation, int input_bits) {
  StageSpec s;
  s.kind = Kind::kCic;
  s.label = std::move(label);
  s.cic_stages = stages;
  s.decimation = decimation;
  s.input_bits = input_bits;
  return s;
}

StageSpec StageSpec::fir(std::string label, std::vector<std::int64_t> taps,
                         std::vector<double> taps_float, int decimation) {
  StageSpec s;
  s.kind = Kind::kFirDecimator;
  s.label = std::move(label);
  s.taps = std::move(taps);
  s.taps_float = std::move(taps_float);
  s.decimation = decimation;
  return s;
}

StageSpec StageSpec::polyphase_fir(std::string label, std::vector<std::int64_t> taps,
                                   std::vector<double> taps_float, int decimation) {
  StageSpec s = fir(std::move(label), std::move(taps), std::move(taps_float), decimation);
  s.kind = Kind::kPolyphaseFir;
  return s;
}

void StageSpec::validate() const {
  const std::string who = "StageSpec '" + label + "'";
  if (decimation < 1)
    throw ConfigError(who + ": decimation must be >= 1, got " +
                      std::to_string(decimation));
  if (post_shift < 0)
    throw ConfigError(who + ": post_shift must be >= 0, got " +
                      std::to_string(post_shift));
  if (narrow_bits < 0 || narrow_bits > 63)
    throw ConfigError(who + ": narrow_bits must be in [0,63], got " +
                      std::to_string(narrow_bits));
  switch (kind) {
    case Kind::kCic:
      if (cic_stages < 1 || cic_stages > 8)
        throw ConfigError(who + ": CIC stages must be in [1,8], got " +
                          std::to_string(cic_stages));
      if (!prune_shifts.empty() &&
          prune_shifts.size() != static_cast<std::size_t>(cic_stages))
        throw ConfigError(who + ": prune_shifts has " +
                          std::to_string(prune_shifts.size()) +
                          " entries but the CIC has " + std::to_string(cic_stages) +
                          " stages (must be empty or one per stage)");
      break;
    case Kind::kFirDecimator:
    case Kind::kPolyphaseFir:
      if (taps.empty() && taps_float.empty())
        throw ConfigError(who + ": FIR stage needs a non-empty tap vector");
      break;
    case Kind::kPassthrough:
    case Kind::kScale:
      if (decimation != 1)
        throw ConfigError(who + ": passthrough/scale stages cannot decimate");
      break;
  }
}

// ------------------------------------------------------------------ ChainPlan

int ChainPlan::total_decimation() const {
  int d = 1;
  for (const auto& s : stages) d *= s.decimation;
  return d;
}

void ChainPlan::validate() const {
  if (input_rate_hz <= 0.0)
    throw ConfigError("ChainPlan '" + name + "': input_rate_hz must be positive");
  if (stages.empty())
    throw ConfigError("ChainPlan '" + name + "': needs at least one stage");
  for (const auto& s : stages) s.validate();
  if (front_end.nco_freq_hz < 0.0 || front_end.nco_freq_hz >= input_rate_hz / 2.0)
    throw ConfigError("ChainPlan '" + name +
                      "': NCO frequency out of [0, input_rate/2)");
}

ChainPlan ChainPlan::figure1(const DdcConfig& config, const DatapathSpec& spec) {
  config.validate();
  spec.validate(config.fir_taps);

  ChainPlan plan;
  plan.name = "figure1:" + spec.name;
  plan.input_rate_hz = config.input_rate_hz;
  plan.front_end.nco_freq_hz = config.nco_freq_hz;
  plan.front_end.nco_amplitude_bits = spec.nco_amplitude_bits;
  plan.front_end.nco_table_bits = spec.nco_table_bits;
  plan.front_end.nco_mode = spec.nco_mode;
  plan.front_end.input_bits = spec.input_bits;
  plan.front_end.mixer_out_bits = spec.mixer_out_bits;
  plan.front_end.mixer_rounding = spec.rounding;

  // CIC stages: normalise the gain by the Hogenauer bit growth and narrow to
  // the inter-stage bus (saturating; a correctly sized CIC cannot exceed the
  // bound, the saturation guards future spec changes).
  StageSpec cic2 = StageSpec::cic("cic2", config.cic2_stages, config.cic2_decimation,
                                  spec.mixer_out_bits);
  cic2.post_shift = fixed::cic_bit_growth(config.cic2_stages, config.cic2_decimation);
  cic2.narrow_bits = spec.interstage_bits;
  cic2.rounding = spec.rounding;
  cic2.post_scale = std::ldexp(1.0, -cic2.post_shift);

  StageSpec cic5 = StageSpec::cic("cic5", config.cic5_stages, config.cic5_decimation,
                                  spec.interstage_bits);
  cic5.post_shift = fixed::cic_bit_growth(config.cic5_stages, config.cic5_decimation);
  cic5.narrow_bits = spec.interstage_bits;
  cic5.rounding = spec.rounding;
  cic5.post_scale = std::ldexp(1.0, -cic5.post_shift);

  // Coefficients: the reference 125-tap design scaled to the FIR stage's
  // actual rate plan (cutoff just below the output Nyquist).
  const double stage_rate = config.cic5_output_rate_hz();
  const double cutoff = 0.83 * (config.output_rate_hz() / 2.0) / stage_rate;
  auto ideal = dsp::design_lowpass(config.fir_taps, cutoff, dsp::Window::kBlackman);
  const auto quantised = dsp::quantize_coefficients(ideal, spec.fir_coeff_frac_bits);

  StageSpec fir = StageSpec::polyphase_fir(
      "fir", std::vector<std::int64_t>(quantised.begin(), quantised.end()),
      std::move(ideal), config.fir_decimation);
  // The FIR accumulator holds interstage+coeff_frac fractional bits; shift
  // back to the output format and saturate (the paper's "11 LSBs + sign,
  // with saturation").
  fir.post_shift = spec.fir_coeff_frac_bits + (spec.interstage_bits - spec.output_bits);
  if (fir.post_shift < 0)
    throw ConfigError("DatapathSpec '" + spec.name +
                      "': output_bits wider than interstage_bits is not supported");
  fir.narrow_bits = spec.output_bits;
  fir.rounding = spec.rounding;
  fir.post_scale = 1.0;  // the float rail's taps are already normalised

  plan.stages = {std::move(cic2), std::move(cic5), std::move(fir)};
  return plan;
}

ChainPlan ChainPlan::figure1_float(const DdcConfig& config) {
  config.validate();

  ChainPlan plan;
  plan.name = "figure1:float";
  plan.input_rate_hz = config.input_rate_hz;
  plan.front_end.nco_freq_hz = config.nco_freq_hz;

  StageSpec cic2 =
      StageSpec::cic("cic2", config.cic2_stages, config.cic2_decimation, 16);
  cic2.post_scale = std::ldexp(
      1.0, -fixed::cic_bit_growth(config.cic2_stages, config.cic2_decimation));

  StageSpec cic5 =
      StageSpec::cic("cic5", config.cic5_stages, config.cic5_decimation, 16);
  cic5.post_scale = std::ldexp(
      1.0, -fixed::cic_bit_growth(config.cic5_stages, config.cic5_decimation));

  const double stage_rate = config.cic5_output_rate_hz();
  const double cutoff = 0.83 * (config.output_rate_hz() / 2.0) / stage_rate;
  StageSpec fir = StageSpec::polyphase_fir(
      "fir", {}, dsp::design_lowpass(config.fir_taps, cutoff, dsp::Window::kBlackman),
      config.fir_decimation);

  plan.stages = {std::move(cic2), std::move(cic5), std::move(fir)};
  return plan;
}

// ----------------------------------------------------------------- factories

std::unique_ptr<Stage<std::int64_t>> make_fixed_stage(const StageSpec& spec) {
  spec.validate();
  switch (spec.kind) {
    case StageSpec::Kind::kPassthrough:
      return std::make_unique<FixedPassthroughStage>(spec);
    case StageSpec::Kind::kScale:
      return std::make_unique<FixedScaleStage>(spec);
    case StageSpec::Kind::kCic:
      return std::make_unique<FixedCicStage>(spec);
    case StageSpec::Kind::kFirDecimator:
      return std::make_unique<FixedFirStage<dsp::FirDecimator<std::int64_t>>>(
          spec, dsp::FirDecimator<std::int64_t>(spec.taps, spec.decimation));
    case StageSpec::Kind::kPolyphaseFir:
      return std::make_unique<FixedFirStage<dsp::PolyphaseFirDecimator<std::int64_t>>>(
          spec, dsp::PolyphaseFirDecimator<std::int64_t>(spec.taps, spec.decimation));
  }
  throw ConfigError("make_fixed_stage: unknown stage kind");
}

std::unique_ptr<Stage<double>> make_float_stage(const StageSpec& spec) {
  spec.validate();
  const std::vector<double> taps =
      spec.taps_float.empty() ? std::vector<double>(spec.taps.begin(), spec.taps.end())
                              : spec.taps_float;
  switch (spec.kind) {
    case StageSpec::Kind::kPassthrough:
      return std::make_unique<FloatPassthroughStage>(spec);
    case StageSpec::Kind::kScale:
      return std::make_unique<FloatScaleStage>(spec);
    case StageSpec::Kind::kCic:
      return std::make_unique<FloatCicStage>(spec);
    case StageSpec::Kind::kFirDecimator:
      return std::make_unique<FloatFirStage<dsp::FirDecimator<double>>>(
          spec, dsp::FirDecimator<double>(taps, spec.decimation));
    case StageSpec::Kind::kPolyphaseFir:
      return std::make_unique<FloatFirStage<dsp::PolyphaseFirDecimator<double>>>(
          spec, dsp::PolyphaseFirDecimator<double>(taps, spec.decimation));
  }
  throw ConfigError("make_float_stage: unknown stage kind");
}

StageChain<std::int64_t> make_fixed_rail(const ChainPlan& plan) {
  std::vector<std::unique_ptr<Stage<std::int64_t>>> stages;
  stages.reserve(plan.stages.size());
  for (const auto& s : plan.stages) stages.push_back(make_fixed_stage(s));
  return StageChain<std::int64_t>(std::move(stages));
}

StageChain<double> make_float_rail(const ChainPlan& plan) {
  std::vector<std::unique_ptr<Stage<double>>> stages;
  stages.reserve(plan.stages.size());
  for (const auto& s : plan.stages) stages.push_back(make_float_stage(s));
  return StageChain<double>(std::move(stages));
}

int plan_output_bits(const ChainPlan& plan) {
  for (auto it = plan.stages.rbegin(); it != plan.stages.rend(); ++it) {
    if (it->narrow_bits != 0) return it->narrow_bits;
  }
  return plan.front_end.mixer_out_bits;
}

double plan_output_scale(const ChainPlan& plan) {
  return 1.0 / static_cast<double>(std::int64_t{1} << (plan_output_bits(plan) - 1));
}

// ----------------------------------------------------------------- StageChain

template <typename T>
StageChain<T>::StageChain(std::vector<std::unique_ptr<Stage<T>>> stages)
    : stages_(std::move(stages)), taps_(stages_.size(), nullptr) {}

template <typename T>
std::optional<T> StageChain<T>::push(T x) {
  T v = x;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    auto y = stages_[i]->push(v);
    if (!y) return std::nullopt;
    v = *y;
    if (taps_[i]) taps_[i]->push_back(v);
  }
  return v;
}

template <typename T>
void StageChain<T>::process_block(std::span<const T> in, std::vector<T>& out) {
  if (stages_.empty()) {
    out.insert(out.end(), in.begin(), in.end());
    return;
  }
  std::span<const T> cur = in;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    std::vector<T>& buf = i % 2 == 0 ? scratch_a_ : scratch_b_;
    buf.clear();
    stages_[i]->process_block(cur, buf);
    if (taps_[i]) taps_[i]->insert(taps_[i]->end(), buf.begin(), buf.end());
    cur = buf;
  }
  out.insert(out.end(), cur.begin(), cur.end());
}

template <typename T>
void StageChain<T>::process_block_from(std::size_t first, std::span<const T> in,
                                       std::vector<T>& out) {
  if (first >= stages_.size()) {
    out.insert(out.end(), in.begin(), in.end());
    return;
  }
  std::span<const T> cur = in;
  for (std::size_t i = first; i < stages_.size(); ++i) {
    std::vector<T>& buf = i % 2 == 0 ? scratch_a_ : scratch_b_;
    buf.clear();
    stages_[i]->process_block(cur, buf);
    if (taps_[i]) taps_[i]->insert(taps_[i]->end(), buf.begin(), buf.end());
    cur = buf;
  }
  out.insert(out.end(), cur.begin(), cur.end());
}

template <typename T>
void StageChain<T>::reset() {
  for (auto& s : stages_) s->reset();
}

template <typename T>
int StageChain<T>::total_decimation() const {
  int d = 1;
  for (const auto& s : stages_) d *= s->decimation();
  return d;
}

template <typename T>
void StageChain<T>::clear_taps() {
  taps_.assign(taps_.size(), nullptr);
}

template <typename T>
bool StageChain<T>::can_splice(const std::vector<StageSpec>& specs) const {
  if (specs.size() != stages_.size()) return false;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (!stages_[i]->can_splice(specs[i])) return false;
  }
  return true;
}

template <typename T>
void StageChain<T>::splice(const std::vector<StageSpec>& specs) {
  if (!can_splice(specs))
    throw ConfigError("StageChain::splice: stage list is structurally "
                      "incompatible with the running chain (use SwapMode::kFlush)");
  for (std::size_t i = 0; i < stages_.size(); ++i) stages_[i]->splice(specs[i]);
}

template class StageChain<std::int64_t>;
template class StageChain<double>;

// ---------------------------------------------------------------- DdcPipeline

DdcPipeline::DdcPipeline(const ChainPlan& plan)
    : plan_([&] {
        plan.validate();
        return plan;
      }()),
      nco_([&] {
        dsp::Nco::Config nc;
        nc.freq_hz = plan_.front_end.nco_freq_hz;
        nc.sample_rate_hz = plan_.input_rate_hz;
        nc.amplitude_bits = plan_.front_end.nco_amplitude_bits;
        nc.table_bits = plan_.front_end.nco_table_bits;
        nc.mode = plan_.front_end.nco_mode;
        return dsp::Nco(nc);
      }()),
      mixer_([&] {
        dsp::ComplexMixer::Config mc;
        mc.input_bits = plan_.front_end.input_bits;
        mc.nco_amplitude_bits = plan_.front_end.nco_amplitude_bits;
        mc.output_bits = plan_.front_end.mixer_out_bits;
        mc.rounding = plan_.front_end.mixer_rounding;
        return dsp::ComplexMixer(mc);
      }()) {
  rails_.push_back(make_fixed_rail(plan_));
  rails_.push_back(make_fixed_rail(plan_));
}

void DdcPipeline::reset() {
  nco_.reset();
  for (auto& rail : rails_) rail.reset();
  samples_in_ = 0;
  samples_out_ = 0;
}

void DdcPipeline::set_nco_frequency(double freq_hz) {
  if (freq_hz < 0.0 || freq_hz >= plan_.input_rate_hz / 2.0)
    throw ConfigError("set_nco_frequency: frequency out of range");
  plan_.front_end.nco_freq_hz = freq_hz;
  nco_.set_frequency(freq_hz);
}

void DdcPipeline::swap_plan(const ChainPlan& plan, SwapMode mode) {
  plan.validate();
  if (mode == SwapMode::kSplice) {
    // Structural compatibility: the front end's datapath may not change
    // (only the mixing frequency), and every stage must accept the new spec
    // with its state intact.  Check everything before touching anything so
    // a rejected splice leaves the old plan running untouched.
    const FrontEndSpec& a = plan_.front_end;
    const FrontEndSpec& b = plan.front_end;
    if (a.nco_amplitude_bits != b.nco_amplitude_bits ||
        a.nco_table_bits != b.nco_table_bits || a.nco_mode != b.nco_mode ||
        a.input_bits != b.input_bits || a.mixer_out_bits != b.mixer_out_bits ||
        a.mixer_rounding != b.mixer_rounding ||
        plan.input_rate_hz != plan_.input_rate_hz)
      throw ConfigError("DdcPipeline::swap_plan(kSplice): front-end datapath "
                        "differs between plans (only the NCO frequency may "
                        "change under a splice; use SwapMode::kFlush)");
    for (auto& rail : rails_) {
      if (!rail.can_splice(plan.stages))
        throw ConfigError("DdcPipeline::swap_plan(kSplice): plan '" + plan.name +
                          "' is structurally incompatible with running plan '" +
                          plan_.name + "' (use SwapMode::kFlush)");
    }
    for (auto& rail : rails_) rail.splice(plan.stages);
    plan_ = plan;
    nco_.set_frequency(plan_.front_end.nco_freq_hz);  // phase-continuous
    return;
  }

  // kFlush: reconfigure as-if freshly constructed.  Rails are rebuilt (so
  // stage observation taps vanish with their stages), the NCO/mixer are
  // rebuilt from the new front end, and the sample counters restart.
  std::vector<StageChain<std::int64_t>> rails;
  rails.push_back(make_fixed_rail(plan));
  rails.push_back(make_fixed_rail(plan));

  dsp::Nco::Config nc;
  nc.freq_hz = plan.front_end.nco_freq_hz;
  nc.sample_rate_hz = plan.input_rate_hz;
  nc.amplitude_bits = plan.front_end.nco_amplitude_bits;
  nc.table_bits = plan.front_end.nco_table_bits;
  nc.mode = plan.front_end.nco_mode;

  dsp::ComplexMixer::Config mc;
  mc.input_bits = plan.front_end.input_bits;
  mc.nco_amplitude_bits = plan.front_end.nco_amplitude_bits;
  mc.output_bits = plan.front_end.mixer_out_bits;
  mc.rounding = plan.front_end.mixer_rounding;
  dsp::ComplexMixer mixer(mc);  // may throw; construct before committing

  plan_ = plan;
  nco_ = dsp::Nco(nc);
  mixer_ = mixer;
  rails_ = std::move(rails);
  mixer_tap_ = nullptr;
  samples_in_ = 0;
  samples_out_ = 0;
}

std::optional<IqSample> DdcPipeline::push(std::int64_t x) {
  if (!fixed::fits_bits(x, plan_.front_end.input_bits))
    throw SimulationError("DdcPipeline::push: input " + std::to_string(x) +
                          " does not fit " +
                          std::to_string(plan_.front_end.input_bits) + " bits");
  ++samples_in_;
  const dsp::SinCos sc = nco_.next();
  const dsp::Iq mixed = mixer_.mix(x, sc.cos, sc.sin);
  if (mixer_tap_) mixer_tap_->push_back(mixed.i);

  const auto i_out = rails_[0].push(mixed.i);
  const auto q_out = rails_[1].push(mixed.q);
  // The two rails are rate-locked: they decimate identically.
  if (i_out.has_value() != q_out.has_value())
    throw SimulationError("DdcPipeline: I/Q rails lost rate lock");
  if (!i_out) return std::nullopt;
  ++samples_out_;
  return IqSample{*i_out, *q_out};
}

void DdcPipeline::process_block(std::span<const std::int64_t> in,
                                std::vector<IqSample>& out) {
  // Validate the whole block up front: a mid-block throw would otherwise
  // leave the NCO advanced past the rails (all-or-nothing semantics).  One
  // min/max sweep replaces the per-sample branch.
  const int input_bits = plan_.front_end.input_bits;
  if (!in.empty()) {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    simd::minmax_i64(in.data(), in.size(), lo, hi);
    if (!fixed::fits_bits(lo, input_bits) || !fixed::fits_bits(hi, input_bits)) {
      const std::int64_t bad = fixed::fits_bits(lo, input_bits) ? hi : lo;
      throw SimulationError("DdcPipeline::process_block: input " + std::to_string(bad) +
                            " does not fit " + std::to_string(input_bits) + " bits");
    }
  }
  cos_.resize(in.size());
  sin_.resize(in.size());
  nco_.next_block(cos_, sin_);
  mix_i_.resize(in.size());
  mix_q_.resize(in.size());
  mixer_.mix_block(in, cos_, sin_, mix_i_, mix_q_);
  if (mixer_tap_) mixer_tap_->insert(mixer_tap_->end(), mix_i_.begin(), mix_i_.end());

  out_i_.clear();
  out_q_.clear();
  rails_[0].process_block(mix_i_, out_i_);
  rails_[1].process_block(mix_q_, out_q_);
  if (out_i_.size() != out_q_.size())
    throw SimulationError("DdcPipeline: I/Q rails lost rate lock");

  out.reserve(out.size() + out_i_.size());
  for (std::size_t j = 0; j < out_i_.size(); ++j)
    out.push_back(IqSample{out_i_[j], out_q_[j]});
  samples_in_ += in.size();
  samples_out_ += out_i_.size();
}

std::vector<IqSample> DdcPipeline::process(const std::vector<std::int64_t>& in) {
  std::vector<IqSample> out;
  out.reserve(in.size() / static_cast<std::size_t>(total_decimation()) + 1);
  process_block(in, out);
  return out;
}

}  // namespace twiddc::core
