// twiddc::core -- the composable stage-pipeline layer.
//
// The paper's observation is that one DDC dataflow (NCO/mixer -> CIC stages
// -> FIR) is realised by four very different architectures.  This layer makes
// the dataflow *data* instead of code:
//
//   StageSpec   -- a declarative description of one decimating stage (CIC,
//                  FIR, polyphase FIR, scale, passthrough) including its
//                  fixed-point output conditioning (shift/narrow/round) and
//                  its float-rail equivalent (a scale factor);
//   ChainPlan   -- an ordered list of StageSpecs plus the NCO/mixer front
//                  end; ChainPlan::figure1() derives the paper's reference
//                  topology from a DdcConfig + DatapathSpec, and arbitrary
//                  topologies (GC4016 Figure 4 CIC5->CFIR->PFIR, DRM/GSM
//                  plans) are built from the same vocabulary;
//   Stage<T>    -- the runtime interface: per-sample push() plus a
//                  block-based process_block() hot path that amortises the
//                  per-sample std::optional and virtual-dispatch overhead;
//   StageChain<T> -- an ordered chain of stages with per-stage observation
//                  taps (used for Figure 1 stage tracing);
//   DdcPipeline -- NCO + complex mixer feeding two rate-locked rails.
//
// FixedDdc, FloatDdc and the Gc4016 channel are thin configuration shims
// over this layer; they stay bit-exact with their pre-pipeline versions
// (pinned by tests/core/golden_fixed_ddc.inc).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/dsp/mixer.hpp"
#include "src/dsp/nco.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::dsp {
class CicDecimator;
template <typename T>
class FirDecimator;
template <typename T>
class PolyphaseFirDecimator;
}  // namespace twiddc::dsp

namespace twiddc::core {

/// One complex output sample (raw integers in the plan's output width).
struct IqSample {
  std::int64_t i = 0;
  std::int64_t q = 0;
  friend bool operator==(const IqSample&, const IqSample&) = default;
};

// ------------------------------------------------------------------ planning

/// Declarative description of one rail stage.  The fixed-point rail applies
/// `y = narrow(shift_right(raw, post_shift, rounding), narrow_bits)` to each
/// raw stage output; the float rail multiplies by `post_scale` instead.
struct StageSpec {
  enum class Kind { kPassthrough, kScale, kCic, kFirDecimator, kPolyphaseFir };

  Kind kind = Kind::kPassthrough;
  std::string label = "stage";
  int decimation = 1;

  // kCic only.
  int cic_stages = 1;
  int diff_delay = 1;
  int input_bits = 16;    ///< register sizing (Hogenauer width = input + growth)
  int register_bits = 0;  ///< 0 = automatic full Hogenauer width
  std::vector<int> prune_shifts;

  // kFirDecimator / kPolyphaseFir only.
  std::vector<std::int64_t> taps;  ///< quantised taps (fixed rail)
  std::vector<double> taps_float;  ///< ideal taps (float rail)

  // Output conditioning.
  int post_shift = 0;
  int narrow_bits = 0;  ///< 0 = keep the full accumulator width
  fixed::Rounding rounding = fixed::Rounding::kTruncate;
  double post_scale = 1.0;  ///< float-rail equivalent of post_shift

  static StageSpec passthrough(std::string label = "pass");
  static StageSpec scale(std::string label, int post_shift, int narrow_bits,
                         fixed::Rounding rounding = fixed::Rounding::kTruncate);
  static StageSpec cic(std::string label, int stages, int decimation, int input_bits);
  static StageSpec fir(std::string label, std::vector<std::int64_t> taps,
                       std::vector<double> taps_float, int decimation);
  static StageSpec polyphase_fir(std::string label, std::vector<std::int64_t> taps,
                                 std::vector<double> taps_float, int decimation);

  /// Throws ConfigError naming `label` when the spec is inconsistent (e.g.
  /// prune_shifts size != cic_stages, empty taps, negative shift).
  void validate() const;
};

/// The NCO + complex-mixer front end shared by both rails.
struct FrontEndSpec {
  double nco_freq_hz = 0.0;
  int nco_amplitude_bits = 16;
  int nco_table_bits = 10;
  dsp::Nco::Mode nco_mode = dsp::Nco::Mode::kLookupTable;
  int input_bits = 12;
  int mixer_out_bits = 16;
  fixed::Rounding mixer_rounding = fixed::Rounding::kTruncate;
};

struct DdcConfig;
struct DatapathSpec;

/// A complete DDC topology: front end + ordered rail stages.  Plans are
/// plain data -- build them from the named constructors, from
/// ChainPlan::figure1(), or field by field for custom topologies.
struct ChainPlan {
  std::string name = "custom";
  double input_rate_hz = 0.0;
  FrontEndSpec front_end;
  std::vector<StageSpec> stages;

  [[nodiscard]] int total_decimation() const;
  [[nodiscard]] double output_rate_hz() const {
    return input_rate_hz / total_decimation();
  }
  /// Throws ConfigError when the plan is inconsistent.
  void validate() const;

  /// The paper's Figure 1 topology (mixer -> CIC2 -> CIC5 -> polyphase FIR)
  /// for the given rate plan and datapath widths.  Designs and quantises the
  /// FIR coefficients exactly as the pre-pipeline FixedDdc did.
  static ChainPlan figure1(const DdcConfig& config, const DatapathSpec& spec);

  /// Float-rail-only view of the Figure 1 topology: ideal (unquantised) FIR
  /// taps and 2^-growth CIC scales, no fixed-point datapath constraints.
  /// Feed to make_float_rail; the fixed-only fields stay at defaults.
  static ChainPlan figure1_float(const DdcConfig& config);
};

// ------------------------------------------------------------------- runtime

/// Output-glitch contract of a runtime plan swap (see DESIGN.md).
///
/// kFlush -- always available.  The pipeline is reconfigured as-if freshly
/// constructed from the new plan: every filter state, decimation counter
/// and the NCO phase is discarded, and the sample counters restart.  The
/// glitch is a clean gap: no output mixes the two plans, and the first
/// outputs after the swap are the new chain's settling transient (its group
/// delay), exactly as a fresh pipeline would produce.
///
/// kSplice -- only for structurally compatible plans (same stage kinds,
/// decimations, CIC geometry and tap counts; only coefficients, output
/// conditioning and the NCO frequency may change).  All filter state is
/// kept, so the output stream continues at the same cadence with no gap;
/// the glitch is a transient where pre-swap history is convolved with the
/// new coefficients.  Once the new-plan samples have flushed the filter
/// histories, outputs are bit-exact with a chain that ran the new plan all
/// along.  Incompatible plans throw ConfigError and leave the old plan
/// running.
enum class SwapMode { kFlush, kSplice };

/// Runtime interface of one rail stage.
template <typename T>
class Stage {
 public:
  virtual ~Stage() = default;

  /// Pushes one sample; returns an output every decimation() inputs.
  virtual std::optional<T> push(T x) = 0;

  /// Block hot path: consumes all of `in`, appends produced outputs to
  /// `out`.  Must be bit-exact with a push() loop.  The default does exactly
  /// that; concrete stages override it with tighter loops.
  virtual void process_block(std::span<const T> in, std::vector<T>& out) {
    for (T x : in) {
      if (auto y = push(x)) out.push_back(*y);
    }
  }

  /// True when splice(spec) would succeed: `spec` describes the same stage
  /// structure (kind, decimation, filter geometry) and differs only in
  /// coefficients or output conditioning.
  [[nodiscard]] virtual bool can_splice(const StageSpec& spec) const {
    (void)spec;
    return false;
  }
  /// State-preserving reconfiguration (the SwapMode::kSplice leg).  Only
  /// called after can_splice(spec) returned true.
  virtual void splice(const StageSpec& spec) { (void)spec; }

  virtual void reset() = 0;
  [[nodiscard]] virtual int decimation() const = 0;
  [[nodiscard]] virtual const std::string& label() const = 0;

  /// Packed-execution hook: the stage's CIC kernel when (and only when) the
  /// stage is a fixed-point CIC decimator, else nullptr.  ChannelBank uses
  /// it to run 4 channels' integrator cascades per AVX2 register; mutating
  /// the kernel through this pointer is equivalent to feeding the stage the
  /// same samples minus the stage's output conditioning.
  [[nodiscard]] virtual dsp::CicDecimator* cic_kernel() { return nullptr; }

  /// Packed-execution hooks for the FIR tail: the stage's fixed-point
  /// decimating-FIR (resp. polyphase) kernel when the stage wraps one, else
  /// nullptr.  ChannelBank uses them to run 4/8 channels' tap sets through
  /// the multi-lane dot kernels (FirDecimator::process_block_packed); as with
  /// cic_kernel, driving the kernel directly bypasses the stage's output
  /// conditioning, which the packed caller must then apply itself.
  [[nodiscard]] virtual dsp::FirDecimator<std::int64_t>* fir_kernel() {
    return nullptr;
  }
  [[nodiscard]] virtual dsp::PolyphaseFirDecimator<std::int64_t>* polyphase_kernel() {
    return nullptr;
  }
};

/// Builds the fixed-point (int64) realisation of a stage spec.
std::unique_ptr<Stage<std::int64_t>> make_fixed_stage(const StageSpec& spec);
/// Builds the float realisation (CIC becomes a moving-average cascade,
/// conditioning becomes a multiply by post_scale, taps_float are used).
std::unique_ptr<Stage<double>> make_float_stage(const StageSpec& spec);

/// An ordered chain of stages of one rail, with optional per-stage
/// observation taps (stage i's outputs are appended to the registered sink).
template <typename T>
class StageChain {
 public:
  StageChain() = default;
  explicit StageChain(std::vector<std::unique_ptr<Stage<T>>> stages);

  std::optional<T> push(T x);
  /// Block hot path: runs the whole block stage by stage through ping-pong
  /// scratch buffers; appends the final stage's outputs to `out`.
  void process_block(std::span<const T> in, std::vector<T>& out);
  void reset();

  [[nodiscard]] std::size_t size() const { return stages_.size(); }
  [[nodiscard]] Stage<T>& stage(std::size_t i) { return *stages_.at(i); }
  [[nodiscard]] const Stage<T>& stage(std::size_t i) const { return *stages_.at(i); }
  [[nodiscard]] int total_decimation() const;

  /// Registers (or clears, with nullptr) the observation tap of stage `i`.
  void set_tap(std::size_t i, std::vector<T>* sink) { taps_.at(i) = sink; }
  void clear_taps();
  [[nodiscard]] bool has_taps() const {
    for (const auto* t : taps_)
      if (t) return true;
    return false;
  }

  /// Packed-execution hook: process_block starting at stage `first` -- the
  /// caller has already run stages [0, first) itself (e.g. the cross-channel
  /// packed CIC).  Taps of the skipped stages are NOT fed; callers must
  /// check has_taps() before splitting a chain.
  void process_block_from(std::size_t first, std::span<const T> in,
                          std::vector<T>& out);

  /// True when every stage can splice to the matching spec (same count,
  /// structurally compatible stage by stage).
  [[nodiscard]] bool can_splice(const std::vector<StageSpec>& specs) const;
  /// Applies a state-preserving reconfiguration; call can_splice first
  /// (all-or-nothing: nothing is modified when any stage is incompatible,
  /// and ConfigError is thrown).
  void splice(const std::vector<StageSpec>& specs);

 private:
  std::vector<std::unique_ptr<Stage<T>>> stages_;
  std::vector<std::vector<T>*> taps_;
  std::vector<T> scratch_a_;
  std::vector<T> scratch_b_;
};

extern template class StageChain<std::int64_t>;
extern template class StageChain<double>;

/// Builds one rail (a StageChain) from a plan's stage list.
StageChain<std::int64_t> make_fixed_rail(const ChainPlan& plan);
StageChain<double> make_float_rail(const ChainPlan& plan);

/// Output word width of a plan: the narrow_bits of the last narrowing
/// stage, falling back to the mixer bus width for plans that never narrow.
int plan_output_bits(const ChainPlan& plan);
/// Multiplies raw plan outputs into normalised doubles:
/// 1 / 2^(plan_output_bits - 1).
double plan_output_scale(const ChainPlan& plan);

/// The full fixed-point DDC: NCO + mixer front end feeding two rate-locked
/// rails built from a ChainPlan.
class DdcPipeline {
 public:
  explicit DdcPipeline(const ChainPlan& plan);

  /// Pushes one raw input sample (must fit front_end.input_bits; checked)
  /// and returns an output every total_decimation() inputs.
  std::optional<IqSample> push(std::int64_t x);

  /// Block hot path: mixes the whole block, then runs each rail block-wise.
  /// Bit-exact with a push() loop, ~2x+ faster on the Figure 1 chain.
  void process_block(std::span<const std::int64_t> in, std::vector<IqSample>& out);

  /// Convenience wrapper over process_block().
  std::vector<IqSample> process(const std::vector<std::int64_t>& in);

  void reset();

  /// Retunes the NCO without resetting phase.
  void set_nco_frequency(double freq_hz);

  /// Runtime reconfiguration onto a new plan; see SwapMode for the
  /// output-glitch contract of each mode.  Throws ConfigError (leaving the
  /// current plan running) when the new plan is invalid or, for kSplice,
  /// structurally incompatible.  Observation taps are cleared on kFlush
  /// (stage count may change) and kept on kSplice.
  void swap_plan(const ChainPlan& plan, SwapMode mode = SwapMode::kFlush);

  [[nodiscard]] const ChainPlan& plan() const { return plan_; }
  [[nodiscard]] int total_decimation() const { return plan_.total_decimation(); }
  [[nodiscard]] StageChain<std::int64_t>& rail(int r) {
    return rails_.at(static_cast<std::size_t>(r));
  }
  [[nodiscard]] const dsp::Nco& nco() const { return nco_; }
  [[nodiscard]] std::uint64_t samples_in() const { return samples_in_; }
  [[nodiscard]] std::uint64_t samples_out() const { return samples_out_; }

  /// Observation tap for the in-phase mixer output (nullptr disables).
  void set_mixer_tap(std::vector<std::int64_t>* sink) { mixer_tap_ = sink; }

  // Packed-execution hooks (core::ChannelBank cross-channel kernels).  A
  // packed caller drives the front end itself -- nco().next_block + the
  // shared mixer -- runs stage 0 through the stages' cic_kernel()s, and
  // finishes each rail with rail(r).process_block_from(1, ...).  It must
  // then call note_packed_block so the sample counters stay equivalent to a
  // process_block call.
  [[nodiscard]] dsp::Nco& nco() { return nco_; }
  [[nodiscard]] const dsp::ComplexMixer& mixer() const { return mixer_; }
  [[nodiscard]] bool has_mixer_tap() const { return mixer_tap_ != nullptr; }
  void note_packed_block(std::uint64_t in, std::uint64_t out) {
    samples_in_ += in;
    samples_out_ += out;
  }

 private:
  ChainPlan plan_;
  dsp::Nco nco_;
  dsp::ComplexMixer mixer_;
  std::vector<StageChain<std::int64_t>> rails_;  // [0]=I, [1]=Q
  std::vector<std::int64_t>* mixer_tap_ = nullptr;
  std::vector<std::int32_t> cos_;
  std::vector<std::int32_t> sin_;
  std::vector<std::int64_t> mix_i_;
  std::vector<std::int64_t> mix_q_;
  std::vector<std::int64_t> out_i_;
  std::vector<std::int64_t> out_q_;
  std::uint64_t samples_in_ = 0;
  std::uint64_t samples_out_ = 0;
};

}  // namespace twiddc::core
