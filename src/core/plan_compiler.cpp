#include "src/core/plan_compiler.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"
#include "src/common/trace.hpp"
#include "src/dsp/mixer.hpp"
#include "src/dsp/nco.hpp"

namespace twiddc::core {
namespace {

// Fused tiles are sized so one tile's worth of every intermediate (cos/sin
// int32, two mixed rails, the rail ping-pong buffers) stays L1/L2-resident:
// ~40 KB total at 1024 samples.  The staged path materialises the same
// intermediates at full block size (a megabyte at the bench's 43k-sample
// blocks), which is what the fusion removes.
constexpr std::size_t kFuseTileSamples = 1024;

void append_u64(std::string& s, std::uint64_t v) {
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = hex[v & 0xf];
    v >>= 4;
  }
  buf[16] = '\0';
  s += buf;
  s += '.';
}

void append_i64(std::string& s, std::int64_t v) {
  append_u64(s, static_cast<std::uint64_t>(v));
}

void append_double_bits(std::string& s, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  append_u64(s, bits);
}

/// Serialises one plan into a key.  `structural` drops the fields a
/// SwapMode::kSplice may change (tuning word, coefficient values, output
/// conditioning) but keeps everything the splice contract requires to be
/// equal -- byte-equal keys == splice-compatible, the same checks
/// DdcPipeline::swap_plan and the Stage::can_splice overrides perform.
std::string plan_key(const ChainPlan& plan, bool structural) {
  std::string key = structural ? "s1." : "c1.";
  const FrontEndSpec& fe = plan.front_end;
  append_double_bits(key, plan.input_rate_hz);
  append_i64(key, fe.nco_amplitude_bits);
  append_i64(key, fe.nco_table_bits);
  append_i64(key, static_cast<int>(fe.nco_mode));
  append_i64(key, fe.input_bits);
  append_i64(key, fe.mixer_out_bits);
  append_i64(key, static_cast<int>(fe.mixer_rounding));
  if (!structural)
    append_u64(key, dsp::PhaseAccumulator::tuning_word(fe.nco_freq_hz,
                                                       plan.input_rate_hz));
  for (const StageSpec& st : plan.stages) {
    key += '|';
    append_i64(key, static_cast<int>(st.kind));
    append_i64(key, st.decimation);
    if (st.kind == StageSpec::Kind::kCic) {
      append_i64(key, st.cic_stages);
      append_i64(key, st.diff_delay);
      append_i64(key, st.input_bits);
      append_i64(key, st.register_bits);
      for (int p : st.prune_shifts) append_i64(key, p);
    }
    if (st.kind == StageSpec::Kind::kFirDecimator ||
        st.kind == StageSpec::Kind::kPolyphaseFir) {
      append_u64(key, st.taps.size());
      if (!structural)
        for (std::int64_t t : st.taps) append_i64(key, t);
    }
    if (!structural) {
      append_i64(key, st.post_shift);
      append_i64(key, st.narrow_bits);
      append_i64(key, static_cast<int>(st.rounding));
    }
  }
  return key;
}

/// Initial lowering policy from the environment ("mac" | "da" | anything
/// else = auto); set_fir_lowering_policy overrides at runtime.
FirLoweringPolicy policy_from_env() {
  const char* e = std::getenv("TWIDDC_FIR_LOWERING");
  if (e == nullptr) return FirLoweringPolicy::kAuto;
  const std::string v(e);
  if (v == "mac") return FirLoweringPolicy::kForceMac;
  if (v == "da") return FirLoweringPolicy::kForceDa;
  return FirLoweringPolicy::kAuto;
}

std::atomic<FirLoweringPolicy>& policy_cell() {
  static std::atomic<FirLoweringPolicy> policy{policy_from_env()};
  return policy;
}

}  // namespace

FirLoweringPolicy fir_lowering_policy() {
  return policy_cell().load(std::memory_order_relaxed);
}

void set_fir_lowering_policy(FirLoweringPolicy policy) {
  policy_cell().store(policy, std::memory_order_relaxed);
}

// ------------------------------------------------------------------- TapSet

TapSet::TapSet(const std::vector<std::int64_t>& taps)
    : forward(taps),
      reversed(taps.rbegin(), taps.rend()),
      fits_i32(simd::all_fit_i32(taps.data(), taps.size())) {}

// ---------------------------------------------------------------- CoeffPool

CoeffPool& CoeffPool::instance() {
  static CoeffPool pool;
  return pool;
}

std::shared_ptr<const TapSet> CoeffPool::taps(const std::vector<std::int64_t>& taps) {
  // Content-addressed: the raw bytes of the quantised coefficients.
  std::string key(reinterpret_cast<const char*>(taps.data()),
                  taps.size() * sizeof(std::int64_t));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.tap_requests;
  auto it = taps_.find(key);
  if (it != taps_.end()) {
    if (auto held = it->second.lock()) {
      ++stats_.tap_hits;
      return held;
    }
  }
  auto made = std::make_shared<const TapSet>(taps);
  taps_[std::move(key)] = made;
  // Weak entries outlive their artifacts; sweep the corpses occasionally so
  // a long-running process cycling through random plans stays bounded.
  if (taps_.size() > 256) {
    for (auto e = taps_.begin(); e != taps_.end();)
      e = e->second.expired() ? taps_.erase(e) : std::next(e);
  }
  return made;
}

std::shared_ptr<const std::vector<std::int32_t>> CoeffPool::sine_table(
    int table_bits, int amplitude_bits) {
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                                table_bits))
                             << 32) |
                            static_cast<std::uint32_t>(amplitude_bits);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.table_requests;
  auto it = tables_.find(key);
  if (it != tables_.end()) {
    if (auto held = it->second.lock()) {
      ++stats_.table_hits;
      return held;
    }
  }
  auto made = std::make_shared<const std::vector<std::int32_t>>(
      dsp::make_quarter_sine_table(table_bits, amplitude_bits));
  tables_[key] = made;
  return made;
}

std::shared_ptr<const std::vector<std::int64_t>> CoeffPool::da_tables(
    const std::vector<std::int64_t>& rev_taps) {
  std::string key(reinterpret_cast<const char*>(rev_taps.data()),
                  rev_taps.size() * sizeof(std::int64_t));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.da_requests;
  auto it = da_tables_.find(key);
  if (it != da_tables_.end()) {
    if (auto held = it->second.lock()) {
      ++stats_.da_hits;
      return held;
    }
  }
  auto made = std::make_shared<const std::vector<std::int64_t>>(
      dsp::DaFirEngine::build_tables(rev_taps));
  da_tables_[std::move(key)] = made;
  if (da_tables_.size() > 256) {
    for (auto e = da_tables_.begin(); e != da_tables_.end();)
      e = e->second.expired() ? da_tables_.erase(e) : std::next(e);
  }
  return made;
}

CoeffPool::Stats CoeffPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --------------------------------------------------------------------- keys

std::string canonical_plan_key(const ChainPlan& plan) {
  return plan_key(plan, /*structural=*/false);
}

std::string structural_plan_key(const ChainPlan& plan) {
  return plan_key(plan, /*structural=*/true);
}

// ------------------------------------------------------------- CompiledPlan

CompiledPlan::CompiledPlan(const ChainPlan& plan) : plan_(plan) {
  plan_.validate();
  // Deep-validate exactly what execution will need, so configure() fails
  // here (typed, nothing cached) rather than mid-stream: the mixer's shift
  // must be non-negative, every CIC geometry must be realisable, and the
  // fixed rail needs quantised taps.
  {
    dsp::ComplexMixer::Config mc;
    mc.input_bits = plan_.front_end.input_bits;
    mc.nco_amplitude_bits = plan_.front_end.nco_amplitude_bits;
    mc.output_bits = plan_.front_end.mixer_out_bits;
    mc.rounding = plan_.front_end.mixer_rounding;
    dsp::ComplexMixer probe(mc);
    (void)probe;
  }
  for (const StageSpec& st : plan_.stages) {
    if (st.kind == StageSpec::Kind::kCic) {
      dsp::CicDecimator::Config c;
      c.stages = st.cic_stages;
      c.decimation = st.decimation;
      c.diff_delay = st.diff_delay;
      c.input_bits = st.input_bits;
      c.register_bits = st.register_bits;
      c.prune_shifts = st.prune_shifts;
      dsp::CicDecimator probe(c);
      (void)probe;
    }
    if ((st.kind == StageSpec::Kind::kFirDecimator ||
         st.kind == StageSpec::Kind::kPolyphaseFir) &&
        st.taps.empty())
      throw ConfigError("CompiledPlan: stage '" + st.label +
                        "' has no quantised taps (fixed-rail execution "
                        "needs StageSpec::taps)");
  }

  tuning_word_ = dsp::PhaseAccumulator::tuning_word(plan_.front_end.nco_freq_hz,
                                                    plan_.input_rate_hz);
  canonical_key_ = canonical_plan_key(plan_);
  structural_key_ = structural_plan_key(plan_);

  if (plan_.front_end.nco_mode == dsp::Nco::Mode::kLookupTable)
    sine_table_ = CoeffPool::instance().sine_table(plan_.front_end.nco_table_bits,
                                                   plan_.front_end.nco_amplitude_bits);
  stage_taps_.reserve(plan_.stages.size());
  for (const StageSpec& st : plan_.stages) {
    if (st.kind == StageSpec::Kind::kFirDecimator ||
        st.kind == StageSpec::Kind::kPolyphaseFir)
      stage_taps_.push_back(CoeffPool::instance().taps(st.taps));
    else
      stage_taps_.push_back(nullptr);
  }

  // DA-lowering metadata: track the sample width entering each stage through
  // the conditioning chain, run the cost model on every FIR stage, and build
  // (deduplicated) partial-sum tables for the eligible ones so a ForceDa
  // policy never has to compile at execution time.
  int width = plan_.front_end.mixer_out_bits;
  for (std::size_t i = 0; i < plan_.stages.size(); ++i) {
    const StageSpec& st = plan_.stages[i];
    stage_input_bits_.push_back(width);
    dsp::DaFirEngine::Cost cost;
    std::shared_ptr<const std::vector<std::int64_t>> tables;
    if (stage_taps_[i] != nullptr && width > 0) {
      cost = dsp::DaFirEngine::cost(st.taps.size(), width);
      if (cost.eligible)
        tables = CoeffPool::instance().da_tables(stage_taps_[i]->reversed);
    }
    stage_da_cost_.push_back(cost);
    stage_da_tables_.push_back(std::move(tables));
    stage_lowering_.push_back(cost.auto_wins ? FirLowering::kDa : FirLowering::kMac);
    // Output width: a narrowing stage pins it; a passthrough preserves it;
    // anything else widens by an amount the plan does not bound, so the
    // width becomes unknown (0) and downstream FIR stages are DA-ineligible.
    if (st.narrow_bits != 0)
      width = st.narrow_bits;
    else if (st.kind != StageSpec::Kind::kPassthrough)
      width = 0;
  }
}

// -------------------------------------------------------- CompiledPlanCache

CompiledPlanCache& CompiledPlanCache::instance() {
  static CompiledPlanCache cache;
  return cache;
}

std::shared_ptr<const CompiledPlan> CompiledPlanCache::get_or_compile(
    const ChainPlan& plan) {
  // The canonical key needs a positive sample rate (tuning-word math);
  // validate() rejects everything the key computation cannot survive.
  plan.validate();
  const std::string key = canonical_plan_key(plan);

  // Trace args carry a hash of the canonical key, so identical plans are
  // correlatable across hit/miss/evict events without shipping the string.
  const std::uint64_t key_hash = std::hash<std::string>{}(key);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    if (trace::enabled(trace::Category::kCache)) {
      static const std::uint16_t kName = trace::intern("plan_cache_hit");
      trace::emit(trace::Category::kCache, kName, trace::Phase::kInstant,
                  key_hash, stats_.hits);
    }
    return lru_.front().second;
  }
  ++stats_.misses;
  if (trace::enabled(trace::Category::kCache)) {
    static const std::uint16_t kName = trace::intern("plan_cache_miss");
    trace::emit(trace::Category::kCache, kName, trace::Phase::kInstant,
                key_hash, stats_.misses);
  }
  // Compile under the lock: concurrent configure() calls racing on the same
  // plan would otherwise each pay the compile; the artifact is tiny and the
  // compile is microseconds, so serialising here is the cheap choice.
  trace::Span compile_span(trace::Category::kCache,
                           [] {
                             static const std::uint16_t kName =
                                 trace::intern("plan_compile");
                             return kName;
                           }(),
                           key_hash);
  const auto t0 = std::chrono::steady_clock::now();
  auto compiled = std::make_shared<const CompiledPlan>(plan);
  stats_.compile_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  compile_span.finish();
  lru_.emplace_front(key, compiled);
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    if (trace::enabled(trace::Category::kCache)) {
      static const std::uint16_t kName = trace::intern("plan_cache_evict");
      trace::emit(trace::Category::kCache, kName, trace::Phase::kInstant,
                  std::hash<std::string>{}(lru_.back().first), lru_.size() - 1);
    }
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return compiled;
}

CompiledPlanCache::Stats CompiledPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

void CompiledPlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity < 1 ? 1 : capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void CompiledPlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

// ------------------------------------------------------------ FusedChainExec

FusedChainExec::FusedChainExec(std::shared_ptr<const CompiledPlan> plan)
    : plan_(std::move(plan)) {
  const FrontEndSpec& fe = plan_->plan().front_end;
  mixer_shift_ = fe.input_bits + fe.nco_amplitude_bits - 1 - fe.mixer_out_bits;
  mixer_narrow_ok_ = fe.input_bits <= 32 && fe.nco_amplitude_bits <= 32;
  build_stages();
}

void FusedChainExec::build_stages() {
  stages_.clear();
  const ChainPlan& plan = plan_->plan();
  stages_.reserve(plan.stages.size());
  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    const StageSpec& spec = plan.stages[i];
    StageState st;
    st.kind = spec.kind;
    st.decimation = spec.decimation;
    st.req = Conditioning{spec.post_shift, spec.narrow_bits, spec.rounding};
    if (spec.kind == StageSpec::Kind::kCic) {
      dsp::CicDecimator::Config c;
      c.stages = spec.cic_stages;
      c.decimation = spec.decimation;
      c.diff_delay = spec.diff_delay;
      c.input_bits = spec.input_bits;
      c.register_bits = spec.register_bits;
      c.prune_shifts = spec.prune_shifts;
      st.cic.emplace_back(c);
      st.cic.emplace_back(c);
    } else if (spec.kind == StageSpec::Kind::kFirDecimator ||
               spec.kind == StageSpec::Kind::kPolyphaseFir) {
      st.taps = plan_->stage_taps()[i];
      const std::size_t hist = st.taps->forward.size() - 1;
      st.tail[0].assign(hist, 0);
      st.tail[1].assign(hist, 0);
      // Lowering selection: the compiled plan's cost-model decision under
      // kAuto, overridden by the process-wide force modes.  kForceDa on a
      // DA-ineligible stage (no tables) stays MAC.
      const FirLoweringPolicy policy = fir_lowering_policy();
      const bool want_da =
          policy == FirLoweringPolicy::kForceDa ||
          (policy == FirLoweringPolicy::kAuto &&
           plan_->stage_lowering()[i] == FirLowering::kDa);
      if (want_da && plan_->stage_da_tables()[i] != nullptr)
        st.da = std::make_unique<dsp::DaFirEngine>(plan_->stage_da_tables()[i],
                                                   st.taps->forward.size(),
                                                   plan_->stage_input_bits()[i]);
    }
    stages_.push_back(std::move(st));
  }
}

void FusedChainExec::reset() {
  phase_ = 0;
  for (StageState& st : stages_) {
    for (auto& c : st.cic) c.reset();
    st.tail[0].assign(st.tail[0].size(), 0);
    st.tail[1].assign(st.tail[1].size(), 0);
    st.fir_phase = 0;
  }
}

bool FusedChainExec::can_splice(const CompiledPlan& next) const {
  return next.structural_key() == plan_->structural_key();
}

void FusedChainExec::splice(std::shared_ptr<const CompiledPlan> next) {
  if (!can_splice(*next))
    throw ConfigError("FusedChainExec::splice: plan '" + next->plan().name +
                      "' is structurally incompatible with running plan '" +
                      plan_->plan().name + "' (use SwapMode::kFlush)");
  // Equal structural keys guarantee equal stage counts/kinds/geometry; only
  // coefficients, conditioning and the tuning word move.  Filter state (CIC
  // registers, FIR delay lines, the decimation phases, the NCO phase) stays.
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageSpec& spec = next->plan().stages[i];
    stages_[i].req = Conditioning{spec.post_shift, spec.narrow_bits, spec.rounding};
    if (stages_[i].taps) {
      stages_[i].taps = next->stage_taps()[i];
      // DA tables are functions of the taps, and conditioning changes can
      // move the stage's input width -- rebuild (or drop) the engine against
      // the new plan's metadata.
      if (stages_[i].da) {
        stages_[i].da =
            next->stage_da_tables()[i] != nullptr
                ? std::make_unique<dsp::DaFirEngine>(
                      next->stage_da_tables()[i],
                      stages_[i].taps->forward.size(), next->stage_input_bits()[i])
                : nullptr;
      }
    }
  }
  plan_ = std::move(next);
}

FirLowering FusedChainExec::active_lowering(std::size_t s) const {
  return stages_.at(s).da ? FirLowering::kDa : FirLowering::kMac;
}

void FusedChainExec::run_stage(StageState& st, int rail,
                               std::span<const std::int64_t> in,
                               std::vector<std::int64_t>& out) {
  const Conditioning req = st.req;
  const auto apply = [&req](std::int64_t v) {
    v = fixed::shift_right(v, req.shift, req.rounding);
    return req.bits == 0 ? v : fixed::narrow(v, req.bits, fixed::Overflow::kSaturate);
  };
  switch (st.kind) {
    case StageSpec::Kind::kPassthrough:
      out.insert(out.end(), in.begin(), in.end());
      return;
    case StageSpec::Kind::kScale: {
      out.reserve(out.size() + in.size());
      for (std::int64_t x : in) out.push_back(apply(x));
      return;
    }
    case StageSpec::Kind::kCic: {
      window_.clear();
      st.cic[static_cast<std::size_t>(rail)].process_block(in, window_);
      out.reserve(out.size() + window_.size());
      for (std::int64_t v : window_) out.push_back(apply(v));
      return;
    }
    case StageSpec::Kind::kFirDecimator:
    case StageSpec::Kind::kPolyphaseFir: {
      // Flat-window form: both FIR forms compute the same MAC set and int64
      // sums are order-independent (mod 2^64), so one contiguous dot per
      // output is bit-exact with either staged structure.  The output narrow
      // is fused into the same sweep.
      const TapSet& taps = *st.taps;
      const std::size_t n = taps.forward.size();
      auto& tail = st.tail[static_cast<std::size_t>(rail)];
      window_.clear();
      window_.reserve(tail.size() + in.size());
      window_.insert(window_.end(), tail.begin(), tail.end());
      window_.insert(window_.end(), in.begin(), in.end());
      const bool narrow_ok =
          taps.fits_i32 && simd::all_fit_i32(window_.data(), window_.size());
      // DA lowering engages per tile: only when every window sample fits the
      // engine's width is the bit-serial evaluation defined, and there it is
      // exact mod 2^64 -- out-of-range tiles silently take the MAC dots, so
      // the stage output never depends on the lowering.
      bool use_da = false;
      if (st.da && !window_.empty()) {
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        simd::minmax_i64(window_.data(), window_.size(), lo, hi);
        use_da = st.da->fits(lo, hi);
      }
      const int d = st.decimation;
      // Input j produces an output when fir_phase + j + 1 is a multiple of d.
      for (std::size_t j = static_cast<std::size_t>(d - 1 - st.fir_phase);
           j < in.size(); j += static_cast<std::size_t>(d))
        out.push_back(apply(use_da
                                ? st.da->dot(window_.data() + j)
                                : simd::dot_i64(taps.reversed.data(),
                                                window_.data() + j, n, narrow_ok)));
      if (tail.size() > 0)
        tail.assign(window_.end() - static_cast<std::ptrdiff_t>(tail.size()),
                    window_.end());
      if (rail == 1)  // both rails consumed the tile; advance the shared phase
        st.fir_phase = (st.fir_phase + static_cast<int>(in.size() % static_cast<std::size_t>(d))) % d;
      return;
    }
  }
}

void FusedChainExec::process_block(std::span<const std::int64_t> in,
                                   std::vector<IqSample>& out) {
  const ChainPlan& plan = plan_->plan();
  const FrontEndSpec& fe = plan.front_end;
  // All-or-nothing input validation, exactly like the staged pipeline: a
  // mid-block throw must not leave the NCO advanced past the rails.
  if (!in.empty()) {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    simd::minmax_i64(in.data(), in.size(), lo, hi);
    if (!fixed::fits_bits(lo, fe.input_bits) || !fixed::fits_bits(hi, fe.input_bits)) {
      const std::int64_t bad = fixed::fits_bits(lo, fe.input_bits) ? hi : lo;
      throw SimulationError("FusedChainExec::process_block: input " +
                            std::to_string(bad) + " does not fit " +
                            std::to_string(fe.input_bits) + " bits");
    }
  }

  const std::uint32_t step = plan_->tuning_word();
  for (std::size_t off = 0; off < in.size(); off += kFuseTileSamples) {
    const std::span<const std::int64_t> tile =
        in.subspan(off, std::min(kFuseTileSamples, in.size() - off));
    const std::size_t m = tile.size();
    cos_tile_.resize(m);
    sin_tile_.resize(m);
    if (fe.nco_mode == dsp::Nco::Mode::kLookupTable) {
      phase_ = simd::lut_sincos_block(phase_, step, plan_->sine_table()->data(),
                                      fe.nco_table_bits, m, cos_tile_.data(),
                                      sin_tile_.data());
    } else {
      for (std::size_t k = 0; k < m; ++k) {
        const dsp::SinCos sc = dsp::taylor_sincos(phase_, fe.nco_amplitude_bits);
        cos_tile_[k] = sc.cos;
        sin_tile_[k] = sc.sin;
        phase_ += step;
      }
    }
    mix_tile_[0].resize(m);
    mix_tile_[1].resize(m);
    simd::mul_shift_narrow_block(tile.data(), cos_tile_.data(), m, mixer_shift_,
                                 fe.mixer_out_bits, fe.mixer_rounding,
                                 fixed::Overflow::kSaturate, mixer_narrow_ok_,
                                 mix_tile_[0].data());
    simd::mul_shift_narrow_block(tile.data(), sin_tile_.data(), m, mixer_shift_,
                                 fe.mixer_out_bits, fe.mixer_rounding,
                                 fixed::Overflow::kSaturate, mixer_narrow_ok_,
                                 mix_tile_[1].data());

    std::span<const std::int64_t> rail_out[2];
    for (int rail = 0; rail < 2; ++rail) {
      std::span<const std::int64_t> cur = mix_tile_[rail];
      for (std::size_t s = 0; s < stages_.size(); ++s) {
        std::vector<std::int64_t>& buf =
            (s % 2 == 0 ? stage_a_ : stage_b_)[rail];
        buf.clear();
        run_stage(stages_[s], rail, cur, buf);
        cur = buf;
      }
      rail_out[rail] = cur;
    }
    if (rail_out[0].size() != rail_out[1].size())
      throw SimulationError("FusedChainExec: I/Q rails lost rate lock");
    out.reserve(out.size() + rail_out[0].size());
    for (std::size_t j = 0; j < rail_out[0].size(); ++j)
      out.push_back(IqSample{rail_out[0][j], rail_out[1][j]});
  }
}

}  // namespace twiddc::core
