// twiddc::core -- the plan-compilation layer.
//
// The paper's observation is that thousands of users run a handful of
// standard configurations; this layer applies the precompute-once philosophy
// at the plan level.  A ChainPlan is *lowered once* into an immutable
// CompiledPlan:
//
//   * canonicalisation -- every datapath-relevant field (widths, roundings,
//     decimations, coefficients, the NCO tuning word) is serialised into a
//     canonical key, so two plans that execute identically share one
//     compiled artifact regardless of their names or float-rail metadata;
//   * dedup -- quantised coefficient tables (stored forward + reversed for
//     the SIMD dot kernel) and quarter-wave NCO LUTs live in a process-wide
//     CoeffPool behind shared_ptr<const ...>: N sessions on the same config
//     hold one copy, and the storage is immutable so sharing needs no locks
//     after lookup;
//   * fusion -- FusedChainExec executes a whole chain in L1-sized tiles:
//     the NCO/mixer/first-stage sweep never materialises full-rate
//     cos/sin/mix buffers beyond one tile, and every stage's output
//     conditioning (shift/narrow/round) is applied as the stage's outputs
//     are produced instead of in a separate sweep.  The staged DdcPipeline
//     walks ~5 full-rate buffers per block; the fused path reads the input
//     once and touches everything else while it is cache-hot.
//
// CompiledPlanCache is the process-wide memo: backends' configure() and the
// stream engine resolve plans through it, so 64 identical sessions compile
// exactly one CompiledPlan (63 hits).  Entries are shared_ptr, so eviction
// never invalidates a running session -- the artifact dies with its last
// holder.
//
// Bit-exactness: FusedChainExec reuses the exact arithmetic of the staged
// path (simd::lut_sincos_block, simd::mul_shift_narrow_block,
// dsp::CicDecimator, the flat-window FIR dot over simd::dot_i64, and
// fixed::shift_right/narrow), and tiling is bit-exact because every stage is
// streaming-composable.  The simd kill switch therefore forces the fused
// kernels onto the scalar path too -- the existing bit-exactness tests cover
// the fused code with no extra plumbing.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/dsp/cic.hpp"
#include "src/dsp/da_fir.hpp"

namespace twiddc::core {

// ------------------------------------------------------------- FIR lowering

/// How a FIR stage's dot products are realised by the fused executor:
/// classic multiply-accumulate, or distributed arithmetic (bit-serial LUT
/// lookups, dsp::DaFirEngine).  Both are bit-exact; they model different
/// hardware (multiplier blocks vs LUT fabric).
enum class FirLowering { kMac, kDa };

/// Process-wide lowering policy.  kAuto follows the per-stage cost model
/// baked into each CompiledPlan; the force modes override it (kForceDa still
/// falls back to MAC for DA-ineligible stages: unknown input width, width
/// beyond DaFirEngine::kMaxInputBits).  Initialised from the
/// TWIDDC_FIR_LOWERING environment variable ("auto" | "mac" | "da").
enum class FirLoweringPolicy { kAuto, kForceMac, kForceDa };

FirLoweringPolicy fir_lowering_policy();
void set_fir_lowering_policy(FirLoweringPolicy policy);

// -------------------------------------------------------------- shared data

/// One deduplicated coefficient set: forward taps (splice/retap source),
/// reversed taps (the contiguous-window dot kernel's operand order) and the
/// precomputed fits-int32 flag that gates the single-instruction multiply.
/// Immutable after construction; shared across every CompiledPlan (and every
/// session) using the same quantised coefficients.
struct TapSet {
  std::vector<std::int64_t> forward;
  std::vector<std::int64_t> reversed;
  bool fits_i32 = false;

  explicit TapSet(const std::vector<std::int64_t>& taps);
};

/// Process-wide dedup pool for coefficient tables and quarter-wave NCO LUTs.
/// Entries are held weakly: the pool never keeps an artifact alive on its
/// own, it only guarantees that concurrent holders share one copy.
class CoeffPool {
 public:
  static CoeffPool& instance();

  std::shared_ptr<const TapSet> taps(const std::vector<std::int64_t>& taps);
  std::shared_ptr<const std::vector<std::int32_t>> sine_table(int table_bits,
                                                              int amplitude_bits);
  /// Deduplicated DA partial-sum tables (dsp::DaFirEngine::build_tables) for
  /// a reversed tap set.  Tables depend only on the tap values, so every
  /// plan/session DA-lowering the same coefficients shares one copy.
  std::shared_ptr<const std::vector<std::int64_t>> da_tables(
      const std::vector<std::int64_t>& rev_taps);

  struct Stats {
    std::uint64_t tap_requests = 0;
    std::uint64_t tap_hits = 0;
    std::uint64_t table_requests = 0;
    std::uint64_t table_hits = 0;
    std::uint64_t da_requests = 0;
    std::uint64_t da_hits = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  CoeffPool() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<const TapSet>> taps_;
  std::unordered_map<std::uint64_t, std::weak_ptr<const std::vector<std::int32_t>>>
      tables_;
  std::unordered_map<std::string, std::weak_ptr<const std::vector<std::int64_t>>>
      da_tables_;
  Stats stats_;
};

// ----------------------------------------------------------------- keys

/// Canonical form of a plan's fixed-point datapath: every field that affects
/// the produced samples (front-end widths/mode/rounding, the NCO *tuning
/// word*, stage kinds/geometry/coefficients/conditioning, the input rate).
/// Excludes presentation-only fields (name) and float-rail metadata
/// (taps_float, post_scale).  Two plans with equal canonical keys execute
/// identically and may share one CompiledPlan.
std::string canonical_plan_key(const ChainPlan& plan);

/// Structural form: the canonical key minus everything a SwapMode::kSplice
/// may change (NCO frequency, coefficient values, output conditioning).
/// Two plans with equal structural keys are splice-compatible, and channels
/// with equal structural front ends are candidates for cross-channel packed
/// execution.
std::string structural_plan_key(const ChainPlan& plan);

// ------------------------------------------------------------- CompiledPlan

/// An immutable lowered plan: the validated ChainPlan, its canonical and
/// structural keys, the shared NCO LUT, and one shared TapSet per FIR stage.
/// Construction validates (throws ConfigError exactly where DdcPipeline
/// would).  Never mutated after construction -- sessions on different
/// threads execute from one instance without synchronisation.
class CompiledPlan {
 public:
  explicit CompiledPlan(const ChainPlan& plan);

  [[nodiscard]] const ChainPlan& plan() const { return plan_; }
  [[nodiscard]] const std::string& canonical_key() const { return canonical_key_; }
  [[nodiscard]] const std::string& structural_key() const { return structural_key_; }
  [[nodiscard]] std::uint32_t tuning_word() const { return tuning_word_; }
  /// Shared quarter-wave LUT (null in Taylor mode).
  [[nodiscard]] const std::shared_ptr<const std::vector<std::int32_t>>& sine_table()
      const {
    return sine_table_;
  }
  /// Per-stage shared coefficient sets (null for non-FIR stages).
  [[nodiscard]] const std::vector<std::shared_ptr<const TapSet>>& stage_taps() const {
    return stage_taps_;
  }
  [[nodiscard]] int total_decimation() const { return plan_.total_decimation(); }

  /// Two's-complement width of the samples entering each stage, tracked
  /// through the conditioning chain from the mixer bus width (0 = unknown:
  /// a preceding stage widens without narrowing, which makes DA ineligible).
  [[nodiscard]] const std::vector<int>& stage_input_bits() const {
    return stage_input_bits_;
  }
  /// The pure kAuto lowering decision per stage (kMac for non-FIR stages).
  /// The compiled artifact is shared across sessions, so it stores the
  /// policy-independent cost-model outcome; FusedChainExec applies the
  /// process-wide policy on top when it builds its stage states.
  [[nodiscard]] const std::vector<FirLowering>& stage_lowering() const {
    return stage_lowering_;
  }
  /// Per-stage DA cost-model outputs (all-default for non-FIR stages) --
  /// the energy layer's multiplier-vs-LUT report reads these.
  [[nodiscard]] const std::vector<dsp::DaFirEngine::Cost>& stage_da_cost() const {
    return stage_da_cost_;
  }
  /// Shared DA partial-sum tables per DA-eligible FIR stage (null
  /// otherwise), deduplicated through CoeffPool.
  [[nodiscard]] const std::vector<std::shared_ptr<const std::vector<std::int64_t>>>&
  stage_da_tables() const {
    return stage_da_tables_;
  }

 private:
  ChainPlan plan_;
  std::string canonical_key_;
  std::string structural_key_;
  std::uint32_t tuning_word_ = 0;
  std::shared_ptr<const std::vector<std::int32_t>> sine_table_;
  std::vector<std::shared_ptr<const TapSet>> stage_taps_;
  std::vector<int> stage_input_bits_;
  std::vector<FirLowering> stage_lowering_;
  std::vector<dsp::DaFirEngine::Cost> stage_da_cost_;
  std::vector<std::shared_ptr<const std::vector<std::int64_t>>> stage_da_tables_;
};

// -------------------------------------------------------- CompiledPlanCache

/// Process-wide LRU memo from canonical key to CompiledPlan.  Thread-safe
/// (one mutex; compilation happens under it, so concurrent configure() calls
/// for the same plan still compile exactly once).  Eviction only drops the
/// cache's reference -- running sessions keep their artifact alive.
class CompiledPlanCache {
 public:
  static CompiledPlanCache& instance();

  /// Returns the cached artifact for the plan's canonical form, compiling
  /// and inserting on miss.  Throws ConfigError (from validation) without
  /// caching anything; the failed lookup still counts as a miss.
  std::shared_ptr<const CompiledPlan> get_or_compile(const ChainPlan& plan);

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double compile_seconds = 0.0;  ///< total time spent compiling misses
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Maximum resident entries (clamped to >= 1); evicts LRU down to it.
  void set_capacity(std::size_t capacity);
  /// Drops every entry (running sessions are unaffected).  Counters keep
  /// accumulating; tests assert on deltas.
  void clear();

  static constexpr std::size_t kDefaultCapacity = 128;

 private:
  CompiledPlanCache() = default;

  mutable std::mutex mu_;
  /// MRU-first list of (key, artifact); the map indexes into it.
  std::list<std::pair<std::string, std::shared_ptr<const CompiledPlan>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  std::size_t capacity_ = kDefaultCapacity;
  Stats stats_;
};

// ------------------------------------------------------------ FusedChainExec

/// Per-session execution state over a shared CompiledPlan: the NCO phase,
/// two CIC decimators per CIC stage (I and Q rails), one flat FIR delay line
/// per FIR stage per rail.  process_block runs the whole chain tile by tile
/// -- mixer+first-stage fused in L1, FIR decimation fused with the output
/// narrow -- bit-exact with DdcPipeline::process_block on the same plan
/// (pinned by tests across randomized topologies and both kill-switch
/// states).
class FusedChainExec {
 public:
  explicit FusedChainExec(std::shared_ptr<const CompiledPlan> plan);

  /// All-or-nothing: the whole block is range-checked against the front
  /// end's input width before any state advances (SimulationError).
  void process_block(std::span<const std::int64_t> in, std::vector<IqSample>& out);
  void reset();

  /// True when `next` is splice-compatible with the running plan (equal
  /// structural keys -- the same contract DdcPipeline::swap_plan(kSplice)
  /// enforces stage by stage).
  [[nodiscard]] bool can_splice(const CompiledPlan& next) const;
  /// State-preserving switch to `next`: filter state and NCO phase survive;
  /// coefficients, conditioning and the tuning word are replaced.  Call
  /// can_splice first; throws ConfigError otherwise.
  void splice(std::shared_ptr<const CompiledPlan> next);

  [[nodiscard]] const CompiledPlan& compiled() const { return *plan_; }
  [[nodiscard]] const std::shared_ptr<const CompiledPlan>& compiled_ptr() const {
    return plan_;
  }

  /// The lowering this executor actually built for stage `s` (the compiled
  /// plan's kAuto decision combined with the process-wide policy at
  /// construction/splice time).  kMac for non-FIR stages.
  [[nodiscard]] FirLowering active_lowering(std::size_t s) const;

 private:
  struct Conditioning {
    int shift = 0;
    int bits = 0;
    fixed::Rounding rounding = fixed::Rounding::kTruncate;
  };
  /// Runtime state of one stage (both rails).
  struct StageState {
    StageSpec::Kind kind = StageSpec::Kind::kPassthrough;
    int decimation = 1;
    Conditioning req;
    // kCic: one decimator per rail.
    std::vector<dsp::CicDecimator> cic;  // [0]=I, [1]=Q (empty otherwise)
    // kFirDecimator / kPolyphaseFir: shared taps + flat delay line per rail.
    std::shared_ptr<const TapSet> taps;
    std::vector<std::int64_t> tail[2];  // last (taps-1) inputs, zero-seeded
    int fir_phase = 0;                  // inputs since last output, in [0, D)
    // DA lowering: the bit-serial evaluator over shared tables, engaged per
    // tile only when every window sample fits its width (MAC fallback keeps
    // the stage unconditionally bit-exact).
    std::unique_ptr<dsp::DaFirEngine> da;
  };

  void build_stages();
  /// Runs stage `s` over one rail's tile, appending conditioned outputs.
  void run_stage(StageState& st, int rail, std::span<const std::int64_t> in,
                 std::vector<std::int64_t>& out);

  std::shared_ptr<const CompiledPlan> plan_;
  std::uint32_t phase_ = 0;
  int mixer_shift_ = 0;
  bool mixer_narrow_ok_ = false;
  std::vector<StageState> stages_;
  // Tile scratch (tile-sized, L1-resident; never full-block).
  std::vector<std::int32_t> cos_tile_;
  std::vector<std::int32_t> sin_tile_;
  std::vector<std::int64_t> mix_tile_[2];
  std::vector<std::int64_t> stage_a_[2];
  std::vector<std::int64_t> stage_b_[2];
  std::vector<std::int64_t> window_;
};

}  // namespace twiddc::core
