#include "src/dsp/cic.hpp"

#include <string>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::dsp {

CicDecimator::CicDecimator(const Config& config) : config_(config) {
  if (config.stages < 1 || config.stages > 8)
    throw ConfigError("CicDecimator: stages must be in [1,8], got " +
                      std::to_string(config.stages));
  if (config.decimation < 1)
    throw ConfigError("CicDecimator: decimation must be >= 1, got " +
                      std::to_string(config.decimation));
  if (config.diff_delay < 1 || config.diff_delay > 2)
    throw ConfigError("CicDecimator: diff_delay must be 1 or 2");
  if (config.input_bits < 1 || config.input_bits > 32)
    throw ConfigError("CicDecimator: input_bits must be in [1,32]");
  if (!config.prune_shifts.empty() &&
      config.prune_shifts.size() != static_cast<std::size_t>(config.stages))
    throw ConfigError("CicDecimator: prune_shifts must be empty or one per stage");
  for (int s : config.prune_shifts)
    if (s < 0 || s > 32) throw ConfigError("CicDecimator: prune shift out of range");

  const int full = config.input_bits + growth_bits();
  register_bits_ = config.register_bits == 0 ? full : config.register_bits;
  if (register_bits_ < 2 || register_bits_ > 63)
    throw ConfigError("CicDecimator: register width " + std::to_string(register_bits_) +
                      " not representable (need 2..63 bits)");

  integrators_.assign(static_cast<std::size_t>(config.stages), 0);
  comb_delays_.assign(static_cast<std::size_t>(config.stages * config.diff_delay), 0);
}

void CicDecimator::reset() {
  integrators_.assign(integrators_.size(), 0);
  comb_delays_.assign(comb_delays_.size(), 0);
  decim_count_ = 0;
  samples_in_ = 0;
  samples_out_ = 0;
}

std::int64_t CicDecimator::gain() const {
  return fixed::cic_gain(config_.stages, config_.decimation, config_.diff_delay);
}

int CicDecimator::growth_bits() const {
  return fixed::cic_bit_growth(config_.stages, config_.decimation, config_.diff_delay);
}

std::int64_t CicDecimator::output_bound() const {
  // A full-scale input of magnitude 2^(input_bits-1) emerges with at most
  // gain() times that magnitude (DC gain is the filter's max gain).
  std::int64_t prune_scale = 0;
  for (int s : config_.prune_shifts) prune_scale += s;
  return (gain() >> prune_scale) * (std::int64_t{1} << (config_.input_bits - 1));
}

std::optional<std::int64_t> CicDecimator::push(std::int64_t x) {
  ++samples_in_;
  // Integrator chain at the input rate.  Wrap-around arithmetic: this is the
  // hardware behaviour the algorithm depends on.
  std::int64_t v = x;
  for (int s = 0; s < config_.stages; ++s) {
    if (!config_.prune_shifts.empty())
      v = fixed::shift_right(v, config_.prune_shifts[static_cast<std::size_t>(s)],
                             fixed::Rounding::kTruncate);
    auto& acc = integrators_[static_cast<std::size_t>(s)];
    acc = fixed::wrap_add(acc, v, register_bits_);
    v = acc;
  }
  // Decimator: 1 of every R integrator outputs reaches the combs.
  if (++decim_count_ < config_.decimation) return std::nullopt;
  decim_count_ = 0;
  // Comb chain at the output rate: y = v - z^-M.
  for (int s = 0; s < config_.stages; ++s) {
    const std::size_t base = static_cast<std::size_t>(s * config_.diff_delay);
    const std::int64_t delayed = comb_delays_[base + static_cast<std::size_t>(config_.diff_delay - 1)];
    for (int d = config_.diff_delay - 1; d > 0; --d)
      comb_delays_[base + static_cast<std::size_t>(d)] =
          comb_delays_[base + static_cast<std::size_t>(d - 1)];
    comb_delays_[base] = v;
    v = fixed::wrap_sub(v, delayed, register_bits_);
  }
  ++samples_out_;
  return v;
}

void CicDecimator::process_block(std::span<const std::int64_t> in,
                                 std::vector<std::int64_t>& out) {
  out.reserve(out.size() + in.size() / static_cast<std::size_t>(config_.decimation) + 1);
  // Dispatch to a kernel with a compile-time stage count so the integrator
  // cascade unrolls completely (the cascade is a loop-carried dependency
  // chain; the win is removing the per-stage loop/branch overhead, not SIMD).
  const bool prune = !config_.prune_shifts.empty();
  switch (config_.stages) {
    case 1: prune ? run_block<1, true>(in, out) : run_block<1, false>(in, out); break;
    case 2: prune ? run_block<2, true>(in, out) : run_block<2, false>(in, out); break;
    case 3: prune ? run_block<3, true>(in, out) : run_block<3, false>(in, out); break;
    case 4: prune ? run_block<4, true>(in, out) : run_block<4, false>(in, out); break;
    case 5: prune ? run_block<5, true>(in, out) : run_block<5, false>(in, out); break;
    case 6: prune ? run_block<6, true>(in, out) : run_block<6, false>(in, out); break;
    case 7: prune ? run_block<7, true>(in, out) : run_block<7, false>(in, out); break;
    default: prune ? run_block<8, true>(in, out) : run_block<8, false>(in, out); break;
  }
}

template <int Stages, bool Prune>
void CicDecimator::run_block(std::span<const std::int64_t> in,
                             std::vector<std::int64_t>& out) {
  // Hoist the integrator state into a stack array so the inner loop keeps it
  // in registers.  Without pruning the accumulators run *unwrapped* in uint64
  // arithmetic: additions commute with truncation to the low register_bits_,
  // so the wrap (a sign-extending shift pair) is only applied to the value
  // handed to the combs and when the state is stored back -- the result is
  // bit-identical to wrapping on every add, at one add per stage per sample.
  // With pruning each stage's output feeds an arithmetic right shift, which
  // reads the bits above register_bits_, so the wrap must happen per read.
  std::uint64_t acc[Stages];
  for (int s = 0; s < Stages; ++s)
    acc[s] = static_cast<std::uint64_t>(integrators_[static_cast<std::size_t>(s)]);
  [[maybe_unused]] int shifts[Stages] = {};
  if constexpr (Prune) {
    for (int s = 0; s < Stages; ++s)
      shifts[s] = config_.prune_shifts[static_cast<std::size_t>(s)];
  }
  const int wrap_shift = 64 - register_bits_;
  const int decimation = config_.decimation;
  const int diff_delay = config_.diff_delay;
  int count = decim_count_;

  for (std::int64_t x : in) {
    std::int64_t v = x;
    if constexpr (Prune) {
      for (int s = 0; s < Stages; ++s) {
        acc[s] += static_cast<std::uint64_t>(v >> shifts[s]);
        v = static_cast<std::int64_t>(acc[s] << wrap_shift) >> wrap_shift;
      }
    } else {
      acc[0] += static_cast<std::uint64_t>(x);
      for (int s = 1; s < Stages; ++s) acc[s] += acc[s - 1];
      v = static_cast<std::int64_t>(acc[Stages - 1] << wrap_shift) >> wrap_shift;
    }
    if (++count < decimation) continue;
    count = 0;
    for (int s = 0; s < Stages; ++s) {
      const std::size_t base = static_cast<std::size_t>(s * diff_delay);
      const std::int64_t delayed =
          comb_delays_[base + static_cast<std::size_t>(diff_delay - 1)];
      for (int d = diff_delay - 1; d > 0; --d)
        comb_delays_[base + static_cast<std::size_t>(d)] =
            comb_delays_[base + static_cast<std::size_t>(d - 1)];
      comb_delays_[base] = v;
      v = fixed::wrap_sub(v, delayed, register_bits_);
    }
    ++samples_out_;
    out.push_back(v);
  }

  for (int s = 0; s < Stages; ++s)
    integrators_[static_cast<std::size_t>(s)] =
        static_cast<std::int64_t>(acc[s] << wrap_shift) >> wrap_shift;
  decim_count_ = count;
  samples_in_ += in.size();
}

std::vector<std::int64_t> CicDecimator::process(const std::vector<std::int64_t>& in) {
  std::vector<std::int64_t> out;
  out.reserve(in.size() / static_cast<std::size_t>(config_.decimation) + 1);
  process_block(in, out);
  return out;
}

bool CicDecimator::process_block_packed4(CicDecimator* const lanes[4],
                                         const std::int64_t* const in[4],
                                         std::size_t n,
                                         std::vector<std::int64_t>* const out[4]) {
#if defined(__AVX2__)
  const CicDecimator& l0 = *lanes[0];
  if (!l0.config_.prune_shifts.empty()) return false;
  for (int l = 1; l < 4; ++l) {
    const CicDecimator& ll = *lanes[l];
    if (ll.config_.stages != l0.config_.stages ||
        ll.config_.decimation != l0.config_.decimation ||
        ll.config_.diff_delay != l0.config_.diff_delay ||
        ll.register_bits_ != l0.register_bits_ ||
        !ll.config_.prune_shifts.empty() || ll.decim_count_ != l0.decim_count_)
      return false;
  }
  if (!simd::enabled() || n == 0) return simd::enabled();

  const int stages = l0.config_.stages;
  const int decimation = l0.config_.decimation;
  const int diff_delay = l0.config_.diff_delay;
  const int wrap_shift = 64 - l0.register_bits_;  // register_bits_ <= 63
  // Same unwrapped-accumulator trick as run_block: adds commute with
  // truncation to the low register_bits_, so the four lanes' state rides in
  // one register per stage and the wrap happens only on read/store.
  __m256i acc[8];
  for (int s = 0; s < stages; ++s)
    acc[s] = _mm256_set_epi64x(
        lanes[3]->integrators_[static_cast<std::size_t>(s)],
        lanes[2]->integrators_[static_cast<std::size_t>(s)],
        lanes[1]->integrators_[static_cast<std::size_t>(s)],
        lanes[0]->integrators_[static_cast<std::size_t>(s)]);
  int count = l0.decim_count_;
  for (int l = 0; l < 4; ++l)
    out[l]->reserve(out[l]->size() +
                    n / static_cast<std::size_t>(decimation) + 1);

  for (std::size_t t = 0; t < n; ++t) {
    const __m256i x = _mm256_set_epi64x(in[3][t], in[2][t], in[1][t], in[0][t]);
    acc[0] = _mm256_add_epi64(acc[0], x);
    for (int s = 1; s < stages; ++s) acc[s] = _mm256_add_epi64(acc[s], acc[s - 1]);
    if (++count < decimation) continue;
    count = 0;
    // Decimation boundary: wrap the cascade output once for all four lanes,
    // then run the (1/R-rate) comb chains scalar per lane.
    alignas(32) std::int64_t v4[4];
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(v4),
        simd::detail::sra_epi64(_mm256_slli_epi64(acc[stages - 1], wrap_shift),
                                wrap_shift));
    for (int l = 0; l < 4; ++l) {
      CicDecimator& lane = *lanes[l];
      std::int64_t v = v4[l];
      for (int s = 0; s < stages; ++s) {
        const std::size_t base = static_cast<std::size_t>(s * diff_delay);
        const std::int64_t delayed =
            lane.comb_delays_[base + static_cast<std::size_t>(diff_delay - 1)];
        for (int d = diff_delay - 1; d > 0; --d)
          lane.comb_delays_[base + static_cast<std::size_t>(d)] =
              lane.comb_delays_[base + static_cast<std::size_t>(d - 1)];
        lane.comb_delays_[base] = v;
        v = fixed::wrap_sub(v, delayed, lane.register_bits_);
      }
      ++lane.samples_out_;
      out[l]->push_back(v);
    }
  }

  for (int s = 0; s < stages; ++s) {
    alignas(32) std::int64_t a4[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(a4), acc[s]);
    for (int l = 0; l < 4; ++l)
      lanes[l]->integrators_[static_cast<std::size_t>(s)] = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a4[l]) << wrap_shift) >>
          wrap_shift;
  }
  for (int l = 0; l < 4; ++l) {
    lanes[l]->decim_count_ = count;
    lanes[l]->samples_in_ += n;
  }
  return true;
#else
  (void)lanes;
  (void)in;
  (void)n;
  (void)out;
  return false;
#endif
}

#if defined(TWIDDC_HAVE_AVX512_KERNELS)
namespace {

/// The __m512i body of packed8, operating on raw views of the lanes' state
/// (collected by the member below, which owns the private access).  Only
/// runs after the caller verified simd::avx512_active().
TWIDDC_AVX512_TARGET void cic_packed8_kernel(
    std::int64_t* const integ[8], std::int64_t* const combs[8],
    std::uint64_t* const samples_out[8], const std::int64_t* const in[8],
    std::size_t n, std::vector<std::int64_t>* const out[8], int stages,
    int decimation, int diff_delay, int register_bits, int& count) {
  const int wrap_shift = 64 - register_bits;
  const __m128i vwrap = _mm_cvtsi32_si128(wrap_shift);
  // Same unwrapped-accumulator trick as run_block / packed4: adds commute
  // with truncation to the low register_bits, so the eight lanes' state
  // rides in one register per stage and the wrap happens only on read/store.
  __m512i acc[8];
  for (int s = 0; s < stages; ++s)
    acc[s] = _mm512_set_epi64(integ[7][s], integ[6][s], integ[5][s], integ[4][s],
                              integ[3][s], integ[2][s], integ[1][s], integ[0][s]);
  for (int l = 0; l < 8; ++l)
    out[l]->reserve(out[l]->size() + n / static_cast<std::size_t>(decimation) + 1);

  for (std::size_t t = 0; t < n; ++t) {
    const __m512i x =
        _mm512_set_epi64(in[7][t], in[6][t], in[5][t], in[4][t], in[3][t],
                         in[2][t], in[1][t], in[0][t]);
    acc[0] = _mm512_add_epi64(acc[0], x);
    for (int s = 1; s < stages; ++s) acc[s] = _mm512_add_epi64(acc[s], acc[s - 1]);
    if (++count < decimation) continue;
    count = 0;
    // Decimation boundary: wrap the cascade output once for all eight lanes,
    // then run the (1/R-rate) comb chains scalar per lane.
    alignas(64) std::int64_t v8[8];
    _mm512_store_si512(
        v8, _mm512_sra_epi64(_mm512_sll_epi64(acc[stages - 1], vwrap), vwrap));
    for (int l = 0; l < 8; ++l) {
      std::int64_t v = v8[l];
      for (int s = 0; s < stages; ++s) {
        const std::size_t base = static_cast<std::size_t>(s * diff_delay);
        const std::int64_t delayed =
            combs[l][base + static_cast<std::size_t>(diff_delay - 1)];
        for (int d = diff_delay - 1; d > 0; --d)
          combs[l][base + static_cast<std::size_t>(d)] =
              combs[l][base + static_cast<std::size_t>(d - 1)];
        combs[l][base] = v;
        v = twiddc::fixed::wrap_sub(v, delayed, register_bits);
      }
      ++*samples_out[l];
      out[l]->push_back(v);
    }
  }

  for (int s = 0; s < stages; ++s) {
    alignas(64) std::int64_t a8[8];
    _mm512_store_si512(a8, acc[s]);
    for (int l = 0; l < 8; ++l)
      integ[l][s] = static_cast<std::int64_t>(static_cast<std::uint64_t>(a8[l])
                                              << wrap_shift) >>
                    wrap_shift;
  }
}

}  // namespace
#endif  // TWIDDC_HAVE_AVX512_KERNELS

bool CicDecimator::process_block_packed8(CicDecimator* const lanes[8],
                                         const std::int64_t* const in[8],
                                         std::size_t n,
                                         std::vector<std::int64_t>* const out[8]) {
#if defined(TWIDDC_HAVE_AVX512_KERNELS)
  const CicDecimator& l0 = *lanes[0];
  if (!l0.config_.prune_shifts.empty()) return false;
  for (int l = 1; l < 8; ++l) {
    const CicDecimator& ll = *lanes[l];
    if (ll.config_.stages != l0.config_.stages ||
        ll.config_.decimation != l0.config_.decimation ||
        ll.config_.diff_delay != l0.config_.diff_delay ||
        ll.register_bits_ != l0.register_bits_ ||
        !ll.config_.prune_shifts.empty() || ll.decim_count_ != l0.decim_count_)
      return false;
  }
  if (!simd::avx512_active() || n == 0) return simd::avx512_active();

  std::int64_t* integ[8];
  std::int64_t* combs[8];
  std::uint64_t* souts[8];
  for (int l = 0; l < 8; ++l) {
    integ[l] = lanes[l]->integrators_.data();
    combs[l] = lanes[l]->comb_delays_.data();
    souts[l] = &lanes[l]->samples_out_;
  }
  int count = l0.decim_count_;
  cic_packed8_kernel(integ, combs, souts, in, n, out, l0.config_.stages,
                     l0.config_.decimation, l0.config_.diff_delay,
                     l0.register_bits_, count);
  for (int l = 0; l < 8; ++l) {
    lanes[l]->decim_count_ = count;
    lanes[l]->samples_in_ += n;
  }
  return true;
#else
  (void)lanes;
  (void)in;
  (void)n;
  (void)out;
  return false;
#endif
}

}  // namespace twiddc::dsp
