// twiddc::dsp -- Cascaded Integrator-Comb decimator (paper section 2.1, Fig 2).
//
// N integrators run at the input rate; a decimator passes 1 of every R
// samples to N comb (first-difference) sections.  Registers use
// two's-complement wrap-around arithmetic at the Hogenauer width
// W_in + ceil(N*log2(R*M)); overflow in the integrators is intentional and
// cancels in the combs.  Optional per-stage pruning (discarding LSBs) models
// narrow datapaths; the injected noise is bounded per Hogenauer (1981).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace twiddc::dsp {

class CicDecimator {
 public:
  struct Config {
    int stages = 2;          ///< N: number of integrator+comb pairs
    int decimation = 16;     ///< R
    int diff_delay = 1;      ///< M (the paper uses 1 throughout)
    int input_bits = 12;     ///< width of the input samples
    int register_bits = 0;   ///< 0 = automatic Hogenauer full width
    /// Right-shift applied at the input of each integrator stage (size must
    /// equal `stages` if non-empty).  Models Hogenauer pruning.
    std::vector<int> prune_shifts;
  };

  explicit CicDecimator(const Config& config);

  /// Pushes one input sample; returns an output sample every `decimation`
  /// inputs (full register width, gain (R*M)^N / 2^sum(prune_shifts), not
  /// yet normalised -- callers shift by growth_bits() or divide by gain()).
  std::optional<std::int64_t> push(std::int64_t x);

  /// Block hot path: feeds every sample of `in`, appending produced outputs
  /// to `out`.  Bit-exact with a push() loop, but keeps the integrator state
  /// in registers across the whole block and never materialises a
  /// std::optional per input sample.
  void process_block(std::span<const std::int64_t> in, std::vector<std::int64_t>& out);

  /// Block helper: feeds all of `in`, appends produced outputs to a vector.
  std::vector<std::int64_t> process(const std::vector<std::int64_t>& in);

  /// Cross-channel packed kernel: advances FOUR independent decimators in
  /// lockstep, one AVX2 register holding the four lanes' integrator state per
  /// cascade stage.  The integrator cascade is a loop-carried dependency
  /// chain, so it cannot vectorise along time within one lane -- across
  /// lanes it packs perfectly.  Requires all four lanes to share geometry
  /// (stages, decimation, diff_delay, register width, no pruning) and
  /// decimation phase; returns false without touching any state when the
  /// lanes are not packable, AVX2 is not compiled in, or the simd kill
  /// switch is off -- callers then fall back to four process_block calls,
  /// which are bit-exact with the packed path.
  static bool process_block_packed4(CicDecimator* const lanes[4],
                                    const std::int64_t* const in[4], std::size_t n,
                                    std::vector<std::int64_t>* const out[4]);

  /// AVX-512 tier of the cross-channel kernel: EIGHT lanes' integrator state
  /// per 512-bit register.  Same packing contract and bit-exactness as
  /// process_block_packed4; additionally declines (returns false, no state
  /// touched) when the runtime AVX-512 tier is unavailable -- kernels not
  /// compiled in, CPU without F+DQ+BW+VL, or simd::set_avx512_enabled(false)
  /// -- so callers fall back to packed4 pairs or per-lane blocks.
  static bool process_block_packed8(CicDecimator* const lanes[8],
                                    const std::int64_t* const in[8], std::size_t n,
                                    std::vector<std::int64_t>* const out[8]);

  void reset();

  /// DC gain (R*M)^N before any pruning shifts.
  [[nodiscard]] std::int64_t gain() const;
  /// Hogenauer bit growth ceil(N*log2(R*M)).
  [[nodiscard]] int growth_bits() const;
  /// Actual register width used.
  [[nodiscard]] int register_bits() const { return register_bits_; }
  /// Number of inputs consumed since construction/reset.
  [[nodiscard]] std::uint64_t samples_in() const { return samples_in_; }
  /// Number of outputs produced since construction/reset.
  [[nodiscard]] std::uint64_t samples_out() const { return samples_out_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Worst-case output magnitude bound for a full-scale input, used by tests
  /// to prove the chosen register width cannot mis-wrap.
  [[nodiscard]] std::int64_t output_bound() const;

 private:
  // Block kernel specialised on the stage count (fully unrolled integrator
  // cascade) and on the presence of pruning; see cic.cpp.
  template <int Stages, bool Prune>
  void run_block(std::span<const std::int64_t> in, std::vector<std::int64_t>& out);

  Config config_;
  int register_bits_ = 0;
  std::vector<std::int64_t> integrators_;
  std::vector<std::int64_t> comb_delays_;  // stages * diff_delay entries
  int decim_count_ = 0;
  std::uint64_t samples_in_ = 0;
  std::uint64_t samples_out_ = 0;
};

}  // namespace twiddc::dsp
