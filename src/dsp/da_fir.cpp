#include "src/dsp/da_fir.hpp"

#include <string>

#include "src/common/error.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::dsp {

std::vector<std::int64_t> DaFirEngine::build_tables(
    const std::vector<std::int64_t>& rev_taps) {
  const std::size_t nslices =
      (rev_taps.size() + kSliceTaps - 1) / static_cast<std::size_t>(kSliceTaps);
  std::vector<std::int64_t> tables(nslices * kTableEntries, 0);
  for (std::size_t c = 0; c < nslices; ++c) {
    std::uint64_t h[kSliceTaps] = {};
    for (int i = 0; i < kSliceTaps; ++i) {
      const std::size_t j = c * kSliceTaps + static_cast<std::size_t>(i);
      if (j < rev_taps.size()) h[i] = static_cast<std::uint64_t>(rev_taps[j]);
    }
    for (int a = 0; a < kTableEntries; ++a) {
      // Partial sums accumulate mod 2^64, matching the dot kernels' wrapping
      // int64 accumulation.
      std::uint64_t sum = 0;
      for (int i = 0; i < kSliceTaps; ++i)
        if (a & (1 << i)) sum += h[i];
      tables[c * kTableEntries + static_cast<std::size_t>(a)] =
          static_cast<std::int64_t>(sum);
    }
  }
  return tables;
}

DaFirEngine::DaFirEngine(std::shared_ptr<const std::vector<std::int64_t>> tables,
                         std::size_t ntaps, int input_bits)
    : tables_(std::move(tables)),
      ntaps_(ntaps),
      slices_((ntaps + kSliceTaps - 1) / static_cast<std::size_t>(kSliceTaps)),
      input_bits_(input_bits) {
  if (ntaps_ == 0) throw ConfigError("DaFirEngine: tap count must be >= 1");
  if (input_bits_ < 1 || input_bits_ > 63)
    throw ConfigError("DaFirEngine: input_bits must be in [1, 63], got " +
                      std::to_string(input_bits_));
  if (!tables_ || tables_->size() != slices_ * kTableEntries)
    throw ConfigError("DaFirEngine: table size does not match the tap count");
}

std::int64_t DaFirEngine::dot(const std::int64_t* win) const {
  // Two's complement with W = input_bits: x = sum_w b_w 2^w - b_{W-1} 2^W,
  // so y = sum_w 2^w S_w - 2^W S_{W-1} with S_w the tap sum selected by the
  // samples' w-th bits -- exactly what the slice tables store.  Everything
  // accumulates mod 2^64, so the result equals the MAC dot bit for bit.
  const std::int64_t* t = tables_->data();
  const int w_bits = input_bits_;
  std::uint64_t acc = 0;
  for (std::size_t c = 0; c < slices_; ++c, t += kTableEntries) {
    const std::size_t base = c * kSliceTaps;
    std::uint64_t u[kSliceTaps] = {};
    for (int i = 0; i < kSliceTaps; ++i) {
      const std::size_t j = base + static_cast<std::size_t>(i);
      // A final partial slice reads zeros: its missing taps are zero in the
      // table, and index bits of zero keep the addresses in range without
      // reading past the window.
      if (j < ntaps_) u[i] = static_cast<std::uint64_t>(win[j]);
    }
    for (int w = 0; w < w_bits; ++w) {
      const std::size_t addr = (u[0] & 1) | ((u[1] & 1) << 1) |
                               ((u[2] & 1) << 2) | ((u[3] & 1) << 3);
      const auto tv = static_cast<std::uint64_t>(t[addr]);
      acc += tv << w;
      if (w == w_bits - 1) acc -= tv << w_bits;  // sign-bit weight
      for (int i = 0; i < kSliceTaps; ++i) u[i] >>= 1;
    }
  }
  return static_cast<std::int64_t>(acc);
}

bool DaFirEngine::fits(std::int64_t lo, std::int64_t hi) const {
  return fixed::fits_bits(lo, input_bits_) && fixed::fits_bits(hi, input_bits_);
}

DaFirEngine::Cost DaFirEngine::cost(std::size_t ntaps, int input_bits) {
  Cost c;
  c.macs_per_output = ntaps;
  c.eligible = ntaps > 0 && input_bits >= 1 && input_bits <= kMaxInputBits;
  if (ntaps == 0) return c;
  c.slices = (ntaps + kSliceTaps - 1) / static_cast<std::size_t>(kSliceTaps);
  c.table_entries = c.slices * kTableEntries;
  if (input_bits >= 1)
    c.lookups_per_output = static_cast<std::size_t>(input_bits) * c.slices;
  // Throughput proxy for the kAuto policy: DA does W*ceil(K/4) table reads
  // where MAC does K multiplies.  Narrow datapaths (W <~ 4) with long tap
  // sets win; the 16-bit Figure 1 chain deliberately does not -- there DA is
  // chosen only by explicit policy, for the multiplier-vs-LUT energy trade
  // the hardware scenarios report.
  c.auto_wins = c.eligible && c.lookups_per_output < c.macs_per_output;
  return c;
}

}  // namespace twiddc::dsp
