// twiddc::dsp -- distributed-arithmetic (DA) FIR evaluation.
//
// DA replaces a FIR's K multipliers with bit-serial table lookups: the taps
// are split into 4-tap slices, each slice precomputes the 16 possible
// partial sums of its taps, and one output is formed by walking the input
// samples bit by bit -- per bit plane w, the slice tables are addressed by
// the samples' w-th bits and the looked-up partial sums accumulate with
// weight 2^w (the sign bit carries weight -2^W + 2^(W-1), handled exactly).
// Multiplier-free FIRs are the classic FPGA/ASIC trade: K multipliers become
// ceil(K/4) LUT tables plus an adder tree, at W clocks per output (direction
// from the serial DA literature, e.g. arXiv:1403.4554).
//
// In this simulator the engine is an exact software model: dot() is bit-exact
// (mod 2^64) with the MAC dot product whenever every window sample fits the
// engine's input width, which callers verify per tile via fits() -- so a
// DA-lowered stage can always fall back to MAC without changing a single
// output bit.  Tables depend only on the tap values, never on the input
// width, and are deduplicated process-wide through core::CoeffPool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace twiddc::dsp {

class DaFirEngine {
 public:
  static constexpr int kSliceTaps = 4;      ///< taps per LUT slice (LUT4)
  static constexpr int kTableEntries = 16;  ///< 2^kSliceTaps partial sums
  /// Widest input for which the cost model considers DA: past this the
  /// bit-serial clock count erases the multiplier savings.
  static constexpr int kMaxInputBits = 24;

  /// Precomputes the per-slice partial-sum tables for `rev_taps` (the
  /// reversed, kernel-order tap set the dot kernels consume).  Layout:
  /// slice c's 16 entries at [c*16, c*16+16); a final partial slice's
  /// missing taps contribute zero.
  static std::vector<std::int64_t> build_tables(
      const std::vector<std::int64_t>& rev_taps);

  /// `tables` must come from build_tables on a tap set of `ntaps` taps.
  /// `input_bits` in [1, 63]: the two's-complement width every dot() window
  /// sample must fit (callers range-check via fits()).
  DaFirEngine(std::shared_ptr<const std::vector<std::int64_t>> tables,
              std::size_t ntaps, int input_bits);

  /// One FIR output: sum_j rev_taps[j] * win[j] over ntaps() window samples,
  /// evaluated bit-serially through the slice tables.  Exact mod 2^64 --
  /// bit-exact with simd::dot_i64 over the same operands -- provided every
  /// sample fits input_bits().
  [[nodiscard]] std::int64_t dot(const std::int64_t* win) const;

  /// True when every sample in [lo, hi] fits input_bits() -- the per-tile
  /// guard that makes DA lowering unconditionally bit-exact (out-of-range
  /// tiles take the MAC path instead).
  [[nodiscard]] bool fits(std::int64_t lo, std::int64_t hi) const;

  [[nodiscard]] std::size_t ntaps() const { return ntaps_; }
  [[nodiscard]] int input_bits() const { return input_bits_; }
  [[nodiscard]] std::size_t slices() const { return slices_; }
  [[nodiscard]] const std::shared_ptr<const std::vector<std::int64_t>>& tables()
      const {
    return tables_;
  }

  /// The DA-vs-MAC cost model (shared by the plan compiler's lowering
  /// selection and the energy layer's multiplier-vs-LUT report).
  struct Cost {
    bool eligible = false;            ///< width in range, taps present
    std::size_t slices = 0;           ///< ceil(K / 4) LUT tables
    std::size_t table_entries = 0;    ///< 16 * slices int64 entries
    std::size_t lookups_per_output = 0;  ///< W * slices table reads
    std::size_t macs_per_output = 0;     ///< K multiplies (the MAC cost)
    bool auto_wins = false;  ///< cost model picks DA under kAuto lowering
  };
  static Cost cost(std::size_t ntaps, int input_bits);

 private:
  std::shared_ptr<const std::vector<std::int64_t>> tables_;
  std::size_t ntaps_ = 0;
  std::size_t slices_ = 0;
  int input_bits_ = 0;
};

}  // namespace twiddc::dsp
