#include "src/dsp/fft.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace twiddc::dsp {
namespace {
constexpr double kPi = 3.14159265358979323846264338327950288;

void bit_reverse_permute(std::vector<cplx>& a) {
  const std::size_t n = a.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

void transform(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_pow2(n))
    throw ConfigError("fft: size must be a power of two, got " + std::to_string(n));
  bit_reverse_permute(a);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= inv;
  }
}
}  // namespace

void fft_inplace(std::vector<cplx>& data) { transform(data, /*inverse=*/false); }

void ifft_inplace(std::vector<cplx>& data) { transform(data, /*inverse=*/true); }

std::vector<cplx> fft_real(const std::vector<double>& x) {
  std::vector<cplx> data(x.begin(), x.end());
  fft_inplace(data);
  return data;
}

}  // namespace twiddc::dsp
