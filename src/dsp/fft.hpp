// twiddc::dsp -- radix-2 FFT used for spectral verification.
//
// Built from scratch (no external dependency): iterative in-place
// decimation-in-time with precomputed twiddles.  Sizes must be powers of two.
#pragma once

#include <complex>
#include <vector>

namespace twiddc::dsp {

using cplx = std::complex<double>;

/// In-place forward FFT.  `data.size()` must be a power of two >= 1.
void fft_inplace(std::vector<cplx>& data);

/// In-place inverse FFT (includes the 1/N normalisation).
void ifft_inplace(std::vector<cplx>& data);

/// Convenience: forward FFT of a real signal, returning N complex bins.
std::vector<cplx> fft_real(const std::vector<double>& x);

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace twiddc::dsp
