#include "src/dsp/fir.hpp"

#include <string>

#include "src/common/error.hpp"

namespace twiddc::dsp {
namespace {
void check_taps(std::size_t taps) {
  if (taps == 0) throw ConfigError("FIR: tap vector must not be empty");
}
void check_decimation(int d) {
  if (d < 1) throw ConfigError("FIR: decimation must be >= 1, got " + std::to_string(d));
}
}  // namespace

// ---------------------------------------------------------------- FirFilter

template <typename T>
FirFilter<T>::FirFilter(std::vector<T> taps) : taps_(std::move(taps)) {
  check_taps(taps_.size());
  history_.assign(taps_.size(), T{});
}

template <typename T>
void FirFilter<T>::reset() {
  history_.assign(history_.size(), T{});
  head_ = 0;
}

template <typename T>
T FirFilter<T>::push(T x) {
  // head_ points at the slot for the newest sample.
  history_[head_] = x;
  T acc{};
  std::size_t idx = head_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * history_[idx];
    idx = idx == 0 ? history_.size() - 1 : idx - 1;
  }
  head_ = head_ + 1 == history_.size() ? 0 : head_ + 1;
  return acc;
}

template <typename T>
void FirFilter<T>::process_block(std::span<const T> in, std::vector<T>& out) {
  out.reserve(out.size() + in.size());
  for (T x : in) out.push_back(push(x));
}

// ------------------------------------------------------------- FirDecimator

template <typename T>
FirDecimator<T>::FirDecimator(std::vector<T> taps, int decimation)
    : taps_(std::move(taps)), decimation_(decimation) {
  check_taps(taps_.size());
  check_decimation(decimation);
  history_.assign(taps_.size(), T{});
}

template <typename T>
void FirDecimator<T>::reset() {
  history_.assign(history_.size(), T{});
  head_ = 0;
  phase_ = 0;
}

template <typename T>
std::optional<T> FirDecimator<T>::push(T x) {
  history_[head_] = x;
  const std::size_t newest = head_;
  head_ = head_ + 1 == history_.size() ? 0 : head_ + 1;
  if (++phase_ < decimation_) return std::nullopt;
  phase_ = 0;
  T acc{};
  std::size_t idx = newest;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * history_[idx];
    idx = idx == 0 ? history_.size() - 1 : idx - 1;
  }
  return acc;
}

template <typename T>
void FirDecimator<T>::process_block(std::span<const T> in, std::vector<T>& out) {
  out.reserve(out.size() + in.size() / static_cast<std::size_t>(decimation_) + 1);
  const std::size_t n = history_.size();
  for (T x : in) {
    history_[head_] = x;
    const std::size_t newest = head_;
    head_ = head_ + 1 == n ? 0 : head_ + 1;
    if (++phase_ < decimation_) continue;
    phase_ = 0;
    T acc{};
    std::size_t idx = newest;
    for (std::size_t k = 0; k < taps_.size(); ++k) {
      acc += taps_[k] * history_[idx];
      idx = idx == 0 ? n - 1 : idx - 1;
    }
    out.push_back(acc);
  }
}

// ---------------------------------------------------- PolyphaseFirDecimator

template <typename T>
PolyphaseFirDecimator<T>::PolyphaseFirDecimator(std::vector<T> taps, int decimation)
    : decimation_(decimation), total_taps_(taps.size()) {
  check_taps(taps.size());
  check_decimation(decimation);
  phases_.resize(static_cast<std::size_t>(decimation));
  for (std::size_t k = 0; k < taps.size(); ++k)
    phases_[k % static_cast<std::size_t>(decimation)].push_back(taps[k]);
  histories_.resize(phases_.size());
  heads_.assign(phases_.size(), 0);
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    // Delay lines never shrink below one slot so empty subfilters stay benign.
    histories_[p].assign(std::max<std::size_t>(phases_[p].size(), 1), T{});
  }
}

template <typename T>
void PolyphaseFirDecimator<T>::reset() {
  for (std::size_t p = 0; p < histories_.size(); ++p) {
    histories_[p].assign(histories_[p].size(), T{});
    heads_[p] = 0;
  }
  rotor_ = 0;
}

template <typename T>
std::optional<T> PolyphaseFirDecimator<T>::push(T x) {
  // Sample with input-index residue r feeds subfilter p = D-1-r, so that the
  // revolution completes exactly when y[m] = sum_k h[k] x[mD + D-1 - k] is
  // computable (matching FirDecimator's output instants).
  const auto p = static_cast<std::size_t>(decimation_ - 1 - rotor_);
  auto& hist = histories_[p];
  auto& head = heads_[p];
  hist[head] = x;
  const std::size_t newest = head;
  head = head + 1 == hist.size() ? 0 : head + 1;

  if (++rotor_ < decimation_) return std::nullopt;
  rotor_ = 0;
  T acc{};
  for (std::size_t q = 0; q < phases_.size(); ++q) {
    const auto& e = phases_[q];
    const auto& h = histories_[q];
    // Newest element of phase q: for q == p it is `newest`; for the others it
    // is one behind their head pointer.
    std::size_t idx = q == p ? newest : (heads_[q] == 0 ? h.size() - 1 : heads_[q] - 1);
    for (std::size_t j = 0; j < e.size(); ++j) {
      acc += e[j] * h[idx];
      idx = idx == 0 ? h.size() - 1 : idx - 1;
    }
  }
  return acc;
}

template <typename T>
void PolyphaseFirDecimator<T>::process_block(std::span<const T> in, std::vector<T>& out) {
  out.reserve(out.size() + in.size() / static_cast<std::size_t>(decimation_) + 1);
  for (T x : in) {
    const auto p = static_cast<std::size_t>(decimation_ - 1 - rotor_);
    auto& hist = histories_[p];
    auto& head = heads_[p];
    hist[head] = x;
    const std::size_t newest = head;
    head = head + 1 == hist.size() ? 0 : head + 1;

    if (++rotor_ < decimation_) continue;
    rotor_ = 0;
    T acc{};
    for (std::size_t q = 0; q < phases_.size(); ++q) {
      const auto& e = phases_[q];
      const auto& h = histories_[q];
      std::size_t idx = q == p ? newest : (heads_[q] == 0 ? h.size() - 1 : heads_[q] - 1);
      for (std::size_t j = 0; j < e.size(); ++j) {
        acc += e[j] * h[idx];
        idx = idx == 0 ? h.size() - 1 : idx - 1;
      }
    }
    out.push_back(acc);
  }
}

template class FirFilter<double>;
template class FirFilter<std::int64_t>;
template class FirDecimator<double>;
template class FirDecimator<std::int64_t>;
template class PolyphaseFirDecimator<double>;
template class PolyphaseFirDecimator<std::int64_t>;

}  // namespace twiddc::dsp
