#include "src/dsp/fir.hpp"

#include <string>
#include <type_traits>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"

namespace twiddc::dsp {
namespace {
void check_taps(std::size_t taps) {
  if (taps == 0) throw ConfigError("FIR: tap vector must not be empty");
}
void check_decimation(int d) {
  if (d < 1) throw ConfigError("FIR: decimation must be >= 1, got " + std::to_string(d));
}

template <typename T>
std::vector<T> reversed(const std::vector<T>& taps) {
  return {taps.rbegin(), taps.rend()};
}

bool fits_i32(const std::vector<std::int64_t>& v) {
  return simd::all_fit_i32(v.data(), v.size());
}

// Shared idiom of the integer ring-buffer block paths (FirFilter and
// FirDecimator): materialise [previous n-1 ring samples | block] as one
// contiguous window, and afterwards re-seat the ring from the window tail.

/// Fills `window` and returns whether every element fits int32 (combined
/// with the precomputed tap check, this gates the 32x32->64 SIMD multiply).
inline bool load_window(const std::vector<std::int64_t>& history, std::size_t head,
                        bool taps_fit, std::span<const std::int64_t> in,
                        std::vector<std::int64_t>& window) {
  const std::size_t n = history.size();
  window.clear();
  window.reserve(n - 1 + in.size());
  for (std::size_t j = 0; j + 1 < n; ++j) window.push_back(history[(head + 1 + j) % n]);
  window.insert(window.end(), in.begin(), in.end());
  return taps_fit && simd::all_fit_i32(window.data(), window.size());
}

/// Newest sample lands at slot n-1 with head = 0 -- any layout push() reads
/// back identically is equivalent state.
inline void reseat_ring(std::vector<std::int64_t>& history, std::size_t& head,
                        const std::vector<std::int64_t>& window) {
  const std::size_t n = history.size();
  for (std::size_t j = 0; j < n; ++j) history[j] = window[window.size() - n + j];
  head = 0;
}

/// Core of the packed cross-channel paths: interleaves L lanes' flat windows
/// at stride L, then computes every kept output's L dots through one
/// multi-lane kernel call (shared-tap broadcast).  Outputs land at window
/// index i = d-1-phase, d-1-phase+d, ... -- identical instants to the
/// per-lane block paths.  Per-lane accumulation is mod 2^64, so the packed
/// results are bit-exact with per-lane simd::dot_i64.
void packed_dot_outputs(const std::int64_t* rev_taps, std::size_t ntaps,
                        const std::vector<std::int64_t>* const windows[], int L,
                        std::size_t m, int d, int phase, bool narrow_ok,
                        std::vector<std::int64_t>* const out[]) {
  thread_local std::vector<std::int64_t> inter;
  const std::size_t nw = windows[0]->size();
  const auto lanes = static_cast<std::size_t>(L);
  inter.resize(nw * lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::int64_t* w = windows[l]->data();
    for (std::size_t j = 0; j < nw; ++j) inter[j * lanes + l] = w[j];
  }
  const std::size_t kept = m / static_cast<std::size_t>(d) + 1;
  for (std::size_t l = 0; l < lanes; ++l) out[l]->reserve(out[l]->size() + kept);
  std::int64_t res[8];
  for (std::size_t i = static_cast<std::size_t>(d - 1 - phase); i < m;
       i += static_cast<std::size_t>(d)) {
    if (L == 4)
      simd::dot_i64_x4(rev_taps, inter.data() + i * 4, ntaps, narrow_ok, res);
    else
      simd::dot_i64_x8(rev_taps, inter.data() + i * 8, ntaps, narrow_ok, res);
    for (std::size_t l = 0; l < lanes; ++l) out[l]->push_back(res[l]);
  }
}

/// The SIMD tier needed for an L-lane packed pass is available right now.
bool packed_tier_available(int nlanes) {
  if (nlanes == 8) return simd::avx512_active();
  if (nlanes != 4) return false;
#if defined(__AVX2__)
  return simd::enabled();
#else
  return false;
#endif
}
}  // namespace

// ---------------------------------------------------------------- FirFilter

template <typename T>
FirFilter<T>::FirFilter(std::vector<T> taps) : taps_(std::move(taps)) {
  check_taps(taps_.size());
  history_.assign(taps_.size(), T{});
  if constexpr (std::is_integral_v<T>) {
    rev_taps_ = reversed(taps_);
    taps_fit_i32_ = fits_i32(taps_);
  }
}

template <typename T>
void FirFilter<T>::reset() {
  history_.assign(history_.size(), T{});
  head_ = 0;
}

template <typename T>
void FirFilter<T>::retap(std::vector<T> taps) {
  if (taps.size() != taps_.size())
    throw ConfigError("FirFilter::retap: expected " + std::to_string(taps_.size()) +
                      " taps, got " + std::to_string(taps.size()));
  taps_ = std::move(taps);
  if constexpr (std::is_integral_v<T>) {
    rev_taps_ = reversed(taps_);
    taps_fit_i32_ = fits_i32(taps_);
  }
}

template <typename T>
T FirFilter<T>::push(T x) {
  // head_ points at the slot for the newest sample.
  history_[head_] = x;
  T acc{};
  std::size_t idx = head_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * history_[idx];
    idx = idx == 0 ? history_.size() - 1 : idx - 1;
  }
  head_ = head_ + 1 == history_.size() ? 0 : head_ + 1;
  return acc;
}

template <typename T>
void FirFilter<T>::process_block(std::span<const T> in, std::vector<T>& out) {
  out.reserve(out.size() + in.size());
  if constexpr (std::is_integral_v<T>) {
    // Contiguous-window hot path: every output is a forward dot product of
    // the reversed taps against a sliding window -- unit-stride loads the
    // SIMD kernel can chew on.  Integer sums are order-independent, so this
    // is bit-exact with the ring-buffer push() loop.
    const std::size_t n = taps_.size();
    const std::size_t m = in.size();
    if (m == 0) return;
    const bool narrow_ok = load_window(history_, head_, taps_fit_i32_, in, window_);
    for (std::size_t i = 0; i < m; ++i)
      out.push_back(simd::dot_i64(rev_taps_.data(), window_.data() + i, n, narrow_ok));
    reseat_ring(history_, head_, window_);
  } else {
    for (T x : in) out.push_back(push(x));
  }
}

// ------------------------------------------------------------- FirDecimator

template <typename T>
FirDecimator<T>::FirDecimator(std::vector<T> taps, int decimation)
    : taps_(std::move(taps)), decimation_(decimation) {
  check_taps(taps_.size());
  check_decimation(decimation);
  history_.assign(taps_.size(), T{});
  if constexpr (std::is_integral_v<T>) {
    rev_taps_ = reversed(taps_);
    taps_fit_i32_ = fits_i32(taps_);
  }
}

template <typename T>
void FirDecimator<T>::reset() {
  history_.assign(history_.size(), T{});
  head_ = 0;
  phase_ = 0;
}

template <typename T>
void FirDecimator<T>::retap(std::vector<T> taps) {
  if (taps.size() != taps_.size())
    throw ConfigError("FirDecimator::retap: expected " + std::to_string(taps_.size()) +
                      " taps, got " + std::to_string(taps.size()));
  taps_ = std::move(taps);
  if constexpr (std::is_integral_v<T>) {
    rev_taps_ = reversed(taps_);
    taps_fit_i32_ = fits_i32(taps_);
  }
}

template <typename T>
std::optional<T> FirDecimator<T>::push(T x) {
  history_[head_] = x;
  const std::size_t newest = head_;
  head_ = head_ + 1 == history_.size() ? 0 : head_ + 1;
  if (++phase_ < decimation_) return std::nullopt;
  phase_ = 0;
  T acc{};
  std::size_t idx = newest;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * history_[idx];
    idx = idx == 0 ? history_.size() - 1 : idx - 1;
  }
  return acc;
}

template <typename T>
void FirDecimator<T>::process_block(std::span<const T> in, std::vector<T>& out) {
  out.reserve(out.size() + in.size() / static_cast<std::size_t>(decimation_) + 1);
  const std::size_t n = history_.size();
  if constexpr (std::is_integral_v<T>) {
    // Same contiguous-window scheme as FirFilter, computing only the kept
    // outputs: input i produces one when phase_ + i + 1 is a multiple of D.
    const std::size_t m = in.size();
    if (m == 0) return;
    const bool narrow_ok = load_window(history_, head_, taps_fit_i32_, in, window_);
    const std::size_t d = static_cast<std::size_t>(decimation_);
    for (std::size_t i = d - 1 - static_cast<std::size_t>(phase_); i < m; i += d)
      out.push_back(simd::dot_i64(rev_taps_.data(), window_.data() + i, n, narrow_ok));
    phase_ = static_cast<int>((static_cast<std::size_t>(phase_) + m) % d);
    reseat_ring(history_, head_, window_);
  } else {
    for (T x : in) {
      history_[head_] = x;
      const std::size_t newest = head_;
      head_ = head_ + 1 == n ? 0 : head_ + 1;
      if (++phase_ < decimation_) continue;
      phase_ = 0;
      T acc{};
      std::size_t idx = newest;
      for (std::size_t k = 0; k < taps_.size(); ++k) {
        acc += taps_[k] * history_[idx];
        idx = idx == 0 ? n - 1 : idx - 1;
      }
      out.push_back(acc);
    }
  }
}

template <typename T>
bool FirDecimator<T>::process_block_packed(FirDecimator* const lanes[], int nlanes,
                                           const T* const in[], std::size_t n,
                                           std::vector<T>* const out[]) {
  if constexpr (!std::is_integral_v<T>) {
    (void)lanes;
    (void)in;
    (void)n;
    (void)out;
    return false;
  } else {
    if (nlanes != 4 && nlanes != 8) return false;
    const FirDecimator& l0 = *lanes[0];
    for (int l = 1; l < nlanes; ++l) {
      const FirDecimator& ll = *lanes[l];
      // Tap *values* must match: the packed kernel broadcasts one shared tap
      // across all lanes.  Phase lockstep keeps the output instants aligned.
      if (ll.decimation_ != l0.decimation_ || ll.phase_ != l0.phase_ ||
          ll.taps_ != l0.taps_)
        return false;
    }
    if (!packed_tier_available(nlanes)) return false;
    if (n == 0) return true;

    const std::size_t ntaps = l0.taps_.size();
    const int d = l0.decimation_;
    const std::vector<std::int64_t>* windows[8];
    bool narrow_ok = true;
    for (int l = 0; l < nlanes; ++l) {
      FirDecimator& lane = *lanes[l];
      narrow_ok = load_window(lane.history_, lane.head_, lane.taps_fit_i32_,
                              std::span(in[l], n), lane.window_) &&
                  narrow_ok;
      windows[l] = &lane.window_;
    }
    packed_dot_outputs(l0.rev_taps_.data(), ntaps, windows, nlanes, n, d,
                       l0.phase_, narrow_ok, out);
    for (int l = 0; l < nlanes; ++l) {
      FirDecimator& lane = *lanes[l];
      lane.phase_ = static_cast<int>(
          (static_cast<std::size_t>(lane.phase_) + n) % static_cast<std::size_t>(d));
      reseat_ring(lane.history_, lane.head_, lane.window_);
    }
    return true;
  }
}

// ---------------------------------------------------- PolyphaseFirDecimator

template <typename T>
PolyphaseFirDecimator<T>::PolyphaseFirDecimator(std::vector<T> taps, int decimation)
    : decimation_(decimation), total_taps_(taps.size()) {
  check_taps(taps.size());
  check_decimation(decimation);
  if constexpr (std::is_integral_v<T>) {
    rev_taps_ = reversed(taps);
    taps_fit_i32_ = fits_i32(taps);
  }
  phases_.resize(static_cast<std::size_t>(decimation));
  for (std::size_t k = 0; k < taps.size(); ++k)
    phases_[k % static_cast<std::size_t>(decimation)].push_back(taps[k]);
  histories_.resize(phases_.size());
  heads_.assign(phases_.size(), 0);
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    // Delay lines never shrink below one slot so empty subfilters stay benign.
    histories_[p].assign(std::max<std::size_t>(phases_[p].size(), 1), T{});
  }
}

template <typename T>
void PolyphaseFirDecimator<T>::retap(std::vector<T> taps) {
  if (taps.size() != total_taps_)
    throw ConfigError("PolyphaseFirDecimator::retap: expected " +
                      std::to_string(total_taps_) + " taps, got " +
                      std::to_string(taps.size()));
  for (auto& p : phases_) p.clear();
  for (std::size_t k = 0; k < taps.size(); ++k)
    phases_[k % static_cast<std::size_t>(decimation_)].push_back(taps[k]);
  if constexpr (std::is_integral_v<T>) {
    rev_taps_ = reversed(taps);
    taps_fit_i32_ = fits_i32(taps);
  }
}

template <typename T>
void PolyphaseFirDecimator<T>::reset() {
  for (std::size_t p = 0; p < histories_.size(); ++p) {
    histories_[p].assign(histories_[p].size(), T{});
    heads_[p] = 0;
  }
  rotor_ = 0;
}

template <typename T>
std::optional<T> PolyphaseFirDecimator<T>::push(T x) {
  // Sample with input-index residue r feeds subfilter p = D-1-r, so that the
  // revolution completes exactly when y[m] = sum_k h[k] x[mD + D-1 - k] is
  // computable (matching FirDecimator's output instants).
  const auto p = static_cast<std::size_t>(decimation_ - 1 - rotor_);
  auto& hist = histories_[p];
  auto& head = heads_[p];
  hist[head] = x;
  const std::size_t newest = head;
  head = head + 1 == hist.size() ? 0 : head + 1;

  if (++rotor_ < decimation_) return std::nullopt;
  rotor_ = 0;
  T acc{};
  for (std::size_t q = 0; q < phases_.size(); ++q) {
    const auto& e = phases_[q];
    const auto& h = histories_[q];
    // Newest element of phase q: for q == p it is `newest`; for the others it
    // is one behind their head pointer.
    std::size_t idx = q == p ? newest : (heads_[q] == 0 ? h.size() - 1 : heads_[q] - 1);
    for (std::size_t j = 0; j < e.size(); ++j) {
      acc += e[j] * h[idx];
      idx = idx == 0 ? h.size() - 1 : idx - 1;
    }
  }
  return acc;
}

template <typename T>
bool PolyphaseFirDecimator<T>::load_flat_window(std::span<const T> in) {
  // The flat window's past samples are reconstructed from the per-phase rings
  // by walking the commutator backwards (sample at depth d behind the newest
  // lives in the ring of phase D-1-((r_last - d) mod D)); every window slot an
  // output actually reads is backed by a live ring entry because push() stores
  // exactly the samples its MACs revisit.
  const std::size_t n = total_taps_;
  const std::size_t m = in.size();
  const int d = decimation_;
  window_.assign(n - 1 + m, T{});
  if (n >= 2) {
    std::vector<std::size_t> cursor = heads_;
    int residue = (rotor_ + d - 1) % d;  // residue of the most recent sample
    for (std::size_t depth = 0; depth + 1 < n; ++depth) {
      const auto q = static_cast<std::size_t>(d - 1 - residue);
      auto& c = cursor[q];
      const auto& h = histories_[q];
      c = c == 0 ? h.size() - 1 : c - 1;
      window_[n - 2 - depth] = h[c];
      residue = residue == 0 ? d - 1 : residue - 1;
    }
  }
  std::copy(in.begin(), in.end(), window_.begin() + static_cast<std::ptrdiff_t>(n - 1));
  if constexpr (std::is_integral_v<T>)
    return taps_fit_i32_ && simd::all_fit_i32(window_.data(), window_.size());
  else
    return false;
}

template <typename T>
void PolyphaseFirDecimator<T>::process_block(std::span<const T> in, std::vector<T>& out) {
  out.reserve(out.size() + in.size() / static_cast<std::size_t>(decimation_) + 1);
  if constexpr (std::is_integral_v<T>) {
    // The polyphase MAC set per output equals the direct form's, and integer
    // sums are order-independent, so each block output can be one contiguous
    // dot product over the reconstructed flat window.
    const std::size_t n = total_taps_;
    const std::size_t m = in.size();
    if (m == 0) return;
    const bool narrow_ok = load_flat_window(in);
    // Commutator stores keep the per-phase rings state-exact for later
    // push() calls; the MACs run on the flat window instead.
    for (std::size_t i = 0; i < m; ++i) {
      const auto p = static_cast<std::size_t>(decimation_ - 1 - rotor_);
      auto& hist = histories_[p];
      auto& head = heads_[p];
      hist[head] = in[i];
      head = head + 1 == hist.size() ? 0 : head + 1;
      if (++rotor_ < decimation_) continue;
      rotor_ = 0;
      out.push_back(simd::dot_i64(rev_taps_.data(), window_.data() + i, n, narrow_ok));
    }
  } else {
    for (T x : in) {
      const auto p = static_cast<std::size_t>(decimation_ - 1 - rotor_);
      auto& hist = histories_[p];
      auto& head = heads_[p];
      hist[head] = x;
      const std::size_t newest = head;
      head = head + 1 == hist.size() ? 0 : head + 1;

      if (++rotor_ < decimation_) continue;
      rotor_ = 0;
      T acc{};
      for (std::size_t q = 0; q < phases_.size(); ++q) {
        const auto& e = phases_[q];
        const auto& h = histories_[q];
        std::size_t idx =
            q == p ? newest : (heads_[q] == 0 ? h.size() - 1 : heads_[q] - 1);
        for (std::size_t j = 0; j < e.size(); ++j) {
          acc += e[j] * h[idx];
          idx = idx == 0 ? h.size() - 1 : idx - 1;
        }
      }
      out.push_back(acc);
    }
  }
}

template <typename T>
bool PolyphaseFirDecimator<T>::process_block_packed(PolyphaseFirDecimator* const lanes[],
                                                    int nlanes, const T* const in[],
                                                    std::size_t n,
                                                    std::vector<T>* const out[]) {
  if constexpr (!std::is_integral_v<T>) {
    (void)lanes;
    (void)in;
    (void)n;
    (void)out;
    return false;
  } else {
    if (nlanes != 4 && nlanes != 8) return false;
    const PolyphaseFirDecimator& l0 = *lanes[0];
    for (int l = 1; l < nlanes; ++l) {
      const PolyphaseFirDecimator& ll = *lanes[l];
      // rev_taps_ equality covers both length and values; rotor lockstep keeps
      // the output instants aligned across lanes.
      if (ll.decimation_ != l0.decimation_ || ll.rotor_ != l0.rotor_ ||
          ll.rev_taps_ != l0.rev_taps_)
        return false;
    }
    if (!packed_tier_available(nlanes)) return false;
    if (n == 0) return true;

    const std::size_t ntaps = l0.total_taps_;
    const int d = l0.decimation_;
    const int phase0 = l0.rotor_;  // first output at window index d-1-rotor
    const std::vector<std::int64_t>* windows[8];
    bool narrow_ok = true;
    for (int l = 0; l < nlanes; ++l) {
      PolyphaseFirDecimator& lane = *lanes[l];
      narrow_ok = lane.load_flat_window(std::span(in[l], n)) && narrow_ok;
      windows[l] = &lane.window_;
    }
    packed_dot_outputs(l0.rev_taps_.data(), ntaps, windows, nlanes, n, d, phase0,
                       narrow_ok, out);
    // Per-lane commutator ring maintenance -- the stores the serial block path
    // performs between dots, minus the dots themselves.
    for (int l = 0; l < nlanes; ++l) {
      PolyphaseFirDecimator& lane = *lanes[l];
      for (std::size_t i = 0; i < n; ++i) {
        const auto p = static_cast<std::size_t>(lane.decimation_ - 1 - lane.rotor_);
        auto& hist = lane.histories_[p];
        auto& head = lane.heads_[p];
        hist[head] = in[l][i];
        head = head + 1 == hist.size() ? 0 : head + 1;
        if (++lane.rotor_ == lane.decimation_) lane.rotor_ = 0;
      }
    }
    return true;
  }
}

template class FirFilter<double>;
template class FirFilter<std::int64_t>;
template class FirDecimator<double>;
template class FirDecimator<std::int64_t>;
template class PolyphaseFirDecimator<double>;
template class PolyphaseFirDecimator<std::int64_t>;

}  // namespace twiddc::dsp
