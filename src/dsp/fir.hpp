// twiddc::dsp -- FIR filtering: full-rate, decimating, and polyphase
// decimating forms (paper section 2.1, Fig. 3).
//
// All three forms are provided because the paper contrasts them: a "normal"
// FIR computes every input sample and throws 7 of 8 results away; the
// decimating form computes only every D-th output; the polyphase form
// additionally splits the tap set into D subfilters fed by a commutator.
// The three are arithmetically identical -- a property the test suite checks
// exhaustively -- but differ in multiply count, which is what makes the
// 125-tap filter affordable at 192 kHz on every architecture in the paper.
//
// Instantiated for `double` (float golden chain) and `std::int64_t` (all
// fixed-point datapaths; the caller owns scaling and narrowing).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace twiddc::dsp {

/// Full-rate direct-form FIR.
template <typename T>
class FirFilter {
 public:
  explicit FirFilter(std::vector<T> taps);

  /// Pushes one sample, returns one output: y[n] = sum_k h[k] x[n-k].
  T push(T x);

  /// Block hot path: one output per input, appended to `out`.
  void process_block(std::span<const T> in, std::vector<T>& out);

  void reset();
  /// Replaces the coefficient set while keeping the delay line (runtime
  /// reconfiguration).  The new set must have the same length; ConfigError
  /// otherwise.
  void retap(std::vector<T> taps);
  [[nodiscard]] const std::vector<T>& taps() const { return taps_; }
  /// Multiplications performed per input sample.
  [[nodiscard]] std::size_t macs_per_input() const { return taps_.size(); }

 private:
  std::vector<T> taps_;
  std::vector<T> history_;  // ring buffer
  std::size_t head_ = 0;
  // Integer block path: reversed taps + contiguous window scratch feeding the
  // SIMD dot-product kernel (see fir.cpp); unused for floating-point T.
  std::vector<T> rev_taps_;
  std::vector<T> window_;
  bool taps_fit_i32_ = false;
};

/// Direct-form decimating FIR: identical output to FirFilter + keep-1-in-D,
/// but only computes the kept outputs.
template <typename T>
class FirDecimator {
 public:
  FirDecimator(std::vector<T> taps, int decimation);

  /// Pushes one sample; produces an output on every D-th input.
  std::optional<T> push(T x);

  /// Block hot path: appends one output per D inputs to `out`; bit-exact
  /// with a push() loop but skips the per-sample optional.
  void process_block(std::span<const T> in, std::vector<T>& out);

  void reset();
  /// Replaces the coefficient set while keeping the delay line and phase
  /// (runtime reconfiguration).  Same length required; ConfigError otherwise.
  void retap(std::vector<T> taps);
  [[nodiscard]] const std::vector<T>& taps() const { return taps_; }
  [[nodiscard]] int decimation() const { return decimation_; }
  /// Multiplications per *output* sample.
  [[nodiscard]] std::size_t macs_per_output() const { return taps_.size(); }

  /// Cross-channel packed kernel: advances `nlanes` (4 or 8) independent
  /// decimators in lockstep, computing every lane's outputs through the
  /// multi-lane SIMD dot kernels over ONE lane-interleaved window -- the
  /// shared tap broadcast amortises across all lanes (simd::dot_i64_x4/x8).
  /// Requires all lanes to share tap *values*, decimation and phase; declines
  /// (returns false, no state touched) otherwise, or when the SIMD tier for
  /// the lane count is unavailable (4 needs the AVX2 build + kill switch on,
  /// 8 needs the runtime AVX-512 tier).  Bit-exact with nlanes process_block
  /// calls -- the same contract as CicDecimator::process_block_packed4.
  /// Integer instantiations only; the float one always declines.
  static bool process_block_packed(FirDecimator* const lanes[], int nlanes,
                                   const T* const in[], std::size_t n,
                                   std::vector<T>* const out[]);

 private:
  std::vector<T> taps_;
  std::vector<T> history_;
  std::size_t head_ = 0;
  int phase_ = 0;
  int decimation_ = 1;
  // Integer block path scratch (see FirFilter).
  std::vector<T> rev_taps_;
  std::vector<T> window_;
  bool taps_fit_i32_ = false;
};

/// Polyphase decimating FIR: the taps are decomposed into D subfilters
/// e_p[j] = h[jD + p]; an input commutator routes each incoming sample to
/// exactly one subfilter, and an output is formed after each commutator
/// revolution.  Work per input sample is ~taps/D multiplies -- the structure
/// of the paper's Figure 3 and of the FPGA implementation's Figure 5.
template <typename T>
class PolyphaseFirDecimator {
 public:
  PolyphaseFirDecimator(std::vector<T> taps, int decimation);

  /// Pushes one sample; produces an output on every D-th input.
  std::optional<T> push(T x);

  /// Block hot path: appends one output per D inputs to `out`; bit-exact
  /// with a push() loop but skips the per-sample optional.
  void process_block(std::span<const T> in, std::vector<T>& out);

  void reset();
  /// Replaces the coefficient set while keeping every subfilter delay line
  /// and the commutator position (runtime reconfiguration).  Same total
  /// length required; ConfigError otherwise.
  void retap(std::vector<T> taps);
  [[nodiscard]] int decimation() const { return decimation_; }
  [[nodiscard]] const std::vector<std::vector<T>>& phase_taps() const { return phases_; }
  /// Multiplications per output sample (== total taps).
  [[nodiscard]] std::size_t macs_per_output() const { return total_taps_; }
  /// The subfilter index the *next* pushed sample will be routed to
  /// (exposed so the Figure 3 bench can trace the commutator).
  [[nodiscard]] int next_phase() const { return decimation_ - 1 - rotor_; }

  /// Cross-channel packed kernel; see FirDecimator::process_block_packed for
  /// the contract.  The per-phase rings stay state-exact via the commutator
  /// stores while all lanes' MACs run packed over the interleaved flat
  /// windows.
  static bool process_block_packed(PolyphaseFirDecimator* const lanes[],
                                   int nlanes, const T* const in[], std::size_t n,
                                   std::vector<T>* const out[]);

 private:
  /// Integer block paths: materialises the flat [past | in] window in
  /// `window_` (reconstructing past samples from the per-phase rings) and
  /// returns whether the SIMD narrow-multiply precondition holds.
  bool load_flat_window(std::span<const T> in);
  std::vector<std::vector<T>> phases_;     // phase p -> e_p[j]
  std::vector<std::vector<T>> histories_;  // phase p -> its delay line (ring)
  std::vector<std::size_t> heads_;
  int rotor_ = 0;  // residue of the next input sample index mod D
  int decimation_ = 1;
  std::size_t total_taps_ = 0;
  // Integer block path: the polyphase MAC set equals the direct form's, and
  // integer sums are order-independent, so the block path computes each
  // output as one contiguous dot product over a reconstructed flat window
  // while the per-phase rings keep tracking state for push().
  std::vector<T> rev_taps_;
  std::vector<T> window_;
  bool taps_fit_i32_ = false;
};

extern template class FirFilter<double>;
extern template class FirFilter<std::int64_t>;
extern template class FirDecimator<double>;
extern template class FirDecimator<std::int64_t>;
extern template class PolyphaseFirDecimator<double>;
extern template class PolyphaseFirDecimator<std::int64_t>;

}  // namespace twiddc::dsp
