#include "src/dsp/fir_design.hpp"

#include <cmath>
#include <complex>

#include "src/common/error.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::dsp {
namespace {
constexpr double kPi = 3.14159265358979323846264338327950288;

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

void normalize_dc(std::vector<double>& h) {
  double sum = 0.0;
  for (double v : h) sum += v;
  if (sum == 0.0) throw ConfigError("FIR design produced zero DC gain");
  for (double& v : h) v /= sum;
}

void check_design_args(int taps, double cutoff) {
  if (taps < 1) throw ConfigError("FIR design: taps must be >= 1, got " + std::to_string(taps));
  if (!(cutoff > 0.0 && cutoff < 0.5))
    throw ConfigError("FIR design: cutoff must be in (0, 0.5), got " + std::to_string(cutoff));
}
}  // namespace

std::vector<double> design_lowpass(int taps, double cutoff, Window window,
                                   double kaiser_beta) {
  check_design_args(taps, cutoff);
  const std::vector<double> w = window_values(window, taps, kaiser_beta);
  std::vector<double> h(static_cast<std::size_t>(taps));
  const double center = (taps - 1) / 2.0;
  for (int k = 0; k < taps; ++k) {
    const double t = k - center;
    h[static_cast<std::size_t>(k)] =
        2.0 * cutoff * sinc(2.0 * cutoff * t) * w[static_cast<std::size_t>(k)];
  }
  normalize_dc(h);
  return h;
}

double cic_magnitude(int stages, int decimation, int diff_delay, double f) {
  const double rm = static_cast<double>(decimation) * diff_delay;
  if (std::abs(f) < 1e-12) return 1.0;
  const double num = std::sin(kPi * f * rm);
  const double den = rm * std::sin(kPi * f);
  if (std::abs(den) < 1e-300) return 1.0;
  return std::pow(std::abs(num / den), stages);
}

std::vector<double> design_cic_compensator(int taps, double cutoff, int cic_stages,
                                           int cic_decimation, Window window) {
  check_design_args(taps, cutoff);
  if (cic_stages < 1 || cic_decimation < 1)
    throw ConfigError("design_cic_compensator: CIC parameters must be >= 1");
  // Frequency sampling on a fine grid: desired response is the inverse CIC
  // droop inside the passband (evaluated at the CIC's *input* rate, i.e. at
  // f/decimation relative to this filter's input rate), zero in the stopband,
  // with a raised-cosine transition of one grid cell.
  const int grid = 16 * taps;
  std::vector<double> h(static_cast<std::size_t>(taps), 0.0);
  const double center = (taps - 1) / 2.0;
  for (int k = 0; k < taps; ++k) {
    const double t = k - center;
    double acc = 0.0;
    // Inverse DFT of the (real, zero-phase) desired response.
    for (int g = 0; g <= grid / 2; ++g) {
      const double f = static_cast<double>(g) / grid;  // 0 .. 0.5
      double desired = 0.0;
      if (f <= cutoff) {
        const double droop =
            cic_magnitude(cic_stages, cic_decimation, 1, f / cic_decimation);
        desired = droop > 1e-6 ? 1.0 / droop : 0.0;
      }
      const double weight = (g == 0 || g == grid / 2) ? 1.0 : 2.0;
      acc += weight * desired * std::cos(2.0 * kPi * f * t);
    }
    h[static_cast<std::size_t>(k)] = acc / grid;
  }
  const std::vector<double> w = window_values(window, taps);
  for (int k = 0; k < taps; ++k) h[static_cast<std::size_t>(k)] *= w[static_cast<std::size_t>(k)];
  normalize_dc(h);
  return h;
}

std::vector<std::int32_t> quantize_coefficients(const std::vector<double>& coeffs,
                                                int frac_bits) {
  if (frac_bits < 1 || frac_bits > 30)
    throw ConfigError("quantize_coefficients: frac_bits must be in [1,30]");
  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  std::vector<std::int32_t> out;
  out.reserve(coeffs.size());
  for (double c : coeffs) {
    const double scaled = c * scale;
    const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
    out.push_back(static_cast<std::int32_t>(
        fixed::saturate(static_cast<std::int64_t>(rounded), frac_bits + 1)));
  }
  return out;
}

double fir_magnitude(const std::vector<double>& coeffs, double f) {
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    const double phase = -2.0 * kPi * f * static_cast<double>(k);
    acc += coeffs[k] * std::complex<double>(std::cos(phase), std::sin(phase));
  }
  return std::abs(acc);
}

std::vector<double> reference_fir125() {
  // 192 kHz input rate, 24 kHz output rate -> Nyquist of the output is
  // 12 kHz; place the cutoff a little below it to keep aliasing out of the
  // selected DRM band.  125 taps as in Table 1.
  return design_lowpass(125, 10.0e3 / 192.0e3, Window::kBlackman);
}

}  // namespace twiddc::dsp
