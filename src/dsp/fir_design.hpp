// twiddc::dsp -- FIR coefficient design.
//
// The paper's reference DDC needs a 125-tap lowpass for the final
// decimate-by-8 stage (Table 1).  The paper does not publish its
// coefficients, so we design an equivalent filter from the stated
// requirements: passband = the selected DRM band (~12 kHz at the 192 kHz
// stage rate), enough stopband rejection to allow decimation by 8.  A CIC
// droop compensator variant is provided because the paper notes the CIC's
// "sub-optimal frequency attenuation" is the reason the FIR exists.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dsp/window.hpp"

namespace twiddc::dsp {

/// Windowed-sinc linear-phase lowpass.
///
/// `taps`     number of coefficients (odd gives a type-I filter).
/// `cutoff`   normalised cutoff in cycles/sample at the filter's input rate
///            (0 < cutoff < 0.5).
/// The result is normalised to unity DC gain.
std::vector<double> design_lowpass(int taps, double cutoff, Window window = Window::kHamming,
                                   double kaiser_beta = 8.6);

/// Windowed-sinc lowpass whose passband additionally equalises the droop of
/// an N-stage CIC that ran earlier in the chain at `cic_decimation` relative
/// to this filter's input rate.  Classic "CFIR" style compensation
/// (cf. the GC4016's CFIR block): the ideal response is
///   H(f) = 1/Hcic(f)  for f <= cutoff, 0 beyond,
/// realised by frequency sampling + windowing.  Unity DC gain.
std::vector<double> design_cic_compensator(int taps, double cutoff, int cic_stages,
                                           int cic_decimation,
                                           Window window = Window::kHamming);

/// Quantises coefficients to `frac_bits` fractional bits (round to nearest,
/// saturating at the signed (frac_bits+1)-bit range).  Returns raw integers.
std::vector<std::int32_t> quantize_coefficients(const std::vector<double>& coeffs,
                                                int frac_bits);

/// Frequency response magnitude |H(e^{j2\pi f})| of a real FIR at normalised
/// frequency `f` (cycles/sample).
double fir_magnitude(const std::vector<double>& coeffs, double f);

/// Magnitude response of an N-stage CIC decimator at normalised input
/// frequency `f`, normalised to unity at DC:
///   |sin(pi f R M) / (R M sin(pi f))|^N
double cic_magnitude(int stages, int decimation, int diff_delay, double f);

/// The reference 125-tap filter of the paper's Table 1 chain: lowpass at the
/// 192 kHz stage rate with 12 kHz passband edge, Blackman window (gives
/// > 70 dB stopband, adequate for the 12-bit FPGA datapath).
std::vector<double> reference_fir125();

}  // namespace twiddc::dsp
