// twiddc::dsp -- complex mixer (the multiplier pair after the NCO, Fig. 1).
//
// I[n] = x[n]*cos[n], Q[n] = x[n]*sin[n], each product scaled back from the
// NCO's amplitude format and narrowed to the downstream bus width.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/error.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::dsp {

/// One I/Q pair leaving the mixer.
struct Iq {
  std::int64_t i;
  std::int64_t q;
};

/// Stateless mixer; kept as a class so the datapath parameters are fixed at
/// construction and shared by both rails.
class ComplexMixer {
 public:
  struct Config {
    int input_bits = 12;          ///< width of the sample input
    int nco_amplitude_bits = 16;  ///< scale of the sin/cos inputs
    int output_bits = 16;         ///< downstream bus width
    fixed::Rounding rounding = fixed::Rounding::kTruncate;
    fixed::Overflow overflow = fixed::Overflow::kSaturate;
  };

  explicit ComplexMixer(const Config& config)
      : config_(config),
        // A full-scale input (2^(in-1)) times a full-scale NCO value
        // (2^(a-1)) must land at the output's full scale (2^(out-1)); the
        // remaining product bits are shifted away.  This keeps the signal in
        // the top of the downstream bus instead of at the input's scale --
        // essential when the bus is wider than the input (16-bit Montium
        // datapath fed from a 12-bit ADC).
        shift_(config.input_bits + config.nco_amplitude_bits - 1 - config.output_bits) {
    if (shift_ < 0)
      throw ConfigError("ComplexMixer: output_bits " + std::to_string(config.output_bits) +
                        " exceeds the product width of a " +
                        std::to_string(config.input_bits) + "-bit input and " +
                        std::to_string(config.nco_amplitude_bits) + "-bit NCO");
  }

  /// Mixes one input sample with the NCO pair.
  [[nodiscard]] Iq mix(std::int64_t x, std::int32_t cos_v, std::int32_t sin_v) const {
    const std::int64_t i_wide = fixed::shift_right(x * cos_v, shift_, config_.rounding);
    const std::int64_t q_wide = fixed::shift_right(x * sin_v, shift_, config_.rounding);
    return Iq{fixed::narrow(i_wide, config_.output_bits, config_.overflow),
              fixed::narrow(q_wide, config_.output_bits, config_.overflow)};
  }

  [[nodiscard]] const Config& config() const { return config_; }
  /// Right shift applied to the raw product.
  [[nodiscard]] int product_shift() const { return shift_; }

 private:
  Config config_;
  int shift_;
};

}  // namespace twiddc::dsp
