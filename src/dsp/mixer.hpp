// twiddc::dsp -- complex mixer (the multiplier pair after the NCO, Fig. 1).
//
// I[n] = x[n]*cos[n], Q[n] = x[n]*sin[n], each product scaled back from the
// NCO's amplitude format and narrowed to the downstream bus width.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::dsp {

/// One I/Q pair leaving the mixer.
struct Iq {
  std::int64_t i;
  std::int64_t q;
};

/// Stateless mixer; kept as a class so the datapath parameters are fixed at
/// construction and shared by both rails.
class ComplexMixer {
 public:
  struct Config {
    int input_bits = 12;          ///< width of the sample input
    int nco_amplitude_bits = 16;  ///< scale of the sin/cos inputs
    int output_bits = 16;         ///< downstream bus width
    fixed::Rounding rounding = fixed::Rounding::kTruncate;
    fixed::Overflow overflow = fixed::Overflow::kSaturate;
  };

  explicit ComplexMixer(const Config& config)
      : config_(config),
        // A full-scale input (2^(in-1)) times a full-scale NCO value
        // (2^(a-1)) must land at the output's full scale (2^(out-1)); the
        // remaining product bits are shifted away.  This keeps the signal in
        // the top of the downstream bus instead of at the input's scale --
        // essential when the bus is wider than the input (16-bit Montium
        // datapath fed from a 12-bit ADC).
        shift_(config.input_bits + config.nco_amplitude_bits - 1 - config.output_bits) {
    if (shift_ < 0)
      throw ConfigError("ComplexMixer: output_bits " + std::to_string(config.output_bits) +
                        " exceeds the product width of a " +
                        std::to_string(config.input_bits) + "-bit input and " +
                        std::to_string(config.nco_amplitude_bits) + "-bit NCO");
  }

  /// Mixes one input sample with the NCO pair.
  [[nodiscard]] Iq mix(std::int64_t x, std::int32_t cos_v, std::int32_t sin_v) const {
    const std::int64_t i_wide = fixed::shift_right(x * cos_v, shift_, config_.rounding);
    const std::int64_t q_wide = fixed::shift_right(x * sin_v, shift_, config_.rounding);
    return Iq{fixed::narrow(i_wide, config_.output_bits, config_.overflow),
              fixed::narrow(q_wide, config_.output_bits, config_.overflow)};
  }

  /// Block hot path over planar buffers: i_out[k]/q_out[k] = mix(x[k],
  /// cos[k], sin[k]).  All spans must have equal length.  Bit-exact with a
  /// mix() loop; runs through the SIMD shim when the operand widths allow
  /// the 32x32->64 multiply (input_bits and nco_amplitude_bits <= 32, which
  /// every datapath in the paper satisfies).
  void mix_block(std::span<const std::int64_t> x, std::span<const std::int32_t> cos_v,
                 std::span<const std::int32_t> sin_v, std::span<std::int64_t> i_out,
                 std::span<std::int64_t> q_out) const {
    const bool narrow_ok = config_.input_bits <= 32 && config_.nco_amplitude_bits <= 32;
    simd::mul_shift_narrow_block(x.data(), cos_v.data(), x.size(), shift_,
                                 config_.output_bits, config_.rounding,
                                 config_.overflow, narrow_ok, i_out.data());
    simd::mul_shift_narrow_block(x.data(), sin_v.data(), x.size(), shift_,
                                 config_.output_bits, config_.rounding,
                                 config_.overflow, narrow_ok, q_out.data());
  }

  [[nodiscard]] const Config& config() const { return config_; }
  /// Right shift applied to the raw product.
  [[nodiscard]] int product_shift() const { return shift_; }

 private:
  Config config_;
  int shift_;
};

}  // namespace twiddc::dsp
