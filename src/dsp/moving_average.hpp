// twiddc::dsp -- cascaded moving-average decimator.
//
// Mathematically identical to an N-stage CIC decimator (each
// integrator+comb+decimate section is a boxcar sum of R samples), but
// numerically stable in floating point because no unbounded accumulator
// exists.  The float golden chain uses this; the equivalence
// CicDecimator == MovingAverageCascade over integers is a library invariant
// checked by the test suite.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "src/common/error.hpp"

namespace twiddc::dsp {

template <typename T>
class MovingAverageCascade {
 public:
  /// `stages` boxcar sections of length `decimation`, decimating once at the
  /// end.  Gain is decimation^stages (not normalised), matching CicDecimator.
  MovingAverageCascade(int stages, int decimation) : decimation_(decimation) {
    if (stages < 1 || stages > 8)
      throw ConfigError("MovingAverageCascade: stages must be in [1,8]");
    if (decimation < 1)
      throw ConfigError("MovingAverageCascade: decimation must be >= 1");
    rings_.assign(static_cast<std::size_t>(stages),
                  std::vector<T>(static_cast<std::size_t>(decimation), T{}));
    sums_.assign(static_cast<std::size_t>(stages), T{});
    heads_.assign(static_cast<std::size_t>(stages), 0);
  }

  /// Pushes a sample at the input rate; emits every `decimation` inputs.
  std::optional<T> push(T x) {
    T v = x;
    for (std::size_t s = 0; s < rings_.size(); ++s) {
      auto& ring = rings_[s];
      auto& head = heads_[s];
      sums_[s] += v - ring[head];
      ring[head] = v;
      head = head + 1 == ring.size() ? 0 : head + 1;
      v = sums_[s];
    }
    if (++count_ < decimation_) return std::nullopt;
    count_ = 0;
    if constexpr (std::is_floating_point_v<T>) {
      // Periodically re-derive the running sums from the rings to cancel
      // floating-point drift in long streams.
      if (++outputs_since_refresh_ >= 4096) {
        outputs_since_refresh_ = 0;
        for (std::size_t s = 0; s < rings_.size(); ++s) {
          T exact{};
          for (T e : rings_[s]) exact += e;
          sums_[s] = exact;
        }
      }
    }
    return v;
  }

  /// Block hot path: appends one output per `decimation` inputs to `out`.
  /// Performs exactly push()'s operations in exactly push()'s order --
  /// including the periodic float-drift refresh on the same output schedule
  /// -- so it is bit-exact with sample-by-sample use, but never materialises
  /// a per-sample std::optional and keeps the ring cursors in locals.
  void process_block(std::span<const T> in, std::vector<T>& out) {
    out.reserve(out.size() + in.size() / static_cast<std::size_t>(decimation_) + 1);
    const std::size_t stages = rings_.size();
    int count = count_;
    for (T x : in) {
      T v = x;
      for (std::size_t s = 0; s < stages; ++s) {
        auto& ring = rings_[s];
        auto& head = heads_[s];
        sums_[s] += v - ring[head];
        ring[head] = v;
        head = head + 1 == ring.size() ? 0 : head + 1;
        v = sums_[s];
      }
      if (++count < decimation_) continue;
      count = 0;
      if constexpr (std::is_floating_point_v<T>) {
        if (++outputs_since_refresh_ >= 4096) {
          outputs_since_refresh_ = 0;
          for (std::size_t s = 0; s < stages; ++s) {
            T exact{};
            for (T e : rings_[s]) exact += e;
            sums_[s] = exact;
          }
        }
      }
      out.push_back(v);
    }
    count_ = count;
  }

  void reset() {
    for (auto& ring : rings_) ring.assign(ring.size(), T{});
    sums_.assign(sums_.size(), T{});
    heads_.assign(heads_.size(), 0);
    count_ = 0;
    outputs_since_refresh_ = 0;
  }

  [[nodiscard]] int decimation() const { return decimation_; }
  [[nodiscard]] int stages() const { return static_cast<int>(rings_.size()); }

 private:
  std::vector<std::vector<T>> rings_;
  std::vector<T> sums_;
  std::vector<std::size_t> heads_;
  int decimation_ = 1;
  int count_ = 0;
  int outputs_since_refresh_ = 0;
};

}  // namespace twiddc::dsp
