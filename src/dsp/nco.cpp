#include "src/dsp/nco.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/simd.hpp"

namespace twiddc::dsp {
namespace {
constexpr double kPi = 3.14159265358979323846264338327950288;
constexpr double kTwoPi = 2.0 * kPi;
}  // namespace

std::uint32_t PhaseAccumulator::tuning_word(double freq_hz, double fs_hz) {
  if (fs_hz <= 0.0) throw ConfigError("PhaseAccumulator: sample rate must be positive");
  double cycles = freq_hz / fs_hz;
  cycles -= std::floor(cycles);  // wrap into [0, 1)
  return static_cast<std::uint32_t>(std::llround(cycles * 4294967296.0) & 0xffffffffll);
}

double PhaseAccumulator::resolution_hz(double fs_hz) { return fs_hz / 4294967296.0; }

std::vector<std::int32_t> make_quarter_sine_table(int table_bits, int amplitude_bits) {
  if (table_bits < 2 || table_bits > 16)
    throw ConfigError("make_quarter_sine_table: table_bits must be in [2,16]");
  if (amplitude_bits < 2 || amplitude_bits > 24)
    throw ConfigError("make_quarter_sine_table: amplitude_bits must be in [2,24]");
  const int n = 1 << table_bits;
  const double amp = static_cast<double>((std::int64_t{1} << (amplitude_bits - 1)) - 1);
  std::vector<std::int32_t> table(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Mid-point sampling keeps the quadrant mirroring exact: the table value
    // for address i represents phase (i + 0.5)/n * pi/2.
    const double theta = (static_cast<double>(i) + 0.5) / n * (kPi / 2.0);
    table[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(std::llround(std::sin(theta) * amp));
  }
  return table;
}

SinCos lut_sincos(std::uint32_t phase, const std::vector<std::int32_t>& table,
                  int table_bits) {
  const auto n = std::size_t{1} << table_bits;
  if (table.size() != n)
    throw ConfigError("lut_sincos: table size does not match table_bits");
  const std::uint32_t quadrant = phase >> 30;
  const std::uint32_t index = (phase >> (30 - table_bits)) & (n - 1);
  const std::int32_t fwd = table[index];
  const std::int32_t mir = table[n - 1 - index];
  SinCos out{};
  switch (quadrant) {
    case 0: out.sin = fwd;  out.cos = mir;  break;
    case 1: out.sin = mir;  out.cos = -fwd; break;
    case 2: out.sin = -fwd; out.cos = -mir; break;
    default: out.sin = -mir; out.cos = fwd; break;
  }
  return out;
}

SinCos taylor_sincos(std::uint32_t phase, int amplitude_bits) {
  const double amp = static_cast<double>((std::int64_t{1} << (amplitude_bits - 1)) - 1);
  // Range-reduce to x in [-pi/4, pi/4) around the nearest multiple of pi/2,
  // then evaluate the order-5/order-4 Taylor polynomials.  This mirrors what
  // the paper suggests a software NCO would do instead of a table.
  const double turns = static_cast<double>(phase) * 0x1p-32;  // [0, 1)
  const double octant = std::floor(turns * 4.0 + 0.5);        // nearest quarter
  const double x = (turns - octant / 4.0) * kTwoPi;           // [-pi/4, pi/4)
  const double x2 = x * x;
  // Orders 7 and 6: on |x| <= pi/4 the truncation error is ~1e-7 relative,
  // well under the 16-bit amplitude quantisation.
  const double sin_x = x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0)));
  const double cos_x = 1.0 - x2 / 2.0 * (1.0 - x2 / 12.0 * (1.0 - x2 / 30.0));
  double s = 0.0;
  double c = 0.0;
  switch (static_cast<int>(octant) & 3) {
    case 0: s = sin_x;  c = cos_x;  break;
    case 1: s = cos_x;  c = -sin_x; break;
    case 2: s = -sin_x; c = -cos_x; break;
    default: s = -cos_x; c = sin_x; break;
  }
  SinCos out{};
  out.sin = static_cast<std::int32_t>(std::llround(s * amp));
  out.cos = static_cast<std::int32_t>(std::llround(c * amp));
  return out;
}

Nco::Nco(const Config& config)
    : config_(config),
      acc_(PhaseAccumulator::tuning_word(config.freq_hz, config.sample_rate_hz)) {
  if (config.mode == Mode::kLookupTable)
    table_ = make_quarter_sine_table(config.table_bits, config.amplitude_bits);
}

SinCos Nco::next() {
  const std::uint32_t phase = acc_.next();
  if (config_.mode == Mode::kLookupTable)
    return lut_sincos(phase, table_, config_.table_bits);
  return taylor_sincos(phase, config_.amplitude_bits);
}

void Nco::next_block(std::span<std::int32_t> cos_out, std::span<std::int32_t> sin_out) {
  const std::size_t n = cos_out.size();
  if (sin_out.size() != n)
    throw ConfigError("Nco::next_block: cos/sin spans must have equal length");
  if (config_.mode == Mode::kLookupTable) {
    const std::uint32_t end = twiddc::simd::lut_sincos_block(
        acc_.phase(), acc_.step(), table_.data(), config_.table_bits, n,
        cos_out.data(), sin_out.data());
    acc_.reset(end);
    return;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const SinCos sc = taylor_sincos(acc_.next(), config_.amplitude_bits);
    cos_out[k] = sc.cos;
    sin_out[k] = sc.sin;
  }
}

void Nco::set_frequency(double freq_hz) {
  config_.freq_hz = freq_hz;
  acc_.set_step(PhaseAccumulator::tuning_word(freq_hz, config_.sample_rate_hz));
}

}  // namespace twiddc::dsp
