// twiddc::dsp -- Numerically Controlled Oscillator (paper section 2.1).
//
// A 32-bit phase accumulator advances by a tuning word each input sample;
// the top bits address either a quarter-wave sine look-up table or a Taylor
// series evaluator (the two generation methods the paper names).  Outputs
// are raw signed integers with `amplitude_bits` precision so that the same
// table can back the functional model, the GPP program, the FPGA RTL and the
// Montium mapping (they must agree bit-for-bit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace twiddc::dsp {

/// 32-bit phase accumulator.
class PhaseAccumulator {
 public:
  /// Tuning word for mixing frequency `freq_hz` at sample rate `fs_hz`
  /// (rounded to the nearest representable frequency).
  static std::uint32_t tuning_word(double freq_hz, double fs_hz);

  /// Frequency resolution (Hz per tuning-word LSB) at `fs_hz`.
  static double resolution_hz(double fs_hz);

  explicit PhaseAccumulator(std::uint32_t tuning_word = 0) : step_(tuning_word) {}

  /// Current phase, then advance.  Phase covers [0, 2^32) == [0, 2*pi).
  std::uint32_t next() {
    const std::uint32_t p = phase_;
    phase_ += step_;
    return p;
  }

  [[nodiscard]] std::uint32_t phase() const { return phase_; }
  [[nodiscard]] std::uint32_t step() const { return step_; }
  void set_step(std::uint32_t step) { step_ = step; }
  void reset(std::uint32_t phase = 0) { phase_ = phase; }

 private:
  std::uint32_t phase_ = 0;
  std::uint32_t step_ = 0;
};

/// Quarter-wave sine table: 2^table_bits entries of sin evaluated at
/// mid-points of [0, pi/2), scaled to (2^(amplitude_bits-1) - 1).
/// Shared by every architecture model.
std::vector<std::int32_t> make_quarter_sine_table(int table_bits, int amplitude_bits);

/// A sine/cosine pair produced by the NCO for one phase value.
struct SinCos {
  std::int32_t sin;
  std::int32_t cos;
};

/// Pure function: quarter-wave LUT lookup for a 32-bit phase.  `table` must
/// come from make_quarter_sine_table with matching `table_bits`.
SinCos lut_sincos(std::uint32_t phase, const std::vector<std::int32_t>& table,
                  int table_bits);

/// Pure function: Taylor-series (5th order, range-reduced) evaluation,
/// quantised to amplitude_bits.
SinCos taylor_sincos(std::uint32_t phase, int amplitude_bits);

/// The NCO block: phase accumulator + selectable generation method.
class Nco {
 public:
  enum class Mode { kLookupTable, kTaylor };

  struct Config {
    double freq_hz = 0.0;       ///< mixing frequency
    double sample_rate_hz = 1.0;
    int amplitude_bits = 16;    ///< output precision (12 on the FPGA's bus)
    int table_bits = 10;        ///< LUT address bits (kLookupTable only)
    Mode mode = Mode::kLookupTable;
  };

  explicit Nco(const Config& config);

  /// Produces the sin/cos pair for the current sample and advances phase.
  SinCos next();

  /// Block hot path: fills `cos_out`/`sin_out` (planar, equal length) with
  /// the next cos_out.size() samples and advances phase by as many steps.
  /// Bit-exact with a next() loop; the LUT mode runs through the SIMD shim.
  void next_block(std::span<std::int32_t> cos_out, std::span<std::int32_t> sin_out);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const std::vector<std::int32_t>& table() const { return table_; }
  [[nodiscard]] std::uint32_t tuning_word() const { return acc_.step(); }
  /// Current phase-accumulator value (32-bit phase in [0, 2^32) == [0, 2pi)).
  [[nodiscard]] std::uint32_t phase() const { return acc_.phase(); }
  void reset() { acc_.reset(); }

  /// Retune without resetting phase (the paper's Montium mapping generates
  /// LUT addresses in an ALU precisely so frequency can change during
  /// execution).
  void set_frequency(double freq_hz);

 private:
  Config config_;
  PhaseAccumulator acc_;
  std::vector<std::int32_t> table_;
};

}  // namespace twiddc::dsp
