#include "src/dsp/signal.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::dsp {
namespace {
constexpr double kTwoPi = 6.28318530717958647692528676655900577;
}

ToneGenerator::ToneGenerator(double freq_hz, double sample_rate_hz, double amplitude,
                             double phase_rad)
    : phase_(phase_rad), step_(kTwoPi * freq_hz / sample_rate_hz), amplitude_(amplitude) {
  if (sample_rate_hz <= 0.0) throw ConfigError("ToneGenerator: sample rate must be positive");
}

double ToneGenerator::next() {
  const double v = amplitude_ * std::sin(phase_);
  phase_ += step_;
  if (phase_ > kTwoPi) phase_ -= kTwoPi;
  return v;
}

std::vector<double> make_scene(const std::vector<Component>& components,
                               double sample_rate_hz, std::size_t n, double noise_rms,
                               std::uint64_t seed) {
  if (sample_rate_hz <= 0.0) throw ConfigError("make_scene: sample rate must be positive");
  std::vector<double> out(n, 0.0);
  for (const Component& c : components) {
    const double step = kTwoPi * c.freq_hz / sample_rate_hz;
    for (std::size_t i = 0; i < n; ++i)
      out[i] += c.amplitude * std::sin(step * static_cast<double>(i) + c.phase_rad);
  }
  if (noise_rms > 0.0) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) out[i] += noise_rms * rng.gaussian();
  }
  return out;
}

std::vector<double> make_tone(double freq_hz, double sample_rate_hz, std::size_t n,
                              double amplitude, double phase_rad) {
  return make_scene({{freq_hz, amplitude, phase_rad}}, sample_rate_hz, n);
}

std::vector<std::int64_t> quantize_signal(const std::vector<double>& x, int bits) {
  if (bits < 2 || bits > 32) throw ConfigError("quantize_signal: bits must be in [2,32]");
  const double scale = static_cast<double>((std::int64_t{1} << (bits - 1)) - 1);
  std::vector<std::int64_t> out;
  out.reserve(x.size());
  for (double v : x) {
    const double scaled = v * scale;
    const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
    out.push_back(fixed::saturate(static_cast<std::int64_t>(rounded), bits));
  }
  return out;
}

std::vector<double> dequantize_signal(const std::vector<std::int64_t>& x, int bits) {
  const double scale = static_cast<double>((std::int64_t{1} << (bits - 1)) - 1);
  std::vector<double> out;
  out.reserve(x.size());
  for (std::int64_t v : x) out.push_back(static_cast<double>(v) / scale);
  return out;
}

std::vector<std::int64_t> random_samples(int bits, std::size_t n, Rng& rng) {
  if (bits < 1 || bits > 32) throw ConfigError("random_samples: bits must be in [1,32]");
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(fixed::wrap(static_cast<std::int64_t>(rng()), bits));
  return out;
}

std::vector<double> make_drm_scene(double center_hz, std::size_t n, double sample_rate_hz,
                                   int carriers, std::uint64_t seed) {
  if (carriers < 1) throw ConfigError("make_drm_scene: carriers must be >= 1");
  Rng rng(seed);
  std::vector<Component> comps;
  // Target band: `carriers` tones across ~9 kHz, DRM-ish occupancy.
  const double band_width = 9.0e3;
  for (int c = 0; c < carriers; ++c) {
    const double offset =
        band_width * (static_cast<double>(c) / (carriers - 1 > 0 ? carriers - 1 : 1) - 0.5);
    comps.push_back({center_hz + offset, 0.08, rng.uniform(0.0, kTwoPi)});
  }
  // Interferers: strong neighbours the filter chain must reject.
  comps.push_back({center_hz + 150.0e3, 0.35, rng.uniform(0.0, kTwoPi)});
  comps.push_back({center_hz - 220.0e3, 0.35, rng.uniform(0.0, kTwoPi)});
  comps.push_back({center_hz + 2.5e6, 0.5, rng.uniform(0.0, kTwoPi)});
  comps.push_back({center_hz - 7.0e6, 0.5, rng.uniform(0.0, kTwoPi)});
  return make_scene(comps, sample_rate_hz, n, /*noise_rms=*/0.002, seed);
}

}  // namespace twiddc::dsp
