// twiddc::dsp -- deterministic test/stimulus signal generation.
//
// Substitutes for the paper's missing AD-converter input: tones, multi-tone
// scenes (a DRM-like target band plus interferers), white noise, and the
// "random data, 50 % toggle rate" stimulus the paper uses for FPGA power
// estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"

namespace twiddc::dsp {

/// One spectral component of a synthetic scene.
struct Component {
  double freq_hz = 0.0;
  double amplitude = 1.0;  ///< linear, relative to full scale
  double phase_rad = 0.0;
};

/// Streaming single tone.
class ToneGenerator {
 public:
  ToneGenerator(double freq_hz, double sample_rate_hz, double amplitude = 1.0,
                double phase_rad = 0.0);
  double next();

 private:
  double phase_;
  double step_;
  double amplitude_;
};

/// n samples of sum of components (+ optional white Gaussian noise of the
/// given RMS), as doubles in [-1, 1] (not clipped; keep total amplitude < 1).
std::vector<double> make_scene(const std::vector<Component>& components,
                               double sample_rate_hz, std::size_t n,
                               double noise_rms = 0.0, std::uint64_t seed = 0x5eed);

/// Single tone convenience wrapper.
std::vector<double> make_tone(double freq_hz, double sample_rate_hz, std::size_t n,
                              double amplitude = 1.0, double phase_rad = 0.0);

/// Quantises [-1,1] doubles to signed `bits`-wide integers at full scale
/// (round to nearest, saturating).
std::vector<std::int64_t> quantize_signal(const std::vector<double>& x, int bits);

/// Back-converts raw integers to doubles with the scale of `bits`.
std::vector<double> dequantize_signal(const std::vector<std::int64_t>& x, int bits);

/// Uniformly random full-range `bits`-wide integers: the 50 %-toggle stimulus
/// used for the paper's FPGA power estimation.
std::vector<std::int64_t> random_samples(int bits, std::size_t n, Rng& rng);

/// A DRM-like scene at the paper's 64.512 MHz input rate: a target band of
/// `carriers` closely spaced tones centred on `center_hz` (~10 kHz wide, like
/// a DRM channel), plus strong out-of-band interferers the DDC must reject.
std::vector<double> make_drm_scene(double center_hz, std::size_t n,
                                   double sample_rate_hz = 64.512e6,
                                   int carriers = 9, std::uint64_t seed = 0x5eed);

}  // namespace twiddc::dsp
