#include "src/dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace twiddc::dsp {
namespace {

std::size_t floor_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

Spectrum finish(std::vector<cplx> bins, double sample_rate_hz, double coherent_gain,
                bool one_sided) {
  const std::size_t n = bins.size();
  Spectrum s;
  s.sample_rate_hz = sample_rate_hz;
  s.bin_hz = sample_rate_hz / static_cast<double>(n);
  const std::size_t out_bins = one_sided ? n / 2 + 1 : n;
  s.power_db.resize(out_bins);
  // Normalise so a full-scale (amplitude 1.0) sine reads ~0 dB: its two-sided
  // line height is N*coherent_gain/2 per bin (for a real signal).
  const double ref = static_cast<double>(n) * coherent_gain / (one_sided ? 2.0 : 1.0);
  for (std::size_t i = 0; i < out_bins; ++i) {
    const double mag = std::abs(bins[i]) / ref;
    s.power_db[i] = power_db(mag * mag);
  }
  return s;
}

}  // namespace

std::size_t Spectrum::bin_of(double f) const {
  if (power_db.empty() || bin_hz <= 0.0) return 0;
  const auto idx = static_cast<std::int64_t>(std::llround(f / bin_hz));
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(power_db.size()) - 1));
}

std::size_t Spectrum::peak_bin() const {
  return static_cast<std::size_t>(
      std::max_element(power_db.begin(), power_db.end()) - power_db.begin());
}

double Spectrum::band_power(double f_lo, double f_hi) const {
  double total = 0.0;
  for (std::size_t i = bin_of(f_lo); i <= bin_of(f_hi) && i < power_db.size(); ++i)
    total += db_to_power(power_db[i]);
  return total;
}

Spectrum periodogram(const std::vector<double>& x, double sample_rate_hz, Window window) {
  if (x.size() < 2) throw ConfigError("periodogram: need at least 2 samples");
  const std::size_t n = floor_pow2(x.size());
  const std::vector<double> w = window_values(window, static_cast<int>(n));
  double wsum = 0.0;
  std::vector<cplx> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = cplx(x[i] * w[i], 0.0);
    wsum += w[i];
  }
  fft_inplace(data);
  return finish(std::move(data), sample_rate_hz, wsum / static_cast<double>(n),
                /*one_sided=*/true);
}

Spectrum periodogram_complex(const std::vector<std::complex<double>>& x,
                             double sample_rate_hz, Window window) {
  if (x.size() < 2) throw ConfigError("periodogram: need at least 2 samples");
  const std::size_t n = floor_pow2(x.size());
  const std::vector<double> w = window_values(window, static_cast<int>(n));
  double wsum = 0.0;
  std::vector<cplx> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = x[i] * w[i];
    wsum += w[i];
  }
  fft_inplace(data);
  // For complex signals a full-scale tone occupies a single bin at height
  // N*coherent_gain, so use the two-sided reference.
  return finish(std::move(data), sample_rate_hz, wsum / static_cast<double>(n),
                /*one_sided=*/false);
}

double sfdr_db(const Spectrum& s, int exclude_bins) {
  const std::size_t peak = s.peak_bin();
  double best = -400.0;
  for (std::size_t i = 0; i < s.power_db.size(); ++i) {
    if (i + static_cast<std::size_t>(exclude_bins) >= peak &&
        i <= peak + static_cast<std::size_t>(exclude_bins))
      continue;
    best = std::max(best, s.power_db[i]);
  }
  return s.power_db[peak] - best;
}

double sinad_db(const Spectrum& s, int exclude_bins) {
  const std::size_t peak = s.peak_bin();
  double signal = 0.0;
  double rest = 0.0;
  for (std::size_t i = 0; i < s.power_db.size(); ++i) {
    const double p = db_to_power(s.power_db[i]);
    const bool in_peak = i + static_cast<std::size_t>(exclude_bins) >= peak &&
                         i <= peak + static_cast<std::size_t>(exclude_bins);
    (in_peak ? signal : rest) += p;
  }
  if (rest <= 0.0) return 300.0;
  return power_db(signal / rest);
}

double snr_db(const std::vector<double>& golden, const std::vector<double>& test) {
  if (golden.size() != test.size() || golden.empty())
    throw ConfigError("snr_db: inputs must be equal-sized and non-empty");
  double sig = 0.0;
  double err = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    sig += golden[i] * golden[i];
    const double e = test[i] - golden[i];
    err += e * e;
  }
  if (err <= 0.0) return 300.0;
  if (sig <= 0.0) return -300.0;
  return power_db(sig / err);
}

}  // namespace twiddc::dsp
