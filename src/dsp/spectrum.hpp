// twiddc::dsp -- spectral measurements on real or complex sample blocks.
//
// Used by the verification tests (does the DDC actually select the band?)
// and by the figure benches (per-stage spectra for Figure 1).
#pragma once

#include <complex>
#include <vector>

#include "src/dsp/fft.hpp"
#include "src/dsp/window.hpp"

namespace twiddc::dsp {

/// One-sided power spectrum estimate of a real signal.
struct Spectrum {
  std::vector<double> power_db;  ///< bin power in dBFS-ish (relative) units
  double bin_hz = 0.0;           ///< frequency resolution
  double sample_rate_hz = 0.0;

  /// Frequency of bin `i` in Hz.
  [[nodiscard]] double freq(std::size_t i) const { return static_cast<double>(i) * bin_hz; }
  /// Bin index nearest to `f` Hz (clamped).
  [[nodiscard]] std::size_t bin_of(double f) const;
  /// Peak bin index.
  [[nodiscard]] std::size_t peak_bin() const;
  /// Total power (linear) in [f_lo, f_hi] Hz.
  [[nodiscard]] double band_power(double f_lo, double f_hi) const;
};

/// Windowed periodogram of a real signal (size truncated to the largest
/// power of two).  Power is normalised so that a full-scale sine reads
/// ~0 dB regardless of the window.
Spectrum periodogram(const std::vector<double>& x, double sample_rate_hz,
                     Window window = Window::kBlackmanHarris);

/// Complex-input variant; returns a two-sided spectrum of size N where bin i
/// covers frequency i*fs/N for i < N/2 and (i-N)*fs/N above.
Spectrum periodogram_complex(const std::vector<std::complex<double>>& x,
                             double sample_rate_hz,
                             Window window = Window::kBlackmanHarris);

/// Spurious-free dynamic range: distance in dB between the largest bin and
/// the largest bin outside +-`exclude_bins` around it.
double sfdr_db(const Spectrum& s, int exclude_bins = 3);

/// Signal-to-noise-and-distortion: ratio of the peak's power (+-exclude_bins)
/// to everything else, in dB.
double sinad_db(const Spectrum& s, int exclude_bins = 3);

/// SNR of `test` against a `golden` reference of the same length:
/// 10*log10(sum(golden^2)/sum((test-golden)^2)).
double snr_db(const std::vector<double>& golden, const std::vector<double>& test);

}  // namespace twiddc::dsp
