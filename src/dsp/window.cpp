#include "src/dsp/window.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace twiddc::dsp {
namespace {
constexpr double kPi = 3.14159265358979323846264338327950288;
}

double bessel_i0(double x) {
  // Power series: I0(x) = sum ((x/2)^k / k!)^2.  Converges quickly for the
  // beta range used in filter design (|x| < 30).
  const double half = x / 2.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half / k) * (half / k);
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

double kaiser_beta_for_attenuation(double atten_db) {
  if (atten_db > 50.0) return 0.1102 * (atten_db - 8.7);
  if (atten_db >= 21.0)
    return 0.5842 * std::pow(atten_db - 21.0, 0.4) + 0.07886 * (atten_db - 21.0);
  return 0.0;
}

std::vector<double> window_values(Window window, int n, double kaiser_beta) {
  if (n <= 0) throw ConfigError("window_values: n must be positive, got " + std::to_string(n));
  std::vector<double> w(static_cast<std::size_t>(n));
  if (n == 1) {
    w[0] = 1.0;
    return w;
  }
  const double denom = static_cast<double>(n - 1);
  for (int k = 0; k < n; ++k) {
    const double x = static_cast<double>(k) / denom;  // 0..1
    double v = 1.0;
    switch (window) {
      case Window::kRectangular:
        v = 1.0;
        break;
      case Window::kHann:
        v = 0.5 - 0.5 * std::cos(2.0 * kPi * x);
        break;
      case Window::kHamming:
        v = 0.54 - 0.46 * std::cos(2.0 * kPi * x);
        break;
      case Window::kBlackman:
        v = 0.42 - 0.5 * std::cos(2.0 * kPi * x) + 0.08 * std::cos(4.0 * kPi * x);
        break;
      case Window::kBlackmanHarris:
        v = 0.35875 - 0.48829 * std::cos(2.0 * kPi * x) +
            0.14128 * std::cos(4.0 * kPi * x) - 0.01168 * std::cos(6.0 * kPi * x);
        break;
      case Window::kKaiser: {
        const double t = 2.0 * x - 1.0;  // -1..1
        v = bessel_i0(kaiser_beta * std::sqrt(std::max(0.0, 1.0 - t * t))) /
            bessel_i0(kaiser_beta);
        break;
      }
    }
    w[static_cast<std::size_t>(k)] = v;
  }
  return w;
}

std::string window_name(Window window) {
  switch (window) {
    case Window::kRectangular: return "rectangular";
    case Window::kHann: return "hann";
    case Window::kHamming: return "hamming";
    case Window::kBlackman: return "blackman";
    case Window::kBlackmanHarris: return "blackman-harris";
    case Window::kKaiser: return "kaiser";
  }
  return "unknown";
}

double window_enbw(const std::vector<double>& w) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : w) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum == 0.0) return 0.0;
  return static_cast<double>(w.size()) * sum_sq / (sum * sum);
}

}  // namespace twiddc::dsp
