// twiddc::dsp -- window functions for FIR design and spectral estimation.
#pragma once

#include <string>
#include <vector>

namespace twiddc::dsp {

enum class Window {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kBlackmanHarris,  ///< 4-term, -92 dB sidelobes
  kKaiser,          ///< beta selectable via window_values(..., beta)
};

/// Returns the window's n sample values.  Symmetric ("filter design")
/// convention: w[k] == w[n-1-k].  `kaiser_beta` is used only for kKaiser.
std::vector<double> window_values(Window window, int n, double kaiser_beta = 8.6);

/// Human-readable window name ("hamming", ...).
std::string window_name(Window window);

/// Equivalent noise bandwidth of the window in bins (used to normalise
/// periodogram power estimates).
double window_enbw(const std::vector<double>& w);

/// Kaiser beta for a target stopband attenuation in dB (Kaiser's formula).
double kaiser_beta_for_attenuation(double atten_db);

/// Modified Bessel function of the first kind, order zero (series expansion);
/// exposed for tests of the Kaiser window.
double bessel_i0(double x);

}  // namespace twiddc::dsp
