#include "src/energy/architecture_result.hpp"

namespace twiddc::energy {

ArchitectureResult ArchitectureResult::scaled_to(const TechnologyNode& to) const {
  ArchitectureResult r = *this;
  r.technology = to;
  r.power_mw = scale_power_mw(power_mw, technology, to);
  r.estimated = true;
  r.area_mm2.reset();  // the paper never scales area
  return r;
}

std::vector<ArchitectureResult> paper_table7() {
  // Values verbatim from Table 7 of the paper.  The ARM row keeps the
  // table's (internally inconsistent) 6697 MHz figure; section 4 derives
  // 9740 MHz, which is what 2.435 W corresponds to at 0.25 mW/MHz.
  return {
      {"TI GC4016", TechnologyNode::um250(), 80.0, 115.0, std::nullopt, false},
      {"TI GC4016", TechnologyNode::um130(), 80.0, 13.8, std::nullopt, true},
      {"Customised Low Power DDC", TechnologyNode::um180(), 64.512, 27.0, 1.7, false},
      {"Customised Low Power DDC", TechnologyNode::um130(), 64.512, 8.7, std::nullopt, true},
      {"ARM922T", TechnologyNode::um130_arm(), 6697.0, 2435.0, 3.2, false},
      {"Altera Cyclone I", TechnologyNode::um130_cyclone1(), 64.512, 93.4, std::nullopt, false},
      {"Altera Cyclone II", TechnologyNode::um90(), 64.512, 31.11, std::nullopt, false},
      {"Altera Cyclone II", TechnologyNode::um130(), 64.512, 44.94, std::nullopt, true},
      {"Montium TP", TechnologyNode::um130(), 64.512, 38.7, 2.2, false},
  };
}

}  // namespace twiddc::energy
