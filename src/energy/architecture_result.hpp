// twiddc::energy -- the cross-architecture comparison rows (paper Table 7).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/energy/technology.hpp"

namespace twiddc::energy {

/// One row of Table 7: an architecture running the reference DDC.
struct ArchitectureResult {
  std::string solution;        ///< e.g. "Montium TP"
  TechnologyNode technology;
  double freq_mhz = 0.0;       ///< clock required to sustain the DDC
  double power_mw = 0.0;
  std::optional<double> area_mm2;  ///< n.a. for most rows
  bool estimated = false;      ///< true for technology-scaled rows

  /// Derived: energy per output sample at the paper's 24 kHz output rate,
  /// in nanojoule (a metric the paper implies but never prints).
  [[nodiscard]] double energy_per_output_nj(double output_rate_hz = 24.0e3) const {
    // mW -> W is 1e-3, J -> nJ is 1e9: net 1e6 / rate.
    return power_mw * 1e6 / output_rate_hz;
  }

  /// A scaled copy of this row at technology `to` (marked estimated).
  [[nodiscard]] ArchitectureResult scaled_to(const TechnologyNode& to) const;
};

/// The paper's published Table 7 rows, used by the benches to print
/// paper-vs-reproduced comparisons.
std::vector<ArchitectureResult> paper_table7();

}  // namespace twiddc::energy
