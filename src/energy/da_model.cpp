#include "src/energy/da_model.hpp"

#include "src/core/pipeline.hpp"
#include "src/dsp/da_fir.hpp"

namespace twiddc::energy {

FirImplCost da_fir_cost(const std::string& stage_label, std::size_t taps,
                        int input_bits, const DaEnergyParams& params) {
  FirImplCost c;
  c.stage_label = stage_label;
  c.taps = taps;
  c.input_bits = input_bits > 0 ? input_bits : 0;

  c.multipliers = taps;
  c.mac_energy_per_output = static_cast<double>(taps) * params.multiply_energy;

  const dsp::DaFirEngine::Cost da =
      dsp::DaFirEngine::cost(taps, input_bits > 0 ? input_bits : 0);
  c.da_eligible = da.eligible;
  c.lut4_tables = da.slices;
  c.table_bits = da.table_entries * 64;  // int64 partial sums
  c.lookups_per_output = da.lookups_per_output;
  if (da.eligible) {
    c.da_energy_per_output =
        static_cast<double>(da.lookups_per_output) * params.lookup_energy;
    c.da_wins = c.da_energy_per_output < c.mac_energy_per_output;
  }
  return c;
}

std::vector<FirImplCost> plan_fir_costs(const core::ChainPlan& plan,
                                        const DaEnergyParams& params) {
  std::vector<FirImplCost> costs;
  // Width tracking mirrors CompiledPlan::stage_input_bits: the mixer bus
  // width flows through, narrowing stages pin it, non-narrowing non-trivial
  // stages lose it.
  int width = plan.front_end.mixer_out_bits;
  for (const core::StageSpec& st : plan.stages) {
    if (st.kind == core::StageSpec::Kind::kFirDecimator ||
        st.kind == core::StageSpec::Kind::kPolyphaseFir)
      costs.push_back(da_fir_cost(st.label, st.taps.size(), width, params));
    if (st.narrow_bits != 0)
      width = st.narrow_bits;
    else if (st.kind != core::StageSpec::Kind::kPassthrough)
      width = 0;
  }
  return costs;
}

}  // namespace twiddc::energy
