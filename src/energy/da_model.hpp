// twiddc::energy -- the multiplier-vs-LUT trade of DA-lowered FIR stages.
//
// A MAC FIR spends K hardware multipliers (or K multiply ops per output on a
// sequential datapath); a distributed-arithmetic FIR spends zero multipliers
// and instead ceil(K/4) LUT partial-sum tables walked W times per output
// (W = input width).  On FPGA fabric that converts scarce DSP blocks into
// abundant LUTs; on an ASIC it converts multiplier area into ROM bits.  This
// model quantifies both realisations per FIR stage of a plan so the
// scenario layer can report what a DA lowering buys (or costs) a given
// deployment -- the numbers mirror the cost model the plan compiler's kAuto
// lowering uses (dsp::DaFirEngine::cost).
#pragma once

#include <string>
#include <vector>

namespace twiddc::core {
struct ChainPlan;
}  // namespace twiddc::core

namespace twiddc::energy {

/// Relative energy weights of the primitive ops (defaults are
/// FPGA-flavoured: one 18x18 multiply costs roughly an order of magnitude
/// more than a LUT4 read + add).  Units are arbitrary but shared, so only
/// the ratio matters.
struct DaEnergyParams {
  double multiply_energy = 10.0;  ///< one W x tap multiply-accumulate
  double lookup_energy = 1.0;     ///< one LUT4 read + partial-sum add
};

/// Both realisations of one FIR stage.
struct FirImplCost {
  std::string stage_label;
  std::size_t taps = 0;
  int input_bits = 0;  ///< 0 = unknown width (DA ineligible)

  // MAC realisation.
  std::size_t multipliers = 0;  ///< K multipliers (== MACs per output)
  double mac_energy_per_output = 0.0;

  // DA realisation.
  bool da_eligible = false;
  std::size_t lut4_tables = 0;        ///< ceil(K/4) partial-sum tables
  std::size_t table_bits = 0;         ///< total ROM bits (entries * 64)
  std::size_t lookups_per_output = 0; ///< W * ceil(K/4)
  double da_energy_per_output = 0.0;

  /// DA beats MAC under the given energy weights (false when ineligible).
  bool da_wins = false;
};

/// Cost of one FIR stage with `taps` coefficients fed `input_bits`-wide
/// samples (input_bits <= 0 marks the width unknown: DA ineligible).
FirImplCost da_fir_cost(const std::string& stage_label, std::size_t taps,
                        int input_bits, const DaEnergyParams& params = {});

/// One FirImplCost per FIR stage of `plan`, with each stage's input width
/// tracked through the conditioning chain exactly as the plan compiler does
/// (CompiledPlan::stage_input_bits).  Non-FIR stages are skipped.  This is
/// the hook the FPGA/ASIC scenario reports use to attach the
/// multiplier-vs-LUT trade to a concrete topology.
std::vector<FirImplCost> plan_fir_costs(const core::ChainPlan& plan,
                                        const DaEnergyParams& params = {});

}  // namespace twiddc::energy
