#include "src/energy/scenario.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace twiddc::energy {

ScenarioResult evaluate_scenario(const DutyCycleModel& model, double duty_cycle,
                                 int activations_per_day) {
  if (duty_cycle < 0.0 || duty_cycle > 1.0)
    throw ConfigError("evaluate_scenario: duty_cycle must be in [0,1]");
  if (activations_per_day < 0)
    throw ConfigError("evaluate_scenario: activations_per_day must be >= 0");

  constexpr double kSecondsPerDay = 86400.0;
  const double active_s = duty_cycle * kSecondsPerDay;
  const double idle_s = kSecondsPerDay - active_s;

  const double reconfig_s_each =
      model.reconfig_bandwidth_mbps > 0.0
          ? (model.reconfig_bytes * 8.0) / (model.reconfig_bandwidth_mbps * 1e6)
          : 0.0;
  const double reconfig_s = reconfig_s_each * activations_per_day;

  double energy_mj = model.active_power_mw * active_s +
                     model.reconfig_power_mw * reconfig_s;
  if (!model.reusable_when_idle) energy_mj += model.idle_power_mw * idle_s;

  ScenarioResult r;
  r.name = model.name;
  r.energy_per_day_j = energy_mj / 1e3;
  r.reconfig_seconds_per_day = reconfig_s;
  r.idle_time_reusable = model.reusable_when_idle;
  return r;
}

std::vector<ScenarioResult> rank_architectures(const std::vector<DutyCycleModel>& models,
                                               double duty_cycle,
                                               int activations_per_day) {
  std::vector<ScenarioResult> results;
  results.reserve(models.size());
  for (const auto& m : models)
    results.push_back(evaluate_scenario(m, duty_cycle, activations_per_day));
  std::sort(results.begin(), results.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) {
              return a.energy_per_day_j < b.energy_per_day_j;
            });
  return results;
}

}  // namespace twiddc::energy
