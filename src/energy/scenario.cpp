#include "src/energy/scenario.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/core/backend.hpp"
#include "src/core/ddc_config.hpp"

namespace twiddc::energy {

ScenarioResult evaluate_scenario(const DutyCycleModel& model, double duty_cycle,
                                 int activations_per_day) {
  if (duty_cycle < 0.0 || duty_cycle > 1.0)
    throw ConfigError("evaluate_scenario: duty_cycle must be in [0,1]");
  if (activations_per_day < 0)
    throw ConfigError("evaluate_scenario: activations_per_day must be >= 0");

  constexpr double kSecondsPerDay = 86400.0;
  const double active_s = duty_cycle * kSecondsPerDay;
  const double idle_s = kSecondsPerDay - active_s;

  const double reconfig_s_each =
      model.reconfig_bandwidth_mbps > 0.0
          ? (model.reconfig_bytes * 8.0) / (model.reconfig_bandwidth_mbps * 1e6)
          : 0.0;
  const double reconfig_s = reconfig_s_each * activations_per_day;

  double energy_mj = model.active_power_mw * active_s +
                     model.reconfig_power_mw * reconfig_s;
  if (!model.reusable_when_idle) energy_mj += model.idle_power_mw * idle_s;

  ScenarioResult r;
  r.name = model.name;
  r.energy_per_day_j = energy_mj / 1e3;
  r.reconfig_seconds_per_day = reconfig_s;
  r.idle_time_reusable = model.reusable_when_idle;
  return r;
}

std::vector<DutyCycleModel> duty_models_from_backends(const core::DdcConfig& config) {
  std::vector<DutyCycleModel> models;
  for (auto& backend : core::BackendRegistry::instance().create_all()) {
    try {
      backend->configure(backend->plan_for(config));
    } catch (const core::LoweringError&) {
      continue;  // this architecture cannot realise the rate plan
    }
    const auto profile = backend->power_profile();
    if (!profile.modeled) continue;  // simulation-only functional backend
    DutyCycleModel m;
    m.name = backend->name();
    m.active_power_mw = profile.active_power_mw;
    m.idle_power_mw = profile.idle_power_mw;
    m.reusable_when_idle = profile.reusable_when_idle;
    m.reconfig_bytes = profile.reconfig_bytes;
    m.reconfig_power_mw = profile.reconfig_power_mw;
    models.push_back(std::move(m));
  }
  return models;
}

std::vector<ScenarioResult> rank_architectures(const std::vector<DutyCycleModel>& models,
                                               double duty_cycle,
                                               int activations_per_day) {
  std::vector<ScenarioResult> results;
  results.reserve(models.size());
  for (const auto& m : models)
    results.push_back(evaluate_scenario(m, duty_cycle, activations_per_day));
  std::sort(results.begin(), results.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) {
              return a.energy_per_day_j < b.energy_per_day_j;
            });
  return results;
}

}  // namespace twiddc::energy
