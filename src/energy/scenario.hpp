// twiddc::energy -- the conclusion's two deployment scenarios, quantified.
//
// Section 7 argues qualitatively: ASICs win when the DDC runs full-time
// (static scenario); reconfigurable fabric wins when the DDC is only needed
// part-time because the idle silicon can do other work (reconfigurable
// scenario).  This model turns that argument into numbers: energy per day
// for a given duty cycle, counting idle/standby power and reconfiguration
// overhead.
#pragma once

#include <string>
#include <vector>

namespace twiddc::core {
struct DdcConfig;
}  // namespace twiddc::core

namespace twiddc::energy {

/// How one architecture behaves in a duty-cycled deployment.
struct DutyCycleModel {
  std::string name;
  double active_power_mw = 0.0;   ///< running the DDC
  double idle_power_mw = 0.0;     ///< DDC not needed (standby leakage)
  bool reusable_when_idle = false;///< fabric can host other tasks while idle
  double reconfig_bytes = 0.0;    ///< configuration size loaded on activation
  double reconfig_bandwidth_mbps = 100.0;  ///< config-load rate
  double reconfig_power_mw = 0.0; ///< power while (re)configuring
};

struct ScenarioResult {
  std::string name;
  double energy_per_day_j = 0.0;     ///< energy charged to the DDC function
  double reconfig_seconds_per_day = 0.0;
  bool idle_time_reusable = false;
};

/// Energy per day for a DDC needed `duty_cycle` (0..1) of the time, with
/// `activations_per_day` on/off transitions.  If the fabric is reusable when
/// idle, idle power is *not* charged to the DDC (the fabric is doing other
/// useful work); otherwise idle/standby power is charged.
ScenarioResult evaluate_scenario(const DutyCycleModel& model, double duty_cycle,
                                 int activations_per_day);

/// Convenience: evaluates several models under the same duty cycle and sorts
/// ascending by energy.
std::vector<ScenarioResult> rank_architectures(const std::vector<DutyCycleModel>& models,
                                               double duty_cycle,
                                               int activations_per_day);

/// One DutyCycleModel per registered ArchitectureBackend that models real
/// silicon (BackendPowerProfile::modeled): each backend is configured with
/// its own lowering of `config`'s rate plan and its power profile becomes
/// the model.  Backends whose architecture cannot realise the plan are
/// skipped (their LoweringError is the documented reason), as are the
/// simulation-only functional backends.  Call backends::register_builtin()
/// (or register your own backends) first.
std::vector<DutyCycleModel> duty_models_from_backends(const core::DdcConfig& config);

}  // namespace twiddc::energy
