#include "src/energy/technology.hpp"

#include <cstdio>

#include "src/common/error.hpp"

namespace twiddc::energy {

std::string TechnologyNode::label() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fum @ %.2fV", feature_um, vdd);
  return buf;
}

double scale_power_mw(double power_mw, const TechnologyNode& from,
                      const TechnologyNode& to) {
  if (from.feature_um <= 0.0 || to.feature_um <= 0.0 || from.vdd <= 0.0 || to.vdd <= 0.0)
    throw ConfigError("scale_power_mw: technology parameters must be positive");
  if (power_mw < 0.0) throw ConfigError("scale_power_mw: power must be non-negative");
  const double voltage_ratio = to.vdd / from.vdd;
  const double cap_ratio = to.feature_um / from.feature_um;
  return power_mw * voltage_ratio * voltage_ratio * cap_ratio;
}

double dynamic_power_mw(double activity, double capacitance_nf, double vdd,
                        double freq_mhz) {
  if (activity < 0.0 || capacitance_nf < 0.0 || vdd < 0.0 || freq_mhz < 0.0)
    throw ConfigError("dynamic_power_mw: arguments must be non-negative");
  // P = a * C * V^2 * f;  nF * V^2 * MHz = 1e-9 * 1e6 W = mW.
  return activity * capacitance_nf * vdd * vdd * freq_mhz;
}

}  // namespace twiddc::energy
