// twiddc::energy -- CMOS technology nodes and the paper's power scaling law.
//
// Section 3.1.2: "the dynamic power consumption ... is linear related to the
// total capacitance and frequency and quadratic related to the voltage.
// With reduction from 0.25um to 0.13um the capacity goes down with a factor
// 0.25/0.13.  The same goes for the voltage that drops with a factor
// 2.5/1.2."  So P2 = P1 * (V2/V1)^2 * (L2/L1).
#pragma once

#include <string>

namespace twiddc::energy {

/// A manufacturing technology operating point.
struct TechnologyNode {
  double feature_um = 0.13;  ///< feature size in micrometres
  double vdd = 1.2;          ///< supply voltage in volts

  [[nodiscard]] std::string label() const;

  /// The nodes named in the paper.
  static TechnologyNode um250() { return {0.25, 2.5}; }   // TI GC4016
  static TechnologyNode um180() { return {0.18, 1.8}; }   // custom ASIC
  static TechnologyNode um130() { return {0.13, 1.2}; }   // reference node
  static TechnologyNode um130_arm() { return {0.13, 1.08}; }  // ARM922T row
  static TechnologyNode um130_cyclone1() { return {0.13, 1.5}; }
  static TechnologyNode um90() { return {0.09, 1.2}; }    // Cyclone II
};

/// Scales a dynamic power figure from technology `from` to `to`:
/// P_to = P_from * (V_to/V_from)^2 * (L_to/L_from).
/// Throws ConfigError on non-physical nodes.
double scale_power_mw(double power_mw, const TechnologyNode& from,
                      const TechnologyNode& to);

/// Dynamic CMOS power in mW from first principles:
/// P = alpha * C_eff[nF] * Vdd^2 * f[MHz]  (alpha = activity factor).
/// Used by the custom-ASIC gate-activity estimator.
double dynamic_power_mw(double activity, double capacitance_nf, double vdd,
                        double freq_mhz);

}  // namespace twiddc::energy
