// twiddc::fixed -- a typed Q-format fixed-point value.
//
// FixedPoint<Rep, FracBits> stores a signed two's-complement number with
// FracBits fractional bits in the integer type Rep.  All arithmetic widens
// to 64 bits internally; narrowing back to Rep saturates by default (the
// behaviour of every datapath in the paper except the CIC integrators,
// which use raw wrap-around arithmetic -- see qformat.hpp).
//
// The DSP blocks use q15 for NCO outputs and FIR coefficients, q11-in-int16
// for the FPGA's 12-bit busses, and raw int64 for CIC internals.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "src/fixed/qformat.hpp"

namespace twiddc::fixed {

template <typename Rep, int FracBits>
class FixedPoint {
  static_assert(std::is_integral_v<Rep> && std::is_signed_v<Rep>,
                "Rep must be a signed integer type");
  static_assert(FracBits >= 0 && FracBits < static_cast<int>(sizeof(Rep) * 8),
                "FracBits must leave room for the sign bit");

 public:
  using rep_type = Rep;
  static constexpr int kFracBits = FracBits;
  static constexpr int kTotalBits = static_cast<int>(sizeof(Rep) * 8);
  static constexpr double kScale = static_cast<double>(std::int64_t{1} << FracBits);

  constexpr FixedPoint() = default;

  /// Constructs from a raw integer representation (no scaling).
  static constexpr FixedPoint from_raw(Rep raw) {
    FixedPoint v;
    v.raw_ = raw;
    return v;
  }

  /// Constructs from a real value, rounding to nearest and saturating.
  static constexpr FixedPoint from_double(double value) {
    const double scaled = value * kScale;
    // round-half-away-from-zero, then saturate into Rep.
    const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
    const std::int64_t clamped =
        saturate(static_cast<std::int64_t>(rounded), kTotalBits);
    FixedPoint v;
    v.raw_ = static_cast<Rep>(clamped);
    return v;
  }

  /// The most positive representable value.
  static constexpr FixedPoint max() {
    return from_raw(std::numeric_limits<Rep>::max());
  }
  /// The most negative representable value.
  static constexpr FixedPoint min() {
    return from_raw(std::numeric_limits<Rep>::min());
  }
  /// One least-significant-bit step.
  static constexpr double lsb() { return 1.0 / kScale; }

  [[nodiscard]] constexpr Rep raw() const { return raw_; }
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }

  /// Saturating addition.
  friend constexpr FixedPoint operator+(FixedPoint a, FixedPoint b) {
    const std::int64_t sum = std::int64_t{a.raw_} + b.raw_;
    return from_raw(static_cast<Rep>(saturate(sum, kTotalBits)));
  }
  /// Saturating subtraction.
  friend constexpr FixedPoint operator-(FixedPoint a, FixedPoint b) {
    const std::int64_t diff = std::int64_t{a.raw_} - b.raw_;
    return from_raw(static_cast<Rep>(saturate(diff, kTotalBits)));
  }
  /// Saturating negation (negating min() yields max()).
  constexpr FixedPoint operator-() const {
    return from_raw(static_cast<Rep>(saturate(-std::int64_t{raw_}, kTotalBits)));
  }

  /// Saturating Q-format multiplication with round-to-nearest: the 2*FracBits
  /// product is shifted back to FracBits.
  friend constexpr FixedPoint operator*(FixedPoint a, FixedPoint b) {
    const std::int64_t wide = std::int64_t{a.raw_} * b.raw_;
    const std::int64_t shifted = shift_right(wide, FracBits, Rounding::kNearest);
    return from_raw(static_cast<Rep>(saturate(shifted, kTotalBits)));
  }

  constexpr auto operator<=>(const FixedPoint&) const = default;

 private:
  Rep raw_ = 0;
};

/// Q1.15: the NCO/coefficient format used by the Montium's 16-bit datapath.
using q15 = FixedPoint<std::int16_t, 15>;
/// Q1.11 stored in int16: the FPGA's 12-bit bus format (sign + 11 fraction).
using q11 = FixedPoint<std::int16_t, 11>;
/// Q1.31: double-width accumulation format.
using q31 = FixedPoint<std::int32_t, 31>;

/// Widening multiply of two fixed-point values into a raw 64-bit integer with
/// FracA+FracB fractional bits.  Used where an explicit accumulator carries
/// the full product (FPGA FIR's 24-bit product into a 31-bit accumulator).
template <typename RepA, int FracA, typename RepB, int FracB>
constexpr std::int64_t wide_mul(FixedPoint<RepA, FracA> a, FixedPoint<RepB, FracB> b) {
  return std::int64_t{a.raw()} * std::int64_t{b.raw()};
}

}  // namespace twiddc::fixed
