// twiddc::fixed -- raw two's-complement helpers.
//
// The architecture simulators (FPGA RTL, Montium, GPP) operate on raw
// integers whose width is a *runtime* property (a 12-bit bus, a 31-bit
// accumulator, a 16-bit ALU).  These helpers implement the width-limited
// arithmetic all of them share: saturation, wrap-around, and rounded
// right-shifts.  The typed FixedPoint wrapper in fixed_point.hpp builds on
// the same primitives.
#pragma once

#include <cassert>
#include <cstdint>

namespace twiddc::fixed {

/// How narrowing handles out-of-range values.
enum class Overflow {
  kSaturate,  ///< clamp to the representable range
  kWrap,      ///< keep the low bits (two's-complement wrap-around)
};

/// How right-shifts handle discarded bits.
enum class Rounding {
  kTruncate,  ///< arithmetic shift (round towards -inf)
  kNearest,   ///< round half up (add 0.5 LSB before shifting)
};

/// Largest value representable in a signed two's-complement field of `bits`.
constexpr std::int64_t max_for_bits(int bits) {
  assert(bits >= 1 && bits <= 63);
  return (std::int64_t{1} << (bits - 1)) - 1;
}

/// Smallest (most negative) value representable in `bits`.
constexpr std::int64_t min_for_bits(int bits) {
  assert(bits >= 1 && bits <= 63);
  return -(std::int64_t{1} << (bits - 1));
}

/// True if `v` fits a signed field of `bits`.
constexpr bool fits_bits(std::int64_t v, int bits) {
  return v >= min_for_bits(bits) && v <= max_for_bits(bits);
}

/// Clamps `v` into a signed field of `bits`.
constexpr std::int64_t saturate(std::int64_t v, int bits) {
  const std::int64_t lo = min_for_bits(bits);
  const std::int64_t hi = max_for_bits(bits);
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Keeps the low `bits` of `v`, sign-extended (hardware register semantics).
constexpr std::int64_t wrap(std::int64_t v, int bits) {
  assert(bits >= 1 && bits <= 64);
  if (bits == 64) return v;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
  if (u & sign) u |= ~mask;
  return static_cast<std::int64_t>(u);
}

/// Narrows `v` into `bits` according to `policy`.
constexpr std::int64_t narrow(std::int64_t v, int bits, Overflow policy) {
  return policy == Overflow::kSaturate ? saturate(v, bits) : wrap(v, bits);
}

/// Saturating addition within a `bits`-wide field.
constexpr std::int64_t sat_add(std::int64_t a, std::int64_t b, int bits) {
  return saturate(a + b, bits);
}

/// Saturating subtraction within a `bits`-wide field.
constexpr std::int64_t sat_sub(std::int64_t a, std::int64_t b, int bits) {
  return saturate(a - b, bits);
}

/// Wrapping addition within a `bits`-wide field (CIC integrators rely on it).
constexpr std::int64_t wrap_add(std::int64_t a, std::int64_t b, int bits) {
  return wrap(a + b, bits);
}

/// Wrapping subtraction within a `bits`-wide field.
constexpr std::int64_t wrap_sub(std::int64_t a, std::int64_t b, int bits) {
  return wrap(a - b, bits);
}

/// Arithmetic right shift with the selected rounding.  `shift` may be 0.
constexpr std::int64_t shift_right(std::int64_t v, int shift, Rounding rounding) {
  assert(shift >= 0 && shift <= 62);
  if (shift == 0) return v;
  if (rounding == Rounding::kNearest) {
    v += std::int64_t{1} << (shift - 1);
  }
  return v >> shift;
}

/// ceil(log2(v)) for v >= 1.
constexpr int ceil_log2(std::int64_t v) {
  assert(v >= 1);
  int bits = 0;
  std::int64_t p = 1;
  while (p < v) {
    p <<= 1;
    ++bits;
  }
  return bits;
}

/// Register growth of an N-stage CIC decimator (Hogenauer):
/// ceil(N * log2(R * M)) extra bits over the input width, with decimation R
/// and differential delay M.  The total register width for a W-bit input is
/// W + cic_bit_growth(...).
constexpr int cic_bit_growth(int stages, int decimation, int diff_delay = 1) {
  assert(stages >= 1 && decimation >= 1 && diff_delay >= 1);
  // ceil(N*log2(R*M)) == ceil_log2((R*M)^N); computed exactly in 128-bit
  // integers to avoid floating-point edge cases for non-power-of-two R
  // (e.g. R=21, N=5 -> 22 bits, not 21).
  unsigned __int128 pow = 1;
  const unsigned __int128 rm =
      static_cast<unsigned __int128>(decimation) * static_cast<unsigned>(diff_delay);
  for (int s = 0; s < stages; ++s) pow *= rm;
  int bits = 0;
  unsigned __int128 p = 1;
  while (p < pow) {
    p <<= 1;
    ++bits;
  }
  return bits;
}

/// DC gain of an N-stage CIC decimator: (R*M)^N.
constexpr std::int64_t cic_gain(int stages, int decimation, int diff_delay = 1) {
  std::int64_t g = 1;
  for (int s = 0; s < stages; ++s) g *= std::int64_t{decimation} * diff_delay;
  return g;
}

}  // namespace twiddc::fixed
