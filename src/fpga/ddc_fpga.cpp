#include "src/fpga/ddc_fpga.hpp"

#include <algorithm>
#include <string>

#include <tuple>

#include "src/common/error.hpp"
#include "src/core/backend.hpp"
#include "src/dsp/fir_design.hpp"
#include "src/dsp/nco.hpp"

namespace twiddc::fpga {
namespace {
constexpr int kBus = 12;          // the section 5.2.1 data bus width
constexpr int kNcoTableBits = 8;  // 256-entry quarter-wave ROM (M4K budget)
constexpr int kAccBits = 31;      // the FIR's 31-bit intermediate result

// Raw LE inventory heuristics: one LE per bit of an adder/subtractor with
// its packed register, one per standalone register bit, plus small control
// overheads.  Device-level packing is applied in estimate_resources().
int adder_le(int width) { return width; }
int register_le(int width) { return width; }
constexpr int kSoftMultiplierLe = 187;  // 12x12 in Cyclone I fabric
}  // namespace

// ------------------------------------------------------------------ CicRtl

CicRtl::CicRtl(const std::string& name, int stages, int decimation, int input_bits,
               int output_bits)
    : stages_(stages),
      decimation_(decimation),
      reg_bits_(input_bits + fixed::cic_bit_growth(stages, decimation)),
      shift_(fixed::cic_bit_growth(stages, decimation)),
      output_bits_(output_bits),
      counter_(name + ".cnt", fixed::ceil_log2(decimation) + 1),
      out_bus_(name + ".out", output_bits) {
  if (reg_bits_ > 63) throw ConfigError("CicRtl: register growth exceeds 63 bits");
  for (int s = 0; s < stages; ++s) {
    integrators_.emplace_back(name + ".int" + std::to_string(s), reg_bits_);
    comb_delays_.emplace_back(name + ".dly" + std::to_string(s), reg_bits_);
  }
}

std::optional<std::int64_t> CicRtl::clock(std::int64_t x) {
  // Integrator chain: each stage adds the previous stage's *new* value, as
  // a ripple of adders in front of the registers would.
  std::int64_t v = x;
  for (auto& integ : integrators_) {
    v = fixed::wrap(integ.get() + v, reg_bits_);
    integ.set(v);
    integ.tick();
  }
  const std::int64_t count = counter_.get();
  const bool fire = count + 1 >= decimation_;
  counter_.set(fire ? 0 : count + 1);
  counter_.tick();
  if (!fire) return std::nullopt;
  // Comb chain at the decimated rate.
  for (auto& delay : comb_delays_) {
    const std::int64_t delayed = delay.get();
    delay.set(v);
    delay.tick();
    v = fixed::wrap(v - delayed, reg_bits_);
  }
  const std::int64_t out =
      fixed::narrow(fixed::shift_right(v, shift_, fixed::Rounding::kTruncate),
                    output_bits_, fixed::Overflow::kSaturate);
  out_bus_.set(out);
  out_bus_.tick();
  return out;
}

void CicRtl::collect(std::vector<Reg*>& regs) {
  for (auto& r : integrators_) regs.push_back(&r);
  for (auto& r : comb_delays_) regs.push_back(&r);
  regs.push_back(&counter_);
  regs.push_back(&out_bus_);
}

Resources CicRtl::raw_resources() const {
  Resources r;
  // Integrators: adder + packed register per stage; combs: subtractor +
  // separate delay register per stage; counter + compare; output register.
  r.logic_elements += stages_ * adder_le(reg_bits_);
  r.logic_elements += stages_ * (adder_le(reg_bits_) + register_le(reg_bits_));
  r.logic_elements += counter_.width() + 4;
  r.logic_elements += register_le(output_bits_);
  return r;
}

// ---------------------------------------------------------------- SeqFirRtl

SeqFirRtl::SeqFirRtl(const std::string& name, std::vector<std::int64_t> taps,
                     int decimation, int data_bits, int acc_bits, int output_bits)
    : taps_(std::move(taps)),
      decimation_(decimation),
      data_bits_(data_bits),
      acc_bits_(acc_bits),
      output_bits_(output_bits),
      out_shift_(data_bits - 1),  // product Q(2(data-1)) -> output Q(data-1)
      ram_(128, 0),
      // Address registers carry one headroom bit: Reg wraps *signed*, and
      // the 0..127 addresses must stay non-negative.
      waddr_(name + ".waddr", 8),
      input_count_(name + ".incnt", fixed::ceil_log2(decimation) + 1),
      busy_(name + ".busy", 1),
      k_(name + ".k", 8),
      newest_(name + ".newest", 8),
      acc_(name + ".acc", acc_bits),
      ram_bus_(name + ".ram_q", data_bits),
      rom_bus_(name + ".rom_q", data_bits),
      out_bus_(name + ".out", output_bits) {
  if (taps_.empty() || taps_.size() > 128)
    throw ConfigError("SeqFirRtl: tap count must be in [1,128]");
}

std::optional<std::int64_t> SeqFirRtl::clock(bool sample_valid, std::int64_t sample) {
  std::optional<std::int64_t> result;

  if (sample_valid) {
    // Figure 5: "when valid, the new input is stored at the correct
    // position in the RAM".
    const auto w = static_cast<std::size_t>(waddr_.get());
    ram_[w] = sample;
    ram_bus_.set(sample);
    ram_bus_.tick();
    waddr_.set((waddr_.get() + 1) & 127);
    waddr_.tick();
    const std::int64_t count = input_count_.get();
    const bool start = count + 1 >= decimation_;
    input_count_.set(start ? 0 : count + 1);
    input_count_.tick();
    if (start) {
      busy_.set(1);
      busy_.tick();
      k_.set(0);
      k_.tick();
      newest_.set(static_cast<std::int64_t>(w));  // slot just written
      newest_.tick();
      acc_.set(0);
      acc_.tick();
    }
    return result;
  }

  if (busy_.get() != 0) {
    const auto k = static_cast<std::size_t>(k_.get());
    const std::size_t idx =
        static_cast<std::size_t>((newest_.get() - static_cast<std::int64_t>(k)) & 127);
    const std::int64_t samp = ram_[idx];
    const std::int64_t coeff = taps_[k];
    ram_bus_.set(samp);
    ram_bus_.tick();
    rom_bus_.set(coeff);
    rom_bus_.tick();
    acc_.set(acc_.get() + samp * coeff);
    acc_.tick();
    if (k + 1 >= taps_.size()) {
      busy_.set(0);
      busy_.tick();
      // "The result consists of the 11 least significant bits ... and a sign
      // bit.  In case of saturation, the maximum or the minimum value is
      // returned."
      const std::int64_t out = fixed::narrow(
          fixed::shift_right(acc_.get(), out_shift_, fixed::Rounding::kTruncate),
          output_bits_, fixed::Overflow::kSaturate);
      out_bus_.set(out);
      out_bus_.tick();
      result = out;
    } else {
      k_.set(static_cast<std::int64_t>(k) + 1);
      k_.tick();
    }
  }
  return result;
}

void SeqFirRtl::collect(std::vector<Reg*>& regs) {
  for (Reg* r : {&waddr_, &input_count_, &busy_, &k_, &newest_, &acc_, &ram_bus_,
                 &rom_bus_, &out_bus_})
    regs.push_back(r);
}

Resources SeqFirRtl::raw_resources() const {
  Resources r;
  // Control registers/counters, accumulator adder+register, quantiser mux,
  // output register.  The multiplier is added at device level (soft LEs on
  // Cyclone I, embedded 9-bit blocks on Cyclone II).
  r.logic_elements += waddr_.width() + input_count_.width() + 1 + k_.width() +
                      newest_.width() + 8 /*addr mux/compare*/;
  r.logic_elements += adder_le(acc_bits_);
  r.logic_elements += 16 /*saturating quantiser*/ + register_le(output_bits_);
  // Sample RAM (128 words) and its half of the shared coefficient ROM.
  r.memory_bits += 128 * data_bits_;
  r.memory_bits += static_cast<int>(taps_.size()) * data_bits_ / 2;
  return r;
}

// --------------------------------------------------------------- DdcFpgaTop

core::DatapathSpec DdcFpgaTop::spec() {
  auto s = core::DatapathSpec::fpga();
  s.nco_table_bits = kNcoTableBits;
  return s;
}

core::DdcConfig DdcFpgaTop::lower_plan(const core::ChainPlan& plan) {
  const std::string who = "fpga-rtl";
  const auto config = core::lower_figure1_plan(plan, spec(), who);
  if (config.fir_taps > 128)
    throw core::LoweringError(who, "the sequential FIR's M4K sample RAM holds 128 "
                              "samples; plan needs " + std::to_string(config.fir_taps));
  for (const auto& [stages, decimation, label] :
       {std::tuple{config.cic2_stages, config.cic2_decimation, "first"},
        std::tuple{config.cic5_stages, config.cic5_decimation, "second"}}) {
    if (kBus + fixed::cic_bit_growth(stages, decimation) > 63)
      throw core::LoweringError(who, std::string("the ") + label +
                                " CIC's integrator registers exceed 63 bits");
  }
  return config;
}

DdcFpgaTop::DdcFpgaTop(const core::ChainPlan& plan) : DdcFpgaTop(lower_plan(plan)) {}

DdcFpgaTop::DdcFpgaTop(const core::DdcConfig& config)
    : config_(config),
      nco_table_(dsp::make_quarter_sine_table(kNcoTableBits, kBus)),
      tuning_word_(
          dsp::PhaseAccumulator::tuning_word(config.nco_freq_hz, config.input_rate_hz)),
      input_bus_("in", kBus),
      phase_("nco.phase", 32),
      cos_bus_("nco.cos", kBus),
      sin_bus_("nco.sin", kBus),
      mix_i_bus_("mix.i", kBus),
      mix_q_bus_("mix.q", kBus),
      cic2_i_("cic2.i", config.cic2_stages, config.cic2_decimation, kBus, kBus),
      cic2_q_("cic2.q", config.cic2_stages, config.cic2_decimation, kBus, kBus),
      cic5_i_("cic5.i", config.cic5_stages, config.cic5_decimation, kBus, kBus),
      cic5_q_("cic5.q", config.cic5_stages, config.cic5_decimation, kBus, kBus),
      fir_i_("fir.i",
             [&] {
               core::FixedDdc twin(config, spec());
               return twin.fir_taps();
             }(),
             config.fir_decimation, kBus, kAccBits, kBus),
      fir_q_("fir.q",
             [&] {
               core::FixedDdc twin(config, spec());
               return twin.fir_taps();
             }(),
             config.fir_decimation, kBus, kAccBits, kBus) {
  config.validate();
  core::FixedDdc twin(config, spec());
  fir_taps_ = twin.fir_taps();
  all_regs_.push_back(&input_bus_);
  all_regs_.push_back(&phase_);
  all_regs_.push_back(&cos_bus_);
  all_regs_.push_back(&sin_bus_);
  all_regs_.push_back(&mix_i_bus_);
  all_regs_.push_back(&mix_q_bus_);
  cic2_i_.collect(all_regs_);
  cic2_q_.collect(all_regs_);
  cic5_i_.collect(all_regs_);
  cic5_q_.collect(all_regs_);
  fir_i_.collect(all_regs_);
  fir_q_.collect(all_regs_);
}

std::optional<core::IqSample> DdcFpgaTop::clock(std::int64_t x) {
  if (!fixed::fits_bits(x, kBus))
    throw SimulationError("DdcFpgaTop: input does not fit the 12-bit bus");
  input_bus_.set(x);
  input_bus_.tick();

  // NCO: quarter-wave ROM lookup for the current phase, then advance.
  const dsp::SinCos sc =
      dsp::lut_sincos(static_cast<std::uint32_t>(phase_.get()), nco_table_, kNcoTableBits);
  phase_.set(fixed::wrap(phase_.get() + static_cast<std::int64_t>(tuning_word_), 32));
  phase_.tick();
  cos_bus_.set(sc.cos);
  cos_bus_.tick();
  sin_bus_.set(sc.sin);
  sin_bus_.tick();

  // Mixer: 12x12 products scaled back to the 12-bit bus.
  const int mix_shift = kBus + kBus - 1 - kBus;  // == 11
  const std::int64_t mi = fixed::narrow(
      fixed::shift_right(x * sc.cos, mix_shift, fixed::Rounding::kTruncate), kBus,
      fixed::Overflow::kSaturate);
  const std::int64_t mq = fixed::narrow(
      fixed::shift_right(x * sc.sin, mix_shift, fixed::Rounding::kTruncate), kBus,
      fixed::Overflow::kSaturate);
  mix_i_bus_.set(mi);
  mix_i_bus_.tick();
  mix_q_bus_.set(mq);
  mix_q_bus_.tick();

  // CIC chain with valid-line cadence.
  const auto c2i = cic2_i_.clock(mi);
  const auto c2q = cic2_q_.clock(mq);
  std::optional<std::int64_t> c5i;
  std::optional<std::int64_t> c5q;
  if (c2i) {
    c5i = cic5_i_.clock(*c2i);
    c5q = cic5_q_.clock(*c2q);
  }

  // Sequential FIR: consumes a sample when the CIC5 fires, otherwise spends
  // the cycle on its MAC schedule.
  const auto yi = fir_i_.clock(c5i.has_value(), c5i.value_or(0));
  const auto yq = fir_q_.clock(c5q.has_value(), c5q.value_or(0));
  if (yi.has_value() != yq.has_value())
    throw SimulationError("DdcFpgaTop: I/Q rails lost rate lock");
  if (!yi) return std::nullopt;
  return core::IqSample{*yi, *yq};
}

std::vector<core::IqSample> DdcFpgaTop::process(const std::vector<std::int64_t>& in) {
  std::vector<core::IqSample> out;
  for (std::int64_t x : in) {
    if (auto y = clock(x)) out.push_back(*y);
  }
  return out;
}

ToggleSummary DdcFpgaTop::toggle_summary() const {
  ToggleSummary s;
  for (const Reg* r : all_regs_) s.absorb(*r);
  return s;
}

double DdcFpgaTop::input_toggle_percent() const {
  return 100.0 * input_bus_.stats().rate();
}

std::vector<std::pair<std::string, Resources>> DdcFpgaTop::resource_breakdown() const {
  std::vector<std::pair<std::string, Resources>> out;
  Resources nco;
  nco.logic_elements = adder_le(32) /*phase acc*/ + 14 /*quadrant logic*/ +
                       register_le(kBus) * 2 /*sin+cos buses*/;
  nco.memory_bits = (1 << kNcoTableBits) * kBus;  // quarter-wave ROM
  out.emplace_back("NCO", nco);

  Resources mixer;
  mixer.logic_elements = register_le(kBus) * 2;  // product registers
  // Multipliers are device-mapped in estimate_resources().
  out.emplace_back("mixer (2x 12x12 mult)", mixer);

  out.emplace_back("CIC2 I", cic2_i_.raw_resources());
  out.emplace_back("CIC2 Q", cic2_q_.raw_resources());
  out.emplace_back("CIC5 I", cic5_i_.raw_resources());
  out.emplace_back("CIC5 Q", cic5_q_.raw_resources());
  out.emplace_back("FIR I (seq, 1x mult)", fir_i_.raw_resources());
  out.emplace_back("FIR Q (seq, 1x mult)", fir_q_.raw_resources());

  Resources io;
  io.pins = kBus /*in*/ + 2 * kBus /*I+Q out*/ + 5 /*clk, rst, valids, enable*/;
  io.logic_elements = 10;  // top-level glue
  out.emplace_back("top/IO", io);
  return out;
}

int DdcFpgaTop::critical_adder_bits() const {
  const int cic2 = kBus + fixed::cic_bit_growth(config_.cic2_stages, config_.cic2_decimation);
  const int cic5 = kBus + fixed::cic_bit_growth(config_.cic5_stages, config_.cic5_decimation);
  return std::max({cic2, cic5, kAccBits});
}

Resources DdcFpgaTop::estimate_resources(const Device& device) const {
  Resources total;
  for (const auto& [name, r] : resource_breakdown()) total += r;
  // Four 12x12 multipliers: embedded blocks on Cyclone II (two 9-bit
  // elements each), soft logic on Cyclone I.
  constexpr int kMultipliers = 4;
  if (device.has_embedded_multipliers) {
    total.multipliers9 += kMultipliers * 2;
  } else {
    total.logic_elements += kMultipliers * kSoftMultiplierLe;
  }
  // Synthesis packing/optimisation factor, calibrated once against the
  // paper's Table 4 totals for the reference design (Quartus packs comb
  // delay registers into adder LEs, trims constant MSBs, etc.).
  const double packing = device.has_embedded_multipliers ? 0.55 : 0.69;
  total.logic_elements = static_cast<int>(total.logic_elements * packing + 0.5);
  if (total.logic_elements > device.logic_elements)
    throw ConfigError("DdcFpgaTop: design does not fit " + device.name);
  return total;
}

}  // namespace twiddc::fpga
