// twiddc::fpga -- the paper's FPGA DDC design (section 5.2.1, Figure 5).
//
// Structure exactly as described:
//   * parts interconnected with 12-bit data busses and output-valid lines;
//   * NCO and CIC filters at the 64.512 MHz input rate;
//   * the polyphase FIR implemented *sequentially* with 124 taps: samples in
//     an M4K RAM, coefficients in an M4K ROM, one multiply-accumulate per
//     clock, an output every 2688 clocks computed in 125 cycles;
//   * a 31-bit FIR accumulator quantised to 12 bits (11 LSBs + sign, with
//     saturation).
//
// The implementation is cycle-true at the block level: clock() advances one
// 64.512 MHz cycle, every register/bus is toggle-counted (feeding the
// PowerPlay-style model of device.hpp), and every block contributes to the
// Table 4 resource inventory.  Functionally the design is the bit-exact
// twin of core::FixedDdc with DatapathSpec::fpga() and fir_taps = 124.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ddc_config.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/fpga/device.hpp"
#include "src/fpga/rtl.hpp"

namespace twiddc::fpga {

/// One rail's N-stage CIC decimator: integrators clocked every cycle, combs
/// behind the decimation valid line.
class CicRtl {
 public:
  CicRtl(const std::string& name, int stages, int decimation, int input_bits,
         int output_bits);

  /// One input-rate clock.  Returns the narrowed output when the decimation
  /// counter wraps (the "output valid" pulse of section 5.2.1).
  std::optional<std::int64_t> clock(std::int64_t x);

  void collect(std::vector<Reg*>& regs);
  [[nodiscard]] Resources raw_resources() const;
  [[nodiscard]] int register_bits() const { return reg_bits_; }

 private:
  int stages_;
  int decimation_;
  int reg_bits_;
  int shift_;
  int output_bits_;
  std::vector<Reg> integrators_;
  std::vector<Reg> comb_delays_;
  Reg counter_;
  Reg out_bus_;
};

/// The sequential 124-tap polyphase FIR of Figure 5.
class SeqFirRtl {
 public:
  SeqFirRtl(const std::string& name, std::vector<std::int64_t> taps, int decimation,
            int data_bits, int acc_bits, int output_bits);

  /// One input-rate clock.  `sample` is consumed when `sample_valid`; the
  /// quantised result appears `taps+1` clocks after the D-th stored sample.
  std::optional<std::int64_t> clock(bool sample_valid, std::int64_t sample);

  void collect(std::vector<Reg*>& regs);
  [[nodiscard]] Resources raw_resources() const;
  /// MAC engine state, exposed for the Figure 5 trace bench.
  [[nodiscard]] bool busy() const { return busy_.get() != 0; }
  [[nodiscard]] int mac_index() const { return static_cast<int>(k_.get()); }

 private:
  std::vector<std::int64_t> taps_;
  int decimation_;
  int data_bits_;
  int acc_bits_;
  int output_bits_;
  int out_shift_;
  std::vector<std::int64_t> ram_;
  Reg waddr_;
  Reg input_count_;
  Reg busy_;
  Reg k_;
  Reg newest_;
  Reg acc_;
  Reg ram_bus_;
  Reg rom_bus_;
  Reg out_bus_;
};

/// The full I/Q design.
class DdcFpgaTop {
 public:
  /// `config.fir_taps` should be 124 for the paper's design (it trimmed the
  /// 125-tap reference "to make the sequential filter run a little more
  /// efficiently").
  explicit DdcFpgaTop(const core::DdcConfig& config);

  /// Builds the design from an arbitrary ChainPlan via lower_plan().
  explicit DdcFpgaTop(const core::ChainPlan& plan);

  /// Plan -> netlist lowering: accepts exactly the Figure-1 family realised
  /// with this design's 12-bit busses (spec()), within the structural
  /// limits of the blocks (<= 128 sequential-FIR taps, CIC register growth
  /// <= 63 bits).  Throws core::LoweringError naming the first unmappable
  /// feature; never silently assumes the reference topology.
  static core::DdcConfig lower_plan(const core::ChainPlan& plan);

  /// One 64.512 MHz clock with a new 12-bit input sample.
  std::optional<core::IqSample> clock(std::int64_t x);

  /// Runs a whole block of samples.
  std::vector<core::IqSample> process(const std::vector<std::int64_t>& in);

  /// Internal toggle statistics over every register/bus in the design.
  [[nodiscard]] ToggleSummary toggle_summary() const;
  /// Toggle rate of the input bus alone (the "input toggle" of Table 5).
  [[nodiscard]] double input_toggle_percent() const;

  /// Raw per-block structural inventory.
  [[nodiscard]] std::vector<std::pair<std::string, Resources>> resource_breakdown() const;
  /// Device-level estimate (applies the device's packing/multiplier
  /// mapping) -- the reproduced Table 4 row.
  [[nodiscard]] Resources estimate_resources(const Device& device) const;

  /// Width of the widest ripple-carry adder in the design (the CIC5
  /// integrators for the reference chain) -- the timing-critical path.
  [[nodiscard]] int critical_adder_bits() const;
  /// Estimated fmax on `device` via its calibrated carry-chain model;
  /// reproduces the section 5.2.1 numbers (66.08 / 80.87 MHz).
  [[nodiscard]] double estimate_fmax_mhz(const Device& device) const {
    return device.fmax_for_adder_mhz(critical_adder_bits());
  }

  [[nodiscard]] const core::DdcConfig& config() const { return config_; }
  /// The datapath spec this design is the twin of.
  [[nodiscard]] static core::DatapathSpec spec();
  /// MAC-engine observability for the Figure 5 trace bench and tests.
  [[nodiscard]] bool fir_busy_i() const { return fir_i_.busy(); }
  [[nodiscard]] int fir_mac_index_i() const { return fir_i_.mac_index(); }

 private:
  core::DdcConfig config_;
  std::vector<std::int32_t> nco_table_;
  std::uint32_t tuning_word_;
  std::vector<std::int64_t> fir_taps_;
  Reg input_bus_;
  Reg phase_;
  Reg cos_bus_;
  Reg sin_bus_;
  Reg mix_i_bus_;
  Reg mix_q_bus_;
  CicRtl cic2_i_;
  CicRtl cic2_q_;
  CicRtl cic5_i_;
  CicRtl cic5_q_;
  SeqFirRtl fir_i_;
  SeqFirRtl fir_q_;
  std::vector<Reg*> all_regs_;
};

}  // namespace twiddc::fpga
