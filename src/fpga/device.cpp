#include "src/fpga/device.hpp"

#include "src/common/error.hpp"

namespace twiddc::fpga {

Device Device::ep1c3t100c6() {
  Device d;
  d.name = "Cyclone I EP1C3T100C6";
  d.technology = energy::TechnologyNode::um130_cyclone1();
  d.logic_elements = 2910;
  d.memory_bits = 59904;   // 13 M4K blocks
  d.multipliers9 = 0;
  d.pins = 65;
  d.plls = 1;
  d.has_embedded_multipliers = false;
  d.fmax_mhz = 66.08;  // section 5.2.1 synthesis result
  // 34-bit CIC5 adder: 34 * 0.36 + 2.89 = 15.13 ns -> 66.08 MHz.
  d.carry_ns_per_bit = 0.36;
  d.path_overhead_ns = 2.89;
  return d;
}

Device Device::ep2c5t144c6() {
  Device d;
  d.name = "Cyclone II EP2C5T144C6";
  d.technology = energy::TechnologyNode::um90();
  d.logic_elements = 4608;
  d.memory_bits = 119808;  // 26 M4K blocks
  d.multipliers9 = 26;
  d.pins = 89;
  d.plls = 2;
  d.has_embedded_multipliers = true;
  d.fmax_mhz = 80.87;  // section 5.2.1 synthesis result
  // 34 * 0.29 + 2.50 = 12.36 ns -> 80.89 MHz.
  d.carry_ns_per_bit = 0.29;
  d.path_overhead_ns = 2.50;
  return d;
}

double PowerModel::dynamic_mw(double internal_toggle_pct, double input_toggle_pct) const {
  if (internal_toggle_pct < 0.0 || internal_toggle_pct > 100.0)
    throw ConfigError("PowerModel: internal toggle rate must be in [0,100] percent");
  if (input_toggle_pct < 0.0 || input_toggle_pct > 100.0)
    throw ConfigError("PowerModel: input toggle rate must be in [0,100] percent");
  // The clock tree runs regardless; the IO half of the toggle-independent
  // term scales with the input's activity relative to the 50 % reference.
  const double io_scale = 0.5 + 0.5 * (input_toggle_pct / 50.0);
  return clock_io_mw * io_scale + per_toggle_pct_mw * internal_toggle_pct;
}

PowerModel PowerModel::cyclone1() {
  // Exact linear fit of Table 5: dynamic = 52.4 + 4.096 * toggle%.
  PowerModel m;
  m.static_mw = 48.0;
  m.clock_io_mw = 52.4;
  m.per_toggle_pct_mw = 4.096;
  return m;
}

PowerModel PowerModel::cyclone2() {
  PowerModel m;
  m.static_mw = 26.86;
  // Technology factor 0.13um/1.5V -> 0.09um/1.2V applied to the Cyclone I
  // slope: (1.2/1.5)^2 * (0.09/0.13) = 0.443.
  m.per_toggle_pct_mw = 4.096 * 0.443;
  // Anchor the single published point: 31.11 mW dynamic at 10 % internal
  // toggle, 50 % input toggle.
  m.clock_io_mw = 31.11 - m.per_toggle_pct_mw * 10.0;
  return m;
}

}  // namespace twiddc::fpga
