// twiddc::fpga -- Altera Cyclone device descriptors and the PowerPlay-style
// power model (paper sections 5.1 / 5.2.2, Tables 4 and 5).
#pragma once

#include <string>

#include "src/energy/technology.hpp"
#include "src/fpga/rtl.hpp"

namespace twiddc::fpga {

/// Capacity of a specific device (Table 4's denominators).
struct Device {
  std::string name;
  energy::TechnologyNode technology;
  int logic_elements = 0;
  int memory_bits = 0;
  int multipliers9 = 0;
  int pins = 0;
  int plls = 0;
  bool has_embedded_multipliers = false;
  double fmax_mhz = 0.0;  ///< published synthesis result for this design
  /// Timing-model constants: per-LE carry delay and fixed
  /// clock-to-out + routing + setup overhead.  Calibrated so the reference
  /// design's critical path (the CIC5's 34-bit ripple-carry adder)
  /// reproduces the published fmax.
  double carry_ns_per_bit = 0.0;
  double path_overhead_ns = 0.0;

  /// fmax for a design whose critical path is a `width`-bit ripple adder.
  [[nodiscard]] double fmax_for_adder_mhz(int width) const {
    return 1e3 / (carry_ns_per_bit * width + path_overhead_ns);
  }

  /// The two smallest devices the paper targets.
  static Device ep1c3t100c6();  // Cyclone I
  static Device ep2c5t144c6();  // Cyclone II
};

/// PowerPlay-style estimate: constant static power plus dynamic power that
/// is affine in the internal toggle rate.  The Cyclone I coefficients are an
/// exact fit of Table 5's four rows (static 48.0 mW; dynamic 52.4 mW of
/// clock-tree/IO at 50 % input toggle plus 4.096 mW per percent internal
/// toggle).  The Cyclone II model is anchored at its single published point
/// (26.86 mW static + 31.11 mW dynamic at 10 % internal toggle) with the
/// toggle slope scaled by the technology factor.
struct PowerModel {
  double static_mw = 0.0;
  double clock_io_mw = 0.0;    ///< toggle-independent dynamic part at 50 % input
  double per_toggle_pct_mw = 0.0;

  [[nodiscard]] double dynamic_mw(double internal_toggle_pct,
                                  double input_toggle_pct = 50.0) const;
  [[nodiscard]] double total_mw(double internal_toggle_pct,
                                double input_toggle_pct = 50.0) const {
    return static_mw + dynamic_mw(internal_toggle_pct, input_toggle_pct);
  }

  static PowerModel cyclone1();
  static PowerModel cyclone2();
};

}  // namespace twiddc::fpga
