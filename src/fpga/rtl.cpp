// Intentionally almost empty: rtl.hpp is header-only; this translation unit
// pins the library target and hosts nothing else.
#include "src/fpga/rtl.hpp"

namespace twiddc::fpga {
// (no out-of-line definitions)
}  // namespace twiddc::fpga
