// twiddc::fpga -- minimal structural-RTL bookkeeping.
//
// The paper's FPGA power estimate is driven by *bit toggle rates* ("the
// amount of bit toggles of the input and inside the FPGA determine the
// amount of energy used", section 5.2.2) and its synthesis result by the
// structural inventory (Table 4).  This header provides the two pieces of
// bookkeeping the blocks in ddc_fpga.hpp share: toggle-counted registers
// and per-block resource tallies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fixed/qformat.hpp"

namespace twiddc::fpga {

/// Counts bit flips on a register/bus of a declared width.
class ToggleCounter {
 public:
  explicit ToggleCounter(int width) : width_(width) {}

  void commit(std::int64_t old_value, std::int64_t new_value) {
    const auto mask = width_ >= 64 ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << width_) - 1);
    toggles_ += static_cast<std::uint64_t>(
        __builtin_popcountll((static_cast<std::uint64_t>(old_value) ^
                              static_cast<std::uint64_t>(new_value)) &
                             mask));
    ++commits_;
  }

  [[nodiscard]] std::uint64_t toggles() const { return toggles_; }
  [[nodiscard]] std::uint64_t commits() const { return commits_; }
  [[nodiscard]] int width() const { return width_; }

  /// Average fraction of bits toggling per commit (0..1).
  [[nodiscard]] double rate() const {
    if (commits_ == 0 || width_ == 0) return 0.0;
    return static_cast<double>(toggles_) /
           (static_cast<double>(commits_) * static_cast<double>(width_));
  }

 private:
  int width_;
  std::uint64_t toggles_ = 0;
  std::uint64_t commits_ = 0;
};

/// A clocked register of `width` bits with wrap-around semantics and toggle
/// accounting.  `set()` stores the next-state value; `tick()` commits it.
class Reg {
 public:
  Reg(std::string name, int width)
      : name_(std::move(name)), width_(width), stats_(width) {}

  [[nodiscard]] std::int64_t get() const { return cur_; }
  void set(std::int64_t v) { nxt_ = fixed::wrap(v, width_); }
  void tick() {
    stats_.commit(cur_, nxt_);
    cur_ = nxt_;
  }
  void reset() {
    cur_ = 0;
    nxt_ = 0;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] const ToggleCounter& stats() const { return stats_; }

 private:
  std::string name_;
  int width_;
  std::int64_t cur_ = 0;
  std::int64_t nxt_ = 0;
  ToggleCounter stats_;
};

/// FPGA resource usage of one block, in the units of Table 4.
struct Resources {
  int logic_elements = 0;
  int memory_bits = 0;
  int multipliers9 = 0;  ///< embedded 9-bit multipliers (Cyclone II)
  int pins = 0;

  Resources& operator+=(const Resources& o) {
    logic_elements += o.logic_elements;
    memory_bits += o.memory_bits;
    multipliers9 += o.multipliers9;
    pins += o.pins;
    return *this;
  }
};

/// Aggregated toggle statistics over a set of registers.
struct ToggleSummary {
  std::uint64_t bit_commits = 0;  ///< sum over regs of commits * width
  std::uint64_t bit_toggles = 0;

  /// Average internal toggle rate in percent (the x-axis of Table 5).
  [[nodiscard]] double rate_percent() const {
    return bit_commits == 0
               ? 0.0
               : 100.0 * static_cast<double>(bit_toggles) / static_cast<double>(bit_commits);
  }

  void absorb(const Reg& reg) {
    bit_commits += reg.stats().commits() * static_cast<std::uint64_t>(reg.width());
    bit_toggles += reg.stats().toggles();
  }
};

}  // namespace twiddc::fpga
