#include "src/gpp/assembler.hpp"

#include "src/common/error.hpp"

namespace twiddc::gpp {

Instr& Assembler::emit(Op op) {
  code_.emplace_back();
  code_.back().op = op;
  return code_.back();
}

void Assembler::region(const std::string& name) {
  const int here = size();
  if (!regions_.empty() && regions_.back().end == 0) regions_.back().end = here;
  regions_.push_back({name, here, 0});
}

void Assembler::label(const std::string& name) {
  if (labels_.count(name)) throw ConfigError("Assembler: duplicate label '" + name + "'");
  labels_[name] = size();
}

void Assembler::mov_imm(int rd, std::int32_t imm) {
  auto& i = emit(Op::kMovImm);
  i.rd = rd;
  i.op2 = Operand2::immediate(imm);
}
void Assembler::mov(int rd, Operand2 op2) {
  auto& i = emit(Op::kMov);
  i.rd = rd;
  i.op2 = op2;
}
#define TWIDDC_ALU3(NAME, OP)                         \
  void Assembler::NAME(int rd, int rn, Operand2 op2) { \
    auto& i = emit(OP);                                \
    i.rd = rd;                                         \
    i.rn = rn;                                         \
    i.op2 = op2;                                       \
  }
TWIDDC_ALU3(add, Op::kAdd)
TWIDDC_ALU3(adds, Op::kAdds)
TWIDDC_ALU3(adc, Op::kAdc)
TWIDDC_ALU3(sub, Op::kSub)
TWIDDC_ALU3(subs, Op::kSubs)
TWIDDC_ALU3(sbc, Op::kSbc)
TWIDDC_ALU3(rsb, Op::kRsb)
TWIDDC_ALU3(and_, Op::kAnd)
TWIDDC_ALU3(orr, Op::kOrr)
TWIDDC_ALU3(eor, Op::kEor)
#undef TWIDDC_ALU3

void Assembler::mul(int rd, int rn, int rm) {
  auto& i = emit(Op::kMul);
  i.rd = rd;
  i.rn = rn;
  i.rm = rm;
}
void Assembler::mla(int rd, int rn, int rm, int ra) {
  auto& i = emit(Op::kMla);
  i.rd = rd;
  i.rn = rn;
  i.rm = rm;
  i.ra = ra;
}
void Assembler::smull(int rd_lo, int rd_hi, int rn, int rm) {
  auto& i = emit(Op::kSmull);
  i.rd = rd_lo;
  i.ra = rd_hi;
  i.rn = rn;
  i.rm = rm;
}
void Assembler::smlal(int rd_lo, int rd_hi, int rn, int rm) {
  auto& i = emit(Op::kSmlal);
  i.rd = rd_lo;
  i.ra = rd_hi;
  i.rn = rn;
  i.rm = rm;
}
void Assembler::ldr(int rd, int rn, std::int32_t byte_offset) {
  auto& i = emit(Op::kLdr);
  i.rd = rd;
  i.rn = rn;
  i.mem_offset = byte_offset;
}
void Assembler::str(int rs, int rn, std::int32_t byte_offset) {
  auto& i = emit(Op::kStr);
  i.rd = rs;
  i.rn = rn;
  i.mem_offset = byte_offset;
}
void Assembler::ldr_idx(int rd, int rn, int rm, int shift) {
  auto& i = emit(Op::kLdrIdx);
  i.rd = rd;
  i.rn = rn;
  i.rm = rm;
  i.mem_shift = shift;
}
void Assembler::str_idx(int rs, int rn, int rm, int shift) {
  auto& i = emit(Op::kStrIdx);
  i.rd = rs;
  i.rn = rn;
  i.rm = rm;
  i.mem_shift = shift;
}
void Assembler::cmp(int rn, Operand2 op2) {
  auto& i = emit(Op::kCmp);
  i.rn = rn;
  i.op2 = op2;
}
void Assembler::b(const std::string& label, Cond cond) {
  auto& i = emit(Op::kB);
  i.cond = cond;
  i.label = label;
}
void Assembler::bl(const std::string& label) {
  auto& i = emit(Op::kBl);
  i.label = label;
}
void Assembler::ret() { emit(Op::kRet); }
void Assembler::halt() { emit(Op::kHalt); }

Assembler::Program Assembler::assemble() {
  if (!regions_.empty() && regions_.back().end == 0) regions_.back().end = size();
  for (auto& instr : code_) {
    if (instr.op == Op::kB || instr.op == Op::kBl) {
      const auto it = labels_.find(instr.label);
      if (it == labels_.end())
        throw ConfigError("Assembler: undefined label '" + instr.label + "'");
      instr.target = it->second;
    }
  }
  return Program{code_, regions_, labels_};
}

}  // namespace twiddc::gpp
