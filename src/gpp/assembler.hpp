// twiddc::gpp -- programmatic assembler for the ISA in isa.hpp.
//
// Mirrors how the paper's C code becomes ARM assembly: the DDC program in
// ddc_program.cpp is written against this builder, with named regions
// standing in for the compiler's function boundaries so the profiler can
// reproduce Table 3's per-part split.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/gpp/isa.hpp"

namespace twiddc::gpp {

/// A named PC range used for profiling attribution.
struct Region {
  std::string name;
  int begin = 0;  ///< first instruction index
  int end = 0;    ///< one past the last instruction index
};

class Assembler {
 public:
  // -- regions ------------------------------------------------------------
  /// Starts a named region; the previous region (if any) ends here.
  void region(const std::string& name);

  // -- labels -------------------------------------------------------------
  /// Places a label at the current position.
  void label(const std::string& name);

  // -- instructions ---------------------------------------------------------
  void mov_imm(int rd, std::int32_t imm);
  void mov(int rd, Operand2 op2);
  void add(int rd, int rn, Operand2 op2);
  void adds(int rd, int rn, Operand2 op2);
  void adc(int rd, int rn, Operand2 op2);
  void sub(int rd, int rn, Operand2 op2);
  void subs(int rd, int rn, Operand2 op2);
  void sbc(int rd, int rn, Operand2 op2);
  void rsb(int rd, int rn, Operand2 op2);
  void and_(int rd, int rn, Operand2 op2);
  void orr(int rd, int rn, Operand2 op2);
  void eor(int rd, int rn, Operand2 op2);
  void mul(int rd, int rn, int rm);
  void mla(int rd, int rn, int rm, int ra);
  void smull(int rd_lo, int rd_hi, int rn, int rm);
  void smlal(int rd_lo, int rd_hi, int rn, int rm);
  void ldr(int rd, int rn, std::int32_t byte_offset = 0);
  void str(int rs, int rn, std::int32_t byte_offset = 0);
  void ldr_idx(int rd, int rn, int rm, int shift = 0);
  void str_idx(int rs, int rn, int rm, int shift = 0);
  void cmp(int rn, Operand2 op2);
  void b(const std::string& label, Cond cond = Cond::kAl);
  void bl(const std::string& label);
  void ret();
  void halt();

  /// Resolves labels; returns the finished program.  Throws ConfigError on
  /// undefined labels.
  struct Program {
    std::vector<Instr> code;
    std::vector<Region> regions;
    std::map<std::string, int> labels;
  };
  [[nodiscard]] Program assemble();

  [[nodiscard]] int size() const { return static_cast<int>(code_.size()); }

 private:
  Instr& emit(Op op);

  std::vector<Instr> code_;
  std::vector<Region> regions_;
  std::map<std::string, int> labels_;
};

}  // namespace twiddc::gpp
