#include "src/gpp/cache.hpp"

#include <string>

#include "src/common/error.hpp"

namespace twiddc::gpp {
namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
int log2i(int v) {
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}
}  // namespace

Cache::Cache(const Config& config) : config_(config) {
  if (!is_pow2(config.size_bytes) || !is_pow2(config.line_bytes) || !is_pow2(config.ways))
    throw ConfigError("Cache: size, line and ways must be powers of two");
  if (config.line_bytes * config.ways > config.size_bytes)
    throw ConfigError("Cache: size too small for geometry");
  num_sets_ = config.size_bytes / (config.line_bytes * config.ways);
  line_shift_ = log2i(config.line_bytes);
  lines_.assign(static_cast<std::size_t>(num_sets_ * config.ways), Line{});
}

void Cache::flush() {
  lines_.assign(lines_.size(), Line{});
  hits_ = 0;
  misses_ = 0;
  clock_ = 0;
}

bool Cache::access(std::uint32_t address) {
  ++clock_;
  const std::uint32_t line_addr = address >> line_shift_;
  const auto set = static_cast<int>(line_addr % static_cast<std::uint32_t>(num_sets_));
  const std::uint32_t tag = line_addr / static_cast<std::uint32_t>(num_sets_);
  Line* base = &lines_[static_cast<std::size_t>(set * config_.ways)];
  Line* victim = base;
  for (int w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_used = clock_;
      ++hits_;
      return true;
    }
    if (!line.valid || line.last_used < victim->last_used ||
        (victim->valid && !line.valid))
      victim = &line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_used = clock_;
  ++misses_;
  return false;
}

}  // namespace twiddc::gpp
