// twiddc::gpp -- set-associative cache model (the ARM922T's 8 KB I/D caches).
#pragma once

#include <cstdint>
#include <vector>

namespace twiddc::gpp {

/// A physically-indexed set-associative cache with LRU replacement.  Only
/// hit/miss behaviour is modelled (contents live in the Cpu's flat memory).
class Cache {
 public:
  struct Config {
    int size_bytes = 8 * 1024;  ///< ARM922T: 8 KB each for I and D
    int line_bytes = 32;
    int ways = 4;
  };

  explicit Cache(const Config& config);

  /// Accesses `address`; returns true on hit.  A miss fills the line.
  bool access(std::uint32_t address);

  void flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 1.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Line {
    std::uint32_t tag = 0;
    bool valid = false;
    std::uint64_t last_used = 0;
  };

  Config config_;
  int num_sets_ = 0;
  int line_shift_ = 0;
  std::vector<Line> lines_;  // sets * ways
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t clock_ = 0;
};

}  // namespace twiddc::gpp
