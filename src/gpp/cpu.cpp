#include "src/gpp/cpu.hpp"

#include <string>

#include "src/common/error.hpp"

namespace twiddc::gpp {

Cpu::Cpu(Assembler::Program program, const Config& config)
    : program_(std::move(program)),
      config_(config),
      regs_(kNumRegs, 0),
      memory_(config.memory_bytes / 4, 0),
      icache_(config.icache),
      dcache_(config.dcache) {
  if (program_.code.empty()) throw ConfigError("Cpu: empty program");
  region_lookup_.assign(program_.code.size(), -1);
  for (std::size_t r = 0; r < program_.regions.size(); ++r) {
    const auto& region = program_.regions[r];
    for (int pc = region.begin; pc < region.end; ++pc)
      region_lookup_[static_cast<std::size_t>(pc)] = static_cast<int>(r);
  }
}

void Cpu::check_addr(std::uint32_t byte_address) const {
  if (byte_address % 4 != 0)
    throw SimulationError("Cpu: unaligned word access at " + std::to_string(byte_address));
  if (byte_address / 4 >= memory_.size())
    throw SimulationError("Cpu: address " + std::to_string(byte_address) +
                          " outside " + std::to_string(memory_.size() * 4) + "-byte RAM");
}

std::int32_t Cpu::read_word(std::uint32_t byte_address) const {
  check_addr(byte_address);
  return memory_[byte_address / 4];
}

void Cpu::write_word(std::uint32_t byte_address, std::int32_t value) {
  check_addr(byte_address);
  memory_[byte_address / 4] = value;
}

void Cpu::write_words(std::uint32_t byte_address, const std::vector<std::int32_t>& values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    write_word(byte_address + static_cast<std::uint32_t>(4 * i), values[i]);
}

std::vector<std::int32_t> Cpu::read_words(std::uint32_t byte_address,
                                          std::size_t count) const {
  std::vector<std::int32_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(read_word(byte_address + static_cast<std::uint32_t>(4 * i)));
  return out;
}

std::int32_t Cpu::eval_op2(const Operand2& op2) const {
  if (op2.is_imm) return op2.imm;
  const std::int32_t v = regs_[static_cast<std::size_t>(op2.reg)];
  switch (op2.shift) {
    case Shift::kNone:
      return v;
    case Shift::kLsl:
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(v) << op2.shift_amount);
    case Shift::kLsr:
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(v) >> op2.shift_amount);
    case Shift::kAsr:
      return v >> op2.shift_amount;
  }
  return v;
}

int Cpu::region_of(int pc) const { return region_lookup_[static_cast<std::size_t>(pc)]; }

RunStats Cpu::run(const std::string& entry_label) {
  int pc = 0;
  if (!entry_label.empty()) {
    const auto it = program_.labels.find(entry_label);
    if (it == program_.labels.end())
      throw ConfigError("Cpu: unknown entry label '" + entry_label + "'");
    pc = it->second;
  }

  const CycleModel& cm = config_.cycles;
  RunStats stats;
  std::vector<std::uint64_t> region_cycles(program_.regions.size(), 0);
  std::vector<std::uint64_t> region_instrs(program_.regions.size(), 0);

  // Load-use interlock model: the cycle index at which each register's value
  // becomes available.
  std::vector<std::uint64_t> ready(kNumRegs, 0);
  std::uint64_t now = 0;

  auto wait_for = [&](int r) {
    if (ready[static_cast<std::size_t>(r)] > now) now = ready[static_cast<std::size_t>(r)];
  };
  auto wait_op2 = [&](const Operand2& op2) {
    if (!op2.is_imm) wait_for(op2.reg);
  };

  bool running = true;
  while (running) {
    if (pc < 0 || pc >= static_cast<int>(program_.code.size()))
      throw SimulationError("Cpu: pc " + std::to_string(pc) + " out of program");
    if (stats.instructions >= config_.max_instructions)
      throw SimulationError("Cpu: instruction budget exceeded (runaway program?)");
    const Instr& in = program_.code[static_cast<std::size_t>(pc)];

    ++stats.instructions;
    const int region = region_of(pc);
    if (region >= 0) ++region_instrs[static_cast<std::size_t>(region)];
    const std::uint64_t start_cycle = now;

    // Instruction fetch through the I-cache (fetch stalls are charged to the
    // region being executed so region shares sum to the total).
    if (config_.caches_enabled) {
      if (!icache_.access(static_cast<std::uint32_t>(pc) * 4u)) now += cm.icache_miss;
    }
    int next_pc = pc + 1;

    auto set_nz = [&](std::int32_t v) {
      flag_n_ = v < 0;
      flag_z_ = v == 0;
    };

    switch (in.op) {
      case Op::kNop:
        now += cm.alu;
        break;
      case Op::kMovImm:
        regs_[static_cast<std::size_t>(in.rd)] = in.op2.imm;
        now += cm.alu;
        break;
      case Op::kMov:
        wait_op2(in.op2);
        regs_[static_cast<std::size_t>(in.rd)] = eval_op2(in.op2);
        now += cm.alu;
        break;
      case Op::kAdd:
      case Op::kAdds:
      case Op::kAdc:
      case Op::kSub:
      case Op::kSubs:
      case Op::kSbc:
      case Op::kRsb:
      case Op::kAnd:
      case Op::kOrr:
      case Op::kEor: {
        wait_for(in.rn);
        wait_op2(in.op2);
        const std::int64_t a = regs_[static_cast<std::size_t>(in.rn)];
        const std::int64_t b = eval_op2(in.op2);
        std::int64_t wide = 0;
        switch (in.op) {
          case Op::kAdd: wide = a + b; break;
          case Op::kAdds: wide = a + b; break;
          case Op::kAdc: wide = a + b + (flag_c_ ? 1 : 0); break;
          case Op::kSub: wide = a - b; break;
          case Op::kSubs: wide = a - b; break;
          case Op::kSbc: wide = a - b - (flag_c_ ? 0 : 1); break;
          case Op::kRsb: wide = b - a; break;
          case Op::kAnd: wide = a & b; break;
          case Op::kOrr: wide = a | b; break;
          case Op::kEor: wide = a ^ b; break;
          default: break;
        }
        const auto result = static_cast<std::int32_t>(wide);
        regs_[static_cast<std::size_t>(in.rd)] = result;
        if (in.op == Op::kAdds) {
          // Carry out of bit 31 (unsigned overflow), as ARM ADDS defines it.
          const std::uint64_t ua = static_cast<std::uint32_t>(a);
          const std::uint64_t ub = static_cast<std::uint32_t>(b);
          flag_c_ = (ua + ub) > 0xffffffffull;
          set_nz(result);
        } else if (in.op == Op::kSubs) {
          // ARM SUBS: carry = NOT borrow.
          flag_c_ = static_cast<std::uint32_t>(a) >= static_cast<std::uint32_t>(b);
          set_nz(result);
        }
        now += cm.alu;
        break;
      }
      case Op::kMul:
        wait_for(in.rn);
        wait_for(in.rm);
        regs_[static_cast<std::size_t>(in.rd)] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(regs_[static_cast<std::size_t>(in.rn)]) *
            regs_[static_cast<std::size_t>(in.rm)]);
        now += cm.mul;
        break;
      case Op::kMla:
        wait_for(in.rn);
        wait_for(in.rm);
        wait_for(in.ra);
        regs_[static_cast<std::size_t>(in.rd)] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(regs_[static_cast<std::size_t>(in.rn)]) *
                regs_[static_cast<std::size_t>(in.rm)] +
            regs_[static_cast<std::size_t>(in.ra)]);
        now += cm.mla;
        break;
      case Op::kSmull: {
        wait_for(in.rn);
        wait_for(in.rm);
        const std::int64_t p = static_cast<std::int64_t>(regs_[static_cast<std::size_t>(in.rn)]) *
                               regs_[static_cast<std::size_t>(in.rm)];
        regs_[static_cast<std::size_t>(in.rd)] = static_cast<std::int32_t>(p);
        regs_[static_cast<std::size_t>(in.ra)] = static_cast<std::int32_t>(p >> 32);
        now += cm.smull;
        break;
      }
      case Op::kSmlal: {
        wait_for(in.rn);
        wait_for(in.rm);
        wait_for(in.rd);
        wait_for(in.ra);
        const std::int64_t acc =
            (static_cast<std::int64_t>(regs_[static_cast<std::size_t>(in.ra)]) << 32) |
            static_cast<std::uint32_t>(regs_[static_cast<std::size_t>(in.rd)]);
        const std::int64_t p = acc + static_cast<std::int64_t>(
                                         regs_[static_cast<std::size_t>(in.rn)]) *
                                         regs_[static_cast<std::size_t>(in.rm)];
        regs_[static_cast<std::size_t>(in.rd)] = static_cast<std::int32_t>(p);
        regs_[static_cast<std::size_t>(in.ra)] = static_cast<std::int32_t>(p >> 32);
        now += cm.smlal;
        break;
      }
      case Op::kLdr:
      case Op::kLdrIdx: {
        wait_for(in.rn);
        std::uint32_t addr = static_cast<std::uint32_t>(regs_[static_cast<std::size_t>(in.rn)]);
        if (in.op == Op::kLdr) {
          addr += static_cast<std::uint32_t>(in.mem_offset);
        } else {
          wait_for(in.rm);
          addr += static_cast<std::uint32_t>(regs_[static_cast<std::size_t>(in.rm)])
                  << in.mem_shift;
        }
        if (config_.caches_enabled && !dcache_.access(addr)) now += cm.dcache_miss;
        regs_[static_cast<std::size_t>(in.rd)] = read_word(addr);
        now += cm.load;
        ready[static_cast<std::size_t>(in.rd)] = now + (cm.load_latency - cm.load);
        break;
      }
      case Op::kStr:
      case Op::kStrIdx: {
        wait_for(in.rn);
        wait_for(in.rd);
        std::uint32_t addr = static_cast<std::uint32_t>(regs_[static_cast<std::size_t>(in.rn)]);
        if (in.op == Op::kStr) {
          addr += static_cast<std::uint32_t>(in.mem_offset);
        } else {
          wait_for(in.rm);
          addr += static_cast<std::uint32_t>(regs_[static_cast<std::size_t>(in.rm)])
                  << in.mem_shift;
        }
        if (config_.caches_enabled && !dcache_.access(addr)) now += cm.dcache_miss;
        write_word(addr, regs_[static_cast<std::size_t>(in.rd)]);
        now += cm.store;
        break;
      }
      case Op::kCmp: {
        wait_for(in.rn);
        wait_op2(in.op2);
        const std::int64_t a = regs_[static_cast<std::size_t>(in.rn)];
        const std::int64_t b = eval_op2(in.op2);
        const std::int64_t d = a - b;
        flag_n_ = static_cast<std::int32_t>(d) < 0;
        flag_z_ = static_cast<std::int32_t>(d) == 0;
        flag_c_ = static_cast<std::uint32_t>(a) >= static_cast<std::uint32_t>(b);
        flag_v_ = ((a ^ b) & (a ^ d) & 0x80000000ll) != 0;
        now += cm.alu;
        break;
      }
      case Op::kB: {
        bool taken = false;
        switch (in.cond) {
          case Cond::kAl: taken = true; break;
          case Cond::kEq: taken = flag_z_; break;
          case Cond::kNe: taken = !flag_z_; break;
          case Cond::kLt: taken = flag_n_ != flag_v_; break;
          case Cond::kGe: taken = flag_n_ == flag_v_; break;
          case Cond::kGt: taken = !flag_z_ && flag_n_ == flag_v_; break;
          case Cond::kLe: taken = flag_z_ || flag_n_ != flag_v_; break;
        }
        if (taken) {
          next_pc = in.target;
          now += cm.branch_taken;
        } else {
          now += cm.branch_untaken;
        }
        break;
      }
      case Op::kBl:
        regs_[kLinkReg] = pc + 1;
        next_pc = in.target;
        now += cm.branch_taken;
        break;
      case Op::kRet:
        next_pc = regs_[kLinkReg];
        now += cm.branch_taken;
        break;
      case Op::kHalt:
        running = false;
        now += cm.alu;
        break;
    }

    if (region >= 0) region_cycles[static_cast<std::size_t>(region)] += now - start_cycle;
    pc = next_pc;
  }

  stats.cycles = now;
  stats.icache_hit_rate = icache_.hit_rate();
  stats.dcache_hit_rate = dcache_.hit_rate();
  // Aggregate by region *name*: a program may open the same logical region
  // (e.g. "NCO") in several disjoint PC ranges.
  std::map<std::string, RegionProfile> merged;
  std::vector<std::string> order;
  for (std::size_t r = 0; r < program_.regions.size(); ++r) {
    const std::string& name = program_.regions[r].name;
    auto [it, inserted] = merged.try_emplace(name);
    if (inserted) {
      it->second.name = name;
      order.push_back(name);
    }
    it->second.instructions += region_instrs[r];
    it->second.cycles += region_cycles[r];
  }
  for (const auto& name : order) {
    RegionProfile p = merged[name];
    p.cycle_share =
        now == 0 ? 0.0 : static_cast<double>(p.cycles) / static_cast<double>(now);
    stats.regions.push_back(p);
  }
  return stats;
}

}  // namespace twiddc::gpp
