// twiddc::gpp -- the ARM9-like core: executor, cycle accounting, profiler.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/gpp/assembler.hpp"
#include "src/gpp/cache.hpp"
#include "src/gpp/isa.hpp"

namespace twiddc::gpp {

/// Per-region profile entry (the ARM source-level debugger's output that
/// Table 3 was derived from).
struct RegionProfile {
  std::string name;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double cycle_share = 0.0;  ///< fraction of total cycles
};

struct RunStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double icache_hit_rate = 1.0;
  double dcache_hit_rate = 1.0;
  std::vector<RegionProfile> regions;

  [[nodiscard]] double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
};

class Cpu {
 public:
  struct Config {
    std::size_t memory_bytes = 1 << 20;  ///< flat data RAM
    CycleModel cycles;
    Cache::Config icache;
    Cache::Config dcache;
    bool caches_enabled = true;  ///< paper: "used with its caches enabled"
    std::uint64_t max_instructions = 1ull << 32;  ///< runaway guard
  };

  explicit Cpu(Assembler::Program program, const Config& config);
  explicit Cpu(Assembler::Program program) : Cpu(std::move(program), Config{}) {}

  /// Runs from `entry_label` (or instruction 0) until kHalt.
  RunStats run(const std::string& entry_label = "");

  // -- data memory access (word-aligned) -----------------------------------
  [[nodiscard]] std::int32_t read_word(std::uint32_t byte_address) const;
  void write_word(std::uint32_t byte_address, std::int32_t value);
  /// Bulk helpers for loading stimulus / reading results.
  void write_words(std::uint32_t byte_address, const std::vector<std::int32_t>& values);
  [[nodiscard]] std::vector<std::int32_t> read_words(std::uint32_t byte_address,
                                                     std::size_t count) const;

  [[nodiscard]] std::int32_t reg(int r) const { return regs_.at(static_cast<std::size_t>(r)); }
  void set_reg(int r, std::int32_t v) { regs_.at(static_cast<std::size_t>(r)) = v; }

 private:
  [[nodiscard]] std::int32_t eval_op2(const Operand2& op2) const;
  void check_addr(std::uint32_t byte_address) const;
  [[nodiscard]] int region_of(int pc) const;

  Assembler::Program program_;
  Config config_;
  std::vector<std::int32_t> regs_;
  std::vector<std::int32_t> memory_;
  Cache icache_;
  Cache dcache_;
  bool flag_n_ = false, flag_z_ = false, flag_c_ = false, flag_v_ = false;
  std::vector<int> region_lookup_;  // pc -> region index (-1 none)
};

}  // namespace twiddc::gpp
