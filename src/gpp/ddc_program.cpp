#include "src/gpp/ddc_program.hpp"

#include <string>

#include "src/common/error.hpp"
#include "src/core/backend.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/dsp/nco.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::gpp {
namespace {

// Memory map (byte addresses).  The cosine table sits at 0 so the zero
// register r10 doubles as its base, like a compiler placing hot constants
// at a known literal base.
constexpr std::uint32_t kCosTable = 0x00000;   // 4096 words
constexpr std::uint32_t kCoeff = 0x10000;      // fir_taps words (Q1.15)
constexpr std::uint32_t kRing = 0x10400;       // 128-word sample ring
constexpr std::uint32_t kState = 0x10800;
constexpr std::uint32_t kOutput = 0x11000;
constexpr std::uint32_t kInput = 0x20000;

// State offsets relative to address 0 (accessed via r10 = 0).
constexpr std::int32_t kD1 = kState + 0;        // CIC2 comb delay 1
constexpr std::int32_t kD2 = kState + 4;        // CIC2 comb delay 2
constexpr std::int32_t kCic5Int = kState + 8;   // 5 x {lo,hi}
constexpr std::int32_t kCic5Dly = kState + 48;  // 5 x {lo,hi}
constexpr std::int32_t kRidx = kState + 88;
constexpr std::int32_t kCnt21 = kState + 92;
constexpr std::int32_t kCnt8 = kState + 96;
constexpr std::int32_t kOutPtr = kState + 100;
constexpr std::int32_t kSaveLr = kState + 104;
constexpr std::int32_t kSave6 = kState + 116;
constexpr std::int32_t kS1 = kState + 120;  // CIC2 integrator 1 state
constexpr std::int32_t kS2 = kState + 124;  // CIC2 integrator 2 state

// Register conventions for the main loop.
constexpr int rIn = 0;      // input pointer
constexpr int rEnd = 1;     // input end
constexpr int rPhase = 2;   // NCO phase accumulator
constexpr int rStep = 3;    // NCO tuning word
constexpr int rS1 = 4;      // scratch (FIR ring base)
constexpr int rS2 = 5;      // scratch (FIR coefficient base)
constexpr int rCnt16 = 6;   // CIC2 decimation counter
constexpr int rX = 7;
constexpr int rT0 = 8;
constexpr int rT1 = 9;
constexpr int rZero = 10;   // always 0: base for absolute addressing
constexpr int rT2 = 11;
constexpr int rT3 = 12;

Operand2 imm(std::int32_t v) { return Operand2::immediate(v); }
Operand2 rr(int reg) { return Operand2::r(reg); }

// The one input contract, shared by the batch runner and the stream so the
// two paths can never drift: samples must fit the 12-bit front end, and are
// widened to the memory image's word size.
void widen_checked(std::span<const std::int64_t> in,
                   std::vector<std::int32_t>& out, const char* who) {
  out.clear();
  out.reserve(in.size());
  for (const std::int64_t v : in) {
    if (!fixed::fits_bits(v, 12))
      throw SimulationError(std::string(who) +
                            ": input sample does not fit 12 bits");
    out.push_back(static_cast<std::int32_t>(v));
  }
}

}  // namespace

core::DdcConfig DdcProgram::lower_plan(const core::ChainPlan& plan) {
  const std::string who = "gpp-arm";
  const auto config =
      core::lower_figure1_plan(plan, core::DatapathSpec::wide16(), who);
  if (config.cic2_stages != 2 || config.cic5_stages != 5)
    throw core::LoweringError(who, "the ARM kernel is written for the CIC2+CIC5 "
                              "chain (got CIC" + std::to_string(config.cic2_stages) +
                              "+CIC" + std::to_string(config.cic5_stages) + ")");
  if (config.fir_taps > 128)
    throw core::LoweringError(who, "the 128-word sample ring cannot hold a " +
                              std::to_string(config.fir_taps) + "-tap FIR");
  for (const auto g : {fixed::cic_bit_growth(config.cic2_stages, config.cic2_decimation),
                       fixed::cic_bit_growth(config.cic5_stages, config.cic5_decimation)}) {
    if (g < 1 || g > 31)
      throw core::LoweringError(who, "CIC gain-normalisation shift of " +
                                std::to_string(g) +
                                " is outside the 32-bit barrel shifter's range");
  }
  return config;
}

DdcProgram::DdcProgram(const core::ChainPlan& plan) : DdcProgram(lower_plan(plan)) {}

DdcProgram::DdcProgram(const core::DdcConfig& config) : config_(config) {
  config.validate();
  if (config.fir_taps > 128)
    throw ConfigError("DdcProgram: the ring buffer supports at most 128 FIR taps");
  if (config.cic2_stages != 2 || config.cic5_stages != 5)
    throw ConfigError("DdcProgram: the ARM kernel is written for the CIC2+CIC5 chain");

  // Shared data, identical to FixedDdc(wide16): the 10-bit quarter-wave
  // sine table (4 KB -- fits the ARM922T's 8 KB D-cache alongside the FIR
  // state; a flattened full-wave table would thrash it), and the same
  // quantised coefficients.
  cos_table_ = dsp::make_quarter_sine_table(10, 16);
  tuning_word_ =
      dsp::PhaseAccumulator::tuning_word(config.nco_freq_hz, config.input_rate_hz);

  core::FixedDdc twin(config, core::DatapathSpec::wide16());
  fir_coeffs_.assign(twin.fir_taps().begin(), twin.fir_taps().end());

  // Gain-normalisation shifts (8 and 22 for the reference chain); derived
  // rather than hard-coded so non-reference configs stay correct.
  const int g2 = fixed::cic_bit_growth(config.cic2_stages, config.cic2_decimation);
  const int g5 = fixed::cic_bit_growth(config.cic5_stages, config.cic5_decimation);
  if (g2 < 1 || g2 > 31 || g5 < 1 || g5 > 31)
    throw ConfigError("DdcProgram: CIC growth shift outside the 32-bit shifter range");

  Assembler a;

  // ------------------------------------------------------------- entry
  a.region("init");
  a.label("entry");
  a.mov_imm(rZero, 0);
  a.mov_imm(rIn, static_cast<std::int32_t>(kInput));
  // rEnd is patched at run time via register write (set below in run()).
  a.mov_imm(rEnd, static_cast<std::int32_t>(kInput));
  a.mov_imm(rPhase, 0);
  a.mov_imm(rStep, static_cast<std::int32_t>(tuning_word_));
  a.mov_imm(rCnt16, 0);
  a.mov_imm(rT0, static_cast<std::int32_t>(kOutput));
  a.str(rT0, rZero, kOutPtr);
  a.b("main_loop");

  // ------------------------------------------------------------- main loop
  a.region("loop-control");
  a.label("main_loop");
  a.cmp(rIn, rr(rEnd));
  a.b("done", Cond::kGe);
  a.ldr(rX, rIn, 0);
  a.add(rIn, rIn, imm(4));

  // NCO: quarter-wave table lookup with quadrant unfolding, exactly the
  // dsp::lut_sincos cosine path (table_bits = 10).
  a.region("NCO");
  a.mov(rT0, Operand2::r(rPhase, Shift::kLsr, 20));  // 12-bit phase cell
  a.add(rPhase, rPhase, rr(rStep));
  a.and_(rT2, rT0, imm(1023));                       // index within quadrant
  a.mov(rT3, Operand2::r(rT0, Shift::kLsr, 10));     // quadrant 0..3
  a.cmp(rT3, imm(2));
  a.b("nco_q23", Cond::kGe);
  a.cmp(rT3, imm(1));
  a.b("nco_q1", Cond::kEq);
  a.rsb(rT2, rT2, imm(1023));     // q0: cos = +table[1023 - idx]
  a.ldr_idx(rT1, rZero, rT2, 2);
  a.b("nco_done");
  a.label("nco_q1");              // q1: cos = -table[idx]
  a.ldr_idx(rT1, rZero, rT2, 2);
  a.rsb(rT1, rT1, imm(0));
  a.b("nco_done");
  a.label("nco_q23");
  a.cmp(rT3, imm(3));
  a.b("nco_q3", Cond::kEq);
  a.rsb(rT2, rT2, imm(1023));     // q2: cos = -table[1023 - idx]
  a.ldr_idx(rT1, rZero, rT2, 2);
  a.rsb(rT1, rT1, imm(0));
  a.b("nco_done");
  a.label("nco_q3");              // q3: cos = +table[idx]
  a.ldr_idx(rT1, rZero, rT2, 2);
  a.label("nco_done");

  // CIC2 integrating part -- the paper's accounting folds the mixing
  // multiply into this stage (Table 3 has no separate mixer row).  The
  // integrator state lives in memory, as the paper's explicitly
  // *unoptimised* per-function C code would have it.
  a.region("CIC2-integrating");
  a.mul(rX, rX, rT1);
  a.mov(rX, Operand2::r(rX, Shift::kAsr, 11));  // wide16 mixer shift
  a.ldr(rT2, rZero, kS1);
  a.add(rT2, rT2, rr(rX));
  a.str(rT2, rZero, kS1);
  a.ldr(rT3, rZero, kS2);
  a.add(rT3, rT3, rr(rT2));
  a.str(rT3, rZero, kS2);

  a.region("loop-control");
  a.add(rCnt16, rCnt16, imm(1));
  a.cmp(rCnt16, imm(config.cic2_decimation));
  a.b("main_loop", Cond::kLt);
  a.mov_imm(rCnt16, 0);
  a.bl("stage2");
  a.b("main_loop");
  a.label("done");
  a.halt();

  // ------------------------------------------- stage2: 4.032 MHz rate work
  a.region("CIC2-cascading");
  a.label("stage2");
  a.ldr(rX, rZero, kS2);  // integrator-2 value is the comb input
  a.ldr(rT0, rZero, kD1);
  a.sub(rT1, rX, rr(rT0));
  a.str(rX, rZero, kD1);
  a.ldr(rT0, rZero, kD2);
  a.sub(rX, rT1, rr(rT0));
  a.str(rT1, rZero, kD2);
  a.mov(rX, Operand2::r(rX, Shift::kAsr, g2));  // normalise CIC2 gain

  a.region("CIC5-integrating");
  // 64-bit value in {rT0 (lo), rT1 (hi)} starts as sign-extended rX.
  a.mov(rT0, rr(rX));
  a.mov(rT1, Operand2::r(rX, Shift::kAsr, 31));
  for (int s = 0; s < config.cic5_stages; ++s) {
    const std::int32_t lo = kCic5Int + 8 * s;
    a.ldr(rT2, rZero, lo);
    a.ldr(rT3, rZero, lo + 4);
    a.adds(rT0, rT2, rr(rT0));
    a.adc(rT1, rT3, rr(rT1));
    a.str(rT0, rZero, lo);
    a.str(rT1, rZero, lo + 4);
  }
  a.ldr(rT2, rZero, kCnt21);
  a.add(rT2, rT2, imm(1));
  a.str(rT2, rZero, kCnt21);
  a.cmp(rT2, imm(config.cic5_decimation));
  a.b("stage2_done", Cond::kLt);
  a.mov_imm(rT2, 0);
  a.str(rT2, rZero, kCnt21);
  a.str(kLinkReg, rZero, kSaveLr);
  a.bl("stage3");
  a.ldr(kLinkReg, rZero, kSaveLr);
  a.label("stage2_done");
  a.ret();

  // -------------------------------------------- stage3: 192 kHz rate work
  a.region("CIC5-cascading");
  a.label("stage3");
  // Five 64-bit comb sections on the value in {rT0, rT1}.
  for (int s = 0; s < config.cic5_stages; ++s) {
    const std::int32_t lo = kCic5Dly + 8 * s;
    a.ldr(rT2, rZero, lo);
    a.ldr(rT3, rZero, lo + 4);
    a.str(rT0, rZero, lo);
    a.str(rT1, rZero, lo + 4);
    a.subs(rT0, rT0, rr(rT2));
    a.sbc(rT1, rT1, rr(rT3));
  }
  // Normalise CIC5 gain: value >>= g5 (the 32-bit result is known to fit).
  a.mov(rX, Operand2::r(rT0, Shift::kLsr, g5));
  a.orr(rX, rX, Operand2::r(rT1, Shift::kLsl, 32 - g5));

  a.region("FIR125-poly-phase");
  a.ldr(rT2, rZero, kRidx);
  a.mov_imm(rT3, static_cast<std::int32_t>(kRing));
  a.str_idx(rX, rT3, rT2, 2);
  a.add(rT2, rT2, imm(1));
  a.and_(rT2, rT2, imm(127));
  a.str(rT2, rZero, kRidx);
  a.ldr(rT2, rZero, kCnt8);
  a.add(rT2, rT2, imm(1));
  a.str(rT2, rZero, kCnt8);
  a.cmp(rT2, imm(config.fir_decimation));
  a.b("stage3_done", Cond::kLt);
  a.mov_imm(rT2, 0);
  a.str(rT2, rZero, kCnt8);

  a.region("FIR125-summation");
  // Spill the live counter register the MAC loop reuses (as a compiler's
  // prologue would).
  a.str(rCnt16, rZero, kSave6);
  a.mov_imm(rS1, static_cast<std::int32_t>(kRing));   // ring base
  a.mov_imm(rS2, static_cast<std::int32_t>(kCoeff));  // coefficient base
  a.ldr(rT1, rZero, kRidx);
  a.sub(rT1, rT1, imm(1));  // newest sample index
  a.mov_imm(rCnt16, 0);     // k
  a.mov_imm(rX, 0);         // acc lo
  a.mov_imm(rT0, 0);        // acc hi
  a.label("fir_loop");
  a.sub(rT2, rT1, rr(rCnt16));
  a.and_(rT2, rT2, imm(127));
  a.ldr_idx(rT2, rS1, rT2, 2);      // sample
  a.ldr_idx(rT3, rS2, rCnt16, 2);   // coefficient
  a.smlal(rX, rT0, rT2, rT3);
  a.add(rCnt16, rCnt16, imm(1));
  a.cmp(rCnt16, imm(config.fir_taps));
  a.b("fir_loop", Cond::kLt);
  // Requantise: value >>= 15 (Q1.15 coefficients), result fits 16 bits.
  a.mov(rT2, Operand2::r(rX, Shift::kLsr, 15));
  a.orr(rT2, rT2, Operand2::r(rT0, Shift::kLsl, 17));
  a.ldr(rT3, rZero, kOutPtr);
  a.str(rT2, rT3, 0);
  a.add(rT3, rT3, imm(4));
  a.str(rT3, rZero, kOutPtr);
  a.ldr(rCnt16, rZero, kSave6);
  a.label("stage3_done");
  a.ret();

  program_ = a.assemble();
}

DdcRunResult DdcProgram::run(const std::vector<std::int64_t>& input,
                             const CycleModel& cycles) const {
  std::vector<std::int32_t> in32;
  widen_checked(input, in32, "DdcProgram");

  // The input length is only known now: patch the end-pointer immediate in
  // a copy of the program (the moral equivalent of linking in a constant).
  Assembler::Program prog = program_;
  for (auto& instr : prog.code) {
    if (instr.op == Op::kMovImm && instr.rd == rEnd)
      instr.op2 = Operand2::immediate(static_cast<std::int32_t>(kInput + 4 * in32.size()));
  }

  Cpu::Config cc;
  cc.memory_bytes = kInput + 4 * (in32.size() + 16);
  cc.cycles = cycles;
  Cpu cpu(prog, cc);
  cpu.write_words(kCosTable, cos_table_);
  cpu.write_words(kCoeff, fir_coeffs_);
  cpu.write_words(kInput, in32);

  DdcRunResult result;
  result.stats = cpu.run("entry");
  const std::size_t n_out =
      input.size() / static_cast<std::size_t>(config_.total_decimation());
  result.outputs = cpu.read_words(kOutput, n_out);
  return result;
}

// ----------------------------------------------------------------- stream

DdcStream::DdcStream(const DdcProgram& program) : program_(&program) {
  // The input window is re-filled per entry; its size is bounded by the
  // fixed output region between kOutput and kInput (one output word per
  // total_decimation inputs, with slack for counter phase).
  const auto decim =
      static_cast<std::size_t>(program_->config_.total_decimation());
  const std::size_t out_capacity = (kInput - kOutput) / 4 - 8;
  chunk_samples_ = std::min<std::size_t>(32768, out_capacity * decim);
  boot();
}

void DdcStream::boot() {
  Cpu::Config cc;
  cc.memory_bytes = kInput + 4 * (chunk_samples_ + 16);
  cpu_.emplace(program_->program_, cc);
  cpu_->write_words(kCosTable, program_->cos_table_);
  cpu_->write_words(kCoeff, program_->fir_coeffs_);
  // The unpatched entry has rEnd = kInput, so this run initialises the
  // register file (phase, counters, zero register) and the output pointer,
  // then halts before consuming a sample.  Streaming re-enters at
  // "main_loop" with the live registers from the previous block.
  const RunStats stats = cpu_->run("entry");
  instructions_ += stats.instructions;
  cycles_ += stats.cycles;
}

void DdcStream::process_block(std::span<const std::int64_t> in,
                              std::vector<std::int32_t>& out) {
  for (std::size_t off = 0; off < in.size(); off += chunk_samples_) {
    const std::span<const std::int64_t> part =
        in.subspan(off, std::min(chunk_samples_, in.size() - off));
    widen_checked(part, window_, "DdcStream");
    cpu_->write_words(kInput, window_);
    cpu_->set_reg(rIn, static_cast<std::int32_t>(kInput));
    cpu_->set_reg(rEnd, static_cast<std::int32_t>(kInput + 4 * window_.size()));
    cpu_->write_word(static_cast<std::uint32_t>(kOutPtr),
                     static_cast<std::int32_t>(kOutput));
    const RunStats stats = cpu_->run("main_loop");
    instructions_ += stats.instructions;
    cycles_ += stats.cycles;
    // The program advanced the output pointer once per produced sample;
    // everything between kOutput and it is this window's yield.
    const auto out_ptr = static_cast<std::uint32_t>(
        cpu_->read_word(static_cast<std::uint32_t>(kOutPtr)));
    const auto words = cpu_->read_words(kOutput, (out_ptr - kOutput) / 4);
    out.insert(out.end(), words.begin(), words.end());
  }
}

void DdcStream::reset() {
  instructions_ = 0;
  cycles_ = 0;
  boot();
}

}  // namespace twiddc::gpp
