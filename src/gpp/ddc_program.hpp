// twiddc::gpp -- the DDC written in the ARM-like ISA (paper section 4.2).
//
// Like the paper's C code, the program computes only the in-phase rail
// ("for simplicity reasons, the code only performs the in-phase
// transformation, so the result has to be doubled for the whole DDC") and
// fetches the cosine values from a look-up table.  The arithmetic follows
// core::DatapathSpec::wide16() exactly -- 16-bit signal words in 32-bit
// registers, 64-bit CIC5/FIR accumulation via ADDS/ADC and SMLAL -- so the
// program's outputs are bit-identical to FixedDdc(wide16)'s I rail, which
// the test suite verifies.
//
// Profiling regions mirror the rows of Table 3: NCO (including the mixing
// multiply, as the NCO's output application), CIC2-integrating,
// CIC2-cascading, CIC5-integrating, CIC5-cascading, FIR125-poly-phase,
// FIR125-summation, plus an explicit loop-control row the paper folds into
// its parts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/ddc_config.hpp"
#include "src/core/pipeline.hpp"
#include "src/gpp/cpu.hpp"

namespace twiddc::gpp {

/// Result of running the DDC program over a block of input samples.
struct DdcRunResult {
  std::vector<std::int32_t> outputs;  ///< in-phase outputs (24 kHz rate)
  RunStats stats;

  /// Cycles consumed per input sample (the quantity the paper scales up).
  [[nodiscard]] double cycles_per_input(std::size_t inputs) const {
    return inputs == 0 ? 0.0
                       : static_cast<double>(stats.cycles) / static_cast<double>(inputs);
  }
  /// Clock (MHz) needed to sustain the full DDC (I and Q) in real time at
  /// `input_rate_hz`, doubling the in-phase figure as the paper does.
  [[nodiscard]] double required_clock_mhz(std::size_t inputs, double input_rate_hz) const {
    return 2.0 * cycles_per_input(inputs) * input_rate_hz / 1e6;
  }
  /// Power at the ARM922T's 0.25 mW/MHz (core + caches).
  [[nodiscard]] double power_mw(std::size_t inputs, double input_rate_hz) const {
    return 0.25 * required_clock_mhz(inputs, input_rate_hz);
  }
};

/// Builds and runs the in-phase DDC program.
class DdcProgram {
 public:
  /// ARM922T datasheet constant used by the paper.
  static constexpr double kMilliwattPerMhz = 0.25;
  /// The ARM946E-class core draws more per MHz (section 4.2.2: the DSP
  /// extension "resulted in an even higher power consumption").
  static constexpr double kMilliwattPerMhzArm9e = 0.32;

  explicit DdcProgram(const core::DdcConfig& config);

  /// Builds the program from an arbitrary ChainPlan via lower_plan().
  explicit DdcProgram(const core::ChainPlan& plan);

  /// Plan -> program lowering: accepts exactly the Figure-1 family realised
  /// with the wide16 datapath the kernel's arithmetic implements, within
  /// the kernel's structural limits (the CIC2+CIC5 chain it is written for,
  /// <= 128 FIR taps for the sample ring, 32-bit-shifter gain ranges).
  /// Throws core::LoweringError naming the first unmappable feature.
  static core::DdcConfig lower_plan(const core::ChainPlan& plan);

  /// Runs the program over `input` (values must fit 12 bits).  The input
  /// length should be a multiple of the total decimation for aligned output.
  DdcRunResult run(const std::vector<std::int64_t>& input) const {
    return run(input, CycleModel::arm9tdmi());
  }
  /// Same, with a specific core cycle model (e.g. CycleModel::arm9e()).
  DdcRunResult run(const std::vector<std::int64_t>& input,
                   const CycleModel& cycles) const;

  /// The assembled program (for inspection / instruction counting).
  [[nodiscard]] const Assembler::Program& program() const { return program_; }

 private:
  friend class DdcStream;

  core::DdcConfig config_;
  Assembler::Program program_;
  std::vector<std::int32_t> cos_table_;
  std::uint32_t tuning_word_ = 0;
  std::vector<std::int32_t> fir_coeffs_;
};

/// Bounded-history incremental runner for the DDC program: one persistent
/// Cpu whose registers (NCO phase, decimation counters), CIC/FIR state
/// memory and sample ring survive across process_block() calls, so a
/// stream of N blocks costs O(N) -- unlike run(), a batch kernel that must
/// re-execute from reset and is therefore quadratic when re-fed a growing
/// history.  This is what lets the gpp-arm backend serve long streams.
///
/// Bit-exactness: each block re-enters the program at its main loop with
/// the live register file, which executes exactly the instruction sequence
/// a single batch run over the concatenated input would -- so streamed
/// outputs are bit-identical to one run() over the whole feed (the test
/// suite pins this).  Blocks of any size are accepted; larger ones are fed
/// through the fixed input window in chunks.
class DdcStream {
 public:
  /// `program` is referenced, not copied (the Cpu makes the one image copy
  /// it needs); it must outlive this stream.
  explicit DdcStream(const DdcProgram& program);

  /// Runs the next block of the stream and appends the in-phase outputs.
  /// Input values must fit 12 bits (as run()).
  void process_block(std::span<const std::int64_t> in,
                     std::vector<std::int32_t>& out);

  /// Restores power-on state (fresh history, phase 0).
  void reset();

  /// Cumulative simulation cost since construction/reset.
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  void boot();

  const DdcProgram* program_;  ///< non-owning; tables live in the program
  std::size_t chunk_samples_ = 0;  ///< input-window capacity per entry
  std::vector<std::int32_t> window_;  ///< widened-input scratch (reused)
  std::optional<Cpu> cpu_;
  std::uint64_t instructions_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace twiddc::gpp
