#include "src/gpp/disasm.hpp"

#include <map>
#include <sstream>

namespace twiddc::gpp {
namespace {

std::string reg_name(int r) {
  if (r == 13) return "sp";
  if (r == 14) return "lr";
  if (r == 15) return "pc";
  return "r" + std::to_string(r);
}

std::string cond_suffix(Cond c) {
  switch (c) {
    case Cond::kAl: return "";
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kGe: return "ge";
    case Cond::kGt: return "gt";
    case Cond::kLe: return "le";
  }
  return "";
}

std::string op2_str(const Operand2& op2) {
  if (op2.is_imm) return "#" + std::to_string(op2.imm);
  std::string s = reg_name(op2.reg);
  switch (op2.shift) {
    case Shift::kNone: break;
    case Shift::kLsl: s += ", lsl #" + std::to_string(op2.shift_amount); break;
    case Shift::kLsr: s += ", lsr #" + std::to_string(op2.shift_amount); break;
    case Shift::kAsr: s += ", asr #" + std::to_string(op2.shift_amount); break;
  }
  return s;
}

std::string alu3(const char* mnemonic, const Instr& i) {
  return std::string(mnemonic) + cond_suffix(i.cond) + " " + reg_name(i.rd) + ", " +
         reg_name(i.rn) + ", " + op2_str(i.op2);
}

}  // namespace

std::string disassemble(const Instr& i) {
  switch (i.op) {
    case Op::kNop: return "nop";
    case Op::kMovImm: return "mov " + reg_name(i.rd) + ", #" + std::to_string(i.op2.imm);
    case Op::kMov: return "mov " + reg_name(i.rd) + ", " + op2_str(i.op2);
    case Op::kAdd: return alu3("add", i);
    case Op::kAdds: return alu3("adds", i);
    case Op::kAdc: return alu3("adc", i);
    case Op::kSub: return alu3("sub", i);
    case Op::kSubs: return alu3("subs", i);
    case Op::kSbc: return alu3("sbc", i);
    case Op::kRsb: return alu3("rsb", i);
    case Op::kAnd: return alu3("and", i);
    case Op::kOrr: return alu3("orr", i);
    case Op::kEor: return alu3("eor", i);
    case Op::kMul:
      return "mul " + reg_name(i.rd) + ", " + reg_name(i.rn) + ", " + reg_name(i.rm);
    case Op::kMla:
      return "mla " + reg_name(i.rd) + ", " + reg_name(i.rn) + ", " + reg_name(i.rm) +
             ", " + reg_name(i.ra);
    case Op::kSmull:
      return "smull " + reg_name(i.rd) + ", " + reg_name(i.ra) + ", " + reg_name(i.rn) +
             ", " + reg_name(i.rm);
    case Op::kSmlal:
      return "smlal " + reg_name(i.rd) + ", " + reg_name(i.ra) + ", " + reg_name(i.rn) +
             ", " + reg_name(i.rm);
    case Op::kLdr:
      return "ldr " + reg_name(i.rd) + ", [" + reg_name(i.rn) + ", #" +
             std::to_string(i.mem_offset) + "]";
    case Op::kStr:
      return "str " + reg_name(i.rd) + ", [" + reg_name(i.rn) + ", #" +
             std::to_string(i.mem_offset) + "]";
    case Op::kLdrIdx:
      return "ldr " + reg_name(i.rd) + ", [" + reg_name(i.rn) + ", " + reg_name(i.rm) +
             ", lsl #" + std::to_string(i.mem_shift) + "]";
    case Op::kStrIdx:
      return "str " + reg_name(i.rd) + ", [" + reg_name(i.rn) + ", " + reg_name(i.rm) +
             ", lsl #" + std::to_string(i.mem_shift) + "]";
    case Op::kCmp: return "cmp " + reg_name(i.rn) + ", " + op2_str(i.op2);
    case Op::kB:
      return "b" + cond_suffix(i.cond) + " " +
             (i.label.empty() ? "@" + std::to_string(i.target) : i.label);
    case Op::kBl:
      return "bl " + (i.label.empty() ? "@" + std::to_string(i.target) : i.label);
    case Op::kRet: return "bx lr";
    case Op::kHalt: return "halt";
  }
  return "???";
}

std::string disassemble(const Assembler::Program& program) {
  // Invert the label map for banner printing.
  std::map<int, std::vector<std::string>> labels_at;
  for (const auto& [name, pc] : program.labels) labels_at[pc].push_back(name);
  std::map<int, std::string> region_at;
  for (const auto& region : program.regions) region_at[region.begin] = region.name;

  std::ostringstream out;
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    const int ipc = static_cast<int>(pc);
    if (auto r = region_at.find(ipc); r != region_at.end())
      out << ";; ---- region: " << r->second << " ----\n";
    if (auto l = labels_at.find(ipc); l != labels_at.end())
      for (const auto& name : l->second) out << name << ":\n";
    out << "  " << ipc << ":\t" << disassemble(program.code[pc]) << "\n";
  }
  return out.str();
}

}  // namespace twiddc::gpp
