// twiddc::gpp -- disassembler for the ARM-like IR.
//
// Renders instructions in ARM-flavoured syntax so DDC kernel listings can
// be inspected the way the paper's authors inspected their compiler output
// with the ARM source-level debugger.
#pragma once

#include <string>

#include "src/gpp/assembler.hpp"
#include "src/gpp/isa.hpp"

namespace twiddc::gpp {

/// One instruction, e.g. "add r4, r4, r7" or "ldrne r1, [r0, #8]".
std::string disassemble(const Instr& instr);

/// Whole program with addresses, labels and region banners.
std::string disassemble(const Assembler::Program& program);

}  // namespace twiddc::gpp
