// twiddc::gpp -- a small ARM9-flavoured instruction set.
//
// The paper compiles the DDC's C code for an ARM922T and profiles it with
// the ARM source-level debugger.  We reproduce that methodology with an
// in-memory IR: enough of the ARMv4T integer ISA to express the DDC
// naturally (flexible shifted second operands, long multiplies with
// accumulate, load/store with register offsets) plus the cycle-cost
// structure of the ARM9TDMI pipeline (multi-cycle multiplies, load-use
// interlocks, branch refills).
#pragma once

#include <cstdint>
#include <string>

namespace twiddc::gpp {

/// Register file: r0..r12 general purpose, r13 stack (unused), r14 link.
inline constexpr int kNumRegs = 16;
inline constexpr int kLinkReg = 14;

enum class Op : std::uint8_t {
  kNop,
  kMovImm,  ///< rd = imm32
  kMov,     ///< rd = op2
  kAdd,     ///< rd = rn + op2
  kAdds,    ///< rd = rn + op2, sets carry/flags (for 64-bit adds)
  kAdc,     ///< rd = rn + op2 + carry
  kSub,     ///< rd = rn - op2
  kSubs,    ///< rd = rn - op2, sets carry/flags (for 64-bit subtracts)
  kSbc,     ///< rd = rn - op2 - !carry
  kRsb,     ///< rd = op2 - rn
  kAnd,
  kOrr,
  kEor,
  kMul,     ///< rd = rn * op2 (low 32)
  kMla,     ///< rd = rn * rm + ra
  kSmull,   ///< {rd_hi:rd_lo} = rn * rm (signed 64)
  kSmlal,   ///< {rd_hi:rd_lo} += rn * rm (signed 64 accumulate)
  kLdr,     ///< rd = mem32[rn + imm]
  kStr,     ///< mem32[rn + imm] = rd
  kLdrIdx,  ///< rd = mem32[rn + (rm << shift)]
  kStrIdx,  ///< mem32[rn + (rm << shift)] = rd
  kCmp,     ///< flags = rn - op2
  kB,       ///< conditional branch to label
  kBl,      ///< branch-and-link (call)
  kRet,     ///< return (bx lr)
  kHalt,    ///< stop simulation
};

enum class Cond : std::uint8_t { kAl, kEq, kNe, kLt, kGe, kGt, kLe };

enum class Shift : std::uint8_t { kNone, kLsl, kLsr, kAsr };

/// Flexible second operand: either an immediate or a register with an
/// immediate-amount shift (the ARM barrel shifter).
struct Operand2 {
  bool is_imm = false;
  std::int32_t imm = 0;
  int reg = 0;
  Shift shift = Shift::kNone;
  int shift_amount = 0;

  static Operand2 immediate(std::int32_t v) {
    Operand2 o;
    o.is_imm = true;
    o.imm = v;
    return o;
  }
  static Operand2 r(int reg, Shift shift = Shift::kNone, int amount = 0) {
    Operand2 o;
    o.reg = reg;
    o.shift = shift;
    o.shift_amount = amount;
    return o;
  }
};

struct Instr {
  Op op = Op::kNop;
  Cond cond = Cond::kAl;
  int rd = 0;       ///< destination (rd_lo for long multiplies)
  int rn = 0;       ///< first operand / base register
  int rm = 0;       ///< second multiply operand
  int ra = 0;       ///< accumulate operand (kMla) / rd_hi (long multiplies)
  Operand2 op2;     ///< flexible operand for ALU ops
  std::int32_t mem_offset = 0;  ///< byte offset for kLdr/kStr
  int mem_shift = 0;            ///< shift for kLdrIdx/kStrIdx
  std::int32_t target = -1;     ///< resolved branch target (instruction index)
  std::string label;            ///< unresolved target label name
};

/// Cycle-cost constants for the ARM9TDMI-class pipeline (ARM922T core).
struct CycleModel {
  int alu = 1;
  int mul = 3;        ///< MUL: 2-4 depending on early termination; flat 3
  int mla = 4;
  int smull = 4;
  int smlal = 5;
  int load = 1;       ///< issue cost; result ready after `load_latency`
  int load_latency = 2;  ///< cycles until a loaded value is usable
  int store = 1;
  int branch_taken = 3;  ///< pipeline refill
  int branch_untaken = 1;
  int icache_miss = 16;
  int dcache_miss = 16;

  /// The ARM922T (ARMv4T) pipeline the paper profiles.
  static CycleModel arm9tdmi() { return CycleModel{}; }

  /// The ARM9E-class core with the DSP instruction-set extension the paper's
  /// section 4.2.2 tried (ARM946E): single-issue too, but the enhanced
  /// multiplier retires MUL/MAC in 1-2 cycles.  The paper found "no major
  /// speed improvement" -- the DDC's full-rate work is loads, adds and
  /// branches, not multiplies -- which this model reproduces.
  static CycleModel arm9e() {
    CycleModel m;
    m.mul = 2;
    m.mla = 2;
    m.smull = 2;
    m.smlal = 2;
    return m;
  }
};

}  // namespace twiddc::gpp
