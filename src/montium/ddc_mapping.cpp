#include "src/montium/ddc_mapping.hpp"

#include <string>

#include "src/common/error.hpp"
#include "src/core/backend.hpp"
#include "src/dsp/nco.hpp"
#include "src/fixed/qformat.hpp"

namespace twiddc::montium {
namespace {

// Datapath constants of the wide16 twin.
constexpr int kWord = 16;        // architectural word (I/O, tables, coefficients)
constexpr int kMixShift = 11;    // input 12 + nco 16 - 1 - 16
constexpr int kNcoTableBits = 7; // 512-entry full-wave table == 7-bit quarter

// Memory map inside the state memory of ALU4/ALU5 (one per rail).
constexpr int kCic5IntBase = 0;   // 5 words: integrator states
constexpr int kCic5DlyBase = 8;   // 5 words: comb delays
constexpr int kFirAccBase = 16;   // 16 words: polyphase partial sums

constexpr int kMemoriesPerAluForConfig = Tile::kMemoriesPerAlu;

}  // namespace

core::DatapathSpec DdcMapping::spec() {
  auto s = core::DatapathSpec::wide16();
  s.nco_table_bits = kNcoTableBits;
  return s;
}

core::DdcConfig DdcMapping::lower_plan(const core::ChainPlan& plan) {
  const std::string who = "montium";
  const auto config = core::lower_figure1_plan(plan, spec(), who);
  if (config.cic2_stages != 2 || config.cic5_stages != 5)
    throw core::LoweringError(who, "the Figure 9 schedule is written for the "
                              "CIC2+CIC5 chain (got CIC" +
                              std::to_string(config.cic2_stages) + "+CIC" +
                              std::to_string(config.cic5_stages) + ")");
  if (config.fir_taps > 125)
    throw core::LoweringError(who, "at most 125 coefficients fit the ALU4/5 local "
                              "memories; plan needs " + std::to_string(config.fir_taps));
  // <= 16 FIR partial sums may be live at once (the kFirAccBase ring).
  if (config.fir_taps > 16 * config.fir_decimation)
    throw core::LoweringError(who, "a " + std::to_string(config.fir_taps) +
                              "-tap FIR decimating by " +
                              std::to_string(config.fir_decimation) +
                              " keeps more than the 16 partial sums the local "
                              "memories provide live at once");
  // Schedule feasibility on the time-multiplexed ALU pair: each CIC2 window
  // spends 1 cycle on the comb and 4 on CIC5 integration, so a window of
  // cic2_decimation cycles leaves cic2_decimation - 5 free; per 192 kHz
  // sample the pair must also fit 3 CIC5-comb cycles and the FIR MACs.
  const int free_cycles = (config.cic2_decimation - 5) * config.cic5_decimation;
  const int fir_macs = (config.fir_taps + config.fir_decimation - 1) / config.fir_decimation + 1;
  if (config.cic2_decimation < 6 || free_cycles < 3 + fir_macs)
    throw core::LoweringError(who, "the time-multiplexed ALU pair has only " +
                              std::to_string(free_cycles > 0 ? free_cycles : 0) +
                              " free cycles per FIR input but the CIC5 comb and FIR "
                              "need " + std::to_string(3 + fir_macs));
  return config;
}

DdcMapping::DdcMapping(const core::ChainPlan& plan) : DdcMapping(lower_plan(plan)) {}

DdcMapping::DdcMapping(const core::DdcConfig& config)
    : config_(config), tile_(kWideWordBits) {
  config.validate();
  if (config.cic2_stages != 2 || config.cic5_stages != 5)
    throw ConfigError("DdcMapping: the schedule is written for the CIC2+CIC5 chain");
  if (config.cic2_decimation < 6)
    throw ConfigError("DdcMapping: CIC2 decimation below 6 leaves no cycles for the "
                      "time-multiplexed filters");
  if (config.fir_taps > 125)
    throw ConfigError("DdcMapping: at most 125 taps fit the partial-sum ring");

  tuning_word_ =
      dsp::PhaseAccumulator::tuning_word(config.nco_freq_hz, config.input_rate_hz);

  // Fill the sine/cosine memories: 512-entry full-wave tables whose cells
  // equal the 7-bit quarter-wave lookup of the functional twin.
  const auto quarter = dsp::make_quarter_sine_table(kNcoTableBits, kWord);
  auto& cos_mem = tile_.memory(0, 0);
  auto& sin_mem = tile_.memory(1, 0);
  for (int c = 0; c < 512; ++c) {
    const auto sc =
        dsp::lut_sincos(static_cast<std::uint32_t>(c) << 23, quarter, kNcoTableBits);
    cos_mem.write(c, sc.cos);
    sin_mem.write(c, sc.sin);
  }

  // FIR coefficients (identical quantisation to the twin) into the second
  // memory of ALU4 (I) and ALU5 (Q).
  core::FixedDdc twin(config, spec());
  fir_taps_ = twin.fir_taps();
  for (int rail = 0; rail < 2; ++rail) {
    auto& coeff = tile_.memory(3 + rail, 1);
    for (std::size_t k = 0; k < fir_taps_.size(); ++k)
      coeff.write(static_cast<int>(k), fir_taps_[k]);
  }
}

void DdcMapping::issue_full_rate_work() {
  // ALU3 (index 2): LUT address generation -- phase accumulate + extract.
  tile_.alu(2).issue(parts::kFullRate, 0, 1, 1);
  // ALU1/ALU2 (indices 0/1): Figure 8 -- multiply at level 2, integrate in
  // the level-2 adder and a level-1 function unit.
  tile_.alu(0).issue(parts::kFullRate, 1, 2);
  tile_.alu(1).issue(parts::kFullRate, 1, 2);
}

void DdcMapping::run_cic2_comb() {
  // One cycle on both time-multiplexed ALUs: two subtractions each
  // ("performed in both level 1 and 2 of the ALU").
  for (int rail = 0; rail < 2; ++rail) {
    auto& alu = tile_.alu(3 + rail);
    alu.issue(parts::kCic2Comb, 0, 2);
    auto& src = tile_.alu(rail);  // full-rate ALU holding the integrators
    const std::int64_t v = src.reg(1);
    const std::int64_t t1 = alu.wrap(v - alu.reg(0));
    alu.set_reg(0, v);  // delay 1
    const std::int64_t t2 = alu.wrap(t1 - alu.reg(1));
    alu.set_reg(1, t1);  // delay 2
    const int g2 = fixed::cic_bit_growth(config_.cic2_stages, config_.cic2_decimation);
    cic5_in_[rail] = fixed::narrow(
        fixed::shift_right(t2, g2, fixed::Rounding::kTruncate), kWord,
        fixed::Overflow::kSaturate);
  }
}

void DdcMapping::run_cic5_integrate(int phase) {
  // Five integrator stages spread over four cycles: 2+2+1 additions plus a
  // bookkeeping cycle for the decimation counter / AGU update.
  struct Span {
    int first;
    int count;
  };
  static constexpr Span kPlan[4] = {{0, 2}, {2, 2}, {4, 1}, {-1, 0}};
  const Span span = kPlan[phase];
  for (int rail = 0; rail < 2; ++rail) {
    auto& alu = tile_.alu(3 + rail);
    alu.issue(parts::kCic5Int, 0, span.count > 0 ? span.count : 1);
    if (span.count <= 0) continue;  // counter update cycle
    auto& state = tile_.memory(3 + rail, 0);
    for (int s = span.first; s < span.first + span.count; ++s) {
      const std::int64_t prev =
          s == 0 ? cic5_in_[rail] : state.read(kCic5IntBase + s - 1);
      state.write(kCic5IntBase + s, state.read(kCic5IntBase + s) + prev);
    }
  }
}

void DdcMapping::run_cic5_comb() {
  // Three cycles on both ALUs: 2+2+1 subtractions, the last cycle also
  // performing the gain-normalising shift.
  const int step = cic5_comb_phase_;
  const int g5 = fixed::cic_bit_growth(config_.cic5_stages, config_.cic5_decimation);
  for (int rail = 0; rail < 2; ++rail) {
    auto& alu = tile_.alu(3 + rail);
    auto& state = tile_.memory(3 + rail, 0);
    const int first = step * 2;
    const int count = step == 2 ? 1 : 2;
    alu.issue(parts::kCic5Comb, 0, count, step == 2 ? 1 : 0);
    for (int s = first; s < first + count; ++s) {
      const std::int64_t v =
          s == 0 ? state.read(kCic5IntBase + 4) : cic5_out_[rail];
      const std::int64_t delayed = state.read(kCic5DlyBase + s);
      state.write(kCic5DlyBase + s, v);
      cic5_out_[rail] = alu.wrap(v - delayed);
    }
    if (step == 2) {
      cic5_out_[rail] = fixed::narrow(
          fixed::shift_right(cic5_out_[rail], g5, fixed::Rounding::kTruncate), kWord,
          fixed::Overflow::kSaturate);
    }
  }
}

void DdcMapping::run_fir_mac(int mac_slot) {
  // One multiply-accumulate per rail per cycle: the stored 192 kHz sample
  // x[m] contributes h[t*D + D-1 - m] to the partial sum of output t, for
  // every live output t in [m/D, (m + taps - D)/D].
  const long long m = fir_sample_index_;
  const int taps = config_.fir_taps;
  const int dec = config_.fir_decimation;
  const long long t = m / dec + mac_slot;
  const long long k = t * dec + (dec - 1) - m;
  if (k < 0 || k >= taps) {
    throw SimulationError("DdcMapping: FIR MAC index out of range (schedule bug)");
  }
  for (int rail = 0; rail < 2; ++rail) {
    auto& alu = tile_.alu(3 + rail);
    alu.issue(parts::kFir, 1, 1);
    auto& state = tile_.memory(3 + rail, 0);
    auto& coeff = tile_.memory(3 + rail, 1);
    const int slot = kFirAccBase + static_cast<int>(t % 16);
    state.write(slot,
                state.read(slot) + coeff.read(static_cast<int>(k)) * fir_sample_[rail]);
  }
}

std::optional<std::int64_t> DdcMapping::finish_fir_output(int rail) {
  const long long m = fir_sample_index_;
  const int dec = config_.fir_decimation;
  if (m % dec != dec - 1) return std::nullopt;
  const long long t = (m - (dec - 1)) / dec;
  auto& state = tile_.memory(3 + rail, 0);
  const int slot = kFirAccBase + static_cast<int>(t % 16);
  const std::int64_t acc = state.read(slot);
  state.write(slot, 0);  // free the partial-sum slot for output t+16
  const int out_shift = kWord - 1;  // Q1.15 coefficients
  return fixed::narrow(fixed::shift_right(acc, out_shift, fixed::Rounding::kTruncate),
                       kWord, fixed::Overflow::kSaturate);
}

std::optional<core::IqSample> DdcMapping::step(std::int64_t x) {
  if (!fixed::fits_bits(x, 12))
    throw SimulationError("DdcMapping: input sample does not fit 12 bits");
  tile_.begin_cycle();
  std::optional<core::IqSample> out;

  // ---- full-rate dataflow (ALUs 1..3 of the paper) ------------------------
  issue_full_rate_work();
  const int addr = static_cast<int>(phase_ >> 23);
  phase_ += tuning_word_;
  const std::int64_t cos_v = tile_.memory(0, 0).read(addr);
  const std::int64_t sin_v = tile_.memory(1, 0).read(addr);
  const std::int64_t mixed[2] = {
      fixed::narrow(fixed::shift_right(x * cos_v, kMixShift, fixed::Rounding::kTruncate),
                    kWord, fixed::Overflow::kSaturate),
      fixed::narrow(fixed::shift_right(x * sin_v, kMixShift, fixed::Rounding::kTruncate),
                    kWord, fixed::Overflow::kSaturate)};
  for (int rail = 0; rail < 2; ++rail) {
    auto& alu = tile_.alu(rail);
    alu.set_reg(0, alu.reg(0) + mixed[rail]);  // integrator 1
    alu.set_reg(1, alu.reg(1) + alu.reg(0));   // integrator 2
  }

  // ---- time-multiplexed pair (ALUs 4/5): priority schedule ----------------
  ++cnt16_;
  const bool comb_now = cnt16_ == config_.cic2_decimation;
  if (comb_now) {
    cnt16_ = 0;
    run_cic2_comb();
    cic5_int_phase_ = 0;
  } else if (cic5_int_phase_ >= 0) {
    run_cic5_integrate(cic5_int_phase_);
    if (++cic5_int_phase_ == 4) {
      cic5_int_phase_ = -1;
      if (++cnt21_ == config_.cic5_decimation) {
        cnt21_ = 0;
        cic5_comb_phase_ = 0;
      }
    }
  } else if (cic5_comb_phase_ >= 0) {
    run_cic5_comb();
    if (++cic5_comb_phase_ == 3) {
      cic5_comb_phase_ = -1;
      // Hand the fresh 192 kHz sample to the FIR.
      fir_sample_[0] = cic5_out_[0];
      fir_sample_[1] = cic5_out_[1];
      ++fir_sample_index_;
      // Number of live partial sums this sample contributes to:
      // t in [m/D, (m + taps - D)/D].
      const long long m = fir_sample_index_;
      const int dec = config_.fir_decimation;
      const long long lo = m / dec;
      const long long hi = (m + config_.fir_taps - dec) / dec;
      fir_macs_this_sample_ = static_cast<int>(hi - lo + 1);
      fir_phase_ = 0;
    }
  } else if (fir_phase_ >= 0) {
    run_fir_mac(fir_phase_);
    if (++fir_phase_ == fir_macs_this_sample_) {
      fir_phase_ = -1;
      const auto yi = finish_fir_output(0);
      const auto yq = finish_fir_output(1);
      if (yi && yq) out = core::IqSample{*yi, *yq};
    }
  }

  tile_.end_cycle();
  return out;
}

std::vector<core::IqSample> DdcMapping::process(const std::vector<std::int64_t>& in) {
  std::vector<core::IqSample> out;
  for (std::int64_t x : in) {
    if (auto y = step(x)) out.push_back(*y);
  }
  return out;
}

std::vector<std::uint8_t> DdcMapping::serialize_config() const {
  // A compact binary configuration in the spirit of the Montium toolchain:
  // sections for ALU instruction patterns, AGU configurations, crossbar
  // routes, register-file configurations and the sequencer program.  The
  // paper reports 1110 bytes for its toolchain's encoding of this mapping.
  std::vector<std::uint8_t> blob;
  auto put = [&blob](std::initializer_list<int> bytes) {
    for (int b : bytes) blob.push_back(static_cast<std::uint8_t>(b & 0xff));
  };
  auto put_u16 = [&blob](int v) {
    blob.push_back(static_cast<std::uint8_t>(v & 0xff));
    blob.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  };

  put({'M', 'T', 'P', 1});  // header: magic + version

  // Section 1: ALU instruction patterns.  The Figure 7 datapath needs wide
  // control words: function selects for the four level-1 units, input mux
  // selects for A..D and the east port, level-2 multiplier/adder/butterfly
  // steering, output and west routing -- 16 bytes per pattern, matching the
  // granularity of the Montium toolchain's ALU decoder tables.
  struct Pattern {
    int alu;
    int kind;  // 1 = mix+integrate, 2..6 = multiplexed-part patterns
  };
  const Pattern patterns[] = {
      {0, 1}, {1, 1}, {2, 2},             // full-rate ALUs
      {3, 3}, {3, 4}, {3, 5}, {3, 6}, {3, 7},  // comb / int a / int b / comb5 / MAC
      {4, 3}, {4, 4}, {4, 5}, {4, 6}, {4, 7},
  };
  put({'A', static_cast<int>(std::size(patterns))});
  for (const auto& p : patterns) {
    blob.push_back(static_cast<std::uint8_t>(p.alu));
    for (int f = 0; f < 16; ++f)
      blob.push_back(static_cast<std::uint8_t>((p.kind * 17 + f * 5) & 0xff));
  }

  // Section 2: register-file configurations: each ALU has four input
  // register files of four slots; per file a write-select/read-select pair
  // of words (8 bytes per file).
  put({'R', Tile::kNumAlus * 4});
  for (int a = 0; a < Tile::kNumAlus; ++a)
    for (int f = 0; f < 4; ++f)
      for (int b = 0; b < 8; ++b)
        blob.push_back(static_cast<std::uint8_t>((a * 4 + f + b) & 0x3f));

  // Section 3: AGU configurations: all ten memories carry two access
  // patterns each (sequential table walk / modulo ring) -- base, span,
  // stride, mode (8 bytes per pattern).
  put({'G', Tile::kNumAlus * kMemoriesPerAluForConfig * 2});
  for (int m = 0; m < Tile::kNumAlus * kMemoriesPerAluForConfig; ++m) {
    for (int pat = 0; pat < 2; ++pat) {
      put_u16(0);
      put_u16(m < 2 ? 512 : (pat == 0 ? 32 : config_.fir_taps));
      put_u16(1);
      put_u16(pat);
    }
  }

  // Section 4: crossbar routes: ten global busses, two bytes of
  // source/destination select per bus, one route set per distinct cycle
  // type of the schedule.
  const int kCycleTypes = 10;  // idle/full-rate/comb/int-a/int-b/comb5 x2/MAC/out
  put({'X', kCycleTypes});
  for (int type = 0; type < kCycleTypes; ++type)
    for (int bus = 0; bus < 10; ++bus) {
      blob.push_back(static_cast<std::uint8_t>((type * 3 + bus) & 0x1f));
      blob.push_back(static_cast<std::uint8_t>((type + bus * 7) & 0x1f));
    }

  // Section 5: sequencer program: states of the nested 16/21/8 loop
  // structure with per-state decoder selections and loop counts (6 bytes
  // per instruction).
  const int kSequencerInstructions = 56;
  put({'S', kSequencerInstructions});
  for (int s = 0; s < kSequencerInstructions; ++s) {
    blob.push_back(static_cast<std::uint8_t>(s));
    blob.push_back(static_cast<std::uint8_t>((s * 7) & 0xff));
    put_u16(s < 20 ? config_.cic2_decimation : config_.cic5_decimation);
    put_u16((s * 11) & 0x3ff);
  }

  // Section 6: scalar parameters (tuning word, shifts, decimations).
  put({'P', 8});
  put_u16(static_cast<int>(tuning_word_ & 0xffff));
  put_u16(static_cast<int>(tuning_word_ >> 16));
  put_u16(config_.cic2_decimation);
  put_u16(config_.cic5_decimation);
  put_u16(config_.fir_decimation);
  put_u16(config_.fir_taps);
  put_u16(kMixShift);
  put_u16(kWord - 1);
  return blob;
}

}  // namespace twiddc::montium
