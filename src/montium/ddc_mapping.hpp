// twiddc::montium -- the paper's DDC mapping onto one Montium tile
// (section 6.2, Figures 8 and 9, Table 6).
//
// Allocation, exactly as the paper describes:
//   * ALU1/ALU2 (indices 0/1): NCO application + CIC2 integration for the I
//     and Q rails -- one multiplication and two additions per clock cycle in
//     the Figure 8 configuration;
//   * ALU3 (index 2): LUT address generation (so the mixing frequency can be
//     changed during execution);
//   * ALU4/ALU5 (indices 3/4): time-multiplexed CIC2 comb (1 cycle per 16),
//     CIC5 integration (4 cycles per 16), CIC5 comb (3 cycles per 336) and
//     the polyphase FIR (~16 MACs per 336, with intermediate sums in the
//     local memories).
//
// Sine/cosine live in local memories as 512-entry full-wave tables; the
// coefficients and polyphase partial sums live in the memories of ALU4/5.
//
// Arithmetic note (documented substitution, see DESIGN.md): the real tile is
// 16-bit; the CIC5's 22 bits of growth cannot fit, so the mapping runs the
// tile in a 48-bit wide mode.  Outputs are bit-exact against
// core::FixedDdc with DatapathSpec wide16 + 7-bit NCO table (the spec()
// below); the ablation bench quantifies what narrower datapaths cost.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/datapath_spec.hpp"
#include "src/core/ddc_config.hpp"
#include "src/core/fixed_ddc.hpp"
#include "src/montium/tile.hpp"

namespace twiddc::montium {

/// Part labels (the rows of Table 6).
namespace parts {
inline constexpr const char* kFullRate = "NCO + CIC2 integrating";
inline constexpr const char* kCic2Comb = "CIC2 cascading";
inline constexpr const char* kCic5Int = "CIC5 integrating";
inline constexpr const char* kCic5Comb = "CIC5 cascading";
inline constexpr const char* kFir = "FIR125";
}  // namespace parts

class DdcMapping {
 public:
  /// Datapath width used by the wide-mode tile.
  static constexpr int kWideWordBits = 48;

  explicit DdcMapping(const core::DdcConfig& config);

  /// Builds the mapping from an arbitrary ChainPlan via lower_plan().
  explicit DdcMapping(const core::ChainPlan& plan);

  /// Plan -> tile-configuration lowering: accepts exactly the Figure-1
  /// family realised with the wide16/7-bit-table datapath (spec()), within
  /// the schedule's structural limits (CIC2+CIC5 chain, enough free cycles
  /// on the time-multiplexed ALU pair, <= 16 live FIR partial sums, <= 125
  /// coefficients per local memory).  Throws core::LoweringError naming the
  /// first unmappable feature.
  static core::DdcConfig lower_plan(const core::ChainPlan& plan);

  /// One 64.512 MHz clock cycle with a new input sample.
  std::optional<core::IqSample> step(std::int64_t x);

  /// Feeds a block of samples.
  std::vector<core::IqSample> process(const std::vector<std::int64_t>& in);

  [[nodiscard]] Tile& tile() { return tile_; }
  [[nodiscard]] const core::DdcConfig& config() const { return config_; }

  /// The functional twin's datapath: wide16 arithmetic with the 512-entry
  /// (7-bit quarter-wave) sine tables that fit the local memories.
  [[nodiscard]] static core::DatapathSpec spec();

  /// Serialises the mapping's configuration (ALU instruction patterns,
  /// AGU/crossbar/register configs, sequencer program) in a compact binary
  /// format; the paper's toolchain produced 1110 bytes for this mapping.
  [[nodiscard]] std::vector<std::uint8_t> serialize_config() const;

  /// Power at the mapping's clock: 0.6 mW/MHz (section 6.2.2).
  [[nodiscard]] double power_mw() const {
    return Tile::power_mw(config_.input_rate_hz);
  }

 private:
  void issue_full_rate_work();
  void run_cic2_comb();
  void run_cic5_integrate(int phase);
  void run_cic5_comb();
  void run_fir_mac(int mac_slot);
  std::optional<std::int64_t> finish_fir_output(int rail);

  core::DdcConfig config_;
  Tile tile_;
  std::uint32_t phase_ = 0;
  std::uint32_t tuning_word_ = 0;
  std::vector<std::int64_t> fir_taps_;

  // Per-rail pipeline hand-off values (crossbar transfers between the
  // full-rate ALUs and the time-multiplexed pair).
  std::int64_t cic5_in_[2] = {0, 0};   // CIC2 comb output (16-bit)
  std::int64_t cic5_out_[2] = {0, 0};  // CIC5 comb output (16-bit)
  bool cic5_output_pending_ = false;
  std::int64_t fir_sample_[2] = {0, 0};
  long long fir_sample_index_ = -1;    // index of the pending 192 kHz sample
  int fir_macs_this_sample_ = 0;

  // Schedule counters.
  int cnt16_ = 0;    // position within the CIC2 decimation window
  int cnt21_ = 0;    // CIC5 decimation counter
  int cic5_int_phase_ = -1;  // >=0: integration cycles still to run
  int cic5_comb_phase_ = -1;
  int fir_phase_ = -1;

  // CIC2 integrator state lives in ALU0/ALU1 registers; the rest in the
  // memories of ALU3/ALU4 (see .cpp for the memory map).
};

}  // namespace twiddc::montium
