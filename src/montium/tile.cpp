#include "src/montium/tile.hpp"

#include <string>

#include "src/common/error.hpp"

namespace twiddc::montium {

Alu::Alu(int index, int word_bits)
    : index_(index), word_bits_(word_bits), regs_(4, 0) {
  if (word_bits < 8 || word_bits > 63)
    throw ConfigError("Alu: word_bits must be in [8,63]");
}

void Alu::begin_cycle() {
  current_part_.clear();
  used_mults_ = 0;
  used_addsubs_ = 0;
  used_logicals_ = 0;
  ++total_cycles_;
}

void Alu::issue(const std::string& part, int mults, int addsubs, int logicals) {
  if (!current_part_.empty() && current_part_ != part)
    throw SimulationError("Alu " + std::to_string(index_) +
                          ": two algorithm parts in one cycle ('" + current_part_ +
                          "' and '" + part + "')");
  used_mults_ += mults;
  used_addsubs_ += addsubs;
  used_logicals_ += logicals;
  if (used_mults_ > limits_.multiplies || used_addsubs_ > limits_.addsubs ||
      used_logicals_ > limits_.logicals)
    throw SimulationError("Alu " + std::to_string(index_) + ": cycle over-subscribed by '" +
                          part + "' (" + std::to_string(used_mults_) + " mult, " +
                          std::to_string(used_addsubs_) + " addsub, " +
                          std::to_string(used_logicals_) + " logic)");
  if (current_part_.empty()) {
    current_part_ = part;
    ++busy_cycles_[part];
  }
}

std::int64_t Alu::reg(int slot) const {
  if (slot < 0 || slot >= static_cast<int>(regs_.size()))
    throw SimulationError("Alu: register slot out of range");
  return regs_[static_cast<std::size_t>(slot)];
}

void Alu::set_reg(int slot, std::int64_t v) {
  if (slot < 0 || slot >= static_cast<int>(regs_.size()))
    throw SimulationError("Alu: register slot out of range");
  regs_[static_cast<std::size_t>(slot)] = wrap(v);
}

Memory::Memory(std::string name, int word_bits)
    : name_(std::move(name)), word_bits_(word_bits), words_(kWords, 0) {}

std::int64_t Memory::read(int address) const {
  if (address < 0 || address >= kWords)
    throw SimulationError("Memory " + name_ + ": read address " +
                          std::to_string(address) + " out of range");
  ++reads_;
  return words_[static_cast<std::size_t>(address)];
}

void Memory::write(int address, std::int64_t value) {
  if (address < 0 || address >= kWords)
    throw SimulationError("Memory " + name_ + ": write address " +
                          std::to_string(address) + " out of range");
  ++writes_;
  words_[static_cast<std::size_t>(address)] = fixed::wrap(value, word_bits_);
}

Tile::Tile(int word_bits) {
  for (int a = 0; a < kNumAlus; ++a) {
    alus_.emplace_back(a, word_bits);
    for (int m = 0; m < kMemoriesPerAlu; ++m)
      memories_.emplace_back(
          "MEM " + std::to_string(a + 1) + "." + std::to_string(m + 1), word_bits);
  }
}

Memory& Tile::memory(int alu_idx, int which) {
  if (alu_idx < 0 || alu_idx >= kNumAlus || which < 0 || which >= kMemoriesPerAlu)
    throw SimulationError("Tile: memory index out of range");
  return memories_[static_cast<std::size_t>(alu_idx * kMemoriesPerAlu + which)];
}

void Tile::begin_cycle() {
  for (auto& alu : alus_) alu.begin_cycle();
}

void Tile::end_cycle() {
  if (gantt_.size() < trace_depth_) {
    GanttRow row;
    row.cycle = cycle_;
    for (const auto& alu : alus_) row.alu_part.push_back(alu.current_part());
    gantt_.push_back(std::move(row));
  }
  ++cycle_;
}

std::vector<UtilizationRow> Tile::utilization() const {
  // Collect per-part: which ALUs participated, and their busy share.
  std::map<std::string, std::pair<int, double>> agg;  // part -> {alus, sum share}
  for (const auto& alu : alus_) {
    for (const auto& [part, cycles] : alu.busy_cycles()) {
      auto& entry = agg[part];
      ++entry.first;
      entry.second += alu.total_cycles() == 0
                          ? 0.0
                          : static_cast<double>(cycles) /
                                static_cast<double>(alu.total_cycles());
    }
  }
  std::vector<UtilizationRow> rows;
  for (const auto& [part, entry] : agg) {
    UtilizationRow r;
    r.part = part;
    r.alus = entry.first;
    r.busy_percent = 100.0 * entry.second / entry.first;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace twiddc::montium
