// twiddc::montium -- the Montium Tile Processor model (paper section 6,
// Figures 6 and 7).
//
// A tile is five ALUs, each with two local memories and a small register
// file, fed by a crossbar and steered by a sequencer.  An ALU executes, per
// clock cycle, at most one multiplication plus a small number of
// add/subtract/logic operations (level 1 function units + the level 2
// multiplier/adder/butterfly of Figure 7).
//
// The model is *operation-accurate*: the DDC mapping issues micro-operations
// against Alu::issue(), which enforces the per-cycle resource envelope and
// books the cycle to a named algorithm part.  That bookkeeping is exactly
// what Table 6 and Figure 9 report.  Datapath width is a parameter: real
// silicon is 16-bit; the DDC mapping runs the CIC5 in a wide mode (48-bit)
// because the filter's bit growth cannot fit 16 bits -- see DESIGN.md and
// the ablation bench for what truncation would cost.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/fixed/qformat.hpp"

namespace twiddc::montium {

/// Per-cycle resource envelope of one ALU (Figure 7): four level-1 function
/// units, one level-2 multiplier, one level-2 adder (the butterfly counts as
/// using both).
struct AluLimits {
  int multiplies = 1;
  int addsubs = 2;   ///< one level-1 chain result + the level-2 adder
  int logicals = 4;  ///< level-1 function units
};

/// One ALU with its 4-slot register file.
class Alu {
 public:
  Alu(int index, int word_bits);

  /// Marks the start of a new clock cycle.
  void begin_cycle();

  /// Books `mults`/`addsubs`/`logicals` operations for algorithm part
  /// `part` in the current cycle.  Throws SimulationError if the Figure 7
  /// envelope is exceeded -- an invalid schedule is a bug, not data.
  void issue(const std::string& part, int mults, int addsubs, int logicals = 0);

  // -- datapath helpers (wrap at word_bits, like hardware registers) -------
  [[nodiscard]] std::int64_t wrap(std::int64_t v) const {
    return fixed::wrap(v, word_bits_);
  }
  [[nodiscard]] std::int64_t reg(int slot) const;
  void set_reg(int slot, std::int64_t v);

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] int word_bits() const { return word_bits_; }
  /// Part label this ALU worked on in the current cycle ("" if idle).
  [[nodiscard]] const std::string& current_part() const { return current_part_; }
  /// Cycles booked per part since construction.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& busy_cycles() const {
    return busy_cycles_;
  }
  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }

 private:
  int index_;
  int word_bits_;
  AluLimits limits_;
  std::vector<std::int64_t> regs_;
  std::string current_part_;
  int used_mults_ = 0;
  int used_addsubs_ = 0;
  int used_logicals_ = 0;
  std::map<std::string, std::uint64_t> busy_cycles_;
  std::uint64_t total_cycles_ = 0;
};

/// One 512-word local memory (each ALU owns two, Figure 6).
class Memory {
 public:
  static constexpr int kWords = 512;

  Memory(std::string name, int word_bits);

  [[nodiscard]] std::int64_t read(int address) const;
  void write(int address, std::int64_t value);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 private:
  std::string name_;
  int word_bits_;
  std::vector<std::int64_t> words_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// A row of the Figure 9 Gantt chart: what each ALU did in one cycle.
struct GanttRow {
  std::uint64_t cycle = 0;
  std::vector<std::string> alu_part;  // one entry per ALU, "" = idle
};

/// One row of Table 6.
struct UtilizationRow {
  std::string part;
  int alus = 0;              ///< distinct ALUs that ever worked on this part
  double busy_percent = 0.0; ///< average share of those ALUs' cycles
};

/// The tile: 5 ALUs + 10 memories + cycle/trace bookkeeping.
class Tile {
 public:
  static constexpr int kNumAlus = 5;
  static constexpr int kMemoriesPerAlu = 2;
  /// Measured power density of the Montium in 0.13 um (section 6.2.2).
  static constexpr double kMilliwattPerMhz = 0.6;
  static constexpr double kCoreAreaMm2 = 2.2;

  explicit Tile(int word_bits = 16);

  [[nodiscard]] Alu& alu(int idx) { return alus_.at(static_cast<std::size_t>(idx)); }
  [[nodiscard]] Memory& memory(int alu_idx, int which);

  /// Opens a new clock cycle (clears every ALU's issue slots).
  void begin_cycle();
  /// Closes the cycle: records the Gantt row and advances the counter.
  void end_cycle();

  /// Keeps the first `n` cycles for the Figure 9 trace (default 40).
  void set_trace_depth(std::size_t n) { trace_depth_ = n; }
  [[nodiscard]] const std::vector<GanttRow>& gantt() const { return gantt_; }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  /// Table 6 aggregation over all ALUs.
  [[nodiscard]] std::vector<UtilizationRow> utilization() const;

  /// Power at the tile's clock (0.6 mW/MHz, section 6.2.2).
  [[nodiscard]] static double power_mw(double clock_hz) {
    return kMilliwattPerMhz * clock_hz / 1e6;
  }

 private:
  std::vector<Alu> alus_;
  std::vector<Memory> memories_;
  std::uint64_t cycle_ = 0;
  std::size_t trace_depth_ = 40;
  std::vector<GanttRow> gantt_;
};

}  // namespace twiddc::montium
