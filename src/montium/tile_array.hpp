// twiddc::montium -- multi-tile scaling (paper section 6.1: "Because a
// Montium TP can operate independently and communicate with other tiles,
// additional performance can be gained by adding more Montium tiles to a
// chip").
//
// The natural DDC use is channelisation: one tile per received band, all
// fed the same AD-converter stream -- the Montium-side answer to the
// GC4016's four channels.  Power is additive per tile (each runs the full
// 0.6 mW/MHz mapping); the comparison bench quantifies where the quad ASIC
// wins and where per-channel reconfigurability does.
#pragma once

#include <optional>
#include <vector>

#include "src/common/error.hpp"
#include "src/montium/ddc_mapping.hpp"

namespace twiddc::montium {

class MultiChannelDdc {
 public:
  /// One tile per configuration.  All configs must share the input rate
  /// (they sample the same ADC).
  explicit MultiChannelDdc(const std::vector<core::DdcConfig>& channels) {
    if (channels.empty())
      throw ConfigError("MultiChannelDdc: at least one channel required");
    for (const auto& cfg : channels) {
      if (cfg.input_rate_hz != channels.front().input_rate_hz)
        throw ConfigError("MultiChannelDdc: all tiles share one AD-converter rate");
      tiles_.emplace_back(cfg);
    }
  }

  /// Feeds one input sample to every tile; returns per-channel outputs
  /// (empty optional when a channel produced nothing this cycle).
  std::vector<std::optional<core::IqSample>> step(std::int64_t x) {
    std::vector<std::optional<core::IqSample>> out;
    out.reserve(tiles_.size());
    for (auto& tile : tiles_) out.push_back(tile.step(x));
    return out;
  }

  [[nodiscard]] int tiles() const { return static_cast<int>(tiles_.size()); }
  [[nodiscard]] DdcMapping& tile(int idx) { return tiles_.at(static_cast<std::size_t>(idx)); }

  /// Total power: tiles are independent, each at 0.6 mW/MHz.
  [[nodiscard]] double power_mw() const {
    double total = 0.0;
    for (const auto& tile : tiles_) total += tile.power_mw();
    return total;
  }

 private:
  std::vector<DdcMapping> tiles_;
};

}  // namespace twiddc::montium
