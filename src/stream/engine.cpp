#include "src/stream/engine.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/common/topology.hpp"
#include "src/common/trace.hpp"
#include "src/core/plan_compiler.hpp"

namespace twiddc::stream {

namespace {

constexpr trace::Category kStreamCat = trace::Category::kStream;

/// Interned event-name ids for this file's trace sites, resolved once on
/// first use (any site, any thread -- the static init is serialized).
struct TraceNames {
  std::uint16_t engine_start = trace::intern("engine_start");
  std::uint16_t engine_stop = trace::intern("engine_stop");
  std::uint16_t pump_block = trace::intern("pump_block");
  std::uint16_t pump_stall = trace::intern("pump_stall");
  std::uint16_t feed_end = trace::intern("feed_end");
  std::uint16_t service = trace::intern("service");
  std::uint16_t gap = trace::intern("gap");
  std::uint16_t shed = trace::intern("shed");
  std::uint16_t elastic_grow = trace::intern("elastic_grow");
  std::uint16_t elastic_shrink = trace::intern("elastic_shrink");
  std::uint16_t eject = trace::intern("eject");
  std::uint16_t adopt = trace::intern("adopt");
};
const TraceNames& tn() {
  static const TraceNames names;
  return names;
}

}  // namespace

StreamEngine::StreamEngine(std::unique_ptr<Source> source, EngineOptions options)
    : options_(options),
      source_(std::move(source)),
      link_(std::make_shared<EngineLink>()),
      output_epoch_(std::make_shared<std::atomic<std::uint32_t>>(0)) {
  if (!source_) throw ConfigError("StreamEngine: needs a source");
  // workers <= 0 means auto: TWIDDC_WORKERS env, else hardware concurrency.
  if (options_.workers <= 0) options_.workers = common::default_worker_count();
  options_.min_workers = std::clamp(options_.min_workers, 1, options_.workers);
  options_.max_workers = options_.max_workers <= 0
                             ? options_.workers
                             : std::max(options_.max_workers, options_.workers);
  options_.elastic_grow_depth = std::max(0.0, options_.elastic_grow_depth);
  options_.elastic_shrink_depth = std::clamp(options_.elastic_shrink_depth, 0.0,
                                             options_.elastic_grow_depth);
  options_.elastic_hysteresis_ticks = std::max(1, options_.elastic_hysteresis_ticks);
  options_.block_samples = std::max<std::size_t>(1, options_.block_samples);
  options_.session_queue_blocks = std::max<std::size_t>(2, options_.session_queue_blocks);
  options_.session_output_chunks =
      std::max<std::size_t>(2, options_.session_output_chunks);
  options_.session_quantum_blocks =
      std::max<std::size_t>(1, options_.session_quantum_blocks);
  options_.default_restart.max_restarts =
      std::max(0, options_.default_restart.max_restarts);
  options_.shed_queue_fraction = std::clamp(options_.shed_queue_fraction, 0.05, 1.0);
  link_->engine = this;
}

StreamEngine::~StreamEngine() {
  stop();
  // Session handles may outlive the engine: cut the scheduling link so
  // their poll()/close() nudges become no-ops instead of dangling.
  std::lock_guard<std::mutex> lock(link_->mu);
  link_->engine = nullptr;
}

std::shared_ptr<Session> StreamEngine::open(const core::ChainPlan& plan,
                                            const std::string& backend_name,
                                            BackpressurePolicy policy) {
  auto backend = core::BackendRegistry::instance().create(backend_name);
  backend->configure(plan);  // LoweringError propagates; nothing opened
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::shared_ptr<Session> session(
      new Session(next_session_id_++, std::move(backend), policy,
                  options_.session_queue_blocks, options_.session_output_chunks,
                  link_, output_epoch_));
  // Initial pinning: round-robin by id.  The pin is advisory -- a steal
  // re-homes the session -- so any spread works; id keeps it deterministic.
  session->home_.store(
      static_cast<int>(session->id() % static_cast<std::uint64_t>(options_.workers)),
      std::memory_order_release);
  // The session's stream starts at the current feed position: a migration
  // ticket taken before any block arrives backfills nothing earlier.
  session->feed_next_seq_.store(blocks_pumped_.load(std::memory_order_acquire),
                                std::memory_order_release);
  place_session(*session);
  session->set_attached(workers_live_);
  session->set_restart_policy(options_.default_restart);
  sessions_.push_back(session);
  sessions_gen_.fetch_add(1, std::memory_order_release);
  return session;
}

void StreamEngine::place_session(Session& session) const {
  if (!options_.pin_to_nodes && options_.preferred_node < 0) return;
  namespace topo = common::topology;
  const topo::Topology& t = topo::probe();
  if (t.node_count() <= 1) return;
  const int idx =
      options_.preferred_node >= 0 &&
              static_cast<std::size_t>(options_.preferred_node) < t.node_count()
          ? options_.preferred_node
          : topo::worker_node(session.home_.load(std::memory_order_acquire), t);
  const int kernel_node = t.nodes[static_cast<std::size_t>(idx)].id;
  // Best effort: rings fall back to first-touch placement when mbind is
  // unavailable (the calls just return false).
  session.in_ring_.bind_to_node(kernel_node);
  session.out_ring_.bind_to_node(kernel_node);
}

void StreamEngine::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire))
    throw SimulationError("StreamEngine: start() while already running");
  common::TaskScheduler::Options sched_opts;
  sched_opts.initial = options_.workers;
  sched_opts.min_workers = options_.min_workers;
  // Without elastic mode the slot count equals the active count, so
  // resize() headroom (and its parked threads) costs nothing.
  sched_opts.max_workers = options_.elastic ? options_.max_workers : options_.workers;
  sched_opts.pin_to_nodes = options_.pin_to_nodes;
  sched_opts.preferred_node = options_.preferred_node;
  sched_ = std::make_unique<common::TaskScheduler>(sched_opts);
  stop_.store(false, std::memory_order_release);
  // run_start_time_ is non-atomic: publish it BEFORE the running_ release
  // store so a stats_json() that acquire-reads running_ == true sees it.
  run_start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    workers_live_ = true;
  }
  const auto sessions = snapshot();
  for (auto& s : sessions) {
    // A stop() may have dropped queued tasks mid-protocol; re-arm the actor
    // state machine.  Duplicate tasks are harmless (run_session claims by
    // CAS), so a racing client nudge cannot double-run a session.
    s->sched_state_.store(Session::kIdle, std::memory_order_release);
    s->set_attached(true);
  }
  {
    std::lock_guard<std::mutex> lock(link_->mu);
    link_->scheduler_live = true;
  }
  // Kick every open session once so input queued across a stop, a stashed
  // chunk or a parked retune is serviced without waiting for fresh feed.
  for (auto& s : sessions) schedule_session(*s);
  trace::instant(kStreamCat, tn().engine_start, sessions.size(),
                 static_cast<std::uint64_t>(options_.workers));
  pump_thread_ = std::thread([this] {
    trace::set_thread_name("pump");
    pump_loop();
  });
  if (options_.watchdog_interval_us > 0)
    watchdog_thread_ = std::thread([this] {
      trace::set_thread_name("watchdog");
      watchdog_loop();
    });
}

void StreamEngine::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  notify_output();
  for (auto& s : snapshot()) s->in_ring_.wake();  // a kBlock pump push may park here
  {
    // The empty critical section orders our notify after a watchdog that was
    // between its stop_ check and its wait; either way it sees stop_ set.
    std::lock_guard<std::mutex> lock(watchdog_mu_);
  }
  watchdog_cv_.notify_all();
  // Join the watchdog BEFORE the scheduler dies: its restart kicks call
  // schedule_session, which needs the scheduler alive.
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  if (pump_thread_.joinable()) pump_thread_.join();
  {
    // Client nudges must stop reaching the scheduler before it dies.
    std::lock_guard<std::mutex> lock(link_->mu);
    link_->scheduler_live = false;
  }
  // Join the workers first, THEN snapshot the counters: queued session
  // tasks still RUN during the shutdown drain (each a claim + no-op, since
  // stop_ is already set; their re-queues are dropped and the next start()
  // re-arms), and that drain must be visible in the stats trajectory.
  sched_->shutdown();
  sched_stats_ = sched_->stats();
  sched_.reset();
  streamed_elapsed_s_.store(
      streamed_elapsed_s_.load(std::memory_order_relaxed) +
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start_time_)
              .count(),
      std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    workers_live_ = false;
  }
  // Any session open()ed after the flag flip is born detached; any opened
  // before it is in this snapshot (open holds sessions_mu_), so nobody is
  // left attached with no workers alive.
  for (auto& s : snapshot()) s->set_attached(false);
  {
    // Sessions closed after the pump's last snapshot never hit its pruning;
    // drop them here so a stopped engine holds only open sessions.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    std::erase_if(sessions_, [](const auto& s) { return s->closed(); });
  }
  trace::instant(kStreamCat, tn().engine_stop,
                 blocks_pumped_.load(std::memory_order_relaxed), 0);
  notify_output();
}

bool StreamEngine::finished(const Session& session) const {
  // While stopped (or after stop() cut a feed short) queued input cannot
  // progress, so only the output ring matters -- otherwise a drain helper
  // would wait forever for processing that cannot happen until the next
  // start().
  if (stop_.load(std::memory_order_acquire))
    return session.out_ring_.size() == 0;
  // Order matters: the input side is read before the output ring.  Once the
  // feed is done and the session is seen idle (input ring empty, not mid-
  // block, no stashed undelivered chunk), no further chunk can ever be
  // produced, so an empty output ring read *afterwards* really is final.
  // busy_ is set before the worker pops and cleared after the chunk is
  // delivered or stashed; has_pending_chunk_ covers the stashed window.
  // A quarantined session is input-terminal too: its backlog was discarded
  // and the pump skips it, so waiting on its input side would hang a drain.
  // (Queued output stays pollable, exactly like a closed session's.)
  const bool input_done =
      session.closed() || session.health() == SessionHealth::kQuarantined ||
      (feed_exhausted() && session.in_ring_.size() == 0 &&
       !session.busy_.load(std::memory_order_acquire) &&
       !session.has_pending_chunk_.load(std::memory_order_acquire));
  return input_done && session.out_ring_.size() == 0;
}

std::size_t StreamEngine::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

int StreamEngine::set_workers(int n) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  n = std::max(1, n);
  if (sched_) {
    n = sched_->resize(n);  // clamped to the live scheduler's bounds
    repin_homes(n);
  }
  options_.workers = n;
  return n;
}

int StreamEngine::effective_workers() const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  return sched_ ? sched_->workers() : options_.workers;
}

void StreamEngine::repin_homes(int active) {
  if (active <= 0) return;
  for (const auto& s : snapshot()) {
    const int home = s->home_.load(std::memory_order_acquire);
    if (home >= active)
      s->home_.store(home % active, std::memory_order_release);
  }
}

std::vector<std::shared_ptr<Session>> StreamEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_;
}

// -------------------------------------------------------------- migration

StreamEngine::MigrationTicket StreamEngine::eject(
    const std::shared_ptr<Session>& session) {
  if (!session) throw ConfigError("StreamEngine: eject() needs a session");
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = std::find(sessions_.begin(), sessions_.end(), session);
    if (it == sessions_.end())
      throw SimulationError(
          "StreamEngine: eject() of a session this engine does not own");
    sessions_.erase(it);
    sessions_gen_.fetch_add(1, std::memory_order_release);
  }
  // Order is the Dekker mirror of run_session's claim gate: migrating_ is
  // published (seq_cst) BEFORE in_service_ is read, so any service pass that
  // missed the flag is counted and waited for, and any pass that starts
  // later sees the flag and bails without touching the backend.
  session->migrating_.store(true, std::memory_order_seq_cst);
  // A kBlock pump push may be parked in this very ring; wake it so it
  // observes migrating_ and releases the block to the new owner's debt.
  session->in_ring_.wake();
  {
    // Barrier: any fan-out already in flight completes (or aborts) before
    // the ticket position is read, so feed_next_seq_ is final.  The pump's
    // next pass refreshes its cached list and drops the session.
    std::lock_guard<std::mutex> gate(pump_gate_mu_);
  }
  while (session->in_service_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  MigrationTicket ticket;
  ticket.session = session;
  ticket.next_feed_seq = session->feed_next_seq_.load(std::memory_order_acquire);
  trace::instant(trace::Category::kGroup, tn().eject, session->id(),
                 ticket.next_feed_seq);
  return ticket;
}

void StreamEngine::adopt(const MigrationTicket& ticket,
                         std::unique_ptr<Source> backfill) {
  const std::shared_ptr<Session>& s = ticket.session;
  if (!s) throw ConfigError("StreamEngine: adopt() needs a ticket session");
  if (!s->migrating_.load(std::memory_order_acquire))
    throw SimulationError("StreamEngine: adopt() of a session never ejected");
  // The gate freezes this engine's pump position for the whole splice: no
  // block fans out between the blocks_pumped_ read below and the moment the
  // session is registered, so the handoff is gap-free by construction.
  std::lock_guard<std::mutex> gate(pump_gate_mu_);
  s->rebind(link_, output_epoch_);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s->home_.store(
        static_cast<int>(s->id() % static_cast<std::uint64_t>(options_.workers)),
        std::memory_order_release);
    s->sched_state_.store(Session::kIdle, std::memory_order_release);
    s->set_attached(workers_live_);
    sessions_.push_back(s);
    sessions_gen_.fetch_add(1, std::memory_order_release);
  }
  place_session(*s);
  // Un-flag BEFORE the backfill pushes: service passes (nudged below) must
  // be able to drain the ring while we refill it, or a span longer than the
  // ring capacity could never complete.  The pump cannot interfere -- it is
  // parked on the gate we hold.
  s->migrating_.store(false, std::memory_order_seq_cst);
  const std::uint64_t here = blocks_pumped_.load(std::memory_order_acquire);
  if (here > ticket.next_feed_seq) {
    // This feed is ahead of where the session left its old engine: replay
    // the missed span from a fresh source.  Identical deterministic sources
    // across engines are the migration contract -- seq N carries the same
    // samples everywhere -- so the replay is bit-exact, not approximate.
    if (!backfill)
      throw ConfigError(
          "StreamEngine: adopt() needs a backfill source (destination feed "
          "is ahead of the ticket)");
    std::vector<std::int64_t> buffer(options_.block_samples);
    for (std::uint64_t seq = 0; seq < here; ++seq) {
      if (s->closed()) break;
      const std::size_t n = backfill->read(buffer);
      if (n == 0)
        throw SimulationError(
            "StreamEngine: backfill source ended before the migration span");
      if (seq < ticket.next_feed_seq) continue;  // old engine delivered these
      FeedBlock block;
      block.seq = seq;
      block.samples = std::make_shared<const std::vector<std::int64_t>>(
          buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(n));
      // A private enqueue: the public path's stop_/carry_ handling belongs
      // to the pump, and a stopped engine has no worker to drain a full
      // kBlock ring -- that case is a hard error, not a hang.
      for (;;) {
        const auto token = s->in_ring_.wake_token();
        if (s->in_ring_.closed()) break;
        if (s->in_ring_.try_push(FeedBlock(block))) break;
        if (s->policy_ == BackpressurePolicy::kDropOldest) {
          if (auto old = s->in_ring_.try_pop()) {
            s->stats_.input_drop_blocks.fetch_add(1, std::memory_order_relaxed);
            s->stats_.input_drop_samples.fetch_add(old->samples->size(),
                                                   std::memory_order_relaxed);
            s->pending_dropped_samples_.fetch_add(old->samples->size(),
                                                  std::memory_order_relaxed);
          }
          continue;
        }
        if (!running_.load(std::memory_order_acquire))
          throw SimulationError(
              "StreamEngine: adopt() backfill overflows the input ring on a "
              "stopped engine");
        if (!s->paused()) s->request_service();  // a worker must drain
        s->in_ring_.wait(token);
      }
      if (s->in_ring_.closed() || s->closed()) break;
      s->stats_.blocks_enqueued.fetch_add(1, std::memory_order_relaxed);
      s->stats_.samples_enqueued.fetch_add(block.samples->size(),
                                           std::memory_order_relaxed);
      s->feed_next_seq_.store(block.seq + 1, std::memory_order_release);
      s->note_queue_depth(s->in_ring_.size());
    }
  } else if (here < ticket.next_feed_seq) {
    // This feed is behind: the session already processed [here, ticket) on
    // its old engine.  The pump skips those seqs instead of re-delivering.
    s->min_feed_seq_.store(ticket.next_feed_seq, std::memory_order_release);
  }
  migrations_in_.fetch_add(1, std::memory_order_relaxed);
  trace::instant(trace::Category::kGroup, tn().adopt, s->id(),
                 ticket.next_feed_seq);
  if (!s->paused()) s->request_service();
}

// ------------------------------------------------------------------- pump

void StreamEngine::pump_loop() {
  std::vector<std::int64_t> buffer(options_.block_samples);
  // The fan-out list is cached: it is refreshed (and closed sessions are
  // pruned) only when sessions_gen_ says open()/close() changed the set,
  // so the steady-state pump touches no mutex and copies no session list.
  std::vector<std::shared_ptr<Session>> live;
  std::uint64_t seen_gen = 0;  // sessions_gen_ starts at 1: first block snapshots
  bool exhausted = false;
  while (!stop_.load(std::memory_order_acquire)) {
    FeedBlock block;
    const bool resuming = carry_.has_value();
    if (resuming) {
      // A previous run was stopped mid-fan-out; finish that block first so
      // a restarted stream loses nothing.
      block = carry_->block;
    } else {
      std::size_t n = 0;
      try {
        n = source_->read(buffer);
      } catch (const std::exception& e) {
        // Contain a source failure as an engine-level fault: the feed ends
        // as if exhausted (sessions drain their queues and finish cleanly)
        // and the diagnostic is kept, instead of std::terminate taking the
        // whole process down from a detached pump thread.
        {
          std::lock_guard<std::mutex> lock(source_fault_mu_);
          source_fault_ = FaultInfo{
              FaultCause::kSource, blocks_pumped_.load(std::memory_order_relaxed),
              std::string("source read: ") + e.what()};
        }
        source_faults_.fetch_add(1, std::memory_order_relaxed);
        exhausted = true;
        break;
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(source_fault_mu_);
          source_fault_ = FaultInfo{
              FaultCause::kSource, blocks_pumped_.load(std::memory_order_relaxed),
              "source read: foreign exception"};
        }
        source_faults_.fetch_add(1, std::memory_order_relaxed);
        exhausted = true;
        break;
      }
      if (n == 0) {
        // End of stream, by contract a clean exit: EOF is never a fault.
        exhausted = true;
        break;
      }
      block.seq = blocks_pumped_.load(std::memory_order_relaxed);
      block.samples = std::make_shared<const std::vector<std::int64_t>>(
          buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(n));
    }
    bool aborted = false;
    const std::uint64_t fanout_start_ns = trace::Span::now_ns();
    {
      // The migration gate: adopt() splices a session in against a frozen
      // pump position, so the whole fan-out + the pumped-count increment
      // are one atomic step from its point of view.  Uncontended except
      // during a migration.
      trace::Span fanout_span(kStreamCat, tn().pump_block, block.seq);
      std::lock_guard<std::mutex> gate(pump_gate_mu_);
      const std::uint64_t gen = sessions_gen_.load(std::memory_order_acquire);
      if (gen != seen_gen) {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        std::erase_if(sessions_, [](const auto& s) { return s->closed(); });
        live = sessions_;
        seen_gen = gen;
      }
      for (std::size_t k = 0; k < live.size(); ++k) {
        Session& s = *live[k];
        if (s.closed()) continue;  // may close mid-fan-out
        // An ejected session left this engine's feed (its new engine owes it
        // everything from its ticket position on).
        if (s.migrating_.load(std::memory_order_acquire)) continue;
        // Quarantined/faulted sessions are out of the feed (their backlog was
        // discarded); a kBackoff session keeps receiving -- its ring buffers
        // the stream across the restart window.
        const auto health = s.health();
        if (health == SessionHealth::kQuarantined ||
            health == SessionHealth::kFaulted)
          continue;
        // Destination-behind migration: the session already processed this
        // span on its previous engine; skip until the feed catches up.
        if (block.seq < s.min_feed_seq_.load(std::memory_order_acquire))
          continue;
        if (resuming &&
            std::find(carry_->served.begin(), carry_->served.end(), s.id()) !=
                carry_->served.end())
          continue;  // this session already got the block last run
        if (!enqueue(s, block)) {
          // stop() cut a kBlock wait short: record the fan-out position --
          // everything before index k (that was eligible) got the block --
          // so the next run resumes exactly.  Only this rare abort path
          // pays for the bookkeeping; the steady-state pump allocates
          // nothing per block.
          std::vector<std::uint64_t> served =
              resuming ? std::move(carry_->served) : std::vector<std::uint64_t>{};
          for (std::size_t j = 0; j < k; ++j) served.push_back(live[j]->id());
          carry_.emplace(PendingFanout{block, std::move(served)});
          aborted = true;
          break;
        }
      }
      if (!aborted) {
        carry_.reset();
        // Counted when the fan-out completes (an aborted block is not pumped
        // yet -- its resumed completion on the next run counts it).
        blocks_pumped_.fetch_add(1, std::memory_order_release);
      }
    }
    pump_block_ns_.record(trace::Span::now_ns() - fanout_start_ns);
    if (aborted) break;
  }
  if (exhausted) {
    feed_done_.store(true, std::memory_order_release);
    trace::instant(kStreamCat, tn().feed_end,
                   blocks_pumped_.load(std::memory_order_relaxed),
                   source_faults_.load(std::memory_order_relaxed));
  }
  notify_output();
}

bool StreamEngine::enqueue(Session& s, const FeedBlock& block) {
  FeedBlock copy = block;  // cheap: a seq and a shared_ptr
  if (s.policy_ == BackpressurePolicy::kBlock) {
    // Conservative flow control: a full ring stalls the pump -- and with it
    // the whole feed -- until the session's worker catches up.  The stall is
    // published (session id + park time) so the watchdog's overload pass can
    // see WHO is holding the feed hostage and shed its backlog.
    bool stall_published = false;
    const auto unpublish = [&] {
      if (stall_published) pump_stalled_on_.store(0, std::memory_order_release);
    };
    for (;;) {
      const auto token = s.in_ring_.wake_token();
      if (s.in_ring_.closed()) {
        unpublish();
        return true;  // session closed: nothing owed
      }
      if (s.health() == SessionHealth::kQuarantined) {
        unpublish();
        return true;  // quarantined mid-wait: it left the feed
      }
      if (s.migrating_.load(std::memory_order_acquire)) {
        unpublish();
        return true;  // ejected mid-wait: its new engine owes this block
      }
      if (stop_.load(std::memory_order_acquire)) {
        unpublish();
        return false;  // run ended mid-push: the pump carries this block over
      }
      if (s.in_ring_.try_push(std::move(copy))) break;
      if (!stall_published) {
        pump_stall_since_ns_.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count(),
            std::memory_order_release);
        pump_stalled_on_.store(s.id() + 1, std::memory_order_release);
        stall_published = true;
        trace::instant(kStreamCat, tn().pump_stall, s.id(), block.seq);
      }
      s.in_ring_.wait(token);
    }
    unpublish();
  } else {
    // Shed load instead of stalling: evict the oldest queued block.  The
    // loss surfaces in-stream as gap metadata on the session's next chunk.
    for (;;) {
      if (s.in_ring_.closed()) return true;
      if (s.health() == SessionHealth::kQuarantined) return true;
      if (s.migrating_.load(std::memory_order_acquire)) return true;
      if (s.in_ring_.try_push(std::move(copy))) break;
      if (auto old = s.in_ring_.try_pop()) {
        s.stats_.input_drop_blocks.fetch_add(1, std::memory_order_relaxed);
        s.stats_.input_drop_samples.fetch_add(old->samples->size(),
                                              std::memory_order_relaxed);
        s.pending_dropped_samples_.fetch_add(old->samples->size(),
                                             std::memory_order_relaxed);
      }
    }
  }
  // close() may have raced our push after its own drain pass; re-drain so
  // no FeedBlock is stranded in the closed ring holding the shared buffer.
  if (s.closed()) {
    while (s.in_ring_.try_pop()) {
    }
    return true;
  }
  s.stats_.blocks_enqueued.fetch_add(1, std::memory_order_relaxed);
  s.stats_.samples_enqueued.fetch_add(block.samples->size(),
                                      std::memory_order_relaxed);
  // Migration bookkeeping: the pump has now delivered everything up to and
  // including this seq (kDropOldest may evict some later, but those losses
  // are marked in-stream, not owed by a future engine).
  s.feed_next_seq_.store(block.seq + 1, std::memory_order_release);
  s.note_queue_depth(s.in_ring_.size());
  // The targeted wakeup: schedule THIS session on its home worker.  The
  // old WorkerPool design bumped a global epoch and notify_all()ed every
  // worker per block; now only the one worker that owns this session gets
  // touched, and only when the session is not already queued or marked.
  // Paused sessions are left alone (set_paused(false) re-schedules).
  if (!s.paused()) schedule_session(s);
  return true;
}

// -------------------------------------------------------------- scheduling

void StreamEngine::schedule_session(Session& s) {
  for (;;) {
    int st = s.sched_state_.load(std::memory_order_acquire);
    if (st == Session::kIdle) {
      if (s.sched_state_.compare_exchange_weak(st, Session::kScheduled,
                                               std::memory_order_acq_rel))
        return submit_session_task(*sched_, s.shared_from_this(),
                                   /*yield_lane=*/false);
    } else if (st == Session::kRunning) {
      if (s.sched_state_.compare_exchange_weak(st, Session::kRunningDirty,
                                               std::memory_order_acq_rel))
        return;  // the running pass's epilogue re-queues
    } else {
      return;  // already queued or already marked dirty
    }
  }
}

void StreamEngine::submit_session_task(common::TaskScheduler& sched,
                                       const std::shared_ptr<Session>& session,
                                       bool yield_lane) {
  auto task = [this, &sched, session] { run_session(sched, session); };
  if (yield_lane)
    sched.yield(std::move(task));  // behind this worker's other runnables
  else
    sched.submit_to(session->home_.load(std::memory_order_acquire),
                    std::move(task));
}

void StreamEngine::run_session(common::TaskScheduler& sched,
                               const std::shared_ptr<Session>& sp) {
  Session& s = *sp;
  int expected = Session::kScheduled;
  // Claim the actor.  A failed claim means a duplicate task (possible only
  // across a stop()/start() reset) -- drop it; the claimer does the work.
  if (!s.sched_state_.compare_exchange_strong(expected, Session::kRunning,
                                              std::memory_order_acq_rel))
    return;
  // Migration handshake: in_service_ is raised BEFORE the migrating_ check
  // (both seq_cst), the Dekker mirror of eject()'s migrating_-then-wait
  // order -- either this pass sees migrating_ and bails without touching
  // the backend, or eject() waits for it to finish.
  s.in_service_.fetch_add(1, std::memory_order_seq_cst);
  struct ServiceGuard {
    std::atomic<int>& counter;
    ~ServiceGuard() { counter.fetch_sub(1, std::memory_order_seq_cst); }
  } service_guard{s.in_service_};
  if (s.migrating_.load(std::memory_order_seq_cst)) {
    s.sched_state_.store(Session::kIdle, std::memory_order_release);
    return;
  }
  if (!s.owned_by(link_)) {
    // A task queued before the session migrated away: release the claim and
    // nudge the owning engine, which lost this scheduling request to us.
    s.sched_state_.store(Session::kIdle, std::memory_order_release);
    s.request_service();
    return;
  }
  const int w = sched.current_worker_index();
  if (w >= 0) s.home_.store(w, std::memory_order_release);  // migrate on steal
  s.stats_.service_passes.fetch_add(1, std::memory_order_relaxed);
  bool requeue = false;
  if (!stop_.load(std::memory_order_acquire) && !s.closed()) {
    const std::size_t quantum =
        options_.session_quantum_blocks *
        static_cast<std::size_t>(s.weight_.load(std::memory_order_acquire));
    const std::uint64_t pass_start_ns = trace::Span::now_ns();
    trace::Span service_span(kStreamCat, tn().service, s.id());
    try {
      requeue = service(s, quantum);
      service_span.finish();
      service_pass_ns_.record(trace::Span::now_ns() - pass_start_ns);
    } catch (const std::exception& e) {
      // service() converts backend exceptions at their call sites; anything
      // that still escapes must not skip the epilogue below -- the scheduler
      // would swallow it and leave sched_state_ stuck at kRunning, a
      // permanently unserviceable session stalling a kBlock feed.  Convert
      // it to a typed fault instead of dropping it.
      s.busy_.store(false, std::memory_order_release);
      s.fault(FaultCause::kInternal, std::string("service: ") + e.what());
    } catch (...) {
      s.busy_.store(false, std::memory_order_release);
      s.fault(FaultCause::kInternal, "service: foreign exception");
    }
  }
  // Wake output waiters AFTER the final busy_/has_pending_chunk_ stores --
  // unconditionally: even a no-work pass raises busy_ for its empty-pop
  // probe, and a drain that read that transient "busy" (not finished) must
  // get one more wakeup, or it sleeps through the finish transition.
  notify_output();
  if (requeue) {
    // Quantum exhausted with input still queued: yield behind the other
    // runnable sessions on this worker -- the WRR fairness edge.
    s.sched_state_.store(Session::kScheduled, std::memory_order_release);
    return submit_session_task(sched, sp, /*yield_lane=*/true);
  }
  int st = Session::kRunning;
  if (s.sched_state_.compare_exchange_strong(st, Session::kIdle,
                                             std::memory_order_acq_rel))
    return;  // parked: a poll()/enqueue/retune nudge re-arms it
  // kRunningDirty: a request raced the pass; service again promptly.
  s.sched_state_.store(Session::kScheduled, std::memory_order_release);
  submit_session_task(sched, sp, /*yield_lane=*/true);
}

bool StreamEngine::try_restart(Session& s) {
  if (!s.restart_due(std::chrono::steady_clock::now())) return false;
  try {
    // Copy before configure: the backend replaces its stored plan mid-call,
    // so configure(backend->plan()) would read a dying object.
    const core::ChainPlan plan = s.backend_->plan();
    // Re-lowering goes through configure, hence (for the compiled backends)
    // through the process-wide CompiledPlanCache -- a restart of one of N
    // identical sessions re-links the shared artifact, it does not recompile.
    s.backend_->configure(plan);
  } catch (const std::exception& e) {
    s.fault(FaultCause::kBackendConfigure,
            std::string("restart configure: ") + e.what());
    return false;
  } catch (...) {
    s.fault(FaultCause::kBackendConfigure, "restart configure: foreign exception");
    return false;
  }
  s.complete_restart();
  return true;
}

bool StreamEngine::service(Session& s, std::size_t budget) {
  s.apply_pending_retune();
  // A chunk stashed on an earlier pass (kBlock ring was full) must deliver
  // before any new block is processed -- stream order, and a pre-fault
  // chunk stays deliverable whatever the health state.  If the ring is
  // still full the session stays parked; a poll() re-schedules it.
  if (s.pending_chunk_.has_value() && !deliver_chunk(s)) return false;
  switch (s.health()) {
    case SessionHealth::kHealthy:
      break;
    case SessionHealth::kBackoff:
      // The timed retry: re-lower the plan and resume at the next block
      // boundary, or stay parked until the watchdog re-kicks us.
      if (!try_restart(s)) return false;
      break;
    case SessionHealth::kQuarantined:
    case SessionHealth::kFaulted:
      return false;  // parked; restart()/close() are the only exits
  }
  std::size_t processed = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire) || s.closed() || s.paused() ||
        s.migrating_.load(std::memory_order_acquire) ||
        s.health() != SessionHealth::kHealthy)
      return false;
    if (processed >= budget) return s.in_ring_.size() > 0;
    // The watchdog's stall detector keys on this: heartbeat_ advancing
    // means the loop is alive; heartbeat_ frozen while busy_ stays up means
    // the backend call below never returned.
    s.heartbeat_.fetch_add(1, std::memory_order_release);
    s.busy_.store(true, std::memory_order_release);
    auto block = s.in_ring_.try_pop();
    if (!block) {
      s.busy_.store(false, std::memory_order_release);
      return false;
    }
    StreamChunk chunk;
    chunk.block_seq = block->seq;
    // Input-gap detection is by feed sequence, which is exact: every
    // eviction removes an enqueued block, so a drop shows up as precisely
    // one missing seq.  (Reading the drop counter alone would race the
    // pump and could stamp the marker one chunk early or late.)  The
    // counter supplies the dropped-sample tally; the pre-first-block case
    // covers drops while the session never got to process anything yet.
    const bool seq_gap = s.have_seq_ && block->seq != s.expected_seq_;
    const bool lead_gap =
        !s.have_seq_ &&
        s.pending_dropped_samples_.load(std::memory_order_relaxed) > 0;
    if (seq_gap || lead_gap) {
      chunk.gap_before = GapCause::kDropOldest;
      chunk.dropped_feed_samples =
          s.pending_dropped_samples_.exchange(0, std::memory_order_relaxed);
    }
    s.expected_seq_ = block->seq + 1;
    s.have_seq_ = true;
    if (s.pending_flush_gap_) {
      // A flush retune restarted the backend transient; that wins as the
      // cause (any coincident drop count is still reported).
      chunk.gap_before = GapCause::kRetuneFlush;
      s.pending_flush_gap_ = false;
    }
    if (s.pending_output_drop_samples_ > 0 || s.pending_evicted_feed_samples_ > 0 ||
        s.pending_output_marker_lost_) {
      // Output-ring evictions since the last produced chunk: forward the
      // loss (and any destroyed flush marker) instead of dropping it
      // silently.  See the StreamChunk doc for the position caveat.
      if (s.pending_output_marker_lost_)
        chunk.gap_before = GapCause::kRetuneFlush;
      else if (chunk.gap_before == GapCause::kNone)
        chunk.gap_before = GapCause::kDropOldest;
      chunk.dropped_output_samples = s.pending_output_drop_samples_;
      chunk.dropped_feed_samples += s.pending_evicted_feed_samples_;
      s.pending_output_drop_samples_ = 0;
      s.pending_evicted_feed_samples_ = 0;
      s.pending_output_marker_lost_ = false;
    }
    // Shed losses: the watchdog discarded queued feed (which also shows up
    // as a seq gap above); kShed overrides the generic kDropOldest cause
    // but yields to retune/fault markers, and the sample tally is additive.
    const std::uint64_t shed =
        s.pending_shed_samples_.exchange(0, std::memory_order_relaxed);
    if (shed > 0) {
      if (chunk.gap_before == GapCause::kNone ||
          chunk.gap_before == GapCause::kDropOldest)
        chunk.gap_before = GapCause::kShed;
      chunk.dropped_feed_samples += shed;
    }
    // Strongest cause last: the first chunk after a fault restart marks the
    // resume point (the faulted block's samples are part of the loss).
    if (s.pending_fault_gap_) {
      chunk.gap_before = GapCause::kFault;
      s.pending_fault_gap_ = false;
      chunk.dropped_feed_samples += s.pending_fault_lost_samples_;
      s.pending_fault_lost_samples_ = 0;
    }
    if (chunk.gap_before != GapCause::kNone) {
      s.stats_.gaps.fetch_add(1, std::memory_order_relaxed);
      trace::instant(kStreamCat, tn().gap, s.id(),
                     static_cast<std::uint64_t>(chunk.gap_before));
    }
    try {
      s.backend_->process_block(*block->samples, chunk.iq);
    } catch (const std::exception& e) {
      // The faulting block is consumed, not retried: a deterministic
      // failure (this very block, this plan) would otherwise re-fire on
      // every restart forever.  Its samples -- and any loss tallies the
      // discarded chunk was already carrying -- ride the next chunk's
      // kFault gap.
      s.pending_fault_lost_samples_ +=
          block->samples->size() + chunk.dropped_feed_samples;
      s.busy_.store(false, std::memory_order_release);
      s.fault(FaultCause::kBackendProcess,
              std::string("process_block: ") + e.what());
      return false;
    } catch (...) {
      s.pending_fault_lost_samples_ +=
          block->samples->size() + chunk.dropped_feed_samples;
      s.busy_.store(false, std::memory_order_release);
      s.fault(FaultCause::kBackendProcess, "process_block: foreign exception");
      return false;
    }
    s.stats_.blocks_processed.fetch_add(1, std::memory_order_relaxed);
    s.stats_.samples_processed.fetch_add(block->samples->size(),
                                         std::memory_order_relaxed);
    s.stats_.samples_out.fetch_add(chunk.iq.size(), std::memory_order_relaxed);
    s.pending_chunk_.emplace(std::move(chunk));
    s.has_pending_chunk_.store(true, std::memory_order_release);
    const bool delivered = deliver_chunk(s);
    s.busy_.store(false, std::memory_order_release);
    ++processed;
    s.apply_pending_retune();  // between blocks, mid-stream
    if (!delivered) return false;  // session parked until the client polls
  }
}

bool StreamEngine::deliver_chunk(Session& s) {
  if (s.closed()) {
    // Terminal: the undelivered chunk is discarded (close() docs).  Still
    // an output event -- a drain blocked on has_pending_chunk_ must
    // re-check after the discard.
    s.pending_chunk_.reset();
    s.has_pending_chunk_.store(false, std::memory_order_release);
    notify_output();
    return true;
  }
  if (stop_.load(std::memory_order_acquire)) {
    // The run is ending but the engine may be restarted: keep the chunk
    // stashed so the next run's kick delivers it -- a stop loses nothing.
    notify_output();
    return false;
  }
  if (s.policy_ == BackpressurePolicy::kBlock) {
    if (!s.out_ring_.try_push(std::move(*s.pending_chunk_))) return false;
  } else {
    for (;;) {
      if (s.out_ring_.try_push(std::move(*s.pending_chunk_))) break;
      if (auto old = s.out_ring_.try_pop()) {
        s.stats_.output_drop_chunks.fetch_add(1, std::memory_order_relaxed);
        s.stats_.output_drop_samples.fetch_add(old->iq.size(),
                                               std::memory_order_relaxed);
        // Keep the evicted chunk's story alive: its payload size, its feed
        // drops, and any flush marker ride forward to the next chunk.
        s.pending_output_drop_samples_ += old->iq.size() + old->dropped_output_samples;
        s.pending_evicted_feed_samples_ += old->dropped_feed_samples;
        if (old->gap_before == GapCause::kRetuneFlush)
          s.pending_output_marker_lost_ = true;
      }
    }
  }
  s.pending_chunk_.reset();
  s.has_pending_chunk_.store(false, std::memory_order_release);
  notify_output();
  return true;
}

void StreamEngine::notify_output() {
  output_epoch_->fetch_add(1, std::memory_order_release);
  output_epoch_->notify_all();
}

// --------------------------------------------------------------- watchdog

std::uint64_t StreamEngine::shed_backlog(Session& s) {
  std::uint64_t blocks = 0;
  std::uint64_t samples = 0;
  while (auto old = s.in_ring_.try_pop()) {
    ++blocks;
    samples += old->samples->size();
  }
  if (blocks == 0) return 0;
  shed_events_.fetch_add(1, std::memory_order_relaxed);
  shed_blocks_.fetch_add(blocks, std::memory_order_relaxed);
  shed_samples_.fetch_add(samples, std::memory_order_relaxed);
  s.note_shed(samples);
  trace::instant(kStreamCat, tn().shed, s.id(), blocks);
  // The pump may be parked on this very ring (kBlock): the drain made room,
  // wake it.  Output waiters learn about the state change too.
  s.in_ring_.wake();
  notify_output();
  return blocks;
}

bool StreamEngine::shed_one(const std::vector<std::shared_ptr<Session>>& sessions) {
  // The shedding contract: lowest weight first (weight is the only priority
  // knob a session has), ties broken toward the newest id -- deterministic,
  // and long-lived sessions win over late joiners.
  std::shared_ptr<Session> victim;
  for (const auto& s : sessions) {
    if (s->closed()) continue;
    const auto h = s->health();
    if (h == SessionHealth::kQuarantined || h == SessionHealth::kFaulted) continue;
    if (s->in_ring_.size() == 0) continue;
    if (!victim || s->weight() < victim->weight() ||
        (s->weight() == victim->weight() && s->id() > victim->id()))
      victim = s;
  }
  return victim && shed_backlog(*victim) > 0;
}

void StreamEngine::watchdog_loop() {
  const auto interval = std::chrono::microseconds(
      std::max<std::size_t>(100, options_.watchdog_interval_us));
  const auto stall_timeout = std::chrono::milliseconds(options_.stall_timeout_ms);
  const auto pump_stall_limit =
      std::chrono::milliseconds(options_.shed_pump_stall_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, interval, [this] {
        return stop_.load(std::memory_order_acquire);
      });
    }
    if (stop_.load(std::memory_order_acquire)) return;
    watchdog_ticks_.fetch_add(1, std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    const auto sessions = snapshot();

    // 1. Timed kBackoff restarts: kick the session's worker; the service
    //    pass does the actual re-configure (only workers touch backends).
    for (const auto& s : sessions)
      if (!s->closed() && s->restart_due(now)) schedule_session(*s);

    // 2. Stall quarantine: heartbeat frozen while busy_ stays up means a
    //    backend call never returned.  Quarantine unhooks the session from
    //    the feed and the drains; the hostage worker thread itself is only
    //    reclaimed when (if) the call returns -- see DESIGN.md.
    if (options_.stall_timeout_ms > 0) {
      for (const auto& s : sessions) {
        if (s->closed() || s->health() != SessionHealth::kHealthy) continue;
        const std::uint64_t hb = s->heartbeat_.load(std::memory_order_acquire);
        if (!s->busy_.load(std::memory_order_acquire) || hb != s->wd_heartbeat_) {
          s->wd_heartbeat_ = hb;
          s->wd_busy_since_ = now;
          continue;
        }
        if (now - s->wd_busy_since_ >= stall_timeout) {
          stall_quarantines_.fetch_add(1, std::memory_order_relaxed);
          s->quarantine(FaultCause::kStall,
                        "watchdog: no progress for " +
                            std::to_string(options_.stall_timeout_ms) +
                            " ms inside a backend call");
        }
      }
    }

    // 3. Overload shedding -- only while the feed is live (a post-exhaustion
    //    backlog is drainage, not overload).
    if (options_.shed_enabled && !feed_exhausted()) {
      // Trigger A: the pump has been parked in one session's kBlock push
      // too long.  That session is stalling the whole feed; shed ITS
      // backlog (whatever its weight) to unblock everyone else.
      const std::uint64_t parked_on = pump_stalled_on_.load(std::memory_order_acquire);
      if (parked_on != 0) {
        const auto since = std::chrono::steady_clock::time_point(
            std::chrono::nanoseconds(
                pump_stall_since_ns_.load(std::memory_order_acquire)));
        if (now - since >= pump_stall_limit) {
          for (const auto& s : sessions) {
            if (s->id() + 1 == parked_on) {
              shed_backlog(*s);
              break;
            }
          }
        }
      }
      // Trigger B: aggregate input occupancy over the threshold -- shed
      // lowest-weight backlogs until back under (or nobody is sheddable).
      for (;;) {
        std::size_t queued = 0;
        std::size_t capacity = 0;
        for (const auto& s : sessions) {
          if (s->closed()) continue;
          const auto h = s->health();
          if (h == SessionHealth::kQuarantined || h == SessionHealth::kFaulted)
            continue;
          queued += s->in_ring_.size();
          capacity += options_.session_queue_blocks;
        }
        if (capacity == 0 ||
            static_cast<double>(queued) <=
                options_.shed_queue_fraction * static_cast<double>(capacity))
          break;
        if (!shed_one(sessions)) break;
      }
    }

    // 4. Elastic worker policy: one step per hysteresis window, driven by
    //    aggregate queue depth (and the pump-stall signal, which means the
    //    current worker set cannot keep up regardless of averages).
    if (options_.elastic) elastic_tick(sessions);
  }
}

void StreamEngine::elastic_tick(
    const std::vector<std::shared_ptr<Session>>& sessions) {
  // Watchdog-thread only: the streak counters are plain ints.  sched_ is
  // safe to touch here -- stop() joins this thread before tearing it down.
  std::size_t queued = 0;
  for (const auto& s : sessions) {
    if (s->closed()) continue;
    const auto h = s->health();
    if (h == SessionHealth::kQuarantined || h == SessionHealth::kFaulted)
      continue;
    queued += s->in_ring_.size();
  }
  const int active = sched_->workers();
  const double per_worker =
      static_cast<double>(queued) / static_cast<double>(std::max(1, active));
  const bool pump_stalled =
      pump_stalled_on_.load(std::memory_order_acquire) != 0;
  const bool want_grow =
      active < sched_->max_workers() &&
      (per_worker >= options_.elastic_grow_depth || pump_stalled);
  const bool want_shrink = active > sched_->min_workers() &&
                           per_worker <= options_.elastic_shrink_depth &&
                           !pump_stalled;
  if (want_grow) {
    elastic_shrink_streak_ = 0;
    if (++elastic_grow_streak_ >= options_.elastic_hysteresis_ticks) {
      elastic_grow_streak_ = 0;
      const int n = sched_->resize(active + 1);
      if (n != active) {
        grow_events_.fetch_add(1, std::memory_order_relaxed);
        trace::instant(kStreamCat, tn().elastic_grow,
                       static_cast<std::uint64_t>(active),
                       static_cast<std::uint64_t>(n));
      }
    }
  } else if (want_shrink) {
    elastic_grow_streak_ = 0;
    if (++elastic_shrink_streak_ >= options_.elastic_hysteresis_ticks) {
      elastic_shrink_streak_ = 0;
      const int n = sched_->resize(active - 1);
      if (n != active) {
        shrink_events_.fetch_add(1, std::memory_order_relaxed);
        trace::instant(kStreamCat, tn().elastic_shrink,
                       static_cast<std::uint64_t>(active),
                       static_cast<std::uint64_t>(n));
        // Sessions homed on the parked worker re-pin onto the active set
        // (their queued tasks were already forwarded by the worker itself).
        repin_homes(n);
      }
    }
  } else {
    elastic_grow_streak_ = 0;
    elastic_shrink_streak_ = 0;
  }
}

FaultInfo StreamEngine::source_fault() const {
  std::lock_guard<std::mutex> lock(source_fault_mu_);
  return source_fault_;
}

// ------------------------------------------------------------------- stats

std::string StreamEngine::stats_json() const {
  double elapsed = streamed_elapsed_s_.load(std::memory_order_relaxed);
  common::TaskScheduler::Stats sched_stats;
  int workers_active = 0;
  int workers_max = 0;
  std::vector<common::TaskScheduler::WorkerSnapshot> wsnap;
  {
    // run_start_time_ is rewritten by every start() now that the engine is
    // restartable, so it is only readable under the lifecycle mutex (the
    // "published once before running_" justification died with one-shot).
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
    if (running_.load(std::memory_order_acquire))
      elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               run_start_time_)
                     .count();
    sched_stats = sched_ ? sched_->stats() : sched_stats_;
    workers_active = sched_ ? sched_->workers() : options_.workers;
    workers_max = sched_ ? sched_->max_workers() : options_.max_workers;
    if (sched_) wsnap = sched_->worker_snapshot();
  }
  JsonLine engine_line;
  engine_line.field("sessions", session_count())
      .field("workers", static_cast<std::size_t>(workers_active))
      .field("workers_max", static_cast<std::size_t>(workers_max))
      .field("numa_nodes", common::topology::probe().node_count())
      .field("block_samples", options_.block_samples)
      .field("quantum_blocks", options_.session_quantum_blocks)
      .field("blocks_pumped", static_cast<std::size_t>(blocks_pumped()))
      .field("feed_exhausted", feed_exhausted())
      .field("running", running_.load(std::memory_order_acquire))
      .field("elapsed_s", elapsed)
      .field("tasks_executed", static_cast<std::size_t>(sched_stats.executed))
      .field("tasks_stolen", static_cast<std::size_t>(sched_stats.stolen))
      .field("steal_failures", static_cast<std::size_t>(sched_stats.steal_failures))
      .field("sched_resizes", static_cast<std::size_t>(sched_stats.resizes))
      .field("grow_events",
             static_cast<std::size_t>(grow_events_.load(std::memory_order_relaxed)))
      .field("shrink_events",
             static_cast<std::size_t>(shrink_events_.load(std::memory_order_relaxed)))
      .field("migrations_in",
             static_cast<std::size_t>(migrations_in_.load(std::memory_order_relaxed)))
      .field("targeted_wakeups", static_cast<std::size_t>(sched_stats.wakeups));
  // Fault-containment counters.  faults/restarts aggregate the LIVE
  // sessions (a closed, pruned session takes its share with it); the
  // watchdog/shed/source counters are engine-owned and cumulative.
  {
    std::uint64_t faults = 0;
    std::uint64_t restarts = 0;
    std::size_t quarantined = 0;
    for (const auto& s : snapshot()) {
      const SessionStats st = s->stats();
      faults += st.faults;
      restarts += st.restarts;
      if (s->health() == SessionHealth::kQuarantined) ++quarantined;
    }
    const FaultInfo src = source_fault();
    engine_line.field("faults", static_cast<std::size_t>(faults))
        .field("restarts", static_cast<std::size_t>(restarts))
        .field("quarantined", quarantined)
        .field("stall_quarantines",
               static_cast<std::size_t>(
                   stall_quarantines_.load(std::memory_order_relaxed)))
        .field("shed_events",
               static_cast<std::size_t>(shed_events_.load(std::memory_order_relaxed)))
        .field("shed_blocks",
               static_cast<std::size_t>(shed_blocks_.load(std::memory_order_relaxed)))
        .field("shed_samples",
               static_cast<std::size_t>(shed_samples_.load(std::memory_order_relaxed)))
        .field("watchdog_ticks",
               static_cast<std::size_t>(
                   watchdog_ticks_.load(std::memory_order_relaxed)))
        .field("source_faults",
               static_cast<std::size_t>(
                   source_faults_.load(std::memory_order_relaxed)))
        .field("source_fault_cause", to_string(src.cause));
  }
  // The compiled-plan cache is process-wide (sessions resolve their plans
  // through it in configure/retune), so its stats describe every engine in
  // the process, not just this one.
  const core::CompiledPlanCache::Stats cache = core::CompiledPlanCache::instance().stats();
  JsonLine cache_line;
  cache_line.field("lookups", static_cast<std::size_t>(cache.lookups))
      .field("hits", static_cast<std::size_t>(cache.hits))
      .field("misses", static_cast<std::size_t>(cache.misses))
      .field("evictions", static_cast<std::size_t>(cache.evictions))
      .field("hit_rate", cache.lookups > 0 ? static_cast<double>(cache.hits) /
                                                 static_cast<double>(cache.lookups)
                                           : 0.0)
      .field("compile_seconds", cache.compile_seconds)
      .field("entries", cache.entries)
      .field("capacity", cache.capacity);
  // Per-worker detail rides as its own array (one object per scheduler
  // slot, active or parked): queue depth feeds the elastic policy, node
  // shows the NUMA placement that pinning chose.
  std::vector<JsonLine> workers_detail;
  workers_detail.reserve(wsnap.size());
  for (std::size_t i = 0; i < wsnap.size(); ++i) {
    JsonLine w;
    w.field("worker", i)
        .field("queue_depth", wsnap[i].queue_depth)
        .field("active", wsnap[i].active)
        .field("sleeping", wsnap[i].sleeping)
        .field("node", static_cast<double>(wsnap[i].node));
    workers_detail.push_back(std::move(w));
  }
  // Latency distributions: nanosecond samples, reported in milliseconds.
  // Quantiles are log-bucket upper bounds (see metrics.hpp), not exact.
  JsonLine latency_line;
  latency_line.object("service_pass_ms", service_pass_ns_.to_json(1e-6))
      .object("pump_block_ms", pump_block_ns_.to_json(1e-6));
  std::vector<JsonLine> session_lines;
  for (const auto& s : snapshot()) {
    const SessionStats st = s->stats();
    const FaultInfo fault = s->last_fault();
    JsonLine line;
    line.field("id", static_cast<std::size_t>(s->id()))
        .field("backend", s->backend_name())
        .field("plan", s->plan_name())
        .field("policy", to_string(s->policy()))
        .field("closed", s->closed())
        .field("paused", s->paused())
        .field("worker", static_cast<double>(s->home_worker()))
        .field("weight", static_cast<double>(s->weight()))
        .field("blocks_enqueued", static_cast<std::size_t>(st.blocks_enqueued))
        .field("samples_enqueued", static_cast<std::size_t>(st.samples_enqueued))
        .field("blocks_processed", static_cast<std::size_t>(st.blocks_processed))
        .field("samples_processed", static_cast<std::size_t>(st.samples_processed))
        .field("samples_out", static_cast<std::size_t>(st.samples_out))
        .field("chunks_polled", static_cast<std::size_t>(st.chunks_polled))
        .field("input_drop_blocks", static_cast<std::size_t>(st.input_drop_blocks))
        .field("input_drop_samples", static_cast<std::size_t>(st.input_drop_samples))
        .field("output_drop_chunks", static_cast<std::size_t>(st.output_drop_chunks))
        .field("output_drop_samples",
               static_cast<std::size_t>(st.output_drop_samples))
        .field("max_queue_depth", static_cast<std::size_t>(st.max_queue_depth))
        .field("retunes_applied", static_cast<std::size_t>(st.retunes_applied))
        .field("retunes_rejected", static_cast<std::size_t>(st.retunes_rejected))
        .field("gaps", static_cast<std::size_t>(st.gaps))
        .field("last_retune_block", static_cast<std::size_t>(st.last_retune_block))
        .field("service_passes", static_cast<std::size_t>(st.service_passes))
        .field("health", to_string(s->health()))
        .field("faults", static_cast<std::size_t>(st.faults))
        .field("restarts", static_cast<std::size_t>(st.restarts))
        .field("shed_events", static_cast<std::size_t>(st.shed_events))
        .field("shed_samples", static_cast<std::size_t>(st.shed_samples))
        .field("last_fault_cause", to_string(fault.cause))
        .field("last_fault_block", static_cast<std::size_t>(fault.block_index))
        .field("msamples_per_s",
               elapsed > 0.0
                   ? static_cast<double>(st.samples_processed) / elapsed / 1e6
                   : 0.0);
    session_lines.push_back(std::move(line));
  }
  JsonLine root;
  root.object("engine", engine_line)
      .array("workers_detail", workers_detail)
      .object("plan_cache", cache_line)
      .object("latency", latency_line)
      .array("sessions", session_lines);
  return root.str();
}

// ------------------------------------------------------------ drain helper

void drain_each(StreamEngine& engine,
                const std::vector<std::shared_ptr<Session>>& sessions,
                const std::function<void(std::size_t, StreamChunk&&)>& on_chunk) {
  for (;;) {
    const auto token = engine.output_token();  // before polling: no lost wakeup
    bool any = false;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      for (auto& chunk : sessions[i]->poll()) {
        on_chunk(i, std::move(chunk));
        any = true;
      }
    }
    if (any) continue;
    bool done = true;
    for (const auto& s : sessions) done = done && engine.finished(*s);
    if (done) return;
    engine.wait_output(token);  // block until a delivery/close/stop event
  }
}

std::vector<std::vector<StreamChunk>> drain_all(
    StreamEngine& engine, const std::vector<std::shared_ptr<Session>>& sessions) {
  std::vector<std::vector<StreamChunk>> out(sessions.size());
  drain_each(engine, sessions, [&out](std::size_t i, StreamChunk&& chunk) {
    out[i].push_back(std::move(chunk));
  });
  return out;
}

std::vector<core::IqSample> flatten(const std::vector<StreamChunk>& chunks) {
  std::vector<core::IqSample> iq;
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.iq.size();
  iq.reserve(total);
  for (const auto& c : chunks) iq.insert(iq.end(), c.iq.begin(), c.iq.end());
  return iq;
}

}  // namespace twiddc::stream
