#include "src/stream/engine.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/core/plan_compiler.hpp"

namespace twiddc::stream {

StreamEngine::StreamEngine(std::unique_ptr<Source> source, EngineOptions options)
    : options_(options),
      source_(std::move(source)),
      link_(std::make_shared<EngineLink>()),
      output_epoch_(std::make_shared<std::atomic<std::uint32_t>>(0)) {
  if (!source_) throw ConfigError("StreamEngine: needs a source");
  options_.workers = std::max(1, options_.workers);
  options_.block_samples = std::max<std::size_t>(1, options_.block_samples);
  options_.session_queue_blocks = std::max<std::size_t>(2, options_.session_queue_blocks);
  options_.session_output_chunks =
      std::max<std::size_t>(2, options_.session_output_chunks);
  options_.session_quantum_blocks =
      std::max<std::size_t>(1, options_.session_quantum_blocks);
  link_->engine = this;
}

StreamEngine::~StreamEngine() {
  stop();
  // Session handles may outlive the engine: cut the scheduling link so
  // their poll()/close() nudges become no-ops instead of dangling.
  std::lock_guard<std::mutex> lock(link_->mu);
  link_->engine = nullptr;
}

std::shared_ptr<Session> StreamEngine::open(const core::ChainPlan& plan,
                                            const std::string& backend_name,
                                            BackpressurePolicy policy) {
  auto backend = core::BackendRegistry::instance().create(backend_name);
  backend->configure(plan);  // LoweringError propagates; nothing opened
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::shared_ptr<Session> session(
      new Session(next_session_id_++, std::move(backend), policy,
                  options_.session_queue_blocks, options_.session_output_chunks,
                  link_, output_epoch_));
  // Initial pinning: round-robin by id.  The pin is advisory -- a steal
  // re-homes the session -- so any spread works; id keeps it deterministic.
  session->home_.store(
      static_cast<int>(session->id() % static_cast<std::uint64_t>(options_.workers)),
      std::memory_order_release);
  session->set_attached(workers_live_);
  sessions_.push_back(session);
  sessions_gen_.fetch_add(1, std::memory_order_release);
  return session;
}

void StreamEngine::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire))
    throw SimulationError("StreamEngine: start() while already running");
  sched_ = std::make_unique<common::TaskScheduler>(options_.workers);
  stop_.store(false, std::memory_order_release);
  // run_start_time_ is non-atomic: publish it BEFORE the running_ release
  // store so a stats_json() that acquire-reads running_ == true sees it.
  run_start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    workers_live_ = true;
  }
  const auto sessions = snapshot();
  for (auto& s : sessions) {
    // A stop() may have dropped queued tasks mid-protocol; re-arm the actor
    // state machine.  Duplicate tasks are harmless (run_session claims by
    // CAS), so a racing client nudge cannot double-run a session.
    s->sched_state_.store(Session::kIdle, std::memory_order_release);
    s->set_attached(true);
  }
  {
    std::lock_guard<std::mutex> lock(link_->mu);
    link_->scheduler_live = true;
  }
  // Kick every open session once so input queued across a stop, a stashed
  // chunk or a parked retune is serviced without waiting for fresh feed.
  for (auto& s : sessions) schedule_session(*s);
  pump_thread_ = std::thread([this] { pump_loop(); });
}

void StreamEngine::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  notify_output();
  for (auto& s : snapshot()) s->in_ring_.wake();  // a kBlock pump push may park here
  if (pump_thread_.joinable()) pump_thread_.join();
  {
    // Client nudges must stop reaching the scheduler before it dies.
    std::lock_guard<std::mutex> lock(link_->mu);
    link_->scheduler_live = false;
  }
  // Join the workers first, THEN snapshot the counters: queued session
  // tasks still RUN during the shutdown drain (each a claim + no-op, since
  // stop_ is already set; their re-queues are dropped and the next start()
  // re-arms), and that drain must be visible in the stats trajectory.
  sched_->shutdown();
  sched_stats_ = sched_->stats();
  sched_.reset();
  streamed_elapsed_s_.store(
      streamed_elapsed_s_.load(std::memory_order_relaxed) +
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start_time_)
              .count(),
      std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    workers_live_ = false;
  }
  // Any session open()ed after the flag flip is born detached; any opened
  // before it is in this snapshot (open holds sessions_mu_), so nobody is
  // left attached with no workers alive.
  for (auto& s : snapshot()) s->set_attached(false);
  {
    // Sessions closed after the pump's last snapshot never hit its pruning;
    // drop them here so a stopped engine holds only open sessions.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    std::erase_if(sessions_, [](const auto& s) { return s->closed(); });
  }
  notify_output();
}

bool StreamEngine::finished(const Session& session) const {
  // While stopped (or after stop() cut a feed short) queued input cannot
  // progress, so only the output ring matters -- otherwise a drain helper
  // would wait forever for processing that cannot happen until the next
  // start().
  if (stop_.load(std::memory_order_acquire))
    return session.out_ring_.size() == 0;
  // Order matters: the input side is read before the output ring.  Once the
  // feed is done and the session is seen idle (input ring empty, not mid-
  // block, no stashed undelivered chunk), no further chunk can ever be
  // produced, so an empty output ring read *afterwards* really is final.
  // busy_ is set before the worker pops and cleared after the chunk is
  // delivered or stashed; has_pending_chunk_ covers the stashed window.
  const bool input_done =
      session.closed() ||
      (feed_exhausted() && session.in_ring_.size() == 0 &&
       !session.busy_.load(std::memory_order_acquire) &&
       !session.has_pending_chunk_.load(std::memory_order_acquire));
  return input_done && session.out_ring_.size() == 0;
}

std::size_t StreamEngine::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<Session>> StreamEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_;
}

// ------------------------------------------------------------------- pump

void StreamEngine::pump_loop() {
  std::vector<std::int64_t> buffer(options_.block_samples);
  // The fan-out list is cached: it is refreshed (and closed sessions are
  // pruned) only when sessions_gen_ says open()/close() changed the set,
  // so the steady-state pump touches no mutex and copies no session list.
  std::vector<std::shared_ptr<Session>> live;
  std::uint64_t seen_gen = 0;  // sessions_gen_ starts at 1: first block snapshots
  bool exhausted = false;
  while (!stop_.load(std::memory_order_acquire)) {
    FeedBlock block;
    const bool resuming = carry_.has_value();
    if (resuming) {
      // A previous run was stopped mid-fan-out; finish that block first so
      // a restarted stream loses nothing.
      block = carry_->block;
    } else {
      const std::size_t n = source_->read(buffer);
      if (n == 0) {
        exhausted = true;
        break;
      }
      block.seq = blocks_pumped_.load(std::memory_order_relaxed);
      block.samples = std::make_shared<const std::vector<std::int64_t>>(
          buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(n));
    }
    const std::uint64_t gen = sessions_gen_.load(std::memory_order_acquire);
    if (gen != seen_gen) {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      std::erase_if(sessions_, [](const auto& s) { return s->closed(); });
      live = sessions_;
      seen_gen = gen;
    }
    bool aborted = false;
    for (std::size_t k = 0; k < live.size(); ++k) {
      Session& s = *live[k];
      if (s.closed()) continue;  // may close mid-fan-out
      if (resuming &&
          std::find(carry_->served.begin(), carry_->served.end(), s.id()) !=
              carry_->served.end())
        continue;  // this session already got the block last run
      if (!enqueue(s, block)) {
        // stop() cut a kBlock wait short: record the fan-out position --
        // everything before index k (that was eligible) got the block --
        // so the next run resumes exactly.  Only this rare abort path
        // pays for the bookkeeping; the steady-state pump allocates
        // nothing per block.
        std::vector<std::uint64_t> served =
            resuming ? std::move(carry_->served) : std::vector<std::uint64_t>{};
        for (std::size_t j = 0; j < k; ++j) served.push_back(live[j]->id());
        carry_.emplace(PendingFanout{block, std::move(served)});
        aborted = true;
        break;
      }
    }
    if (aborted) break;
    carry_.reset();
    // Counted when the fan-out completes (an aborted block is not pumped
    // yet -- its resumed completion on the next run counts it).
    blocks_pumped_.fetch_add(1, std::memory_order_release);
  }
  if (exhausted) feed_done_.store(true, std::memory_order_release);
  notify_output();
}

bool StreamEngine::enqueue(Session& s, const FeedBlock& block) {
  FeedBlock copy = block;  // cheap: a seq and a shared_ptr
  if (s.policy_ == BackpressurePolicy::kBlock) {
    // Conservative flow control: a full ring stalls the pump -- and with it
    // the whole feed -- until the session's worker catches up.
    for (;;) {
      const auto token = s.in_ring_.wake_token();
      if (s.in_ring_.closed()) return true;  // session closed: nothing owed
      if (stop_.load(std::memory_order_acquire))
        return false;  // run ended mid-push: the pump carries this block over
      if (s.in_ring_.try_push(std::move(copy))) break;
      s.in_ring_.wait(token);
    }
  } else {
    // Shed load instead of stalling: evict the oldest queued block.  The
    // loss surfaces in-stream as gap metadata on the session's next chunk.
    for (;;) {
      if (s.in_ring_.closed()) return true;
      if (s.in_ring_.try_push(std::move(copy))) break;
      if (auto old = s.in_ring_.try_pop()) {
        s.stats_.input_drop_blocks.fetch_add(1, std::memory_order_relaxed);
        s.stats_.input_drop_samples.fetch_add(old->samples->size(),
                                              std::memory_order_relaxed);
        s.pending_dropped_samples_.fetch_add(old->samples->size(),
                                             std::memory_order_relaxed);
      }
    }
  }
  // close() may have raced our push after its own drain pass; re-drain so
  // no FeedBlock is stranded in the closed ring holding the shared buffer.
  if (s.closed()) {
    while (s.in_ring_.try_pop()) {
    }
    return true;
  }
  s.stats_.blocks_enqueued.fetch_add(1, std::memory_order_relaxed);
  s.stats_.samples_enqueued.fetch_add(block.samples->size(),
                                      std::memory_order_relaxed);
  s.note_queue_depth(s.in_ring_.size());
  // The targeted wakeup: schedule THIS session on its home worker.  The
  // old WorkerPool design bumped a global epoch and notify_all()ed every
  // worker per block; now only the one worker that owns this session gets
  // touched, and only when the session is not already queued or marked.
  // Paused sessions are left alone (set_paused(false) re-schedules).
  if (!s.paused()) schedule_session(s);
  return true;
}

// -------------------------------------------------------------- scheduling

void StreamEngine::schedule_session(Session& s) {
  for (;;) {
    int st = s.sched_state_.load(std::memory_order_acquire);
    if (st == Session::kIdle) {
      if (s.sched_state_.compare_exchange_weak(st, Session::kScheduled,
                                               std::memory_order_acq_rel))
        return submit_session_task(*sched_, s.shared_from_this(),
                                   /*yield_lane=*/false);
    } else if (st == Session::kRunning) {
      if (s.sched_state_.compare_exchange_weak(st, Session::kRunningDirty,
                                               std::memory_order_acq_rel))
        return;  // the running pass's epilogue re-queues
    } else {
      return;  // already queued or already marked dirty
    }
  }
}

void StreamEngine::submit_session_task(common::TaskScheduler& sched,
                                       const std::shared_ptr<Session>& session,
                                       bool yield_lane) {
  auto task = [this, &sched, session] { run_session(sched, session); };
  if (yield_lane)
    sched.yield(std::move(task));  // behind this worker's other runnables
  else
    sched.submit_to(session->home_.load(std::memory_order_acquire),
                    std::move(task));
}

void StreamEngine::run_session(common::TaskScheduler& sched,
                               const std::shared_ptr<Session>& sp) {
  Session& s = *sp;
  int expected = Session::kScheduled;
  // Claim the actor.  A failed claim means a duplicate task (possible only
  // across a stop()/start() reset) -- drop it; the claimer does the work.
  if (!s.sched_state_.compare_exchange_strong(expected, Session::kRunning,
                                              std::memory_order_acq_rel))
    return;
  const int w = sched.current_worker_index();
  if (w >= 0) s.home_.store(w, std::memory_order_release);  // migrate on steal
  s.stats_.service_passes.fetch_add(1, std::memory_order_relaxed);
  bool requeue = false;
  if (!stop_.load(std::memory_order_acquire) && !s.closed()) {
    const std::size_t quantum =
        options_.session_quantum_blocks *
        static_cast<std::size_t>(s.weight_.load(std::memory_order_acquire));
    try {
      requeue = service(s, quantum);
    } catch (...) {
      // service() handles backend std::exceptions itself; anything that
      // still escapes (a foreign exception type, an allocation failure in
      // the handler) must not skip the epilogue below -- the scheduler
      // would swallow it and leave sched_state_ stuck at kRunning, a
      // permanently unserviceable session stalling a kBlock feed.  Fail
      // the session instead.
      s.busy_.store(false, std::memory_order_release);
      s.record_failure("service: unexpected exception");
    }
  }
  // Wake output waiters AFTER the final busy_/has_pending_chunk_ stores --
  // unconditionally: even a no-work pass raises busy_ for its empty-pop
  // probe, and a drain that read that transient "busy" (not finished) must
  // get one more wakeup, or it sleeps through the finish transition.
  notify_output();
  if (requeue) {
    // Quantum exhausted with input still queued: yield behind the other
    // runnable sessions on this worker -- the WRR fairness edge.
    s.sched_state_.store(Session::kScheduled, std::memory_order_release);
    return submit_session_task(sched, sp, /*yield_lane=*/true);
  }
  int st = Session::kRunning;
  if (s.sched_state_.compare_exchange_strong(st, Session::kIdle,
                                             std::memory_order_acq_rel))
    return;  // parked: a poll()/enqueue/retune nudge re-arms it
  // kRunningDirty: a request raced the pass; service again promptly.
  s.sched_state_.store(Session::kScheduled, std::memory_order_release);
  submit_session_task(sched, sp, /*yield_lane=*/true);
}

bool StreamEngine::service(Session& s, std::size_t budget) {
  s.apply_pending_retune();
  // A chunk stashed on an earlier pass (kBlock ring was full) must deliver
  // before any new block is processed -- stream order.  If the ring is
  // still full the session stays parked; a poll() re-schedules it.
  if (s.pending_chunk_.has_value() && !deliver_chunk(s)) return false;
  std::size_t processed = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire) || s.closed() || s.paused())
      return false;
    if (processed >= budget) return s.in_ring_.size() > 0;
    s.busy_.store(true, std::memory_order_release);
    auto block = s.in_ring_.try_pop();
    if (!block) {
      s.busy_.store(false, std::memory_order_release);
      return false;
    }
    StreamChunk chunk;
    chunk.block_seq = block->seq;
    // Input-gap detection is by feed sequence, which is exact: every
    // eviction removes an enqueued block, so a drop shows up as precisely
    // one missing seq.  (Reading the drop counter alone would race the
    // pump and could stamp the marker one chunk early or late.)  The
    // counter supplies the dropped-sample tally; the pre-first-block case
    // covers drops while the session never got to process anything yet.
    const bool seq_gap = s.have_seq_ && block->seq != s.expected_seq_;
    const bool lead_gap =
        !s.have_seq_ &&
        s.pending_dropped_samples_.load(std::memory_order_relaxed) > 0;
    if (seq_gap || lead_gap) {
      chunk.gap_before = GapCause::kDropOldest;
      chunk.dropped_feed_samples =
          s.pending_dropped_samples_.exchange(0, std::memory_order_relaxed);
    }
    s.expected_seq_ = block->seq + 1;
    s.have_seq_ = true;
    if (s.pending_flush_gap_) {
      // A flush retune restarted the backend transient; that wins as the
      // cause (any coincident drop count is still reported).
      chunk.gap_before = GapCause::kRetuneFlush;
      s.pending_flush_gap_ = false;
    }
    if (s.pending_output_drop_samples_ > 0 || s.pending_evicted_feed_samples_ > 0 ||
        s.pending_output_marker_lost_) {
      // Output-ring evictions since the last produced chunk: forward the
      // loss (and any destroyed flush marker) instead of dropping it
      // silently.  See the StreamChunk doc for the position caveat.
      if (s.pending_output_marker_lost_)
        chunk.gap_before = GapCause::kRetuneFlush;
      else if (chunk.gap_before == GapCause::kNone)
        chunk.gap_before = GapCause::kDropOldest;
      chunk.dropped_output_samples = s.pending_output_drop_samples_;
      chunk.dropped_feed_samples += s.pending_evicted_feed_samples_;
      s.pending_output_drop_samples_ = 0;
      s.pending_evicted_feed_samples_ = 0;
      s.pending_output_marker_lost_ = false;
    }
    if (chunk.gap_before != GapCause::kNone)
      s.stats_.gaps.fetch_add(1, std::memory_order_relaxed);
    try {
      s.backend_->process_block(*block->samples, chunk.iq);
    } catch (const std::exception& e) {
      s.record_failure(std::string("process_block: ") + e.what());
      s.busy_.store(false, std::memory_order_release);
      return false;
    }
    s.stats_.blocks_processed.fetch_add(1, std::memory_order_relaxed);
    s.stats_.samples_processed.fetch_add(block->samples->size(),
                                         std::memory_order_relaxed);
    s.stats_.samples_out.fetch_add(chunk.iq.size(), std::memory_order_relaxed);
    s.pending_chunk_.emplace(std::move(chunk));
    s.has_pending_chunk_.store(true, std::memory_order_release);
    const bool delivered = deliver_chunk(s);
    s.busy_.store(false, std::memory_order_release);
    ++processed;
    s.apply_pending_retune();  // between blocks, mid-stream
    if (!delivered) return false;  // session parked until the client polls
  }
}

bool StreamEngine::deliver_chunk(Session& s) {
  if (s.closed()) {
    // Terminal: the undelivered chunk is discarded (close() docs).  Still
    // an output event -- a drain blocked on has_pending_chunk_ must
    // re-check after the discard.
    s.pending_chunk_.reset();
    s.has_pending_chunk_.store(false, std::memory_order_release);
    notify_output();
    return true;
  }
  if (stop_.load(std::memory_order_acquire)) {
    // The run is ending but the engine may be restarted: keep the chunk
    // stashed so the next run's kick delivers it -- a stop loses nothing.
    notify_output();
    return false;
  }
  if (s.policy_ == BackpressurePolicy::kBlock) {
    if (!s.out_ring_.try_push(std::move(*s.pending_chunk_))) return false;
  } else {
    for (;;) {
      if (s.out_ring_.try_push(std::move(*s.pending_chunk_))) break;
      if (auto old = s.out_ring_.try_pop()) {
        s.stats_.output_drop_chunks.fetch_add(1, std::memory_order_relaxed);
        s.stats_.output_drop_samples.fetch_add(old->iq.size(),
                                               std::memory_order_relaxed);
        // Keep the evicted chunk's story alive: its payload size, its feed
        // drops, and any flush marker ride forward to the next chunk.
        s.pending_output_drop_samples_ += old->iq.size() + old->dropped_output_samples;
        s.pending_evicted_feed_samples_ += old->dropped_feed_samples;
        if (old->gap_before == GapCause::kRetuneFlush)
          s.pending_output_marker_lost_ = true;
      }
    }
  }
  s.pending_chunk_.reset();
  s.has_pending_chunk_.store(false, std::memory_order_release);
  notify_output();
  return true;
}

void StreamEngine::notify_output() {
  output_epoch_->fetch_add(1, std::memory_order_release);
  output_epoch_->notify_all();
}

// ------------------------------------------------------------------- stats

std::string StreamEngine::stats_json() const {
  double elapsed = streamed_elapsed_s_.load(std::memory_order_relaxed);
  common::TaskScheduler::Stats sched_stats;
  {
    // run_start_time_ is rewritten by every start() now that the engine is
    // restartable, so it is only readable under the lifecycle mutex (the
    // "published once before running_" justification died with one-shot).
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
    if (running_.load(std::memory_order_acquire))
      elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               run_start_time_)
                     .count();
    sched_stats = sched_ ? sched_->stats() : sched_stats_;
  }
  JsonLine engine_line;
  engine_line.field("sessions", session_count())
      .field("workers", static_cast<std::size_t>(options_.workers))
      .field("block_samples", options_.block_samples)
      .field("quantum_blocks", options_.session_quantum_blocks)
      .field("blocks_pumped", static_cast<std::size_t>(blocks_pumped()))
      .field("feed_exhausted", feed_exhausted())
      .field("running", running_.load(std::memory_order_acquire))
      .field("elapsed_s", elapsed)
      .field("tasks_executed", static_cast<std::size_t>(sched_stats.executed))
      .field("tasks_stolen", static_cast<std::size_t>(sched_stats.stolen))
      .field("targeted_wakeups", static_cast<std::size_t>(sched_stats.wakeups));
  // The compiled-plan cache is process-wide (sessions resolve their plans
  // through it in configure/retune), so its stats describe every engine in
  // the process, not just this one.
  const core::CompiledPlanCache::Stats cache = core::CompiledPlanCache::instance().stats();
  JsonLine cache_line;
  cache_line.field("lookups", static_cast<std::size_t>(cache.lookups))
      .field("hits", static_cast<std::size_t>(cache.hits))
      .field("misses", static_cast<std::size_t>(cache.misses))
      .field("evictions", static_cast<std::size_t>(cache.evictions))
      .field("hit_rate", cache.lookups > 0 ? static_cast<double>(cache.hits) /
                                                 static_cast<double>(cache.lookups)
                                           : 0.0)
      .field("compile_seconds", cache.compile_seconds)
      .field("entries", cache.entries)
      .field("capacity", cache.capacity);
  std::string out = "{\"engine\": " + engine_line.str() +
                    ", \"plan_cache\": " + cache_line.str() + ", \"sessions\": [";
  bool first = true;
  for (const auto& s : snapshot()) {
    if (!first) out += ", ";
    first = false;
    const SessionStats st = s->stats();
    JsonLine line;
    line.field("id", static_cast<std::size_t>(s->id()))
        .field("backend", s->backend_name())
        .field("plan", s->plan_name())
        .field("policy", to_string(s->policy()))
        .field("closed", s->closed())
        .field("paused", s->paused())
        .field("worker", static_cast<double>(s->home_worker()))
        .field("weight", static_cast<double>(s->weight()))
        .field("blocks_enqueued", static_cast<std::size_t>(st.blocks_enqueued))
        .field("samples_enqueued", static_cast<std::size_t>(st.samples_enqueued))
        .field("blocks_processed", static_cast<std::size_t>(st.blocks_processed))
        .field("samples_processed", static_cast<std::size_t>(st.samples_processed))
        .field("samples_out", static_cast<std::size_t>(st.samples_out))
        .field("chunks_polled", static_cast<std::size_t>(st.chunks_polled))
        .field("input_drop_blocks", static_cast<std::size_t>(st.input_drop_blocks))
        .field("input_drop_samples", static_cast<std::size_t>(st.input_drop_samples))
        .field("output_drop_chunks", static_cast<std::size_t>(st.output_drop_chunks))
        .field("output_drop_samples",
               static_cast<std::size_t>(st.output_drop_samples))
        .field("max_queue_depth", static_cast<std::size_t>(st.max_queue_depth))
        .field("retunes_applied", static_cast<std::size_t>(st.retunes_applied))
        .field("retunes_rejected", static_cast<std::size_t>(st.retunes_rejected))
        .field("gaps", static_cast<std::size_t>(st.gaps))
        .field("last_retune_block", static_cast<std::size_t>(st.last_retune_block))
        .field("service_passes", static_cast<std::size_t>(st.service_passes))
        .field("msamples_per_s",
               elapsed > 0.0
                   ? static_cast<double>(st.samples_processed) / elapsed / 1e6
                   : 0.0);
    out += line.str();
  }
  out += "]}";
  return out;
}

// ------------------------------------------------------------ drain helper

void drain_each(StreamEngine& engine,
                const std::vector<std::shared_ptr<Session>>& sessions,
                const std::function<void(std::size_t, StreamChunk&&)>& on_chunk) {
  for (;;) {
    const auto token = engine.output_token();  // before polling: no lost wakeup
    bool any = false;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      for (auto& chunk : sessions[i]->poll()) {
        on_chunk(i, std::move(chunk));
        any = true;
      }
    }
    if (any) continue;
    bool done = true;
    for (const auto& s : sessions) done = done && engine.finished(*s);
    if (done) return;
    engine.wait_output(token);  // block until a delivery/close/stop event
  }
}

std::vector<std::vector<StreamChunk>> drain_all(
    StreamEngine& engine, const std::vector<std::shared_ptr<Session>>& sessions) {
  std::vector<std::vector<StreamChunk>> out(sessions.size());
  drain_each(engine, sessions, [&out](std::size_t i, StreamChunk&& chunk) {
    out[i].push_back(std::move(chunk));
  });
  return out;
}

std::vector<core::IqSample> flatten(const std::vector<StreamChunk>& chunks) {
  std::vector<core::IqSample> iq;
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.iq.size();
  iq.reserve(total);
  for (const auto& c : chunks) iq.insert(iq.end(), c.iq.begin(), c.iq.end());
  return iq;
}

}  // namespace twiddc::stream
