#include "src/stream/engine.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/json.hpp"

namespace twiddc::stream {

StreamEngine::StreamEngine(std::unique_ptr<Source> source, EngineOptions options)
    : options_(options),
      source_(std::move(source)),
      pool_(std::max(1, options.workers)),
      work_epoch_(std::make_shared<std::atomic<std::uint32_t>>(0)),
      output_epoch_(std::make_shared<std::atomic<std::uint32_t>>(0)) {
  if (!source_) throw ConfigError("StreamEngine: needs a source");
  options_.workers = std::max(1, options_.workers);
  options_.block_samples = std::max<std::size_t>(1, options_.block_samples);
  options_.session_queue_blocks = std::max<std::size_t>(2, options_.session_queue_blocks);
  options_.session_output_chunks =
      std::max<std::size_t>(2, options_.session_output_chunks);
  worker_job_ = [this](int w) { worker_loop(w); };
}

StreamEngine::~StreamEngine() {
  stop();
  // A stop() that raced a concurrent start() can win the stopped_ guard
  // before the pump thread was spawned; never destroy it joinable.
  if (pump_thread_.joinable()) pump_thread_.join();
}

std::shared_ptr<Session> StreamEngine::open(const core::ChainPlan& plan,
                                            const std::string& backend_name,
                                            BackpressurePolicy policy) {
  // The engine is one-shot: a session opened after stop() could never
  // receive a feed block, so reject it loudly instead of returning a
  // permanently dead handle.
  if (stopped_.load(std::memory_order_acquire))
    throw SimulationError("StreamEngine: open() after stop()");
  auto backend = core::BackendRegistry::instance().create(backend_name);
  backend->configure(plan);  // LoweringError propagates; nothing opened
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::shared_ptr<Session> session(
      new Session(next_session_id_++, std::move(backend), policy,
                  options_.session_queue_blocks, options_.session_output_chunks,
                  work_epoch_, output_epoch_));
  session->worker_ =
      static_cast<int>(session->id() % static_cast<std::uint64_t>(options_.workers));
  session->set_attached(workers_live_);
  sessions_.push_back(session);
  return session;
}

void StreamEngine::start() {
  if (started_.exchange(true))
    throw SimulationError("StreamEngine: start() may be called at most once");
  // start_time_ is non-atomic: publish it BEFORE the running_ release store
  // so a stats_json() that acquire-reads running_ == true sees it written
  // (it is never written again).
  start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    workers_live_ = true;
  }
  for (auto& s : snapshot()) s->set_attached(true);
  pool_.begin(worker_job_);
  pump_thread_ = std::thread([this] { pump_loop(); });
}

void StreamEngine::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) return;
  stop_.store(true, std::memory_order_release);
  work_epoch_->fetch_add(1, std::memory_order_release);
  work_epoch_->notify_all();
  notify_output();
  for (auto& s : snapshot()) s->in_ring_.wake();  // a kBlock pump push may park here
  if (pump_thread_.joinable()) pump_thread_.join();
  pool_.finish();
  elapsed_s_.store(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 start_time_)
                       .count(),
                   std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    workers_live_ = false;
  }
  // Any session open()ed after the flag flip is born detached; any opened
  // before it is in this snapshot (open holds sessions_mu_), so nobody is
  // left attached with no workers alive.
  for (auto& s : snapshot()) s->set_attached(false);
  {
    // Sessions closed after the pump's last cycle never hit its pruning;
    // drop them here so a stopped engine holds only open sessions.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    std::erase_if(sessions_, [](const auto& s) { return s->closed(); });
  }
}

bool StreamEngine::finished(const Session& session) const {
  // A stop() that cut the feed short is terminal for every session: queued
  // input is abandoned by contract, so only the output ring matters --
  // otherwise a drain helper would wait forever for a feed_exhausted()
  // that can no longer come.
  if (stop_.load(std::memory_order_acquire))
    return session.out_ring_.size() == 0;
  // Order matters: the input side is read before the output ring.  Once the
  // feed is done and the session is seen idle (input ring empty, not mid-
  // block, no stashed undelivered chunk), no further chunk can ever be
  // produced, so an empty output ring read *afterwards* really is final.
  // busy_ is set before the worker pops and cleared after the chunk is
  // delivered or stashed; has_pending_chunk_ covers the stashed window.
  const bool input_done =
      session.closed() ||
      (feed_exhausted() && session.in_ring_.size() == 0 &&
       !session.busy_.load(std::memory_order_acquire) &&
       !session.has_pending_chunk_.load(std::memory_order_acquire));
  return input_done && session.out_ring_.size() == 0;
}

std::size_t StreamEngine::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<Session>> StreamEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_;
}

std::vector<std::shared_ptr<Session>> StreamEngine::worker_sessions(int w) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<std::shared_ptr<Session>> mine;
  for (const auto& s : sessions_)
    if (s->worker_ == w) mine.push_back(s);
  return mine;
}

// ------------------------------------------------------------------- pump

void StreamEngine::pump_loop() {
  std::vector<std::int64_t> buffer(options_.block_samples);
  bool exhausted = false;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = source_->read(buffer);
    if (n == 0) {
      exhausted = true;
      break;
    }
    FeedBlock block;
    block.seq = blocks_pumped_.load(std::memory_order_relaxed);
    block.samples = std::make_shared<const std::vector<std::int64_t>>(
        buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<std::shared_ptr<Session>> live;
    {
      // Prune closed sessions so a long-running engine with session churn
      // does not accumulate dead backends/rings (client handles stay valid).
      std::lock_guard<std::mutex> lock(sessions_mu_);
      std::erase_if(sessions_, [](const auto& s) { return s->closed(); });
      live = sessions_;
    }
    for (auto& s : live) {
      if (s->closed()) continue;  // may close mid-fan-out
      enqueue(*s, block);
    }
    blocks_pumped_.fetch_add(1, std::memory_order_release);
    work_epoch_->fetch_add(1, std::memory_order_release);
    work_epoch_->notify_all();
  }
  if (exhausted) feed_done_.store(true, std::memory_order_release);
  work_epoch_->fetch_add(1, std::memory_order_release);
  work_epoch_->notify_all();
  notify_output();
}

void StreamEngine::enqueue(Session& s, const FeedBlock& block) {
  FeedBlock copy = block;  // cheap: a seq and a shared_ptr
  if (s.policy_ == BackpressurePolicy::kBlock) {
    // Conservative flow control: a full ring stalls the pump -- and with it
    // the whole feed -- until the session's worker catches up.
    for (;;) {
      const auto token = s.in_ring_.wake_token();
      if (stop_.load(std::memory_order_acquire) || s.in_ring_.closed()) return;
      if (s.in_ring_.try_push(std::move(copy))) break;
      s.in_ring_.wait(token);
    }
  } else {
    // Shed load instead of stalling: evict the oldest queued block.  The
    // loss surfaces in-stream as gap metadata on the session's next chunk.
    for (;;) {
      if (s.in_ring_.closed()) return;
      if (s.in_ring_.try_push(std::move(copy))) break;
      if (auto old = s.in_ring_.try_pop()) {
        s.stats_.input_drop_blocks.fetch_add(1, std::memory_order_relaxed);
        s.stats_.input_drop_samples.fetch_add(old->samples->size(),
                                              std::memory_order_relaxed);
        s.pending_dropped_samples_.fetch_add(old->samples->size(),
                                             std::memory_order_relaxed);
      }
    }
  }
  // close() may have raced our push after its own drain pass; re-drain so
  // no FeedBlock is stranded in the closed ring holding the shared buffer.
  if (s.closed()) {
    while (s.in_ring_.try_pop()) {
    }
    return;
  }
  s.stats_.blocks_enqueued.fetch_add(1, std::memory_order_relaxed);
  s.stats_.samples_enqueued.fetch_add(block.samples->size(),
                                      std::memory_order_relaxed);
  s.note_queue_depth(s.in_ring_.size());
}

// ----------------------------------------------------------------- workers

void StreamEngine::worker_loop(int w) {
  for (;;) {
    const auto epoch = work_epoch_->load(std::memory_order_acquire);
    bool progressed = false;
    for (auto& s : worker_sessions(w)) {
      if (s->closed()) continue;
      if (s->paused()) {
        // Paused sessions do not consume, but retunes still apply.
        progressed |= s->apply_pending_retune();
        continue;
      }
      progressed |= service(*s);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (!progressed) work_epoch_->wait(epoch, std::memory_order_acquire);
  }
}

bool StreamEngine::service(Session& s) {
  bool progressed = s.apply_pending_retune();
  // A chunk stashed on an earlier pass (kBlock ring was full) must deliver
  // before any new block is processed -- stream order.  If the ring is
  // still full the session stays parked; the worker moves on and a poll()
  // wakes it back up.
  if (s.pending_chunk_.has_value()) {
    if (!deliver_chunk(s)) return progressed;
    progressed = true;
  }
  for (;;) {
    if (stop_.load(std::memory_order_acquire) || s.closed() || s.paused()) break;
    s.busy_.store(true, std::memory_order_release);
    auto block = s.in_ring_.try_pop();
    if (!block) {
      s.busy_.store(false, std::memory_order_release);
      break;
    }
    StreamChunk chunk;
    chunk.block_seq = block->seq;
    // Input-gap detection is by feed sequence, which is exact: every
    // eviction removes an enqueued block, so a drop shows up as precisely
    // one missing seq.  (Reading the drop counter alone would race the
    // pump and could stamp the marker one chunk early or late.)  The
    // counter supplies the dropped-sample tally; the pre-first-block case
    // covers drops while the session never got to process anything yet.
    const bool seq_gap = s.have_seq_ && block->seq != s.expected_seq_;
    const bool lead_gap =
        !s.have_seq_ &&
        s.pending_dropped_samples_.load(std::memory_order_relaxed) > 0;
    if (seq_gap || lead_gap) {
      chunk.gap_before = GapCause::kDropOldest;
      chunk.dropped_feed_samples =
          s.pending_dropped_samples_.exchange(0, std::memory_order_relaxed);
    }
    s.expected_seq_ = block->seq + 1;
    s.have_seq_ = true;
    if (s.pending_flush_gap_) {
      // A flush retune restarted the backend transient; that wins as the
      // cause (any coincident drop count is still reported).
      chunk.gap_before = GapCause::kRetuneFlush;
      s.pending_flush_gap_ = false;
    }
    if (s.pending_output_drop_samples_ > 0 || s.pending_evicted_feed_samples_ > 0 ||
        s.pending_output_marker_lost_) {
      // Output-ring evictions since the last produced chunk: forward the
      // loss (and any destroyed flush marker) instead of dropping it
      // silently.  See the StreamChunk doc for the position caveat.
      if (s.pending_output_marker_lost_)
        chunk.gap_before = GapCause::kRetuneFlush;
      else if (chunk.gap_before == GapCause::kNone)
        chunk.gap_before = GapCause::kDropOldest;
      chunk.dropped_output_samples = s.pending_output_drop_samples_;
      chunk.dropped_feed_samples += s.pending_evicted_feed_samples_;
      s.pending_output_drop_samples_ = 0;
      s.pending_evicted_feed_samples_ = 0;
      s.pending_output_marker_lost_ = false;
    }
    if (chunk.gap_before != GapCause::kNone)
      s.stats_.gaps.fetch_add(1, std::memory_order_relaxed);
    try {
      s.backend_->process_block(*block->samples, chunk.iq);
    } catch (const std::exception& e) {
      s.record_failure(std::string("process_block: ") + e.what());
      s.busy_.store(false, std::memory_order_release);
      return true;
    }
    s.stats_.blocks_processed.fetch_add(1, std::memory_order_relaxed);
    s.stats_.samples_processed.fetch_add(block->samples->size(),
                                         std::memory_order_relaxed);
    s.stats_.samples_out.fetch_add(chunk.iq.size(), std::memory_order_relaxed);
    s.pending_chunk_.emplace(std::move(chunk));
    s.has_pending_chunk_.store(true, std::memory_order_release);
    const bool delivered = deliver_chunk(s);
    s.busy_.store(false, std::memory_order_release);
    progressed = true;
    progressed |= s.apply_pending_retune();  // between blocks, mid-stream
    if (!delivered) break;  // session parked until the client polls
  }
  // Wake output waiters AFTER the final busy_/has_pending_chunk_ stores --
  // unconditionally: even a no-work pass raises busy_ for its empty-pop
  // probe, and a drain that read that transient "busy" (not finished) must
  // get one more wakeup, or it sleeps through the finish transition.
  notify_output();
  return progressed;
}

bool StreamEngine::deliver_chunk(Session& s) {
  if (stop_.load(std::memory_order_acquire) || s.closed()) {
    // Terminal: the undelivered chunk is discarded (close()/stop() docs).
    // Still an output event -- a drain blocked on has_pending_chunk_ must
    // re-check after the discard.
    s.pending_chunk_.reset();
    s.has_pending_chunk_.store(false, std::memory_order_release);
    notify_output();
    return true;
  }
  if (s.policy_ == BackpressurePolicy::kBlock) {
    if (!s.out_ring_.try_push(std::move(*s.pending_chunk_))) return false;
  } else {
    for (;;) {
      if (s.out_ring_.try_push(std::move(*s.pending_chunk_))) break;
      if (auto old = s.out_ring_.try_pop()) {
        s.stats_.output_drop_chunks.fetch_add(1, std::memory_order_relaxed);
        s.stats_.output_drop_samples.fetch_add(old->iq.size(),
                                               std::memory_order_relaxed);
        // Keep the evicted chunk's story alive: its payload size, its feed
        // drops, and any flush marker ride forward to the next chunk.
        s.pending_output_drop_samples_ += old->iq.size() + old->dropped_output_samples;
        s.pending_evicted_feed_samples_ += old->dropped_feed_samples;
        if (old->gap_before == GapCause::kRetuneFlush)
          s.pending_output_marker_lost_ = true;
      }
    }
  }
  s.pending_chunk_.reset();
  s.has_pending_chunk_.store(false, std::memory_order_release);
  notify_output();
  return true;
}

void StreamEngine::notify_output() {
  output_epoch_->fetch_add(1, std::memory_order_release);
  output_epoch_->notify_all();
}

// ------------------------------------------------------------------- stats

std::string StreamEngine::stats_json() const {
  const double elapsed =
      running_.load(std::memory_order_acquire)
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_time_)
                .count()
          : elapsed_s_.load(std::memory_order_relaxed);
  JsonLine engine_line;
  engine_line.field("sessions", session_count())
      .field("workers", static_cast<std::size_t>(options_.workers))
      .field("block_samples", options_.block_samples)
      .field("blocks_pumped", static_cast<std::size_t>(blocks_pumped()))
      .field("feed_exhausted", feed_exhausted())
      .field("elapsed_s", elapsed);
  std::string out = "{\"engine\": " + engine_line.str() + ", \"sessions\": [";
  bool first = true;
  for (const auto& s : snapshot()) {
    if (!first) out += ", ";
    first = false;
    const SessionStats st = s->stats();
    JsonLine line;
    line.field("id", static_cast<std::size_t>(s->id()))
        .field("backend", s->backend_name())
        .field("plan", s->plan_name())
        .field("policy", to_string(s->policy()))
        .field("closed", s->closed())
        .field("paused", s->paused())
        .field("blocks_enqueued", static_cast<std::size_t>(st.blocks_enqueued))
        .field("samples_enqueued", static_cast<std::size_t>(st.samples_enqueued))
        .field("blocks_processed", static_cast<std::size_t>(st.blocks_processed))
        .field("samples_processed", static_cast<std::size_t>(st.samples_processed))
        .field("samples_out", static_cast<std::size_t>(st.samples_out))
        .field("chunks_polled", static_cast<std::size_t>(st.chunks_polled))
        .field("input_drop_blocks", static_cast<std::size_t>(st.input_drop_blocks))
        .field("input_drop_samples", static_cast<std::size_t>(st.input_drop_samples))
        .field("output_drop_chunks", static_cast<std::size_t>(st.output_drop_chunks))
        .field("output_drop_samples",
               static_cast<std::size_t>(st.output_drop_samples))
        .field("max_queue_depth", static_cast<std::size_t>(st.max_queue_depth))
        .field("retunes_applied", static_cast<std::size_t>(st.retunes_applied))
        .field("retunes_rejected", static_cast<std::size_t>(st.retunes_rejected))
        .field("gaps", static_cast<std::size_t>(st.gaps))
        .field("last_retune_block", static_cast<std::size_t>(st.last_retune_block))
        .field("msamples_per_s",
               elapsed > 0.0
                   ? static_cast<double>(st.samples_processed) / elapsed / 1e6
                   : 0.0);
    out += line.str();
  }
  out += "]}";
  return out;
}

// ------------------------------------------------------------ drain helper

void drain_each(StreamEngine& engine,
                const std::vector<std::shared_ptr<Session>>& sessions,
                const std::function<void(std::size_t, StreamChunk&&)>& on_chunk) {
  for (;;) {
    const auto token = engine.output_token();  // before polling: no lost wakeup
    bool any = false;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      for (auto& chunk : sessions[i]->poll()) {
        on_chunk(i, std::move(chunk));
        any = true;
      }
    }
    if (any) continue;
    bool done = true;
    for (const auto& s : sessions) done = done && engine.finished(*s);
    if (done) return;
    engine.wait_output(token);  // block until a delivery/close/stop event
  }
}

std::vector<std::vector<StreamChunk>> drain_all(
    StreamEngine& engine, const std::vector<std::shared_ptr<Session>>& sessions) {
  std::vector<std::vector<StreamChunk>> out(sessions.size());
  drain_each(engine, sessions, [&out](std::size_t i, StreamChunk&& chunk) {
    out[i].push_back(std::move(chunk));
  });
  return out;
}

std::vector<core::IqSample> flatten(const std::vector<StreamChunk>& chunks) {
  std::vector<core::IqSample> iq;
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.iq.size();
  iq.reserve(total);
  for (const auto& c : chunks) iq.insert(iq.end(), c.iq.begin(), c.iq.end());
  return iq;
}

}  // namespace twiddc::stream
