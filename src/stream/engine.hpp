// twiddc::stream -- the streaming session engine.
//
// Turns the backend layer into a server: ONE wideband Source feed drives N
// concurrent Sessions, each lowered onto any registered
// ArchitectureBackend -- the same antenna samples can simultaneously feed a
// GC4016 slot, a Montium mapping and the SIMD native pipeline.
//
// Threading model (see DESIGN.md "The stream layer"):
//
//   pump thread   reads Source blocks and fans each one out (zero-copy, a
//                 shared_ptr per session) to every open session's input
//                 ring, honouring the session's backpressure policy;
//   worker pool   a common::WorkerPool of `workers` threads; session k is
//                 pinned to worker k % workers for its whole life, so each
//                 ring keeps a single consumer and execution order within a
//                 session is the feed order (bit-exact with one-shot
//                 process_block on the same backend);
//   client        opens/polls/retunes/closes sessions from its own threads.
//
// The engine is one-shot: construct, open sessions (before or during
// streaming), start(), stream, stop().  stop() is terminal; queued output
// remains pollable afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/worker_pool.hpp"
#include "src/stream/session.hpp"
#include "src/stream/source.hpp"

namespace twiddc::stream {

struct EngineOptions {
  int workers = 2;                  ///< worker threads (>= 1)
  std::size_t block_samples = 4096; ///< feed samples per FeedBlock
  std::size_t session_queue_blocks = 8;    ///< input-ring capacity (blocks)
  std::size_t session_output_chunks = 256; ///< output-ring capacity (chunks)
};

class StreamEngine {
 public:
  /// The engine owns the feed.  Options are clamped to sane minimums.
  explicit StreamEngine(std::unique_ptr<Source> source, EngineOptions options = {});
  ~StreamEngine();  // stop()s if still running

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Lowers `plan` onto a fresh instance of the named registered backend
  /// and opens a session for it.  Throws ConfigError for an unknown backend
  /// name and core::LoweringError when the plan does not lower; nothing is
  /// opened in either case.  Legal before and during streaming; a session
  /// opened mid-stream joins at the current feed position.
  std::shared_ptr<Session> open(const core::ChainPlan& plan,
                                const std::string& backend_name,
                                BackpressurePolicy policy = BackpressurePolicy::kBlock);

  /// Spawns the pump and parks the workers.  Call at most once.
  void start();
  /// Terminal: stops the pump and releases the workers.  In-queue input is
  /// abandoned; queued output remains pollable.  Idempotent.
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// True once the Source reported end of stream (never true after stop()
  /// cut the feed short -- check running() too).
  [[nodiscard]] bool feed_exhausted() const {
    return feed_done_.load(std::memory_order_acquire);
  }

  /// True when nothing more will reach `session`'s consumer: the feed is
  /// exhausted (or the session closed), every queued block is processed,
  /// and every produced chunk has been polled.
  [[nodiscard]] bool finished(const Session& session) const;

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::uint64_t blocks_pumped() const {
    return blocks_pumped_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Serving snapshot as one JSON object: engine totals plus one entry per
  /// session (stats + derived throughput).  Poll-safe from any thread.
  [[nodiscard]] std::string stats_json() const;

  /// Eventcount for output-side waiters (the drain helpers): every chunk
  /// delivery, feed exhaustion, stop() and session close bumps it.  Read
  /// the token BEFORE polling, then wait(token) when nothing was polled --
  /// any of those events in between makes the wait return immediately.
  [[nodiscard]] std::uint32_t output_token() const {
    return output_epoch_->load(std::memory_order_acquire);
  }
  void wait_output(std::uint32_t token) const {
    output_epoch_->wait(token, std::memory_order_acquire);
  }

 private:
  void pump_loop();
  void worker_loop(int w);
  /// Drains one session's input ring through its backend.  Returns true
  /// when any progress was made.
  bool service(Session& session);
  void enqueue(Session& session, const FeedBlock& block);
  /// Tries to hand the session's stashed pending_chunk_ to the output ring
  /// (per its backpressure policy).  Returns false only when a kBlock ring
  /// is full -- the chunk stays stashed and the worker moves on.
  bool deliver_chunk(Session& session);
  /// Bumps the output eventcount.  Called on EVERY transition an output
  /// waiter can be blocked on: chunk delivery or discard, the end of a
  /// worker's service pass (the busy_ -> false edge that completes
  /// finished()), feed exhaustion and stop; Session::close() bumps too.
  void notify_output();
  [[nodiscard]] std::vector<std::shared_ptr<Session>> snapshot() const;
  [[nodiscard]] std::vector<std::shared_ptr<Session>> worker_sessions(int w) const;

  EngineOptions options_;
  std::unique_ptr<Source> source_;
  common::WorkerPool pool_;
  std::function<void(int)> worker_job_;
  std::thread pump_thread_;

  mutable std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 0;
  /// Guarded by sessions_mu_ so open() and the start()/stop() attach/detach
  /// passes agree on whether a new session gets a worker -- an atomic read
  /// of running_ could race stop()'s detach snapshot and strand a session
  /// attached with no workers alive.
  bool workers_live_ = false;

  std::shared_ptr<std::atomic<std::uint32_t>> work_epoch_;
  std::shared_ptr<std::atomic<std::uint32_t>> output_epoch_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> feed_done_{false};
  std::atomic<std::uint64_t> blocks_pumped_{0};
  std::chrono::steady_clock::time_point start_time_{};
  std::atomic<double> elapsed_s_{0.0};
};

/// The standard client loop: polls every session until the feed is
/// exhausted and all sessions are finished, handing each chunk (with its
/// session's index in `sessions`) to `on_chunk` as it arrives.  Keeps
/// consuming while the engine runs, so kBlock sessions cannot deadlock on a
/// full output ring.  The engine must be start()ed and no session paused,
/// or this never returns.
void drain_each(StreamEngine& engine,
                const std::vector<std::shared_ptr<Session>>& sessions,
                const std::function<void(std::size_t, StreamChunk&&)>& on_chunk);

/// drain_each, buffering: returns each session's chunks in stream order.
std::vector<std::vector<StreamChunk>> drain_all(
    StreamEngine& engine, const std::vector<std::shared_ptr<Session>>& sessions);

/// Concatenates the IQ payloads of polled chunks (gap metadata dropped).
std::vector<core::IqSample> flatten(const std::vector<StreamChunk>& chunks);

}  // namespace twiddc::stream
