// twiddc::stream -- the streaming session engine.
//
// Turns the backend layer into a server: ONE wideband Source feed drives N
// concurrent Sessions, each lowered onto any registered
// ArchitectureBackend -- the same antenna samples can simultaneously feed a
// GC4016 slot, a Montium mapping and the SIMD native pipeline.
//
// Threading model (see DESIGN.md "The stream layer"):
//
//   pump thread   reads Source blocks and fans each one out (zero-copy, a
//                 shared_ptr per session) to every open session's input
//                 ring, honouring the session's backpressure policy, then
//                 nudges only that session's home worker;
//   scheduler     a common::TaskScheduler of `workers` threads.  Each
//                 session is a cooperative actor: when it has input it is
//                 a queued task on its home worker; an idle worker steals
//                 queued sessions from its siblings (the stolen session is
//                 re-pinned to the thief); a session that exhausts its
//                 weighted quantum yields behind the other runnable
//                 sessions on its worker.  Sessions with no work are in no
//                 queue at all -- scheduling cost follows *active*
//                 sessions, not open ones.
//   client        opens/polls/retunes/closes sessions from its own threads.
//
// The engine is restartable: construct, open sessions (any time), start(),
// stream, stop(), and -- new in the scheduler rework -- start() again to
// resume serving from the current source position.  Queued output remains
// pollable while stopped; queued input survives a stop and is consumed on
// the next run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/common/task_scheduler.hpp"
#include "src/stream/session.hpp"
#include "src/stream/source.hpp"

namespace twiddc::stream {

struct EngineOptions {
  /// Worker threads.  <= 0 resolves at construction to
  /// common::default_worker_count() -- the TWIDDC_WORKERS environment
  /// variable when set, hardware_concurrency otherwise.  Adjustable at
  /// runtime via StreamEngine::set_workers (within [min_workers,
  /// max_workers] while running).
  int workers = 0;
  /// Elastic bounds.  min_workers floors the shrink; max_workers caps the
  /// grow (0 = same as workers: no headroom, resize is a no-op).  Worker
  /// threads for max_workers slots are spawned at start(); only the active
  /// count changes at runtime.
  int min_workers = 1;
  int max_workers = 0;
  /// Let the watchdog grow/shrink the active worker count from the
  /// queue-depth and pump-stall signals below.  Off by default: capacity
  /// changes are surprising in benchmarks unless asked for.
  bool elastic = false;
  /// Grow when mean queued input blocks per ACTIVE worker stays >= this
  /// (or the pump is parked on a full ring) for elastic_hysteresis_ticks
  /// consecutive watchdog ticks; shrink when it stays <= the shrink
  /// threshold as long.  One step per decision, so capacity ramps, never
  /// jumps.
  double elastic_grow_depth = 2.0;
  double elastic_shrink_depth = 0.25;
  int elastic_hysteresis_ticks = 4;
  /// Pin worker threads to their NUMA nodes and bind new sessions' rings
  /// node-local (no-ops on single-node machines).
  bool pin_to_nodes = false;
  /// Pin the WHOLE engine to one NUMA node (list index; -1 = spread
  /// round-robin).  The sharded EngineGroup sets one node per shard.
  int preferred_node = -1;
  std::size_t block_samples = 4096; ///< feed samples per FeedBlock
  std::size_t session_queue_blocks = 8;    ///< input-ring capacity (blocks)
  std::size_t session_output_chunks = 256; ///< output-ring capacity (chunks)
  /// Weighted-round-robin quantum: a weight-1 session processes at most
  /// this many feed blocks per scheduling pass before yielding its worker
  /// (Session::set_weight scales it).  Bounds how long any one backlogged
  /// session can hold a worker while others are runnable.
  std::size_t session_quantum_blocks = 4;

  /// Restart policy stamped onto every session at open() (Session::
  /// set_restart_policy overrides per session).  Default kFail: a backend
  /// exception closes that one session, typed via last_fault().
  RestartOptions default_restart;
  /// Watchdog tick (microseconds; 0 disables the thread).  The watchdog
  /// drives timed kBackoff restarts, stall quarantine and overload shedding;
  /// with it disabled, backoff restarts still happen on poll()/feed nudges.
  std::size_t watchdog_interval_us = 1000;
  /// Quarantine a session whose progress heartbeat freezes mid-block for
  /// this long (a backend stuck inside process_block).  0 disables.  The
  /// stuck pass still occupies its worker thread until the call returns --
  /// quarantine unblocks the pump and the drains, not the hostage worker.
  std::size_t stall_timeout_ms = 10000;
  /// Overload shedding (off by default: kBlock's stall-everyone semantics
  /// are the conservative contract).  When enabled, the watchdog sheds the
  /// input backlog of the lowest-weight sessions first -- see DESIGN.md
  /// "Fault containment & graceful degradation".
  bool shed_enabled = false;
  /// Shed when aggregate queued input exceeds this fraction of aggregate
  /// input-ring capacity across open sessions.
  double shed_queue_fraction = 0.75;
  /// Also shed when the pump has been stuck in one session's kBlock
  /// enqueue for this long (a dead client holding the whole feed hostage).
  std::size_t shed_pump_stall_ms = 50;
};

class StreamEngine {
 public:
  /// The engine owns the feed.  Options are clamped to sane minimums.
  explicit StreamEngine(std::unique_ptr<Source> source, EngineOptions options = {});
  ~StreamEngine();  // stop()s if still running

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Lowers `plan` onto a fresh instance of the named registered backend
  /// and opens a session for it.  Throws ConfigError for an unknown backend
  /// name and core::LoweringError when the plan does not lower; nothing is
  /// opened in either case.  Legal before, during and between runs; a
  /// session opened mid-stream joins at the current feed position.
  std::shared_ptr<Session> open(const core::ChainPlan& plan,
                                const std::string& backend_name,
                                BackpressurePolicy policy = BackpressurePolicy::kBlock);

  /// Spawns the scheduler and the pump.  Throws if already running; legal
  /// again after stop() -- the feed resumes at the current source position
  /// and sessions keep their state (a restarted stream is gap-free).
  void start();
  /// Stops the pump and the scheduler.  Queued input stays queued (the
  /// next start() consumes it); queued output remains pollable.  Waiters
  /// in drain helpers return once their output rings are empty.  Idempotent.
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// True once the Source reported end of stream (never true after stop()
  /// cut the feed short -- check running() too).
  [[nodiscard]] bool feed_exhausted() const {
    return feed_done_.load(std::memory_order_acquire);
  }

  /// True when nothing more will reach `session`'s consumer: the feed is
  /// exhausted (or the session closed), every queued block is processed,
  /// and every produced chunk has been polled.  While the engine is
  /// stopped, only the output ring counts (queued input cannot progress).
  [[nodiscard]] bool finished(const Session& session) const;

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::uint64_t blocks_pumped() const {
    return blocks_pumped_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Requests `n` active workers.  While running the change applies
  /// immediately, clamped to the live scheduler's [min_workers,
  /// max_workers]; stopped, it becomes the next start()'s initial count.
  /// Returns the effective value.  Sessions homed on shrunk workers are
  /// re-pinned onto the remaining active set.
  int set_workers(int n);
  /// Active worker count right now (the live scheduler's, or the
  /// configured count while stopped).
  [[nodiscard]] int effective_workers() const;

  /// Elastic-policy counters (watchdog grow/shrink decisions that took).
  [[nodiscard]] std::uint64_t grow_events() const {
    return grow_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shrink_events() const {
    return shrink_events_.load(std::memory_order_relaxed);
  }
  /// Sessions this engine adopt()ed over its lifetime.
  [[nodiscard]] std::uint64_t migrations_in() const {
    return migrations_in_.load(std::memory_order_relaxed);
  }

  /// A session in flight between two engines (EngineGroup::migrate).
  /// next_feed_seq is where the session's contiguous input prefix ends:
  /// everything before it was either processed or still sits in the
  /// session's input ring (which travels with the Session object).
  struct MigrationTicket {
    std::shared_ptr<Session> session;
    std::uint64_t next_feed_seq = 0;
  };

  /// Removes `session` from this engine without closing it: the pump stops
  /// feeding it, the in-flight service pass (if any) is waited out, queued
  /// input and output stay on the session.  The ticket hands it to another
  /// engine's adopt().  May briefly block on the pump finishing its
  /// current block fan-out.
  MigrationTicket eject(const std::shared_ptr<Session>& session);

  /// Adopts an ejected session mid-stream, gap-free: if this engine's feed
  /// is AHEAD of the ticket (blocks the session never saw were already
  /// pumped here), the missing span [ticket.next_feed_seq, blocks_pumped())
  /// is replayed from `backfill` -- a fresh Source that must produce the
  /// identical deterministic feed this engine's own source does.  If this
  /// engine is BEHIND, the pump simply skips already-processed blocks for
  /// this session until it catches up.  `backfill` may be null when the
  /// caller knows this engine is not ahead.  The engine should be
  /// running; backfilling into a stopped engine throws if a ring fills
  /// (nobody would drain it).
  void adopt(const MigrationTicket& ticket, std::unique_ptr<Source> backfill);

  /// The fault that ended the feed, if Source::read ever threw: the pump
  /// contains a source exception as an engine-level fault (the feed ends as
  /// if exhausted, sessions drain cleanly) instead of letting it escape a
  /// detached thread.  cause == kNone when the feed is healthy.
  [[nodiscard]] FaultInfo source_fault() const;

  /// Watchdog/shedding counters (engine totals; per-session counters are in
  /// each session's stats()).
  [[nodiscard]] std::uint64_t shed_events() const {
    return shed_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_blocks() const {
    return shed_blocks_.load(std::memory_order_relaxed);
  }

  /// Serving snapshot as one JSON object: engine totals (including
  /// scheduler counters) plus one entry per session (stats + derived
  /// throughput).  Poll-safe from any thread.
  [[nodiscard]] std::string stats_json() const;

  /// Eventcount for output-side waiters (the drain helpers): every chunk
  /// delivery, feed exhaustion, stop() and session close bumps it.  Read
  /// the token BEFORE polling, then wait(token) when nothing was polled --
  /// any of those events in between makes the wait return immediately.
  [[nodiscard]] std::uint32_t output_token() const {
    return output_epoch_->load(std::memory_order_acquire);
  }
  void wait_output(std::uint32_t token) const {
    output_epoch_->wait(token, std::memory_order_acquire);
  }

 private:
  friend class Session;

  void pump_loop();
  /// One scheduling pass over `session`: claim it, service up to its
  /// weighted quantum, then park / re-queue it per the actor protocol.
  /// `sched` is the scheduler executing the task, threaded through the
  /// closure: during stop() the sched_ member is nulled before the
  /// scheduler destructor finishes draining workers, so in-flight tasks
  /// must not read the member.
  void run_session(common::TaskScheduler& sched,
                   const std::shared_ptr<Session>& session);
  /// Queues a run_session task for the session.  `yield_lane` re-queues
  /// behind the worker's other runnable tasks (fairness); otherwise the
  /// task is a targeted submission to the session's home worker.
  void submit_session_task(common::TaskScheduler& sched,
                           const std::shared_ptr<Session>& session,
                           bool yield_lane);
  /// The notify half of the actor protocol: idempotent, lock-free, never
  /// loses a request, never double-runs a session.  Caller must know the
  /// scheduler is alive (pump; or via EngineLink::scheduler_live).
  void schedule_session(Session& session);
  /// Drains up to `budget` input blocks through the backend.  Returns true
  /// when the session should be re-queued immediately (quantum exhausted
  /// with input still queued).
  bool service(Session& session, std::size_t budget);
  /// kBackoff sessions only: if the timed retry is due, re-lowers the plan
  /// through backend configure (hence the process-wide CompiledPlanCache)
  /// and returns true on recovery.  Worker thread (it touches the backend).
  bool try_restart(Session& session);
  /// The watchdog thread: timed kBackoff restarts, stall quarantine,
  /// overload shedding.  Runs between start() and stop().
  void watchdog_loop();
  /// One shedding decision: picks the lowest-weight open session with
  /// queued input (ties broken toward the newest id) and discards its
  /// backlog.  Returns false when nobody is sheddable.
  bool shed_one(const std::vector<std::shared_ptr<Session>>& sessions);
  /// Discards `session`'s queued input (watchdog thread; ring pops are
  /// MPMC-safe against the worker).  Returns the blocks discarded.
  std::uint64_t shed_backlog(Session& session);
  /// The watchdog's elastic pass: one grow/shrink step per decision, with
  /// consecutive-tick hysteresis on the queue-depth / pump-stall signals.
  void elastic_tick(const std::vector<std::shared_ptr<Session>>& sessions);
  /// Re-pins sessions homed on workers >= `active` back into the active
  /// set (shrink follow-up; the pin is advisory, so lazy is fine).
  void repin_homes(int active);
  /// Binds a new session's rings node-local when placement is on.
  void place_session(Session& session) const;
  /// Returns false only when stop() aborted a kBlock wait mid-push: the
  /// pump records the fan-out position so the next run resumes it.
  bool enqueue(Session& session, const FeedBlock& block);
  /// Tries to hand the session's stashed pending_chunk_ to the output ring
  /// (per its backpressure policy).  Returns false only when a kBlock ring
  /// is full -- the chunk stays stashed and the session parks until poll().
  bool deliver_chunk(Session& session);
  /// Bumps the output eventcount.  Called on EVERY transition an output
  /// waiter can be blocked on: chunk delivery or discard, the end of a
  /// service pass (the busy_ -> false edge that completes finished()),
  /// feed exhaustion and stop; Session::close() bumps too.
  void notify_output();
  [[nodiscard]] std::vector<std::shared_ptr<Session>> snapshot() const;

  EngineOptions options_;
  std::unique_ptr<Source> source_;
  std::shared_ptr<EngineLink> link_;
  std::thread pump_thread_;
  std::thread watchdog_thread_;
  /// Wakes the watchdog out of its tick sleep at stop() (and re-arms it).
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;

  /// Serialises start()/stop()/destruction (and the scheduler-counter part
  /// of stats_json).  Never held while scheduling work.
  mutable std::mutex lifecycle_mu_;
  std::unique_ptr<common::TaskScheduler> sched_;  // live between start/stop
  common::TaskScheduler::Stats sched_stats_{};    // last run's totals

  mutable std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 0;
  /// Guarded by sessions_mu_ so open() and the start()/stop() attach/detach
  /// passes agree on whether a new session gets a worker.
  bool workers_live_ = false;
  /// Bumped by open() and close(): the pump re-snapshots its fan-out list
  /// only when this changes, instead of copying the session list under the
  /// mutex on every block.
  std::atomic<std::uint64_t> sessions_gen_{1};

  /// A feed block whose fan-out stop() interrupted (a kBlock ring was full
  /// and the run ended before space appeared).  The next run's pump
  /// delivers it to the sessions that have not received it yet before
  /// reading fresh feed -- restart loses nothing.  Pump-only; the pump is
  /// joined whenever start()/stop() run, so no locking.
  struct PendingFanout {
    FeedBlock block;
    std::vector<std::uint64_t> served;  ///< session ids that already got it
  };
  std::optional<PendingFanout> carry_;

  /// Held by the pump around each block's full fan-out + blocks_pumped_
  /// increment, and by adopt() while it splices a migrated session in: a
  /// frozen pump position is what makes the backfill span exact.  Never
  /// held while touching lifecycle_mu_ or sessions_mu_-then-waiting.
  std::mutex pump_gate_mu_;

  std::shared_ptr<std::atomic<std::uint32_t>> output_epoch_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{true};  ///< false only while a run is live
  std::atomic<bool> feed_done_{false};
  std::atomic<std::uint64_t> blocks_pumped_{0};

  /// Engine-level fault record (Source::read threw); guarded by
  /// source_fault_mu_, written only by the pump.
  mutable std::mutex source_fault_mu_;
  FaultInfo source_fault_{};
  std::atomic<std::uint64_t> source_faults_{0};

  // Watchdog / shedding totals (cumulative across runs; sessions that are
  // closed and pruned keep their share here even after they leave
  // stats_json's per-session list).
  std::atomic<std::uint64_t> watchdog_ticks_{0};
  std::atomic<std::uint64_t> stall_quarantines_{0};
  std::atomic<std::uint64_t> shed_events_{0};
  std::atomic<std::uint64_t> shed_blocks_{0};
  std::atomic<std::uint64_t> shed_samples_{0};

  // Elastic-policy state.  The counters are shared; the streaks are
  // watchdog-thread-only.
  std::atomic<std::uint64_t> grow_events_{0};
  std::atomic<std::uint64_t> shrink_events_{0};
  std::atomic<std::uint64_t> migrations_in_{0};
  int elastic_grow_streak_ = 0;
  int elastic_shrink_streak_ = 0;

  /// Pump kBlock-wait publication for the watchdog's pump-stall shed
  /// trigger: the session id + 1 the pump is parked on (0 = not parked) and
  /// when it parked (steady_clock nanos).
  std::atomic<std::uint64_t> pump_stalled_on_{0};
  std::atomic<std::int64_t> pump_stall_since_ns_{0};
  /// Rewritten by every start(); guarded by lifecycle_mu_ (the engine is
  /// restartable, so there is no publish-once story for this field).
  std::chrono::steady_clock::time_point run_start_time_{};
  std::atomic<double> streamed_elapsed_s_{0.0};  ///< total across past runs

  // Latency distributions (nanosecond samples; rendered in milliseconds by
  // stats_json's "latency" object).  Always on: a record() is two relaxed
  // fetch_adds against work that spans thousands of samples.
  metrics::Histogram service_pass_ns_;  ///< one worker service pass
  metrics::Histogram pump_block_ns_;    ///< one feed block's full fan-out
};

/// The standard client loop: polls every session until the feed is
/// exhausted and all sessions are finished, handing each chunk (with its
/// session's index in `sessions`) to `on_chunk` as it arrives.  Keeps
/// consuming while the engine runs, so kBlock sessions cannot deadlock on a
/// full output ring.  The engine must be start()ed and no session paused,
/// or this never returns.
void drain_each(StreamEngine& engine,
                const std::vector<std::shared_ptr<Session>>& sessions,
                const std::function<void(std::size_t, StreamChunk&&)>& on_chunk);

/// drain_each, buffering: returns each session's chunks in stream order.
std::vector<std::vector<StreamChunk>> drain_all(
    StreamEngine& engine, const std::vector<std::shared_ptr<Session>>& sessions);

/// Concatenates the IQ payloads of polled chunks (gap metadata dropped).
std::vector<core::IqSample> flatten(const std::vector<StreamChunk>& chunks);

}  // namespace twiddc::stream
