#include "src/stream/engine_group.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/common/topology.hpp"
#include "src/common/trace.hpp"

namespace twiddc::stream {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed hash so sequential keys (the
/// common case: session index, channel number) spread evenly over shards
/// instead of striping.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

EngineGroup::EngineGroup(SourceFactory factory, EngineGroupOptions options)
    : factory_(std::move(factory)), options_(options) {
  if (!factory_) throw ConfigError("EngineGroup: needs a source factory");
  const std::size_t nodes = common::topology::probe().node_count();
  const std::size_t shards =
      options_.shards > 0 ? static_cast<std::size_t>(options_.shards)
                          : std::max<std::size_t>(1, nodes);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    EngineOptions opts = options_.engine;
    // One shard per node when the caller did not pin explicitly: workers,
    // rings and the shard's whole feed stay node-local.
    if (nodes > 1 && opts.preferred_node < 0) {
      opts.preferred_node = static_cast<int>(i % nodes);
      opts.pin_to_nodes = true;
    }
    shards_.push_back(std::make_unique<StreamEngine>(factory_(), opts));
  }
}

EngineGroup::~EngineGroup() { stop(); }

std::size_t EngineGroup::shard_for(std::uint64_t key) const {
  return mix64(key) % shards_.size();
}

std::shared_ptr<Session> EngineGroup::open(std::uint64_t key,
                                           const core::ChainPlan& plan,
                                           const std::string& backend_name,
                                           BackpressurePolicy policy) {
  const std::size_t idx = shard_for(key);
  auto session = shards_[idx]->open(plan, backend_name, policy);
  std::lock_guard<std::mutex> lock(map_mu_);
  session_shard_[session.get()] = idx;
  return session;
}

void EngineGroup::start() {
  std::size_t started = 0;
  try {
    for (; started < shards_.size(); ++started) shards_[started]->start();
  } catch (...) {
    for (std::size_t i = 0; i < started; ++i) shards_[i]->stop();
    throw;
  }
}

void EngineGroup::stop() {
  for (auto& shard : shards_) shard->stop();
}

void EngineGroup::restart_shard(std::size_t i) {
  auto& shard = *shards_.at(i);
  shard.stop();
  shard.start();
}

void EngineGroup::migrate(const std::shared_ptr<Session>& session,
                          std::size_t to_shard) {
  if (!session) throw ConfigError("EngineGroup: migrate() needs a session");
  if (to_shard >= shards_.size())
    throw ConfigError("EngineGroup: migrate() target shard out of range");
  // map_mu_ is held for the whole move: it doubles as the per-group
  // migration serializer (two concurrent migrations of one session would
  // race eject against adopt).  eject/adopt never call back into the
  // group, so there is no ordering cycle.
  std::lock_guard<std::mutex> lock(map_mu_);
  const auto it = session_shard_.find(session.get());
  if (it == session_shard_.end())
    throw SimulationError("EngineGroup: migrate() of an unknown session");
  const std::size_t from = it->second;
  if (from == to_shard) return;
  const StreamEngine::MigrationTicket ticket = shards_[from]->eject(session);
  // A fresh identical source backfills whatever span the destination's feed
  // is ahead by; adopt() ignores it when the destination is behind.
  shards_[to_shard]->adopt(ticket, factory_());
  it->second = to_shard;
  ++migrations_;
  if (trace::enabled(trace::Category::kGroup)) {
    static const std::uint16_t kMigrate = trace::intern("migrate");
    // arg1 packs the route; eject/adopt events carry the ticket seq.
    trace::emit(trace::Category::kGroup, kMigrate, trace::Phase::kInstant,
                session->id(), (static_cast<std::uint64_t>(from) << 32) |
                                   static_cast<std::uint64_t>(to_shard));
  }
}

void EngineGroup::migrate_batch(const std::vector<std::shared_ptr<Session>>& sessions,
                                std::size_t to_shard) {
  if (to_shard >= shards_.size())
    throw ConfigError("EngineGroup: migrate_batch() target shard out of range");
  // One serializer hold for the whole batch.  Validate everything first so a
  // bad entry throws before any session has moved (all-or-nothing).
  std::lock_guard<std::mutex> lock(map_mu_);
  std::vector<std::unordered_map<const Session*, std::size_t>::iterator> entries;
  entries.reserve(sessions.size());
  for (const auto& session : sessions) {
    if (!session) throw ConfigError("EngineGroup: migrate_batch() needs sessions");
    const auto it = session_shard_.find(session.get());
    if (it == session_shard_.end())
      throw SimulationError("EngineGroup: migrate_batch() of an unknown session");
    entries.push_back(it);
  }
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const std::size_t from = entries[i]->second;
    if (from == to_shard) continue;
    const StreamEngine::MigrationTicket ticket = shards_[from]->eject(sessions[i]);
    shards_[to_shard]->adopt(ticket, factory_());
    entries[i]->second = to_shard;
    ++migrations_;
    if (trace::enabled(trace::Category::kGroup)) {
      static const std::uint16_t kMigrate = trace::intern("migrate");
      trace::emit(trace::Category::kGroup, kMigrate, trace::Phase::kInstant,
                  sessions[i]->id(), (static_cast<std::uint64_t>(from) << 32) |
                                         static_cast<std::uint64_t>(to_shard));
    }
  }
}

std::size_t EngineGroup::shard_of(const std::shared_ptr<Session>& session) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  const auto it = session_shard_.find(session.get());
  if (it == session_shard_.end())
    throw SimulationError("EngineGroup: shard_of() of an unknown session");
  return it->second;
}

bool EngineGroup::finished(const std::shared_ptr<Session>& session) const {
  return shards_[shard_of(session)]->finished(*session);
}

std::string EngineGroup::stats_json() const {
  std::size_t sessions = 0;
  std::size_t workers = 0;
  std::uint64_t pumped = 0;
  for (const auto& shard : shards_) {
    sessions += shard->session_count();
    workers += static_cast<std::size_t>(shard->effective_workers());
    pumped += shard->blocks_pumped();
  }
  JsonLine group_line;
  group_line.field("shards", shards_.size())
      .field("sessions", sessions)
      .field("workers", workers)
      .field("blocks_pumped", static_cast<std::size_t>(pumped))
      .field("migrations", static_cast<std::size_t>(migrations()))
      .field("numa_nodes", common::topology::probe().node_count());
  std::string shard_array = "[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i) shard_array += ", ";
    shard_array += shards_[i]->stats_json();
  }
  shard_array += "]";
  JsonLine root;
  root.object("group", group_line).raw_field("shards", std::move(shard_array));
  return root.str();
}

std::vector<std::vector<StreamChunk>> drain_all(
    EngineGroup& group, const std::vector<std::shared_ptr<Session>>& sessions) {
  std::vector<std::vector<StreamChunk>> out(sessions.size());
  // No single eventcount spans N shards, so the idle path sleeps briefly
  // instead of blocking on a token; the poll pass itself is lock-free.
  for (;;) {
    bool any = false;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      for (auto& chunk : sessions[i]->poll()) {
        out[i].push_back(std::move(chunk));
        any = true;
      }
    }
    if (any) continue;
    bool done = true;
    for (const auto& s : sessions) done = done && group.finished(s);
    if (done) return out;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace twiddc::stream
