// twiddc::stream -- multi-engine sharding.
//
// One StreamEngine scales until its pump thread or its scheduler's shared
// counters become the bottleneck.  EngineGroup partitions the session
// population across N independent StreamEngine shards -- each with its own
// pump, scheduler, watchdog and (via SourceFactory) its own identical copy
// of the deterministic feed -- so aggregate throughput scales with shards
// instead of serializing on one engine's pump.  On a NUMA machine each
// shard is pinned to one node (workers, rings and feed all node-local).
//
// Routing is by caller-chosen key: shard_for(key) is a pure function of
// the key and the shard count (splitmix64 mix, then modulo), so a key maps
// to the same shard before and after any shard's stop()/start() cycle --
// restarts never reshuffle placement.
//
// Live migration: migrate(session, to_shard) moves an open session between
// shards mid-stream with no sample loss and bit-exact output.  The
// contract that makes this possible is the SAME one that makes sharding
// meaningful at all: every shard's Source produces the identical
// deterministic sample stream, so feed block seq N carries the same
// samples on every shard, and the destination can replay exactly the span
// the session has not seen (StreamEngine::eject/adopt do the handoff).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/stream/engine.hpp"

namespace twiddc::stream {

/// Produces a fresh Source.  Every call must yield an identical
/// deterministic stream -- one per shard, plus one per migration backfill.
using SourceFactory = std::function<std::unique_ptr<Source>()>;

struct EngineGroupOptions {
  /// Shard count.  <= 0 resolves to one shard per NUMA node (>= 1).
  int shards = 0;
  /// Per-shard engine options.  workers/min/max apply to EACH shard.  When
  /// the machine has multiple NUMA nodes and engine.preferred_node is -1,
  /// shard i is pinned to node (i mod node_count) automatically.
  EngineOptions engine;
};

class EngineGroup {
 public:
  explicit EngineGroup(SourceFactory factory, EngineGroupOptions options = {});
  ~EngineGroup();  // stop()s if running

  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] StreamEngine& shard(std::size_t i) { return *shards_.at(i); }
  [[nodiscard]] const StreamEngine& shard(std::size_t i) const {
    return *shards_.at(i);
  }

  /// Stable key -> shard routing (pure in key and shard count; survives
  /// shard restarts unchanged).
  [[nodiscard]] std::size_t shard_for(std::uint64_t key) const;

  /// Opens a session on shard_for(key)'s engine and records its placement.
  std::shared_ptr<Session> open(std::uint64_t key, const core::ChainPlan& plan,
                                const std::string& backend_name,
                                BackpressurePolicy policy = BackpressurePolicy::kBlock);

  /// Starts/stops every shard.  start() throws if any shard is already
  /// running (those started before the throw are stopped again).
  void start();
  void stop();

  /// Bounces one shard (stop + start).  Sessions keep their state; the
  /// shard's feed resumes at its current source position.
  void restart_shard(std::size_t i);

  /// Moves an open session to `to_shard` mid-stream: eject from its current
  /// shard, adopt on the target with a fresh factory source as backfill.
  /// Gap-free and bit-exact under the identical-sources contract.  No-op
  /// when the session is already there.
  void migrate(const std::shared_ptr<Session>& session, std::size_t to_shard);

  /// Batched migration: moves every session in `sessions` to `to_shard`
  /// under ONE hold of the migration serializer, so a rebalance of M
  /// sessions pays one lock acquisition instead of M and no foreign
  /// migration can interleave mid-batch.  Sessions already on the target
  /// are skipped.  Validation is all-or-nothing up front (null/unknown
  /// sessions or an out-of-range target throw before anything moves);
  /// per-session the move is the same eject/adopt handoff as migrate(), so
  /// the batch is gap-free and bit-exact with M sequential migrate() calls.
  void migrate_batch(const std::vector<std::shared_ptr<Session>>& sessions,
                     std::size_t to_shard);

  /// Current shard index of a session open()ed or migrate()d through this
  /// group.  Throws SimulationError for an unknown session.
  [[nodiscard]] std::size_t shard_of(const std::shared_ptr<Session>& session) const;

  /// finished() against the session's current shard.
  [[nodiscard]] bool finished(const std::shared_ptr<Session>& session) const;

  /// Sessions migrated through this group over its lifetime.
  [[nodiscard]] std::uint64_t migrations() const {
    std::lock_guard<std::mutex> lock(map_mu_);
    return migrations_;
  }

  /// {"group": {aggregates}, "shards": [per-shard stats_json...]}.
  [[nodiscard]] std::string stats_json() const;

 private:
  SourceFactory factory_;
  EngineGroupOptions options_;
  std::vector<std::unique_ptr<StreamEngine>> shards_;
  mutable std::mutex map_mu_;
  /// Session -> shard index.  Keyed by identity (session ids are per-engine
  /// counters, so two shards can mint the same id).
  std::unordered_map<const Session*, std::size_t> session_shard_;
  std::uint64_t migrations_ = 0;
};

/// Polls every session across the group's shards until all are finished.
/// The group-wide analogue of drain_all(StreamEngine&, ...).
std::vector<std::vector<StreamChunk>> drain_all(
    EngineGroup& group, const std::vector<std::shared_ptr<Session>>& sessions);

}  // namespace twiddc::stream
