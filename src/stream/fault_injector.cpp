#include "src/stream/fault_injector.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "src/backends/builtin.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace twiddc::stream {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kProcess: return "process";
    case FaultSite::kConfigure: return "configure";
    case FaultSite::kSwap: return "swap";
    case FaultSite::kRead: return "read";
  }
  return "unknown";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kStall: return "stall";
    case FaultKind::kShortOutput: return "short_output";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kEof: return "eof";
  }
  return "unknown";
}

struct FaultInjector::State {
  std::uint64_t seed = 0;
  std::atomic<std::uint64_t> instances{0};
  std::atomic<std::uint64_t> throws_fired{0};
  std::atomic<std::uint64_t> stalls_fired{0};
  std::atomic<std::uint64_t> short_outputs_fired{0};
  std::atomic<std::uint64_t> corruptions_fired{0};
  std::atomic<std::uint64_t> eofs_fired{0};
};

namespace {

/// Does the schedule fire on call index `k` (given `fired` prior firings)?
bool due(const FaultSpec& spec, std::uint64_t k, std::uint64_t fired) {
  if (fired >= spec.max_fires || k < spec.first) return false;
  if (spec.period == 0) return k == spec.first;
  return (k - spec.first) % spec.period == 0;
}

/// Shared per-wrapped-instance plumbing: the rng stream (seeded by injector
/// seed and wrap order) and the fired tallies routed to the injector state.
struct InjectionContext {
  InjectionContext(std::shared_ptr<FaultInjector::State> state, FaultSpec spec)
      : state(std::move(state)),
        spec(std::move(spec)),
        rng(this->state->seed +
            0x9e3779b97f4a7c15ull *
                (this->state->instances.fetch_add(1, std::memory_order_relaxed) + 1)) {}

  void count(FaultKind kind) {
    switch (kind) {
      case FaultKind::kThrow:
        state->throws_fired.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kStall:
        state->stalls_fired.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kShortOutput:
        state->short_outputs_fired.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kCorrupt:
        state->corruptions_fired.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kEof:
        state->eofs_fired.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  [[nodiscard]] std::int64_t corrupt_value() {
    const int bits = std::clamp(spec.corrupt_bits, 1, 62);
    const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
    return rng.uniform_int(-hi - 1, hi);
  }

  std::shared_ptr<FaultInjector::State> state;
  FaultSpec spec;
  Rng rng;
  std::uint64_t fired = 0;
};

/// Decorates a real backend with the fault schedule.  Call counters are
/// per-site; only the spec's site is scheduled, everything else forwards
/// verbatim.  The session layer serialises all lifecycle calls on one
/// component, so plain counters suffice.
class FaultyBackend final : public core::ArchitectureBackend {
 public:
  FaultyBackend(std::unique_ptr<core::ArchitectureBackend> inner,
                std::shared_ptr<FaultInjector::State> state, FaultSpec spec)
      : inner_(std::move(inner)),
        ctx_(std::move(state), std::move(spec)),
        name_(inner_->name() + "+faulty") {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] core::BackendCapabilities capabilities() const override {
    return inner_->capabilities();
  }
  [[nodiscard]] core::DatapathSpec datapath() const override {
    return inner_->datapath();
  }
  [[nodiscard]] core::ChainPlan plan_for(const core::DdcConfig& config) const override {
    return inner_->plan_for(config);
  }
  [[nodiscard]] bool is_configured() const override { return inner_->is_configured(); }
  [[nodiscard]] const core::ChainPlan& plan() const override { return inner_->plan(); }
  void reset() override { inner_->reset(); }
  [[nodiscard]] double output_scale() const override { return inner_->output_scale(); }
  [[nodiscard]] core::BackendPowerProfile power_profile() const override {
    return inner_->power_profile();
  }

  void configure(const core::ChainPlan& plan) override {
    // Fires BEFORE touching the inner backend so a thrown configure leaves
    // whatever was configured untouched (mirrors the real failure mode the
    // restart path must survive).
    maybe_fire(FaultSite::kConfigure, configure_calls_++);
    inner_->configure(plan);
  }

  void swap_plan(const core::ChainPlan& plan, core::SwapMode mode) override {
    maybe_fire(FaultSite::kSwap, swap_calls_++);
    inner_->swap_plan(plan, mode);
  }

  void process_block(std::span<const std::int64_t> in,
                     std::vector<core::IqSample>& out) override {
    const std::uint64_t k = process_calls_++;
    if (ctx_.spec.site != FaultSite::kProcess || !due(ctx_.spec, k, ctx_.fired)) {
      inner_->process_block(in, out);
      return;
    }
    ctx_.fired++;
    ctx_.count(ctx_.spec.kind);
    switch (ctx_.spec.kind) {
      case FaultKind::kThrow:
        throw SimulationError(ctx_.spec.what + " (process_block #" +
                              std::to_string(k) + ")");
      case FaultKind::kStall:
        std::this_thread::sleep_for(ctx_.spec.stall);
        inner_->process_block(in, out);
        return;
      case FaultKind::kShortOutput: {
        const std::size_t before = out.size();
        inner_->process_block(in, out);
        const std::size_t appended = out.size() - before;
        out.resize(before + appended / 2);
        return;
      }
      case FaultKind::kCorrupt: {
        const std::size_t before = out.size();
        inner_->process_block(in, out);
        for (std::size_t j = before; j < out.size(); ++j) {
          out[j].i = ctx_.corrupt_value();
          out[j].q = ctx_.corrupt_value();
        }
        return;
      }
      case FaultKind::kEof:
        // Source-only kind; FaultInjector::wrap rejects it, but stay safe.
        inner_->process_block(in, out);
        return;
    }
  }

 private:
  void maybe_fire(FaultSite site, std::uint64_t k) {
    if (ctx_.spec.site != site || !due(ctx_.spec, k, ctx_.fired)) return;
    ctx_.fired++;
    const char* site_name = to_string(site);
    switch (ctx_.spec.kind) {
      case FaultKind::kThrow:
        ctx_.count(FaultKind::kThrow);
        throw SimulationError(ctx_.spec.what + " (" + site_name + " #" +
                              std::to_string(k) + ")");
      case FaultKind::kStall:
        ctx_.count(FaultKind::kStall);
        std::this_thread::sleep_for(ctx_.spec.stall);
        return;
      default:
        // Short/corrupt have no payload at configure/swap; nothing to do.
        return;
    }
  }

  std::unique_ptr<core::ArchitectureBackend> inner_;
  InjectionContext ctx_;
  std::string name_;
  std::uint64_t process_calls_ = 0;
  std::uint64_t configure_calls_ = 0;
  std::uint64_t swap_calls_ = 0;
};

/// Decorates a feed source.  Only the pump thread calls read(), so plain
/// counters suffice here too.
class FaultySource final : public Source {
 public:
  FaultySource(std::unique_ptr<Source> inner,
               std::shared_ptr<FaultInjector::State> state, FaultSpec spec)
      : inner_(std::move(inner)), ctx_(std::move(state), std::move(spec)) {}

  std::size_t read(std::span<std::int64_t> out) override {
    const std::uint64_t k = calls_++;
    if (eof_latched_) return 0;
    if (!due(ctx_.spec, k, ctx_.fired)) return inner_->read(out);
    ctx_.fired++;
    ctx_.count(ctx_.spec.kind);
    switch (ctx_.spec.kind) {
      case FaultKind::kThrow:
        throw SimulationError(ctx_.spec.what + " (read #" + std::to_string(k) + ")");
      case FaultKind::kStall:
        std::this_thread::sleep_for(ctx_.spec.stall);
        return inner_->read(out);
      case FaultKind::kShortOutput: {
        const std::size_t half = std::max<std::size_t>(1, out.size() / 2);
        return inner_->read(out.first(half));
      }
      case FaultKind::kCorrupt: {
        const std::size_t n = inner_->read(out);
        for (std::size_t j = 0; j < n; ++j) out[j] = ctx_.corrupt_value();
        return n;
      }
      case FaultKind::kEof:
        eof_latched_ = true;
        return 0;
    }
    return inner_->read(out);
  }

 private:
  std::unique_ptr<Source> inner_;
  InjectionContext ctx_;
  std::uint64_t calls_ = 0;
  bool eof_latched_ = false;
};

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : state_(std::make_shared<State>()) {
  state_->seed = seed;
}

std::uint64_t FaultInjector::seed() const { return state_->seed; }

std::unique_ptr<core::ArchitectureBackend> FaultInjector::wrap(
    std::unique_ptr<core::ArchitectureBackend> inner, FaultSpec spec) {
  if (spec.kind == FaultKind::kEof)
    throw ConfigError("FaultInjector::wrap: kEof is a source-only fault kind");
  if (spec.site == FaultSite::kRead)
    throw ConfigError("FaultInjector::wrap: kRead is a source-only fault site");
  return std::make_unique<FaultyBackend>(std::move(inner), state_, std::move(spec));
}

std::unique_ptr<Source> FaultInjector::wrap_source(std::unique_ptr<Source> inner,
                                                   FaultSpec spec) {
  spec.site = FaultSite::kRead;
  return std::make_unique<FaultySource>(std::move(inner), state_, std::move(spec));
}

std::string FaultInjector::register_faulty_backend(const std::string& inner_name,
                                                   FaultSpec spec) {
  if (spec.kind == FaultKind::kEof)
    throw ConfigError("register_faulty_backend: kEof is a source-only fault kind");
  if (spec.site == FaultSite::kRead)
    throw ConfigError("register_faulty_backend: kRead is a source-only fault site");
  const std::uint64_t n = state_->instances.load(std::memory_order_relaxed);
  const std::string name = inner_name + "+faulty" + std::to_string(n);
  backends::register_decorated(
      name, inner_name,
      [state = state_, spec = std::move(spec)](
          std::unique_ptr<core::ArchitectureBackend> inner) {
        return std::make_unique<FaultyBackend>(std::move(inner), state, spec);
      });
  return name;
}

FaultInjector::Counters FaultInjector::counters() const {
  Counters c;
  c.throws_fired = state_->throws_fired.load(std::memory_order_relaxed);
  c.stalls_fired = state_->stalls_fired.load(std::memory_order_relaxed);
  c.short_outputs_fired = state_->short_outputs_fired.load(std::memory_order_relaxed);
  c.corruptions_fired = state_->corruptions_fired.load(std::memory_order_relaxed);
  c.eofs_fired = state_->eofs_fired.load(std::memory_order_relaxed);
  return c;
}

}  // namespace twiddc::stream
