// twiddc::stream -- deterministic fault injection for the streaming layer.
//
// The supervision machinery in engine/session (fault states, restart
// policies, the watchdog) is only trustworthy if it can be driven through
// every failure path on demand.  FaultInjector builds misbehaving twins of
// real components: a wrapped ArchitectureBackend that throws, stalls,
// truncates or corrupts at chosen call indices, and a wrapped Source that
// does the same to the feed.  Everything is deterministic -- the schedule
// is an explicit (first, period, max_fires) triple per FaultSpec, and
// corrupted payloads come from common/rng.hpp seeded off the injector seed
// and the wrap order -- so a failing injection run replays bit-for-bit.
//
// Wrapped backends can also be registered with the BackendRegistry (via the
// backends::register_decorated seam), which makes them openable by name
// through the normal StreamEngine::open() path: the engine under test runs
// unmodified production code.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "src/core/backend.hpp"
#include "src/stream/source.hpp"

namespace twiddc::stream {

/// Which call the fault schedule counts and fires on.
enum class FaultSite : std::uint8_t {
  kProcess,    ///< ArchitectureBackend::process_block
  kConfigure,  ///< ArchitectureBackend::configure (index 0 is the open()
               ///< lowering; restarts re-enter here)
  kSwap,       ///< ArchitectureBackend::swap_plan (retunes)
  kRead,       ///< Source::read (wrap_source forces this site)
};

enum class FaultKind : std::uint8_t {
  kThrow,        ///< throw SimulationError(what)
  kStall,        ///< sleep `stall`, then behave normally (watchdog fodder)
  kShortOutput,  ///< truncate the call's output to half (a short read/write)
  kCorrupt,      ///< replace the call's output with in-range rng garbage
  kEof,          ///< sources only: report end-of-stream from this read on
};

[[nodiscard]] const char* to_string(FaultSite site);
[[nodiscard]] const char* to_string(FaultKind kind);

/// One deterministic fault schedule: fire at call index `first` of `site`,
/// then every `period` calls (0 = only once), at most `max_fires` times.
struct FaultSpec {
  FaultKind kind = FaultKind::kThrow;
  FaultSite site = FaultSite::kProcess;
  std::uint64_t first = 0;
  std::uint64_t period = 0;
  std::uint64_t max_fires = ~std::uint64_t{0};
  std::chrono::milliseconds stall{20};  ///< kStall duration
  int corrupt_bits = 12;  ///< kCorrupt amplitude bound: garbage stays inside
                          ///< this signed width (RF trash, not UB fodder)
  std::string what = "injected fault";
};

/// Factory for misbehaving component twins.  Copyable handle; all copies
/// share the fired-counters and the wrap-order seed sequence.  Thread-safe
/// counters; wrap calls themselves are whatever-thread.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5eedf417u);

  [[nodiscard]] std::uint64_t seed() const;

  /// Wraps a backend so `spec` fires on its lifecycle calls.  The wrapper
  /// forwards everything else verbatim; name() gains a "+faulty" suffix.
  [[nodiscard]] std::unique_ptr<core::ArchitectureBackend> wrap(
      std::unique_ptr<core::ArchitectureBackend> inner, FaultSpec spec);

  /// Wraps a feed source; spec.site is forced to kRead.
  [[nodiscard]] std::unique_ptr<Source> wrap_source(std::unique_ptr<Source> inner,
                                                    FaultSpec spec);

  /// Registers a faulty twin of the registered backend `inner_name` under a
  /// fresh unique name ("<inner>+faulty<n>") and returns that name -- open a
  /// session on it through the normal engine path.  Every create() wraps a
  /// fresh inner instance with its own call counters (and its own rng
  /// stream, in wrap order).
  [[nodiscard]] std::string register_faulty_backend(const std::string& inner_name,
                                                    FaultSpec spec);

  /// How many times each fault kind actually fired, across every component
  /// this injector (and its copies) wrapped.
  struct Counters {
    std::uint64_t throws_fired = 0;
    std::uint64_t stalls_fired = 0;
    std::uint64_t short_outputs_fired = 0;
    std::uint64_t corruptions_fired = 0;
    std::uint64_t eofs_fired = 0;
  };
  [[nodiscard]] Counters counters() const;

  /// Shared mutable injector state (seed, wrap counter, fired tallies).
  /// Public only so the wrapper classes in the .cpp can hold it; not part of
  /// the user-facing API.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace twiddc::stream
