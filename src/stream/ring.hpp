// twiddc::stream -- bounded lock-free ring buffer for cross-thread
// streaming.
//
// The per-session queues of the streaming engine: the pump thread produces
// feed blocks into a session's input ring, the session's worker consumes
// them and produces output chunks into the session's output ring, and the
// client thread consumes those via poll().  Each ring therefore runs
// single-producer/single-consumer in steady state -- but the drop-oldest
// backpressure policy lets the *producer* side evict the oldest element
// when the ring is full, which is a concurrent dequeue.  The slot-sequence
// design (one atomic sequence number per slot, claims by CAS on the
// head/tail counters) is safe for any number of producers and consumers,
// so eviction needs no extra machinery.
//
// Blocking is layered on top, not baked in: try_push/try_pop never wait,
// and callers that want to block compose wake_token()/wait() with their own
// predicate (engine stop flags, session close, ...).  Every successful
// push, pop, close() or wake() bumps an eventcount and notifies, so the
// read-token -> check-predicate -> wait(token) pattern never loses a
// wakeup.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/topology.hpp"

namespace twiddc::stream {

template <typename T>
class BoundedRing {
 public:
  /// Capacity is rounded up to a power of two (>= 2).
  explicit BoundedRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
    mask_ = cap - 1;
  }

  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (exact when no operation is mid-flight).
  [[nodiscard]] std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  /// Appends `v` unless the ring is full or closed.  `v` is moved from only
  /// on success, so callers may retry with the same object.
  bool try_push(T&& v) {
    if (closed()) return false;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq - pos);
      if (dif == 0) {
        // Release on success: an acquire reader of tail_ (size()) must see
        // every write the producer made before claiming the slot -- the
        // engine's finished() protocol pairs ring-counter reads with the
        // session's busy_/has_pending_chunk_ flags and needs that ordering
        // on weakly-ordered CPUs.
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_release,
                                        std::memory_order_relaxed)) {
          s.value = std::move(v);
          s.seq.store(pos + 1, std::memory_order_release);
          bump();
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Removes the oldest element.  Works after close() until the ring is
  /// drained.
  std::optional<T> try_pop() {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq - (pos + 1));
      if (dif == 0) {
        // Release for the same reason as try_push: a consumer's prior
        // writes (e.g. the worker's busy_ flag, set before popping) must be
        // visible to anyone who acquire-reads the advanced head_.
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_release,
                                        std::memory_order_relaxed)) {
          std::optional<T> out(std::move(s.value));
          s.value = T();  // drop payload refs now, not at overwrite time
          s.seq.store(pos + mask_ + 1, std::memory_order_release);
          bump();
          return out;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Fails all further pushes; queued elements stay poppable.
  void close() {
    closed_.store(true, std::memory_order_release);
    bump();
  }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  // Eventcount for blocking callers.  Usage:
  //   for (;;) {
  //     auto t = ring.wake_token();
  //     if (<predicate, e.g. try_push succeeded or stop flag>) break;
  //     ring.wait(t);
  //   }
  // The token must be read BEFORE checking the predicate; any ring activity
  // (or an external wake()) between the read and wait() makes wait() return
  // immediately.
  [[nodiscard]] std::uint32_t wake_token() const {
    return wake_.load(std::memory_order_acquire);
  }
  void wait(std::uint32_t token) const { wake_.wait(token, std::memory_order_acquire); }
  /// Wakes all waiters without changing ring state (for external predicate
  /// changes: engine stop, session close, pause toggles).
  void wake() { bump(); }

  /// Best-effort NUMA placement of the slot array (kernel node id): the
  /// consumer of this ring lives on that node, so its polls should not
  /// cross the interconnect.  Returns false (leaving first-touch placement)
  /// on single-node boxes or when mbind is unavailable.  Call before the
  /// ring carries traffic; moving hot pages later works but stalls.
  bool bind_to_node(int node) {
    return common::topology::bind_memory_to_node(
        slots_.data(), slots_.size() * sizeof(Slot), node);
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  void bump() {
    wake_.fetch_add(1, std::memory_order_release);
    wake_.notify_all();
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) mutable std::atomic<std::uint32_t> wake_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace twiddc::stream
