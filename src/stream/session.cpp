#include "src/stream/session.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/trace.hpp"
#include "src/stream/engine.hpp"

namespace twiddc::stream {

namespace {
constexpr trace::Category kTraceCat = trace::Category::kStream;
}  // namespace

const char* to_string(BackpressurePolicy policy) {
  return policy == BackpressurePolicy::kBlock ? "block" : "drop_oldest";
}

const char* to_string(GapCause cause) {
  switch (cause) {
    case GapCause::kNone: return "none";
    case GapCause::kDropOldest: return "drop_oldest";
    case GapCause::kRetuneFlush: return "retune_flush";
    case GapCause::kShed: return "shed";
    case GapCause::kFault: return "fault";
  }
  return "unknown";
}

const char* to_string(SessionHealth health) {
  switch (health) {
    case SessionHealth::kHealthy: return "healthy";
    case SessionHealth::kBackoff: return "backoff";
    case SessionHealth::kQuarantined: return "quarantined";
    case SessionHealth::kFaulted: return "faulted";
  }
  return "unknown";
}

const char* to_string(RestartPolicy policy) {
  switch (policy) {
    case RestartPolicy::kFail: return "fail";
    case RestartPolicy::kRestartWithBackoff: return "restart_with_backoff";
    case RestartPolicy::kQuarantine: return "quarantine";
  }
  return "unknown";
}

Session::Session(std::uint64_t id,
                 std::unique_ptr<core::ArchitectureBackend> backend,
                 BackpressurePolicy policy, std::size_t queue_blocks,
                 std::size_t output_chunks, std::shared_ptr<EngineLink> link,
                 std::shared_ptr<std::atomic<std::uint32_t>> output_epoch)
    : id_(id),
      backend_name_(backend->name()),
      plan_name_(backend->plan().name),
      policy_(policy),
      backend_(std::move(backend)),
      in_ring_(queue_blocks),
      out_ring_(output_chunks),
      link_(std::move(link)),
      output_epoch_(std::move(output_epoch)) {}

void Session::request_service() {
  const std::shared_ptr<EngineLink> link = this->link();
  std::lock_guard<std::mutex> lock(link->mu);
  if (link->engine && link->scheduler_live)
    link->engine->schedule_session(*this);
}

void Session::rebind(std::shared_ptr<EngineLink> link,
                     std::shared_ptr<std::atomic<std::uint32_t>> output_epoch) {
  std::lock_guard<std::mutex> lock(link_mu_);
  link_ = std::move(link);
  output_epoch_ = std::move(output_epoch);
}

std::vector<StreamChunk> Session::poll(std::size_t max_chunks) {
  std::vector<StreamChunk> chunks;
  while (max_chunks == 0 || chunks.size() < max_chunks) {
    auto chunk = out_ring_.try_pop();
    if (!chunk) break;
    chunks.push_back(std::move(*chunk));
  }
  stats_.chunks_polled.fetch_add(chunks.size(), std::memory_order_relaxed);
  // A session parked on a stashed undelivered chunk (or holding queued
  // input) gets its worker nudged -- only its home worker, nobody else.
  // Deliberately NOT conditioned on this poll having returned chunks: a
  // stale-false read of has_pending_chunk_ during the poll that actually
  // freed the ring would otherwise strand the stash forever (no later
  // poll would pass a got-chunks guard), deadlocking a kBlock feed.
  // Also deliberately NOT fast-pathed on sched_state_: a stale kScheduled/
  // kRunningDirty read can describe a pass that already failed delivery
  // and parked, so skipping the nudge on it is the same lost wakeup in a
  // different coat.  The link mutex is uncontended except under
  // multi-threaded polling, where a convoy costs latency, not correctness.
  if (has_pending_chunk_.load(std::memory_order_acquire) || in_ring_.size() > 0)
    request_service();
  return chunks;
}

bool Session::retune(const core::ChainPlan& plan, core::SwapMode mode) {
  // One retune at a time: the mailbox is a single slot, so a concurrent
  // second request must queue behind the first, not overwrite it.
  std::lock_guard<std::mutex> serial(retune_serial_mu_);
  std::unique_lock<std::mutex> lock(control_mu_);
  if (closed_.load(std::memory_order_acquire)) {
    last_error_ = "session closed";
    return false;
  }
  if (detached_.load(std::memory_order_acquire)) {
    // No workers are attached; apply on the caller's thread.
    RetuneRequest request{plan, mode};
    apply_swap_locked(request);
    const bool ok = retune_result_.value_or(false);
    retune_result_.reset();
    auto swap_fault = std::move(pending_swap_fault_);
    pending_swap_fault_.reset();
    lock.unlock();
    if (swap_fault) fault(FaultCause::kBackendSwap, std::move(*swap_fault));
    return ok;
  }
  pending_retune_.emplace(RetuneRequest{plan, mode});
  retune_result_.reset();
  lock.unlock();
  request_service();  // wake the home worker so idle sessions retune promptly
  lock.lock();
  control_cv_.wait(lock, [this] {
    return retune_result_.has_value() ||
           detached_.load(std::memory_order_acquire) ||
           closed_.load(std::memory_order_acquire);
  });
  if (!retune_result_.has_value() && pending_retune_.has_value()) {
    // The workers detached (engine stopped) before picking the request up.
    const RetuneRequest request = std::move(*pending_retune_);
    pending_retune_.reset();
    if (closed_.load(std::memory_order_acquire)) {
      last_error_ = "session closed";
      return false;
    }
    apply_swap_locked(request);
  }
  const bool ok = retune_result_.value_or(false);
  retune_result_.reset();
  auto swap_fault = std::move(pending_swap_fault_);
  pending_swap_fault_.reset();
  lock.unlock();
  if (swap_fault) fault(FaultCause::kBackendSwap, std::move(*swap_fault));
  return ok;
}

bool Session::apply_pending_retune() {
  std::optional<std::string> swap_fault;
  {
    std::unique_lock<std::mutex> lock(control_mu_);
    if (!pending_retune_.has_value()) return false;
    const RetuneRequest request = std::move(*pending_retune_);
    pending_retune_.reset();
    apply_swap_locked(request);
    swap_fault = std::move(pending_swap_fault_);
    pending_swap_fault_.reset();
    control_cv_.notify_all();
  }
  if (swap_fault) fault(FaultCause::kBackendSwap, std::move(*swap_fault));
  return true;
}

void Session::apply_swap_locked(const RetuneRequest& request) {
  try {
    backend_->swap_plan(request.plan, request.mode);
    plan_name_ = backend_->plan().name;
    stats_.retunes_applied.fetch_add(1, std::memory_order_relaxed);
    stats_.last_retune_block.store(
        stats_.blocks_processed.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    if (request.mode == core::SwapMode::kFlush) pending_flush_gap_ = true;
    retune_result_ = true;
    if (trace::enabled(kTraceCat)) {
      // arg1: 0 = flush swap, 1 = splice swap.
      static const std::uint16_t kName = trace::intern("retune");
      trace::emit(kTraceCat, kName, trace::Phase::kInstant, id_,
                  request.mode == core::SwapMode::kFlush ? 0 : 1);
    }
  } catch (const ConfigError& e) {
    // A lowering/config rejection is the swap contract working, not a
    // fault: swap_plan guarantees the old configuration stays active and
    // the session keeps streaming on it.  (LoweringError derives ConfigError.)
    last_error_ = e.what();
    stats_.retunes_rejected.fetch_add(1, std::memory_order_relaxed);
    retune_result_ = false;
    if (trace::enabled(kTraceCat)) {
      static const std::uint16_t kName = trace::intern("retune_rejected");
      trace::emit(kTraceCat, kName, trace::Phase::kInstant, id_, 0);
    }
  } catch (const std::exception& e) {
    // Anything else means the backend broke mid-swap; the caller converts
    // the stash into a kBackendSwap fault after releasing control_mu_.
    last_error_ = e.what();
    retune_result_ = false;
    pending_swap_fault_ = e.what();
  } catch (...) {
    last_error_ = "swap_plan: foreign exception";
    retune_result_ = false;
    pending_swap_fault_ = "swap_plan: foreign exception";
  }
}

void Session::set_attached(bool attached) {
  std::lock_guard<std::mutex> lock(control_mu_);
  detached_.store(!attached, std::memory_order_release);
  control_cv_.notify_all();
}

void Session::set_paused(bool paused) {
  paused_.store(paused, std::memory_order_release);
  in_ring_.wake();
  // Resuming needs a service pass for the backlog; pausing needs none (the
  // worker simply stops consuming on its next look).
  if (!paused) request_service();
}

void Session::set_weight(int weight) {
  weight_.store(std::clamp(weight, 1, 1024), std::memory_order_release);
}

void Session::close() {
  closed_.store(true, std::memory_order_release);
  in_ring_.close();  // pump pushes fail from here on
  // Free the queued feed blocks now (workers skip closed sessions, so
  // nothing else would release the shared buffers).  Pop claims are
  // MPMC-safe, so racing a mid-block worker is fine.
  while (in_ring_.try_pop()) {
  }
  out_ring_.wake();  // unblock a worker waiting for output space
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    control_cv_.notify_all();  // fail any retune() waiting on a worker
  }
  {
    // Tell the pump its fan-out list went stale (it prunes on the next
    // generation change).
    const std::shared_ptr<EngineLink> link = this->link();
    std::lock_guard<std::mutex> lock(link->mu);
    if (link->engine)
      link->engine->sessions_gen_.fetch_add(1, std::memory_order_release);
  }
  // Closing can complete a drain (finished() treats closed as terminal).
  const auto epoch = output_epoch();
  epoch->fetch_add(1, std::memory_order_release);
  epoch->notify_all();
}

std::string Session::plan_name() const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return plan_name_;
}

std::string Session::last_error() const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return last_error_;
}

void Session::fault(FaultCause cause, std::string what) {
  RestartPolicy policy;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    policy = restart_opts_.policy;
  }
  apply_fault_transition(
      FaultInfo{cause, stats_.blocks_processed.load(std::memory_order_relaxed),
                std::move(what)},
      policy);
}

void Session::quarantine(FaultCause cause, std::string what) {
  apply_fault_transition(
      FaultInfo{cause, stats_.blocks_processed.load(std::memory_order_relaxed),
                std::move(what)},
      RestartPolicy::kQuarantine);
}

void Session::apply_fault_transition(FaultInfo info, RestartPolicy policy) {
  if (trace::enabled(kTraceCat)) {
    // arg1 carries the stable wire code (error_code), so a trace consumer
    // matches causes without the enum header.
    static const std::uint16_t kName = trace::intern("fault");
    trace::emit(kTraceCat, kName, trace::Phase::kInstant, id_,
                static_cast<std::uint64_t>(error_code(info.cause)));
  }
  bool do_close = false;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    last_error_ = info.what;
    last_fault_ = std::move(info);
    stats_.faults.fetch_add(1, std::memory_order_relaxed);
    switch (policy) {
      case RestartPolicy::kFail:
        health_.store(static_cast<std::uint8_t>(SessionHealth::kFaulted),
                      std::memory_order_release);
        do_close = true;
        break;
      case RestartPolicy::kRestartWithBackoff:
        if (restarts_done_ >= restart_opts_.max_restarts) {
          health_.store(static_cast<std::uint8_t>(SessionHealth::kQuarantined),
                        std::memory_order_release);
        } else {
          if (current_backoff_.count() <= 0)
            current_backoff_ =
                std::max(std::chrono::milliseconds{1}, restart_opts_.initial_backoff);
          restart_at_ = std::chrono::steady_clock::now() + current_backoff_;
          current_backoff_ = std::min(current_backoff_ * 2, restart_opts_.max_backoff);
          health_.store(static_cast<std::uint8_t>(SessionHealth::kBackoff),
                        std::memory_order_release);
        }
        break;
      case RestartPolicy::kQuarantine:
        health_.store(static_cast<std::uint8_t>(SessionHealth::kQuarantined),
                      std::memory_order_release);
        break;
    }
    // A retune() parked on the mailbox must re-check: a quarantined session
    // still applies pending retunes on its next service pass, but a kFail
    // close below is terminal.
    control_cv_.notify_all();
  }
  if (do_close) {
    close();
    return;
  }
  if (health() == SessionHealth::kQuarantined) {
    if (trace::enabled(kTraceCat)) {
      static const std::uint16_t kName = trace::intern("quarantine");
      trace::emit(kTraceCat, kName, trace::Phase::kInstant, id_,
                  static_cast<std::uint64_t>(error_code(last_fault().cause)));
    }
    // Quarantine freezes the stream: free the queued feed blocks (the pump
    // stops feeding us, and nothing else would release the shared buffers).
    while (in_ring_.try_pop()) {
    }
  }
  // A kBlock pump wait on our full ring must re-check (quarantine removes us
  // from the fan-out), and a drain blocked on the output eventcount must see
  // the state change (finished() treats quarantine as input-terminal).
  in_ring_.wake();
  out_ring_.wake();
  const auto epoch = output_epoch();
  epoch->fetch_add(1, std::memory_order_release);
  epoch->notify_all();
}

FaultInfo Session::last_fault() const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return last_fault_;
}

void Session::set_restart_policy(const RestartOptions& options) {
  std::lock_guard<std::mutex> lock(control_mu_);
  restart_opts_ = options;
  restart_opts_.max_restarts = std::max(0, options.max_restarts);
  restart_opts_.initial_backoff =
      std::max(std::chrono::milliseconds{0}, options.initial_backoff);
  restart_opts_.max_backoff =
      std::max(restart_opts_.initial_backoff, options.max_backoff);
  // A policy change grants a fresh budget: restart() after set_restart_policy
  // retries with the new counters.
  restarts_done_ = 0;
  current_backoff_ = restart_opts_.initial_backoff;
}

RestartOptions Session::restart_policy() const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return restart_opts_;
}

bool Session::restart() {
  if (closed()) return false;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    const auto h = health();
    if (h == SessionHealth::kHealthy || h == SessionHealth::kFaulted) return false;
    restart_at_ = std::chrono::steady_clock::now();  // retry immediately
    health_.store(static_cast<std::uint8_t>(SessionHealth::kBackoff),
                  std::memory_order_release);
  }
  request_service();
  return true;
}

bool Session::restart_due(std::chrono::steady_clock::time_point now) const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return health() == SessionHealth::kBackoff && now >= restart_at_;
}

void Session::complete_restart() {
  int restarts = 0;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    restarts = ++restarts_done_;
    stats_.restarts.fetch_add(1, std::memory_order_relaxed);
    health_.store(static_cast<std::uint8_t>(SessionHealth::kHealthy),
                  std::memory_order_release);
  }
  if (trace::enabled(kTraceCat)) {
    static const std::uint16_t kName = trace::intern("restart");
    trace::emit(kTraceCat, kName, trace::Phase::kInstant, id_,
                static_cast<std::uint64_t>(restarts));
  }
  pending_fault_gap_ = true;  // worker thread: mark the resume point in-stream
}

void Session::note_shed(std::uint64_t samples) {
  stats_.shed_events.fetch_add(1, std::memory_order_relaxed);
  stats_.shed_samples.fetch_add(samples, std::memory_order_relaxed);
  pending_shed_samples_.fetch_add(samples, std::memory_order_relaxed);
}

void Session::note_queue_depth(std::uint64_t depth) {
  std::uint64_t seen = stats_.max_queue_depth.load(std::memory_order_relaxed);
  while (depth > seen &&
         !stats_.max_queue_depth.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
}

SessionStats Session::stats() const {
  SessionStats s;
  s.blocks_enqueued = stats_.blocks_enqueued.load(std::memory_order_relaxed);
  s.samples_enqueued = stats_.samples_enqueued.load(std::memory_order_relaxed);
  s.blocks_processed = stats_.blocks_processed.load(std::memory_order_relaxed);
  s.samples_processed = stats_.samples_processed.load(std::memory_order_relaxed);
  s.samples_out = stats_.samples_out.load(std::memory_order_relaxed);
  s.chunks_polled = stats_.chunks_polled.load(std::memory_order_relaxed);
  s.input_drop_blocks = stats_.input_drop_blocks.load(std::memory_order_relaxed);
  s.input_drop_samples = stats_.input_drop_samples.load(std::memory_order_relaxed);
  s.output_drop_chunks = stats_.output_drop_chunks.load(std::memory_order_relaxed);
  s.output_drop_samples = stats_.output_drop_samples.load(std::memory_order_relaxed);
  s.max_queue_depth = stats_.max_queue_depth.load(std::memory_order_relaxed);
  s.retunes_applied = stats_.retunes_applied.load(std::memory_order_relaxed);
  s.retunes_rejected = stats_.retunes_rejected.load(std::memory_order_relaxed);
  s.gaps = stats_.gaps.load(std::memory_order_relaxed);
  s.last_retune_block = stats_.last_retune_block.load(std::memory_order_relaxed);
  s.service_passes = stats_.service_passes.load(std::memory_order_relaxed);
  s.faults = stats_.faults.load(std::memory_order_relaxed);
  s.restarts = stats_.restarts.load(std::memory_order_relaxed);
  s.shed_events = stats_.shed_events.load(std::memory_order_relaxed);
  s.shed_samples = stats_.shed_samples.load(std::memory_order_relaxed);
  return s;
}

}  // namespace twiddc::stream
